GO ?= go

.PHONY: all build vet lint test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ftvet enforces the FT-specific invariants go vet cannot see:
# determinism of replicated code, det-section purity, lock ordering,
# and flush-before-watermark. See DESIGN.md §10.
lint:
	$(GO) run ./cmd/ftvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every paper-figure benchmark; -benchtime=1x keeps it a
# smoke test rather than a measurement run.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

check: vet lint build race bench
