GO ?= go

.PHONY: all build vet lint test race bench bench-detshard bench-fabric check trace chaos

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ftvet enforces the FT-specific invariants go vet cannot see:
# determinism of replicated code, det-section purity, lock ordering,
# and flush-before-watermark. See DESIGN.md §10.
lint:
	$(GO) run ./cmd/ftvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every paper-figure benchmark; -benchtime=1x keeps it a
# smoke test rather than a measurement run.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Per-object sequencing sweep (DESIGN.md §13): thread counts x {shared,
# independent} locks x det shards {1, 4}, regenerating the checked-in
# BENCH_detshard.json with commit-wait and replay-lag distributions.
bench-detshard:
	$(GO) run ./cmd/ftbench -exp detshard -json BENCH_detshard.json

# Shared-memory fabric sweep (DESIGN.md §14): locked-copy vs lock-free
# reservation vs adaptive batching across producer counts and workload
# regimes, regenerating the checked-in BENCH_fabric.json.
bench-fabric:
	$(GO) run ./cmd/ftbench -exp fabric -json BENCH_fabric.json

check: vet lint build race bench

# A small failover run with full tracing: writes trace.json (open it at
# https://ui.perfetto.dev) and prints the flight-recorder dump.
trace:
	$(GO) run ./cmd/ftsim -size 33554432 -fail 2s -trace trace.json

# Chaos smoke: each preset schedule kills the primary, lets the freed
# partition rejoin and resync, then kills again (DESIGN.md §12). Fails
# if the client-visible stream is damaged, a resync aborts, or the
# deployment dies; flight-*.txt holds the post-mortem on failure.
chaos:
	$(GO) run ./cmd/ftsim -size 134217728 -chaos kill-rejoin-kill -flight flight-krk.txt
	$(GO) run ./cmd/ftsim -size 134217728 -chaos hb-storm -flight flight-hbs.txt
	$(GO) run ./cmd/ftsim -size 134217728 -chaos dup-delay -flight flight-dd.txt
