GO ?= go

.PHONY: all build vet lint test race bench check trace

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ftvet enforces the FT-specific invariants go vet cannot see:
# determinism of replicated code, det-section purity, lock ordering,
# and flush-before-watermark. See DESIGN.md §10.
lint:
	$(GO) run ./cmd/ftvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every paper-figure benchmark; -benchtime=1x keeps it a
# smoke test rather than a measurement run.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

check: vet lint build race bench

# A small failover run with full tracing: writes trace.json (open it at
# https://ui.perfetto.dev) and prints the flight-recorder dump.
trace:
	$(GO) run ./cmd/ftsim -size 33554432 -fail 2s -trace trace.json
