GO ?= go

.PHONY: all build vet test race bench check

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every paper-figure benchmark; -benchtime=1x keeps it a
# smoke test rather than a measurement run.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

check: vet build race bench
