GO ?= go

.PHONY: all build vet lint test race bench bench-detshard bench-fabric bench-critpath bench-nway bench-epoch check trace chaos diag

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# ftvet enforces the FT-specific invariants go vet cannot see:
# determinism of replicated code, det-section purity, lock ordering,
# and flush-before-watermark. See DESIGN.md §10.
lint:
	$(GO) run ./cmd/ftvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every paper-figure benchmark; -benchtime=1x keeps it a
# smoke test rather than a measurement run.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

# Per-object sequencing sweep (DESIGN.md §13): thread counts x {shared,
# independent} locks x det shards {1, 4}, regenerating the checked-in
# BENCH_detshard.json with commit-wait and replay-lag distributions.
# -gate fails the run if a headline ratio regresses past the tolerance
# pinned in goldens/bench-baselines.json.
bench-detshard:
	$(GO) run ./cmd/ftbench -exp detshard -gate goldens/bench-baselines.json -json BENCH_detshard.json

# Shared-memory fabric sweep (DESIGN.md §14): locked-copy vs lock-free
# reservation vs adaptive batching across producer counts and workload
# regimes, regenerating the checked-in BENCH_fabric.json.
bench-fabric:
	$(GO) run ./cmd/ftbench -exp fabric -gate goldens/bench-baselines.json -json BENCH_fabric.json

# Critical-path attribution sweep (DESIGN.md §16): traced detshard and
# fabric cells attributed per committed output, regenerating the
# checked-in BENCH_critpath.json with per-stage stall distributions —
# the numeric form of "sharding moves the bottleneck off commit-wait".
bench-critpath:
	$(GO) run ./cmd/ftbench -exp critpath -json BENCH_critpath.json

# Replica-set sweep (DESIGN.md §17): N=2..5 deployments committing under
# the majority quorum vs the all-replicas rule with one backup's log link
# lagged, regenerating the checked-in BENCH_nway.json. The headline ratio
# (all-rule commit wait over majority-rule at N=3) is gated like the
# detshard and fabric ratios.
bench-nway:
	$(GO) run ./cmd/ftbench -exp nway -gate goldens/bench-baselines.json -json BENCH_nway.json

# Epoch checkpoint sweep (DESIGN.md §18): the same streaming deployment
# killed after increasing uptimes, with epoch checkpoints off and on,
# regenerating the checked-in BENCH_epoch.json. The gated ratios pin the
# tentpole claim: rejoin time and retained log stay flat in uptime with
# epochs on while the full-history path grows linearly.
bench-epoch:
	$(GO) run ./cmd/ftbench -exp epoch -gate goldens/bench-baselines.json -json BENCH_epoch.json

check: vet lint build race bench

# A small failover run with full tracing: writes trace.json (open it at
# https://ui.perfetto.dev) and prints the flight-recorder dump.
trace:
	$(GO) run ./cmd/ftsim -size 33554432 -fail 2s -trace trace.json

# Chaos smoke: each preset schedule kills the primary, lets the freed
# partition rejoin and resync, then kills again (DESIGN.md §12). Fails
# if the client-visible stream is damaged, a resync aborts, or the
# deployment dies; flight-*.txt holds the post-mortem on failure.
chaos:
	$(GO) run ./cmd/ftsim -size 134217728 -chaos kill-rejoin-kill -flight flight-krk.txt
	$(GO) run ./cmd/ftsim -size 134217728 -chaos hb-storm -flight flight-hbs.txt
	$(GO) run ./cmd/ftsim -size 134217728 -chaos dup-delay -flight flight-dd.txt

# Divergence diagnosis demo (DESIGN.md §16): run the same deployment
# twice — once clean, once with the primary killed mid-stream — and let
# ftdiag name the first det tuple the failed run never records, with its
# minimal causal slice. The diff exiting 1 is the expected outcome (a
# divergence was found); exiting 0 means the kill diverged nothing and
# the target fails.
diag:
	$(GO) run ./cmd/ftsim -size 8388608 -events diag-clean.jsonl
	$(GO) run ./cmd/ftsim -size 8388608 -fail 40ms -events diag-failed.jsonl
	$(GO) run ./cmd/ftdiag diff diag-clean.jsonl diag-failed.jsonl; test $$? -eq 1
	$(GO) run ./cmd/ftdiag attribute diag-failed.jsonl
