// Command ftbench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	ftbench -exp all            # every experiment (slow: full-size runs)
//	ftbench -exp fig1           # §2.3 memory occupancy
//	ftbench -exp fig4 -quick    # §4.1 PBZIP2 throughput (reduced sweep)
//	ftbench -exp fig5           # §4.1 inter-replica traffic
//	ftbench -exp fig6 / fig7    # §4.2 Mongoose throughput / traffic
//	ftbench -exp mixed          # §4.3 replicated + non-replicated mix
//	ftbench -exp fig8           # §4.4 failover transfer
//	ftbench -exp latency        # §1 intra- vs inter-machine latency
//	ftbench -exp faults         # §2.2 fault outcome sweep
//	ftbench -exp ablations      # design-choice ablations
//	ftbench -exp batching       # log batching sweep (-batches 1,8,32 -json out.json)
//	ftbench -exp detshard       # per-object sequencing sweep (-shards 4 -threads 1,2,4,8,16)
//	ftbench -exp fabric         # shm sender models + adaptive batching (-threads 1,2,4,8 -batches 1,4,16,32)
//	ftbench -exp nway           # replica-set sweep: commit wait vs quorum rule (-json BENCH_nway.json)
//	ftbench -exp epoch          # epoch checkpoints: rejoin time + log retention vs uptime (-json BENCH_epoch.json)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
)

var (
	batchSizes  = flag.String("batches", "1,8,32", "comma-separated BatchTuples sizes for -exp batching")
	jsonOut     = flag.String("json", "", "also write the selected sweep (batching, detshard) as JSON to this file")
	shardCount  = flag.String("shards", "4", "DetShards setting compared against 1 for -exp detshard")
	threadSweep = flag.String("threads", "1,2,4,8,16", "comma-separated thread counts for -exp detshard")
	gatePath    = flag.String("gate", "", "baseline file (goldens/bench-baselines.json); fail when a detshard/fabric/nway headline ratio regresses past its tolerance")
)

func main() {
	exp := flag.String("exp", "all", "experiment: all, fig1, fig4, fig5, fig6, fig7, mixed, fig8, latency, faults, ablations, batching, detshard, fabric, critpath, nway, epoch")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "reduced sweeps / scaled-down inputs")
	flag.Parse()
	if err := run(*exp, *seed, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "ftbench:", err)
		os.Exit(1)
	}
}

func run(exp string, seed int64, quick bool) error {
	all := exp == "all"
	ran := false
	for _, e := range []struct {
		name string
		fn   func(int64, bool) error
	}{
		{"fig1", fig1},
		{"fig4", fig45},
		{"fig5", fig45},
		{"fig6", fig67},
		{"fig7", fig67},
		{"mixed", mixed},
		{"fig8", fig8},
		{"latency", latency},
		{"faults", faults},
		{"ablations", ablations},
		{"batching", batching},
		{"detshard", detshard},
		{"fabric", fabric},
		{"critpath", critpath},
		{"nway", nway},
		{"epoch", epoch},
	} {
		if !all && exp != e.name {
			continue
		}
		// fig4/fig5 (and fig6/fig7) share one run; avoid doing it twice
		// under -exp all.
		if all && (e.name == "fig5" || e.name == "fig7") {
			continue
		}
		if err := e.fn(seed, quick); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}

func fig1(seed int64, quick bool) error {
	fmt.Println("== Figure 1: physical-memory occupancy under memcached (64 cores, 96 GB) ==")
	rows, err := bench.Fig1(bench.Fig1Multipliers())
	if err != nil {
		return err
	}
	var table [][]string
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%dx", r.Multiplier),
			bench.F1(r.Ignored), bench.F1(r.Delayed), bench.F1(r.User), bench.F1(r.Free),
		})
	}
	bench.Table(os.Stdout, []string{"input", "ignored%", "delayed%", "user%", "free%"}, table)
	fmt.Println("paper @180x: ignored ~15%, delayed ~20% (kernel total ~35%)")
	fmt.Println()
	return nil
}

func fig45(seed int64, quick bool) error {
	fmt.Println("== Figures 4+5: PBZIP2, 1 GB file, 32 workers, block-size sweep ==")
	opts := bench.DefaultPBZIPOpts()
	opts.Seed = seed
	sizes := bench.PBZIPBlockKBs()
	if quick {
		sizes = []int{25, 40, 50, 75, 100, 400, 900}
		opts.Window = 8 * time.Second
	}
	points, err := bench.PBZIP(sizes, opts)
	if err != nil {
		return err
	}
	var table [][]string
	for _, p := range points {
		table = append(table, []string{
			fmt.Sprintf("%dKB", p.BlockKB),
			bench.F0(p.Ubuntu), bench.F0(p.FTBurst), bench.F0(p.FTSustained),
			bench.F1(p.PctOfUbuntu),
			bench.F0(p.MsgPerSec), bench.F1(p.BytesPerSec / 1e6),
		})
	}
	bench.Table(os.Stdout, []string{"block", "ubuntu bl/s", "ft-burst", "ft-sustained", "% of ubuntu", "msg/s", "MB/s"}, table)
	fmt.Println("paper @50KB: 1113 blocks/s sustained (~80% of Ubuntu), ~34k msg/s, 4.3 MB/s;")
	fmt.Println("burst tracks Ubuntu below 50KB while sustained drops (replay bottleneck)")
	fmt.Println()
	return nil
}

func fig67(seed int64, quick bool) error {
	fmt.Println("== Figures 6+7: Mongoose, 10 KB page, 100 connections, CPU-load sweep ==")
	opts := bench.DefaultMongooseOpts()
	opts.Seed = seed
	if quick {
		opts.Window = 4 * time.Second
	}
	points, err := bench.Mongoose(opts)
	if err != nil {
		return err
	}
	var table [][]string
	for _, p := range points {
		table = append(table, []string{
			fmt.Sprintf("%d (%v)", p.Step, p.CPULoad),
			bench.F0(p.Ubuntu), bench.F0(p.FTBurst), bench.F0(p.FTSustained),
			bench.F1(p.PctOfUbuntu),
			bench.F0(p.MsgPerSec), bench.F1(p.BytesPerSec / 1e6),
		})
	}
	bench.Table(os.Stdout, []string{"cpu step", "ubuntu req/s", "ft-burst", "ft-sustained", "% of ubuntu", "msg/s", "MB/s"}, table)
	fmt.Println("paper: FT within 20% of Ubuntu below ~1500 req/s; ~60% under high")
	fmt.Println("load of short requests; burst also degrades (network I/O sync)")
	fmt.Println()
	return nil
}

func mixed(seed int64, quick bool) error {
	fmt.Println("== §4.3: replicated Mongoose + non-replicated CPU hog (32-core primary, 1-core secondary) ==")
	opts := bench.DefaultMixedOpts()
	opts.Seed = seed
	if quick {
		opts.Window = 5 * time.Second
	}
	r, err := bench.Mixed(opts)
	if err != nil {
		return err
	}
	bench.Table(os.Stdout,
		[]string{"system", "req/s", "latency"},
		[][]string{
			{"ubuntu", bench.F0(r.UbuntuRPS), r.UbuntuLat.String()},
			{"ft-linux", bench.F0(r.FTRPS), r.FTLat.String()},
			{"ratio", bench.F1(r.PctRPS) + "%", "+" + bench.F1(r.PctLatency) + "%"},
		})
	fmt.Println("paper: 760 vs 700 req/s (91%), 1.3 vs 1.4 ms (+8%)")
	fmt.Println()
	return nil
}

func fig8(seed int64, quick bool) error {
	fmt.Println("== Figure 8: file transfer over 1 Gb/s with mid-transfer failover ==")
	opts := bench.DefaultFig8Opts()
	opts.Seed = seed
	if quick {
		opts = bench.QuickFig8Opts()
		opts.Seed = seed
	}
	r, err := bench.Fig8(opts)
	if err != nil {
		return err
	}
	bench.Table(os.Stdout,
		[]string{"scenario", "Mb/s"},
		[][]string{
			{"linux", bench.F0(r.UbuntuMbps)},
			{"ft-linux", fmt.Sprintf("%s (%.1f%% of linux)", bench.F0(r.FTMbps), r.PctFT)},
			{"failover: outage", fmt.Sprintf("%.0fs (driver reload %.0f%% of it)", r.OutageSeconds, 100*r.DriverShare)},
			{"failover: recovered", bench.F0(r.RecoveredMbps)},
		})
	fmt.Printf("transfer complete=%v corrupted=%v connection-survived=%v\n",
		r.Complete, r.Corrupted, r.ConnectionAlive)
	fmt.Println("throughput over time (failover run):")
	for _, s := range r.FailoverSeries {
		mb := float64(s.Bytes) * 8 / 1e6
		fmt.Printf("  t=%4.0fs %7.0f Mb/s\n", s.At.Seconds(), mb)
	}
	fmt.Println("paper: FT ~85% of Ubuntu failure-free; ~5s outage (99% NIC driver")
	fmt.Println("reload); connection survives and recovers to the Ubuntu rate")
	fmt.Println()
	return nil
}

func latency(seed int64, quick bool) error {
	fmt.Println("== §1: intra-machine vs inter-machine message propagation ==")
	r, err := bench.IntraVsInterLatency(seed, 1000)
	if err != nil {
		return err
	}
	bench.Table(os.Stdout, []string{"path", "one-way delay"}, [][]string{
		{"shared-memory mailbox", r.IntraMachine.String()},
		{"LAN", r.InterMachine.String()},
		{"ratio", fmt.Sprintf("%.0fx", r.Ratio)},
	})
	fmt.Println("paper (Guerraoui et al.): 0.55us vs 135us (~245x)")
	w, err := bench.WakeLatency(seed, 500)
	if err != nil {
		return err
	}
	fmt.Printf("wake_up_process model: busy hand-off %v; idle(5ms) wake avg %v max %v;\n"+
		"  long-idle(400ms) wake avg %v max %v (the paper's tens-of-ms case)\n",
		w.BusyHandoff, w.IdleWakeAvg, w.IdleWakeMax, w.DeepIdleAvg, w.DeepIdleMax)
	fmt.Println()
	return nil
}

func faults(seed int64, quick bool) error {
	fmt.Println("== §2.2: outcome of a random memory error (stock Linux, memcached load) ==")
	var table [][]string
	for _, mult := range []int{3, 90, 180} {
		for _, corrected := range []bool{false, true} {
			r, err := bench.FaultOutcomes(mult, 20000, corrected, seed)
			if err != nil {
				return err
			}
			kind := "DUE"
			if corrected {
				kind = "CE"
			}
			table = append(table, []string{
				fmt.Sprintf("%dx/%s", mult, kind),
				bench.F1(100 * r.KernelPanic), bench.F1(100 * r.Delayed),
				bench.F1(100 * r.UserKill), bench.F1(100 * r.None),
			})
		}
	}
	bench.Table(os.Stdout, []string{"load/kind", "kernel-panic%", "delayed%", "user-kill%", "absorbed%"}, table)
	fmt.Println("paper: at 180x, ~15% of DUEs panic the kernel, ~20% are delayed")
	fmt.Println()
	return nil
}

func ablations(seed int64, quick bool) error {
	fmt.Println("== Ablations ==")
	rows, err := bench.Ablations(seed, quick)
	if err != nil {
		return err
	}
	bench.Table(os.Stdout, []string{"ablation", "configuration", "result"}, rows)
	fmt.Println()
	return nil
}

func batching(seed int64, quick bool) error {
	fmt.Println("== Log batching: mailbox traffic vs Config.BatchTuples (pbzip2-style det sections) ==")
	var sizes []int
	for _, f := range strings.Split(*batchSizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -batches entry %q", f)
		}
		sizes = append(sizes, n)
	}
	opts := bench.DefaultBatchSweepOpts()
	opts.Seed = seed
	if quick {
		opts.Blocks = 24
	}
	points, err := bench.BatchSweep(sizes, opts)
	if err != nil {
		return err
	}
	var table [][]string
	for _, p := range points {
		table = append(table, []string{
			fmt.Sprintf("%d", p.BatchTuples),
			fmt.Sprintf("%d", p.Tuples),
			fmt.Sprintf("%d", p.Messages),
			fmt.Sprintf("%d", p.Bytes),
			fmt.Sprintf("%d", p.AckMessages),
			bench.F1(p.MsgPct), bench.F1(p.BytePct),
			bench.F1(p.SimMS),
			fmt.Sprintf("%d", p.Divergences),
		})
	}
	bench.Table(os.Stdout,
		[]string{"batch", "tuples", "messages", "bytes", "acks", "msg%", "byte%", "sim ms", "div"},
		table)
	fmt.Println("tuples and sim time must not move with the batch size; messages and")
	fmt.Println("bytes (64B headers included) drop as tuples share slot headers")
	if *jsonOut != "" {
		data, err := json.MarshalIndent(points, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonOut)
	}
	fmt.Println()
	return nil
}

func detshard(seed int64, quick bool) error {
	fmt.Println("== Per-object sequencing: commit wait and replay lag vs det shards ==")
	opts := bench.DefaultDetShardOpts()
	opts.Seed = seed
	n, err := strconv.Atoi(strings.TrimSpace(*shardCount))
	if err != nil || n < 2 {
		return fmt.Errorf("bad -shards %q (need an integer >= 2)", *shardCount)
	}
	opts.Shards = n
	var threads []int
	for _, f := range strings.Split(*threadSweep, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			return fmt.Errorf("bad -threads entry %q", f)
		}
		threads = append(threads, v)
	}
	opts.Threads = threads
	if quick {
		// Trim the sweep, not the per-point workload: the commit-wait
		// distribution only becomes interesting once the bounded log ring
		// saturates, which needs the full iteration count.
		opts.Threads = []int{1, 8}
	}
	report, err := bench.DetShard(opts)
	if err != nil {
		return err
	}
	var table [][]string
	for _, p := range report.Points {
		table = append(table, []string{
			p.Workload,
			fmt.Sprintf("%d", p.Threads),
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%d", p.Sections),
			fmt.Sprintf("%dus", p.CommitWaitP50/1000),
			fmt.Sprintf("%d", p.ReplayLagP50),
			fmt.Sprintf("%dus", p.ShardWaitP50/1000),
			bench.F1(p.SimMS),
			fmt.Sprintf("%d", p.Divergences),
		})
	}
	bench.Table(os.Stdout,
		[]string{"workload", "threads", "shards", "sections", "commit p50", "lag p50", "shard-wait p50", "sim ms", "div"},
		table)
	fmt.Printf("at %d threads, independent locks: commit-wait p50 %.1fx lower, replay-lag p50 %.1fx lower at %d shards vs 1\n",
		report.MeasuredAt, report.CommitWaitSpeedup, report.ReplayLagSpeedup, report.Shards)
	fmt.Println("the shared-lock rows are the control: one sequencing object, so sharding")
	fmt.Println("must not change sections or sim time")
	if *gatePath != "" {
		b, err := bench.LoadBaselines(*gatePath)
		if err != nil {
			return err
		}
		if v := b.GateDetShard(report); len(v) != 0 {
			return gateFailure("detshard", v)
		}
		fmt.Println("gate: detshard ratios within tolerance of", *gatePath)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonOut)
	}
	fmt.Println()
	return nil
}

func nway(seed int64, quick bool) error {
	fmt.Println("== Replica sets: output-commit wait vs quorum rule over a lagged backup link ==")
	opts := bench.DefaultNWayOpts()
	opts.Seed = seed
	if quick {
		// Trim the sweep to the sizes the gate ratio reads; keep the
		// per-point workload so the commit-wait distributions stay
		// comparable to the pinned full-sweep baselines.
		opts.Replicas = []int{2, 3}
	}
	report, err := bench.NWay(opts)
	if err != nil {
		return err
	}
	var table [][]string
	for _, p := range report.Points {
		table = append(table, []string{
			fmt.Sprintf("%d", p.Replicas),
			fmt.Sprintf("%d (%s)", p.Quorum, p.Rule),
			fmt.Sprintf("%d", p.Sections),
			fmt.Sprintf("%d", p.Commits),
			fmt.Sprintf("%dus", p.CommitWaitMean/1000),
			fmt.Sprintf("%dus", p.CommitWaitP50/1000),
			fmt.Sprintf("%dus", p.CommitWaitP90/1000),
			bench.F1(p.SimMS),
			fmt.Sprintf("%d", p.Divergences),
		})
	}
	bench.Table(os.Stdout,
		[]string{"replicas", "quorum", "sections", "commits", "wait mean", "wait p50", "wait p90", "sim ms", "div"},
		table)
	fmt.Printf("one backup link lagged %dus per transfer; at N=3, the all-replicas rule pays %.1fx the majority quorum's mean commit wait\n",
		report.LagUS, report.CommitWaitSpeedupN3)
	if *gatePath != "" {
		b, err := bench.LoadBaselines(*gatePath)
		if err != nil {
			return err
		}
		if v := b.GateNWay(report); len(v) != 0 {
			return gateFailure("nway", v)
		}
		fmt.Println("gate: nway ratios within tolerance of", *gatePath)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonOut)
	}
	fmt.Println()
	return nil
}

func epoch(seed int64, quick bool) error {
	fmt.Println("== Epoch checkpoints: rejoin time and log retention vs uptime ==")
	opts := bench.DefaultEpochOpts()
	opts.Seed = seed
	if quick {
		// Trim the sweep to its endpoints: the headline ratios only read
		// the shortest and longest uptimes, so the gate stays meaningful.
		opts.Uptimes = []time.Duration{opts.Uptimes[0], opts.Uptimes[len(opts.Uptimes)-1]}
	}
	report, err := bench.Epoch(opts)
	if err != nil {
		return err
	}
	var table [][]string
	for _, p := range report.Points {
		mode := "off"
		if p.Epochs {
			mode = "on"
		}
		table = append(table, []string{
			fmt.Sprintf("%.0fs", p.UptimeS),
			mode,
			bench.F1(p.RejoinMS),
			fmt.Sprintf("%d", p.CatchupMessages),
			fmt.Sprintf("%d", p.RetainedTuplesAtKill),
			fmt.Sprintf("%d", p.RetainedBytesAtKill),
			fmt.Sprintf("%d", p.EpochCuts),
			fmt.Sprintf("%dus", p.PauseP90/1000),
			fmt.Sprintf("%d", p.Divergences),
		})
	}
	bench.Table(os.Stdout,
		[]string{"uptime", "epochs", "rejoin ms", "catchup msgs", "retained tuples", "retained bytes", "cuts", "pause p90", "div"},
		table)
	fmt.Printf("at %.0fs uptime: epoch seeding rejoins %.1fx faster and retains %.1fx fewer tuples;\n",
		report.Points[len(report.Points)-1].UptimeS, report.RejoinSpeedup, report.RetentionSavings)
	fmt.Printf("rejoin growth over the swept uptimes: %.2fx off vs %.2fx on (flatness gain %.1fx)\n",
		report.RejoinGrowthOff, report.RejoinGrowthOn, report.FlatnessGain)
	if *gatePath != "" {
		b, err := bench.LoadBaselines(*gatePath)
		if err != nil {
			return err
		}
		if v := b.GateEpoch(report); len(v) != 0 {
			return gateFailure("epoch", v)
		}
		fmt.Println("gate: epoch ratios within tolerance of", *gatePath)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonOut)
	}
	fmt.Println()
	return nil
}

func gateFailure(sweep string, violations []string) error {
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "gate:", v)
	}
	return fmt.Errorf("%s: %d headline ratio(s) regressed past the pinned baseline", sweep, len(violations))
}

func critpath(seed int64, quick bool) error {
	fmt.Println("== Critical-path attribution: where committed-output time goes, per stage ==")
	opts := bench.DefaultCritPathOpts()
	opts.Seed = seed
	report, err := bench.CritPath(opts)
	if err != nil {
		return err
	}
	for _, p := range report.Points {
		fmt.Printf("-- %s: %d threads, %d shards (%d outputs, %d events; dominant: %s)\n",
			p.Workload, p.Threads, p.Shards, p.Outputs, p.Events, p.DominantStage)
		var table [][]string
		for _, st := range p.Stages {
			table = append(table, []string{
				st.Stage,
				fmt.Sprintf("%d", st.Count),
				fmt.Sprintf("%d", st.P50),
				fmt.Sprintf("%d", st.P90),
				fmt.Sprintf("%d", st.P99),
				fmt.Sprintf("%d", st.MaxNs),
				fmt.Sprintf("%d", st.TotalNs),
			})
		}
		bench.Table(os.Stdout,
			[]string{"stage", "nonzero", "p50 ns", "p90 ns", "p99 ns", "max ns", "total ns"},
			table)
	}
	fmt.Println("sharding should move the bottleneck off replay-grant; the sustained fabric")
	fmt.Println("workload should be commit-wait dominated (bounded-ring backlog)")
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonOut)
	}
	fmt.Println()
	return nil
}

func fabric(seed int64, quick bool) error {
	fmt.Println("== Shared-memory fabric: sender models and adaptive batching ==")
	opts := bench.DefaultFabricOpts()
	opts.Seed = seed
	// -threads and -batches override the fabric defaults only when given
	// explicitly: their flag defaults are tuned for detshard/batching.
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "threads":
			opts.Threads = nil
			for _, v := range strings.Split(*threadSweep, ",") {
				if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n >= 1 {
					opts.Threads = append(opts.Threads, n)
				}
			}
		case "batches":
			opts.StaticBatches = nil
			for _, v := range strings.Split(*batchSizes, ",") {
				if n, err := strconv.Atoi(strings.TrimSpace(v)); err == nil && n >= 1 {
					opts.StaticBatches = append(opts.StaticBatches, n)
				}
			}
		}
	})
	if len(opts.Threads) == 0 {
		return fmt.Errorf("bad -threads %q", *threadSweep)
	}
	if quick {
		// Trim the sweep, not the per-point workload: the sustained regime
		// needs the full iteration count to saturate the bounded ring.
		opts.Threads = []int{1, 8}
		opts.StaticBatches = []int{1, 32}
	}
	report, err := bench.Fabric(opts)
	if err != nil {
		return err
	}
	var table [][]string
	for _, p := range report.Points {
		table = append(table, []string{
			p.Workload, p.Mode,
			fmt.Sprintf("%d", p.Threads),
			fmt.Sprintf("%d", p.BatchTuples),
			fmt.Sprintf("%d", p.Tuples),
			fmt.Sprintf("%d", p.Messages),
			bench.F1(p.SendWaitMS),
			fmt.Sprintf("%d/%d", p.LockWaits, p.ReserveWaits),
			fmt.Sprintf("%dus", p.CommitWaitP50/1000),
			fmt.Sprintf("%d", p.EffBatchEnd),
			bench.F1(p.SimMS),
			fmt.Sprintf("%d", p.Divergences),
		})
	}
	bench.Table(os.Stdout,
		[]string{"workload", "mode", "threads", "batch", "tuples", "messages", "wait ms", "lk/rsv waits", "commit p50", "eff", "sim ms", "div"},
		table)
	fmt.Printf("at %d threads: lock-free cuts sender blocking %.1fx (raw ring) / %.1fx (sustained) vs the locked-copy baseline\n",
		report.MeasuredAt, report.SenderWaitReductionRaw, report.SenderWaitReductionSustained)
	fmt.Printf("adaptive vs best static batch: %.2fx completion (sustained), %.2fx transfers (burst), %.1fx fewer transfers than its starting batch\n",
		report.AdaptiveVsBestStaticSustained, report.AdaptiveVsBestStaticBurst, report.AdaptiveMsgSavingsBurst)
	if *gatePath != "" {
		b, err := bench.LoadBaselines(*gatePath)
		if err != nil {
			return err
		}
		if v := b.GateFabric(report); len(v) != 0 {
			return gateFailure("fabric", v)
		}
		fmt.Println("gate: fabric ratios within tolerance of", *gatePath)
	}
	if *jsonOut != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", *jsonOut)
	}
	fmt.Println()
	return nil
}
