// Command ftvet is the FT-Linux invariant multichecker: it runs the
// determinism and replication analyzers (nondet, detsection, lockorder,
// watermark) over the module and exits non-zero on findings, mirroring
// `go vet` usage:
//
//	go run ./cmd/ftvet ./...          # whole module (the default)
//	go run ./cmd/ftvet ./internal/tcprep ./internal/replication
//	go run ./cmd/ftvet -list          # describe the analyzers
//	go run ./cmd/ftvet -run nondet    # subset by name
//
// Findings print in the canonical file:line:col format. Suppressions use
// the audited escape hatch documented in internal/analysis/ftvet:
//
//	//ftvet:allow <analyzer>: <justification>
//
// The analyzers are built on the in-repo framework (internal/analysis/
// ftvet) rather than golang.org/x/tools/go/analysis, which is not
// vendorable in this offline container; for the same reason ftvet runs
// as a standalone multichecker instead of a -vettool plugin.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis/detsection"
	"repro/internal/analysis/ftvet"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/nondet"
	"repro/internal/analysis/watermark"
)

// All is the registered analyzer suite.
var All = []*ftvet.Analyzer{
	nondet.Analyzer,
	detsection.Analyzer,
	lockorder.Analyzer,
	watermark.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "describe the registered analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	lockgraph := flag.Bool("lockgraph", false, "dump the static lock-acquisition graph (the lockorder audit artifact)")
	flag.Parse()
	if *lockgraph {
		lockorder.Debug = os.Stdout
	}

	if *list {
		for _, a := range All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := All
	if *run != "" {
		byName := map[string]*ftvet.Analyzer{}
		for _, a := range All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ftvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, module, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftvet:", err)
		os.Exit(2)
	}
	loader := ftvet.NewLoader(root, module)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftvet:", err)
		os.Exit(2)
	}
	if args := flag.Args(); len(args) > 0 && !(len(args) == 1 && (args[0] == "./..." || args[0] == "all")) {
		pkgs = filterPackages(pkgs, args, module, root)
		if len(pkgs) == 0 {
			fmt.Fprintln(os.Stderr, "ftvet: no packages match the given patterns")
			os.Exit(2)
		}
	}
	diags, err := ftvet.Run(loader.Fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if n := ftvet.Print(os.Stdout, loader.Fset, diags); n > 0 {
		fmt.Fprintf(os.Stderr, "ftvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// findModule locates the enclosing go.mod and returns its directory and
// module path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterPackages keeps packages matching go-style patterns: ./x,
// ./x/... (relative to root), or full import paths, with "..." matching
// any suffix.
func filterPackages(pkgs []*ftvet.Package, patterns []string, module, root string) []*ftvet.Package {
	match := func(path string) bool {
		for _, pat := range patterns {
			pat = strings.TrimSuffix(pat, "/")
			if rel, ok := strings.CutPrefix(pat, "./"); ok {
				pat = module
				if rel != "" {
					pat = module + "/" + rel
				}
			}
			if strings.HasSuffix(pat, "/...") {
				prefix := strings.TrimSuffix(pat, "/...")
				if path == prefix || strings.HasPrefix(path, prefix+"/") {
					return true
				}
				continue
			}
			if path == pat {
				return true
			}
		}
		return false
	}
	var out []*ftvet.Package
	for _, p := range pkgs {
		if match(p.Path) {
			out = append(out, p)
		}
	}
	return out
}
