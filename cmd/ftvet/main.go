// Command ftvet is the FT-Linux invariant multichecker: it runs the
// determinism and replication analyzers (nondet, detsection, lockorder,
// watermark) over the module and exits non-zero on findings, mirroring
// `go vet` usage:
//
//	go run ./cmd/ftvet ./...             # whole module (the default)
//	go run ./cmd/ftvet ./internal/tcprep ./internal/replication
//	go run ./cmd/ftvet -list             # describe the analyzers
//	go run ./cmd/ftvet -run nondet       # subset by name
//	go run ./cmd/ftvet -format=sarif ./... > ftvet.sarif
//	go run ./cmd/ftvet -callgraph ./internal/replication
//	go run ./cmd/ftvet -summary ./internal/shm
//
// Findings print in the canonical file:line:col format (or as SARIF
// 2.1.0 / flat JSON with -format, for CI annotation upload). The
// -callgraph and -summary flags dump the interprocedural engine's
// resolved call edges and per-function dataflow summaries instead of
// running the analyzers — the audit artifacts for debugging a
// surprising multi-hop trace. Suppressions use the audited escape
// hatch documented in internal/analysis/ftvet:
//
//	//ftvet:allow <analyzer>: <justification>
//
// The analyzers are built on the in-repo framework (internal/analysis/
// ftvet) rather than golang.org/x/tools/go/analysis, which is not
// vendorable in this offline container; for the same reason ftvet runs
// as a standalone multichecker instead of a -vettool plugin.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/analysis/detsection"
	"repro/internal/analysis/flow"
	"repro/internal/analysis/ftvet"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/nondet"
	"repro/internal/analysis/watermark"
)

// All is the registered analyzer suite.
var All = []*ftvet.Analyzer{
	nondet.Analyzer,
	detsection.Analyzer,
	lockorder.Analyzer,
	watermark.Analyzer,
}

func main() {
	list := flag.Bool("list", false, "describe the registered analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	format := flag.String("format", "text", "output format: text, json, or sarif")
	verbose := flag.Bool("v", false, "print per-analyzer timing to stderr")
	callgraph := flag.Bool("callgraph", false, "dump the resolved call graph instead of running analyzers")
	summary := flag.Bool("summary", false, "dump per-function dataflow summaries instead of running analyzers")
	lockgraph := flag.Bool("lockgraph", false, "dump the static lock-acquisition graph (the lockorder audit artifact)")
	flag.Parse()
	if *lockgraph {
		lockorder.Debug = os.Stdout
	}

	if *list {
		for _, a := range All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := All
	if *run != "" {
		byName := map[string]*ftvet.Analyzer{}
		for _, a := range All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "ftvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, module, err := findModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftvet:", err)
		os.Exit(2)
	}
	loader := ftvet.NewLoader(root, module)
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftvet:", err)
		os.Exit(2)
	}
	if args := flag.Args(); len(args) > 0 && !(len(args) == 1 && (args[0] == "./..." || args[0] == "all")) {
		pkgs = filterPackages(pkgs, args, module, root)
		if len(pkgs) == 0 {
			fmt.Fprintln(os.Stderr, "ftvet: no packages match the given patterns")
			os.Exit(2)
		}
	}

	if *callgraph || *summary {
		// Debug dumps are scoped to the filtered package set: edges into
		// unlisted packages are resolved (the loader pulls dependencies)
		// but only functions defined in listed packages get nodes.
		g := flow.Build(loader.Fset, pkgs)
		if *callgraph {
			g.DumpCallGraph(os.Stdout)
		}
		if *summary {
			g.DumpSummaries(os.Stdout)
		}
		return
	}

	// Subset runs still pass the full registry as the known-analyzer
	// set, so an //ftvet:allow naming an analyzer outside this run is
	// accepted rather than flagged as a typo.
	known := make([]string, len(All))
	for i, a := range All {
		known[i] = a.Name
	}
	diags, timings, err := ftvet.RunTimed(loader.Fset, pkgs, analyzers, known)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *verbose {
		perAnalyzer := map[string]time.Duration{}
		for _, tm := range timings {
			perAnalyzer[tm.Analyzer] += tm.Elapsed
		}
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "ftvet: %-12s %v over %d package(s)\n",
				a.Name, perAnalyzer[a.Name].Round(time.Millisecond), len(pkgs))
		}
	}

	n := len(diags)
	switch *format {
	case "text":
		n = ftvet.Print(os.Stdout, loader.Fset, diags)
	case "json":
		err = ftvet.WriteJSON(os.Stdout, loader.Fset, root, diags)
	case "sarif":
		// Always emit a well-formed log, even when clean, so a CI upload
		// step has a file to consume on every run.
		err = ftvet.WriteSARIF(os.Stdout, loader.Fset, root, All, diags)
	default:
		fmt.Fprintf(os.Stderr, "ftvet: unknown format %q (want text, json, or sarif)\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftvet:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "ftvet: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// findModule locates the enclosing go.mod and returns its directory and
// module path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// filterPackages keeps packages matching go-style patterns: ./x,
// ./x/... (relative to root), or full import paths, with "..." matching
// any suffix.
func filterPackages(pkgs []*ftvet.Package, patterns []string, module, root string) []*ftvet.Package {
	match := func(path string) bool {
		for _, pat := range patterns {
			pat = strings.TrimSuffix(pat, "/")
			if rel, ok := strings.CutPrefix(pat, "./"); ok {
				pat = module
				if rel != "" {
					pat = module + "/" + rel
				}
			}
			if strings.HasSuffix(pat, "/...") {
				prefix := strings.TrimSuffix(pat, "/...")
				if path == prefix || strings.HasPrefix(path, prefix+"/") {
					return true
				}
				continue
			}
			if path == pat {
				return true
			}
		}
		return false
	}
	var out []*ftvet.Package
	for _, p := range pkgs {
		if match(p.Path) {
			out = append(out, p)
		}
	}
	return out
}
