// Command memdump reproduces the paper's Figure 1 standalone (§2.3): it
// "dumps" the physical memory of a simulated 64-core / 96 GB Linux machine
// running memcached under a CloudSuite-style load, classifying every page
// as unrecoverable kernel memory (Ignored), recoverable kernel memory
// (Delayed), user memory, or free, as the input-size multiplier grows.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

func main() {
	mults := flag.String("mults", "3,30,60,90,120,150,180", "comma-separated input multipliers")
	flag.Parse()
	var multipliers []int
	for _, f := range strings.Split(*mults, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			fmt.Fprintln(os.Stderr, "memdump: bad multiplier:", f)
			os.Exit(1)
		}
		multipliers = append(multipliers, v)
	}
	rows, err := bench.Fig1(multipliers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memdump:", err)
		os.Exit(1)
	}
	fmt.Println("physical-memory occupancy, 64 cores / 96 GB, memcached under load")
	fmt.Println("(Ignored = unrecoverable kernel, Delayed = recoverable kernel)")
	fmt.Println()
	var table [][]string
	for _, r := range rows {
		bar := func(pct float64, ch byte) string {
			n := int(pct / 2)
			return strings.Repeat(string(ch), n)
		}
		table = append(table, []string{
			fmt.Sprintf("%dx", r.Multiplier),
			bench.F1(r.Ignored), bench.F1(r.Delayed), bench.F1(r.User), bench.F1(r.Free),
			bar(r.Ignored, 'I') + bar(r.Delayed, 'D') + bar(r.User, 'U'),
		})
	}
	bench.Table(os.Stdout, []string{"input", "ignored%", "delayed%", "user%", "free%", ""}, table)
}
