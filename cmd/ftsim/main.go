// Command ftsim runs a configurable FT-Linux failover scenario: a
// replicated file server, a downloading client, and an injected hardware
// fault, printing the timeline and the client's view.
//
//	ftsim -size 2147483648 -fail 5s -fault coherency -relaxed
//	ftsim -trace out.json        # Perfetto-loadable timeline of the run
//
// With -trace the full event stream is retained and written as a Chrome
// trace-event file (open it at https://ui.perfetto.dev). The trace is
// deterministic: two runs with the same flags and seed produce
// byte-identical files. On runs that kill the primary, the flight
// recorder's dump (the last events each component saw at the moment of
// failure) is printed after the timeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/clients"
	"repro/internal/apps/fileserver"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

func main() {
	size := flag.Int64("size", 1<<30, "file size in bytes")
	failAt := flag.Duration("fail", 3*time.Second, "when to kill the primary (0 = never)")
	fault := flag.String("fault", "failstop", "fault kind: failstop, mem, bus, coherency")
	relaxed := flag.Bool("relaxed", false, "use relaxed output commit (§3.5)")
	seed := flag.Int64("seed", 1, "simulation seed")
	trace := flag.String("trace", "", "write a Chrome/Perfetto trace of the run to this file")
	flag.Parse()
	if err := run(*size, *failAt, *fault, *relaxed, *seed, *trace); err != nil {
		fmt.Fprintln(os.Stderr, "ftsim:", err)
		os.Exit(1)
	}
}

func faultKind(name string) (hw.FaultKind, error) {
	switch name {
	case "failstop":
		return hw.CoreFailStop, nil
	case "mem":
		return hw.MemUncorrected, nil
	case "bus":
		return hw.BusError, nil
	case "coherency":
		return hw.CoherencyLoss, nil
	default:
		return 0, fmt.Errorf("unknown fault kind %q", name)
	}
}

func run(size int64, failAt time.Duration, fault string, relaxed bool, seed int64, trace string) error {
	kind, err := faultKind(fault)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig(seed)
	cfg.TCP.MSS = 32 << 10
	cfg.Replication.StrictOutputCommit = !relaxed
	cfg.Obs.Trace = trace != ""
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return err
	}
	client, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		return err
	}
	fcfg := fileserver.DefaultConfig()
	fcfg.FileSize = size
	var fst fileserver.Stats
	sys.LaunchApp("fileserver", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		fileserver.Run(th, socks, fcfg, &fst)
	})
	verify := func(off int64, data []byte) bool {
		want := make([]byte, len(data))
		fileserver.Fill(want, off)
		for i := range data {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	var dl clients.DownloadStats
	clients.Download(client, fcfg.Port, size, time.Second, verify, &dl)
	if failAt > 0 {
		fmt.Printf("will inject %v on the primary at t=%v\n", kind, failAt)
		sys.InjectPrimaryFailure(failAt, kind)
	}
	if err := sys.Sim.RunUntil(sim.Time(30 * time.Minute)); err != nil {
		return err
	}
	for _, s := range dl.Series {
		fmt.Printf("t=%5.0fs %8.0f Mb/s\n", s.At.Seconds(), float64(s.Bytes)*8/1e6)
	}
	fmt.Printf("\nreceived %d/%d bytes  complete=%v corrupted=%v\n", dl.Received, size, dl.Complete, dl.Corrupted)
	if failAt > 0 {
		fmt.Printf("failure declared at %v; failover complete at %v; secondary role: %v\n",
			sys.FailedAt, sys.LiveAt, sys.Secondary.NS.Role())
		if drop := sys.Fabric.Stats().Dropped; drop > 0 {
			fmt.Printf("coherency fault dropped %d in-flight mailbox messages; stream still intact: %v\n",
				drop, !dl.Corrupted && dl.Complete)
		}
	}
	st := sys.Fabric.Stats()
	fmt.Printf("inter-replica traffic: %d messages, %.1f MB (peak ring occupancy %d B)\n",
		st.Messages, float64(st.Bytes)/1e6, st.HighWaterBytes)
	if sys.Flight != nil {
		fmt.Println()
		sys.Flight.Tail(40).WriteText(os.Stdout)
	}
	if trace != "" {
		f, err := os.Create(trace)
		if err != nil {
			return err
		}
		if err := sys.Obs.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events); open it at https://ui.perfetto.dev\n",
			trace, len(sys.Obs.Events()))
	}
	if !dl.Complete || dl.Corrupted {
		return fmt.Errorf("client-visible stream was damaged")
	}
	return nil
}
