// Command ftsim runs a configurable FT-Linux failover scenario: a
// replicated file server, a downloading client, and injected faults,
// printing the timeline and the client's view.
//
//	ftsim -size 2147483648 -fail 5s -fault coherency -relaxed
//	ftsim -chaos kill-rejoin-kill        # preset schedule, rejoin enabled
//	ftsim -chaos "drop hb p0.5 1s..2s; kill primary @3s" -chaos-seed 7
//	ftsim -trace out.json                # Perfetto-loadable timeline
//
// -chaos takes a preset name (kill-rejoin-kill, hb-storm, dup-delay) or a
// raw schedule spec and enables backup re-integration: after each kill the
// freed partition boots a fresh kernel, resyncs from a checkpoint plus
// catch-up replay, and the pair returns to replicated mode. -flight writes
// the failover flight-recorder dump to a file (CI keeps it as an artifact
// when a run fails).
//
// With -trace the full event stream is retained and written as a Chrome
// trace-event file (open it at https://ui.perfetto.dev). The trace is
// deterministic: two runs with the same flags and seeds produce
// byte-identical files. On runs that kill the primary, the flight
// recorder's dump (the last events each component saw at the moment of
// failure) is printed after the timeline.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/apps/clients"
	"repro/internal/apps/fileserver"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

type options struct {
	size        int64
	failAt      time.Duration
	fault       string
	relaxed     bool
	seed        int64
	trace       string
	events      string
	chaosSpec   string
	chaosSeed   int64
	rejoinDelay time.Duration
	flight      string
	shards      int
	adaptive    bool
	replicas    int
	quorum      int
}

func main() {
	var o options
	flag.Int64Var(&o.size, "size", 1<<30, "file size in bytes")
	flag.DurationVar(&o.failAt, "fail", 3*time.Second, "when to kill the primary (0 = never)")
	flag.StringVar(&o.fault, "fault", "failstop", "fault kind: failstop, mem, bus, coherency")
	flag.BoolVar(&o.relaxed, "relaxed", false, "use relaxed output commit (§3.5)")
	flag.Int64Var(&o.seed, "seed", 1, "simulation seed")
	flag.StringVar(&o.trace, "trace", "", "write a Chrome/Perfetto trace of the run to this file")
	flag.StringVar(&o.events, "events", "", "write the raw event stream as JSONL to this file (ftdiag input)")
	flag.StringVar(&o.chaosSpec, "chaos", "", "chaos schedule (preset name or spec); enables backup rejoin")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 42, "seed for the chaos injector's RNG stream")
	flag.DurationVar(&o.rejoinDelay, "rejoin-delay", 10*time.Second, "partition repair time before a backup rejoins")
	flag.StringVar(&o.flight, "flight", "", "write the failover flight-recorder dump to this file")
	flag.IntVar(&o.shards, "shards", 1, "det-section sequencer shards (1 = the global-mutex total order)")
	flag.BoolVar(&o.adaptive, "adaptive", false, "adaptive det-log batching (AIMD controller instead of the static batch size)")
	flag.IntVar(&o.replicas, "replicas", 2, "replica-set size: one primary plus n-1 backups on balanced fault domains")
	flag.IntVar(&o.quorum, "quorum", 0, "output-commit quorum counting the primary (0 = majority of the set)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "ftsim:", err)
		os.Exit(1)
	}
}

func faultKind(name string) (hw.FaultKind, error) {
	switch name {
	case "failstop":
		return hw.CoreFailStop, nil
	case "mem":
		return hw.MemUncorrected, nil
	case "bus":
		return hw.BusError, nil
	case "coherency":
		return hw.CoherencyLoss, nil
	default:
		return 0, fmt.Errorf("unknown fault kind %q", name)
	}
}

func run(o options) error {
	kind, err := faultKind(o.fault)
	if err != nil {
		return err
	}
	tcp := core.DefaultConfig(o.seed).TCP
	tcp.MSS = 32 << 10
	opts := []core.Option{
		core.WithSeed(o.seed),
		core.WithTCP(tcp),
		core.WithStrictOutputCommit(!o.relaxed),
		core.WithRejoinDelay(o.rejoinDelay),
		// Rejoin only on chaos runs: the single-failure experiments match
		// the paper's setup, where the degraded system runs to completion.
		core.WithRejoin(o.chaosSpec != ""),
		core.WithDetShards(o.shards),
	}
	if o.adaptive {
		opts = append(opts, core.WithAdaptiveBatching(0))
	}
	if o.replicas != 2 {
		opts = append(opts, core.WithReplicaSet(o.replicas))
	}
	if o.quorum != 0 {
		opts = append(opts, core.WithQuorum(o.quorum))
	}
	if o.chaosSpec != "" {
		spec := o.chaosSpec
		if preset, ok := chaos.Presets[spec]; ok {
			spec = preset
		}
		sched, err := chaos.Parse(spec)
		if err != nil {
			return err
		}
		fmt.Printf("chaos schedule: %s\n", sched)
		opts = append(opts, core.WithChaos(sched, o.chaosSeed))
	}
	if o.trace != "" || o.events != "" {
		opts = append(opts, core.WithTrace())
	}
	sys, err := core.New(opts...)
	if err != nil {
		return err
	}
	client, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		return err
	}
	fcfg := fileserver.DefaultConfig()
	fcfg.FileSize = o.size
	var fst fileserver.Stats
	sys.Run(core.App{Name: "fileserver", Main: func(th *replication.Thread, socks *tcprep.Sockets) {
		fileserver.Run(th, socks, fcfg, &fst)
	}})
	verify := func(off int64, data []byte) bool {
		want := make([]byte, len(data))
		fileserver.Fill(want, off)
		for i := range data {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	var dl clients.DownloadStats
	clients.Download(client, fcfg.Port, o.size, time.Second, verify, &dl)
	if o.chaosSpec == "" && o.failAt > 0 {
		fmt.Printf("will inject %v on the primary at t=%v\n", kind, o.failAt)
		sys.InjectPrimaryFailure(o.failAt, kind)
	}
	if err := sys.Sim.RunUntil(sim.Time(30 * time.Minute)); err != nil {
		return err
	}
	for _, s := range dl.Series {
		fmt.Printf("t=%5.0fs %8.0f Mb/s\n", s.At.Seconds(), float64(s.Bytes)*8/1e6)
	}
	fmt.Printf("\nreceived %d/%d bytes  complete=%v corrupted=%v\n", dl.Received, o.size, dl.Complete, dl.Corrupted)
	if sys.FailedAt != 0 {
		fmt.Printf("last failure declared at %v; failover complete at %v\n", sys.FailedAt, sys.LiveAt)
	}
	if inj := sys.Injector(); inj != nil {
		fmt.Printf("chaos: %d kills, %d transfer faults injected\n", inj.Kills, inj.Injected)
	}
	fmt.Printf("lifecycle: state=%v generation=%d", sys.State(), sys.Generation())
	if err := sys.RejoinErr(); err != nil {
		fmt.Printf(" rejoin-error=%q", err)
	}
	fmt.Println()
	if drop := sys.Fabric.Stats().Dropped; drop > 0 {
		fmt.Printf("faults dropped %d in-flight mailbox messages; stream still intact: %v\n",
			drop, !dl.Corrupted && dl.Complete)
	}
	st := sys.Fabric.Stats()
	fmt.Printf("inter-replica traffic: %d messages, %.1f MB (peak ring occupancy %d B)\n",
		st.Messages, float64(st.Bytes)/1e6, st.HighWaterBytes)
	if sys.Flight != nil {
		if o.flight != "" {
			f, err := os.Create(o.flight)
			if err != nil {
				return err
			}
			sys.Flight.Tail(200).WriteText(f)
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote flight-recorder dump to %s\n", o.flight)
		} else {
			fmt.Println()
			sys.Flight.Tail(40).WriteText(os.Stdout)
		}
	}
	if o.trace != "" {
		f, err := os.Create(o.trace)
		if err != nil {
			return err
		}
		if err := sys.Obs.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events); open it at https://ui.perfetto.dev\n",
			o.trace, len(sys.Obs.Events()))
	}
	if o.events != "" {
		f, err := os.Create(o.events)
		if err != nil {
			return err
		}
		if err := sys.Obs.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d events); diagnose it with ftdiag\n",
			o.events, len(sys.Obs.Events()))
	}
	if !dl.Complete || dl.Corrupted {
		return fmt.Errorf("client-visible stream was damaged")
	}
	if o.chaosSpec != "" && sys.State() == core.StateFailed {
		return fmt.Errorf("deployment ended in the failed state")
	}
	if err := sys.RejoinErr(); err != nil {
		return fmt.Errorf("rejoin failed: %w", err)
	}
	return nil
}
