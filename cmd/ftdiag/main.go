// Command ftdiag diagnoses JSONL event traces written by ftsim -events
// (or any obs.WriteJSONL stream): critical-path attribution of committed
// outputs, cross-replica first-divergence diagnosis, and causal slicing.
//
//	ftdiag attribute trace.jsonl                 # per-stage stall table
//	ftdiag attribute -json trace.jsonl           # machine-readable form
//	ftdiag attribute -critpath cp.json trace.jsonl
//	ftdiag diff good.jsonl suspect.jsonl         # first divergent tuple
//	ftdiag slice -order 1234 trace.jsonl         # causal ancestry of one event
//
// Every analysis is a pure function of the trace bytes: same input, same
// output, byte for byte. diff exits 1 when a divergence is found (0 when
// the traces agree, 2 on usage or I/O errors), so CI can assert either
// outcome without parsing the report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
	"repro/internal/obs/causal"
)

func main() {
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	var err error
	switch args[0] {
	case "attribute":
		err = cmdAttribute(args[1:])
	case "diff":
		var diverged bool
		diverged, err = cmdDiff(args[1:])
		if err == nil && diverged {
			os.Exit(1)
		}
	case "slice":
		err = cmdSlice(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "ftdiag: unknown subcommand %q\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ftdiag:", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  ftdiag attribute [-json] [-critpath out.json] trace.jsonl
  ftdiag diff [-json] [-max N] a.jsonl b.jsonl
  ftdiag slice -order N [-max N] trace.jsonl
`)
}

func readTrace(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := obs.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return events, nil
}

// cmdAttribute computes the critical-path attribution of every committed
// output and prints the fixed-format report (or JSON with -json); with
// -critpath it also writes the Perfetto-compatible critical-path track.
func cmdAttribute(args []string) error {
	fs := flag.NewFlagSet("attribute", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the attribution as JSON instead of the text report")
	critpath := fs.String("critpath", "", "also write a Perfetto-compatible critical-path track to this file")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("attribute wants exactly one trace file, got %d", fs.NArg())
	}
	events, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	a := causal.Attribute(causal.Build(events))
	if *critpath != "" {
		f, err := os.Create(*critpath)
		if err != nil {
			return err
		}
		if err := a.WriteCritPath(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(a)
	}
	a.WriteText(os.Stdout)
	return nil
}

// cmdDiff aligns two traces on their recorded det tuple orders and
// reports the first divergence. Returns whether a divergence was found.
func cmdDiff(args []string) (bool, error) {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit the diagnosis as JSON instead of the text report")
	max := fs.Int("max", 0, "causal-slice size cap (0 = default)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return false, fmt.Errorf("diff wants exactly two trace files, got %d", fs.NArg())
	}
	a, err := readTrace(fs.Arg(0))
	if err != nil {
		return false, err
	}
	b, err := readTrace(fs.Arg(1))
	if err != nil {
		return false, err
	}
	d := causal.DiffTraces(a, b)
	if d != nil && *max > 0 && len(d.Slice) > *max {
		d.Slice = d.Slice[:*max]
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			return false, err
		}
	} else {
		d.WriteReport(os.Stdout)
	}
	return d != nil, nil
}

// cmdSlice prints the causal ancestry of the event with the given global
// emission order: the event itself plus its nearest happens-before
// ancestors, in emission order.
func cmdSlice(args []string) error {
	fs := flag.NewFlagSet("slice", flag.ExitOnError)
	order := fs.Uint64("order", 0, "global emission order of the event to slice (the JSONL \"order\" field)")
	max := fs.Int("max", 0, "slice size cap (0 = default)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("slice wants exactly one trace file, got %d", fs.NArg())
	}
	if *order == 0 {
		return fmt.Errorf("slice needs -order N (a nonzero event order)")
	}
	events, err := readTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	root := -1
	for i := range events {
		if events[i].Order == *order {
			root = i
			break
		}
	}
	if root < 0 {
		return fmt.Errorf("no event with order=%d in %s (%d events)", *order, fs.Arg(0), len(events))
	}
	g := causal.Build(events)
	slice := g.Slice(root, *max)
	fmt.Printf("causal slice of event order=%d (%d events):\n", *order, len(slice))
	causal.WriteEvents(os.Stdout, slice)
	return nil
}
