// Compression: replicate the PBZIP2 parallel compressor and verify that
// the secondary replica computes a bit-identical result — then show the
// burst-versus-sustained throughput split of §4.1.
//
//	go run ./examples/compression
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/apps/pbzip2"
	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "compression:", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := pbzip2.DefaultConfig()
	cfg.BlockSize = 50 << 10
	cfg.MaxBlocks = 4000 // a 200 MB slice of the 1 GB file keeps this demo quick

	sys, err := core.NewSystem(core.DefaultConfig(1))
	if err != nil {
		return err
	}
	var pst, sst pbzip2.Stats
	sys.Primary.NS.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, cfg, &pst) })
	sys.Secondary.NS.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, cfg, &sst) })
	if err := sys.Sim.RunUntil(sim.Time(30 * time.Second)); err != nil {
		return err
	}

	fmt.Printf("PBZIP2, %d workers, %d KB blocks, %d blocks:\n\n", cfg.Workers, cfg.BlockSize>>10, cfg.MaxBlocks)
	fmt.Printf("  primary:   %4d blocks in %8v  checksum %016x\n", pst.Blocks, pst.FinishedAt, pst.Checksum)
	fmt.Printf("  secondary: %4d blocks in %8v  checksum %016x\n", sst.Blocks, sst.FinishedAt, sst.Checksum)
	want := pbzip2.ExpectChecksum(cfg)
	switch {
	case !pst.Done || !sst.Done:
		return fmt.Errorf("a replica did not finish")
	case pst.Checksum != want || sst.Checksum != want:
		return fmt.Errorf("output mismatch: want checksum %016x", want)
	}
	fmt.Println("\n  outputs are bit-identical across replicas")

	rate := func(times []sim.Time, from, to time.Duration) float64 {
		n := 0
		for _, t := range times {
			if t >= sim.Time(from) && t < sim.Time(to) {
				n++
			}
		}
		return float64(n) / (to - from).Seconds()
	}
	fmt.Printf("\n  burst throughput (0.1-0.5s):  %6.0f blocks/s (log ring still absorbing)\n",
		rate(pst.BlockTimes, 100*time.Millisecond, 500*time.Millisecond))
	fmt.Printf("  sustained (1.5s-end):         %6.0f blocks/s (throttled to the secondary's replay rate)\n",
		rate(pst.BlockTimes, 1500*time.Millisecond, pst.FinishedAt.Duration()))
	st := sys.Fabric.Stats()
	fmt.Printf("  inter-replica traffic: %d messages, %.1f MB\n", st.Messages, float64(st.Bytes)/1e6)
	return nil
}
