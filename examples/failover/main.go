// Failover: the paper's headline demo (§4.4), run on a three-replica set.
// A client downloads a large file from the replicated file server over a
// 1 Gb/s link; mid-transfer the primary partition is killed. The two
// surviving backups elect the one with the higher receipt watermark, and
// the TCP connection survives: after ~5 s of NIC driver reload the
// promoted backup resumes the same byte stream, and the client verifies
// every byte. With quorum 2 of 3, output commit waits for only the faster
// backup's receipt — the paper's two-replica rule is WithReplicaSet(2).
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/apps/clients"
	"repro/internal/apps/fileserver"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	tcp := core.DefaultConfig(1).TCP
	tcp.MSS = 32 << 10 // GSO-style segmentation for the bulk transfer
	sys, err := core.New(
		core.WithSeed(1),
		core.WithReplicaSet(3), // one primary + two backups on balanced fault domains
		core.WithQuorum(2),     // release output on the first backup receipt
		core.WithTCP(tcp),
		core.WithRejoin(false), // single-failure semantics, as in §4.4
	)
	if err != nil {
		return err
	}
	client, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		return err
	}

	fcfg := fileserver.DefaultConfig()
	fcfg.FileSize = 2 << 30 // 2 GB keeps the demo quick; §4.4 uses 10 GB
	var fst fileserver.Stats
	sys.Run(core.App{Name: "fileserver", Main: func(th *replication.Thread, socks *tcprep.Sockets) {
		fileserver.Run(th, socks, fcfg, &fst)
	}})

	verify := func(off int64, data []byte) bool {
		want := make([]byte, len(data))
		fileserver.Fill(want, off)
		for i := range data {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
	var dl clients.DownloadStats
	clients.Download(client, fcfg.Port, fcfg.FileSize, time.Second, verify, &dl)

	fmt.Println("downloading 2 GB; killing the primary at t=6s...")
	sys.InjectPrimaryFailure(6*time.Second, hw.CoreFailStop)

	if err := sys.Sim.RunUntil(sim.Time(2 * time.Minute)); err != nil {
		return err
	}

	fmt.Println("\n  per-second download rate (wget's view):")
	for _, s := range dl.Series {
		bar := int(float64(s.Bytes) * 8 / 1e6 / 25)
		fmt.Printf("  t=%4.0fs %8.0f Mb/s %s\n", s.At.Seconds(), float64(s.Bytes)*8/1e6, stars(bar))
	}
	fmt.Printf("\nfailure detected %v after injection; failover done in %v (NIC driver reload: %v)\n",
		sys.FailedAt.Sub(sim.Time(6*time.Second)), sys.LiveAt.Sub(sys.FailedAt), sys.Cfg.NICDriverLoadTime)
	fmt.Printf("election promoted replica slot %d (the most-caught-up of the two surviving backups)\n",
		sys.Active().Slot())

	// The flight recorder captured the moment the failure was declared:
	// the last acked watermark, the detector's state machine, the replay
	// lag — the post-mortem a real crash would have left behind.
	if sys.Flight != nil {
		fmt.Println()
		sys.Flight.Tail(25).WriteText(os.Stdout)
	}
	fmt.Printf("received %d/%d bytes, complete=%v corrupted=%v\n",
		dl.Received, fcfg.FileSize, dl.Complete, dl.Corrupted)
	if !dl.Complete || dl.Corrupted {
		return fmt.Errorf("transfer did not survive failover intact")
	}
	fmt.Println("the TCP connection survived the primary's death — the client never noticed beyond the stall")
	return nil
}

func stars(n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '*'
	}
	return string(b)
}
