// Quickstart: boot an FT-Linux system, replicate a multithreaded counter
// application across the two hardware partitions, kill the primary with an
// injected core fail-stop, and watch the secondary continue the work.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/replication"
	"repro/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// Boot the paper's standard deployment: one 64-core machine split into
	// two 32-core partitions, one kernel each, shared-memory mailboxes,
	// heart-beat failure detection. WithReplicaSet(2) is that two-replica
	// system; larger sets add more backups on balanced fault domains.
	sys, err := core.New(
		core.WithSeed(1),
		core.WithReplicaSet(2),
		core.WithRejoin(false), // single-failure demo: stay degraded after the kill
	)
	if err != nil {
		return err
	}

	// A race-free multithreaded application: 8 threads increment a shared
	// counter under an (interposed) pthread mutex. The same function runs
	// on both replicas; the FT-Namespace records the primary's lock order
	// and the secondary replays it.
	counts := map[replication.Role]*int{
		replication.RolePrimary:   new(int),
		replication.RoleSecondary: new(int),
	}
	app := func(out *int) func(*replication.Thread) {
		return func(root *replication.Thread) {
			lib := root.Lib()
			mu := lib.NewMutex()
			var threads []*replication.Thread
			for i := 0; i < 8; i++ {
				threads = append(threads, root.NS().SpawnThread(root, "worker", func(th *replication.Thread) {
					for j := 0; j < 500; j++ {
						th.Task().Compute(100 * time.Microsecond)
						mu.Lock(th.Task())
						*out++
						mu.Unlock(th.Task())
					}
				}))
			}
			for _, th := range threads {
				root.Join(th)
			}
			fmt.Printf("  [%v t=%v] application finished: counter = %d\n",
				root.NS().Role(), root.Task().Now(), *out)
		}
	}
	sys.Primary.NS.Start("counter", nil, app(counts[replication.RolePrimary]))
	sys.Secondary.NS.Start("counter", nil, app(counts[replication.RoleSecondary]))

	// Kill the primary partition 20ms in: a CPU core fail-stop, reported
	// by the (simulated) machine-check architecture.
	fmt.Println("injecting a core fail-stop on the primary partition at t=20ms...")
	sys.InjectPrimaryFailure(20*time.Millisecond, hw.CoreFailStop)

	if err := sys.Sim.RunUntil(sim.Time(6 * time.Second)); err != nil {
		return err
	}

	fmt.Printf("\nprimary alive: %v (%s)\n", sys.Primary.Kernel.Alive(), sys.Primary.Kernel.PanicReason().Cause)
	fmt.Printf("failure detected at %v, failover complete at %v\n", sys.FailedAt, sys.LiveAt)
	fmt.Printf("secondary role after failover: %v\n", sys.Secondary.NS.Role())
	fmt.Printf("secondary counter: %d (want 4000)\n", *counts[replication.RoleSecondary])
	st := sys.Secondary.NS.Stats()
	fmt.Printf("replayed %d deterministic sections, %d divergences\n", st.Sections, st.Divergences)
	if *counts[replication.RoleSecondary] != 4000 {
		return fmt.Errorf("secondary did not complete the work")
	}
	return nil
}
