// Webserver: run the replicated Mongoose web server under ApacheBench-style
// load and compare it with the stock-Ubuntu baseline — a miniature of the
// paper's §4.2 evaluation.
//
//	go run ./examples/webserver
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/apps/clients"
	"repro/internal/apps/mongoose"
	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "webserver:", err)
		os.Exit(1)
	}
}

func run() error {
	mcfg := mongoose.DefaultConfig()
	mcfg.CPULoad = 800 * time.Microsecond
	abcfg := clients.ABConfig{
		Port:          mcfg.Port,
		Concurrency:   100,
		ResponseBytes: mongoose.PageSize(mcfg),
		Duration:      4 * time.Second,
		WarmUp:        time.Second,
	}
	window := abcfg.Duration - abcfg.WarmUp

	// Stock Ubuntu on one partition's resources.
	base, err := core.NewBaseline(core.DefaultConfig(1))
	if err != nil {
		return err
	}
	bclient, err := base.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		return err
	}
	var bst mongoose.Stats
	base.LaunchApp("mongoose", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		mongoose.Run(th, socks, mcfg, &bst)
	})
	var bab clients.ABStats
	clients.RunAB(bclient, abcfg, &bab)
	if err := base.Sim.RunUntil(sim.Time(abcfg.Duration + time.Second)); err != nil {
		return err
	}

	// FT-Linux with full-software-stack replication.
	sys, err := core.NewSystem(core.DefaultConfig(1))
	if err != nil {
		return err
	}
	fclient, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		return err
	}
	var fst mongoose.Stats
	sys.LaunchApp("mongoose", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		mongoose.Run(th, socks, mcfg, &fst)
	})
	var fab clients.ABStats
	clients.RunAB(fclient, abcfg, &fab)
	if err := sys.Sim.RunUntil(sim.Time(abcfg.Duration + time.Second)); err != nil {
		return err
	}

	fmt.Printf("Mongoose, 10KB page, %v CPU per request, 100 concurrent connections:\n\n", mcfg.CPULoad)
	fmt.Printf("  ubuntu:   %7.0f req/s   mean latency %v\n", bab.Throughput(window), bab.MeanLatency())
	fmt.Printf("  ft-linux: %7.0f req/s   mean latency %v   (%.1f%% of ubuntu)\n",
		fab.Throughput(window), fab.MeanLatency(),
		100*fab.Throughput(window)/bab.Throughput(window))
	st := sys.Fabric.Stats()
	fmt.Printf("\ninter-replica traffic: %d messages, %.1f MB total\n", st.Messages, float64(st.Bytes)/1e6)
	fmt.Printf("secondary replayed %d sections with %d divergences; %d logical TCP conns held\n",
		sys.Secondary.NS.Stats().Sections, sys.Secondary.NS.Stats().Divergences, sys.Secondary.TCPSync.Conns())
	return nil
}
