package repro_test

import (
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/replication"
)

// The benchmarks below regenerate the paper's evaluation, one per table or
// figure; each reports the headline quantities via b.ReportMetric so the
// shape can be compared against the paper (see EXPERIMENTS.md). cmd/ftbench
// prints the full tables.

// BenchmarkFig1MemoryOccupancy reproduces Figure 1 (§2.3): physical-memory
// occupancy of a 96 GB Linux machine running memcached at 180x input size.
func BenchmarkFig1MemoryOccupancy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig1(bench.Fig1Multipliers())
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Ignored, "ignored-%@180x")
		b.ReportMetric(last.Delayed, "delayed-%@180x")
		b.ReportMetric(last.User, "user-%@180x")
	}
}

// BenchmarkFig4PBZIP2Throughput reproduces Figure 4 (§4.1) at the paper's
// highlighted 50 KB block size: Ubuntu vs FT-Linux burst and sustained.
func BenchmarkFig4PBZIP2Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := bench.DefaultPBZIPOpts()
		opts.Window = 8 * time.Second
		points, err := bench.PBZIP([]int{50}, opts)
		if err != nil {
			b.Fatal(err)
		}
		p := points[0]
		b.ReportMetric(p.Ubuntu, "ubuntu-blocks/s")
		b.ReportMetric(p.FTBurst, "ft-burst-blocks/s")
		b.ReportMetric(p.FTSustained, "ft-sustained-blocks/s")
		b.ReportMetric(p.PctOfUbuntu, "%-of-ubuntu")
	}
}

// BenchmarkFig5PBZIP2Traffic reproduces Figure 5 (§4.1): inter-replica
// messaging-layer traffic at 50 KB blocks (paper: ~34k msg/s, 4.3 MB/s).
func BenchmarkFig5PBZIP2Traffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := bench.DefaultPBZIPOpts()
		opts.Window = 8 * time.Second
		points, err := bench.PBZIP([]int{50}, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].MsgPerSec, "msg/s")
		b.ReportMetric(points[0].BytesPerSec/1e6, "MB/s")
	}
}

// BenchmarkFig6MongooseThroughput reproduces Figure 6 (§4.2) at two
// CPU-load extremes: short requests (FT ~60% of Ubuntu) and long requests
// (FT within 20%).
func BenchmarkFig6MongooseThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := bench.DefaultMongooseOpts()
		opts.Steps = 1
		opts.Window = 4 * time.Second
		short, err := bench.Mongoose(opts)
		if err != nil {
			b.Fatal(err)
		}
		opts.BaseLoad = 25600 * time.Microsecond // step-8 load
		long, err := bench.Mongoose(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(short[0].Ubuntu, "ubuntu-short-req/s")
		b.ReportMetric(short[0].FTSustained, "ft-short-req/s")
		b.ReportMetric(short[0].PctOfUbuntu, "%-short")
		b.ReportMetric(long[0].PctOfUbuntu, "%-long")
	}
}

// BenchmarkFig7MongooseTraffic reproduces Figure 7 (§4.2): inter-replica
// traffic while serving the 10 KB page under full load.
func BenchmarkFig7MongooseTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := bench.DefaultMongooseOpts()
		opts.Steps = 1
		opts.Window = 4 * time.Second
		points, err := bench.Mongoose(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].MsgPerSec, "msg/s")
		b.ReportMetric(points[0].BytesPerSec/1e6, "MB/s")
	}
}

// BenchmarkSec43MixedWorkload reproduces the §4.3 experiment: replicated
// Mongoose next to a non-replicated CPU hog (paper: FT at 91% of Ubuntu's
// throughput, +8% latency).
func BenchmarkSec43MixedWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := bench.DefaultMixedOpts()
		opts.Window = 5 * time.Second
		r, err := bench.Mixed(opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.UbuntuRPS, "ubuntu-req/s")
		b.ReportMetric(r.FTRPS, "ft-req/s")
		b.ReportMetric(r.PctRPS, "%-of-ubuntu")
		b.ReportMetric(r.PctLatency, "latency-overhead-%")
	}
}

// BenchmarkFig8FailoverTransfer reproduces Figure 8 (§4.4) at 1 GB scale:
// file transfer over 1 Gb/s with a mid-transfer primary failure.
func BenchmarkFig8FailoverTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.Fig8(bench.QuickFig8Opts())
		if err != nil {
			b.Fatal(err)
		}
		if !r.Complete || r.Corrupted {
			b.Fatalf("transfer integrity: complete=%v corrupted=%v", r.Complete, r.Corrupted)
		}
		b.ReportMetric(r.UbuntuMbps, "linux-Mb/s")
		b.ReportMetric(r.FTMbps, "ft-Mb/s")
		b.ReportMetric(r.PctFT, "%-of-linux")
		b.ReportMetric(r.OutageSeconds, "outage-s")
		b.ReportMetric(r.RecoveredMbps, "recovered-Mb/s")
	}
}

// BenchmarkIntraVsInterMachineLatency reproduces the §1 motivation numbers
// (paper, citing Guerraoui et al.: 0.55 us intra-machine vs 135 us LAN).
func BenchmarkIntraVsInterMachineLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.IntraVsInterLatency(1, 1000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.IntraMachine.Nanoseconds()), "intra-ns")
		b.ReportMetric(float64(r.InterMachine.Nanoseconds()), "inter-ns")
		b.ReportMetric(r.Ratio, "ratio")
	}
}

// BenchmarkFaultOutcomes reproduces the §2.2 fault-model arithmetic: the
// fate of random memory errors under the 180x memcached load.
func BenchmarkFaultOutcomes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := bench.FaultOutcomes(180, 20000, false, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.KernelPanic, "kernel-panic-%")
		b.ReportMetric(100*r.Delayed, "delayed-%")
		b.ReportMetric(100*r.UserKill, "user-kill-%")
	}
}

// BenchmarkAblationOutputCommit compares strict output commit against the
// §3.5 relaxed single-machine mode.
func BenchmarkAblationOutputCommit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Ablations(1, true)
		if err != nil {
			b.Fatal(err)
		}
		_ = rows // full table printed by `ftbench -exp ablations`
	}
}

// BenchmarkDetSectionOverhead measures the per-block deterministic-section
// rate of the PBZIP2 workload at an uncontended block size (microbenchmark
// for the recording overhead).
func BenchmarkDetSectionOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := bench.DefaultPBZIPOpts()
		opts.Window = 4 * time.Second
		points, err := bench.PBZIP([]int{400}, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].MsgPerSec/points[0].FTSustained, "sections/block")
		b.ReportMetric(float64(replication.DefaultConfig().SectionCost.Nanoseconds()), "section-cost-ns")
	}
}
