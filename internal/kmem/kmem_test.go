package kmem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

const (
	kib = 1 << 10
	mib = 1 << 20
)

func TestAllocAndFree(t *testing.T) {
	a := NewAccounting(100*mib, 4*kib)
	if a.TotalBytes() != 100*mib {
		t.Fatalf("TotalBytes = %d", a.TotalBytes())
	}
	if err := a.Alloc(User, 10*mib); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := a.Alloc(KernelIgnored, 5*mib); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if got := a.Bytes(User); got != 10*mib {
		t.Errorf("User = %d, want 10 MiB", got)
	}
	if got := a.Bytes(Free); got != 85*mib {
		t.Errorf("Free = %d, want 85 MiB", got)
	}
	if err := a.Freeing(User, 4*mib); err != nil {
		t.Fatalf("Freeing: %v", err)
	}
	if got := a.Bytes(User); got != 6*mib {
		t.Errorf("User after free = %d, want 6 MiB", got)
	}
	if got := a.Fraction(KernelIgnored); got != 0.05 {
		t.Errorf("Ignored fraction = %v, want 0.05", got)
	}
}

func TestAllocRoundsUpToPages(t *testing.T) {
	a := NewAccounting(1*mib, 4*kib)
	if err := a.Alloc(User, 1); err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if got := a.Bytes(User); got != 4*kib {
		t.Errorf("1-byte alloc accounted %d bytes, want one page", got)
	}
}

func TestAllocOutOfMemory(t *testing.T) {
	a := NewAccounting(1*mib, 4*kib)
	err := a.Alloc(User, 2*mib)
	if !errors.Is(err, ErrNoMemory) {
		t.Fatalf("Alloc err = %v, want ErrNoMemory", err)
	}
	if a.Bytes(User) != 0 || a.Bytes(Free) != 1*mib {
		t.Error("failed alloc changed accounting")
	}
}

func TestReclassify(t *testing.T) {
	a := NewAccounting(10*mib, 4*kib)
	if err := a.Alloc(KernelDelayed, 2*mib); err != nil {
		t.Fatal(err)
	}
	if err := a.Reclassify(KernelDelayed, User, 1*mib); err != nil {
		t.Fatalf("Reclassify: %v", err)
	}
	if a.Bytes(KernelDelayed) != 1*mib || a.Bytes(User) != 1*mib {
		t.Errorf("after reclassify: delayed=%d user=%d", a.Bytes(KernelDelayed), a.Bytes(User))
	}
	if err := a.Reclassify(User, KernelIgnored, 5*mib); err == nil {
		t.Error("reclassify beyond source size succeeded")
	}
}

func TestSnapshotSumsToTotal(t *testing.T) {
	a := NewAccounting(64*mib, 4*kib)
	_ = a.Alloc(User, 10*mib)
	_ = a.Alloc(KernelIgnored, 3*mib)
	_ = a.Alloc(KernelDelayed, 7*mib)
	s := a.Snapshot()
	if sum := s.Free + s.Ignored + s.Delayed + s.User; sum != s.Total {
		t.Errorf("snapshot classes sum to %d, total %d", sum, s.Total)
	}
}

func TestClassifyAddrLayout(t *testing.T) {
	a := NewAccounting(100*mib, 4*kib)
	_ = a.Alloc(KernelIgnored, 10*mib)
	_ = a.Alloc(KernelDelayed, 20*mib)
	_ = a.Alloc(User, 30*mib)
	cases := []struct {
		addr int64
		want PageClass
	}{
		{0, KernelIgnored},
		{10*mib - 1, KernelIgnored},
		{10 * mib, KernelDelayed},
		{30*mib - 1, KernelDelayed},
		{30 * mib, User},
		{60*mib - 1, User},
		{60 * mib, Free},
		{100*mib - 1, Free},
	}
	for _, c := range cases {
		got, err := a.ClassifyAddr(c.addr)
		if err != nil {
			t.Fatalf("ClassifyAddr(%d): %v", c.addr, err)
		}
		if got != c.want {
			t.Errorf("ClassifyAddr(%d) = %v, want %v", c.addr, got, c.want)
		}
	}
	if _, err := a.ClassifyAddr(-1); err == nil {
		t.Error("negative address accepted")
	}
	if _, err := a.ClassifyAddr(100 * mib); err == nil {
		t.Error("address past end accepted")
	}
}

func TestOutcomeOf(t *testing.T) {
	cases := []struct {
		class     PageClass
		corrected bool
		want      Outcome
	}{
		{KernelIgnored, false, OutcomeKernelPanic},
		{KernelDelayed, false, OutcomeDelayed},
		{User, false, OutcomeUserKill},
		{Free, false, OutcomeNone},
		{KernelIgnored, true, OutcomeNone},
		{User, true, OutcomeNone},
	}
	for _, c := range cases {
		if got := OutcomeOf(c.class, c.corrected); got != c.want {
			t.Errorf("OutcomeOf(%v, %v) = %v, want %v", c.class, c.corrected, got, c.want)
		}
	}
}

// TestConservationQuick property-tests that any random sequence of valid
// alloc/free/reclassify operations conserves total pages and never drives
// any class negative.
func TestConservationQuick(t *testing.T) {
	classes := []PageClass{KernelIgnored, KernelDelayed, User}
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewAccounting(256*mib, 4*kib)
		for i := 0; i < int(ops); i++ {
			c := classes[rng.Intn(len(classes))]
			bytes := int64(rng.Intn(32 * mib))
			switch rng.Intn(3) {
			case 0:
				_ = a.Alloc(c, bytes)
			case 1:
				_ = a.Freeing(c, bytes)
			case 2:
				_ = a.Reclassify(c, classes[rng.Intn(len(classes))], bytes)
			}
			s := a.Snapshot()
			if s.Free < 0 || s.Ignored < 0 || s.Delayed < 0 || s.User < 0 {
				return false
			}
			if s.Free+s.Ignored+s.Delayed+s.User != s.Total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestClassifyAddrProbability verifies that uniformly random addresses hit
// each class with probability proportional to its occupancy.
func TestClassifyAddrProbability(t *testing.T) {
	a := NewAccounting(1000*mib, 4*kib)
	_ = a.Alloc(KernelIgnored, 150*mib)
	_ = a.Alloc(KernelDelayed, 200*mib)
	_ = a.Alloc(User, 450*mib)
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	hits := map[PageClass]int{}
	for i := 0; i < n; i++ {
		c, err := a.ClassifyAddr(rng.Int63n(a.TotalBytes()))
		if err != nil {
			t.Fatal(err)
		}
		hits[c]++
	}
	check := func(c PageClass, want float64) {
		got := float64(hits[c]) / n
		if got < want-0.01 || got > want+0.01 {
			t.Errorf("class %v hit rate %.3f, want ~%.3f", c, got, want)
		}
	}
	check(KernelIgnored, 0.15)
	check(KernelDelayed, 0.20)
	check(User, 0.45)
	check(Free, 0.20)
}

func TestStrings(t *testing.T) {
	if User.String() != "user" || KernelIgnored.String() != "ignored" {
		t.Error("PageClass strings wrong")
	}
	if OutcomeKernelPanic.String() != "kernel-panic" {
		t.Error("Outcome string wrong")
	}
	if PageClass(77).String() == "" || Outcome(77).String() == "" {
		t.Error("unknown values print empty")
	}
}
