// Package kmem models physical-memory page accounting for a monolithic
// kernel, following the categories of the paper's Figure 1 memory-dump
// experiment (§2.3) and Linux's mm/memory-failure.c handling:
//
//   - KernelIgnored: kernel data that is unrecoverable when hit by a memory
//     fault (kernel text, page tables, slab, stacks, struct page array) —
//     Linux's memory fault-tolerance must ignore errors there, and the
//     kernel dies.
//   - KernelDelayed: kernel memory whose loss Linux can survive without
//     immediate failure (clean page cache, reclaimable buffers) — handling
//     is delayed.
//   - User: user-space pages; a fault there kills the owning application.
//   - Free: unused pages; a fault there is absorbed by offlining the page.
//
// The package also decides the outcome of a memory fault given the page
// class it strikes, which drives both the Figure 1 reproduction and the
// fault-injection experiments.
package kmem

import (
	"errors"
	"fmt"
)

// PageClass classifies a physical page by owner and recoverability.
type PageClass int

const (
	// Free is an unallocated page.
	Free PageClass = iota + 1
	// KernelIgnored is unrecoverable kernel memory ("Ignored" in Fig. 1).
	KernelIgnored
	// KernelDelayed is recoverable kernel memory ("Delayed" in Fig. 1).
	KernelDelayed
	// User is application memory ("User" in Fig. 1).
	User

	numClasses = int(User) + 1
)

var classNames = map[PageClass]string{
	Free:          "free",
	KernelIgnored: "ignored",
	KernelDelayed: "delayed",
	User:          "user",
}

func (c PageClass) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("PageClass(%d)", int(c))
}

// ErrNoMemory is returned by Alloc when not enough free pages remain.
var ErrNoMemory = errors.New("kmem: out of memory")

// Accounting tracks how a kernel's physical memory is divided among page
// classes. All quantities are in bytes, rounded up to whole pages.
type Accounting struct {
	pageSize int64
	total    int64 // pages
	pages    [numClasses]int64
}

// NewAccounting creates accounting for totalBytes of RAM with the given
// page size. All memory starts Free.
func NewAccounting(totalBytes, pageSize int64) *Accounting {
	if pageSize <= 0 || totalBytes < pageSize {
		panic(fmt.Sprintf("kmem: bad accounting size total=%d page=%d", totalBytes, pageSize))
	}
	a := &Accounting{pageSize: pageSize, total: totalBytes / pageSize}
	a.pages[Free] = a.total
	return a
}

// PageSize returns the page size in bytes.
func (a *Accounting) PageSize() int64 { return a.pageSize }

// TotalBytes reports the total accounted RAM in bytes.
func (a *Accounting) TotalBytes() int64 { return a.total * a.pageSize }

func (a *Accounting) npages(bytes int64) int64 {
	return (bytes + a.pageSize - 1) / a.pageSize
}

// Alloc moves enough free pages to hold bytes into the given class. It
// fails with ErrNoMemory (wrapped with context) if free memory is short.
func (a *Accounting) Alloc(class PageClass, bytes int64) error {
	if class == Free {
		panic("kmem: Alloc(Free)")
	}
	n := a.npages(bytes)
	if n > a.pages[Free] {
		return fmt.Errorf("kmem: alloc %d bytes as %v: %w (free: %d bytes)",
			bytes, class, ErrNoMemory, a.pages[Free]*a.pageSize)
	}
	a.pages[Free] -= n
	a.pages[class] += n
	return nil
}

// Reclassify moves bytes worth of pages from one class to another (e.g.
// page cache pages becoming user pages after a write). It fails if the
// source class is short.
func (a *Accounting) Reclassify(from, to PageClass, bytes int64) error {
	n := a.npages(bytes)
	if n > a.pages[from] {
		return fmt.Errorf("kmem: reclassify %d bytes %v->%v: only %d bytes in source",
			bytes, from, to, a.pages[from]*a.pageSize)
	}
	a.pages[from] -= n
	a.pages[to] += n
	return nil
}

// Freeing returns bytes worth of pages from class back to Free. It fails if
// the class is short.
func (a *Accounting) Freeing(class PageClass, bytes int64) error {
	return a.Reclassify(class, Free, bytes)
}

// Bytes reports the bytes currently accounted to the class.
func (a *Accounting) Bytes(class PageClass) int64 { return a.pages[class] * a.pageSize }

// Fraction reports the share of total RAM accounted to the class, in [0,1].
func (a *Accounting) Fraction(class PageClass) float64 {
	return float64(a.pages[class]) / float64(a.total)
}

// Snapshot is a point-in-time copy of the accounting, in bytes.
type Snapshot struct {
	Total   int64
	Free    int64
	Ignored int64
	Delayed int64
	User    int64
}

// Snapshot returns the current byte counts per class.
func (a *Accounting) Snapshot() Snapshot {
	return Snapshot{
		Total:   a.TotalBytes(),
		Free:    a.Bytes(Free),
		Ignored: a.Bytes(KernelIgnored),
		Delayed: a.Bytes(KernelDelayed),
		User:    a.Bytes(User),
	}
}

// ClassifyAddr maps a physical byte offset in [0, TotalBytes) to the page
// class it would strike, laying classes out contiguously in the order
// Ignored, Delayed, User, Free. The layout is synthetic but class-
// probability-exact: a uniformly random address hits each class with
// probability equal to its occupancy share, which is what the fault-outcome
// experiments need.
func (a *Accounting) ClassifyAddr(addr int64) (PageClass, error) {
	if addr < 0 || addr >= a.TotalBytes() {
		return 0, fmt.Errorf("kmem: address %#x outside RAM of %d bytes", addr, a.TotalBytes())
	}
	page := addr / a.pageSize
	for _, c := range []PageClass{KernelIgnored, KernelDelayed, User, Free} {
		if page < a.pages[c] {
			return c, nil
		}
		page -= a.pages[c]
	}
	// Unreachable: the class counts always sum to total.
	return Free, nil
}

// Outcome is the effect of a memory fault on the software stack.
type Outcome int

const (
	// OutcomeNone: the fault was absorbed (corrected error, or a free page
	// that the kernel offlines).
	OutcomeNone Outcome = iota + 1
	// OutcomeKernelPanic: the fault hit unrecoverable kernel memory; the
	// whole kernel (and every application on it) dies.
	OutcomeKernelPanic
	// OutcomeDelayed: the fault hit recoverable kernel memory; the kernel
	// continues operation without immediate failure.
	OutcomeDelayed
	// OutcomeUserKill: the fault hit an application page; the application
	// is killed.
	OutcomeUserKill
)

var outcomeNames = map[Outcome]string{
	OutcomeNone:        "none",
	OutcomeKernelPanic: "kernel-panic",
	OutcomeDelayed:     "delayed",
	OutcomeUserKill:    "user-kill",
}

func (o Outcome) String() string {
	if s, ok := outcomeNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// OutcomeOf decides what a memory fault does given the page class it hits
// and whether the error was corrected by ECC.
func OutcomeOf(class PageClass, corrected bool) Outcome {
	if corrected {
		return OutcomeNone
	}
	switch class {
	case KernelIgnored:
		return OutcomeKernelPanic
	case KernelDelayed:
		return OutcomeDelayed
	case User:
		return OutcomeUserKill
	default:
		return OutcomeNone
	}
}
