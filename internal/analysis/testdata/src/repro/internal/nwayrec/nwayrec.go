// Package nwayrec is the golden fixture for the watermark analyzer's
// data-vector exemption (the N-way quorum recorder idiom): a per-replica
// map of watermark-carrying structs WITHOUT a callback field is a
// receipt-state snapshot — nothing waits on it, so storing or appending
// one needs no dominating force-flush. The discriminator is the
// func-typed field: a struct carrying both a watermark and a callback is
// still the armable waiter shape and keeps the flush obligation.
package nwayrec

// mark is the per-replica receipt watermark entry: pure data, no
// callback. The shape of replication.ReplicaWatermark.
type mark struct {
	index     int
	watermark uint64
	dead      bool
}

// waiter is the armable output-commit waiter shape: watermark plus the
// release callback.
type waiter struct {
	watermark uint64
	fn        func()
}

type Rec struct {
	marks   map[int]mark
	vector  []mark
	stableQ []waiter
	sent    uint64
	buffed  int
}

func (r *Rec) flushForCommit() { r.buffed = 0 }

// noteMark refreshes one replica's receipt entry: a map store of a
// watermark-carrying DATA struct, legal with no flush in sight.
func (r *Rec) noteMark(i int, acked uint64, dead bool) {
	r.marks[i] = mark{index: i, watermark: acked, dead: dead}
}

// watermarks builds the vector view: appending data structs is equally
// exempt.
func (r *Rec) watermarks(n int) []mark {
	out := make([]mark, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.marks[i])
	}
	return out
}

// snapshot mixes both exempt shapes in one helper; calls to it must not
// become propagated arm sites.
func (r *Rec) snapshot(i int) {
	r.noteMark(i, r.sent, false)
	r.vector = append(r.vector, r.marks[i])
}

// Election ranks replicas off the vector — calling through the exempt
// helpers stays clean.
func (r *Rec) Election(n int) int {
	r.snapshot(0)
	best, bestMark := -1, uint64(0)
	for _, m := range r.watermarks(n) {
		if !m.dead && m.watermark >= bestMark {
			best, bestMark = m.index, m.watermark
		}
	}
	return best
}

// bad arms a REAL waiter (callback field present) with no flush: the
// exemption must not swallow the armable shape.
func (r *Rec) bad(fn func()) {
	r.stableQ = append(r.stableQ, waiter{watermark: r.sent, fn: fn}) // want "without a dominating force-flush"
}

// good flushes first, then arms and snapshots: the data-vector store
// after the arm needs no second flush.
func (r *Rec) good(fn func()) {
	r.flushForCommit()
	r.stableQ = append(r.stableQ, waiter{watermark: r.sent, fn: fn})
	r.noteMark(0, r.sent, false)
}
