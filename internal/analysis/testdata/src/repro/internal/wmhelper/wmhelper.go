// Package wmhelper is the golden fixture for watermark's
// interprocedural layer: the arm site lives in a helper, and the
// flush-before-arm invariant is judged at the call sites. The helper
// itself is reported nowhere — it is fine precisely when every caller
// flushes first — while each caller that fails to flush is flagged with
// the chain to the arming statement.
package wmhelper

type waiter struct {
	watermark uint64
	fn        func()
}

type H struct {
	q    []waiter
	sent uint64
	buf  int
}

func (h *H) flushForCommit() { h.buf = 0 }

// arm appends a waiter with no internal flush. With in-tree callers it
// carries the obligation outward instead of being reported here.
func (h *H) arm(fn func()) {
	h.q = append(h.q, waiter{watermark: h.sent, fn: fn})
}

// callerBad arms through the helper without flushing first.
func (h *H) callerBad(fn func()) {
	h.arm(fn) // want "call to arm arms an output-commit waiter"
}

// callerGood flushes before the call: the arm inside is covered.
func (h *H) callerGood(fn func()) {
	h.flushForCommit()
	h.arm(fn)
}

// deepArm forwards to arm without flushing: an unflushed frame in the
// middle of the chain is reported too — each frame can fix it locally.
func (h *H) deepArm(fn func()) {
	h.arm(fn) // want "call to arm arms an output-commit waiter"
}

// deepCaller reaches the arm two calls down with no flush anywhere.
func (h *H) deepCaller(fn func()) {
	h.deepArm(fn) // want "call to deepArm arms an output-commit waiter"
}

// deepCallerGood: a flush before the top call covers the whole chain.
func (h *H) deepCallerGood(fn func()) {
	h.flushForCommit()
	h.deepArm(fn)
}
