// Package epochtrunc exercises the retained-log truncation rule: a
// prefix drop of a history slice (`x.history = x.history[keep:]`) must
// sit behind a guard naming the verified epoch boundary, or the replica
// may discard catch-up state a promotion or rejoin still needs
// (DESIGN.md §18).
package epochtrunc

type rec struct {
	history  []int
	histBase int
}

// goodTruncate mirrors the recorder/replayer idiom: clamp to the
// verified watermark before dropping the prefix. Sanctioned.
func goodTruncate(r *rec, verifiedSent int) {
	if verifiedSent < r.histBase {
		return
	}
	keep := verifiedSent - r.histBase
	r.histBase = verifiedSent
	r.history = r.history[keep:]
}

// badTruncate drops a history prefix with no verified-boundary guard
// anywhere in sight: an unverified epoch's tuples vanish.
func badTruncate(r *rec, keep int) {
	r.histBase += keep
	r.history = r.history[keep:] // want "verified-boundary guard"
}

// tailTrim has no low bound: it discards the tail, not the retained
// prefix, so it is not a truncation site.
func tailTrim(r *rec, n int) {
	r.history = r.history[:n]
}

// reset replaces the slice wholesale rather than reslicing it; also not
// a prefix drop.
func reset(r *rec) {
	r.history = nil
	r.history = append(r.history, 1)
}

// localTruncate shows the rule also covers bare local variables named
// for the retained history, with the same sanction shape.
func localTruncate(history []int, verified, base int) []int {
	if verified < base {
		return history
	}
	history = history[verified-base:]
	return history
}

// badLocalTruncate is the unguarded local-variable form.
func badLocalTruncate(history []int, keep int) []int {
	history = history[keep:] // want "verified-boundary guard"
	return history
}
