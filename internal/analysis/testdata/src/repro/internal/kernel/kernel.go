// Package kernel is a fixture stub mirroring the shape of the real
// repro/internal/kernel just enough for analyzer golden tests. Fixture
// packages resolve import paths verbatim under testdata/src, so this
// stub shadows the real package for fixtures only.
package kernel

// Task stands in for the real kernel task.
type Task struct{ name string }

// Name returns the task name.
func (t *Task) Name() string { return t.name }
