// Package notrep is the negative fixture for the nondet analyzer: its
// import path is outside the replicated set (internal/apps/...,
// internal/pthread, internal/tcprep), so raw nondeterminism here is the
// analyzer's business to ignore — benchmarks and tooling legitimately
// read the wall clock.
package notrep

import (
	"math/rand"
	"time"
)

func wallClock() time.Time { return time.Now() }

func jitter() int { return rand.Intn(10) }

func order(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
