// Package obstrace is the fixture for the trace-attribute side of the
// nondet analyzer: it lives OUTSIDE the replicated set, where wall-clock
// reads are ordinarily legal, but values smuggled into the arguments of
// an obs call become trace attributes and must be deterministic —
// same-seed traces are compared byte-for-byte.
package obstrace

import (
	"time"

	"repro/internal/obs"
)

var start time.Time

// wallClockOutsideObs: fine — the analyzer only polices obs arguments
// in non-replicated packages.
func wallClockOutsideObs() time.Duration {
	start = time.Now()
	return time.Since(start)
}

// deterministicAttrs: fine — attributes derived from program state.
func deterministicAttrs(sc *obs.Scope, seq int64) {
	sc.Emit(obs.TupleEmit, 1, seq, seq*2)
	sc.EmitNote(obs.Heartbeat, 0, seq, 0, "beat")
}

// smuggledNow leaks the wall clock into a trace attribute.
func smuggledNow(sc *obs.Scope) {
	sc.Emit(obs.TupleEmit, 0, time.Now().UnixNano(), 0) // want "time.Now in an obs trace attribute"
}

// smuggledSince hides the clock read inside a nested expression.
func smuggledSince(sc *obs.Scope, c *obs.Counter) {
	sc.EmitNote(obs.Heartbeat, 0, 0, int64(time.Since(start)/time.Millisecond), "late") // want "time.Since in an obs trace attribute"
	c.Add(int64(time.Since(start))) // want "time.Since in an obs trace attribute"
}
