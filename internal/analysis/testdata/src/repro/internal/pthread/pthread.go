// Package pthread is a fixture stub mirroring the real
// repro/internal/pthread surface the analyzers key on: the Det
// deterministic-section interface and the interposed lock types. The
// analyzers match methods by name within a package path containing
// "internal/pthread", so fixtures importing this stub exercise the same
// code paths as the real tree.
package pthread

import "repro/internal/kernel"

// Op identifies an interposed operation.
type Op int

// Interposed operation codes used by fixtures.
const (
	OpMutexLock Op = iota + 1
	OpSyscall
)

// Det is the deterministic-section protocol (see the real package).
type Det interface {
	Section(t *kernel.Task, op Op, obj uint64, fn func())
	Resolve(t *kernel.Task, op Op, obj uint64, block func(), settle func() uint64) uint64
}

// Mutex mirrors the interposed pthread_mutex_t.
type Mutex struct{ locked bool }

// Lock acquires the mutex.
func (m *Mutex) Lock(t *kernel.Task) { m.locked = true }

// Unlock releases the mutex.
func (m *Mutex) Unlock(t *kernel.Task) { m.locked = false }

// RWLock mirrors the interposed pthread_rwlock_t.
type RWLock struct{ readers int }

// RdLock acquires a read lock.
func (rw *RWLock) RdLock(t *kernel.Task) { rw.readers++ }

// RdUnlock releases a read lock.
func (rw *RWLock) RdUnlock(t *kernel.Task) { rw.readers-- }

// WrLock acquires the write lock.
func (rw *RWLock) WrLock(t *kernel.Task) {}

// WrUnlock releases the write lock.
func (rw *RWLock) WrUnlock(t *kernel.Task) {}
