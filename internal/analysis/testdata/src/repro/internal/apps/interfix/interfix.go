// Package interfix is the golden fixture for nondet's interprocedural
// layer: nondeterminism that enters replicated code through helpers in
// repro/internal/timeutil (a non-replicated package, where the sources
// themselves are legal). The old syntactic checks see none of these —
// every violation is at least one call away from its source.
package interfix

import (
	"sort"

	"repro/internal/timeutil"
)

type rec struct {
	out []string
	log []int64
}

// push is an ordered sink by name: it serializes its argument into
// replicated output.
func (r *rec) push(s string) { r.out = append(r.out, s) }

// stampBad observes a wall-clock value two hops from time.Now.
func (r *rec) stampBad() {
	r.log = append(r.log, timeutil.Stamp()) // want "call to Stamp carries a wall-clock value"
}

// pidBad observes the raw process id through a helper.
func (r *rec) pidBad() int {
	return timeutil.ID() // want "call to ID carries the raw process id"
}

// randBad observes a package-level rand draw through a helper.
func (r *rec) randBad() int64 {
	return timeutil.Jitter() // want "call to Jitter carries a package-level math/rand draw"
}

// keysBad sends a helper's map-iteration-ordered value into a channel:
// the range is in timeutil.Keys, the escape is here.
func (r *rec) keysBad(m map[string]int, ch chan string) {
	ks := timeutil.Keys(m)
	ch <- ks[0] // want "map iteration order from a helper"
}

// sinkBad hands the unordered keys to an ordered sink call.
func (r *rec) sinkBad(m map[string]int) {
	ks := timeutil.Keys(m)
	r.push(ks[0]) // want "map iteration order from a helper"
}

// sortedGood uses the helper that sorts before returning: no taint.
func (r *rec) sortedGood(m map[string]int, ch chan string) {
	ks := timeutil.SortedKeys(m)
	ch <- ks[0]
}

// sortHereGood re-sorts the tainted slice locally before emitting: the
// collect-then-sort idiom discharges the map-order taint at the caller.
func (r *rec) sortHereGood(m map[string]int, ch chan string) {
	ks := timeutil.Keys(m)
	sort.Strings(ks)
	ch <- ks[0]
}
