package nondetfix

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// keysSorted is the sanctioned collect-then-sort idiom: the append
// escapes the map order, but the sort re-establishes a deterministic
// order before anything observes it.
func keysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// total is commutative aggregation: iteration order cannot be observed.
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// invert writes into another map: order-insensitive.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// benchClock demonstrates the audited escape hatch: the waiver names
// the analyzer and states why the invariant may be waived here.
func benchClock() time.Time {
	return time.Now() //ftvet:allow nondet: wall clock is reported to the operator only, never fed back into replicated state
}

// traceCounts shows the sanctioned sink: obs events are local
// observability, never part of the replicated log, so Emit matching the
// ordered-sink pattern inside a map range is not an order escape.
func traceCounts(sc *obs.Scope, m map[int]int64) {
	for k, v := range m {
		sc.Emit(obs.TupleEmit, k, v, 0)
	}
}
