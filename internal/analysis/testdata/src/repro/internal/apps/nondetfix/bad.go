// Package nondetfix is the positive golden fixture for the nondet
// analyzer. Its import path sits under repro/internal/apps/, so the
// analyzer treats it as replicated application code.
package nondetfix

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/shm"
)

type sink struct{ out []string }

func (s *sink) Send(v string) { s.out = append(s.out, v) }

func clock() int64 {
	now := time.Now() // want "time.Now in replicated code"
	d := time.Since(now) // want "time.Since reads the local clock"
	return int64(d)
}

func pid() int {
	return os.Getpid() // want "os.Getpid is not replicated"
}

func draw() int {
	return rand.Intn(6) // want "package-level math/rand"
}

func emit(m map[string]int, s *sink, ch chan string) {
	for k := range m { // want "via append"
		s.out = append(s.out, k)
	}
	for k := range m { // want "via a channel send"
		ch <- k
	}
	var joined string
	for k := range m { // want "via string concatenation"
		joined += k
	}
	_ = joined
	for k, v := range m { // want "via Send"
		s.Send(fmt.Sprint(k, v))
	}
}

func commitTuple(v int) {}

// fabric: the zero-copy span is an ordered sink too — a Put writes its
// argument at the span's reserved ring position, so map order becomes
// the publication order the other replica replays.
func fabric(m map[string]int, sp *shm.Span) {
	for k, v := range m { // want "via Put"
		sp.Put(shm.Message{Kind: v, Size: len(k)})
	}
	for _, v := range m { // want "via commitTuple"
		commitTuple(v)
	}
}
