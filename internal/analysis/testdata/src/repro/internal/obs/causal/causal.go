// Package causal is a fixture stub mirroring the shape of the real
// repro/internal/obs/causal for analyzer golden tests: the diagnosis
// call surface the nondet analyzer treats as a sanctioned sink whose
// arguments must still be deterministic (they land in golden-pinned
// reports).
package causal

// Divergence mirrors the real first-divergence diagnosis.
type Divergence struct {
	Notes []string
}

// Annotate mirrors the real deterministic key=value annotation.
func Annotate(d *Divergence, key string, v int64) {}

// OutputPath mirrors the real per-committed-output critical path: it
// carries the receipt watermark as recorded data, so the watermark
// analyzer must not treat slices of it as output-commit waiter queues.
type OutputPath struct {
	Watermark int64
	TotalNs   int64
}

// Attribution mirrors the real critical-path analysis.
type Attribution struct {
	Outputs []OutputPath
}

// WriteText mirrors the real fixed-format report renderer.
func (a *Attribution) WriteText(w interface{ Write([]byte) (int, error) }) {}
