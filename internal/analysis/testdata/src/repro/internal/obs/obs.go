// Package obs is a fixture stub mirroring the shape of the real
// repro/internal/obs for analyzer golden tests: the call surface the
// nondet analyzer treats as a sanctioned sink with deterministic-
// attribute requirements.
package obs

// Kind mirrors the real event-kind enum.
type Kind uint8

// A couple of kinds, enough for fixtures to emit.
const (
	TupleEmit Kind = iota + 1
	Heartbeat
)

// Scope mirrors the real event scope.
type Scope struct{}

// Emit mirrors the real nil-safe event emission.
func (sc *Scope) Emit(k Kind, tid int, seq, arg int64) {}

// EmitNote mirrors Emit with a detail string.
func (sc *Scope) EmitNote(k Kind, tid int, seq, arg int64, note string) {}

// Counter mirrors the real metrics counter.
type Counter struct{}

// Add mirrors the real nil-safe counter increment.
func (c *Counter) Add(n int64) {}
