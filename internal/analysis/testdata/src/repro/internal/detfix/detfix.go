// Package detfix is the golden fixture for the detsection analyzer:
// deterministic-section callbacks must stay short, local, and
// non-blocking (Figure 3).
package detfix

import (
	"repro/internal/kernel"
	"repro/internal/pthread"
	"repro/internal/shm"
	"repro/internal/sim"
)

type state struct {
	det  pthread.Det
	ring *shm.Ring
	n    int
}

func work() {}

func (s *state) bad(t *kernel.Task, ch chan int, p *sim.Proc) {
	s.det.Section(t, pthread.OpMutexLock, 1, func() {
		go work() // want "goroutine spawned inside a deterministic section"
		ch <- s.n // want "channel send inside a deterministic section"
		s.n = <-ch // want "channel receive inside a deterministic section"
		close(ch) // want "close of a channel inside a deterministic section"
		s.ring.TrySend(shm.Message{}) // want "shared-memory mailbox"
	})
}

func (s *state) badSelect(t *kernel.Task, ch chan int) {
	s.det.Section(t, pthread.OpMutexLock, 2, func() {
		select { // want "select inside a deterministic section"
		case v := <-ch:
			s.n = v
		default:
		}
	})
}

// resolveSettle: the settle callback runs inside the deterministic
// section; the block callback runs outside the global mutex and MAY
// block (that is its purpose, §3.3) — only settle is policed.
func (s *state) resolveSettle(t *kernel.Task, ch chan int) uint64 {
	return s.det.Resolve(t, pthread.OpSyscall, 3,
		func() { <-ch }, // block parks outside the mutex: not flagged
		func() uint64 {
			s.ring.TrySend(shm.Message{}) // want "shared-memory mailbox"
			return 0
		})
}

// spanInSection: the zero-copy reservation API is still the mailbox.
// Claiming a span (which can block on ring backpressure) or writing one
// inside a section is the same re-entry the wrapper sends were banned
// for.
func (s *state) spanInSection(t *kernel.Task, sp *shm.Span) {
	s.det.Section(t, pthread.OpMutexLock, 5, func() {
		s.ring.TryReserve(1, 64) // want "shared-memory mailbox"
		sp.Put(shm.Message{})    // want "shared-memory mailbox"
	})
}

// good: sections that only update local state, with mailbox traffic
// moved after the section returns.
func (s *state) good(t *kernel.Task, p *sim.Proc) {
	var out *shm.Message
	s.det.Section(t, pthread.OpMutexLock, 4, func() {
		s.n++
		out = &shm.Message{Kind: 1, Size: s.n}
	})
	if out != nil {
		s.ring.Send(p, *out)
	}
}
