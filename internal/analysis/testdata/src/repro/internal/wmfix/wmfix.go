// Package wmfix is the golden fixture for the watermark analyzer: every
// path that arms an output-commit waiter (appending a watermark-struct)
// must be dominated by a force-flush, so batched log tuples can never
// stall output release (§3.5).
package wmfix

type waiter struct {
	watermark uint64
	fn        func()
}

type Q struct {
	q      []waiter
	pq     []*waiter
	sent   uint64
	buffed int
}

func (q *Q) flushForCommit() { q.buffed = 0 }

// bad arms a waiter with no flush anywhere in sight.
func (q *Q) bad(fn func()) {
	q.q = append(q.q, waiter{watermark: q.sent, fn: fn}) // want "without a dominating force-flush"
}

// good flushes first: the watermark covers only in-flight data.
func (q *Q) good(fn func()) {
	q.flushForCommit()
	q.q = append(q.q, waiter{watermark: q.sent, fn: fn})
}

// goodGuarded mirrors Recorder.onStable: early-return guards before the
// flush are fine, those paths never arm.
func (q *Q) goodGuarded(fn func()) {
	if q.buffed == 0 {
		fn()
		return
	}
	q.flushForCommit()
	if q.sent == 0 {
		fn()
		return
	}
	q.q = append(q.q, waiter{watermark: q.sent, fn: fn})
}

// badBranch: a flush inside one arm does not dominate an arm site after
// the branch.
func (q *Q) badBranch(fn func(), cond bool) {
	if cond {
		q.flushForCommit()
	}
	q.q = append(q.q, waiter{watermark: q.sent, fn: fn}) // want "without a dominating force-flush"
}

// goodBranch: arming inside a branch after an unconditional flush.
func (q *Q) goodBranch(fn func(), cond bool) {
	q.flushForCommit()
	if cond {
		q.q = append(q.q, waiter{watermark: q.sent, fn: fn})
	}
}

// badPtr: pointer-element waiter queues are armed the same way.
func (q *Q) badPtr(w *waiter) {
	q.pq = append(q.pq, w) // want "without a dominating force-flush"
}

// unrelated appends are not output-commit waiters.
func (q *Q) unrelated(xs []int, x int) []int {
	return append(xs, x)
}
