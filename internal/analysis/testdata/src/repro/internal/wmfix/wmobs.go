package wmfix

import "repro/internal/obs/causal"

// collectPaths appends causal critical-path records without any flush:
// legal, because causal.OutputPath's Watermark field is recorded trace
// data, not an armable output-commit waiter — the observability layer
// is exempt from the watermark-struct shape.
func collectPaths(a *causal.Attribution, p causal.OutputPath) {
	a.Outputs = append(a.Outputs, p)
}

// indexPaths stores one into a map the same way the grant-table idiom
// would: still legal for observability-layer value types.
func indexPaths(byWatermark map[int64]causal.OutputPath, p causal.OutputPath) {
	byWatermark[p.Watermark] = p
}
