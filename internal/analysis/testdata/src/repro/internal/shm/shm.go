// Package shm is a fixture stub mirroring the real repro/internal/shm
// mailbox surface: the analyzers treat calls into a package path
// containing "internal/shm" as mailbox re-entry (detsection) and its
// blocking ring operations as transient lock acquisitions (lockorder).
package shm

import "repro/internal/sim"

// Message mirrors the real mailbox message.
type Message struct {
	Kind    int
	Payload any
	Size    int
}

// Ring mirrors the bounded mailbox ring.
type Ring struct{ used int64 }

// Send blocks until the ring can take m.
func (r *Ring) Send(p *sim.Proc, m Message) { r.used += int64(m.Size) }

// SendBatch blocks until the ring can take the whole batch.
func (r *Ring) SendBatch(p *sim.Proc, msgs []Message) {}

// TrySend delivers without blocking, reporting success.
func (r *Ring) TrySend(m Message) bool { return true }

// TrySendBatch delivers a batch without blocking, reporting success.
func (r *Ring) TrySendBatch(msgs []Message) bool { return true }

// Recv blocks until a message arrives.
func (r *Ring) Recv(p *sim.Proc) Message { return Message{} }
