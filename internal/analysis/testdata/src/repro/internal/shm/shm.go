// Package shm is a fixture stub mirroring the real repro/internal/shm
// mailbox surface: the analyzers treat calls into a package path
// containing "internal/shm" as mailbox re-entry (detsection) and its
// blocking ring operations as transient lock acquisitions (lockorder).
package shm

import "repro/internal/sim"

// Message mirrors the real mailbox message.
type Message struct {
	Kind    int
	Payload any
	Size    int
}

// Ring mirrors the bounded mailbox ring.
type Ring struct{ used int64 }

// Send blocks until the ring can take m.
func (r *Ring) Send(p *sim.Proc, m Message) { r.used += int64(m.Size) }

// SendBatch blocks until the ring can take the whole batch.
func (r *Ring) SendBatch(p *sim.Proc, msgs []Message) {}

// TrySend delivers without blocking, reporting success.
func (r *Ring) TrySend(m Message) bool { return true }

// TrySendBatch delivers a batch without blocking, reporting success.
func (r *Ring) TrySendBatch(msgs []Message) bool { return true }

// Recv blocks until a message arrives.
func (r *Ring) Recv(p *sim.Proc) Message { return Message{} }

// Span mirrors the zero-copy reservation unit: a claimed slot range
// written in place and published with one Commit.
type Span struct{ ring *Ring }

// Reserve claims a span, blocking for ring capacity (lockorder treats
// it as a transient acquisition, like the wrapper sends).
func (r *Ring) Reserve(p *sim.Proc, n int, payloadBytes int64) *Span { return &Span{ring: r} }

// TryReserve claims a span without blocking (nil when it would block or
// would jump earlier waiters).
func (r *Ring) TryReserve(n int, payloadBytes int64) *Span { return &Span{ring: r} }

// Put writes one payload into the span in place.
func (sp *Span) Put(m Message) bool { return true }

// Commit publishes the span with one release-store.
func (sp *Span) Commit() {}

// Abort releases the reservation without publishing.
func (sp *Span) Abort() {}

// Open reports whether the span is still writable.
func (sp *Span) Open() bool { return false }

// Len reports the payloads written so far.
func (sp *Span) Len() int { return 0 }
