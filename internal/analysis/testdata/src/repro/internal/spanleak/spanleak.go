// Package spanleak is the golden fixture for the interprocedural
// span-leak check: a reservation handed to a helper is judged by the
// helper's span summary. The bug shape is a callee that commits on the
// happy path but early-returns around the settle — neither function
// shows the leak alone.
package spanleak

import (
	"repro/internal/shm"
	"repro/internal/sim"
)

// fill commits unless the put fails, returning early with the span
// still open: SpanLeaks.
func fill(sp *shm.Span, m shm.Message) bool {
	if !sp.Put(m) {
		return false // the early-return leak: no Commit, no Abort
	}
	sp.Commit()
	return true
}

// commitAll settles on every path: SpanSettles.
func commitAll(sp *shm.Span, m shm.Message) {
	if sp.Put(m) {
		sp.Commit()
	} else {
		sp.Abort()
	}
}

// use only writes into the span: SpanPassThrough, responsibility stays
// with the caller.
func use(sp *shm.Span, m shm.Message) { sp.Put(m) }

type W struct{ ring *shm.Ring }

// leaky hands its reservation to the early-returning helper: reported
// here, with the chain to the unsettled exit in fill.
func (w *W) leaky(p *sim.Proc, m shm.Message) {
	sp := w.ring.Reserve(p, 1, 64) // want "handed to fill, which can return without committing"
	fill(sp, m)
}

// settled hands the reservation to a helper that provably settles it.
func (w *W) settled(p *sim.Proc, m shm.Message) {
	sp := w.ring.Reserve(p, 1, 64)
	commitAll(sp, m)
}

// passthrough hands the span to a helper that merely uses it and then
// forgets it: the classic leak, now visible through the call.
func (w *W) passthrough(p *sim.Proc, m shm.Message) {
	sp := w.ring.Reserve(p, 1, 64) // want "never committed or aborted"
	use(sp, m)
}

// passthroughSettled uses the helper and settles locally: clean.
func (w *W) passthroughSettled(p *sim.Proc, m shm.Message) {
	sp := w.ring.Reserve(p, 1, 64)
	use(sp, m)
	sp.Commit()
}
