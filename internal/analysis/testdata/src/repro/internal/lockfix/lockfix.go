// Package lockfix is the golden fixture for the lockorder analyzer:
// inconsistent acquisition orders across the lock graph are potential
// deadlocks, including orders threaded through calls, the "flushing"
// flush-serialization pseudo-lock, and blocking shm ring operations.
package lockfix

import (
	"repro/internal/kernel"
	"repro/internal/pthread"
	"repro/internal/shm"
	"repro/internal/sim"
)

type S struct {
	a, b *pthread.Mutex
}

// f establishes the order a -> b.
func (s *S) f(t *kernel.Task) {
	s.a.Lock(t)
	s.b.Lock(t)
	s.b.Unlock(t)
	s.a.Unlock(t)
}

// g acquires in the opposite order, closing the cycle a -> b -> a.
func (s *S) g(t *kernel.Task) {
	s.b.Lock(t)
	s.a.Lock(t) // want "lock-order cycle"
	s.a.Unlock(t)
	s.b.Unlock(t)
}

// h repeats f's order: consistent, no new finding.
func (s *S) h(t *kernel.Task) {
	s.a.Lock(t)
	s.b.Lock(t)
	s.b.Unlock(t)
	s.a.Unlock(t)
}

type R struct{ m *pthread.Mutex }

// again self-deadlocks: pthread mutexes are not reentrant.
func (r *R) again(t *kernel.Task) {
	r.m.Lock(t)
	r.m.Lock(t) // want "already held"
	r.m.Unlock(t)
	r.m.Unlock(t)
}

// branching locks the same mutex on alternative arms: no reacquisition,
// because only one arm executes.
func (r *R) branching(t *kernel.Task, cond bool) {
	if cond {
		r.m.Lock(t)
		r.m.Unlock(t)
	} else {
		r.m.Lock(t)
		r.m.Unlock(t)
	}
}

type P struct {
	mu       *pthread.Mutex
	flushing bool
	ring     *shm.Ring
}

// flush holds the flush-serialization flag across the blocking ring
// send: the PR 1 pattern, edge flushing -> ring.
func (p *P) flush(proc *sim.Proc, m shm.Message) {
	p.flushing = true
	p.ring.Send(proc, m)
	p.flushing = false
}

// lockedFlush calls flush while holding mu, adding mu -> flushing
// through the call graph.
func (p *P) lockedFlush(t *kernel.Task, proc *sim.Proc, m shm.Message) {
	p.mu.Lock(t)
	p.flush(proc, m) // want "lock-order cycle"
	p.mu.Unlock(t)
}

// flagFirst takes mu while flushing is held: flushing -> mu, closing the
// cycle with lockedFlush's mu -> flushing.
func (p *P) flagFirst(t *kernel.Task) {
	p.flushing = true
	p.mu.Lock(t)
	p.mu.Unlock(t)
	p.flushing = false
}

// reserveOrdered blocks in Reserve while holding mu: the claim wait is
// the same backpressure park the wrapper sends had, so it adds the
// transient edge mu -> ring. Consistent with the existing order; the
// span is settled, so no leak either.
func (p *P) reserveOrdered(t *kernel.Task, proc *sim.Proc, m shm.Message) {
	p.mu.Lock(t)
	sp := p.ring.Reserve(proc, 1, int64(m.Size))
	sp.Put(m)
	sp.Commit()
	p.mu.Unlock(t)
}

// leak reserves a span and returns without Commit or Abort: the open
// span jams the ring's publication sequence forever.
func (p *P) leak(proc *sim.Proc, m shm.Message) {
	sp := p.ring.Reserve(proc, 1, int64(m.Size)) // want "never committed or aborted"
	sp.Put(m)
}

// tryLeak leaks a nonblocking claim the same way; the nil check does
// not settle anything.
func (p *P) tryLeak(m shm.Message) {
	if sp := p.ring.TryReserve(1, int64(m.Size)); sp != nil { // want "never committed or aborted"
		sp.Put(m)
	}
}

// settled commits on the success path and aborts on the full path:
// every exit settles the span, no finding.
func (p *P) settled(proc *sim.Proc, m shm.Message) {
	sp := p.ring.Reserve(proc, 1, int64(m.Size))
	if sp.Put(m) {
		sp.Commit()
	} else {
		sp.Abort()
	}
}

type holder struct{ span *shm.Span }

// handoff parks the open span in a field for a flush loop to settle
// later — the recorder's pattern. The escape transfers responsibility,
// so the leak check stays silent.
func (h *holder) handoff(r *shm.Ring, m shm.Message) {
	sp := r.TryReserve(1, int64(m.Size))
	if sp != nil {
		sp.Put(m)
		h.span = sp
	}
}
