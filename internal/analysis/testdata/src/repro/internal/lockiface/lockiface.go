// Package lockiface is the golden fixture for lockorder's
// interprocedural layer: a lock-order cycle whose two halves live in
// different functions, one of them reachable only through an interface
// call. Neither function acquires two locks itself, so the old
// single-function walk saw no edge at all.
package lockiface

import (
	"repro/internal/kernel"
	"repro/internal/pthread"
)

type D struct {
	a, b *pthread.Mutex
}

// lockB holds the second acquisition on its own: no edge locally.
func (d *D) lockB(t *kernel.Task) {
	d.b.Lock(t)
	d.b.Unlock(t)
}

// forward holds a across the call to lockB: the summary-based edge
// D.a -> D.b.
func (d *D) forward(t *kernel.Task) {
	d.a.Lock(t)
	d.lockB(t)
	d.a.Unlock(t)
}

// parker is the dispatch indirection: reverse only ever sees the
// interface, so the edge to D.a exists solely through type-set-bounded
// resolution.
type parker interface {
	park(t *kernel.Task)
}

type aParker struct{ d *D }

func (p *aParker) park(t *kernel.Task) {
	p.d.a.Lock(t)
	p.d.a.Unlock(t)
}

// reverse holds b across the interface call that (via aParker) locks a:
// the edge D.b -> D.a closes the cycle with forward's D.a -> D.b.
func (d *D) reverse(t *kernel.Task, p parker) {
	d.b.Lock(t)
	p.park(t) // want "lock-order cycle"
	d.b.Unlock(t)
}

// consistent repeats forward's order through the same helper: no new
// edge direction, no finding.
func (d *D) consistent(t *kernel.Task) {
	d.a.Lock(t)
	d.lockB(t)
	d.a.Unlock(t)
}
