// Package timeutil is a non-replicated helper fixture for the nondet
// interprocedural checks: the sources here are legal (the package is
// outside the replicated set), the violation is a replicated caller
// observing the values. Every taint is at least one call deep, so the
// old syntactic checks cannot see it.
package timeutil

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Stamp returns a wall-clock timestamp two hops from time.Now.
func Stamp() int64 { return now() }

func now() int64 { return time.Now().UnixNano() }

// ID returns the raw process id.
func ID() int { return os.Getpid() }

// Jitter draws from the process-seeded package-level rand.
func Jitter() int64 { return rand.Int63() }

// Keys returns the keys of m in (randomized) map-iteration order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// SortedKeys re-establishes a deterministic order before returning: the
// collect-then-sort idiom, so the result carries no map-order taint.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
