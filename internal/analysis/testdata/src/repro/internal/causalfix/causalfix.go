// Package causalfix is the fixture for the causal-diagnosis side of the
// nondet analyzer: the causal package is a sanctioned sink like obs, but
// its annotation arguments become diagnosis text compared byte-for-byte
// across same-seed runs — a wall-clock value smuggled into a report is
// exactly the nondeterminism the layer exists to rule out.
package causalfix

import (
	"time"

	"repro/internal/obs/causal"
)

var bootAt time.Time

// deterministicAnnotation: fine — the note value comes from program
// state (a virtual-clock instant threaded in by the caller).
func deterministicAnnotation(d *causal.Divergence, failedAtNs int64) {
	causal.Annotate(d, "failed_at_ns", failedAtNs)
}

// smuggledNow leaks the host clock into a diagnosis report.
func smuggledNow(d *causal.Divergence) {
	causal.Annotate(d, "diagnosed_at_ns", time.Now().UnixNano()) // want "time.Now in an obs trace attribute"
}

// smuggledSince hides the clock read inside a conversion.
func smuggledSince(d *causal.Divergence) {
	causal.Annotate(d, "uptime_ms", int64(time.Since(bootAt)/time.Millisecond)) // want "time.Since in an obs trace attribute"
}
