// Package dethelper is the golden fixture for detsection's
// interprocedural layer: forbidden operations hidden behind helper
// calls (or a named function used as the section body). The old check
// only saw constructs syntactically inside the literal.
package dethelper

import (
	"repro/internal/kernel"
	"repro/internal/pthread"
	"repro/internal/shm"
)

type state struct {
	det  pthread.Det
	ring *shm.Ring
	ch   chan int
	n    int
}

// spawnWorker reaches a goroutine spawn two hops deep.
func (s *state) spawnWorker() { s.kick() }

func (s *state) kick() { go s.work() }

func (s *state) work() { s.n++ }

// notify does a channel send: a section body must not reach it.
func (s *state) notify() { s.ch <- s.n }

// forward re-enters the mailbox one hop down.
func (s *state) forward(m shm.Message) { s.ring.TrySend(m) }

// bump only touches local state: safe to call from a section.
func (s *state) bump() { s.n++ }

func (s *state) bad(t *kernel.Task) {
	s.det.Section(t, pthread.OpMutexLock, 1, func() {
		s.spawnWorker()          // want "can reach a goroutine spawn"
		s.forward(shm.Message{}) // want "can reach a call into the shared-memory mailbox"
	})
}

// badNamed passes a named method as the section body: judged by its
// summary, not its syntax.
func (s *state) badNamed(t *kernel.Task) {
	s.det.Section(t, pthread.OpMutexLock, 2, s.notify) // want "used as a deterministic-section body can reach a channel operation"
}

// good: helpers that only update local state are fine at any depth.
func (s *state) good(t *kernel.Task) {
	s.det.Section(t, pthread.OpMutexLock, 3, func() {
		s.bump()
	})
	// Outside the section every helper is unrestricted.
	s.spawnWorker()
	s.notify()
	s.forward(shm.Message{})
}

// goodNamed: a named body with a clean summary.
func (s *state) goodNamed(t *kernel.Task) {
	s.det.Section(t, pthread.OpMutexLock, 4, s.bump)
}

// deferred builds a closure around a channel send without running it:
// the effect belongs to the literal, not to deferred's own summary, so
// calling deferred from a section is fine (flow_test pins this down).
func (s *state) deferred() func() {
	return func() { s.ch <- s.n }
}

// ping/pong are mutually recursive with a channel send in the cycle:
// the SCC fixpoint must converge and give both the effect.
func (s *state) ping(n int) {
	if n > 0 {
		s.pong(n - 1)
	}
}

func (s *state) pong(n int) {
	if n > 0 {
		s.ping(n - 1)
	}
	s.ch <- n
}
