// Package sim is a fixture stub mirroring the shape of the real
// repro/internal/sim for analyzer golden tests.
package sim

// Proc stands in for the real simulation process handle.
type Proc struct{}

// Time mirrors the simulation clock type.
type Time int64
