// Package shardrec is the golden fixture for the watermark analyzer's
// per-object grant-table rule (DESIGN.md §13): a sharded recorder arms
// output-commit waiters by storing a watermark-carrying struct into a
// table keyed by object id, gated on that object's Seq_obj cursor. Like
// the global-queue append, the store must be dominated by a force-flush
// — otherwise tuples buffered on the object's shard never push out and
// the waiter sleeps through its own release.
package shardrec

// objWaiter is the per-object commit waiter shape: watermark is the
// Seq_obj cursor the release is gated on.
type objWaiter struct {
	watermark uint64
	fn        func()
}

// plain is a non-waiter struct: map stores of it are not arm sites.
type plain struct {
	seq uint64
}

type Rec struct {
	grants map[uint64]objWaiter
	pgrant map[uint64]*objWaiter
	queues map[uint64][]objWaiter
	objSeq map[uint64]uint64
	cursor map[uint64]plain
	buffed int
}

func (r *Rec) flushShard() { r.buffed = 0 }

// bad arms a grant-table entry with no flush anywhere in sight.
func (r *Rec) bad(obj uint64, fn func()) {
	r.grants[obj] = objWaiter{watermark: r.objSeq[obj], fn: fn} // want "without a dominating force-flush"
}

// good flushes the shard first: the Seq_obj watermark covers only
// in-flight tuples.
func (r *Rec) good(obj uint64, fn func()) {
	r.flushShard()
	r.grants[obj] = objWaiter{watermark: r.objSeq[obj], fn: fn}
}

// goodGuarded mirrors the fast path: early-return guards before the
// flush are fine, those paths never arm.
func (r *Rec) goodGuarded(obj uint64, fn func()) {
	if r.buffed == 0 {
		fn()
		return
	}
	r.flushShard()
	r.grants[obj] = objWaiter{watermark: r.objSeq[obj], fn: fn}
}

// badBranch: a flush inside one arm does not dominate a store after the
// branch.
func (r *Rec) badBranch(obj uint64, fn func(), cond bool) {
	if cond {
		r.flushShard()
	}
	r.grants[obj] = objWaiter{watermark: r.objSeq[obj], fn: fn} // want "without a dominating force-flush"
}

// badPtr: pointer-valued grant tables are armed the same way.
func (r *Rec) badPtr(obj uint64, w *objWaiter) {
	r.pgrant[obj] = w // want "without a dominating force-flush"
}

// badQueue: appending to a per-object waiter queue is the slice rule's
// territory and still fires through the map lookup.
func (r *Rec) badQueue(obj uint64, w objWaiter) {
	r.queues[obj] = append(r.queues[obj], w) // want "without a dominating force-flush"
}

// goodQueue: the same append under a dominating flush passes.
func (r *Rec) goodQueue(obj uint64, w objWaiter) {
	r.flushShard()
	r.queues[obj] = append(r.queues[obj], w)
}

// unrelated map stores are not output-commit waiters: cursor bookkeeping
// (plain structs, scalar cursors) must stay lintable without flushes.
func (r *Rec) unrelated(obj, seq uint64) {
	r.objSeq[obj] = seq
	r.cursor[obj] = plain{seq: seq}
	delete(r.grants, obj)
}
