// Package lockorder builds a static lock-acquisition graph and reports
// ordering cycles as potential deadlocks.
//
// The record/replay hot path threads several blocking resources: the
// namespace global mutex (replication.Recorder.mu, Figure 3), the
// hand-rolled per-link flush serialization flags ("flushing", the flush
// lock PR 1 introduced), and the shared-memory rings, whose blocking
// Send/Recv act as bounded locks under backpressure. A PR that acquires
// two of them in inconsistent orders on different paths creates a
// deadlock the simulator only hits under just the right backlog — the
// kind of latent cycle that static ordering analysis catches for free.
//
// The model, deliberately simple and conservative:
//
//   - acquisitions: pthread Mutex.Lock / RWLock.RdLock / RWLock.WrLock,
//     sync.Mutex/RWMutex Lock/RLock, and the pseudo-lock "x.flushing =
//     true" (released by "= false") that serializes batched flushes;
//   - transient acquisitions: blocking shm.Ring operations (Send,
//     SendBatch, Recv, RecvBatch, RecvTimeout, and the zero-copy
//     Reserve, whose capacity wait is the same backpressure park) —
//     held only for the call, but ordered after everything currently
//     held;
//   - lock identity is the receiver's field path (Type.field) or the
//     package-level variable; distinct locals of the same type within a
//     function collapse onto one node (an approximation);
//   - effects propagate through direct static calls between analyzed
//     packages to a fixpoint, so holding a lock while calling a function
//     that (transitively) locks another adds an edge;
//   - branches are walked with a copy of the held set, so alternative
//     if/else acquisitions do not contaminate each other;
//   - go statements start with an empty held set (the goroutine does
//     not inherit the spawner's locks);
//   - deferred unlocks are ignored: the lock is modeled as held until
//     the function returns, which is exactly what defer does.
//
// A cycle in the resulting graph (including a self-loop: reacquiring a
// held, non-reentrant pthread mutex) is reported once per cycle.
// Condition-variable Wait, which releases and reacquires its mutex, is
// outside the model.
//
// The pass also polices the reserve/commit idiom of the zero-copy
// fabric: a span claimed with Reserve or TryReserve holds ring sequence
// and capacity until Commit or Abort, and reservation order is
// publication order — so a local span that is never settled and never
// escapes the function permanently blocks every span reserved after it.
// That leak is reported at the reservation site.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis/ftvet"
)

// Debug, when set (cmd/ftvet -lockgraph), receives a dump of every edge
// in the acquisition graph — the artifact behind the DESIGN.md ordering
// audit. A silent clean run proves the absence of cycles; the dump shows
// which orderings are actually being relied on.
var Debug io.Writer

// Analyzer is the lockorder pass. It is a Module analyzer: the lock
// graph spans packages (tcprep holds its flush flag while calling into
// shm; replication does the same with its own).
var Analyzer = &ftvet.Analyzer{
	Name:   "lockorder",
	Doc:    "build a static lock-acquisition graph over pthread/sync mutexes, flush-serialization flags, and blocking shm ring operations; report ordering cycles as potential deadlocks, plus reserved spans that are never committed or aborted (a leaked reservation jams the ring's publication sequence)",
	Module: true,
	Run:    run,
}

type acquisition struct {
	id        string
	pos       token.Pos
	held      []string
	transient bool
}

type callSite struct {
	fn   *types.Func
	pos  token.Pos
	held []string
}

type funcSummary struct {
	acqs  []acquisition
	calls []callSite
}

func run(pass *ftvet.Pass) error {
	sums := map[*types.Func]*funcSummary{}
	// Pass 1: per-function walk collecting acquisitions and calls.
	for _, pkg := range pass.All {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				w := &walker{pass: pass, pkg: pkg, fname: obj.FullName(), sum: &funcSummary{}}
				w.stmts(fd.Body.List)
				sums[obj] = w.sum
				checkSpanLeaks(pass, pkg, fd)
			}
		}
	}

	// Pass 2: fixpoint of the lock set each function may acquire,
	// propagated through static calls.
	inside := map[*types.Func]map[string]bool{}
	for fn := range sums {
		inside[fn] = map[string]bool{}
	}
	for changed := true; changed; {
		changed = false
		for fn, sum := range sums {
			set := inside[fn]
			for _, a := range sum.acqs {
				if !set[a.id] {
					set[a.id] = true
					changed = true
				}
			}
			for _, c := range sum.calls {
				for id := range inside[c.fn] {
					if !set[id] {
						set[id] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: edges held-lock -> acquired-lock.
	type edge struct {
		to  string
		pos token.Pos
	}
	edges := map[string]map[string]token.Pos{}
	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		m := edges[from]
		if m == nil {
			m = map[string]token.Pos{}
			edges[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = pos
		}
	}
	for _, sum := range sums {
		for _, a := range sum.acqs {
			for _, h := range a.held {
				addEdge(h, a.id, a.pos)
			}
		}
		for _, c := range sum.calls {
			if len(c.held) == 0 {
				continue
			}
			for id := range inside[c.fn] {
				for _, h := range c.held {
					addEdge(h, id, c.pos)
				}
			}
		}
	}

	// Pass 4: cycle detection (deterministic DFS over sorted ids).
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	if Debug != nil {
		for _, n := range nodes {
			var succs []string
			for s := range edges[n] {
				succs = append(succs, s)
			}
			sort.Strings(succs)
			for _, s := range succs {
				fmt.Fprintf(Debug, "lockorder: %s -> %s (%s)\n", n, s, pass.Fset.Position(edges[n][s]))
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	reported := map[string]bool{}
	var visit func(n string)
	visit = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		var succs []string
		for s := range edges[n] {
			succs = append(succs, s)
		}
		sort.Strings(succs)
		for _, s := range succs {
			switch color[s] {
			case white:
				visit(s)
			case gray:
				// Back edge: extract the cycle from the stack.
				i := len(stack) - 1
				for i >= 0 && stack[i] != s {
					i--
				}
				cycle := append(append([]string{}, stack[i:]...), s)
				key := canonical(cycle)
				if !reported[key] {
					reported[key] = true
					pass.Reportf(edges[n][s],
						"lock-order cycle (potential deadlock): %s; acquiring %q here while holding %q — pick one global order and stick to it",
						strings.Join(cycle, " -> "), s, n)
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
	return nil
}

// checkSpanLeaks reports function-local spans claimed from an shm ring
// (Reserve/TryReserve) that no statement ever settles: no Commit, no
// Abort, and no escape out of the function (returned, passed to a call,
// re-assigned, stored into a composite, sent on a channel, or
// address-taken). Reservation order is publication order, so a leaked
// open span blocks every span reserved after it from ever publishing —
// a stall no runtime check catches because nothing is deadlocked, the
// ring is just silently jammed.
//
// The check is intraprocedural and conservative toward silence: any
// escape hands responsibility to the receiver (the recorder parks its
// open span in link.span for the flush loop to settle), and only plain
// identifier locals are tracked.
func checkSpanLeaks(pass *ftvet.Pass, pkg *ftvet.Package, fd *ast.FuncDecl) {
	type reservation struct {
		obj  types.Object
		pos  token.Pos
		name string
	}
	var spans []reservation
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isReserveCall(pkg, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id] // plain `=` onto an existing local
		}
		if obj != nil {
			spans = append(spans, reservation{obj: obj, pos: as.Pos(), name: id.Name})
		}
		return true
	})
	for _, sp := range spans {
		uses := func(e ast.Expr) bool {
			found := false
			ast.Inspect(e, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == sp.obj {
					found = true
				}
				return !found
			})
			return found
		}
		settled, escaped := false, false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if settled || escaped {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pkg.Info.Uses[id] == sp.obj {
						switch sel.Sel.Name {
						case "Commit", "Abort":
							settled = true
							return false
						}
					}
				}
				for _, a := range n.Args {
					if uses(a) {
						escaped = true
						return false
					}
				}
			case *ast.ReturnStmt:
				for _, e := range n.Results {
					if uses(e) {
						escaped = true
						return false
					}
				}
			case *ast.AssignStmt:
				// Any re-assignment of the span value (link.span = sp,
				// alias := sp) hands it off; the defining statement itself
				// has the Reserve call, not the local, on its RHS.
				for _, e := range n.Rhs {
					if uses(e) {
						escaped = true
						return false
					}
				}
			case *ast.SendStmt:
				if uses(n.Value) {
					escaped = true
					return false
				}
			case *ast.CompositeLit:
				for _, e := range n.Elts {
					if uses(e) {
						escaped = true
						return false
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND && uses(n.X) {
					escaped = true
					return false
				}
			}
			return true
		})
		if !settled && !escaped {
			pass.Reportf(sp.pos,
				"span %q is reserved but never committed or aborted: reservation order is publication order, so a leaked open span blocks every later span on this ring from publishing; Commit it, Abort it on early-exit paths, or hand it off",
				sp.name)
		}
	}
}

// isReserveCall reports whether a call claims a span from an shm ring.
func isReserveCall(pkg *ftvet.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.Contains(fn.Pkg().Path(), "internal/shm") {
		return false
	}
	return fn.Name() == "Reserve" || fn.Name() == "TryReserve"
}

// canonical normalizes a cycle (first element repeated at the end) to a
// rotation-independent key.
func canonical(cycle []string) string {
	body := cycle[:len(cycle)-1]
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rot := append(append([]string{}, body[min:]...), body[:min]...)
	return strings.Join(rot, "->")
}

// walker performs the held-set statement walk for one function.
type walker struct {
	pass  *ftvet.Pass
	pkg   *ftvet.Package
	fname string
	sum   *funcSummary
	held  []string
}

func (w *walker) snapshot() []string { return append([]string{}, w.held...) }

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// branch walks a statement with a copy of the held set, discarding its
// effects: alternative control-flow arms must not see each other's
// acquisitions.
func (w *walker) branch(s ast.Stmt) {
	if s == nil {
		return
	}
	saved := w.snapshot()
	w.stmt(s)
	w.held = saved
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.branch(s.Body)
		w.branch(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		saved := w.snapshot()
		w.stmt(s.Body)
		w.stmt(s.Post)
		w.held = saved
	case *ast.RangeStmt:
		w.expr(s.X)
		w.branch(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.stmts(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		w.stmts(s.Body)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		w.checkFlushFlag(s)
	case *ast.GoStmt:
		// The goroutine does not inherit the spawner's held locks.
		saved := w.snapshot()
		w.held = nil
		w.expr(s.Call.Fun)
		w.call(s.Call)
		w.held = saved
	case *ast.DeferStmt:
		// Deferred releases are intentionally ignored: the lock stays
		// held (in the model as in reality) until the function returns.
		// Deferred acquires/calls are walked with the current held set,
		// the state they will most likely see at exit.
		if kind, _ := w.classify(s.Call); kind != opRelease {
			w.call(s.Call)
		}
	}
}

// expr walks an expression in evaluation order, processing calls and
// inlining function literals (a literal built here is assumed to run
// while the current locks are held — conservative for stored closures).
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, a := range n.Args {
				w.expr(a)
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				w.expr(sel.X)
			}
			w.call(n)
			return false
		case *ast.FuncLit:
			w.stmts(n.Body.List)
			return false
		}
		return true
	})
}

type opKind int

const (
	opNone opKind = iota
	opAcquire
	opRelease
	opTransient
)

// call classifies and records one call expression.
func (w *walker) call(call *ast.CallExpr) {
	kind, id := w.classify(call)
	switch kind {
	case opAcquire:
		for _, h := range w.held {
			if h == id {
				w.pass.Reportf(call.Pos(), "lock %q acquired while already held (pthread mutexes are not reentrant): this self-deadlocks at runtime", id)
				return
			}
		}
		w.sum.acqs = append(w.sum.acqs, acquisition{id: id, pos: call.Pos(), held: w.snapshot()})
		w.held = append(w.held, id)
	case opRelease:
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i] == id {
				w.held = append(w.held[:i], w.held[i+1:]...)
				break
			}
		}
	case opTransient:
		w.sum.acqs = append(w.sum.acqs, acquisition{id: id, pos: call.Pos(), held: w.snapshot(), transient: true})
	case opNone:
		if fn := w.pkg.CalleeFunc(call); fn != nil {
			w.sum.calls = append(w.sum.calls, callSite{fn: fn, pos: call.Pos(), held: w.snapshot()})
		}
	}
}

// classify maps a call to a lock operation.
func (w *walker) classify(call *ast.CallExpr) (opKind, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return opNone, ""
	}
	fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return opNone, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return opNone, ""
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	switch {
	case strings.Contains(path, "internal/pthread"):
		switch name {
		case "Lock", "RdLock", "WrLock":
			return opAcquire, w.lockID(sel.X)
		case "Unlock", "RdUnlock", "WrUnlock":
			return opRelease, w.lockID(sel.X)
		}
	case path == "sync":
		switch name {
		case "Lock", "RLock":
			return opAcquire, w.lockID(sel.X)
		case "Unlock", "RUnlock":
			return opRelease, w.lockID(sel.X)
		}
	case strings.Contains(path, "internal/shm"):
		switch name {
		case "Send", "SendBatch", "Recv", "RecvBatch", "RecvTimeout", "Reserve":
			// Reserve blocks for ring capacity exactly like the wrapper
			// sends did (the claim is FIFO behind earlier reservations), so
			// it is ordered after everything currently held. Commit/Abort
			// never block and TryReserve fails instead of waiting — none of
			// them participate in the lock graph.
			return opTransient, w.lockID(sel.X) + "(ring)"
		}
	}
	return opNone, ""
}

// checkFlushFlag models "x.flushing = true/false" as a lock the flush
// path holds across its blocking ring send (the PR 1 flush lock).
func (w *walker) checkFlushFlag(s *ast.AssignStmt) {
	if s.Tok != token.ASSIGN || len(s.Lhs) != len(s.Rhs) {
		return
	}
	for i, lhs := range s.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !strings.Contains(strings.ToLower(sel.Sel.Name), "flushing") {
			continue
		}
		val, ok := ast.Unparen(s.Rhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		id := w.lockID(lhs)
		switch val.Name {
		case "true":
			w.sum.acqs = append(w.sum.acqs, acquisition{id: id, pos: s.Pos(), held: w.snapshot()})
			w.held = append(w.held, id)
		case "false":
			for j := len(w.held) - 1; j >= 0; j-- {
				if w.held[j] == id {
					w.held = append(w.held[:j], w.held[j+1:]...)
					break
				}
			}
		}
	}
}

// lockID names the lock object behind a receiver expression: a field
// selector becomes Type.field, a package-level var becomes pkg.var, and
// a local collapses onto a per-function node.
func (w *walker) lockID(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if t := w.pkg.TypeOf(e.X); t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				prefix := obj.Name()
				if obj.Pkg() != nil {
					prefix = obj.Pkg().Name() + "." + obj.Name()
				}
				return prefix + "." + e.Sel.Name
			}
		}
		return "?." + e.Sel.Name
	case *ast.Ident:
		if obj := w.pkg.ObjectOf(e); obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
		}
		return w.fname + " local " + e.Name
	default:
		if t := w.pkg.TypeOf(e); t != nil {
			return types.TypeString(t, nil)
		}
		return fmt.Sprintf("anon@%d", int(e.Pos()))
	}
}
