// Package lockorder builds a static lock-acquisition graph and reports
// ordering cycles as potential deadlocks.
//
// The record/replay hot path threads several blocking resources: the
// namespace global mutex (replication.Recorder.mu, Figure 3), the
// hand-rolled per-link flush serialization flags ("flushing", the flush
// lock PR 1 introduced), and the shared-memory rings, whose blocking
// Send/Recv act as bounded locks under backpressure. A PR that acquires
// two of them in inconsistent orders on different paths creates a
// deadlock the simulator only hits under just the right backlog — the
// kind of latent cycle that static ordering analysis catches for free.
//
// The model, deliberately simple and conservative:
//
//   - acquisitions and lock identity: see flow.ClassifyLockOp — pthread
//     and sync mutexes, the "flushing = true" pseudo-lock, and blocking
//     shm ring operations as transient acquisitions;
//   - the transitive lock set of every callee comes from the flow
//     summaries, so holding a lock while calling a function that
//     (transitively, through any depth of helpers) locks another adds
//     an edge — including calls through interfaces, where the edge is
//     added for every tree-declared implementation (a deadlock through
//     any of them is still a deadlock);
//   - branches are walked with a copy of the held set, so alternative
//     if/else acquisitions do not contaminate each other;
//   - go statements start with an empty held set (the goroutine does
//     not inherit the spawner's locks);
//   - deferred unlocks are ignored: the lock is modeled as held until
//     the function returns, which is exactly what defer does.
//
// A cycle in the resulting graph (including a self-loop: reacquiring a
// held, non-reentrant pthread mutex) is reported once per cycle.
// Condition-variable Wait, which releases and reacquires its mutex, is
// outside the model.
//
// The pass also polices the reserve/commit idiom of the zero-copy
// fabric: a span claimed with Reserve or TryReserve holds ring sequence
// and capacity until Commit or Abort, and reservation order is
// publication order — so a local span that is never settled and never
// escapes the function permanently blocks every span reserved after it.
// The flow span summaries let the check see through helper calls: a
// span handed to a helper that provably settles it is safe, a helper
// that only uses it leaves the responsibility here, and a helper that
// settles on one path but early-returns around it on another leaks the
// reservation — reported at the reservation site with the chain to the
// unsettled exit.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"

	"repro/internal/analysis/flow"
	"repro/internal/analysis/ftvet"
)

// Debug, when set (cmd/ftvet -lockgraph), receives a dump of every edge
// in the acquisition graph — the artifact behind the DESIGN.md ordering
// audit. A silent clean run proves the absence of cycles; the dump shows
// which orderings are actually being relied on.
var Debug io.Writer

// Analyzer is the lockorder pass. It is a Module analyzer: the lock
// graph spans packages (tcprep holds its flush flag while calling into
// shm; replication does the same with its own).
var Analyzer = &ftvet.Analyzer{
	Name:   "lockorder",
	Doc:    "build a static lock-acquisition graph over pthread/sync mutexes, flush-serialization flags, and blocking shm ring operations; report ordering cycles as potential deadlocks, plus reserved spans that are never committed or aborted (a leaked reservation jams the ring's publication sequence)",
	Module: true,
	Run:    run,
}

type acquisition struct {
	id   string
	pos  token.Pos
	held []string
}

type callSite struct {
	call *ast.CallExpr
	pos  token.Pos
	held []string
}

func run(pass *ftvet.Pass) error {
	g := flow.Of(pass)

	// Pass 1: per-function held-set walk collecting acquisition sites
	// and the call sites made while holding locks. The transitive lock
	// sets behind those calls come from the flow summaries, so no local
	// fixpoint is needed.
	var acqs []acquisition
	var calls []callSite
	for _, node := range g.Functions() {
		w := &walker{pass: pass, pkg: node.Pkg, fname: node.Fn.FullName()}
		w.stmts(node.Decl.Body.List)
		acqs = append(acqs, w.acqs...)
		calls = append(calls, w.calls...)
		checkSpanLeaks(pass, g, node)
	}

	// Pass 2: edges held-lock -> acquired-lock.
	edges := map[string]map[string]token.Pos{}
	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		m := edges[from]
		if m == nil {
			m = map[string]token.Pos{}
			edges[from] = m
		}
		if _, ok := m[to]; !ok {
			m[to] = pos
		}
	}
	for _, a := range acqs {
		for _, h := range a.held {
			addEdge(h, a.id, a.pos)
		}
	}
	for _, c := range calls {
		if len(c.held) == 0 {
			continue
		}
		for _, callee := range g.CalleesAt(c.call) {
			if callee.Sum == nil {
				continue
			}
			for id := range callee.Sum.Locks {
				for _, h := range c.held {
					addEdge(h, id, c.pos)
				}
			}
		}
	}

	// Pass 3: cycle detection (deterministic DFS over sorted ids).
	nodes := make([]string, 0, len(edges))
	for n := range edges {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	if Debug != nil {
		for _, n := range nodes {
			var succs []string
			for s := range edges[n] {
				succs = append(succs, s)
			}
			sort.Strings(succs)
			for _, s := range succs {
				fmt.Fprintf(Debug, "lockorder: %s -> %s (%s)\n", n, s, pass.Fset.Position(edges[n][s]))
			}
		}
	}
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	reported := map[string]bool{}
	var visit func(n string)
	visit = func(n string) {
		color[n] = gray
		stack = append(stack, n)
		var succs []string
		for s := range edges[n] {
			succs = append(succs, s)
		}
		sort.Strings(succs)
		for _, s := range succs {
			switch color[s] {
			case white:
				visit(s)
			case gray:
				// Back edge: extract the cycle from the stack.
				i := len(stack) - 1
				for i >= 0 && stack[i] != s {
					i--
				}
				cycle := append(append([]string{}, stack[i:]...), s)
				key := canonical(cycle)
				if !reported[key] {
					reported[key] = true
					pass.Reportf(edges[n][s],
						"lock-order cycle (potential deadlock): %s; acquiring %q here while holding %q — pick one global order and stick to it",
						strings.Join(cycle, " -> "), s, n)
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[n] = black
	}
	for _, n := range nodes {
		if color[n] == white {
			visit(n)
		}
	}
	return nil
}

// checkSpanLeaks reports spans claimed from an shm ring (Reserve/
// TryReserve) into a local that no path settles: no Commit, no Abort,
// and no hand-off out of the function. The flow span summaries decide
// what a call does with a span argument: a callee that settles it (or
// an unresolvable call — conservative silence) discharges the
// reservation, a callee that merely uses it does not, and a callee that
// settles on one path but exits unsettled on another leaks it — that
// last case is reported with the interprocedural chain to the exit,
// because neither function shows the bug alone.
func checkSpanLeaks(pass *ftvet.Pass, g *flow.Graph, node *flow.Node) {
	pkg, fd := node.Pkg, node.Decl
	type reservation struct {
		obj  types.Object
		pos  token.Pos
		name string
	}
	var spans []reservation
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isReserveCall(pkg, call) {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		obj := pkg.Info.Defs[id]
		if obj == nil {
			obj = pkg.Info.Uses[id] // plain `=` onto an existing local
		}
		if obj != nil {
			spans = append(spans, reservation{obj: obj, pos: as.Pos(), name: id.Name})
		}
		return true
	})
	for _, sp := range spans {
		uses := func(e ast.Expr) bool {
			found := false
			ast.Inspect(e, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == sp.obj {
					found = true
				}
				return !found
			})
			return found
		}
		settled, escaped := false, false
		var leak *flow.SpanInfo
		var leakCallee *types.Func
		var leakVia []flow.Hop
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if settled || escaped {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
					if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pkg.Info.Uses[id] == sp.obj {
						switch sel.Sel.Name {
						case "Commit", "Abort":
							settled = true
							return false
						}
					}
				}
				for i, a := range n.Args {
					if !uses(a) {
						continue
					}
					// Judge the hand-off by the callee's span summary
					// when the call resolves statically in-tree;
					// otherwise keep the conservative escape reading.
					var info *flow.SpanInfo
					var calleeFn *types.Func
					if fn := pkg.CalleeFunc(n); fn != nil {
						if cn := g.NodeOf(fn); cn != nil && cn.Sum != nil {
							if si, ok := cn.Sum.SpanParams[i]; ok {
								info = &si
								calleeFn = fn
							}
						}
					}
					if info == nil {
						escaped = true
						return false
					}
					switch info.Disp {
					case flow.SpanSettles:
						settled = true
						return false
					case flow.SpanLeaks:
						if leak == nil {
							leak = info
							leakCallee = calleeFn
							leakVia = append([]flow.Hop{{Name: calleeName(calleeFn), Pos: n.Pos()}}, info.Via...)
						}
					case flow.SpanPassThrough:
						// The callee only used the span; keep scanning.
					}
				}
			case *ast.ReturnStmt:
				for _, e := range n.Results {
					if uses(e) {
						escaped = true
						return false
					}
				}
			case *ast.AssignStmt:
				// Any re-assignment of the span value (link.span = sp,
				// alias := sp) hands it off; the defining statement itself
				// has the Reserve call, not the local, on its RHS.
				for _, e := range n.Rhs {
					if uses(e) {
						escaped = true
						return false
					}
				}
			case *ast.SendStmt:
				if uses(n.Value) {
					escaped = true
					return false
				}
			case *ast.CompositeLit:
				for _, e := range n.Elts {
					if uses(e) {
						escaped = true
						return false
					}
				}
			case *ast.UnaryExpr:
				if n.Op == token.AND && uses(n.X) {
					escaped = true
					return false
				}
			}
			return true
		})
		switch {
		case settled || escaped:
		case leak != nil:
			trace := make([]ftvet.TraceStep, 0, len(leakVia)+1)
			for _, h := range leakVia {
				trace = append(trace, ftvet.TraceStep{Pos: h.Pos, Note: "span handed to " + h.Name})
			}
			trace = append(trace, ftvet.TraceStep{Pos: leak.LeakPos, Note: "exits here without committing or aborting the span"})
			pass.ReportTrace(sp.pos, fmt.Sprintf(
				"span %q is reserved here and handed to %s, which can return without committing or aborting it: reservation order is publication order, so the unsettled span blocks every later span on this ring; settle it on every path in the callee or settle it here",
				sp.name, leakCallee.Name()), trace)
		default:
			pass.Reportf(sp.pos,
				"span %q is reserved but never committed or aborted: reservation order is publication order, so a leaked open span blocks every later span on this ring from publishing; Commit it, Abort it on early-exit paths, or hand it off",
				sp.name)
		}
	}
}

// calleeName renders a function for the leak trace.
func calleeName(fn *types.Func) string {
	if fn == nil {
		return "?"
	}
	return fn.Name()
}

// isReserveCall reports whether a call claims a span from an shm ring.
func isReserveCall(pkg *ftvet.Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || !strings.Contains(fn.Pkg().Path(), "internal/shm") {
		return false
	}
	return fn.Name() == "Reserve" || fn.Name() == "TryReserve"
}

// canonical normalizes a cycle (first element repeated at the end) to a
// rotation-independent key.
func canonical(cycle []string) string {
	body := cycle[:len(cycle)-1]
	min := 0
	for i := range body {
		if body[i] < body[min] {
			min = i
		}
	}
	rot := append(append([]string{}, body[min:]...), body[:min]...)
	return strings.Join(rot, "->")
}

// walker performs the held-set statement walk for one function.
type walker struct {
	pass  *ftvet.Pass
	pkg   *ftvet.Package
	fname string
	acqs  []acquisition
	calls []callSite
	held  []string
}

func (w *walker) snapshot() []string { return append([]string{}, w.held...) }

func (w *walker) stmts(list []ast.Stmt) {
	for _, s := range list {
		w.stmt(s)
	}
}

// branch walks a statement with a copy of the held set, discarding its
// effects: alternative control-flow arms must not see each other's
// acquisitions.
func (w *walker) branch(s ast.Stmt) {
	if s == nil {
		return
	}
	saved := w.snapshot()
	w.stmt(s)
	w.held = saved
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.stmts(s.List)
	case *ast.IfStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.branch(s.Body)
		w.branch(s.Else)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		saved := w.snapshot()
		w.stmt(s.Body)
		w.stmt(s.Post)
		w.held = saved
	case *ast.RangeStmt:
		w.expr(s.X)
		w.branch(s.Body)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			w.branch(c)
		}
	case *ast.CaseClause:
		for _, e := range s.List {
			w.expr(e)
		}
		w.stmts(s.Body)
	case *ast.CommClause:
		w.stmt(s.Comm)
		w.stmts(s.Body)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, sp := range gd.Specs {
				if vs, ok := sp.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e)
					}
				}
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e)
		}
		w.checkFlushFlag(s)
	case *ast.GoStmt:
		// The goroutine does not inherit the spawner's held locks.
		saved := w.snapshot()
		w.held = nil
		w.expr(s.Call.Fun)
		w.call(s.Call)
		w.held = saved
	case *ast.DeferStmt:
		// Deferred releases are intentionally ignored: the lock stays
		// held (in the model as in reality) until the function returns.
		// Deferred acquires/calls are walked with the current held set,
		// the state they will most likely see at exit.
		if kind, _ := flow.ClassifyLockOp(w.pkg, s.Call, w.fname); kind != flow.LockRelease {
			w.call(s.Call)
		}
	}
}

// expr walks an expression in evaluation order, processing calls and
// inlining function literals (a literal built here is assumed to run
// while the current locks are held — conservative for stored closures).
func (w *walker) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			for _, a := range n.Args {
				w.expr(a)
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				w.expr(sel.X)
			}
			w.call(n)
			return false
		case *ast.FuncLit:
			w.stmts(n.Body.List)
			return false
		}
		return true
	})
}

// call classifies and records one call expression.
func (w *walker) call(call *ast.CallExpr) {
	kind, id := flow.ClassifyLockOp(w.pkg, call, w.fname)
	switch kind {
	case flow.LockAcquire:
		for _, h := range w.held {
			if h == id {
				w.pass.Reportf(call.Pos(), "lock %q acquired while already held (pthread mutexes are not reentrant): this self-deadlocks at runtime", id)
				return
			}
		}
		w.acqs = append(w.acqs, acquisition{id: id, pos: call.Pos(), held: w.snapshot()})
		w.held = append(w.held, id)
	case flow.LockRelease:
		for i := len(w.held) - 1; i >= 0; i-- {
			if w.held[i] == id {
				w.held = append(w.held[:i], w.held[i+1:]...)
				break
			}
		}
	case flow.LockTransient:
		w.acqs = append(w.acqs, acquisition{id: id, pos: call.Pos(), held: w.snapshot()})
	case flow.LockNone:
		w.calls = append(w.calls, callSite{call: call, pos: call.Pos(), held: w.snapshot()})
	}
}

// checkFlushFlag models "x.flushing = true/false" as a lock the flush
// path holds across its blocking ring send (the PR 1 flush lock).
func (w *walker) checkFlushFlag(s *ast.AssignStmt) {
	for _, op := range flow.FlushFlagOps(w.pkg, s, w.fname) {
		if op.Acquire {
			w.acqs = append(w.acqs, acquisition{id: op.ID, pos: op.Pos, held: w.snapshot()})
			w.held = append(w.held, op.ID)
		} else {
			for j := len(w.held) - 1; j >= 0; j-- {
				if w.held[j] == op.ID {
					w.held = append(w.held[:j], w.held[j+1:]...)
					break
				}
			}
		}
	}
}
