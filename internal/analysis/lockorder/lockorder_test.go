package lockorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	td, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, td, lockorder.Analyzer, "repro/internal/lockfix")
}
