package lockorder_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	td, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, td, lockorder.Analyzer, "repro/internal/lockfix")
}

// TestLockOrderInterprocedural covers the flow-summary layer: a cycle
// whose halves live in different functions (one behind interface
// dispatch), and span leaks judged through callee span summaries.
func TestLockOrderInterprocedural(t *testing.T) {
	td, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, td, lockorder.Analyzer,
		"repro/internal/lockiface", // cross-function + dispatch lock cycle
		"repro/internal/spanleak",  // span leak via early return in a callee
	)
}
