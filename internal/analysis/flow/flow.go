// Package flow is the interprocedural engine under the ftvet analyzers:
// a call graph over the loaded package set plus per-function summaries
// computed bottom-up over strongly connected components.
//
// The intra-procedural analyzers ftvet shipped with (PR 2) go blind the
// moment a violation is wrapped in one helper call: a time.Now() hidden
// behind `func stamp() int64`, a lock cycle whose two acquisitions live
// in different functions, a goroutine spawned by a helper invoked from a
// deterministic-section body. flow closes that hole with three layers:
//
//   - a call graph (graph.go): static edges for direct calls, plus
//     type-set-bounded resolution for interface method calls — a call
//     through an interface fans out to every concrete type declared in
//     the analyzed tree that implements it (the "type set" the program
//     could actually dispatch to, since the tree is a closed world);
//
//   - per-function summaries (summary.go, taint.go) iterated to
//     fixpoint over Tarjan SCCs in bottom-up (reverse topological)
//     order, so recursion converges: which taints a function's results
//     carry (wall-clock, pid, rand draws, map-iteration order), which
//     effects its body can reach (goroutine spawns, channel operations,
//     shm mailbox re-entry), whether it force-flushes, which locks it
//     may transitively acquire, and how it disposes of *shm.Span
//     parameters (settles, passes through, or leaks on an early
//     return);
//
//   - diagnostic traces: every summary entry carries the call chain
//     back to its origin, so an analyzer consuming a summary reports
//     source → hop → … → sink with a position per hop.
//
// The graph is built once per ftvet.Run and shared across analyzers via
// Pass.Shared (see Of). Everything here is deliberately conservative in
// the same direction as the analyzers themselves: unresolvable calls
// (function values, method values, out-of-tree callees) contribute no
// edges and no effects, so the engine adds findings only along chains
// it can actually prove, and silence stays the safe default.
package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/ftvet"
)

// Node is one declared function or method in the analyzed tree.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *ftvet.Package

	// Out holds this function's resolved call edges in source order.
	Out []Edge

	// SCC is the index of the node's strongly connected component in
	// bottom-up order (callees have lower indices than their callers,
	// except within a cycle).
	SCC int

	// Sum is the function's fixpoint summary.
	Sum *Summary
}

// Edge is one resolved call: Site is the call expression in the
// caller's body (function literals are attributed to their enclosing
// declaration), Callee the resolved target. Dynamic marks interface
// dispatch, where one site fans out to every implementing type. InLit
// marks a call inside a function literal: the literal usually escapes
// (a Schedule callback, a stored closure) and runs later, so effects do
// not propagate across such edges — only lock sets do (a deadlock is a
// deadlock whenever the closure eventually runs).
type Edge struct {
	Site    *ast.CallExpr
	Callee  *Node
	Dynamic bool
	InLit   bool
}

// Graph is the package-set call graph plus summaries.
type Graph struct {
	Fset  *token.FileSet
	Pkgs  []*ftvet.Package
	Nodes map[*types.Func]*Node

	// order lists nodes deterministically (package, file, position).
	order []*Node

	// sccs lists components bottom-up (pure callees first).
	sccs [][]*Node

	// callees indexes resolution results per call site.
	callees map[*ast.CallExpr][]*Node

	// callers counts in-tree call sites targeting each node.
	callers map[*Node]int
}

// Of returns the run-wide graph for the pass, building it on first use
// and memoizing it in Pass.Shared so every analyzer of the run shares
// one instance.
func Of(pass *ftvet.Pass) *Graph {
	if pass.Shared == nil {
		return Build(pass.Fset, pass.All)
	}
	return pass.Shared.Get("flow.graph", func() any { return Build(pass.Fset, pass.All) }).(*Graph)
}

// Build constructs the call graph over the package set and computes all
// function summaries.
func Build(fset *token.FileSet, pkgs []*ftvet.Package) *Graph {
	g := &Graph{
		Fset:    fset,
		Pkgs:    pkgs,
		Nodes:   map[*types.Func]*Node{},
		callees: map[*ast.CallExpr][]*Node{},
		callers: map[*Node]int{},
	}
	g.collect()
	g.resolve()
	g.condense()
	g.summarize()
	return g
}

// NodeOf returns the graph node for fn, or nil when fn is not declared
// in the analyzed tree.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.Nodes[fn]
}

// CalleesAt returns the resolved callees of a call site: one node for a
// static call, every implementing method for an interface call, nil for
// calls the graph cannot resolve (builtins, conversions, function
// values, out-of-tree targets).
func (g *Graph) CalleesAt(call *ast.CallExpr) []*Node {
	return g.callees[call]
}

// Functions returns every node in deterministic order.
func (g *Graph) Functions() []*Node { return g.order }

// CallerCount returns the number of static in-tree call sites targeting
// n (self-recursion and interface dispatch excluded — a consumer using
// caller counts to shift responsibility can only shift it along edges
// summaries actually propagate over, which are the static ones).
func (g *Graph) CallerCount(n *Node) int { return g.callers[n] }

// SCCs returns the strongly connected components in bottom-up order.
func (g *Graph) SCCs() [][]*Node { return g.sccs }

// collect indexes every function and method declaration in the tree.
func (g *Graph) collect() {
	for _, pkg := range g.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg}
				g.Nodes[fn] = n
				g.order = append(g.order, n)
			}
		}
	}
	sort.SliceStable(g.order, func(i, j int) bool {
		pi, pj := g.Fset.Position(g.order[i].Decl.Pos()), g.Fset.Position(g.order[j].Decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})
}

// methodIndex maps a concrete named type in the tree to its declared
// methods, the candidate set for interface dispatch.
type methodIndex map[*types.TypeName]map[string]*Node

func (g *Graph) buildMethodIndex() methodIndex {
	idx := methodIndex{}
	for _, n := range g.order {
		sig, ok := n.Fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok || types.IsInterface(named) {
			continue
		}
		tn := named.Obj()
		if idx[tn] == nil {
			idx[tn] = map[string]*Node{}
		}
		idx[tn][n.Fn.Name()] = n
	}
	return idx
}

// errorIface is the universe error interface, excluded from dispatch
// resolution: every error type in the tree would otherwise become a
// candidate at every err.Error() site, drowning the graph in edges that
// carry no FT-invariant signal.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// resolve walks every function body and records call edges.
func (g *Graph) resolve() {
	idx := g.buildMethodIndex()
	// Deterministic candidate enumeration for dispatch: type names
	// sorted by position.
	var typeNames []*types.TypeName
	for tn := range idx {
		typeNames = append(typeNames, tn)
	}
	sort.Slice(typeNames, func(i, j int) bool { return typeNames[i].Pos() < typeNames[j].Pos() })

	for _, n := range g.order {
		node := n
		var walk func(root ast.Node, inLit bool)
		walk = func(root ast.Node, inLit bool) {
			ast.Inspect(root, func(x ast.Node) bool {
				if fl, ok := x.(*ast.FuncLit); ok {
					walk(fl.Body, true)
					return false
				}
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, c := range g.resolveCall(node.Pkg, call, idx, typeNames) {
					node.Out = append(node.Out, Edge{Site: call, Callee: c.node, Dynamic: c.dynamic, InLit: inLit})
					g.callees[call] = append(g.callees[call], c.node)
					if c.node != node && !c.dynamic {
						g.callers[c.node]++
					}
				}
				return true
			})
		}
		walk(n.Decl.Body, false)
	}
}

type candidate struct {
	node    *Node
	dynamic bool
}

// resolveCall maps one call expression to its possible in-tree targets.
func (g *Graph) resolveCall(pkg *ftvet.Package, call *ast.CallExpr, idx methodIndex, typeNames []*types.TypeName) []candidate {
	// Interface dispatch: a method call whose receiver is an interface
	// resolves to the method of every tree-declared type implementing
	// it (type-set-bounded resolution — the tree is the closed world).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			recv := s.Recv()
			if types.IsInterface(recv) {
				iface, ok := recv.Underlying().(*types.Interface)
				if !ok || iface.NumMethods() == 0 || types.Identical(iface, errorIface) {
					return nil
				}
				name := sel.Sel.Name
				var out []candidate
				for _, tn := range typeNames {
					m, ok := idx[tn][name]
					if !ok {
						continue
					}
					t := tn.Type()
					if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
						out = append(out, candidate{node: m, dynamic: true})
					}
				}
				return out
			}
		}
	}
	// Static call (package function or concrete method).
	if fn := pkg.CalleeFunc(call); fn != nil {
		if n := g.Nodes[fn]; n != nil {
			return []candidate{{node: n}}
		}
	}
	return nil
}

// condense runs Tarjan's algorithm; SCCs come out bottom-up (every
// successor component — callee — is emitted before its callers), which
// is exactly the order the summary fixpoint wants.
func (g *Graph) condense() {
	index := map[*Node]int{}
	low := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	next := 0

	var strongconnect func(v *Node)
	strongconnect = func(v *Node) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range v.Out {
			w := e.Callee
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []*Node
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				w.SCC = len(g.sccs)
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			g.sccs = append(g.sccs, scc)
		}
	}
	for _, v := range g.order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
}
