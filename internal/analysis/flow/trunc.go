package flow

import (
	"go/ast"
	"go/token"
	"strings"
)

// Retained-log truncation detection (the epoch-checkpoint idiom of
// DESIGN.md §18): dropping a prefix of a retained history slice —
// `x.history = x.history[keep:]` — is only safe below a boundary a
// quorum of replicas has digest-verified; truncating an unverified
// prefix discards the only local copy of the catch-up state a promotion
// or rejoin may still need. The structural shape is a self-reslice of a
// field or variable named "history" with a low bound; the sanction is a
// preceding guard whose condition names the verified watermark (the
// `if verifiedSent < r.histBase { return }` clamp both the recorder and
// the replayer carry).

// TruncSite is one retained-history truncation in a function body.
type TruncSite struct {
	Pos token.Pos
	// Sanctioned marks a site preceded by an if-guard whose condition
	// mentions a verified boundary.
	Sanctioned bool
}

// retainedName returns the terminal name of a history-slice expression:
// "history" for `r.history` or a bare `history` identifier.
func retainedName(e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name, true
	case *ast.Ident:
		return x.Name, true
	}
	return "", false
}

// mentionsVerified reports whether any identifier under e names a
// verified quantity (contains "verified", case-insensitive).
func mentionsVerified(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok &&
			strings.Contains(strings.ToLower(id.Name), "verified") {
			found = true
		}
		return !found
	})
	return found
}

// scanTrunc collects the function's retained-history truncation sites
// and marks each as sanctioned when an if-guard naming a verified
// boundary precedes it in the body.
func (g *Graph) scanTrunc(n *Node) []TruncSite {
	if n.Decl == nil || n.Decl.Body == nil {
		return nil
	}
	var guards []token.Pos
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if ifs, ok := x.(*ast.IfStmt); ok && mentionsVerified(ifs.Cond) {
			guards = append(guards, ifs.Pos())
		}
		return true
	})
	var sites []TruncSite
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sl, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr)
		if !ok || sl.Low == nil {
			// No low bound: a tail trim or a fresh slice, not a prefix drop.
			return true
		}
		lname, lok := retainedName(as.Lhs[0])
		rname, rok := retainedName(sl.X)
		if !lok || !rok || lname != rname || !strings.Contains(strings.ToLower(lname), "history") {
			return true
		}
		site := TruncSite{Pos: as.Pos()}
		for _, gp := range guards {
			if gp < as.Pos() {
				site.Sanctioned = true
				break
			}
		}
		sites = append(sites, site)
		return true
	})
	return sites
}
