package flow

import (
	"go/token"
	"strings"

	"repro/internal/analysis/ftvet"
)

// Trace rendering: every summary entry carries a Via chain (the call
// hops from the reporting function down to the ultimate site); these
// helpers turn a chain into ftvet.TraceStep lists (one clickable
// position per hop, ending at the source/sink) and into the compact
// "a → b → c" path strings embedded in diagnostic messages.

// traceSteps renders a via-chain plus its terminal site.
func traceSteps(via []Hop, final token.Pos, note string) []ftvet.TraceStep {
	out := make([]ftvet.TraceStep, 0, len(via)+1)
	for _, h := range via {
		out = append(out, ftvet.TraceStep{Pos: h.Pos, Note: "via call to " + h.Name})
	}
	return append(out, ftvet.TraceStep{Pos: final, Note: note})
}

// Trace renders the taint's call chain ending at the source expression.
func (t Taint) Trace() []ftvet.TraceStep {
	return traceSteps(t.Via, t.Source, t.Desc+" — the nondeterminism source")
}

// Path renders the taint's hop names for embedding in a message:
// "stamp -> now -> time.Now". Empty for a direct (intra-function)
// taint.
func (t Taint) Path() string {
	if len(t.Via) == 0 {
		return ""
	}
	names := make([]string, 0, len(t.Via)+1)
	for _, h := range t.Via {
		names = append(names, h.Name)
	}
	names = append(names, t.Desc)
	return strings.Join(names, " -> ")
}

// Trace renders the effect's call chain ending at the forbidden site.
func (e *Effect) Trace() []ftvet.TraceStep {
	if e == nil {
		return nil
	}
	return traceSteps(e.Via, e.Pos, e.Desc)
}

// Path renders the effect's hop names for embedding in a message.
func (e *Effect) Path() string {
	if e == nil || len(e.Via) == 0 {
		return ""
	}
	names := make([]string, 0, len(e.Via)+1)
	for _, h := range e.Via {
		names = append(names, h.Name)
	}
	names = append(names, e.Desc)
	return strings.Join(names, " -> ")
}

// Trace renders the arm site's call chain ending at the arming
// statement inside the ultimate callee.
func (a ArmSite) Trace() []ftvet.TraceStep {
	if a.Callee == nil {
		return nil
	}
	return traceSteps(a.Via, a.ArmPos, "output-commit waiter armed here without an internal force-flush")
}

// LeakTrace renders the span leak's call chain ending at the unsettled
// exit.
func (i SpanInfo) LeakTrace() []ftvet.TraceStep {
	if i.Disp != SpanLeaks {
		return nil
	}
	return traceSteps(i.Via, i.LeakPos, "exits here without committing or aborting the span")
}
