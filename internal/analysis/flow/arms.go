package flow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/ftvet"
)

// Watermark-arm detection: the structural shapes come from the
// watermark analyzer (append to a slice of watermark-carrying structs,
// map-index store of one into a grant table); the summary layer adds
// what the intraprocedural pass cannot see — a flush that happens inside
// a called helper counts as domination, and a helper that arms without
// flushing turns its call sites into arm sites for callers.

// WatermarkAppend reports whether the call is append(q, w...) where the
// slice's element type is a struct carrying a watermark field.
func WatermarkAppend(pkg *ftvet.Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	t := pkg.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return WatermarkStruct(sl.Elem())
}

// WatermarkTableStore reports whether lhs is a map-index store whose
// value type is a watermark-carrying struct — the per-object grant-table
// idiom (`table[obj] = waiter{watermark: seqObj, ...}`).
func WatermarkTableStore(pkg *ftvet.Package, lhs ast.Expr) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pkg.TypeOf(idx.X)
	if t == nil {
		return false
	}
	mp, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	return WatermarkStruct(mp.Elem())
}

// WatermarkStruct reports whether elem (a pointer indirection is looked
// through) is an armable output-commit waiter: a struct carrying both a
// watermark field and a callback (func-typed) field — the shape shared
// by the global queue (replication.stableWaiter, tcprep.syncWaiter) and
// the per-object grant table. Two exemptions keep plain watermark DATA
// lintable without flushes:
//
//   - the observability layer: the causal analyzer records receipt
//     watermarks in its critical-path values (causal.OutputPath), which
//     nothing ever waits on;
//   - the watermark-vector idiom of the N-way recorder: a per-replica
//     map (or slice) of watermark-carrying structs with no callback
//     field (replication.ReplicaWatermark) is a receipt-state snapshot
//     — there is no fn to fire, so storing one can neither stall nor
//     deadlock output release. The callback field is the discriminator:
//     a waiter without one cannot be released at all, so no real waiter
//     shape loses coverage.
func WatermarkStruct(elem types.Type) bool {
	if elem == nil {
		return false
	}
	if p, ok := elem.Underlying().(*types.Pointer); ok {
		elem = p.Elem()
	}
	if obsLayerType(elem) {
		return false
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	marked, armable := false, false
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if strings.EqualFold(f.Name(), "watermark") {
			marked = true
		}
		if _, isFn := f.Type().Underlying().(*types.Signature); isFn {
			armable = true
		}
	}
	return marked && armable
}

// obsLayerType reports whether the named type is defined in the
// sanctioned observability layer (repro/internal/obs and its
// subpackages): trace-analysis value types there carry watermark
// fields as recorded data, not as armable waiters.
func obsLayerType(elem types.Type) bool {
	n, ok := elem.(*types.Named)
	if !ok {
		return false
	}
	pkg := n.Obj().Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "repro/internal/obs" || strings.HasPrefix(path, "repro/internal/obs/")
}

// scanArms walks the function body with the watermark analyzer's
// structural dominance rules (a flush dominates everything after it in
// the same or an enclosing block; control-flow arms inherit but do not
// export dominance; function literals open a fresh scope) and records
// every arm site with its status. Two interprocedural upgrades over the
// intra pass: a statement that calls a helper whose summary flushes
// establishes dominance, and a call to a helper whose summary arms
// without an internal dominating flush is itself an arm site.
func (g *Graph) scanArms(n *Node) []ArmSite {
	pkg := n.Pkg
	var sites []ArmSite

	var scan func(stmts []ast.Stmt, flushSeen, inLit bool)

	// checkStmt records arm sites in the non-nested part of s.
	checkStmt := func(s ast.Stmt, flushSeen, inLit bool) {
		ast.Inspect(s, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.BlockStmt:
				return false // nested arms handled by scan
			case *ast.FuncLit:
				scan(x.Body.List, false, true)
				return false
			case *ast.CallExpr:
				if WatermarkAppend(pkg, x) {
					sites = append(sites, ArmSite{
						Pos: x.Pos(), ArmPos: x.Pos(),
						Dominated: flushSeen, InLit: inLit,
					})
					return true
				}
				if cn := g.staticCallee(pkg, x); cn != nil && cn.Sum != nil {
					if a := cn.Sum.UnflushedArm(); a != nil {
						sites = append(sites, ArmSite{
							Pos: x.Pos(), ArmPos: a.ArmPos, Table: a.Table,
							Dominated: flushSeen, InLit: inLit,
							Callee: cn.Fn,
							Via:    prependHop(shortName(cn.Fn), x.Pos(), a.Via),
						})
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if WatermarkTableStore(pkg, lhs) {
						sites = append(sites, ArmSite{
							Pos: lhs.Pos(), ArmPos: lhs.Pos(), Table: true,
							Dominated: flushSeen, InLit: inLit,
						})
					}
				}
			}
			return true
		})
	}

	// stmtFlushes reports whether s directly (outside nested blocks and
	// function literals) calls a flush-family function or a helper whose
	// summary (transitively) flushes.
	stmtFlushes := func(s ast.Stmt) bool {
		found := false
		ast.Inspect(s, func(x ast.Node) bool {
			if found {
				return false
			}
			switch x := x.(type) {
			case *ast.BlockStmt, *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if strings.Contains(strings.ToLower(calleeName(x)), "flush") {
					found = true
					return false
				}
				if cn := g.staticCallee(pkg, x); cn != nil && cn.Sum != nil && cn.Sum.Flushes {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}

	scan = func(stmts []ast.Stmt, flushSeen, inLit bool) {
		for _, s := range stmts {
			checkStmt(s, flushSeen, inLit)
			if stmtFlushes(s) {
				flushSeen = true
			}
			switch s := s.(type) {
			case *ast.BlockStmt:
				scan(s.List, flushSeen, inLit)
			case *ast.IfStmt:
				scan(s.Body.List, flushSeen, inLit)
				if s.Else != nil {
					scan([]ast.Stmt{s.Else}, flushSeen, inLit)
				}
			case *ast.ForStmt:
				scan(s.Body.List, flushSeen, inLit)
			case *ast.RangeStmt:
				scan(s.Body.List, flushSeen, inLit)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						scan(cc.Body, flushSeen, inLit)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						scan(cc.Body, flushSeen, inLit)
					}
				}
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						scan(cc.Body, flushSeen, inLit)
					}
				}
			case *ast.LabeledStmt:
				scan([]ast.Stmt{s.Stmt}, flushSeen, inLit)
			}
		}
	}
	scan(n.Decl.Body.List, false, false)
	return sites
}

// staticCallee resolves a call to its in-tree node when the call is
// static (not interface dispatch), else nil.
func (g *Graph) staticCallee(pkg *ftvet.Package, call *ast.CallExpr) *Node {
	fn := pkg.CalleeFunc(call)
	if fn == nil {
		return nil
	}
	return g.Nodes[fn]
}
