package flow

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Debug dumps for cmd/ftvet: -callgraph prints the resolved edge list,
// -summary the per-function fixpoint summaries. Both are line-oriented
// and deterministic (graph order is position-sorted) so runs diff
// cleanly — the same property the lockorder -lockgraph dump has.

// DumpCallGraph writes one line per resolved call edge:
//
//	caller -> callee [dynamic] [in-literal] (callsite position)
func (g *Graph) DumpCallGraph(w io.Writer) {
	for _, n := range g.order {
		for _, e := range n.Out {
			var marks []string
			if e.Dynamic {
				marks = append(marks, "dynamic")
			}
			if e.InLit {
				marks = append(marks, "in-literal")
			}
			suffix := ""
			if len(marks) > 0 {
				suffix = " [" + strings.Join(marks, ",") + "]"
			}
			fmt.Fprintf(w, "%s -> %s%s (%s)\n",
				shortName(n.Fn), shortName(e.Callee.Fn), suffix, g.Fset.Position(e.Site.Pos()))
		}
	}
}

// DumpSummaries writes each function's summary as an indented block,
// omitting empty dimensions so the dump stays scannable.
func (g *Graph) DumpSummaries(w io.Writer) {
	for _, n := range g.order {
		s := n.Sum
		if s == nil {
			continue
		}
		var lines []string
		for _, t := range s.ResultTaints {
			entry := "  taint: " + t.Kind.String() + " (" + t.Desc
			if p := t.Path(); p != "" {
				entry = "  taint: " + t.Kind.String() + " (" + p
			}
			lines = append(lines, entry+")")
		}
		for _, kind := range effectOrder {
			if e := s.Effects[kind]; e != nil {
				desc := e.Desc
				if p := e.Path(); p != "" {
					desc = p
				}
				lines = append(lines, fmt.Sprintf("  effect: %s @ %s", desc, g.Fset.Position(e.Pos)))
			}
		}
		if s.Flushes {
			lines = append(lines, "  flushes")
		}
		if len(s.Locks) > 0 {
			ids := make([]string, 0, len(s.Locks))
			for id := range s.Locks {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			lines = append(lines, "  locks: "+strings.Join(ids, ", "))
		}
		idxs := make([]int, 0, len(s.SpanParams))
		for i := range s.SpanParams {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			info := s.SpanParams[i]
			switch info.Disp {
			case SpanSettles:
				lines = append(lines, fmt.Sprintf("  span[%d]: settles", i))
			case SpanLeaks:
				lines = append(lines, fmt.Sprintf("  span[%d]: LEAKS @ %s", i, g.Fset.Position(info.LeakPos)))
			case SpanPassThrough:
				lines = append(lines, fmt.Sprintf("  span[%d]: pass-through", i))
			}
		}
		for _, a := range s.ArmSites {
			state := "UNDOMINATED"
			if a.Dominated {
				state = "flush-dominated"
			}
			kind := "waiter append"
			if a.Table {
				kind = "grant-table store"
			}
			if a.Callee != nil {
				kind += " via " + a.Callee.Name()
			}
			lines = append(lines, fmt.Sprintf("  arm: %s, %s @ %s", kind, state, g.Fset.Position(a.Pos)))
		}
		if len(lines) == 0 {
			continue
		}
		fmt.Fprintf(w, "%s (scc %d, callers %d)\n%s\n", n.Fn.FullName(), n.SCC, g.callers[n], strings.Join(lines, "\n"))
	}
}
