package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// maxHops bounds trace length through deep call chains and recursion:
// joins drop hops beyond this depth (the trace stays truthful, just
// truncated at its deep end).
const maxHops = 8

// Hop is one call edge of an interprocedural trace: the callee's short
// name and the call site's position in the caller.
type Hop struct {
	Name string
	Pos  token.Pos
}

// EffectKind classifies the behaviors summaries track for the
// deterministic-section rules.
type EffectKind uint8

const (
	EffSpawn   EffectKind = iota // spawns a goroutine
	EffChanOp                    // channel send/receive/close/select
	EffShmCall                   // calls into the shm mailbox
	effKinds
)

// effectOrder fixes the iteration order for deterministic propagation
// and reporting.
var effectOrder = [...]EffectKind{EffSpawn, EffChanOp, EffShmCall}

// Effect records that a function's body can reach a forbidden-in-
// section operation: Pos/Desc name the ultimate site, Via the call
// chain from the summarized function to it (outermost call first,
// empty for a direct occurrence).
type Effect struct {
	Kind EffectKind
	Pos  token.Pos
	Desc string
	Via  []Hop
}

// SpanDisp classifies how a function treats a *shm.Span parameter.
type SpanDisp uint8

const (
	// SpanPassThrough: the function uses the span (Put, Len, …) but
	// neither settles nor stores it — responsibility stays with the
	// caller, exactly as if the call were inlined.
	SpanPassThrough SpanDisp = iota
	// SpanSettles: every path through the function commits, aborts, or
	// hands the span off (stores/returns/escapes it).
	SpanSettles
	// SpanLeaks: the function settles the span on some path but exits
	// without settling on another (the early-return leak) — no caller
	// can recover, so the reservation site is reportable.
	SpanLeaks
)

// SpanInfo is the summary entry for one *shm.Span parameter.
type SpanInfo struct {
	Disp    SpanDisp
	LeakPos token.Pos // the unsettled return (or end of function) for SpanLeaks
	Via     []Hop     // call chain when the leak happens in a deeper callee
}

// ArmSite is one place a function arms an output-commit watermark
// waiter, with its force-flush domination status (the §3.5 invariant).
// For Callee == nil the arm is in this function's own body (ArmPos ==
// Pos); otherwise Pos is a call to a function that arms without an
// internal dominating flush, and ArmPos/Via locate the ultimate arm.
type ArmSite struct {
	Pos       token.Pos
	ArmPos    token.Pos
	Table     bool // map-index grant-table store rather than an append
	Dominated bool // a force-flush dominates the site within this function
	InLit     bool // inside a function literal (runs later; callers' flushes don't help)
	Callee    *types.Func
	Via       []Hop
}

// Summary is one function's fixpoint summary.
type Summary struct {
	// ResultTaints lists the nondeterminism taints any result value may
	// carry (see taint.go).
	ResultTaints []Taint

	// ResultParams marks parameters (by position, receiver excluded)
	// whose values may flow into a result.
	ResultParams []bool

	// Effects holds the first discovered site per effect kind,
	// propagated through static calls.
	Effects [effKinds]*Effect

	// Flushes reports that the function (transitively) calls a
	// flush-family function — its call sites count as force-flush
	// domination for the watermark rule.
	Flushes bool

	// Locks maps every lock the function may (transitively) acquire to
	// the first acquisition site, including interface-dispatched calls.
	Locks map[string]token.Pos

	// SpanParams maps *shm.Span parameter positions to their
	// disposition.
	SpanParams map[int]SpanInfo

	// ArmSites lists watermark-arming sites with domination status.
	ArmSites []ArmSite

	// TruncSites lists retained-history truncations with their
	// verified-boundary sanction status (see trunc.go).
	TruncSites []TruncSite
}

// Effect returns the summary's entry for kind, or nil.
func (s *Summary) Effect(kind EffectKind) *Effect {
	if s == nil {
		return nil
	}
	return s.Effects[kind]
}

// UnflushedArm returns the first arm site that escapes force-flush
// domination inside the function, or nil. Sites inside function
// literals are excluded: they run when the literal is invoked, not when
// this function is called, so a caller's flush neither helps nor is
// needed at the call site — the watermark analyzer reports them at the
// literal directly.
func (s *Summary) UnflushedArm() *ArmSite {
	if s == nil {
		return nil
	}
	for i := range s.ArmSites {
		a := &s.ArmSites[i]
		if !a.Dominated && !a.InLit {
			return a
		}
	}
	return nil
}

// ArmsUnflushed reports whether some arm site escapes force-flush
// domination inside the function (making its call sites arming sites
// for callers).
func (s *Summary) ArmsUnflushed() bool { return s.UnflushedArm() != nil }

// shortName renders a function compactly for traces: Recv.Name for
// methods, pkg.Name for package functions.
func shortName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// prependHop pushes a new outermost call onto a trace, respecting the
// hop bound.
func prependHop(name string, pos token.Pos, via []Hop) []Hop {
	if len(via) >= maxHops {
		via = via[:maxHops-1]
	}
	out := make([]Hop, 0, len(via)+1)
	out = append(out, Hop{Name: name, Pos: pos})
	return append(out, via...)
}

// summarize drives the bottom-up fixpoint: SCCs are processed callees-
// first, and each component iterates until its members' summaries stop
// changing (recursion converges because every summary dimension is
// monotone: effects, locks and taints only grow, and flush domination
// only flips toward dominated).
func (g *Graph) summarize() {
	for _, scc := range g.sccs {
		for iter := 0; iter < 32; iter++ {
			changed := false
			for _, n := range scc {
				if g.summarizeNode(n) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// summarizeNode recomputes one function's summary from its body and its
// callees' current summaries, reporting whether it changed.
func (g *Graph) summarizeNode(n *Node) bool {
	s := &Summary{Locks: map[string]token.Pos{}}
	g.directScan(n, s)

	// Propagate callee summaries. Effects and flushes cross direct
	// static edges only: dispatch fan-out would attribute one
	// implementation's behavior to every caller of the interface, and a
	// call inside a function literal (a Schedule callback, a stored
	// closure) runs later — its effects do not happen at this call.
	// Lock sets cross dynamic and literal edges too, because a deadlock
	// through any implementation, whenever the closure runs, is still a
	// deadlock.
	for _, e := range n.Out {
		cs := e.Callee.Sum
		if cs == nil {
			continue
		}
		for id, pos := range cs.Locks {
			if _, ok := s.Locks[id]; !ok {
				s.Locks[id] = pos
			}
		}
		if e.Dynamic || e.InLit {
			continue
		}
		if cs.Flushes {
			s.Flushes = true
		}
		for _, kind := range effectOrder {
			if s.Effects[kind] != nil {
				continue
			}
			if eff := cs.Effects[kind]; eff != nil {
				s.Effects[kind] = &Effect{
					Kind: kind,
					Pos:  eff.Pos,
					Desc: eff.Desc,
					Via:  prependHop(shortName(e.Callee.Fn), e.Site.Pos(), eff.Via),
				}
			}
		}
	}

	s.ResultTaints, s.ResultParams = g.taintScan(n)
	s.ArmSites = g.scanArms(n)
	s.TruncSites = g.scanTrunc(n)
	s.SpanParams = g.spanScan(n)

	changed := fingerprint(s) != fingerprint(n.Sum)
	n.Sum = s
	return changed
}

// fingerprint reduces a summary to a comparison key for fixpoint
// change detection.
func fingerprint(s *Summary) string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	for _, t := range s.ResultTaints {
		fmt.Fprintf(&b, "t%d@%d;", t.Kind, t.Source)
	}
	for i, p := range s.ResultParams {
		if p {
			fmt.Fprintf(&b, "p%d;", i)
		}
	}
	for _, kind := range effectOrder {
		if e := s.Effects[kind]; e != nil {
			fmt.Fprintf(&b, "e%d@%d;", kind, e.Pos)
		}
	}
	if s.Flushes {
		b.WriteString("F;")
	}
	ids := make([]string, 0, len(s.Locks))
	for id := range s.Locks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Fprintf(&b, "L%s;", strings.Join(ids, ","))
	for _, a := range s.ArmSites {
		fmt.Fprintf(&b, "a%d:%v;", a.Pos, a.Dominated)
	}
	for _, ts := range s.TruncSites {
		fmt.Fprintf(&b, "T%d:%v;", ts.Pos, ts.Sanctioned)
	}
	idxs := make([]int, 0, len(s.SpanParams))
	for i := range s.SpanParams {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		fmt.Fprintf(&b, "s%d:%d;", i, s.SpanParams[i].Disp)
	}
	return b.String()
}

// directScan collects the effects, lock acquisitions, and flush calls
// that appear textually in the function's own body. Function literals
// are walked too, but only for lock acquisitions: a closure built here
// usually escapes (handed to Schedule, stored for a flush loop) and
// runs later, so its effects and flushes do not happen at this call —
// while any lock it will eventually take still belongs in the
// transitive lock set.
func (g *Graph) directScan(n *Node, s *Summary) {
	pkg := n.Pkg
	owner := n.Fn.FullName()
	addEffect := func(kind EffectKind, pos token.Pos, desc string) {
		if s.Effects[kind] == nil {
			s.Effects[kind] = &Effect{Kind: kind, Pos: pos, Desc: desc}
		}
	}
	var walk func(root ast.Node, inLit bool)
	walk = func(root ast.Node, inLit bool) {
		ast.Inspect(root, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				walk(x.Body, true)
				return false
			case *ast.GoStmt:
				if !inLit {
					addEffect(EffSpawn, x.Pos(), "goroutine spawn")
				}
			case *ast.SendStmt:
				if !inLit {
					addEffect(EffChanOp, x.Pos(), "channel send")
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW && !inLit {
					addEffect(EffChanOp, x.Pos(), "channel receive")
				}
			case *ast.SelectStmt:
				if !inLit {
					addEffect(EffChanOp, x.Pos(), "select statement")
				}
			case *ast.AssignStmt:
				for _, op := range FlushFlagOps(pkg, x, owner) {
					if op.Acquire {
						if _, ok := s.Locks[op.ID]; !ok {
							s.Locks[op.ID] = op.Pos
						}
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && !inLit {
						addEffect(EffChanOp, x.Pos(), "close of a channel")
					}
				}
				if op, lockID := ClassifyLockOp(pkg, x, owner); op == LockAcquire || op == LockTransient {
					if _, ok := s.Locks[lockID]; !ok {
						s.Locks[lockID] = x.Pos()
					}
				}
				if fn := pkg.CalleeFunc(x); fn != nil && fn.Pkg() != nil && strings.Contains(fn.Pkg().Path(), "internal/shm") && !inLit {
					addEffect(EffShmCall, x.Pos(), fn.Pkg().Name()+"."+fn.Name()+" call")
				}
				if name := calleeName(x); strings.Contains(strings.ToLower(name), "flush") && !inLit {
					s.Flushes = true
				}
			}
			return true
		})
	}
	walk(n.Decl.Body, false)
}

// calleeName extracts the bare called name from a call expression.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
