package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Span-parameter disposition: how a function treats a *shm.Span it was
// handed. lockorder's span-leak check needs this to see through helper
// calls — a reservation passed to a helper is only safe if the helper
// actually settles (or stores) it, and a helper that commits on the
// happy path but early-returns around the settle leaks the span in a
// way neither function shows in isolation.

// IsSpanType reports whether t is shm.Span or a pointer to it.
func IsSpanType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Span" && obj.Pkg() != nil && strings.Contains(obj.Pkg().Path(), "internal/shm")
}

// spanScan classifies every span parameter of the function.
func (g *Graph) spanScan(n *Node) map[int]SpanInfo {
	pkg := n.Pkg
	var out map[int]SpanInfo
	idx := 0
	if n.Decl.Type.Params == nil {
		return nil
	}
	for _, field := range n.Decl.Type.Params.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil && IsSpanType(obj.Type()) {
				if out == nil {
					out = map[int]SpanInfo{}
				}
				out[idx] = g.spanDisp(n, obj)
			}
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	return out
}

// spanDisp computes one span parameter's disposition.
func (g *Graph) spanDisp(n *Node, obj types.Object) SpanInfo {
	pkg := n.Pkg
	uses := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return found
	}

	// Pass 1: classify every use. settlePos collects the positions of
	// statements that settle the span (a direct Commit/Abort, or a call
	// handing it to a callee that settles). escape covers the hand-off
	// shapes lockorder's intraprocedural check silences on — minus calls
	// to callees whose summary proves they merely use the span.
	settlePos := map[token.Pos]bool{}
	escaped := false
	var calleeLeak *SpanInfo
	var calleeLeakVia []Hop
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if escaped {
			return false
		}
		switch x := x.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
					switch sel.Sel.Name {
					case "Commit", "Abort":
						settlePos[x.Pos()] = true
						return true
					}
				}
			}
			for i, a := range x.Args {
				if !uses(a) {
					continue
				}
				// A span handed to a static in-tree callee is judged by
				// that callee's summary; anything unresolvable keeps the
				// conservative hand-off reading (escape → silence).
				cn := g.staticCallee(pkg, x)
				if cn == nil || cn.Sum == nil {
					escaped = true
					return false
				}
				info, ok := cn.Sum.SpanParams[i]
				if !ok {
					// The callee does not see this argument as a span
					// parameter (interface{}, variadic, …): hand-off.
					escaped = true
					return false
				}
				switch info.Disp {
				case SpanSettles:
					settlePos[x.Pos()] = true
				case SpanLeaks:
					if calleeLeak == nil {
						inf := info
						calleeLeak = &inf
						calleeLeakVia = prependHop(shortName(cn.Fn), x.Pos(), info.Via)
					}
				case SpanPassThrough:
					// The callee only used the span; responsibility
					// stays here. Not an escape, not a settle.
				}
			}
		case *ast.ReturnStmt:
			for _, e := range x.Results {
				if uses(e) {
					escaped = true
					return false
				}
			}
		case *ast.AssignStmt:
			for _, e := range x.Rhs {
				if uses(e) {
					escaped = true
					return false
				}
			}
		case *ast.SendStmt:
			if uses(x.Value) {
				escaped = true
				return false
			}
		case *ast.CompositeLit:
			for _, e := range x.Elts {
				if uses(e) {
					escaped = true
					return false
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND && uses(x.X) {
				escaped = true
				return false
			}
		}
		return true
	})

	if escaped {
		// Handed off whole: the receiver owns settling it (the recorder
		// parks its open span in link.span for the flush loop). From the
		// caller's perspective the span is dealt with.
		return SpanInfo{Disp: SpanSettles}
	}
	if calleeLeak != nil {
		return SpanInfo{Disp: SpanLeaks, LeakPos: calleeLeak.LeakPos, Via: calleeLeakVia}
	}
	if len(settlePos) == 0 {
		return SpanInfo{Disp: SpanPassThrough}
	}

	// Pass 2: the function settles on some path — find a path that exits
	// without settling. Structural walk mirroring the flush-dominance
	// scan: a statement list settles once a settling statement (or an
	// if/else or exhaustive switch whose every arm settles) has run; a
	// return before that point, or falling off the end of the body
	// unsettled, is the early-return leak.
	stmtSettles := func(s ast.Stmt) bool {
		found := false
		ast.Inspect(s, func(x ast.Node) bool {
			if found {
				return false
			}
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok && settlePos[call.Pos()] {
				found = true
				return false
			}
			return true
		})
		return found
	}
	var leakPos token.Pos
	var walk func(stmts []ast.Stmt) bool
	walk = func(stmts []ast.Stmt) bool {
		settled := false
		for _, s := range stmts {
			if settled {
				break
			}
			switch s := s.(type) {
			case *ast.ReturnStmt:
				if stmtSettles(s) {
					settled = true
				} else if !leakPos.IsValid() {
					leakPos = s.Pos()
				}
			case *ast.BlockStmt:
				if walk(s.List) {
					settled = true
				}
			case *ast.IfStmt:
				a := walk(s.Body.List)
				b := false
				if s.Else != nil {
					b = walk([]ast.Stmt{s.Else})
				}
				if a && b {
					settled = true
				}
			case *ast.SwitchStmt:
				all, hasDefault := true, false
				for _, c := range s.Body.List {
					cc, ok := c.(*ast.CaseClause)
					if !ok {
						continue
					}
					if cc.List == nil {
						hasDefault = true
					}
					if !walk(cc.Body) {
						all = false
					}
				}
				if all && hasDefault {
					settled = true
				}
			default:
				if stmtSettles(s) {
					settled = true
				}
			}
		}
		return settled
	}
	if !walk(n.Decl.Body.List) && !leakPos.IsValid() {
		leakPos = n.Decl.Body.Rbrace
	}
	if leakPos.IsValid() {
		return SpanInfo{Disp: SpanLeaks, LeakPos: leakPos}
	}
	return SpanInfo{Disp: SpanSettles}
}
