package flow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/ftvet"
)

// Lock classification, shared between the summary engine (transitive
// lock sets) and the lockorder analyzer's held-set walker. The model is
// the one lockorder established:
//
//   - acquisitions: pthread Mutex.Lock / RWLock.RdLock / RWLock.WrLock,
//     sync.Mutex/RWMutex Lock/RLock, and the pseudo-lock "x.flushing =
//     true" (released by "= false");
//   - transient acquisitions: blocking shm.Ring operations (Send,
//     SendBatch, Recv, RecvBatch, RecvTimeout, Reserve) — held only for
//     the call, but ordered after everything currently held;
//   - lock identity: the receiver's field path (Type.field), the
//     package-level variable (pkg.var), or a per-function node for
//     locals.

// LockOp classifies a call's effect on the lock model.
type LockOp int

const (
	LockNone LockOp = iota
	LockAcquire
	LockRelease
	LockTransient
)

// ClassifyLockOp maps a call expression to a lock operation and the
// identity of the lock involved. owner names the enclosing function
// (local locks collapse onto a per-function node).
func ClassifyLockOp(pkg *ftvet.Package, call *ast.CallExpr, owner string) (LockOp, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return LockNone, ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return LockNone, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return LockNone, ""
	}
	path := fn.Pkg().Path()
	name := fn.Name()
	switch {
	case strings.Contains(path, "internal/pthread"):
		switch name {
		case "Lock", "RdLock", "WrLock":
			return LockAcquire, LockID(pkg, sel.X, owner)
		case "Unlock", "RdUnlock", "WrUnlock":
			return LockRelease, LockID(pkg, sel.X, owner)
		}
	case path == "sync":
		switch name {
		case "Lock", "RLock":
			return LockAcquire, LockID(pkg, sel.X, owner)
		case "Unlock", "RUnlock":
			return LockRelease, LockID(pkg, sel.X, owner)
		}
	case strings.Contains(path, "internal/shm"):
		switch name {
		case "Send", "SendBatch", "Recv", "RecvBatch", "RecvTimeout", "Reserve":
			// Reserve blocks for ring capacity exactly like the wrapper
			// sends did (the claim is FIFO behind earlier reservations), so
			// it is ordered after everything currently held. Commit/Abort
			// never block and TryReserve fails instead of waiting — none of
			// them participate in the lock graph.
			return LockTransient, LockID(pkg, sel.X, owner) + "(ring)"
		}
	}
	return LockNone, ""
}

// LockID names the lock object behind a receiver expression: a field
// selector becomes Type.field, a package-level var becomes pkg.var, and
// a local collapses onto a per-function node.
func LockID(pkg *ftvet.Package, e ast.Expr, owner string) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if t := pkg.TypeOf(e.X); t != nil {
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				obj := named.Obj()
				prefix := obj.Name()
				if obj.Pkg() != nil {
					prefix = obj.Pkg().Name() + "." + obj.Name()
				}
				return prefix + "." + e.Sel.Name
			}
		}
		return "?." + e.Sel.Name
	case *ast.Ident:
		if obj := pkg.ObjectOf(e); obj != nil {
			if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
				return obj.Pkg().Name() + "." + obj.Name()
			}
		}
		return owner + " local " + e.Name
	default:
		if t := pkg.TypeOf(e); t != nil {
			return types.TypeString(t, nil)
		}
		return fmt.Sprintf("anon@%d", int(e.Pos()))
	}
}

// FlushFlagOp is one "x.flushing = true/false" pseudo-lock operation
// extracted from an assignment.
type FlushFlagOp struct {
	ID      string
	Acquire bool
	Pos     token.Pos
}

// FlushFlagOps models "x.flushing = true/false" assignments as lock
// operations (the PR 1 flush-serialization flag held across blocking
// ring sends).
func FlushFlagOps(pkg *ftvet.Package, s *ast.AssignStmt, owner string) []FlushFlagOp {
	if s.Tok != token.ASSIGN || len(s.Lhs) != len(s.Rhs) {
		return nil
	}
	var out []FlushFlagOp
	for i, lhs := range s.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || !strings.Contains(strings.ToLower(sel.Sel.Name), "flushing") {
			continue
		}
		val, ok := ast.Unparen(s.Rhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		switch val.Name {
		case "true":
			out = append(out, FlushFlagOp{ID: LockID(pkg, lhs, owner), Acquire: true, Pos: s.Pos()})
		case "false":
			out = append(out, FlushFlagOp{ID: LockID(pkg, lhs, owner), Acquire: false, Pos: s.Pos()})
		}
	}
	return out
}
