package flow_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/flow"
	"repro/internal/analysis/ftvet"
)

// buildFixtureGraph loads the interprocedural fixture packages in
// fixture mode and builds one graph over them, shared by every test.
func buildFixtureGraph(t *testing.T) *flow.Graph {
	t.Helper()
	td, err := filepath.Abs("../testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	loader := ftvet.NewLoader(td, "")
	var pkgs []*ftvet.Package
	for _, p := range []string{
		"repro/internal/timeutil",
		"repro/internal/apps/interfix",
		"repro/internal/lockiface",
		"repro/internal/spanleak",
		"repro/internal/dethelper",
		"repro/internal/wmhelper",
	} {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return flow.Build(loader.Fset, pkgs)
}

// node finds a function node by package path suffix and name.
func node(t *testing.T, g *flow.Graph, pkgSuffix, name string) *flow.Node {
	t.Helper()
	for _, n := range g.Functions() {
		if n.Fn.Name() == name && filepath.Base(n.Pkg.Path) == pkgSuffix {
			return n
		}
	}
	t.Fatalf("no node %s.%s in graph", pkgSuffix, name)
	return nil
}

func TestTaintSummaries(t *testing.T) {
	g := buildFixtureGraph(t)

	now := node(t, g, "timeutil", "now")
	if len(now.Sum.ResultTaints) != 1 || now.Sum.ResultTaints[0].Kind != flow.TaintClock {
		t.Fatalf("timeutil.now taints = %+v, want one direct clock taint", now.Sum.ResultTaints)
	}
	if len(now.Sum.ResultTaints[0].Via) != 0 {
		t.Errorf("direct source should have an empty via chain, got %+v", now.Sum.ResultTaints[0].Via)
	}

	stamp := node(t, g, "timeutil", "Stamp")
	if len(stamp.Sum.ResultTaints) != 1 || stamp.Sum.ResultTaints[0].Kind != flow.TaintClock {
		t.Fatalf("timeutil.Stamp taints = %+v, want one clock taint through now", stamp.Sum.ResultTaints)
	}
	if via := stamp.Sum.ResultTaints[0].Via; len(via) != 1 || via[0].Name != "timeutil.now" {
		t.Errorf("Stamp taint via = %+v, want one hop through timeutil.now", via)
	}

	keys := node(t, g, "timeutil", "Keys")
	if len(keys.Sum.ResultTaints) != 1 || keys.Sum.ResultTaints[0].Kind != flow.TaintMapOrder {
		t.Errorf("timeutil.Keys taints = %+v, want one map-order taint", keys.Sum.ResultTaints)
	}
	sorted := node(t, g, "timeutil", "SortedKeys")
	if len(sorted.Sum.ResultTaints) != 0 {
		t.Errorf("timeutil.SortedKeys taints = %+v, want none (collect-then-sort)", sorted.Sum.ResultTaints)
	}
}

func TestEffectSummariesAndSCC(t *testing.T) {
	g := buildFixtureGraph(t)

	spawn := node(t, g, "dethelper", "spawnWorker")
	eff := spawn.Sum.Effect(flow.EffSpawn)
	if eff == nil {
		t.Fatal("spawnWorker summary lost the two-hop goroutine spawn")
	}
	if len(eff.Via) != 1 || eff.Via[0].Name != "state.kick" {
		t.Errorf("spawnWorker spawn via = %+v, want one hop through state.kick", eff.Via)
	}
	if spawn.Sum.Effect(flow.EffChanOp) != nil {
		t.Errorf("spawnWorker should not carry a channel effect")
	}

	forward := node(t, g, "dethelper", "forward")
	if forward.Sum.Effect(flow.EffShmCall) == nil {
		t.Error("forward summary lost the direct shm call")
	}
	bump := node(t, g, "dethelper", "bump")
	for _, k := range []flow.EffectKind{flow.EffSpawn, flow.EffChanOp, flow.EffShmCall} {
		if bump.Sum.Effect(k) != nil {
			t.Errorf("bump has effect %v, want a clean summary", k)
		}
	}

	// Effects inside an escaping function literal stay with the literal.
	deferred := node(t, g, "dethelper", "deferred")
	if deferred.Sum.Effect(flow.EffChanOp) != nil {
		t.Error("deferred's closure-only channel send leaked into its own summary")
	}

	// Mutual recursion converges with the effect visible on both, and
	// the two functions share a strongly connected component.
	ping, pong := node(t, g, "dethelper", "ping"), node(t, g, "dethelper", "pong")
	if ping.SCC != pong.SCC {
		t.Errorf("ping (SCC %d) and pong (SCC %d) should share a component", ping.SCC, pong.SCC)
	}
	if ping.Sum.Effect(flow.EffChanOp) == nil || pong.Sum.Effect(flow.EffChanOp) == nil {
		t.Error("recursive fixpoint lost the channel effect in the ping/pong cycle")
	}
	// Bottom-up ordering: a pure callee's component precedes its caller's.
	kick := node(t, g, "dethelper", "kick")
	if kick.SCC >= spawn.SCC {
		t.Errorf("callee kick (SCC %d) must be summarized before caller spawnWorker (SCC %d)", kick.SCC, spawn.SCC)
	}
}

func TestLockSummariesAndDispatch(t *testing.T) {
	g := buildFixtureGraph(t)

	forward := node(t, g, "lockiface", "forward")
	for _, id := range []string{"lockiface.D.a", "lockiface.D.b"} {
		if _, ok := forward.Sum.Locks[id]; !ok {
			t.Errorf("forward transitive lock set %v missing %q", forward.Sum.Locks, id)
		}
	}

	// reverse only reaches D.a through the interface: the lock set must
	// cross the dynamic edge, and the edge itself must be marked Dynamic.
	reverse := node(t, g, "lockiface", "reverse")
	if _, ok := reverse.Sum.Locks["lockiface.D.a"]; !ok {
		t.Errorf("reverse lock set %v missing the dispatch-acquired lockiface.D.a", reverse.Sum.Locks)
	}
	foundDynamic := false
	for _, e := range reverse.Out {
		if e.Dynamic && e.Callee.Fn.Name() == "park" {
			foundDynamic = true
			if len(g.CalleesAt(e.Site)) != 1 {
				t.Errorf("park dispatch resolved to %d candidates, want exactly aParker", len(g.CalleesAt(e.Site)))
			}
		}
	}
	if !foundDynamic {
		t.Error("no dynamic edge from reverse to aParker.park: dispatch resolution is broken")
	}
}

func TestSpanSummaries(t *testing.T) {
	g := buildFixtureGraph(t)
	for _, tc := range []struct {
		fn   string
		disp flow.SpanDisp
	}{
		{"fill", flow.SpanLeaks},
		{"commitAll", flow.SpanSettles},
		{"use", flow.SpanPassThrough},
	} {
		n := node(t, g, "spanleak", tc.fn)
		info, ok := n.Sum.SpanParams[0]
		if !ok {
			t.Errorf("%s has no span-parameter summary", tc.fn)
			continue
		}
		if info.Disp != tc.disp {
			t.Errorf("%s span disposition = %v, want %v", tc.fn, info.Disp, tc.disp)
		}
		if tc.disp == flow.SpanLeaks && !info.LeakPos.IsValid() {
			t.Errorf("%s leaks but has no leak position for the trace", tc.fn)
		}
	}
}

func TestArmSummariesAndCallerCounts(t *testing.T) {
	g := buildFixtureGraph(t)

	arm := node(t, g, "wmhelper", "arm")
	if !arm.Sum.ArmsUnflushed() {
		t.Fatal("wmhelper.arm should summarize as arming without an internal flush")
	}
	if got := g.CallerCount(arm); got != 3 {
		t.Errorf("CallerCount(arm) = %d, want 3 (callerBad, callerGood, deepArm)", got)
	}

	bad := node(t, g, "wmhelper", "callerBad")
	if len(bad.Sum.ArmSites) != 1 || bad.Sum.ArmSites[0].Dominated || bad.Sum.ArmSites[0].Callee == nil {
		t.Errorf("callerBad arm sites = %+v, want one undominated propagated site", bad.Sum.ArmSites)
	}
	good := node(t, g, "wmhelper", "callerGood")
	if len(good.Sum.ArmSites) != 1 || !good.Sum.ArmSites[0].Dominated {
		t.Errorf("callerGood arm sites = %+v, want one flush-dominated site", good.Sum.ArmSites)
	}
	// The dominated caller no longer arms from its own callers' view.
	if good.Sum.ArmsUnflushed() {
		t.Error("callerGood flushes before the call; it must not export an unflushed arm")
	}
}
