package flow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/ftvet"
)

// TaintKind classifies a nondeterminism source.
type TaintKind uint8

const (
	TaintClock    TaintKind = iota // wall-clock read (time.Now / time.Since)
	TaintPid                       // process identity (os.Getpid)
	TaintRand                      // package-level math/rand draw
	TaintMapOrder                  // map-iteration order
)

func (k TaintKind) String() string {
	switch k {
	case TaintClock:
		return "wall-clock"
	case TaintPid:
		return "pid"
	case TaintRand:
		return "rand"
	case TaintMapOrder:
		return "map-order"
	}
	return "unknown"
}

// Taint records that a value may carry nondeterminism: Source/Desc name
// the ultimate source expression, Via the call chain from the function
// whose summary holds the taint down to the source (outermost call
// first, empty for an in-body source).
type Taint struct {
	Kind   TaintKind
	Source token.Pos
	Desc   string
	Via    []Hop
}

// maxTaints bounds a summary's taint list; beyond it additional sources
// add no new signal (the function is thoroughly nondeterministic).
const maxTaints = 16

// TaintEnv is the per-function variable-taint state after one walk of
// the body: which local objects may carry which taints. nondet uses it
// to check whether a tainted value reaches an ordered sink.
type TaintEnv struct {
	g    *Graph
	n    *Node
	vars map[types.Object][]Taint

	resultTaints []Taint
	resultParams []bool
	paramIndex   map[types.Object]int
}

// taintScan computes the function's result-taint summary entries.
func (g *Graph) taintScan(n *Node) ([]Taint, []bool) {
	env := g.FuncEnv(n)
	return env.resultTaints, env.resultParams
}

// FuncEnv walks the function body once in source order, propagating
// taint through assignments, and returns the resulting environment.
// The walk is flow-approximate: assignments only add taint (no strong
// updates), except that passing a variable to sort.*/slices.* clears
// its map-order taint — the collect-then-sort idiom re-establishes a
// deterministic order.
func (g *Graph) FuncEnv(n *Node) *TaintEnv {
	env := &TaintEnv{
		g:          g,
		n:          n,
		vars:       map[types.Object][]Taint{},
		paramIndex: map[types.Object]int{},
	}
	pkg := n.Pkg
	idx := 0
	if n.Decl.Type.Params != nil {
		for _, field := range n.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					env.paramIndex[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	env.resultParams = make([]bool, idx)

	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// A closure's assignments and returns are its own; its
			// returns in particular must not count as this function's
			// results.
			return false
		case *ast.AssignStmt:
			env.assign(x.Lhs, x.Rhs)
		case *ast.ValueSpec:
			lhs := make([]ast.Expr, len(x.Names))
			for i, name := range x.Names {
				lhs[i] = name
			}
			env.assign(lhs, x.Values)
		case *ast.RangeStmt:
			env.rangeStmt(x)
		case *ast.CallExpr:
			env.sortClear(x)
		case *ast.ReturnStmt:
			env.returnStmt(x)
		}
		return true
	})
	env.resultTaints = dedupTaints(env.resultTaints)
	return env
}

// ExprTaints returns every taint syntactically reachable in e: direct
// denylist sources, tainted variables, and calls to functions whose
// summaries carry result taints. Function literals are opaque (they run
// later, if at all).
func (env *TaintEnv) ExprTaints(e ast.Expr) []Taint {
	if e == nil {
		return nil
	}
	var out []Taint
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := env.n.Pkg.ObjectOf(x); obj != nil {
				out = append(out, env.vars[obj]...)
			}
		case *ast.SelectorExpr:
			if t := qualifiedTaint(env.n.Pkg, x); t != nil {
				out = append(out, *t)
				return false
			}
		case *ast.CallExpr:
			out = append(out, env.CallTaints(x)...)
		}
		return true
	})
	return dedupTaints(out)
}

// CallTaints returns the taints a call's results may carry according to
// the (static) callee's summary, with the call site prepended to each
// trace. Dynamic dispatch contributes nothing: attributing one
// implementation's taint to every caller of the interface would flag
// code that never executes the tainted method.
func (env *TaintEnv) CallTaints(call *ast.CallExpr) []Taint {
	fn := env.n.Pkg.CalleeFunc(call)
	if fn == nil {
		return nil
	}
	cn := env.g.NodeOf(fn)
	if cn == nil || cn.Sum == nil {
		return nil
	}
	out := make([]Taint, 0, len(cn.Sum.ResultTaints))
	for _, t := range cn.Sum.ResultTaints {
		out = append(out, Taint{
			Kind:   t.Kind,
			Source: t.Source,
			Desc:   t.Desc,
			Via:    prependHop(shortName(fn), call.Pos(), t.Via),
		})
	}
	return out
}

// VarTaints returns the accumulated taints of a variable object.
func (env *TaintEnv) VarTaints(obj types.Object) []Taint { return env.vars[obj] }

func (env *TaintEnv) assign(lhs, rhs []ast.Expr) {
	if len(rhs) == 0 {
		return
	}
	for i, l := range lhs {
		r := rhs[0]
		if len(rhs) == len(lhs) {
			r = rhs[i]
		}
		taints := env.ExprTaints(r)
		if len(taints) == 0 {
			continue
		}
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := env.n.Pkg.ObjectOf(id); obj != nil {
			env.vars[obj] = dedupTaints(append(env.vars[obj], taints...))
		}
	}
}

// rangeStmt taints the loop variables of a map range with map-order.
func (env *TaintEnv) rangeStmt(rs *ast.RangeStmt) {
	t := env.n.Pkg.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	taint := Taint{Kind: TaintMapOrder, Source: rs.For, Desc: "map range"}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := env.n.Pkg.ObjectOf(id); obj != nil {
			env.vars[obj] = dedupTaints(append(env.vars[obj], taint))
		}
	}
}

// sortClear drops map-order taint from variables passed to sort.* or
// slices.* — after the sort, iteration-order nondeterminism is gone.
func (env *TaintEnv) sortClear(call *ast.CallExpr) {
	fn := env.n.Pkg.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
		return
	}
	for _, a := range call.Args {
		id, ok := ast.Unparen(a).(*ast.Ident)
		if !ok {
			continue
		}
		obj := env.n.Pkg.ObjectOf(id)
		if obj == nil {
			continue
		}
		kept := env.vars[obj][:0]
		for _, t := range env.vars[obj] {
			if t.Kind != TaintMapOrder {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			delete(env.vars, obj)
		} else {
			env.vars[obj] = kept
		}
	}
}

func (env *TaintEnv) returnStmt(ret *ast.ReturnStmt) {
	for _, e := range ret.Results {
		env.resultTaints = append(env.resultTaints, env.ExprTaints(e)...)
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := env.n.Pkg.ObjectOf(id); obj != nil {
				if i, ok := env.paramIndex[obj]; ok {
					env.resultParams[i] = true
				}
			}
		}
	}
}

// qualifiedTaint recognizes the denylist sources as qualified
// identifiers: time.Now/Since, os.Getpid, and package-level math/rand
// names. rand.New* is excluded — constructing a seeded source is exactly
// the sanctioned pattern (sim hands out deterministic *rand.Rand
// values); only the process-seeded package-level draws diverge.
func qualifiedTaint(pkg *ftvet.Package, sel *ast.SelectorExpr) *Taint {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, isPkg := pkg.ObjectOf(id).(*types.PkgName); !isPkg {
		return nil
	}
	obj := pkg.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	switch obj.Pkg().Path() {
	case "time":
		switch obj.Name() {
		case "Now", "Since":
			return &Taint{Kind: TaintClock, Source: sel.Pos(), Desc: "time." + obj.Name()}
		}
	case "os":
		if obj.Name() == "Getpid" {
			return &Taint{Kind: TaintPid, Source: sel.Pos(), Desc: "os.Getpid"}
		}
	case "math/rand", "math/rand/v2":
		if !strings.HasPrefix(obj.Name(), "New") {
			return &Taint{Kind: TaintRand, Source: sel.Pos(), Desc: "rand." + obj.Name()}
		}
	}
	return nil
}

// dedupTaints sorts and uniques a taint list by (kind, source), keeping
// the first (shortest-trace, since callers prepend) entry, and caps it.
func dedupTaints(ts []Taint) []Taint {
	if len(ts) == 0 {
		return nil
	}
	sort.SliceStable(ts, func(i, j int) bool {
		if ts[i].Kind != ts[j].Kind {
			return ts[i].Kind < ts[j].Kind
		}
		return ts[i].Source < ts[j].Source
	})
	out := ts[:0]
	for _, t := range ts {
		if len(out) > 0 && out[len(out)-1].Kind == t.Kind && out[len(out)-1].Source == t.Source {
			continue
		}
		out = append(out, t)
	}
	if len(out) > maxTaints {
		out = out[:maxTaints]
	}
	return out
}
