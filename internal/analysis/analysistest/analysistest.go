// Package analysistest runs ftvet analyzers over golden fixture packages
// under a testdata/src tree, mirroring the x/tools package of the same
// name: fixture lines carry trailing
//
//	// want "regexp"
//
// comments (several per line allowed), and the test fails on any
// diagnostic without a matching want, or any want without a matching
// diagnostic. The //ftvet:allow escape hatch is honored, so fixtures can
// assert suppression behavior too.
//
// Fixture packages live under <testdata>/src/<importpath>/ and are
// loaded in fixture mode: the import path maps verbatim onto the
// directory, so a fixture can declare itself "repro/internal/apps/x"
// (making it a replicated package in nondet's eyes) and import stub
// packages like "repro/internal/pthread" defined alongside it. The go
// tool never builds testdata trees, so deliberately broken fixtures
// cannot break `go build ./...`.
package analysistest

import (
	"go/token"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis/ftvet"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run loads each fixture package and applies the analyzer, comparing
// diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *ftvet.Analyzer, paths ...string) {
	t.Helper()
	loader := ftvet.NewLoader(testdata+"/src", "")
	var pkgs []*ftvet.Package
	for _, p := range paths {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading fixture %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := ftvet.Run(loader.Fset, pkgs, []*ftvet.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	check(t, loader.Fset, pkgs, diags)
}

type wantKey struct {
	file string
	line int
}

// check matches diagnostics against want comments by file:line.
func check(t *testing.T, fset *token.FileSet, pkgs []*ftvet.Package, diags []ftvet.Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					res, err := parseWants(m[1])
					if err != "" {
						t.Errorf("%s:%d: %s", pos.Filename, pos.Line, err)
						continue
					}
					k := wantKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], res...)
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := wantKey{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				wants[k][i] = nil // each want matches one diagnostic
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s [%s]", pos.Filename, pos.Line, d.Message, d.Analyzer)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			if re != nil {
				t.Errorf("%s:%d: no diagnostic matching %q", k.file, k.line, re)
			}
		}
	}
}

// parseWants parses the space-separated quoted regexps of a want
// comment: `// want "a" "b"`.
func parseWants(s string) ([]*regexp.Regexp, string) {
	var out []*regexp.Regexp
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' {
			return nil, "malformed want comment: expected quoted regexp, got " + s
		}
		end := strings.Index(s[1:], `"`)
		if end < 0 {
			return nil, "malformed want comment: unterminated quote"
		}
		re, err := regexp.Compile(s[1 : 1+end])
		if err != nil {
			return nil, "bad want regexp: " + err.Error()
		}
		out = append(out, re)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, "empty want comment"
	}
	return out, ""
}
