package nondet_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nondet"
)

func TestNondet(t *testing.T) {
	td, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, td, nondet.Analyzer,
		"repro/internal/apps/nondetfix", // positive: replicated package
		"repro/internal/notrep",         // negative: outside the replicated set
		"repro/internal/obstrace",       // positive: wall clock smuggled into obs attributes
		"repro/internal/causalfix",      // positive: wall clock smuggled into a causal diagnosis
		"repro/internal/timeutil",       // helper package: sources legal here, summaries feed interfix
		"repro/internal/apps/interfix",  // positive: interprocedural taint through timeutil helpers
	)
}

func TestReplicated(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/apps/pbzip2":    true,
		"repro/internal/apps/memcached": true,
		"repro/internal/pthread":        true,
		"repro/internal/tcprep":         true,
		"repro/internal/bench":          false,
		"repro/internal/sim":            false,
		"repro/internal/pthreadx":       false, // prefix must match a whole path element
	} {
		if got := nondet.Replicated(path); got != want {
			t.Errorf("Replicated(%q) = %v, want %v", path, got, want)
		}
	}
}
