// Package nondet flags raw nondeterminism sources in replicated code.
//
// The record/replay protocol only works if every nondeterministic input
// the application observes flows through the replication layer: clock
// reads are replicated as gettimeofday tuples precisely so both replicas
// agree on time (§3.3), thread identity is the replicated ft_pid, and
// random draws must come from the simulation's seeded source. A direct
// time.Now(), os.Getpid(), or math/rand call in replicated code gives
// the primary and the secondary different values — a silent divergence
// that surfaces only as a replay mismatch long after the fact.
//
// nondet applies to the replicated packages (internal/apps/...,
// internal/pthread, internal/tcprep) and flags:
//
//   - time.Now / time.Since — use the replicated clock
//     (*replication.Thread).Now or the kernel clock (*kernel.Kernel).Now
//   - os.Getpid — use the replicated thread identity
//     (*replication.Thread).FTPid
//   - any package-level use of math/rand — use the simulation's seeded
//     deterministic source (sim.Simulation.Rand); method calls on a
//     *rand.Rand obtained from the simulation are sanctioned
//   - map-range iteration whose loop variables escape into ordered
//     output (append, channel send, string concatenation, or a
//     send/write/emit-like call, including the zero-copy fabric's
//     Span.Put/Commit/Reserve): Go randomizes map iteration order per
//     process, so replicas emit different sequences. Iterate a sorted
//     key slice instead. Commutative aggregation (numeric +=, map
//     writes, len) is not flagged, and neither is the collect-then-sort
//     idiom — appending into a slice that is sorted (sort.* /
//     slices.Sort*) later in the same function.
//
// The repro/internal/obs API is a sanctioned sink: its events are local
// observability, never part of the replicated log, so an Emit inside
// replicated code is not an ordered-output escape. The API carries its
// own, stricter determinism contract instead — trace attributes must be
// derived from simulation state so same-seed traces are byte-identical —
// and nondet enforces that side in EVERY package (replicated or not): a
// time.Now or time.Since smuggled into the arguments of an obs call is
// diagnosed as a trace-determinism violation.
package nondet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis/flow"
	"repro/internal/analysis/ftvet"
)

// replicatedPrefixes lists the package paths ftvet treats as replicated
// application code. Entries ending in "/" match a whole subtree.
var replicatedPrefixes = []string{
	"repro/internal/apps/",
	"repro/internal/pthread",
	"repro/internal/tcprep",
}

// orderedSink matches call names that serialize their arguments into an
// ordered stream visible to the other replica. Put, commit and reserve
// cover the zero-copy fabric idiom: a Span.Put writes the payload in
// place at its reserved ring position, so its argument order is exactly
// the publication order the other replica replays.
var orderedSink = regexp.MustCompile(`(?i)^(send|write|emit|record|print|printf|println|log|sync|push|put|append|enqueue|trysync|fprintf|commit|reserve)`)

// obsPath is the observability package. Its calls are a sanctioned sink
// (events are local, not replicated state), but their arguments must be
// deterministic — they travel into traces compared byte-for-byte across
// same-seed runs. causalPath is the causality/diagnosis layer built on
// top of it: same sanction, same argument rule (diagnosis annotations
// land in golden-pinned reports).
const (
	obsPath    = "repro/internal/obs"
	causalPath = "repro/internal/obs/causal"
)

// sanctionedObs reports whether a package path is one of the
// observability sinks whose calls are exempt from the ordered-sink rule
// but whose arguments checkObsAttrs still vets.
func sanctionedObs(path string) bool {
	return path == obsPath || path == causalPath
}

// Analyzer is the nondet pass.
var Analyzer = &ftvet.Analyzer{
	Name: "nondet",
	Doc: "flag raw nondeterminism (time.Now, time.Since, os.Getpid, math/rand, " +
		"order-escaping map ranges) in replicated packages; replicated code must " +
		"use the sanctioned wrappers so both replicas observe identical values (§3.3)",
	Run: run,
}

// Replicated reports whether a package path is subject to the nondet
// invariant.
func Replicated(path string) bool {
	for _, p := range replicatedPrefixes {
		if strings.HasSuffix(p, "/") {
			if strings.HasPrefix(path, p) {
				return true
			}
		} else if path == p {
			return true
		}
	}
	return false
}

func run(pass *ftvet.Pass) error {
	pkg := pass.Pkg
	replicated := Replicated(pkg.Path)
	if sanctionedObs(pkg.Path) {
		return nil // the sinks themselves; their determinism is covered by their tests
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if replicated {
					checkQualified(pass, pkg, n)
				}
			case *ast.CallExpr:
				// In replicated packages checkQualified already flags every
				// time.Now/Since; the obs-argument check covers the rest of
				// the tree, where wall-clock reads are otherwise legal.
				if !replicated {
					checkObsAttrs(pass, pkg, n)
				}
			}
			return true
		})
		if !replicated {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if rs, ok := n.(*ast.RangeStmt); ok {
					checkMapRange(pass, pkg, rs, fd.Body)
				}
				return true
			})
			checkCallChains(pass, pkg, fd)
		}
	}
	return nil
}

// checkCallChains is the interprocedural layer: nondeterminism that
// enters a replicated function through a helper defined elsewhere. Two
// shapes, both invisible to the syntactic checks above:
//
//   - a call to a function (outside the replicated packages, where the
//     source itself is legal) whose results carry a wall-clock, pid, or
//     rand taint — observing the value is the divergence, so the call
//     site is reported with the full chain to the source;
//   - a value carrying map-order taint from a helper's map range,
//     escaping into an ordered sink here (channel send, string
//     concatenation, or a send/write/emit-like call) — the intra rule
//     only sees ranges in the same function.
//
// Sources inside replicated packages are not re-reported through calls:
// checkQualified already flags them where they occur.
func checkCallChains(pass *ftvet.Pass, pkg *ftvet.Package, fd *ast.FuncDecl) {
	g := flow.Of(pass)
	node := g.NodeOf(funcObj(pkg, fd))
	if node == nil {
		return
	}
	env := g.FuncEnv(node)

	reportTaint := func(pos token.Pos, t flow.Taint, what string) {
		var msg string
		switch t.Kind {
		case flow.TaintClock:
			msg = fmt.Sprintf("%s carries a wall-clock value (%s) into replicated code and diverges across replicas; use the replicated gettimeofday (*replication.Thread).Now or the kernel clock (*kernel.Kernel).Now (§3.3)", what, t.Path())
		case flow.TaintPid:
			msg = fmt.Sprintf("%s carries the raw process id (%s) into replicated code; use the replicated thread identity (*replication.Thread).FTPid", what, t.Path())
		case flow.TaintRand:
			msg = fmt.Sprintf("%s carries a package-level math/rand draw (%s) into replicated code, seeded per process; use the simulation's deterministic source (sim.Simulation.Rand)", what, t.Path())
		default:
			return
		}
		pass.ReportTrace(pos, msg, t.Trace())
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			fn := pkg.CalleeFunc(n)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			// Direct observation of a tainted result. Callees in
			// replicated packages are skipped: checkQualified already
			// flags the source where it occurs.
			if !Replicated(fn.Pkg().Path()) {
				for _, t := range env.CallTaints(n) {
					if t.Kind != flow.TaintMapOrder {
						reportTaint(n.Pos(), t, "call to "+fn.Name())
					}
				}
			}
			// Map-order taint reaching an ordered sink as an argument.
			name := calleeName(n)
			if name == "" || name == "append" || !orderedSink.MatchString(name) {
				return true
			}
			if sanctionedObs(fn.Pkg().Path()) {
				return true
			}
			for _, a := range n.Args {
				for _, t := range env.ExprTaints(a) {
					if t.Kind == flow.TaintMapOrder && len(t.Via) > 0 {
						pass.ReportTrace(n.Pos(),
							fmt.Sprintf("map iteration order from a helper (%s) escapes into replicated output via %s and diverges across replicas (Go randomizes map order per process); sort before emitting", t.Path(), name),
							t.Trace())
						return true
					}
				}
			}
		case *ast.SendStmt:
			for _, t := range env.ExprTaints(n.Value) {
				if t.Kind == flow.TaintMapOrder && len(t.Via) > 0 {
					pass.ReportTrace(n.Pos(),
						fmt.Sprintf("map iteration order from a helper (%s) escapes into replicated output via a channel send and diverges across replicas (Go randomizes map order per process); sort before emitting", t.Path()),
						t.Trace())
					return true
				}
			}
		}
		return true
	})
}

// funcObj returns the types.Func for a declaration.
func funcObj(pkg *ftvet.Package, fd *ast.FuncDecl) *types.Func {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	return fn
}

// checkObsAttrs diagnoses wall-clock values smuggled into the arguments
// of an obs call: trace attributes must derive from simulation state so
// same-seed traces stay byte-identical. Applied outside the replicated
// packages (inside them, checkQualified flags the same calls anywhere).
func checkObsAttrs(pass *ftvet.Pass, pkg *ftvet.Package, call *ast.CallExpr) {
	fn := pkg.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil || !sanctionedObs(fn.Pkg().Path()) {
		return
	}
	for _, a := range call.Args {
		ast.Inspect(a, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if _, isPkg := pkg.ObjectOf(id).(*types.PkgName); !isPkg {
				return true
			}
			obj := pkg.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			switch obj.Name() {
			case "Now", "Since":
				pass.Report(sel.Pos(), "time."+obj.Name()+" in an obs trace attribute: wall-clock values differ per run and break byte-reproducible traces; derive attributes from the virtual clock (sim.Simulation.Now)")
			}
			return true
		})
	}
}

// checkQualified flags pkgname.Ident references into the denied standard
// library surface. Only qualified identifiers are considered, so a
// method call on a *rand.Rand value handed out by the simulation is not
// flagged — that source is seeded identically on both replicas.
func checkQualified(pass *ftvet.Pass, pkg *ftvet.Package, sel *ast.SelectorExpr) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if _, isPkg := pkg.ObjectOf(id).(*types.PkgName); !isPkg {
		return
	}
	obj := pkg.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "time":
		switch obj.Name() {
		case "Now":
			pass.Report(sel.Pos(), "time.Now in replicated code reads the local clock and diverges across replicas; use the replicated gettimeofday (*replication.Thread).Now or the kernel clock (*kernel.Kernel).Now (§3.3)")
		case "Since":
			pass.Report(sel.Pos(), "time.Since reads the local clock and diverges across replicas; compute deltas from the replicated clock (*replication.Thread).Now (§3.3)")
		}
	case "os":
		if obj.Name() == "Getpid" {
			pass.Report(sel.Pos(), "os.Getpid is not replicated and differs across replicas; use the replicated thread identity (*replication.Thread).FTPid")
		}
	case "math/rand", "math/rand/v2":
		pass.Report(sel.Pos(), "package-level math/rand draws are seeded per process and diverge across replicas; use the simulation's deterministic source (sim.Simulation.Rand)")
	}
}

// checkMapRange flags map iteration whose loop variables flow into an
// ordered sink, making the (randomized) iteration order observable.
// body is the enclosing function body, used to recognize the
// collect-then-sort idiom.
func checkMapRange(pass *ftvet.Pass, pkg *ftvet.Package, rs *ast.RangeStmt, body *ast.BlockStmt) {
	t := pkg.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pkg.Info.Defs[id]; obj != nil {
				loopVars[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				loopVars[obj] = true // range assigns to an existing variable
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	derived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[pkg.Info.Uses[id]] {
				found = true
			}
			return !found
		})
		return found
	}
	report := func(sink string) {
		pass.Reportf(rs.For, "map iteration order escapes into replicated output via %s and diverges across replicas (Go randomizes map order per process); iterate a sorted key slice instead", sink)
	}
	flagged := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if flagged {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if derived(n.Value) {
				report("a channel send")
				flagged = true
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Rhs) == 1 && derived(n.Rhs[0]) {
				if lt := pkg.TypeOf(n.Lhs[0]); lt != nil {
					if b, ok := lt.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						report("string concatenation")
						flagged = true
					}
				}
			}
		case *ast.CallExpr:
			name := calleeName(n)
			if name == "" {
				return true
			}
			argDerived := false
			for _, a := range n.Args {
				if derived(a) {
					argDerived = true
					break
				}
			}
			if !argDerived {
				return true
			}
			if name == "append" {
				if sortedAfter(pkg, body, rs, n.Args[0]) {
					return true // collect-then-sort: order is re-established
				}
				report("append")
				flagged = true
			} else if fn := pkg.CalleeFunc(n); fn != nil && orderedSink.MatchString(name) {
				if fn.Pkg() != nil && sanctionedObs(fn.Pkg().Path()) {
					return true // sanctioned sink: obs events are not replicated state
				}
				report(name)
				flagged = true
			}
		}
		return !flagged
	})
}

// sortedAfter reports whether the slice collected by an in-loop append
// is passed to a sort.* or slices.* call after the range statement in
// the same function — the deterministic collect-then-sort idiom.
func sortedAfter(pkg *ftvet.Package, body *ast.BlockStmt, rs *ast.RangeStmt, slice ast.Expr) bool {
	id, ok := ast.Unparen(slice).(*ast.Ident)
	if !ok {
		return false
	}
	target := pkg.ObjectOf(id)
	if target == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := pkg.CalleeFunc(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, a := range call.Args {
			if aid, ok := ast.Unparen(a).(*ast.Ident); ok && pkg.ObjectOf(aid) == target {
				sorted = true
				return false
			}
		}
		return true
	})
	return sorted
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
