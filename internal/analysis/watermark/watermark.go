// Package watermark enforces the force-flush-before-output-commit rule.
//
// Output commit (§3.5) holds externally visible output until every live
// backup has received the log describing it. PR 1 made the log *buffered*
// (tuple and sync-delta batching), which created a subtle failure mode:
// if a path arms an output-commit waiter — registering a watermark to be
// released when the ack arrives — while tuples that the watermark covers
// are still sitting in a batch buffer, nothing pushes them out, and the
// output waits out a FlushInterval (or worse, forever if the flusher is
// quiescent). The fix, applied by hand in PR 1, is an invariant: every
// path that arms a watermark waiter must first force-flush the buffers
// (Recorder.flushForCommit, Primary.flushForCommit/flushSync).
//
// watermark enforces that invariant statically over the whole module,
// consuming the flow arm-site summaries: an arm site is an append to a
// slice of armable waiter structs (a struct with a field named
// "watermark" AND a func-typed release callback, the shape of
// replication.stableWaiter and tcprep.syncWaiter) or — the per-object
// sequencing idiom of DESIGN.md §13 — a map-index store of one into a
// grant table. Watermark-carrying structs WITHOUT a callback are plain
// receipt data — the N-way recorder's per-replica watermark vector
// (replication.ReplicaWatermark) — and are exempt, as is the
// observability layer. Dominance is structural: a force-flush earlier
// in the same or an enclosing block.
// The summaries add two interprocedural halves the old per-package pass
// could not see:
//
//   - a flush inside a called helper counts: a statement calling a
//     function whose summary (transitively) flushes dominates what
//     follows it;
//   - an arm inside a called helper counts: a function whose summary
//     arms without an internal dominating flush turns every call to it
//     into an arm site, checked for dominance at the caller — and
//     reported there with the call chain to the arming statement. A
//     function with in-tree callers is judged at those call sites, not
//     at its own body: the helper itself is fine precisely when every
//     caller flushes first.
package watermark

import (
	"fmt"
	"strings"

	"repro/internal/analysis/flow"
	"repro/internal/analysis/ftvet"
)

// Analyzer is the watermark pass. Module: arm-site responsibility moves
// across package boundaries (a tcprep path arming through a replication
// helper).
var Analyzer = &ftvet.Analyzer{
	Name: "watermark",
	Doc: "require a dominating force-flush before arming an output-commit watermark " +
		"waiter, so batched log tuples can never stall output release (§3.5; the " +
		"flush-before-watermark invariant established in PR 1), and require every " +
		"retained-log truncation to sit behind a verified epoch-boundary guard " +
		"(DESIGN.md §18)",
	Module: true,
	Run:    run,
}

func run(pass *ftvet.Pass) error {
	g := flow.Of(pass)
	for _, node := range g.Functions() {
		if node.Sum == nil {
			continue
		}
		for _, a := range node.Sum.ArmSites {
			if a.Dominated {
				continue
			}
			switch {
			case a.Callee != nil:
				// Propagated: this call reaches an arm in a helper that
				// does not flush internally, and nothing flushed before
				// the call here.
				pass.ReportTrace(a.Pos, fmt.Sprintf(
					"call to %s arms an output-commit waiter (%s) without a dominating force-flush here or inside it: tuples buffered by batching could stall (or deadlock) output release; call the force-flush (flushForCommit/flushSync) before this call (§3.5)",
					a.Callee.Name(), armPath(a)), a.Trace())
			case a.InLit:
				// Inside a function literal: it runs later, when no
				// caller's flush helps — always the literal's problem.
				report(pass, a)
			case g.CallerCount(node) == 0:
				// Direct arm in a function nobody in the tree calls (an
				// entry point, or dispatch-only): judged on its own body.
				report(pass, a)
			default:
				// Direct undominated arm in a function with in-tree
				// callers: the callers are judged instead (the
				// propagated case above fires wherever one fails to
				// flush first).
			}
		}
		// Epoch-truncation rule (DESIGN.md §18): a retained-history
		// prefix drop must sit behind a verified-boundary guard —
		// truncating an unverified prefix discards the only local copy
		// of the catch-up state a promotion or rejoin may still need.
		for _, ts := range node.Sum.TruncSites {
			if ts.Sanctioned {
				continue
			}
			pass.Report(ts.Pos,
				"retained-log truncation without a verified-boundary guard: dropping history below an unverified epoch discards the only local copy of catch-up state a promotion or rejoin may need; clamp to the quorum-verified watermark first (DESIGN.md §18)")
		}
	}
	return nil
}

// report emits the classic intraprocedural messages (shared with the
// fixture expectations of the per-package era).
func report(pass *ftvet.Pass, a flow.ArmSite) {
	if a.Table {
		pass.Report(a.Pos,
			"per-object output-commit waiter armed without a dominating force-flush: a grant-table entry gated on Seq_obj can sleep across buffered tuples of its shard; call the force-flush (flushForCommit/flushSync) first so the watermark covers only in-flight data (§3.5, DESIGN.md §13)")
		return
	}
	pass.Report(a.Pos,
		"output-commit waiter armed without a dominating force-flush: tuples buffered by batching could stall (or deadlock) output release; call the force-flush (flushForCommit/flushSync) first so the watermark covers only in-flight data (§3.5)")
}

// armPath renders the call chain of a propagated arm site.
func armPath(a flow.ArmSite) string {
	names := make([]string, 0, len(a.Via)+1)
	for _, h := range a.Via {
		names = append(names, h.Name)
	}
	names = append(names, "arm site")
	return strings.Join(names, " -> ")
}
