// Package watermark enforces the force-flush-before-output-commit rule.
//
// Output commit (§3.5) holds externally visible output until every live
// backup has received the log describing it. PR 1 made the log *buffered*
// (tuple and sync-delta batching), which created a subtle failure mode:
// if a path arms an output-commit waiter — registering a watermark to be
// released when the ack arrives — while tuples that the watermark covers
// are still sitting in a batch buffer, nothing pushes them out, and the
// output waits out a FlushInterval (or worse, forever if the flusher is
// quiescent). The fix, applied by hand in PR 1, is an invariant: every
// path that arms a watermark waiter must first force-flush the buffers
// (Recorder.flushForCommit, Primary.flushForCommit/flushSync).
//
// watermark enforces that invariant statically: in any function that
// appends to a slice of watermark-carrying structs (a struct with a
// field named "watermark", the shape of replication.stableWaiter and
// tcprep.syncWaiter), the append must be dominated by a call to a
// flush-family function (a callee whose name contains "flush", case-
// insensitive). Dominance is approximated structurally: the flush call
// must appear earlier in the same or an enclosing statement block, so a
// flush inside one if-arm does not satisfy an arm-site on another path.
// Early returns before the flush are fine — those paths never arm.
//
// Per-object sequencing (DESIGN.md §13) added a second arming idiom the
// slice rule cannot see: a grant table keyed by object id, where the
// waiter is armed by map-index assignment (`table[obj] = waiter{...}`)
// against that object's Seq_obj cursor instead of being appended to one
// global queue. The waiter struct shape is the same — a watermark field
// names the release cursor — so the analyzer treats a map-index store of
// a watermark-carrying struct (or pointer to one) exactly like an
// append: it must be dominated by a force-flush, or tuples of that
// object's shard could sit buffered while the waiter sleeps.
package watermark

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/ftvet"
)

// Analyzer is the watermark pass.
var Analyzer = &ftvet.Analyzer{
	Name: "watermark",
	Doc: "require a dominating force-flush before arming an output-commit watermark " +
		"waiter, so batched log tuples can never stall output release (§3.5; the " +
		"flush-before-watermark invariant established in PR 1)",
	Run: run,
}

func run(pass *ftvet.Pass) error {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			scanBlock(pass, pkg, fd.Body.List, false)
		}
	}
	return nil
}

// scanBlock walks one statement list in order. flushSeen reports whether
// a flush-family call dominates the current point (it was seen earlier
// in this block or an enclosing one). Nested control-flow arms inherit
// the current value but do not export theirs: a flush inside an if-arm
// only dominates statements within that arm.
func scanBlock(pass *ftvet.Pass, pkg *ftvet.Package, stmts []ast.Stmt, flushSeen bool) {
	for _, s := range stmts {
		// A flush call directly in this statement establishes dominance
		// for everything after it — but a flush buried in a nested
		// control-flow arm of s does not, so look only at calls outside
		// nested blocks.
		checkArm(pass, pkg, s, flushSeen)
		if stmtCallsFlush(pkg, s) {
			flushSeen = true
		}
		switch s := s.(type) {
		case *ast.BlockStmt:
			scanBlock(pass, pkg, s.List, flushSeen)
		case *ast.IfStmt:
			scanBlock(pass, pkg, s.Body.List, flushSeen)
			if s.Else != nil {
				scanBlock(pass, pkg, []ast.Stmt{s.Else}, flushSeen)
			}
		case *ast.ForStmt:
			scanBlock(pass, pkg, s.Body.List, flushSeen)
		case *ast.RangeStmt:
			scanBlock(pass, pkg, s.Body.List, flushSeen)
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanBlock(pass, pkg, cc.Body, flushSeen)
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanBlock(pass, pkg, cc.Body, flushSeen)
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanBlock(pass, pkg, cc.Body, flushSeen)
				}
			}
		case *ast.LabeledStmt:
			scanBlock(pass, pkg, []ast.Stmt{s.Stmt}, flushSeen)
		}
	}
}

// checkArm reports watermark-arming appends in the non-nested part of s
// when no flush dominates them. Function literals open a fresh scope
// (they run later, when the dominating flush no longer helps).
func checkArm(pass *ftvet.Pass, pkg *ftvet.Package, s ast.Stmt, flushSeen bool) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			return false // nested arms handled by scanBlock
		case *ast.FuncLit:
			scanBlock(pass, pkg, n.Body.List, false)
			return false
		case *ast.CallExpr:
			if !flushSeen && armsWatermark(pkg, n) {
				pass.Report(n.Pos(),
					"output-commit waiter armed without a dominating force-flush: tuples buffered by batching could stall (or deadlock) output release; call the force-flush (flushForCommit/flushSync) first so the watermark covers only in-flight data (§3.5)")
			}
		case *ast.AssignStmt:
			if flushSeen {
				return true
			}
			for _, lhs := range n.Lhs {
				if armsWatermarkTable(pkg, lhs) {
					pass.Report(lhs.Pos(),
						"per-object output-commit waiter armed without a dominating force-flush: a grant-table entry gated on Seq_obj can sleep across buffered tuples of its shard; call the force-flush (flushForCommit/flushSync) first so the watermark covers only in-flight data (§3.5, DESIGN.md §13)")
				}
			}
		}
		return true
	})
}

// stmtCallsFlush reports whether s directly (outside nested blocks and
// function literals) calls a flush-family function.
func stmtCallsFlush(pkg *ftvet.Package, s ast.Stmt) bool {
	found := false
	ast.Inspect(s, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.BlockStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			name := ""
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if strings.Contains(strings.ToLower(name), "flush") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// armsWatermark reports whether the call is append(q, w...) where the
// slice's element type is a struct carrying a watermark field.
func armsWatermark(pkg *ftvet.Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	t := pkg.TypeOf(call.Args[0])
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return watermarkStruct(sl.Elem())
}

// armsWatermarkTable reports whether lhs is a map-index store whose value
// type is a watermark-carrying struct — the per-object grant-table idiom
// (`table[obj] = waiter{watermark: seqObj, ...}`).
func armsWatermarkTable(pkg *ftvet.Package, lhs ast.Expr) bool {
	idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := pkg.TypeOf(idx.X)
	if t == nil {
		return false
	}
	mp, ok := t.Underlying().(*types.Map)
	if !ok {
		return false
	}
	return watermarkStruct(mp.Elem())
}

// watermarkStruct reports whether elem (a pointer indirection is looked
// through) is a struct carrying a watermark field — the output-commit
// waiter shape shared by the global queue and the per-object grant table.
func watermarkStruct(elem types.Type) bool {
	if elem == nil {
		return false
	}
	if p, ok := elem.Underlying().(*types.Pointer); ok {
		elem = p.Elem()
	}
	st, ok := elem.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if strings.EqualFold(st.Field(i).Name(), "watermark") {
			return true
		}
	}
	return false
}
