package watermark_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/watermark"
)

func TestWatermark(t *testing.T) {
	td, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, td, watermark.Analyzer,
		"repro/internal/wmfix",      // intraprocedural dominance shapes
		"repro/internal/shardrec",   // grant-table idiom
		"repro/internal/wmhelper",   // arm hidden behind a helper, judged at call sites
		"repro/internal/nwayrec",    // watermark-vector data exemption (N-way recorder)
		"repro/internal/epochtrunc", // retained-log truncation guard (DESIGN.md §18)
	)
}
