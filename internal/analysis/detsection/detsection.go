// Package detsection polices the bodies of deterministic sections.
//
// A deterministic section (pthread.Det.Section, or the settle callback
// of Det.Resolve) is the state update of one interposed operation. On
// the primary it runs under the namespace-wide global mutex and its
// position in the global order is streamed to the secondary as a
// <Seq_thread, Seq_global, ft_pid> tuple (Figure 3); on the secondary it
// runs when replay reaches that tuple. Two rules follow:
//
//   - the body must not block: the global mutex serializes every
//     replicated thread's sections, so a blocked section stalls the
//     whole namespace — and on the secondary a section that waits on
//     something only the primary provides deadlocks replay;
//   - the body must not re-enter the replication machinery: calling
//     into the shared-memory mailbox (internal/shm) from inside a
//     section can block on ring backpressure while holding the global
//     mutex — the flusher that would drain the ring may itself need a
//     section, a cycle the runtime cannot detect.
//
// detsection therefore flags, inside function literals passed as the
// section body to Section (or as the settle callback to Resolve) on a
// pthread.Det implementation: goroutine spawns, channel operations
// (send, receive, select, close), and any call into internal/shm.
//
// The check is syntactic and local: only literal callbacks at the call
// site are inspected, not named functions passed by reference.
package detsection

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/ftvet"
)

// Analyzer is the detsection pass.
var Analyzer = &ftvet.Analyzer{
	Name: "detsection",
	Doc: "flag goroutine spawns, channel operations, and internal/shm calls inside " +
		"deterministic-section callbacks: sections run under the namespace global " +
		"mutex and must stay short and non-blocking (Figure 3)",
	Run: run,
}

func run(pass *ftvet.Pass) error {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			body := sectionBody(pkg, call)
			if body == nil {
				return true
			}
			checkBody(pass, pkg, body)
			return true
		})
	}
	return nil
}

// sectionBody returns the function literal that will execute inside a
// deterministic section for this call, or nil. For Section(t, op, obj,
// fn) that is fn; for Resolve(t, op, obj, block, settle) it is settle —
// block runs outside the global mutex by design (§3.3: it may park, like
// accept or read).
func sectionBody(pkg *ftvet.Package, call *ast.CallExpr) *ast.FuncLit {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if !strings.Contains(path, "internal/pthread") && !strings.Contains(path, "internal/replication") {
		return nil
	}
	switch fn.Name() {
	case "Section", "section":
		if len(call.Args) == 0 {
			return nil
		}
		lit, _ := call.Args[len(call.Args)-1].(*ast.FuncLit)
		return lit
	case "Resolve", "resolve":
		if len(call.Args) == 0 {
			return nil
		}
		lit, _ := call.Args[len(call.Args)-1].(*ast.FuncLit)
		return lit
	}
	return nil
}

// checkBody walks a section body (including nested literals — a closure
// built inside the section is assumed to run inside it) and reports the
// forbidden constructs.
func checkBody(pass *ftvet.Pass, pkg *ftvet.Package, body *ast.FuncLit) {
	ast.Inspect(body.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Report(n.Pos(), "goroutine spawned inside a deterministic section: the spawn order would race the section order that replay reproduces; spawn outside the section (thread identity is assigned via OpThreadCreate sections)")
		case *ast.SendStmt:
			pass.Report(n.Pos(), "channel send inside a deterministic section can block while holding the namespace global mutex, stalling every replicated thread (Figure 3); hand the value off after the section returns")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Report(n.Pos(), "channel receive inside a deterministic section can block while holding the namespace global mutex, stalling every replicated thread (Figure 3)")
			}
		case *ast.SelectStmt:
			pass.Report(n.Pos(), "select inside a deterministic section: channel operations can block (or nondeterministically choose) while holding the namespace global mutex (Figure 3)")
			return false // one finding per select; don't re-flag its comm clauses
		case *ast.CallExpr:
			checkSectionCall(pass, pkg, n)
		}
		return true
	})
}

func checkSectionCall(pass *ftvet.Pass, pkg *ftvet.Package, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			pass.Report(call.Pos(), "close of a channel inside a deterministic section: channel state changes must not be interleaved with the section order (Figure 3)")
			return
		}
	}
	fn := pkg.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if strings.Contains(fn.Pkg().Path(), "internal/shm") {
		pass.Reportf(call.Pos(), "call into the shared-memory mailbox (%s.%s) inside a deterministic section: re-entering the mailbox while holding the namespace global mutex can block on ring backpressure and breaks the <Seq_thread, Seq_global, ft_pid> serialization (Figure 3); buffer the message and send after the section", fn.Pkg().Name(), fn.Name())
	}
}
