// Package detsection polices the bodies of deterministic sections.
//
// A deterministic section (pthread.Det.Section, or the settle callback
// of Det.Resolve) is the state update of one interposed operation. On
// the primary it runs under the namespace-wide global mutex and its
// position in the global order is streamed to the secondary as a
// <Seq_thread, Seq_global, ft_pid> tuple (Figure 3); on the secondary it
// runs when replay reaches that tuple. Two rules follow:
//
//   - the body must not block: the global mutex serializes every
//     replicated thread's sections, so a blocked section stalls the
//     whole namespace — and on the secondary a section that waits on
//     something only the primary provides deadlocks replay;
//   - the body must not re-enter the replication machinery: calling
//     into the shared-memory mailbox (internal/shm) from inside a
//     section can block on ring backpressure while holding the global
//     mutex — the flusher that would drain the ring may itself need a
//     section, a cycle the runtime cannot detect.
//
// detsection therefore flags, inside function literals passed as the
// section body to Section (or as the settle callback to Resolve) on a
// pthread.Det implementation: goroutine spawns, channel operations
// (send, receive, select, close), and any call into internal/shm.
//
// The checks are interprocedural via the flow summaries: a helper
// called from a section body is judged by what its body (transitively)
// can reach — a goroutine spawn, a channel operation, or an shm call
// buried two helpers deep is reported at the call site in the section,
// with the call chain to the ultimate site. A named function passed as
// the section body (instead of a literal) is judged the same way.
package detsection

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/flow"
	"repro/internal/analysis/ftvet"
)

// Analyzer is the detsection pass.
var Analyzer = &ftvet.Analyzer{
	Name: "detsection",
	Doc: "flag goroutine spawns, channel operations, and internal/shm calls inside " +
		"deterministic-section callbacks: sections run under the namespace global " +
		"mutex and must stay short and non-blocking (Figure 3)",
	Run: run,
}

func run(pass *ftvet.Pass) error {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			arg := sectionArg(pkg, call)
			if arg == nil {
				return true
			}
			if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				checkBody(pass, pkg, lit)
				return true
			}
			// A named function (or method value) as the section body:
			// judge it by its flow summary.
			checkNamedBody(pass, pkg, arg)
			return true
		})
	}
	return nil
}

// checkNamedBody reports a named section callback whose summary shows a
// forbidden effect.
func checkNamedBody(pass *ftvet.Pass, pkg *ftvet.Package, arg ast.Expr) {
	var fn *types.Func
	switch e := ast.Unparen(arg).(type) {
	case *ast.Ident:
		fn, _ = pkg.ObjectOf(e).(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pkg.ObjectOf(e.Sel).(*types.Func)
	}
	if fn == nil {
		return
	}
	g := flow.Of(pass)
	node := g.NodeOf(fn)
	if node == nil || node.Sum == nil {
		return
	}
	for _, kind := range []flow.EffectKind{flow.EffSpawn, flow.EffChanOp, flow.EffShmCall} {
		if eff := node.Sum.Effect(kind); eff != nil {
			pass.ReportTrace(arg.Pos(), fmt.Sprintf(
				"%s used as a deterministic-section body can reach a %s (%s): sections run under the namespace global mutex and must stay short and non-blocking (Figure 3)",
				fn.Name(), effectNoun(kind), describeChain(fn.Name(), eff)), eff.Trace())
		}
	}
}

// effectNoun names an effect kind for a diagnostic.
func effectNoun(kind flow.EffectKind) string {
	switch kind {
	case flow.EffSpawn:
		return "goroutine spawn"
	case flow.EffChanOp:
		return "channel operation"
	case flow.EffShmCall:
		return "call into the shared-memory mailbox"
	}
	return "forbidden operation"
}

// describeChain renders "helper -> deeper -> site" for a message.
func describeChain(first string, eff *flow.Effect) string {
	if p := eff.Path(); p != "" {
		return first + " -> " + p
	}
	return first + " -> " + eff.Desc
}

// sectionArg returns the callback argument that will execute inside a
// deterministic section for this call, or nil. For Section(t, op, obj,
// fn) that is fn; for Resolve(t, op, obj, block, settle) it is settle —
// block runs outside the global mutex by design (§3.3: it may park, like
// accept or read).
func sectionArg(pkg *ftvet.Package, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	path := fn.Pkg().Path()
	if !strings.Contains(path, "internal/pthread") && !strings.Contains(path, "internal/replication") {
		return nil
	}
	switch fn.Name() {
	case "Section", "section", "Resolve", "resolve":
		if len(call.Args) == 0 {
			return nil
		}
		return call.Args[len(call.Args)-1]
	}
	return nil
}

// checkBody walks a section body (including nested literals — a closure
// built inside the section is assumed to run inside it) and reports the
// forbidden constructs.
func checkBody(pass *ftvet.Pass, pkg *ftvet.Package, body *ast.FuncLit) {
	ast.Inspect(body.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Report(n.Pos(), "goroutine spawned inside a deterministic section: the spawn order would race the section order that replay reproduces; spawn outside the section (thread identity is assigned via OpThreadCreate sections)")
		case *ast.SendStmt:
			pass.Report(n.Pos(), "channel send inside a deterministic section can block while holding the namespace global mutex, stalling every replicated thread (Figure 3); hand the value off after the section returns")
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Report(n.Pos(), "channel receive inside a deterministic section can block while holding the namespace global mutex, stalling every replicated thread (Figure 3)")
			}
		case *ast.SelectStmt:
			pass.Report(n.Pos(), "select inside a deterministic section: channel operations can block (or nondeterministically choose) while holding the namespace global mutex (Figure 3)")
			return false // one finding per select; don't re-flag its comm clauses
		case *ast.CallExpr:
			checkSectionCall(pass, pkg, n)
		}
		return true
	})
}

func checkSectionCall(pass *ftvet.Pass, pkg *ftvet.Package, call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			pass.Report(call.Pos(), "close of a channel inside a deterministic section: channel state changes must not be interleaved with the section order (Figure 3)")
			return
		}
	}
	fn := pkg.CalleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if strings.Contains(fn.Pkg().Path(), "internal/shm") {
		pass.Reportf(call.Pos(), "call into the shared-memory mailbox (%s.%s) inside a deterministic section: re-entering the mailbox while holding the namespace global mutex can block on ring backpressure and breaks the <Seq_thread, Seq_global, ft_pid> serialization (Figure 3); buffer the message and send after the section", fn.Pkg().Name(), fn.Name())
		return
	}
	// A helper defined in-tree is judged by its summary: any effect its
	// body can transitively reach happens inside the section. (Direct
	// shm callees are excluded above — reporting their summaries too
	// would double-count the same site.)
	g := flow.Of(pass)
	node := g.NodeOf(fn)
	if node == nil || node.Sum == nil {
		return
	}
	for _, kind := range []flow.EffectKind{flow.EffSpawn, flow.EffChanOp, flow.EffShmCall} {
		if eff := node.Sum.Effect(kind); eff != nil {
			pass.ReportTrace(call.Pos(), fmt.Sprintf(
				"call to %s inside a deterministic section can reach a %s (%s): sections run under the namespace global mutex and must stay short and non-blocking (Figure 3)",
				fn.Name(), effectNoun(kind), describeChain(fn.Name(), eff)), eff.Trace())
		}
	}
}
