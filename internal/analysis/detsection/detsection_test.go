package detsection_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/detsection"
)

func TestDetSection(t *testing.T) {
	td, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	analysistest.Run(t, td, detsection.Analyzer,
		"repro/internal/detfix",    // intraprocedural shapes
		"repro/internal/dethelper", // effects hidden behind helpers + named section bodies
	)
}
