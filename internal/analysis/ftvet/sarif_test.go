package ftvet

import (
	"bytes"
	"encoding/json"
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"
)

// sarifFixture builds a two-finding diagnostic list (one with an
// interprocedural trace) over a real parsed file, so positions resolve.
func sarifFixture(t *testing.T) (*token.FileSet, string, []Diagnostic) {
	t.Helper()
	const src = `package p

func sink() {}

func source() {}
`
	fset := token.NewFileSet()
	root := filepath.FromSlash("/work/repo")
	name := filepath.Join(root, "internal", "p", "p.go")
	f, err := parser.ParseFile(fset, name, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	sinkPos := f.Decls[0].Pos()   // line 3
	sourcePos := f.Decls[1].Pos() // line 5
	return fset, root, []Diagnostic{
		{
			Analyzer: "nondet",
			Pos:      sinkPos,
			Message:  "wall clock reaches replicated state",
			Trace: []TraceStep{
				{Pos: sourcePos, Note: "time.Now — the nondeterminism source"},
			},
		},
		{Analyzer: "lockorder", Pos: sourcePos, Message: "lock-order cycle"},
	}
}

func TestWriteSARIF(t *testing.T) {
	fset, root, diags := sarifFixture(t)
	analyzers := []*Analyzer{
		{Name: "nondet", Doc: "nondeterminism sources"},
		{Name: "lockorder", Doc: "lock ordering"},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, fset, root, analyzers, diags); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("WriteSARIF produced invalid JSON: %v\n%s", err, buf.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "ftvet" {
		t.Errorf("driver name = %q, want ftvet", run.Tool.Driver.Name)
	}
	// One rule per registered analyzer plus the ftvet pseudo-rule.
	if len(run.Tool.Driver.Rules) != 3 {
		t.Errorf("got %d rules, want 3 (nondet, lockorder, ftvet)", len(run.Tool.Driver.Rules))
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "nondet" || run.Tool.Driver.Rules[r.RuleIndex].ID != "nondet" {
		t.Errorf("result rule = %q (index %d), want a consistent nondet binding", r.RuleID, r.RuleIndex)
	}
	loc := r.Locations[0].PhysicalLocation
	if got := loc.ArtifactLocation.URI; got != "internal/p/p.go" {
		t.Errorf("artifact URI = %q, want the root-relative forward-slash path", got)
	}
	if loc.Region.StartLine != 3 {
		t.Errorf("startLine = %d, want 3", loc.Region.StartLine)
	}
	if len(r.RelatedLocations) != 1 {
		t.Fatalf("trace hop lost: got %d relatedLocations, want 1", len(r.RelatedLocations))
	}
	hop := r.RelatedLocations[0]
	if hop.PhysicalLocation.Region.StartLine != 5 || hop.Message == nil || hop.Message.Text == "" {
		t.Errorf("trace hop = %+v, want line 5 with the hop note attached", hop)
	}
}

func TestWriteJSON(t *testing.T) {
	fset, root, diags := sarifFixture(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, fset, root, diags); err != nil {
		t.Fatal(err)
	}
	var out []jsonDiag
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("WriteJSON produced invalid JSON: %v\n%s", err, buf.String())
	}
	if len(out) != 2 {
		t.Fatalf("got %d findings, want 2", len(out))
	}
	if out[0].Analyzer != "nondet" || out[0].File != "internal/p/p.go" || out[0].Line != 3 {
		t.Errorf("first finding = %+v, want nondet at internal/p/p.go:3", out[0])
	}
	if len(out[0].Trace) != 1 || out[0].Trace[0].Line != 5 {
		t.Errorf("first finding trace = %+v, want one hop at line 5", out[0].Trace)
	}
	if len(out[1].Trace) != 0 {
		t.Errorf("trace invented for a traceless finding: %+v", out[1].Trace)
	}
}
