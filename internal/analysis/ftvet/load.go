package ftvet

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks packages without the go/packages driver
// (unavailable offline). Packages inside the analyzed tree are loaded
// from source by the loader itself; everything else (the standard
// library) is delegated to go/types' source importer, which resolves
// from GOROOT/src.
type Loader struct {
	// Root is the directory packages are loaded from.
	Root string

	// Module is the module path that maps onto Root ("repro" for the
	// real tree). Empty means fixture mode: an import path is used
	// verbatim as a directory relative to Root, the layout analysistest
	// uses under testdata/src.
	Module string

	Fset *token.FileSet

	pkgs    map[string]*Package
	loading map[string]bool
	std     types.ImporterFrom
}

// NewLoader creates a loader rooted at dir for the given module path
// (empty for fixture mode).
func NewLoader(dir, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Root:    dir,
		Module:  module,
		Fset:    fset,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// dirFor maps an import path to a directory under Root, or "" when the
// path is outside the analyzed tree (standard library).
func (l *Loader) dirFor(path string) string {
	switch {
	case l.Module == "":
		dir := filepath.Join(l.Root, filepath.FromSlash(path))
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir
		}
		return ""
	case path == l.Module:
		return l.Root
	case strings.HasPrefix(path, l.Module+"/"):
		return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.Module+"/")))
	default:
		return ""
	}
}

// Load parses and type-checks the package at the given import path,
// memoized across the loader's lifetime. Test files are excluded: ftvet
// guards the shipped code, and test-only packages would drag in external
// test dependencies the offline importer cannot see.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	// An import encountered while the same path is still type-checking
	// is a cycle; without this guard the loader would recurse through
	// importFor forever (go/types never sees the repeated path because
	// memoization only happens after a successful Check).
	if l.loading[path] {
		return nil, fmt.Errorf("ftvet: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("ftvet: import path %q is outside the analyzed tree", path)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("ftvet: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc(l.importFor),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("ftvet: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("ftvet: type-checking %s: %v", path, err)
	}
	p := &Package{Path: path, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// importFor resolves an import encountered while type-checking: tree
// packages recurse into Load, everything else goes to the standard
// library source importer.
func (l *Loader) importFor(path string) (*types.Package, error) {
	if dir := l.dirFor(path); dir != "" {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.Root, 0)
}

// LoadAll loads every package under Root, skipping testdata trees,
// hidden directories, and directories without non-test Go files. The
// result is sorted by import path.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != l.Root && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_") || base == "testdata") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				rel, err := filepath.Rel(l.Root, p)
				if err != nil {
					return err
				}
				ip := l.Module
				if rel != "." {
					ip = l.Module + "/" + filepath.ToSlash(rel)
				}
				paths = append(paths, ip)
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
