// Package ftvet is the analysis framework behind cmd/ftvet: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus a module-aware package
// loader built on go/types' source importer.
//
// The framework exists because the FT-Linux reproduction enforces paper
// invariants the Go compiler cannot see — determinism of replicated code
// (§3.3), the serialization discipline of deterministic sections (Figure
// 3), lock-acquisition ordering on the record/replay hot path, and the
// force-flush-before-output-commit rule (§3.5) — and those invariants
// must survive PRs written long after the original authors. Each
// invariant is an Analyzer; cmd/ftvet is the multichecker that runs them
// all; `//ftvet:allow` (see allow.go) is the audited escape hatch.
//
// The container this repo grows in has no module cache and no network, so
// golang.org/x/tools is unavailable; the subset of its API reproduced
// here is exactly what the four FT analyzers need, nothing more.
package ftvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// Analyzer describes one invariant checker, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //ftvet:allow comments. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description shown by `ftvet -list`.
	Doc string

	// Module, when true, runs the analyzer once over the entire package
	// set (Pass.All) instead of once per package — required by whole-
	// program checks such as the lock-acquisition graph.
	Module bool

	// Run executes the analyzer on a pass, reporting findings via
	// Pass.Report/Reportf.
	Run func(*Pass) error
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer execution over one package (or, for Module
// analyzers, over the whole set).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet

	// Pkg is the package under analysis. For Module analyzers it is nil
	// and All holds every loaded package instead.
	Pkg *Package

	// All is the full package set of the run (always populated).
	All []*Package

	// Shared is the run-wide cross-analyzer cache. Whole-program
	// artifacts that several analyzers consume — the call graph and the
	// function summaries of internal/analysis/flow — are built once per
	// Run and memoized here, keyed by name.
	Shared *Shared

	diags *[]Diagnostic
}

// Shared memoizes run-wide artifacts across analyzers and packages. One
// Shared is created per Run and handed to every Pass.
type Shared struct {
	mu   sync.Mutex
	vals map[string]any
}

// NewShared returns an empty run-wide cache (exported for tests and
// debug tooling that construct passes by hand).
func NewShared() *Shared { return &Shared{vals: map[string]any{}} }

// Get returns the cached value under key, building it on first use.
func (s *Shared) Get(key string, build func() any) any {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := s.vals[key]; ok {
		return v
	}
	v := build()
	s.vals[key] = v
	return v
}

// TraceStep is one hop of an interprocedural diagnostic trace: where
// the tainted value / forbidden effect came from and each call edge it
// crossed on the way to the report site.
type TraceStep struct {
	Pos  token.Pos
	Note string
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string

	// Trace, when non-empty, is the interprocedural path behind the
	// finding, source first. Text output folds it into the message; the
	// SARIF writer emits it as relatedLocations so CI annotations link
	// every hop.
	Trace []TraceStep
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.diags = append(*p.diags, Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: msg})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// ReportTrace records a finding carrying an interprocedural trace
// (source hop first).
func (p *Pass) ReportTrace(pos token.Pos, msg string, trace []TraceStep) {
	*p.diags = append(*p.diags, Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: msg, Trace: trace})
}

// TypeOf returns the type of e in the pass's package, or nil.
func (pkg *Package) TypeOf(e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkg.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf returns the object denoted by the identifier, or nil.
func (pkg *Package) ObjectOf(id *ast.Ident) types.Object { return pkg.Info.ObjectOf(id) }

// CalleeFunc resolves a call expression to the *types.Func it invokes
// (method or package-level function), or nil for builtins, conversions,
// and indirect calls through function values.
func (pkg *Package) CalleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
		return fn
	}
	return nil
}

// sortDiags orders diagnostics by file position, then analyzer name, so
// output and golden comparisons are deterministic.
func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}
