package ftvet

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"
	"strings"
)

// This file renders diagnostics in machine formats for CI: SARIF 2.1.0
// (the format GitHub code scanning ingests to annotate PR diffs inline)
// and a flat JSON list for ad-hoc tooling. Both carry the full
// interprocedural trace — SARIF as relatedLocations on each result, so
// a reviewer can click from the sink annotation to every hop back to
// the nondeterminism source.

// jsonDiag is one finding in -format=json output.
type jsonDiag struct {
	Analyzer string     `json:"analyzer"`
	File     string     `json:"file"`
	Line     int        `json:"line"`
	Column   int        `json:"column"`
	Message  string     `json:"message"`
	Trace    []jsonStep `json:"trace,omitempty"`
}

type jsonStep struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// relPath makes a diagnostic path root-relative (SARIF artifact URIs
// must not be absolute for GitHub to map them onto the checkout).
func relPath(root, name string) string {
	if root == "" {
		return filepath.ToSlash(name)
	}
	if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(name)
}

// WriteJSON renders diagnostics as a JSON array (one object per
// finding, trace hops inline), paths relative to root.
func WriteJSON(w io.Writer, fset *token.FileSet, root string, diags []Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		jd := jsonDiag{
			Analyzer: d.Analyzer,
			File:     relPath(root, p.Filename),
			Line:     p.Line,
			Column:   p.Column,
			Message:  d.Message,
		}
		for _, h := range d.Trace {
			hp := fset.Position(h.Pos)
			jd.Trace = append(jd.Trace, jsonStep{
				File:    relPath(root, hp.Filename),
				Line:    hp.Line,
				Column:  hp.Column,
				Message: h.Note,
			})
		}
		out = append(out, jd)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// sarif* mirror the fragment of the SARIF 2.1.0 schema GitHub code
// scanning consumes; nothing more.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
	FullDescription  sarifText `json:"fullDescription"`
	DefaultConfig    sarifCfg  `json:"defaultConfiguration"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifCfg struct {
	Level string `json:"level"`
}

type sarifResult struct {
	RuleID           string          `json:"ruleId"`
	RuleIndex        int             `json:"ruleIndex"`
	Level            string          `json:"level"`
	Message          sarifText       `json:"message"`
	Locations        []sarifLocation `json:"locations"`
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifText    `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF renders diagnostics as a SARIF 2.1.0 log with one rule per
// registered analyzer (plus the "ftvet" pseudo-rule for malformed allow
// directives), paths relative to root. Interprocedural traces become
// relatedLocations, source hop first.
func WriteSARIF(w io.Writer, fset *token.FileSet, root string, analyzers []*Analyzer, diags []Diagnostic) error {
	driver := sarifDriver{Name: "ftvet"}
	ruleIdx := map[string]int{}
	addRule := func(id, short, full string) {
		if _, ok := ruleIdx[id]; ok {
			return
		}
		ruleIdx[id] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               id,
			ShortDescription: sarifText{Text: short},
			FullDescription:  sarifText{Text: full},
			DefaultConfig:    sarifCfg{Level: "error"},
		})
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Name+": FT-invariant analyzer", a.Doc)
	}
	addRule("ftvet", "malformed //ftvet:allow directive",
		"the //ftvet:allow escape hatch requires a known analyzer name and a justification")

	loc := func(pos token.Pos, msg string) sarifLocation {
		p := fset.Position(pos)
		l := sarifLocation{PhysicalLocation: sarifPhysical{
			ArtifactLocation: sarifArtifact{URI: relPath(root, p.Filename)},
			Region:           sarifRegion{StartLine: p.Line, StartColumn: p.Column},
		}}
		if msg != "" {
			l.Message = &sarifText{Text: msg}
		}
		return l
	}

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		// A diagnostic from an analyzer outside the registry (possible
		// when callers hand-craft diagnostics) still needs a rule entry.
		addRule(d.Analyzer, d.Analyzer, d.Analyzer)
		r := sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: ruleIdx[d.Analyzer],
			Level:     "error",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{loc(d.Pos, "")},
		}
		for _, h := range d.Trace {
			r.RelatedLocations = append(r.RelatedLocations, loc(h.Pos, h.Note))
		}
		results = append(results, r)
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
