package ftvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// runFixture parses one source file into a package list Run can consume
// (the analyzers used here never touch type information).
func runFixture(t *testing.T, src string) (*token.FileSet, []*Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*Package{{Path: "p", Files: []*ast.File{f}}}
}

// TestRunTimedKnownRegistry pins the subset-run allow semantics: an
// allow naming an analyzer that is registered but not part of this run
// is accepted when the caller passes the full registry (the -run nondet
// case), and diagnosed as unknown when it truly is in no registry.
func TestRunTimedKnownRegistry(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //ftvet:allow lockorder: waiver for an analyzer not in this run
}
`
	fset, pkgs := runFixture(t, src)
	noop := &Analyzer{Name: "nondet", Doc: "noop", Run: func(pass *Pass) error { return nil }}

	// Full registry passed: the lockorder allow is known, nothing fires.
	diags, timings, err := RunTimed(fset, pkgs, []*Analyzer{noop}, []string{"nondet", "lockorder"})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("allow for a registered-but-not-run analyzer was diagnosed: %+v", diags)
	}
	if len(timings) != 1 || timings[0].Analyzer != "nondet" || timings[0].Pkg != "p" {
		t.Errorf("timings = %+v, want one per-package entry for nondet", timings)
	}

	// No registry: only the analyzers being run are known, so the same
	// allow is a typo-shaped unknown and must be diagnosed.
	diags, _, err = RunTimed(fset, pkgs, []*Analyzer{noop}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || diags[0].Analyzer != "ftvet" {
		t.Fatalf("diags = %+v, want one ftvet unknown-analyzer finding", diags)
	}
}

// TestRunTimedModuleTiming checks Module analyzers record one run-wide
// timing entry (empty Pkg) and share diagnostics sorting with the rest.
func TestRunTimedModuleTiming(t *testing.T) {
	fset, pkgs := runFixture(t, "package p\n")
	ran := 0
	mod := &Analyzer{Name: "mod", Doc: "module-wide", Module: true, Run: func(pass *Pass) error {
		ran++
		if len(pass.All) != 1 || pass.Pkg != nil {
			t.Errorf("module pass shape wrong: All=%d Pkg=%v", len(pass.All), pass.Pkg)
		}
		return nil
	}}
	_, timings, err := RunTimed(fset, pkgs, []*Analyzer{mod}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Errorf("module analyzer ran %d times, want once for the whole set", ran)
	}
	if len(timings) != 1 || timings[0].Pkg != "" {
		t.Errorf("timings = %+v, want one entry with an empty Pkg", timings)
	}
}
