package ftvet

import (
	"go/token"
	"strings"
)

// allowPrefix introduces the source-comment escape hatch:
//
//	//ftvet:allow <analyzer>: <justification>
//
// The comment suppresses that analyzer's diagnostics on its own source
// line (trailing form) and on the line directly below (standalone form).
// The justification is mandatory: an allow with no stated reason is
// itself a diagnostic, so every suppression in the tree documents why
// the invariant may be waived there. Unknown analyzer names are also
// diagnosed, so a typo cannot silently disable enforcement.
const allowPrefix = "//ftvet:allow"

// allowMark is one parsed escape-hatch comment.
type allowMark struct {
	analyzer string
	pos      token.Pos
}

// collectAllows parses every //ftvet:allow comment in the package set.
// Malformed allows are reported as diagnostics under the pseudo-analyzer
// name "ftvet" (which cannot itself be suppressed).
func collectAllows(fset *token.FileSet, pkgs []*Package, known map[string]bool) (marks []allowMark, malformed []Diagnostic) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					if !strings.HasPrefix(text, allowPrefix) {
						continue
					}
					rest := strings.TrimPrefix(text, allowPrefix)
					if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
						malformed = append(malformed, Diagnostic{
							Analyzer: "ftvet",
							Pos:      c.Pos(),
							Message:  "malformed ftvet:allow: want \"//ftvet:allow <analyzer>: <justification>\"",
						})
						continue
					}
					name, justification, okColon := strings.Cut(strings.TrimSpace(rest), ":")
					name = strings.TrimSpace(name)
					if !known[name] {
						malformed = append(malformed, Diagnostic{
							Analyzer: "ftvet",
							Pos:      c.Pos(),
							Message:  "ftvet:allow names unknown analyzer " + quote(name),
						})
						continue
					}
					if !okColon || strings.TrimSpace(justification) == "" {
						malformed = append(malformed, Diagnostic{
							Analyzer: "ftvet",
							Pos:      c.Pos(),
							Message:  "ftvet:allow " + name + " requires a justification: \"//ftvet:allow " + name + ": <why this waiver is sound>\"",
						})
						continue
					}
					marks = append(marks, allowMark{analyzer: name, pos: c.Pos()})
				}
			}
		}
	}
	return marks, malformed
}

func quote(s string) string {
	if s == "" {
		return `""`
	}
	return `"` + s + `"`
}

// filterAllows drops diagnostics covered by an allow mark: same analyzer
// on the mark's line (trailing comment) or the line directly below
// (standalone comment above the flagged statement).
func filterAllows(fset *token.FileSet, diags []Diagnostic, marks []allowMark) []Diagnostic {
	if len(marks) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	allowed := map[key]bool{}
	for _, m := range marks {
		p := fset.Position(m.pos)
		allowed[key{p.Filename, p.Line, m.analyzer}] = true
		allowed[key{p.Filename, p.Line + 1, m.analyzer}] = true
	}
	var out []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		if allowed[key{p.Filename, p.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
