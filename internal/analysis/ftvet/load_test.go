package ftvet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree lays out a scratch module: keys are root-relative file
// paths, values file contents.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		p := filepath.Join(root, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoadMissingPackage(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": "package a\n",
	})
	l := NewLoader(root, "repro")

	// A path under the module that maps to no directory.
	if _, err := l.Load("repro/nothere"); err == nil {
		t.Error("loading a missing in-module package succeeded, want an error")
	}
	// A path outside the module entirely.
	_, err := l.Load("othermod/pkg")
	if err == nil || !strings.Contains(err.Error(), "outside the analyzed tree") {
		t.Errorf("loading an out-of-tree path: err = %v, want \"outside the analyzed tree\"", err)
	}
	// A directory with no Go files.
	if err := os.MkdirAll(filepath.Join(root, "empty"), 0o755); err != nil {
		t.Fatal(err)
	}
	_, err = l.Load("repro/empty")
	if err == nil || !strings.Contains(err.Error(), "no Go files") {
		t.Errorf("loading an empty directory: err = %v, want \"no Go files\"", err)
	}
}

func TestLoadSyntaxErrorInDependency(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": "package a\n\nimport \"repro/b\"\n\nvar _ = b.X\n",
		"b/b.go": "package b\n\nvar X = {{{\n", // deliberate parse error
	})
	l := NewLoader(root, "repro")
	_, err := l.Load("repro/a")
	if err == nil {
		t.Fatal("loading a package with a broken dependency succeeded, want an error")
	}
	if !strings.Contains(err.Error(), "b.go") {
		t.Errorf("dependency parse failure does not name the broken file: %v", err)
	}
}

func TestLoadImportCycle(t *testing.T) {
	root := writeTree(t, map[string]string{
		"c/c.go": "package c\n\nimport \"repro/d\"\n\nvar _ = d.X\nvar X = 1\n",
		"d/d.go": "package d\n\nimport \"repro/c\"\n\nvar _ = c.X\nvar X = 2\n",
	})
	l := NewLoader(root, "repro")
	_, err := l.Load("repro/c")
	if err == nil {
		t.Fatal("loading an import cycle succeeded, want an error")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("cycle error does not say so: %v", err)
	}
	// The guard must unwind cleanly: a later load of an unrelated healthy
	// package through the same loader still works.
	if err := os.MkdirAll(filepath.Join(root, "ok"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "ok", "ok.go"), []byte("package ok\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("repro/ok"); err != nil {
		t.Errorf("loader unusable after a cycle error: %v", err)
	}
}

func TestLoadMemoizes(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go": "package a\n\nvar X = 1\n",
	})
	l := NewLoader(root, "repro")
	p1, err := l.Load("repro/a")
	if err != nil {
		t.Fatal(err)
	}
	p2, err := l.Load("repro/a")
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Load re-parsed an already-loaded package instead of memoizing")
	}
}
