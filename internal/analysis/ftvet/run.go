package ftvet

import (
	"fmt"
	"go/token"
	"io"
	"time"
)

// Timing records one analyzer execution for the runtime budget: Pkg is
// empty for Module analyzers (one run over the whole set).
type Timing struct {
	Analyzer string
	Pkg      string
	Elapsed  time.Duration
}

// Run executes the analyzers over the package set and returns the
// surviving diagnostics: per-package analyzers run once per package,
// Module analyzers once over the whole set; //ftvet:allow marks are
// applied afterwards, and malformed allow comments are appended as
// findings of the pseudo-analyzer "ftvet".
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	diags, _, err := RunTimed(fset, pkgs, analyzers, nil)
	return diags, err
}

// RunTimed is Run plus per-execution timings (the analyzer runtime
// budget) and an explicit registry of known analyzer names for
// //ftvet:allow validation. known lets a subset run (-run nondet) still
// accept allows naming the other registered analyzers: an allow is only
// "unknown" (and diagnosed) when its name is in no registry at all —
// that is how a typo'd allow, which suppresses nothing, is kept from
// rotting silently. A nil known falls back to the analyzers being run.
func RunTimed(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, known []string) ([]Diagnostic, []Timing, error) {
	var diags []Diagnostic
	var timings []Timing
	knownSet := map[string]bool{}
	for _, a := range analyzers {
		knownSet[a.Name] = true
	}
	for _, name := range known {
		knownSet[name] = true
	}
	shared := NewShared()
	for _, a := range analyzers {
		if a.Module {
			pass := &Pass{Analyzer: a, Fset: fset, All: pkgs, Shared: shared, diags: &diags}
			start := time.Now()
			err := a.Run(pass)
			timings = append(timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start)})
			if err != nil {
				return nil, timings, fmt.Errorf("ftvet: %s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, All: pkgs, Shared: shared, diags: &diags}
			start := time.Now()
			err := a.Run(pass)
			timings = append(timings, Timing{Analyzer: a.Name, Pkg: pkg.Path, Elapsed: time.Since(start)})
			if err != nil {
				return nil, timings, fmt.Errorf("ftvet: %s(%s): %w", a.Name, pkg.Path, err)
			}
		}
	}
	marks, malformed := collectAllows(fset, pkgs, knownSet)
	diags = filterAllows(fset, diags, marks)
	diags = append(diags, malformed...)
	sortDiags(fset, diags)
	return diags, timings, nil
}

// Print writes diagnostics in the canonical file:line:col format used by
// go vet, returning the number printed. Interprocedural traces follow
// the finding as indented hop lines.
func Print(w io.Writer, fset *token.FileSet, diags []Diagnostic) int {
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", p.Filename, p.Line, p.Column, d.Message, d.Analyzer)
		for _, h := range d.Trace {
			hp := fset.Position(h.Pos)
			fmt.Fprintf(w, "\t%s:%d:%d: %s\n", hp.Filename, hp.Line, hp.Column, h.Note)
		}
	}
	return len(diags)
}
