package ftvet

import (
	"fmt"
	"go/token"
	"io"
)

// Run executes the analyzers over the package set and returns the
// surviving diagnostics: per-package analyzers run once per package,
// Module analyzers once over the whole set; //ftvet:allow marks are
// applied afterwards, and malformed allow comments are appended as
// findings of the pseudo-analyzer "ftvet".
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		if a.Module {
			pass := &Pass{Analyzer: a, Fset: fset, All: pkgs, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("ftvet: %s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Fset: fset, Pkg: pkg, All: pkgs, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("ftvet: %s(%s): %w", a.Name, pkg.Path, err)
			}
		}
	}
	marks, malformed := collectAllows(fset, pkgs, known)
	diags = filterAllows(fset, diags, marks)
	diags = append(diags, malformed...)
	sortDiags(fset, diags)
	return diags, nil
}

// Print writes diagnostics in the canonical file:line:col format used by
// go vet, returning the number printed.
func Print(w io.Writer, fset *token.FileSet, diags []Diagnostic) int {
	for _, d := range diags {
		p := fset.Position(d.Pos)
		fmt.Fprintf(w, "%s:%d:%d: %s [%s]\n", p.Filename, p.Line, p.Column, d.Message, d.Analyzer)
	}
	return len(diags)
}
