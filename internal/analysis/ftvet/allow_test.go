package ftvet

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func allowFixture(t *testing.T, src string) (*token.FileSet, *ast.File, []*Package) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, []*Package{{Path: "fix", Files: []*ast.File{f}}}
}

func TestCollectAllows(t *testing.T) {
	const src = `package p

func a() {
	_ = 1 //ftvet:allow nondet: fixture waiver with a reason
}

//ftvet:allow lockorder: standalone form covers the next line
func b() {}

func c() {
	_ = 2 //ftvet:allow nondet
	_ = 3 //ftvet:allow bogus: not a real analyzer
}
`
	fset, _, pkgs := allowFixture(t, src)
	known := map[string]bool{"nondet": true, "lockorder": true}

	marks, malformed := collectAllows(fset, pkgs, known)
	if len(marks) != 2 {
		t.Fatalf("got %d valid marks, want 2: %+v", len(marks), marks)
	}
	if len(malformed) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %+v", len(malformed), malformed)
	}
	var msgs []string
	for _, d := range malformed {
		if d.Analyzer != "ftvet" {
			t.Errorf("malformed allow reported under %q, want the ftvet pseudo-analyzer", d.Analyzer)
		}
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{"requires a justification", "unknown analyzer"} {
		if !strings.Contains(joined, want) {
			t.Errorf("malformed diagnostics missing %q:\n%s", want, joined)
		}
	}
}

func TestFilterAllows(t *testing.T) {
	const src = `package p

func a() {
	_ = 1 //ftvet:allow nondet: same-line waiver
	//ftvet:allow nondet: next-line waiver
	_ = 2
	_ = 3
}
`
	fset, f, pkgs := allowFixture(t, src)
	marks, malformed := collectAllows(fset, pkgs, map[string]bool{"nondet": true})
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed allows: %+v", malformed)
	}
	pos := func(line int) token.Pos {
		return fset.File(f.Pos()).LineStart(line)
	}
	diags := []Diagnostic{
		{Analyzer: "nondet", Pos: pos(4), Message: "same line"},
		{Analyzer: "nondet", Pos: pos(6), Message: "line below standalone"},
		{Analyzer: "nondet", Pos: pos(7), Message: "uncovered"},
		{Analyzer: "lockorder", Pos: pos(4), Message: "other analyzer not covered"},
	}
	out := filterAllows(fset, diags, marks)
	if len(out) != 2 {
		t.Fatalf("got %d surviving diagnostics, want 2: %+v", len(out), out)
	}
	for _, d := range out {
		if d.Message != "uncovered" && d.Message != "other analyzer not covered" {
			t.Errorf("wrong diagnostic survived: %+v", d)
		}
	}
}
