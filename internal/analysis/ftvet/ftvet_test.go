package ftvet_test

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analysis/detsection"
	"repro/internal/analysis/ftvet"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/nondet"
	"repro/internal/analysis/watermark"
)

var suite = []*ftvet.Analyzer{
	nondet.Analyzer,
	detsection.Analyzer,
	lockorder.Analyzer,
	watermark.Analyzer,
}

// TestRepoClean is the smoke test from the issue: the full analyzer
// suite must run clean over the repository itself, so a regression that
// reintroduces a nondeterminism or ordering violation fails `go test`
// as well as `make lint`. It doubles as the analyzer runtime budget:
// load + full interprocedural run must stay under 60s so the fixpoint
// engine cannot quietly regress CI (per-analyzer timings print with -v).
func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	loader := ftvet.NewLoader(root, "repro")
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; loader is missing most of the tree", len(pkgs))
	}
	diags, timings, err := ftvet.RunTimed(loader.Fset, pkgs, suite, nil)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	perAnalyzer := map[string]time.Duration{}
	for _, tm := range timings {
		perAnalyzer[tm.Analyzer] += tm.Elapsed
	}
	for _, a := range suite {
		t.Logf("%-12s %v", a.Name, perAnalyzer[a.Name].Round(time.Millisecond))
	}
	t.Logf("load + scan of %d packages: %v", len(pkgs), elapsed.Round(time.Millisecond))
	if elapsed > 60*time.Second {
		t.Errorf("full-repo scan took %v, over the 60s runtime budget", elapsed)
	}
	for _, d := range diags {
		p := loader.Fset.Position(d.Pos)
		t.Errorf("%s:%d:%d: %s [%s]", p.Filename, p.Line, p.Column, d.Message, d.Analyzer)
	}
}

// TestNondetCatchesPlantedClock proves the acceptance criterion that a
// time.Now() planted in a replicated app package is caught: it builds a
// scratch module whose only file mirrors internal/apps/pbzip2 and runs
// the suite over it.
func TestNondetCatchesPlantedClock(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, "internal", "apps", "pbzip2")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	const src = `package pbzip2

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader := ftvet.NewLoader(root, "repro")
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	diags, err := ftvet.Run(loader.Fset, pkgs, suite)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "nondet" {
			found = true
		}
	}
	if !found {
		t.Fatalf("planted time.Now() in internal/apps/pbzip2 produced no nondet finding; got %+v", diags)
	}
}
