package simnet

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func TestPacketDelivery(t *testing.T) {
	s := sim.New(1)
	a := NewNIC("client", nil)
	b := NewNIC("server", nil)
	if _, err := Connect(s, a, b, LinkConfig{BitsPerSec: 1e9, Latency: 100 * time.Microsecond}); err != nil {
		t.Fatal(err)
	}
	var got []Packet
	var at sim.Time
	b.SetRx(func(p Packet) { got = append(got, p); at = s.Now() })
	a.Send(Packet{DstHost: "server", Size: 1250, Payload: "hello"})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Payload != "hello" || got[0].SrcHost != "client" {
		t.Fatalf("got %v", got)
	}
	// 1250 bytes at 1 Gb/s = 10us serialization + 100us propagation.
	if at != sim.Time(110*time.Microsecond) {
		t.Errorf("delivered at %v, want 110us", at)
	}
}

func TestBandwidthSerialization(t *testing.T) {
	s := sim.New(1)
	a := NewNIC("a", nil)
	b := NewNIC("b", nil)
	if _, err := Connect(s, a, b, LinkConfig{BitsPerSec: 1e9, Latency: 0}); err != nil {
		t.Fatal(err)
	}
	var last sim.Time
	n := 0
	b.SetRx(func(p Packet) { last = s.Now(); n++ })
	// 100 x 12500-byte frames at 1 Gb/s = 100us each = 10ms total.
	for i := 0; i < 100; i++ {
		a.Send(Packet{Size: 12500})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("delivered %d, want 100", n)
	}
	if last != sim.Time(10*time.Millisecond) {
		t.Errorf("last delivery at %v, want 10ms (1 Gb/s serialization)", last)
	}
}

func TestQueueOverflowDrops(t *testing.T) {
	s := sim.New(1)
	a := NewNIC("a", nil)
	b := NewNIC("b", nil)
	l, err := Connect(s, a, b, LinkConfig{BitsPerSec: 1e9, Latency: 0, MaxQueue: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	b.SetRx(func(p Packet) { n++ })
	// Each frame takes 100us to serialize; only ~11 fit within the 1ms
	// queue bound, the rest are tail-dropped.
	for i := 0; i < 50; i++ {
		a.Send(Packet{Size: 12500})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if n >= 50 {
		t.Errorf("no drops despite queue bound (delivered %d)", n)
	}
	if l.Stats(0).Drops == 0 {
		t.Error("drop counter is zero")
	}
	if l.Stats(0).Packets != int64(n) {
		t.Errorf("packet counter %d != delivered %d", l.Stats(0).Packets, n)
	}
}

func TestFullDuplexIndependentDirections(t *testing.T) {
	s := sim.New(1)
	a := NewNIC("a", nil)
	b := NewNIC("b", nil)
	if _, err := Connect(s, a, b, LinkConfig{BitsPerSec: 1e9, Latency: 0}); err != nil {
		t.Fatal(err)
	}
	var aAt, bAt sim.Time
	a.SetRx(func(p Packet) { aAt = s.Now() })
	b.SetRx(func(p Packet) { bAt = s.Now() })
	a.Send(Packet{Size: 12500})
	b.Send(Packet{Size: 12500})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if aAt != bAt || aAt != sim.Time(100*time.Microsecond) {
		t.Errorf("full duplex broken: a=%v b=%v", aAt, bAt)
	}
}

func TestNICDownWhileDriverUnloaded(t *testing.T) {
	s := sim.New(1)
	m := hw.New(s, hw.Opteron6376x4())
	p0, _ := m.NewPartition("p0", 0, 1, 2, 3)
	p1, _ := m.NewPartition("p1", 4, 5, 6, 7)
	k0, err := kernel.Boot(p0, kernel.Config{Name: "primary"})
	if err != nil {
		t.Fatal(err)
	}
	k1, err := kernel.Boot(p1, kernel.Config{Name: "secondary"})
	if err != nil {
		t.Fatal(err)
	}
	dev := kernel.NewDevice("eth0", 5*time.Second)
	server := NewNIC("server", dev)
	client := NewNIC("client", nil)
	if _, err := Connect(s, client, server, GigabitEthernet()); err != nil {
		t.Fatal(err)
	}
	received := 0
	server.SetRx(func(p Packet) { received++ })

	k0.Spawn("boot", func(tk *kernel.Task) {
		if err := tk.LoadDriver(dev); err != nil {
			t.Errorf("LoadDriver: %v", err)
		}
	})
	// Before the driver loads (t<5s) frames are dropped; after, received.
	s.Schedule(time.Second, func() { client.Send(Packet{Size: 100}) })
	s.Schedule(6*time.Second, func() { client.Send(Packet{Size: 100}) })

	// Primary dies at 7s; the device goes down until secondary reloads it.
	s.Schedule(7*time.Second, func() {
		k0.Panic("injected", nil)
		dev.FailDevice()
		k1.Spawn("failover", func(tk *kernel.Task) {
			if err := tk.LoadDriver(dev); err != nil {
				t.Errorf("takeover: %v", err)
			}
		})
	})
	s.Schedule(8*time.Second, func() { client.Send(Packet{Size: 100}) })  // during reload: dropped
	s.Schedule(13*time.Second, func() { client.Send(Packet{Size: 100}) }) // after reload: received
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if received != 2 {
		t.Errorf("received %d frames, want 2 (one pre-failover, one post-reload)", received)
	}
}

func TestConnectErrors(t *testing.T) {
	s := sim.New(1)
	a := NewNIC("a", nil)
	b := NewNIC("b", nil)
	c := NewNIC("c", nil)
	if _, err := Connect(s, a, b, LinkConfig{BitsPerSec: 1e9}); err != nil {
		t.Fatal(err)
	}
	if _, err := Connect(s, a, c, LinkConfig{BitsPerSec: 1e9}); err == nil {
		t.Error("double-connect allowed")
	}
	if _, err := Connect(s, c, NewNIC("d", nil), LinkConfig{}); err == nil {
		t.Error("zero bandwidth allowed")
	}
	if a.Up() != true || c.Up() != false {
		t.Error("Up() wrong")
	}
}
