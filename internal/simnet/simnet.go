// Package simnet models the physical network of the paper's evaluation
// setup (§4): a client machine connected to the server machine through a
// 1 Gb/s Ethernet link. It provides NICs bound to kernel devices (so driver
// reload at failover makes the NIC unavailable for the reload duration,
// §4.4), and point-to-point links with bandwidth, propagation latency, and
// a drop-tail queue.
package simnet

import (
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Packet is one frame on the wire. Payload is opaque to the network layer
// (the TCP stack puts its segments there); Size is the frame's bytes on the
// wire, used for serialization delay and accounting.
type Packet struct {
	SrcHost string
	DstHost string
	Size    int
	Payload any
}

// LinkStats counts traffic on one direction of a link.
type LinkStats struct {
	Packets int64
	Bytes   int64
	Drops   int64
}

// NIC is a network interface. Its availability follows its kernel device:
// while the device's driver is not loaded (e.g. during failover reload),
// received frames are dropped on the floor.
type NIC struct {
	host string
	dev  *kernel.Device
	link *Link
	end  int // which end of the link this NIC is
	rx   func(Packet)
}

// NewNIC creates a NIC for the given host name, backed by the given device.
// A nil device models an always-available interface (the client machine's
// NIC, which is outside the replicated system).
func NewNIC(host string, dev *kernel.Device) *NIC {
	return &NIC{host: host, dev: dev}
}

// Host returns the host name the NIC belongs to.
func (n *NIC) Host() string { return n.host }

// Device returns the kernel device backing the NIC, or nil.
func (n *NIC) Device() *kernel.Device { return n.dev }

// SetRx installs the receive handler (the network stack's entry point).
// Installing a handler replaces the previous one — exactly what happens
// when the failover kernel re-attaches the device to its own stack.
func (n *NIC) SetRx(fn func(Packet)) { n.rx = fn }

// Up reports whether the NIC can send and receive.
func (n *NIC) Up() bool {
	return n.link != nil && (n.dev == nil || n.dev.Loaded())
}

// Send transmits a packet. Frames sent while the NIC is down are dropped.
func (n *NIC) Send(p Packet) {
	if !n.Up() {
		if n.link != nil {
			n.link.dirs[n.end].stats.Drops++
		}
		return
	}
	p.SrcHost = n.host
	n.link.transmit(n.end, p)
}

func (n *NIC) receive(p Packet) {
	if !n.Up() || n.rx == nil {
		if n.link != nil {
			n.link.dirs[1-n.end].stats.Drops++
		}
		return
	}
	n.rx(p)
}

// direction is one direction of a full-duplex link.
type direction struct {
	nextFree sim.Time // when the transmitter finishes its current backlog
	stats    LinkStats
}

// Link is a full-duplex point-to-point link.
type Link struct {
	sim        *sim.Simulation
	nics       [2]*NIC
	bitsPerSec int64
	latency    time.Duration
	maxQueue   time.Duration // drop frames whose queueing delay would exceed this
	dirs       [2]*direction
}

// LinkConfig configures a link.
type LinkConfig struct {
	// BitsPerSec is the link bandwidth (1e9 for the paper's 1 Gb/s link).
	BitsPerSec int64
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// MaxQueue bounds the transmit queue in time; zero means 50 ms.
	MaxQueue time.Duration
}

// GigabitEthernet returns the paper's client-server link: 1 Gb/s with a
// typical LAN propagation delay.
func GigabitEthernet() LinkConfig {
	return LinkConfig{BitsPerSec: 1e9, Latency: 100 * time.Microsecond}
}

// LAN135us returns a link with the 135 us message propagation delay
// Guerraoui et al. measured in a LAN (§1), for the intra- versus
// inter-machine comparison benchmark.
func LAN135us() LinkConfig {
	return LinkConfig{BitsPerSec: 1e9, Latency: 135 * time.Microsecond}
}

// Connect wires two NICs with a link.
func Connect(s *sim.Simulation, a, b *NIC, cfg LinkConfig) (*Link, error) {
	if a.link != nil || b.link != nil {
		return nil, fmt.Errorf("simnet: NIC already connected")
	}
	if cfg.BitsPerSec <= 0 {
		return nil, fmt.Errorf("simnet: bad bandwidth %d", cfg.BitsPerSec)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 50 * time.Millisecond
	}
	l := &Link{
		sim:        s,
		nics:       [2]*NIC{a, b},
		bitsPerSec: cfg.BitsPerSec,
		latency:    cfg.Latency,
		maxQueue:   cfg.MaxQueue,
		dirs:       [2]*direction{{}, {}},
	}
	a.link, a.end = l, 0
	b.link, b.end = l, 1
	return l, nil
}

// Stats returns the traffic counters for the direction transmitted by the
// given end (0 or 1).
func (l *Link) Stats(end int) LinkStats { return l.dirs[end].stats }

func (l *Link) serialization(size int) time.Duration {
	return time.Duration(int64(size) * 8 * int64(time.Second) / l.bitsPerSec)
}

func (l *Link) transmit(end int, p Packet) {
	d := l.dirs[end]
	now := l.sim.Now()
	start := now
	if d.nextFree > start {
		start = d.nextFree
	}
	if start.Sub(now) > l.maxQueue {
		d.stats.Drops++
		return
	}
	txDone := start.Add(l.serialization(p.Size))
	d.nextFree = txDone
	d.stats.Packets++
	d.stats.Bytes += int64(p.Size)
	dst := l.nics[1-end]
	l.sim.ScheduleAt(txDone.Add(l.latency), func() { dst.receive(p) })
}
