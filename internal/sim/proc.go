package sim

import (
	"fmt"
	"runtime/debug"
	"time"
)

// killedPanic unwinds a process goroutine after Kill. It is recovered by the
// process wrapper and never escapes the package.
type killedPanic struct{}

// procPanic wraps a real panic raised inside a process so the scheduler can
// re-panic with context about which process failed.
type procPanic struct {
	proc  string
	value any
	stack []byte
}

func (p procPanic) String() string {
	return fmt.Sprintf("sim: process %q panicked: %v\n%s", p.proc, p.value, p.stack)
}

// Proc is a simulated process: a goroutine that runs under the simulation
// scheduler. At most one Proc executes at any moment; a Proc advances virtual
// time only by blocking (Sleep, WaitQueue.Wait, ...). All Proc methods must
// be called from the Proc's own goroutine unless documented otherwise.
type Proc struct {
	sim      *Simulation
	group    *Group
	name     string
	resume   chan struct{}
	killed   bool
	finished bool

	// unblock, when non-nil, makes a blocked process runnable immediately:
	// it removes the process from whatever structure it is parked on and
	// schedules a resume. It is used by Kill to unwind blocked processes.
	unblock func()
}

// Spawn starts fn as a new simulated process that begins running at the
// current virtual time. It may be called from the scheduler (inside an
// event callback) or from another process.
func (s *Simulation) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAfter(name, 0, fn)
}

// SpawnAfter starts fn as a new simulated process that begins running after
// delay d.
func (s *Simulation) SpawnAfter(name string, d time.Duration, fn func(p *Proc)) *Proc {
	p := &Proc{
		sim:    s,
		name:   name,
		resume: make(chan struct{}),
	}
	s.liveProc++
	go p.main(fn)
	p.makeRunnable(d)
	return p
}

func (p *Proc) main(fn func(p *Proc)) {
	<-p.resume
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			if _, ok := r.(killedPanic); ok {
				return
			}
			p.sim.failure = procPanic{proc: p.name, value: r, stack: debug.Stack()}.String()
		}()
		if !p.killed {
			fn(p)
		}
	}()
	p.finished = true
	p.sim.liveProc--
	if p.group != nil {
		p.group.procDone(p)
	}
	p.sim.yield <- struct{}{}
}

// Sim returns the simulation the process belongs to.
func (p *Proc) Sim() *Simulation { return p.sim }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Killed reports whether the process (or its group) has been killed. A
// running process observes this before it unwinds at its next block point.
func (p *Proc) Killed() bool { return p.killed }

// Finished reports whether the process function has returned or unwound.
func (p *Proc) Finished() bool { return p.finished }

// yield transfers control back to the scheduler and blocks until the process
// is resumed. If the process was killed in the meantime it unwinds.
func (p *Proc) yield() {
	p.sim.yield <- struct{}{}
	<-p.resume
	if p.killed {
		panic(killedPanic{})
	}
}

// makeRunnable schedules the process to resume after delay d and clears its
// blocked state. Called from scheduler or another process context.
func (p *Proc) makeRunnable(d time.Duration) {
	p.unblock = nil
	p.sim.Schedule(d, func() {
		if p.finished {
			return
		}
		p.sim.switchTo(p)
	})
}

// park blocks the process. unblock must make the process runnable again and
// is invoked by Kill if the process is killed while parked.
func (p *Proc) park(unblock func()) {
	p.unblock = unblock
	p.yield()
}

// Sleep blocks the process for duration d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative sleep %v in process %q", d, p.name))
	}
	done := false
	e := p.sim.Schedule(d, func() {
		done = true
		p.sim.switchTo(p)
	})
	p.park(func() {
		if !done {
			e.Cancel()
			p.makeRunnable(0)
		}
	})
	p.unblock = nil
}

// Kill marks the process as killed and, if it is parked, unparks it so the
// goroutine unwinds. A killed process stops at its next block point and
// never runs user code again. Kill may be called from the scheduler or from
// another process; killing the calling process takes effect at its next
// block point. Kill is idempotent.
func (p *Proc) Kill() {
	if p.killed || p.finished {
		return
	}
	p.killed = true
	if p.unblock != nil {
		ub := p.unblock
		p.unblock = nil
		ub()
	}
}

// Group is a named set of processes that can be killed together — the
// simulation analogue of halting a hardware partition. Spawning into a
// killed group yields a process that unwinds before running.
type Group struct {
	sim    *Simulation
	name   string
	killed bool
	procs  []*Proc // live procs in spawn order, for deterministic kill order
}

// NewGroup returns an empty process group.
func (s *Simulation) NewGroup(name string) *Group {
	return &Group{sim: s, name: name}
}

// Name returns the group name.
func (g *Group) Name() string { return g.name }

// Killed reports whether the group has been killed.
func (g *Group) Killed() bool { return g.killed }

// Live reports the number of unfinished processes in the group.
func (g *Group) Live() int { return len(g.procs) }

// Spawn starts a process that belongs to the group.
func (g *Group) Spawn(name string, fn func(p *Proc)) *Proc {
	return g.SpawnAfter(name, 0, fn)
}

// SpawnAfter starts a process in the group after delay d.
func (g *Group) SpawnAfter(name string, d time.Duration, fn func(p *Proc)) *Proc {
	p := g.sim.SpawnAfter(name, d, fn)
	p.group = g
	if g.killed {
		p.Kill()
		return p
	}
	g.procs = append(g.procs, p)
	return p
}

// Kill kills every live process in the group, in spawn order, and marks the
// group so future spawns die immediately. It is idempotent.
func (g *Group) Kill() {
	if g.killed {
		return
	}
	g.killed = true
	procs := g.procs
	g.procs = nil
	for _, p := range procs {
		p.Kill()
	}
}

func (g *Group) procDone(p *Proc) {
	for i, q := range g.procs {
		if q == p {
			g.procs = append(g.procs[:i], g.procs[i+1:]...)
			return
		}
	}
}
