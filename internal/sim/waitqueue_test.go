package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestWaitQueueFIFO(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	var woken []int
	for i := 0; i < 4; i++ {
		i := i
		s.SpawnAfter("waiter", time.Duration(i)*time.Millisecond, func(p *Proc) {
			q.Wait(p)
			woken = append(woken, i)
		})
	}
	s.Schedule(10*time.Millisecond, func() {
		for q.WakeOne(0) != nil {
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range woken {
		if v != i {
			t.Fatalf("wake order %v, want FIFO", woken)
		}
	}
}

func TestWaitTimeout(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	var timedOut, wokenAt Time
	var wokenOK bool
	s.Spawn("timeout", func(p *Proc) {
		if q.WaitTimeout(p, 5*time.Millisecond) {
			t.Error("WaitTimeout reported woken, want timeout")
		}
		timedOut = p.Now()
	})
	s.Spawn("woken", func(p *Proc) {
		wokenOK = q.WaitTimeout(p, time.Hour)
		wokenAt = p.Now()
	})
	s.Schedule(8*time.Millisecond, func() { q.WakeOne(0) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if timedOut != Time(5*time.Millisecond) {
		t.Errorf("timed out at %v, want 5ms", timedOut)
	}
	if !wokenOK || wokenAt != Time(8*time.Millisecond) {
		t.Errorf("woken=%v at %v, want woken at 8ms", wokenOK, wokenAt)
	}
	if s.Pending() != 0 {
		t.Errorf("%d events still pending (leaked timer?)", s.Pending())
	}
}

func TestWakeDelay(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	var wokeAt Time
	s.Spawn("w", func(p *Proc) {
		q.Wait(p)
		wokeAt = p.Now()
	})
	s.Schedule(time.Millisecond, func() { q.WakeOne(3 * time.Millisecond) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wokeAt != Time(4*time.Millisecond) {
		t.Errorf("woke at %v, want 4ms (1ms wake + 3ms delay)", wokeAt)
	}
}

func TestWakeAll(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	woken := 0
	for i := 0; i < 7; i++ {
		s.Spawn("w", func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	s.Schedule(time.Millisecond, func() {
		if n := q.WakeAll(0); n != 7 {
			t.Errorf("WakeAll woke %d, want 7", n)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if woken != 7 {
		t.Errorf("%d procs resumed, want 7", woken)
	}
}

func TestWakeOneEmptyQueue(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	if p := q.WakeOne(0); p != nil {
		t.Errorf("WakeOne on empty queue = %v, want nil", p)
	}
}

// TestDeterminism runs a randomized workload twice with the same seed and
// requires the full context-switch traces to be identical.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		s := New(seed)
		var trace []string
		s.OnSwitch = func(at Time, name string) {
			trace = append(trace, at.String()+"/"+name)
		}
		q := NewWaitQueue(s)
		for i := 0; i < 8; i++ {
			name := string(rune('a' + i))
			s.Spawn(name, func(p *Proc) {
				for j := 0; j < 20; j++ {
					switch p.Sim().Rand().Intn(3) {
					case 0:
						p.Sleep(time.Duration(p.Sim().Rand().Intn(1000)) * time.Microsecond)
					case 1:
						if q.Len() > 0 {
							q.WakeOne(time.Duration(p.Sim().Rand().Intn(100)) * time.Microsecond)
						}
						p.Sleep(time.Microsecond)
					case 2:
						q.WaitTimeout(p, time.Duration(p.Sim().Rand().Intn(2000))*time.Microsecond)
					}
				}
			})
		}
		s.Schedule(time.Second, func() { q.WakeAll(0) })
		if err := s.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return trace
	}
	for seed := int64(1); seed <= 5; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: trace lengths differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: traces diverge at %d: %q vs %q", seed, i, a[i], b[i])
			}
		}
	}
}

// TestWaitQueueQuick property-tests that with random wait/wake sequences the
// queue never loses or duplicates a waiter: every spawned waiter is woken
// exactly once (by wake or timeout) once enough wakes are issued.
func TestWaitQueueQuick(t *testing.T) {
	f := func(seed int64, nWaiters uint8) bool {
		n := int(nWaiters%16) + 1
		s := New(seed)
		q := NewWaitQueue(s)
		resumed := make(map[int]int)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			i := i
			d := time.Duration(rng.Intn(5000)) * time.Microsecond
			s.SpawnAfter("w", d, func(p *Proc) {
				if rng.Intn(2) == 0 {
					q.Wait(p)
				} else {
					q.WaitTimeout(p, time.Duration(rng.Intn(10000))*time.Microsecond)
				}
				resumed[i]++
			})
		}
		// Issue generous wake-ups so nothing is parked forever.
		for i := 0; i < 2*n; i++ {
			s.Schedule(time.Duration(6000+i*100)*time.Microsecond, func() { q.WakeOne(0) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		if len(resumed) != n {
			return false
		}
		for _, c := range resumed {
			if c != 1 {
				return false
			}
		}
		return s.Live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
