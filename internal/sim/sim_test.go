package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	s.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	s.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events fired in order %v, want %v", got, want)
		}
	}
	if s.Now() != Time(3*time.Millisecond) {
		t.Errorf("Now() = %v, want 3ms", s.Now())
	}
}

func TestScheduleTieBrokenByInsertion(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tied events fired in order %v, want insertion order", got)
		}
	}
}

func TestEventCancel(t *testing.T) {
	s := New(1)
	fired := false
	e := s.Schedule(time.Millisecond, func() { fired = true })
	s.Schedule(time.Microsecond, func() { e.Cancel() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New(1)
	s.Schedule(time.Millisecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.ScheduleAt(0, func() {})
	})
	defer func() { recover() }() // the proc-panic propagates out of Run
	_ = s.Run()
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond} {
		d := d
		s.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := s.RunUntil(Time(3 * time.Millisecond)); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != Time(3*time.Millisecond) {
		t.Errorf("Now() = %v, want 3ms", s.Now())
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events after Run, want 3", len(fired))
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	var tick func()
	tick = func() {
		n++
		if n == 5 {
			s.Stop()
			return
		}
		s.Schedule(time.Millisecond, tick)
	}
	s.Schedule(time.Millisecond, tick)
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if n != 5 {
		t.Errorf("ticked %d times, want 5", n)
	}
}

func TestProcSleepAdvancesTime(t *testing.T) {
	s := New(1)
	var wake Time
	s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		wake = p.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if wake != Time(10*time.Millisecond) {
		t.Errorf("woke at %v, want 10ms", wake)
	}
	if s.Live() != 0 {
		t.Errorf("Live() = %d, want 0", s.Live())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	s := New(1)
	var got []string
	for _, name := range []string{"a", "b"} {
		name := name
		s.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				got = append(got, name)
				p.Sleep(time.Millisecond)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleaving %v, want %v", got, want)
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	s := New(1)
	s.Spawn("bad", func(p *Proc) {
		panic("boom")
	})
	defer func() {
		if recover() == nil {
			t.Error("proc panic did not propagate out of Run")
		}
	}()
	_ = s.Run()
}

func TestKillParkedProc(t *testing.T) {
	s := New(1)
	q := NewWaitQueue(s)
	reached := false
	p := s.Spawn("victim", func(p *Proc) {
		q.Wait(p)
		reached = true
	})
	s.Schedule(time.Millisecond, func() { p.Kill() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if reached {
		t.Error("killed proc continued past its block point")
	}
	if !p.Finished() {
		t.Error("killed proc did not finish")
	}
	if q.Len() != 0 {
		t.Errorf("queue still has %d waiters", q.Len())
	}
}

func TestKillSleepingProc(t *testing.T) {
	s := New(1)
	reached := false
	p := s.Spawn("sleeper", func(p *Proc) {
		p.Sleep(time.Hour)
		reached = true
	})
	s.Schedule(time.Millisecond, func() { p.Kill() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if reached {
		t.Error("killed sleeper woke up")
	}
	if s.Now() >= Time(time.Hour) {
		t.Errorf("simulation ran to %v; kill should have cancelled the sleep", s.Now())
	}
}

func TestKillSelfTakesEffectAtBlockPoint(t *testing.T) {
	s := New(1)
	var steps int
	var p *Proc
	p = s.Spawn("suicidal", func(q *Proc) {
		steps++
		p.Kill()
		steps++ // still runs: kill lands at next block point
		q.Sleep(time.Millisecond)
		steps++ // must not run
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if steps != 2 {
		t.Errorf("steps = %d, want 2", steps)
	}
}

func TestGroupKill(t *testing.T) {
	s := New(1)
	g := s.NewGroup("partition0")
	survived := 0
	for i := 0; i < 5; i++ {
		g.Spawn("worker", func(p *Proc) {
			p.Sleep(time.Hour)
			survived++
		})
	}
	other := s.Spawn("other", func(p *Proc) {
		p.Sleep(2 * time.Millisecond)
	})
	s.Schedule(time.Millisecond, func() { g.Kill() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if survived != 0 {
		t.Errorf("%d group procs survived kill", survived)
	}
	if !other.Finished() {
		t.Error("non-group proc was affected by group kill")
	}
	if g.Live() != 0 {
		t.Errorf("group Live() = %d, want 0", g.Live())
	}
}

func TestSpawnIntoKilledGroupDies(t *testing.T) {
	s := New(1)
	g := s.NewGroup("g")
	g.Kill()
	ran := false
	g.Spawn("late", func(p *Proc) { ran = true })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if ran {
		t.Error("proc spawned into killed group ran")
	}
}

func TestSpawnAfterDelay(t *testing.T) {
	s := New(1)
	var started Time
	s.SpawnAfter("late", 7*time.Millisecond, func(p *Proc) { started = p.Now() })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if started != Time(7*time.Millisecond) {
		t.Errorf("started at %v, want 7ms", started)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(time.Second)
	if got := tm.Add(time.Millisecond); got != Time(time.Second+time.Millisecond) {
		t.Errorf("Add: got %v", got)
	}
	if got := tm.Sub(Time(time.Millisecond)); got != time.Second-time.Millisecond {
		t.Errorf("Sub: got %v", got)
	}
	if got := tm.Seconds(); got != 1.0 {
		t.Errorf("Seconds: got %v", got)
	}
}
