// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine provides a virtual clock, a time-ordered event queue, and
// goroutine-backed simulated processes (Proc). At most one process runs at a
// time and all ties are broken by insertion order, so a simulation is fully
// deterministic for a given seed: running it twice produces the identical
// sequence of events, context switches, and random numbers.
//
// Everything else in this repository — the simulated hardware, the kernels,
// the replication protocol, and the benchmark workloads — is built on this
// package.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant in virtual time, expressed in nanoseconds since the
// start of the simulation.
type Time int64

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration between t and earlier instant u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Duration converts t to the duration elapsed since the simulation started.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t as floating-point seconds since the simulation started.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return time.Duration(t).String() }

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped or cancelled-and-removed
}

// At reports the virtual time at which the event fires.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that already
// fired or was already cancelled is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// ErrStopped is returned by Run when the simulation was halted by Stop.
var ErrStopped = errors.New("sim: stopped")

// Simulation owns the virtual clock, the event queue, and all processes.
// A Simulation must be created with New and is not safe for concurrent use;
// it is driven from a single goroutine by Run or RunUntil.
type Simulation struct {
	now      Time
	events   eventHeap
	seq      uint64
	rng      *rand.Rand
	yield    chan struct{}
	current  *Proc
	stopped  bool
	failure  any // panic value propagated from a proc
	liveProc int

	// OnSwitch, if non-nil, is invoked on every context switch to a process
	// with the current virtual time and the process name. It exists so tests
	// can record and compare full execution traces.
	OnSwitch func(Time, string)
}

// New returns a simulation whose random source is seeded with seed.
func New(seed int64) *Simulation {
	return &Simulation{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
	}
}

// Now reports the current virtual time.
func (s *Simulation) Now() Time { return s.now }

// Rand returns the simulation's deterministic random source.
func (s *Simulation) Rand() *rand.Rand { return s.rng }

// Pending reports the number of scheduled (uncancelled) events.
func (s *Simulation) Pending() int {
	n := 0
	for _, e := range s.events {
		if !e.cancelled {
			n++
		}
	}
	return n
}

// Live reports the number of processes that have been spawned and have not
// yet finished.
func (s *Simulation) Live() int { return s.liveProc }

// Schedule arranges for fn to run at virtual time now+d on the scheduler
// goroutine. It must not block; to do blocking work, spawn a Proc instead.
func (s *Simulation) Schedule(d time.Duration, fn func()) *Event {
	return s.ScheduleAt(s.now.Add(d), fn)
}

// ScheduleAt is like Schedule but takes an absolute instant. Scheduling in
// the past panics: it would violate causality.
func (s *Simulation) ScheduleAt(at Time, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("sim: event scheduled in the past: at=%v now=%v", at, s.now))
	}
	s.seq++
	e := &Event{at: at, seq: s.seq, fn: fn}
	heap.Push(&s.events, e)
	return e
}

// Stop halts the simulation: Run returns ErrStopped once the currently
// running process blocks or finishes.
func (s *Simulation) Stop() { s.stopped = true }

// Run processes events until the event queue is empty, Stop is called, or a
// process panics (in which case Run re-panics with the original value and a
// note naming the process). Processes blocked on wait queues with no pending
// wake-up are left parked; callers can detect that via Live.
func (s *Simulation) Run() error {
	return s.run(func() bool { return false })
}

// RunUntil processes events with firing time <= t, then advances the clock
// to exactly t and returns. Events scheduled after t remain pending.
func (s *Simulation) RunUntil(t Time) error {
	err := s.run(func() bool { return len(s.events) > 0 && s.events[0].at > t })
	if err == nil && s.now < t && !s.stopped {
		s.now = t
	}
	return err
}

// RunFor is shorthand for RunUntil(Now()+d).
func (s *Simulation) RunFor(d time.Duration) error { return s.RunUntil(s.now.Add(d)) }

func (s *Simulation) run(stop func() bool) error {
	for len(s.events) > 0 {
		if s.stopped {
			return ErrStopped
		}
		if stop() {
			return nil
		}
		e := heap.Pop(&s.events).(*Event)
		if e.cancelled {
			continue
		}
		if e.at < s.now {
			panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", e.at, s.now))
		}
		s.now = e.at
		e.fn()
		if s.failure != nil {
			f := s.failure
			s.failure = nil
			panic(f)
		}
	}
	if s.stopped {
		return ErrStopped
	}
	return nil
}

// switchTo transfers control to p and waits for it to block or finish.
// It must only be called from the scheduler goroutine (inside an event).
func (s *Simulation) switchTo(p *Proc) {
	prev := s.current
	s.current = p
	if s.OnSwitch != nil {
		s.OnSwitch(s.now, p.name)
	}
	p.resume <- struct{}{}
	<-s.yield
	s.current = prev
}
