package sim

import "time"

// waiter tracks one parked process on a WaitQueue, together with its
// optional timeout timer.
type waiter struct {
	p        *Proc
	timer    *Event
	timedOut bool
}

// WaitQueue is a FIFO queue of parked processes — the simulation analogue of
// a kernel wait queue. Wake-ups can carry a delay, which models the cost of
// wake_up_process (scheduler latency, idle-state exit) without the waker
// having to block.
type WaitQueue struct {
	sim     *Simulation
	waiters []*waiter
}

// NewWaitQueue returns an empty wait queue.
func NewWaitQueue(s *Simulation) *WaitQueue {
	return &WaitQueue{sim: s}
}

// Len reports the number of parked processes.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait parks p until a WakeOne or WakeAll releases it.
func (q *WaitQueue) Wait(p *Proc) {
	q.wait(p, -1)
}

// WaitTimeout parks p until it is woken or until d elapses. It reports true
// if the process was woken and false if the wait timed out.
func (q *WaitQueue) WaitTimeout(p *Proc, d time.Duration) bool {
	w := q.wait(p, d)
	return !w.timedOut
}

func (q *WaitQueue) wait(p *Proc, d time.Duration) *waiter {
	w := &waiter{p: p}
	if d >= 0 {
		w.timer = q.sim.Schedule(d, func() {
			if !q.remove(w) {
				return
			}
			w.timedOut = true
			p.makeRunnable(0)
		})
	}
	q.waiters = append(q.waiters, w)
	p.park(func() {
		// Killed while parked: leave the queue and cancel the timer so the
		// goroutine can unwind.
		q.remove(w)
		if w.timer != nil {
			w.timer.Cancel()
		}
		p.makeRunnable(0)
	})
	return w
}

// WakeOne releases the longest-waiting process, scheduling it to resume
// after delay. It returns the woken process, or nil if the queue was empty.
func (q *WaitQueue) WakeOne(delay time.Duration) *Proc {
	if len(q.waiters) == 0 {
		return nil
	}
	w := q.waiters[0]
	q.waiters = q.waiters[1:]
	q.release(w, delay)
	return w.p
}

// WakeIndex releases the i-th parked process (0 = longest waiting),
// scheduling it to resume after delay. It returns the woken process, or nil
// if fewer than i+1 processes are parked. It exists to model wake policies
// that are NOT first-in-first-out (e.g. the stock futex behaviour that the
// paper's FIFO modification replaces).
func (q *WaitQueue) WakeIndex(i int, delay time.Duration) *Proc {
	if i < 0 || i >= len(q.waiters) {
		return nil
	}
	w := q.waiters[i]
	q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
	q.release(w, delay)
	return w.p
}

// WakeAll releases every parked process, each scheduled to resume after
// delay, in FIFO order. It reports how many processes were woken.
func (q *WaitQueue) WakeAll(delay time.Duration) int {
	ws := q.waiters
	q.waiters = nil
	for _, w := range ws {
		q.release(w, delay)
	}
	return len(ws)
}

func (q *WaitQueue) release(w *waiter, delay time.Duration) {
	if w.timer != nil {
		w.timer.Cancel()
	}
	w.p.makeRunnable(delay)
}

// remove deletes w from the queue, reporting whether it was present.
func (q *WaitQueue) remove(w *waiter) bool {
	for i, x := range q.waiters {
		if x == w {
			q.waiters = append(q.waiters[:i], q.waiters[i+1:]...)
			return true
		}
	}
	return false
}
