package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// exportTracer drives a small mixed-kind scenario — det identity,
// notes, ring samples, several scopes — and returns the tracer with its
// retained stream.
func exportTracer(t *testing.T) *obs.Tracer {
	t.Helper()
	s := sim.New(7)
	tr := obs.New(s, obs.Config{Trace: true})
	p := tr.Scope("primary/ftns")
	log := tr.Scope("shm/ftns.log")
	for i := 0; i < 6; i++ {
		seq := int64(i)
		s.Schedule(time.Duration(100+17*i)*time.Microsecond, func() {
			p.EmitDet(obs.TupleEmit, 1, seq, 8, uint64(40+seq), seq)
			log.Emit(obs.RingDepth, 0, 0, 64*(seq+1))
			if seq%2 == 0 {
				p.EmitNote(obs.BatchFlush, 1, seq, 3, "deadline")
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestJSONLParseBackFidelity writes the stream with WriteJSONL, parses
// it back with ReadJSONL, and requires the round trip to be lossless:
// same count, same order, and every field — virtual timestamp, det
// identity, note — byte-for-byte equal.
func TestJSONLParseBackFidelity(t *testing.T) {
	tr := exportTracer(t)
	orig := tr.Events()
	if len(orig) == 0 {
		t.Fatal("scenario retained no events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := obs.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("parse-back has %d events, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i] != orig[i] {
			t.Fatalf("event %d round-trip mismatch:\n got %+v\nwant %+v", i, got[i], orig[i])
		}
		if i > 0 && got[i].Order <= got[i-1].Order {
			t.Fatalf("event %d order %d not after %d", i, got[i].Order, got[i-1].Order)
		}
	}
}

// TestReadJSONLSkipsBlankAndReportsLine pins the ingestion contract:
// blank lines are skipped, a malformed line aborts with its number.
func TestReadJSONLSkipsBlankAndReportsLine(t *testing.T) {
	in := `{"order":1,"at":5,"scope":"x","kind":"tuple-emit"}

{"order":2,"at":9,"scope":"x","kind":"ack"}
`
	events, err := obs.ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].At != 5 || events[1].Kind != obs.AckSend {
		t.Fatalf("parsed %+v", events)
	}
	_, err = obs.ReadJSONL(strings.NewReader(in + "not json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("malformed line error = %v, want line 4", err)
	}
}

// TestChromeTraceParseBack parses the Chrome trace back out and checks
// the export against the retained stream: one metadata row per scope,
// one trace event per stream event, non-decreasing timestamps, and
// exact microsecond.nanosecond fidelity on every ts.
func TestChromeTraceParseBack(t *testing.T) {
	tr := exportTracer(t)
	orig := tr.Events()
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			TS   json.RawMessage `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace does not parse: %v", err)
	}
	var meta int
	var rows []string
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			meta++
			continue
		}
		rows = append(rows, string(e.TS))
	}
	if meta != 2 {
		t.Errorf("metadata rows = %d, want one per scope (2)", meta)
	}
	if len(rows) != len(orig) {
		t.Fatalf("trace rows = %d, want %d (one per event)", len(rows), len(orig))
	}
	last := -1.0
	for i, ts := range rows {
		// ts is rendered as exact microseconds with a 3-digit
		// nanosecond fraction; reconstruct and compare to the event.
		f, err := strconv.ParseFloat(ts, 64)
		if err != nil {
			t.Fatalf("row %d ts %q: %v", i, ts, err)
		}
		if f < last {
			t.Fatalf("row %d ts %s goes backwards", i, ts)
		}
		last = f
		want := fmt.Sprintf("%d.%03d", int64(orig[i].At)/1000, int64(orig[i].At)%1000)
		if ts != want {
			t.Errorf("row %d ts = %s, want %s (exact virtual time)", i, ts, want)
		}
	}
}

// TestQuantileBucketBoundaries pins the estimator's contract at exact
// power-of-two boundaries: the answer is the containing bucket's upper
// bound, clamped to the observed max, and never below for the top
// quantile.
func TestQuantileBucketBoundaries(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("b", "ns")
	// 2^k lands in bucket [2^k, 2^(k+1)) whose upper bound is
	// 2^(k+1)-1; with max == 2^k the clamp returns the exact value.
	for _, v := range []int64{1, 2, 4, 8} {
		h.Observe(v)
	}
	if q := h.Quantile(0.25); q != 1 {
		t.Errorf("p25 = %d, want 1 (bucket [1,2) upper bound)", q)
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("p50 = %d, want 3 (bucket [2,4) upper bound)", q)
	}
	if q := h.Quantile(1); q != 8 {
		t.Errorf("p100 = %d, want 8 (upper bound 15 clamped to max)", q)
	}
}

// TestQuantileClampsAndEdges covers the remaining edges: empty
// histograms, tiny quantiles ranking to the first observation, negative
// observations clamping to zero, and the max clamp when one bucket
// holds everything.
func TestQuantileClampsAndEdges(t *testing.T) {
	reg := obs.NewRegistry()
	empty := reg.Histogram("empty", "ns")
	for _, q := range []float64{0.001, 0.5, 1} {
		if v := empty.Quantile(q); v != 0 {
			t.Errorf("empty Quantile(%g) = %d, want 0", q, v)
		}
	}

	neg := reg.Histogram("neg", "ns")
	neg.Observe(-50)
	if neg.Quantile(1) != 0 {
		t.Error("negative observation did not clamp to 0")
	}
	var snap obs.HistogramSnap
	var ok bool
	if snap, ok = reg.Snapshot().Histogram("neg"); !ok || snap.Min != 0 || snap.Max != 0 {
		t.Errorf("neg snapshot = %+v,%v; want min=max=0", snap, ok)
	}

	one := reg.Histogram("one", "ns")
	one.Observe(700) // bucket [512,1024): upper 1023, clamped to max 700
	for _, q := range []float64{0.0001, 0.5, 1} {
		if v := one.Quantile(q); v != 700 {
			t.Errorf("single-value Quantile(%g) = %d, want 700 (max clamp)", q, v)
		}
	}

	big := reg.Histogram("big", "ns")
	big.Observe(int64(1) << 62) // top usable bucket: estimator must return exact max
	if v := big.Quantile(0.5); v != int64(1)<<62 {
		t.Errorf("top-bucket quantile = %d, want 2^62 (exact max, no overflow)", v)
	}
}

// TestSnapshotHistogramMissing pins the lookup contract for names that
// were never registered: ok=false and a zero summary.
func TestSnapshotHistogramMissing(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Histogram("present", "ns").Observe(4)
	s := reg.Snapshot()
	if _, ok := s.Histogram("present"); !ok {
		t.Fatal("registered histogram not found in snapshot")
	}
	snap, ok := s.Histogram("absent")
	if ok {
		t.Error("missing histogram reported ok=true")
	}
	if snap != (obs.HistogramSnap{}) {
		t.Errorf("missing histogram snap = %+v, want zero", snap)
	}
	if _, ok := (obs.Snapshot{}).Histogram("anything"); ok {
		t.Error("zero snapshot reported a histogram")
	}
}
