package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// FlightDump is a forensic snapshot taken at a moment of interest —
// core captures one automatically when failover begins — merging every
// scope's recent-event ring into one timeline plus a metrics snapshot.
// It answers the questions a failover post-mortem asks: what was the
// last acked tuple, what batch was in flight, how far behind was the
// replay head, and what did the detector see before it fired.
type FlightDump struct {
	At      sim.Time `json:"at"` // virtual time of the dump, ns
	Events  []Event  `json:"events"`
	Metrics Snapshot `json:"metrics"`
	// Diagnosis is an optional pre-triage report appended by the causal
	// layer at failover: the first recorded-but-unreplayed tuple and its
	// causal slice, so a chaos-test failure arrives already pointed at
	// the divergence (filled by core via causal.ReplayDiff).
	Diagnosis string `json:"diagnosis,omitempty"`
}

// FlightDump merges the flight rings of every scope, ordered by global
// emission order, and samples the metrics registry. Nil tracers yield
// nil — callers print nothing.
func (t *Tracer) FlightDump() *FlightDump {
	if t == nil {
		return nil
	}
	d := &FlightDump{At: t.sim.Now(), Metrics: t.reg.Snapshot()}
	for _, sc := range t.scopes {
		d.Events = append(d.Events, sc.Recent()...)
	}
	sort.Slice(d.Events, func(i, j int) bool { return d.Events[i].Order < d.Events[j].Order })
	return d
}

// LastEvent returns the most recent event of the given kind in the
// dump, reporting whether one exists.
func (d *FlightDump) LastEvent(k Kind) (Event, bool) {
	if d == nil {
		return Event{}, false
	}
	for i := len(d.Events) - 1; i >= 0; i-- {
		if d.Events[i].Kind == k {
			return d.Events[i], true
		}
	}
	return Event{}, false
}

// Tail returns a copy of the dump truncated to its last n events, with
// the timestamp and metrics retained — for console printing, where the
// full merged ring set is too long. The full dump stays available for
// JSON export.
func (d *FlightDump) Tail(n int) *FlightDump {
	if d == nil || len(d.Events) <= n {
		return d
	}
	t := *d
	t.Events = d.Events[len(d.Events)-n:]
	return &t
}

// WriteText renders the dump as a human-readable timeline: one line per
// event plus the sampled gauges — the forensic record a failover run
// prints instead of just a wall-clock number.
func (d *FlightDump) WriteText(w io.Writer) {
	if d == nil {
		return
	}
	fmt.Fprintf(w, "=== flight recorder dump @ t=%dns ===\n", d.At)
	for _, e := range d.Events {
		fmt.Fprintf(w, "  t=%-14d %-22s %-15s", int64(e.At), e.Scope, e.Kind)
		if e.TID != 0 {
			fmt.Fprintf(w, " tid=%d", e.TID)
		}
		if e.Seq != 0 {
			fmt.Fprintf(w, " seq=%d", e.Seq)
		}
		if e.Arg != 0 {
			fmt.Fprintf(w, " arg=%d", e.Arg)
		}
		if e.Note != "" {
			fmt.Fprintf(w, " %s", e.Note)
		}
		fmt.Fprintln(w)
	}
	if len(d.Metrics.Gauges) > 0 {
		fmt.Fprintln(w, "  -- gauges at dump --")
		for _, g := range d.Metrics.Gauges {
			fmt.Fprintf(w, "  %-34s %d\n", g.Name, g.Value)
		}
	}
	for _, h := range d.Metrics.Histograms {
		fmt.Fprintf(w, "  %-34s n=%d p50=%d p99=%d max=%d %s\n",
			h.Name, h.Count, h.P50, h.P99, h.Max, h.Unit)
	}
	if d.Diagnosis != "" {
		fmt.Fprintln(w, "  -- divergence diagnosis --")
		fmt.Fprint(w, d.Diagnosis)
		if !strings.HasSuffix(d.Diagnosis, "\n") {
			fmt.Fprintln(w)
		}
	}
}
