package causal

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// ev builds one event; tests construct synthetic streams with known
// causal structure and assert the graph recovers it exactly.
func ev(order uint64, at int64, scope string, k obs.Kind, tid int32, seq, arg int64, obj uint64, oseq int64) obs.Event {
	return obs.Event{Order: order, At: sim.Time(at), Scope: scope, Kind: k, TID: tid, Seq: seq, Arg: arg, Obj: obj, OSeq: oseq}
}

// pipelineTrace is one tuple's full lifecycle across recorder, ring, and
// replayer, ending in an output-commit stall release:
//
//	0 det-enter   primary/ftns  tid=1 seq=0 arg=1000 obj=7 oseq=0   (seq-wait 1µs)
//	1 tuple-emit  primary/ftns  tid=1 seq=0 arg=64   obj=7 oseq=0   t=100
//	2 det-exit    primary/ftns  tid=1 seq=0          obj=7 oseq=0
//	3 output-held primary/ftns  seq=1                               t=150
//	4 batch-flush primary/ftns  seq=1 arg=1                         t=200
//	5 span-commit shm/ftns.log  seq=1 arg=1                         t=200
//	6 deliver     shm/ftns.log  seq=1 arg=1                         t=900
//	7 replay      secondary/ftns tid=1 seq=0 arg=500 obj=7 oseq=0   t=950
//	8 ack         secondary/ftns seq=1                              t=960
//	9 output-released primary/ftns seq=1 arg=850                    t=1000
func pipelineTrace() []obs.Event {
	return []obs.Event{
		ev(1, 50, "primary/ftns", obs.DetEnter, 1, 0, 1000, 7, 0),
		ev(2, 100, "primary/ftns", obs.TupleEmit, 1, 0, 64, 7, 0),
		ev(3, 110, "primary/ftns", obs.DetExit, 1, 0, 0, 7, 0),
		ev(4, 150, "primary/ftns", obs.OutputHeld, 0, 1, 0, 0, 0),
		ev(5, 200, "primary/ftns", obs.BatchFlush, 0, 1, 1, 0, 0),
		ev(6, 200, "shm/ftns.log", obs.SpanCommit, 0, 1, 1, 0, 0),
		ev(7, 900, "shm/ftns.log", obs.RingDeliver, 0, 1, 1, 0, 0),
		ev(8, 950, "secondary/ftns", obs.Replay, 1, 0, 500, 7, 0),
		ev(9, 960, "secondary/ftns", obs.AckSend, 0, 1, 0, 0, 0),
		ev(10, 1000, "primary/ftns", obs.OutputReleased, 0, 1, 850, 0, 0),
	}
}

func parentsOf(g *Graph, i int) map[int]bool {
	m := make(map[int]bool)
	for _, p := range g.Parents(i) {
		m[p] = true
	}
	return m
}

func TestBuildEdges(t *testing.T) {
	g := Build(pipelineTrace())

	// Record→replay: TupleEmit(7,0) at index 1 precedes Replay(7,0) at 7.
	if !parentsOf(g, 7)[1] {
		t.Errorf("replay grant missing record→replay edge; parents=%v", g.Parents(7))
	}
	// Tuple→flush: emit (1) precedes the batch flush (4).
	if !parentsOf(g, 4)[1] {
		t.Errorf("batch flush missing tuple→flush edge; parents=%v", g.Parents(4))
	}
	// Flush→deliver on the paired ring: flush (4) precedes deliver (6).
	if !parentsOf(g, 6)[4] {
		t.Errorf("deliver missing flush→deliver edge; parents=%v", g.Parents(6))
	}
	// Watermark edges into the release (9): held (3), deliver (6), ack (8).
	rel := parentsOf(g, 9)
	for _, want := range []int{3, 6, 8} {
		if !rel[want] {
			t.Errorf("release missing parent %d; parents=%v", want, g.Parents(9))
		}
	}
	// Lane order within the recorder scope: det-exit's parent is the emit.
	if !parentsOf(g, 2)[1] {
		t.Errorf("det-exit missing lane edge from emit; parents=%v", g.Parents(2))
	}
}

func TestPerObjectOrderEdges(t *testing.T) {
	// Two threads alternating on one object: the det order on obj 9 must
	// chain across the thread lanes.
	events := []obs.Event{
		ev(1, 10, "primary/ftns", obs.TupleEmit, 1, 0, 64, 9, 0),
		ev(2, 20, "primary/ftns", obs.TupleEmit, 2, 1, 64, 9, 1),
		ev(3, 30, "primary/ftns", obs.TupleEmit, 1, 2, 64, 9, 2),
	}
	g := Build(events)
	if !parentsOf(g, 1)[0] {
		t.Errorf("oseq=1 missing det-order edge from oseq=0; parents=%v", g.Parents(1))
	}
	if !parentsOf(g, 2)[1] {
		t.Errorf("oseq=2 missing det-order edge from oseq=1; parents=%v", g.Parents(2))
	}
}

func TestSliceContainsAncestryInOrder(t *testing.T) {
	events := pipelineTrace()
	g := Build(events)
	sl := g.Slice(9, 0) // the release
	if len(sl) == 0 {
		t.Fatal("slice is empty")
	}
	// Slice must include the release itself, its hold, and reach back to
	// the tuple emission through the watermark edges.
	want := map[obs.Kind]bool{obs.OutputReleased: false, obs.OutputHeld: false, obs.TupleEmit: false}
	last := uint64(0)
	for _, e := range sl {
		if e.Order <= last {
			t.Fatalf("slice not in emission order: %v", sl)
		}
		last = e.Order
		if _, ok := want[e.Kind]; ok {
			want[e.Kind] = true
		}
	}
	for k, seen := range want { // ftvet:nondet map-order only gates test failure text
		if !seen {
			t.Errorf("slice missing %v: %v", k, sl)
		}
	}
	// Cap respected.
	if got := g.Slice(9, 3); len(got) != 3 {
		t.Errorf("slice cap: got %d events, want 3", len(got))
	}
}

func TestAttributeStages(t *testing.T) {
	a := Attribute(Build(pipelineTrace()))
	if len(a.Outputs) != 1 {
		t.Fatalf("got %d outputs, want 1", len(a.Outputs))
	}
	o := a.Outputs[0]
	if !o.HasTuple || o.Tuple.Obj != 7 || o.Tuple.OSeq != 0 {
		t.Fatalf("wrong tuple ref: %+v", o.Tuple)
	}
	checks := map[Stage]int64{
		StageSeqWait:        1000, // DetEnter.Arg
		StageReplayGrant:    500,  // Replay.Arg
		StageRingReserve:    0,    // no blocked reservation in the trace
		StageBatchResidency: 100,  // flush@200 - emit@100
		StageTransfer:       700,  // deliver@900 - flush@200
		StageCommitWait:     850,  // OutputReleased.Arg
	}
	for st := Stage(0); st < NumStages; st++ {
		if o.Stages[st] != checks[st] {
			t.Errorf("stage %v = %d, want %d", st, o.Stages[st], checks[st])
		}
	}
	if o.Total() != 1000+500+100+700+850 {
		t.Errorf("total = %d", o.Total())
	}
	// Stage stats come from a single sample: p50 == max == the value.
	if a.Stages[StageTransfer].P50 != 700 || a.Stages[StageTransfer].MaxNs != 700 {
		t.Errorf("transfer stat: %+v", a.Stages[StageTransfer])
	}
}

func TestAttributeTextDeterministic(t *testing.T) {
	var b1, b2 bytes.Buffer
	Attribute(Build(pipelineTrace())).WriteText(&b1)
	Attribute(Build(pipelineTrace())).WriteText(&b2)
	if b1.String() != b2.String() {
		t.Fatal("attribution text differs across identical inputs")
	}
	if !strings.Contains(b1.String(), "commit-wait") {
		t.Fatalf("report missing stage table:\n%s", b1.String())
	}
}

func TestWriteCritPathValidJSON(t *testing.T) {
	var b bytes.Buffer
	if err := Attribute(Build(pipelineTrace())).WriteCritPath(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatalf("critpath track is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("critpath track is empty")
	}
}

// TestDiffPlantedDivergence plants a mutation at a known position and
// asserts the diff names the exact first divergent tuple — the acceptance
// criterion's automated check at the unit level.
func TestDiffPlantedDivergence(t *testing.T) {
	mk := func() []obs.Event {
		var out []obs.Event
		order := uint64(1)
		for i := 0; i < 8; i++ {
			obj := uint64(5 + i%2)
			oseq := int64(i / 2)
			out = append(out, ev(order, int64(100*i+10), "primary/ftns", obs.TupleEmit, int32(1+i%2), int64(i), 64, obj, oseq))
			order++
		}
		return out
	}
	a, b := mk(), mk()

	if d := DiffTraces(a, b); d != nil {
		t.Fatalf("identical traces diverge: %s", d.Summary())
	}

	// Plant: run b grants obj 6 a different section at aligned position 5.
	b[5].Obj = 11
	b[5].OSeq = 0
	d := DiffTraces(a, b)
	if d == nil {
		t.Fatal("planted divergence not found")
	}
	if d.Class != ClassTupleMismatch || d.Index != 5 {
		t.Fatalf("wrong divergence: class=%s index=%d", d.Class, d.Index)
	}
	if d.A.Obj != 6 || d.A.OSeq != 2 || d.B.Obj != 11 {
		t.Fatalf("wrong tuples: a=%+v b=%+v", d.A, d.B)
	}
	if len(d.Slice) == 0 {
		t.Fatal("divergence has an empty causal slice")
	}
	if !strings.Contains(d.Summary(), "#5") || !strings.Contains(d.Summary(), "obj=6 oseq=2") {
		t.Fatalf("summary does not name the tuple: %s", d.Summary())
	}
}

func TestDiffMissingSuffix(t *testing.T) {
	var full []obs.Event
	for i := 0; i < 6; i++ {
		full = append(full, ev(uint64(i+1), int64(100*i+10), "primary/ftns", obs.TupleEmit, 1, int64(i), 64, 7, int64(i)))
	}
	short := full[:4] // killed after the fourth recorded tuple
	d := DiffTraces(full, short)
	if d == nil {
		t.Fatal("prefix trace not diagnosed")
	}
	if d.Class != ClassMissingSuffix || d.B != nil || d.A == nil {
		t.Fatalf("wrong diagnosis: %+v", d)
	}
	if d.Index != 4 || d.A.Obj != 7 || d.A.OSeq != 4 {
		t.Fatalf("wrong frontier tuple: index=%d %+v", d.Index, d.A)
	}
	if len(d.Slice) == 0 {
		t.Fatal("empty slice")
	}
}

func TestReplayDiffFrontier(t *testing.T) {
	// Recorded two tuples, backup granted only the first.
	events := []obs.Event{
		ev(1, 10, "primary/ftns", obs.TupleEmit, 1, 0, 64, 7, 0),
		ev(2, 20, "primary/ftns", obs.TupleEmit, 1, 1, 64, 7, 1),
		ev(3, 30, "secondary/ftns", obs.Replay, 1, 0, 0, 7, 0),
	}
	d := ReplayDiff(events)
	if d == nil {
		t.Fatal("unreplayed frontier not diagnosed")
	}
	if d.Class != ClassUnreplayedFrontier || d.Index != 1 || d.A.OSeq != 1 {
		t.Fatalf("wrong diagnosis: class=%s index=%d a=%+v", d.Class, d.Index, d.A)
	}
	if len(d.Slice) == 0 {
		t.Fatal("empty slice")
	}

	// Fully replayed: no divergence. No replayer at all: no diagnosis.
	events = append(events, ev(4, 40, "secondary/ftns", obs.Replay, 1, 1, 0, 7, 1))
	if d := ReplayDiff(events); d != nil {
		t.Fatalf("healthy replay diagnosed: %s", d.Summary())
	}
	if d := ReplayDiff(events[:2]); d != nil {
		t.Fatalf("recorder-only trace diagnosed: %s", d.Summary())
	}
}

func TestAnnotateAndReport(t *testing.T) {
	d := ReplayDiff([]obs.Event{
		ev(1, 10, "primary/ftns", obs.TupleEmit, 1, 0, 64, 7, 0),
		ev(2, 20, "primary/ftns", obs.TupleEmit, 1, 1, 64, 7, 1),
		ev(3, 30, "secondary/ftns", obs.Replay, 1, 0, 0, 7, 0),
	})
	Annotate(d, "failed_at_ns", 12345)
	rep := d.Report()
	for _, want := range []string{"replay frontier", "note: failed_at_ns=12345", "causal slice", "obj=7 oseq=1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
	Annotate(nil, "k", 1) // nil-safe
	var n *Divergence
	if !strings.Contains(n.Summary(), "no divergence") {
		t.Error("nil summary")
	}
}
