package causal

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Stage is one segment of a committed output's critical path.
type Stage int

const (
	// StageSeqWait is the time the emitting thread waited for its det
	// sequencer shard lock (DetEnter.Arg).
	StageSeqWait Stage = iota
	// StageReplayGrant is the time the backup's shadow thread sat parked
	// before the grant of the same tuple (Replay.Arg).
	StageReplayGrant
	// StageRingReserve is sender blocking on ring reservation between the
	// tuple's emission and its flush (SpanReserve.Arg on the paired ring).
	StageRingReserve
	// StageBatchResidency is the time the tuple sat buffered in an open
	// batch before its flush published it.
	StageBatchResidency
	// StageTransfer is ring propagation: flush to the delivery that
	// reached the output's watermark.
	StageTransfer
	// StageCommitWait is the output-commit stall itself
	// (OutputReleased.Arg): held at the watermark until receipt.
	StageCommitWait
	NumStages
)

var stageNames = [NumStages]string{
	"seq-wait",
	"replay-grant",
	"ring-reserve",
	"batch-residency",
	"transfer",
	"commit-wait",
}

func (s Stage) String() string {
	if s >= 0 && s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// TupleRef identifies the det tuple whose emission an output's stability
// hinged on — the last tuple recorded before the watermark was armed.
type TupleRef struct {
	TID  int32  `json:"tid"`
	Seq  int64  `json:"gseq"`
	Obj  uint64 `json:"obj"`
	OSeq int64  `json:"oseq"`
}

// OutputPath is the critical-path breakdown of one committed output.
type OutputPath struct {
	Scope      string           `json:"scope"`
	Watermark  int64            `json:"watermark"`
	HeldAt     sim.Time         `json:"held_at"`
	ReleasedAt sim.Time         `json:"released_at"`
	HasTuple   bool             `json:"has_tuple"`
	Tuple      TupleRef         `json:"tuple"`
	Stages     [NumStages]int64 `json:"stages_ns"`
}

// Total is the sum of the path's stage durations — the end-to-end latency
// the stages explain (stages can overlap in wall time; the sum is the
// attribution total, not an elapsed-time claim).
func (o *OutputPath) Total() int64 {
	var t int64
	for _, v := range o.Stages {
		t += v
	}
	return t
}

// StageStat is the exact offline distribution of one stage across every
// committed output in the trace (nearest-rank percentiles over the full
// sorted sample, not streaming bucket approximations).
type StageStat struct {
	Stage   string `json:"stage"`
	Count   int    `json:"count"` // outputs with a nonzero duration
	TotalNs int64  `json:"total_ns"`
	P50     int64  `json:"p50_ns"`
	P90     int64  `json:"p90_ns"`
	P99     int64  `json:"p99_ns"`
	MaxNs   int64  `json:"max_ns"`
}

// Attribution is the per-output critical-path analysis of one trace.
type Attribution struct {
	Outputs []OutputPath `json:"outputs"`
	Stages  []StageStat  `json:"stages"`
}

// Attribute computes the critical-path attribution of every committed
// output in the graph's trace. For each OutputReleased at watermark W it
// locates the last tuple recorded before the hold, the flush that
// published it, the delivery that reached W, and the replay grant of the
// same tuple, and charges each stage from the attributes those events
// carry. A trace with no output-commit stalls yields an Attribution with
// no outputs and all-zero stages.
func Attribute(g *Graph) *Attribution {
	a := &Attribution{}
	streams, _, _ := g.census()

	// Per-scope ordered tuple-emit census with each emit's section-enter
	// wait, plus the replay-grant waits keyed by tuple identity.
	type emitInfo struct {
		idx     int
		enterNs int64
	}
	emits := make(map[string][]emitInfo)
	lastEnter := make(map[laneKey]int64)
	heldIdx := make(map[watermarkKey]int)
	replayNs := make(map[tupleKey]int64)
	for i, e := range g.Events {
		switch e.Kind {
		case obs.DetEnter:
			lastEnter[laneKey{e.Scope, e.TID}] = e.Arg
		case obs.TupleEmit:
			emits[e.Scope] = append(emits[e.Scope], emitInfo{idx: i, enterNs: lastEnter[laneKey{e.Scope, e.TID}]})
		case obs.Replay:
			if e.Obj != 0 || e.OSeq != 0 {
				tk := tupleKey{e.Obj, e.OSeq}
				if _, dup := replayNs[tk]; !dup {
					replayNs[tk] = e.Arg
				}
			}
		case obs.OutputHeld:
			heldIdx[watermarkKey{e.Scope, e.Seq}] = i
		}
	}

	for _, s := range streams {
		if len(s.releases) == 0 {
			continue
		}
		ring := pairRing(streams, s.name)
		se := emits[s.name]
		dp := 0 // deliver pointer; release watermarks are monotone per scope
		for _, ri := range s.releases {
			rel := g.Events[ri]
			out := OutputPath{
				Scope:      s.name,
				Watermark:  rel.Seq,
				ReleasedAt: rel.At,
			}
			out.Stages[StageCommitWait] = rel.Arg
			hi, hasHeld := heldIdx[watermarkKey{s.name, rel.Seq}]
			if !hasHeld {
				a.Outputs = append(a.Outputs, out)
				continue
			}
			held := g.Events[hi]
			out.HeldAt = held.At

			// E: last tuple recorded before the hold.
			ei := sort.Search(len(se), func(k int) bool {
				return g.Events[se[k].idx].Order >= held.Order
			}) - 1
			var emitEv obs.Event
			if ei >= 0 {
				emitEv = g.Events[se[ei].idx]
				out.HasTuple = true
				out.Tuple = TupleRef{TID: emitEv.TID, Seq: emitEv.Seq, Obj: emitEv.Obj, OSeq: emitEv.OSeq}
				out.Stages[StageSeqWait] = se[ei].enterNs
				out.Stages[StageReplayGrant] = replayNs[tupleKey{emitEv.Obj, emitEv.OSeq}]
			}

			// F: the flush that published E (first flush after the emit).
			var flushEv obs.Event
			hasFlush := false
			if out.HasTuple {
				fi := sort.Search(len(s.flushes), func(k int) bool {
					return g.Events[s.flushes[k]].Order > emitEv.Order
				})
				if fi < len(s.flushes) {
					flushEv = g.Events[s.flushes[fi]]
					hasFlush = true
					if d := int64(flushEv.At.Sub(emitEv.At)); d > 0 {
						out.Stages[StageBatchResidency] = d
					}
				}
			}

			if ring != nil {
				// Ring reservation blocking between emit and flush.
				if out.HasTuple && hasFlush {
					for _, rvi := range ring.reserves {
						o := g.Events[rvi].Order
						if o > emitEv.Order && o < flushEv.Order {
							out.Stages[StageRingReserve] += g.Events[rvi].Arg
						}
					}
				}
				// D: the delivery that reached the output's watermark.
				for dp < len(ring.delivers) && g.Events[ring.delivers[dp]].Seq < rel.Seq {
					dp++
				}
				if hasFlush && dp < len(ring.delivers) {
					del := g.Events[ring.delivers[dp]]
					if d := int64(del.At.Sub(flushEv.At)); d > 0 && del.Order < rel.Order {
						out.Stages[StageTransfer] = d
					}
				}
			}
			a.Outputs = append(a.Outputs, out)
		}
	}

	a.Stages = make([]StageStat, NumStages)
	samples := make([]int64, 0, len(a.Outputs))
	for st := Stage(0); st < NumStages; st++ {
		stat := StageStat{Stage: st.String()}
		samples = samples[:0]
		for i := range a.Outputs {
			v := a.Outputs[i].Stages[st]
			samples = append(samples, v)
			stat.TotalNs += v
			if v > 0 {
				stat.Count++
			}
			if v > stat.MaxNs {
				stat.MaxNs = v
			}
		}
		if len(samples) > 0 {
			sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
			stat.P50 = rank(samples, 50)
			stat.P90 = rank(samples, 90)
			stat.P99 = rank(samples, 99)
		}
		a.Stages[st] = stat
	}
	return a
}

// rank is the nearest-rank percentile over a sorted sample.
func rank(sorted []int64, q int) int64 {
	return sorted[(len(sorted)-1)*q/100]
}

// WriteText renders the attribution as a deterministic fixed-format
// report: the per-stage distribution table plus the slowest outputs with
// their full breakdowns. Byte-identical across same-seed runs; the repo
// pins it with a golden.
func (a *Attribution) WriteText(w io.Writer) {
	fmt.Fprintf(w, "== critical-path attribution: %d committed outputs ==\n", len(a.Outputs))
	if len(a.Outputs) == 0 {
		fmt.Fprintln(w, "no output-commit stalls in trace")
		return
	}
	fmt.Fprintf(w, "%-16s %8s %12s %12s %12s %12s %14s\n",
		"stage", "nonzero", "p50(ns)", "p90(ns)", "p99(ns)", "max(ns)", "total(ns)")
	for _, st := range a.Stages {
		fmt.Fprintf(w, "%-16s %8d %12d %12d %12d %12d %14d\n",
			st.Stage, st.Count, st.P50, st.P90, st.P99, st.MaxNs, st.TotalNs)
	}
	top := a.slowest(5)
	if len(top) > 0 {
		fmt.Fprintln(w, "slowest outputs (by attributed total):")
		for _, o := range top {
			fmt.Fprintf(w, "  watermark=%-6d scope=%-16s total=%dns", o.Watermark, o.Scope, o.Total())
			for st := Stage(0); st < NumStages; st++ {
				if o.Stages[st] != 0 {
					fmt.Fprintf(w, " %s=%dns", st, o.Stages[st])
				}
			}
			if o.HasTuple {
				fmt.Fprintf(w, " tuple obj=%d oseq=%d gseq=%d tid=%d",
					o.Tuple.Obj, o.Tuple.OSeq, o.Tuple.Seq, o.Tuple.TID)
			}
			fmt.Fprintln(w)
		}
	}
}

// slowest returns the n slowest outputs by attributed total, ties broken
// by scope then watermark so the order is deterministic.
func (a *Attribution) slowest(n int) []OutputPath {
	out := append([]OutputPath(nil), a.Outputs...)
	sort.Slice(out, func(i, j int) bool {
		ti, tj := out[i].Total(), out[j].Total()
		if ti != tj {
			return ti > tj
		}
		if out[i].Scope != out[j].Scope {
			return out[i].Scope < out[j].Scope
		}
		return out[i].Watermark < out[j].Watermark
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// WriteCritPath renders the attribution as a Perfetto-compatible Chrome
// trace: one process per emitting scope, one track (tid) per committed
// output, with the output's residency → transfer → commit-wait segments
// as B/E slices laid end to end on the virtual clock. Fixed formatting:
// byte-identical across same-seed runs.
func (a *Attribution) WriteCritPath(w io.Writer) error {
	fmt.Fprint(w, "{\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			fmt.Fprint(w, ",\n")
		}
		first = false
	}
	var scopes []string
	pid := make(map[string]int)
	for i := range a.Outputs {
		s := a.Outputs[i].Scope
		if _, ok := pid[s]; !ok {
			pid[s] = len(scopes)
			scopes = append(scopes, s)
			sep()
			fmt.Fprintf(w, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"critpath:%s"}}`, pid[s], s)
		}
	}
	track := make(map[string]int)
	for i := range a.Outputs {
		o := &a.Outputs[i]
		track[o.Scope]++
		tid := track[o.Scope]
		p := pid[o.Scope]
		// Segment boundaries, monotone: residency ends at flush = held -
		// transfer... reconstruct from stage durations backwards from the
		// release instant so the track is self-consistent even when the
		// stages overlapped in wall time.
		end := int64(o.ReleasedAt)
		bounds := [NumStages + 1]int64{}
		bounds[NumStages] = end
		for st := NumStages - 1; st >= 0; st-- {
			bounds[st] = bounds[st+1] - o.Stages[st]
		}
		for st := Stage(0); st < NumStages; st++ {
			if o.Stages[st] <= 0 {
				continue
			}
			sep()
			fmt.Fprintf(w, `{"name":%q,"ph":"B","pid":%d,"tid":%d,"ts":%s,"args":{"watermark":%d}}`,
				st.String(), p, tid, chromeTS(bounds[st]), o.Watermark)
			sep()
			fmt.Fprintf(w, `{"name":%q,"ph":"E","pid":%d,"tid":%d,"ts":%s}`,
				st.String(), p, tid, chromeTS(bounds[st+1]))
		}
	}
	_, err := fmt.Fprint(w, "]}\n")
	return err
}

// chromeTS renders a virtual-time instant as Chrome-trace microseconds
// with exact nanosecond fraction (same format as the obs exporter). The
// backward-stacked track start can precede t=0 when early stages overlap,
// so negative instants render with an explicit sign.
func chromeTS(ns int64) string {
	sign := ""
	if ns < 0 {
		sign = "-"
		ns = -ns
	}
	return fmt.Sprintf("%s%d.%03d", sign, ns/1000, ns%1000)
}
