// Package causal reconstructs a happens-before graph over the obs event
// stream and computes trace-level diagnoses from it: per-committed-output
// critical-path attribution (Attribute) and cross-replica first-divergence
// diagnosis (DiffTraces, ReplayDiff).
//
// The graph's edges come from the replication protocol itself:
//
//   - lane order: consecutive events on one (scope, tid) lane;
//   - per-object det order: consecutive det-section events on one
//     sequencing object <obj_id> within a scope — the order the sharded
//     sequencer serializes, carried on events as <Obj, OSeq>;
//   - record→replay: the primary's TupleEmit of <obj, Seq_obj> precedes
//     the backup's Replay grant of the same tuple;
//   - tuple→flush: a tuple precedes the batch flush that published it;
//   - flush→deliver: a flush at sent-watermark S precedes the first ring
//     delivery whose delivered watermark reaches S (the shm FIFO);
//   - watermark→release: an output held at watermark W is released by the
//     first receipt (RingDeliver) or explicit ack (AckSend) reaching W.
//
// Because every input event is derived from the virtual clock, everything
// computed here is a pure function of the trace: same seed, same graph,
// byte-identical reports. The package is a sanctioned nondet sink in the
// same sense as obs itself — diagnosis strings may carry any value that
// is itself deterministic, and ftvet flags wall-clock values smuggled in.
package causal

import (
	"sort"

	"repro/internal/obs"
)

// Graph is the happens-before DAG over one trace: nodes are indices into
// Events, edges point from cause to effect and are stored as per-node
// parent lists (effect → causes), which is the direction slicing walks.
type Graph struct {
	Events  []obs.Event
	parents [][]int32
}

// DefaultSliceEvents bounds a causal slice: enough ancestry to read the
// story of one divergent tuple without replaying the whole trace.
const DefaultSliceEvents = 32

// edge records from → to (from happens-before to). Duplicate parents are
// dropped; parent lists stay in insertion order, which is deterministic.
func (g *Graph) edge(from, to int) {
	if from == to {
		return
	}
	for _, p := range g.parents[to] {
		if int(p) == from {
			return
		}
	}
	g.parents[to] = append(g.parents[to], int32(from))
}

// Parents returns the direct causes of event i, in insertion order.
func (g *Graph) Parents(i int) []int {
	out := make([]int, len(g.parents[i]))
	for j, p := range g.parents[i] {
		out[j] = int(p)
	}
	return out
}

type laneKey struct {
	scope string
	tid   int32
}

type tupleKey struct {
	obj  uint64
	oseq int64
}

type scopeObjKey struct {
	scope string
	obj   uint64
}

type watermarkKey struct {
	scope string
	seq   int64
}

// Build constructs the happens-before graph for one trace. Events must be
// in emission order (as written by the tracer); the builder is a single
// forward pass plus one watermark-pairing pass, both deterministic.
func Build(events []obs.Event) *Graph {
	g := &Graph{Events: events, parents: make([][]int32, len(events))}

	laneLast := make(map[laneKey]int)
	objLast := make(map[scopeObjKey]int)
	emitOf := make(map[tupleKey]int)
	pendingEmits := make(map[string][]int)
	held := make(map[watermarkKey]int)

	for i, e := range events {
		lk := laneKey{e.Scope, e.TID}
		if p, ok := laneLast[lk]; ok {
			g.edge(p, i)
		}
		laneLast[lk] = i

		switch e.Kind {
		case obs.DetEnter, obs.DetExit, obs.TupleEmit, obs.Replay:
			if e.Obj == 0 && e.OSeq == 0 {
				break // legacy event without the sequencing identity
			}
			ok := scopeObjKey{e.Scope, e.Obj}
			if p, seen := objLast[ok]; seen {
				g.edge(p, i)
			}
			objLast[ok] = i
			switch e.Kind {
			case obs.TupleEmit:
				tk := tupleKey{e.Obj, e.OSeq}
				if _, dup := emitOf[tk]; !dup {
					emitOf[tk] = i
				}
				pendingEmits[e.Scope] = append(pendingEmits[e.Scope], i)
			case obs.Replay:
				if p, seen := emitOf[tupleKey{e.Obj, e.OSeq}]; seen {
					g.edge(p, i)
				}
			}
		case obs.BatchFlush:
			for _, p := range pendingEmits[e.Scope] {
				g.edge(p, i)
			}
			delete(pendingEmits, e.Scope)
		case obs.OutputHeld:
			held[watermarkKey{e.Scope, e.Seq}] = i
		case obs.OutputReleased:
			wk := watermarkKey{e.Scope, e.Seq}
			if p, ok := held[wk]; ok {
				g.edge(p, i)
				delete(held, wk)
			}
		}
	}

	g.linkWatermarks()
	return g
}

// scopeStreams is the per-scope event-index census the watermark pass and
// the attribution pass both consume.
type scopeStreams struct {
	name     string
	flushes  []int // BatchFlush
	delivers []int // RingDeliver
	reserves []int // SpanReserve
	acks     []int // AckSend
	releases []int // OutputReleased
}

// census builds the per-scope streams in scope first-appearance order,
// plus the global ack list in emission order.
func (g *Graph) census() (streams []*scopeStreams, byName map[string]*scopeStreams, acks []int) {
	byName = make(map[string]*scopeStreams)
	get := func(name string) *scopeStreams {
		if s, ok := byName[name]; ok {
			return s
		}
		s := &scopeStreams{name: name}
		byName[name] = s
		streams = append(streams, s)
		return s
	}
	for i, e := range g.Events {
		switch e.Kind {
		case obs.BatchFlush:
			s := get(e.Scope)
			s.flushes = append(s.flushes, i)
		case obs.RingDeliver:
			s := get(e.Scope)
			s.delivers = append(s.delivers, i)
		case obs.SpanReserve:
			s := get(e.Scope)
			s.reserves = append(s.reserves, i)
		case obs.AckSend:
			s := get(e.Scope)
			s.acks = append(s.acks, i)
			acks = append(acks, i)
		case obs.OutputReleased:
			s := get(e.Scope)
			s.releases = append(s.releases, i)
		}
	}
	return streams, byName, acks
}

// pairRing resolves which ring scope delivers a flushing scope's
// transfers: the scope whose name contains the flusher's base name +
// ".log" (core wires "primary/ftns" → "shm/ftns.log"); when no name
// matches and exactly one scope delivers at all, that one is the pair.
func pairRing(streams []*scopeStreams, flusher string) *scopeStreams {
	base := flusher
	for i := len(flusher) - 1; i >= 0; i-- {
		if flusher[i] == '/' {
			base = flusher[i+1:]
			break
		}
	}
	want := base + ".log"
	var sole *scopeStreams
	nDeliver := 0
	for _, s := range streams {
		if len(s.delivers) == 0 {
			continue
		}
		nDeliver++
		sole = s
		if contains(s.name, want) {
			return s
		}
	}
	if nDeliver == 1 {
		return sole
	}
	return nil
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// linkWatermarks adds the cross-scope watermark edges: flush→deliver on
// the paired ring, and deliver/ack→release for each output-commit stall.
// All pairings walk monotone watermark streams with two-pointer scans.
func (g *Graph) linkWatermarks() {
	streams, _, acks := g.census()
	for _, s := range streams {
		if len(s.flushes) == 0 && len(s.releases) == 0 {
			continue
		}
		ring := pairRing(streams, s.name)
		if ring != nil {
			j := 0
			for _, fi := range s.flushes {
				fseq := g.Events[fi].Seq
				for j < len(ring.delivers) && g.Events[ring.delivers[j]].Seq < fseq {
					j++
				}
				if j < len(ring.delivers) && g.Events[ring.delivers[j]].Order > g.Events[fi].Order {
					g.edge(fi, ring.delivers[j])
				}
			}
			k := 0
			for _, ri := range s.releases {
				w := g.Events[ri].Seq
				for k < len(ring.delivers) && g.Events[ring.delivers[k]].Seq < w {
					k++
				}
				if k < len(ring.delivers) && g.Events[ring.delivers[k]].Order < g.Events[ri].Order {
					g.edge(ring.delivers[k], ri)
				}
			}
		}
		a := 0
		for _, ri := range s.releases {
			w := g.Events[ri].Seq
			for a < len(acks) && g.Events[acks[a]].Seq < w {
				a++
			}
			if a < len(acks) && g.Events[acks[a]].Order < g.Events[ri].Order {
				g.edge(acks[a], ri)
			}
		}
	}
}

// Slice returns the minimal causal slice of event root: the root plus up
// to max-1 of its nearest ancestors (breadth-first over the parent lists,
// so direct causes come before remote history), in emission order. max <=
// 0 selects DefaultSliceEvents. The slice is never empty: it always
// contains the root itself.
func (g *Graph) Slice(root, max int) []obs.Event {
	if root < 0 || root >= len(g.Events) {
		return nil
	}
	if max <= 0 {
		max = DefaultSliceEvents
	}
	seen := map[int]bool{root: true}
	queue := []int{root}
	for qi := 0; qi < len(queue) && len(queue) < max; qi++ {
		for _, p := range g.parents[queue[qi]] {
			if !seen[int(p)] {
				seen[int(p)] = true
				queue = append(queue, int(p))
				if len(queue) >= max {
					break
				}
			}
		}
	}
	sort.Ints(queue)
	out := make([]obs.Event, len(queue))
	for i, idx := range queue {
		out[i] = g.Events[idx]
	}
	return out
}
