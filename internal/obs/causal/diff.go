package causal

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/obs"
)

// Divergence classes.
const (
	// ClassTupleMismatch: the two traces record different tuples at the
	// same position of the det tuple order — a genuine replay divergence.
	ClassTupleMismatch = "tuple-mismatch"
	// ClassMissingSuffix: one trace's recorded tuple stream is a strict
	// prefix of the other's — execution stopped (a kill) or never reached
	// the suffix; the divergent tuple is the first one the shorter run
	// never recorded.
	ClassMissingSuffix = "missing-suffix"
	// ClassUnreplayedFrontier: within one trace, the first tuple the
	// primary recorded that the backup never got granted — the replay
	// frontier at the moment the trace ends (for a failover flight dump:
	// the work the dead primary did that the survivor discarded).
	ClassUnreplayedFrontier = "unreplayed-frontier"
)

// Divergence is a first-divergence diagnosis: the exact det tuple
// <obj_id, Seq_obj> where two executions (or the two replicas of one
// execution) stop agreeing, plus the minimal causal slice explaining it.
type Divergence struct {
	Class string `json:"class"`
	// Index is the position in the aligned recorded-tuple order at which
	// the divergence occurs (0-based).
	Index int `json:"index"`
	// A and B are the divergent events of the respective traces; either
	// may be nil (a missing suffix has only the longer side's event; a
	// replay-frontier diagnosis has only the recorded side).
	A *obs.Event `json:"a,omitempty"`
	B *obs.Event `json:"b,omitempty"`
	// Notes are deterministic key=value annotations appended by the
	// caller (Annotate) — e.g. the virtual failover instant.
	Notes []string `json:"notes,omitempty"`
	// Slice is the divergent event's minimal causal slice: itself plus
	// its nearest happens-before ancestors, in emission order.
	Slice []obs.Event `json:"slice"`
}

// Annotate appends a deterministic key=value note to the diagnosis. The
// value must come from simulation state (a virtual-clock instant, a
// sequence number) — never from the host clock; ftvet enforces this the
// same way it does for trace attributes.
func Annotate(d *Divergence, key string, v int64) {
	if d == nil {
		return
	}
	d.Notes = append(d.Notes, fmt.Sprintf("%s=%d", key, v))
}

// event returns the divergent event itself: the B side when both exist
// (B is conventionally the suspect run), else whichever is present.
func (d *Divergence) event() *obs.Event {
	if d == nil {
		return nil
	}
	if d.B != nil {
		return d.B
	}
	return d.A
}

// Summary is the one-line form of the diagnosis: the exact first
// divergent tuple and what happened to it.
func (d *Divergence) Summary() string {
	if d == nil {
		return "no divergence: traces agree on the full det tuple order"
	}
	e := d.event()
	var what string
	switch d.Class {
	case ClassTupleMismatch:
		what = fmt.Sprintf("traces record different tuples (a: obj=%d oseq=%d gseq=%d tid=%d; b: obj=%d oseq=%d gseq=%d tid=%d)",
			d.A.Obj, d.A.OSeq, d.A.Seq, d.A.TID, d.B.Obj, d.B.OSeq, d.B.Seq, d.B.TID)
	case ClassMissingSuffix:
		side := "b"
		if d.A == nil {
			side = "a"
		}
		what = fmt.Sprintf("trace %s never records tuple obj=%d oseq=%d gseq=%d tid=%d (recorded at t=%dns in the other run)",
			side, e.Obj, e.OSeq, e.Seq, e.TID, int64(e.At))
	case ClassUnreplayedFrontier:
		what = fmt.Sprintf("tuple obj=%d oseq=%d gseq=%d tid=%d recorded at t=%dns was never granted to the backup (replay frontier)",
			e.Obj, e.OSeq, e.Seq, e.TID, int64(e.At))
	default:
		what = d.Class
	}
	return fmt.Sprintf("first divergence at recorded tuple #%d: %s", d.Index, what)
}

// WriteReport renders the full human-readable diagnosis: the summary,
// the notes, and the causal slice, one event per line.
func (d *Divergence) WriteReport(w io.Writer) {
	if d == nil {
		fmt.Fprintln(w, "no divergence: traces agree on the full det tuple order")
		return
	}
	fmt.Fprintln(w, d.Summary())
	for _, n := range d.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintf(w, "  causal slice (%d events):\n", len(d.Slice))
	for _, e := range d.Slice {
		writeEventLine(w, e)
	}
}

// Report is WriteReport into a string — the form core embeds into the
// failover flight dump.
func (d *Divergence) Report() string {
	var b strings.Builder
	d.WriteReport(&b)
	return b.String()
}

// WriteEvents renders events one per line in the report's slice format —
// the form ftdiag's slice subcommand prints.
func WriteEvents(w io.Writer, events []obs.Event) {
	for _, e := range events {
		writeEventLine(w, e)
	}
}

func writeEventLine(w io.Writer, e obs.Event) {
	fmt.Fprintf(w, "    t=%-14d %-22s %-15s", int64(e.At), e.Scope, e.Kind)
	if e.TID != 0 {
		fmt.Fprintf(w, " tid=%d", e.TID)
	}
	if e.Seq != 0 {
		fmt.Fprintf(w, " seq=%d", e.Seq)
	}
	if e.Arg != 0 {
		fmt.Fprintf(w, " arg=%d", e.Arg)
	}
	if e.Obj != 0 || e.OSeq != 0 {
		fmt.Fprintf(w, " obj=%d oseq=%d", e.Obj, e.OSeq)
	}
	if e.Note != "" {
		fmt.Fprintf(w, " %s", e.Note)
	}
	fmt.Fprintln(w)
}

// recordedStream returns the indices of the trace's TupleEmit events in
// emission order — the det tuple order two same-seed traces are aligned
// on. Recording scopes only (the replayer never emits TupleEmit), across
// every generation.
func recordedStream(events []obs.Event) []int {
	var out []int
	for i, e := range events {
		if e.Kind == obs.TupleEmit {
			out = append(out, i)
		}
	}
	return out
}

// tupleIdentity is the alignment key: the full sequencing identity of a
// recorded section, independent of which scope (generation) recorded it.
func tupleIdentity(e obs.Event) TupleRef {
	return TupleRef{TID: e.TID, Seq: e.Seq, Obj: e.Obj, OSeq: e.OSeq}
}

// DiffTraces aligns two same-seed traces on their recorded det tuple
// orders and returns the first divergence, or nil when the streams agree
// over their full common extent and have equal length. The divergent
// event's causal slice is computed in the trace that contains it (B when
// both do — B is conventionally the suspect/failed run).
func DiffTraces(a, b []obs.Event) *Divergence {
	sa, sb := recordedStream(a), recordedStream(b)
	n := len(sa)
	if len(sb) < n {
		n = len(sb)
	}
	for i := 0; i < n; i++ {
		ea, eb := a[sa[i]], b[sb[i]]
		if tupleIdentity(ea) != tupleIdentity(eb) {
			d := &Divergence{Class: ClassTupleMismatch, Index: i, A: &ea, B: &eb}
			d.Slice = Build(b).Slice(sb[i], 0)
			return d
		}
	}
	switch {
	case len(sa) > n: // b stops early: a records tuples b never does
		ea := a[sa[n]]
		d := &Divergence{Class: ClassMissingSuffix, Index: n, A: &ea}
		d.Slice = Build(a).Slice(sa[n], 0)
		return d
	case len(sb) > n: // a stops early
		eb := b[sb[n]]
		d := &Divergence{Class: ClassMissingSuffix, Index: n, B: &eb}
		d.Slice = Build(b).Slice(sb[n], 0)
		return d
	}
	return nil
}

// ReplayDiff diagnoses a single trace against itself: the primary's
// recorded tuple stream vs. the backup's replay grants. It returns the
// first recorded tuple that was never granted — the replay frontier —
// or nil when every recorded tuple replayed. At a failover flight dump
// this names exactly the work the dead primary completed that the
// promoted survivor discarded (§3.5: output past the stable point).
func ReplayDiff(events []obs.Event) *Divergence {
	return ReplayDiffScoped(events, "")
}

// ReplayDiffScoped is ReplayDiff restricted to one backup's replay
// grants, selected by trace scope (""  considers every replaying scope).
// With an N-way replica set each backup replays at its own pace; scoping
// to the elected survivor's namespace scope makes the frontier name the
// work that failover actually discards, rather than whatever the
// laggiest backup happened to miss.
func ReplayDiffScoped(events []obs.Event, scope string) *Divergence {
	if len(events) == 0 {
		return nil
	}
	replayed := make(map[TupleRef]bool)
	anyReplay := false
	for _, e := range events {
		if e.Kind == obs.Replay && (e.Obj != 0 || e.OSeq != 0) &&
			(scope == "" || e.Scope == scope) {
			replayed[TupleRef{TID: e.TID, Seq: e.Seq, Obj: e.Obj, OSeq: e.OSeq}] = true
			anyReplay = true
		}
	}
	if !anyReplay {
		return nil // no replaying backup in this trace: nothing to compare
	}
	for i, si := range recordedStream(events) {
		e := events[si]
		if replayed[tupleIdentity(e)] {
			continue
		}
		d := &Divergence{Class: ClassUnreplayedFrontier, Index: i, A: &e}
		d.Slice = Build(events).Slice(si, 0)
		return d
	}
	return nil
}
