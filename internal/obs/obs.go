// Package obs is the observability layer of the reproduction: a typed
// event tracer, a metrics registry, and a per-replica flight recorder
// covering the record/replay hot path, the shared-memory mailboxes, the
// TCP logical-state sync, failure detection, and the failover timeline.
//
// The paper evaluates FT-Linux almost entirely through externally
// observed numbers (PBZIP2 runtime, Mongoose throughput, the §4.4
// failover clock) because the replication internals are invisible at
// runtime. This package makes them first-class: every layer emits typed
// events into a Tracer and updates metrics in a Registry, so a run ends
// with a Perfetto-loadable timeline and paper-meaningful signals (replay
// lag, output-commit stalls, batch fill, ring high-water marks) instead
// of just a wall-clock number.
//
// Determinism contract: every timestamp comes from the simulation's
// virtual clock (sim.Simulation.Now) and every attribute is derived from
// simulation state, never from the host (no time.Now, no map-iteration
// order, no host randomness). Two runs with the same seed therefore
// produce byte-identical traces — the property that makes a trace diff
// a usable debugging tool for a deterministic system. The nondet
// analyzer enforces the contract: it treats the obs API as a sanctioned
// sink but diagnoses wall-clock values smuggled into trace attributes.
//
// Cost contract: the layer is always compiled and cheap when disabled.
// Every emit and metric update is nil-safe — a component holding a nil
// *Scope or nil *Counter pays one pointer test per operation — so the
// hot path carries its instrumentation unconditionally and deployments
// opt in by wiring a Tracer (core.Config.Obs) or a Registry.
package obs

import (
	"encoding/json"
	"fmt"
	"reflect"

	"repro/internal/sim"
)

// Kind is the type of one traced event. The taxonomy follows the tuple
// lifecycle (emit → flush → deliver → replay → ack), the output-commit
// machinery, and the failure-detection/failover state machine; see
// DESIGN.md §11 for the full table.
type Kind uint8

const (
	// DetEnter/DetExit bracket one deterministic section (record or
	// replay side): TID is the ft_pid, Seq the global sequence number.
	DetEnter Kind = iota + 1
	DetExit
	// TupleEmit is one log tuple handed to the streaming layer
	// (Seq = Seq_global, Arg = tuple footprint in bytes).
	TupleEmit
	// BatchFlush is one vectored transfer pushed onto a log/sync ring
	// (Seq = sent watermark after the flush, Arg = payloads in the batch).
	BatchFlush
	// RingDeliver marks a transfer becoming visible to the receiving
	// partition (Seq = delivered watermark, Arg = payloads delivered).
	RingDeliver
	// RingDepth samples a ring's occupancy in bytes (Arg); exported as a
	// Chrome counter track so Perfetto plots the fill level over time.
	RingDepth
	// Replay is a deterministic-section turn granted to a shadow thread
	// (TID = ft_pid, Seq = Seq_global).
	Replay
	// AckSend is a cumulative acknowledgement sent by the replayer
	// (Seq = processed watermark).
	AckSend
	// SyncFlush is a TCP logical-state delta batch pushed onto the
	// tcprep.sync ring (Seq = synced watermark, Arg = updates).
	SyncFlush
	// Heartbeat is one heart-beat received from the peer (Seq = count).
	Heartbeat
	// HeartbeatMiss is the detector timing out without a heart-beat
	// (Seq = beats received so far, Arg = timeout in ns).
	HeartbeatMiss
	// Suspect is the peer being declared failed.
	Suspect
	// IPIHalt is the forcible inter-processor halt of a live suspect.
	IPIHalt
	// FailoverStart marks the failover sequence beginning.
	FailoverStart
	// DriverLoad/DriverUp bracket a device driver (re)load — the cost
	// that dominates §4.4 failover time.
	DriverLoad
	DriverUp
	// Promote is the replayer draining the dead primary's log
	// (Seq = replay head, Arg = messages drained from shared memory).
	Promote
	// GoLive is a replica entering unreplicated execution (RoleLive).
	GoLive
	// OutputHeld/OutputReleased bracket an output-commit stall
	// (Seq = watermark; Arg on release = wait in ns).
	OutputHeld
	OutputReleased
	// KernelPanic is a kernel dying (Note = cause).
	KernelPanic
	// LogDrop is log discarded past the stable point at promotion, or
	// in-flight mailbox messages lost to a coherency fault (Arg = count).
	LogDrop
	// StateChange is a System lifecycle transition (Seq = new
	// core.LifecycleState, Note = "old->new").
	StateChange
	// ResyncStart marks backup re-integration beginning: a fresh kernel
	// booted on the freed partition (Seq = rejoin generation).
	ResyncStart
	// CheckpointCut is the atomic FT-namespace checkpoint taken at the
	// quiesced boundary (Seq = Seq_global watermark, Arg = bytes shipped
	// over the bulk ring).
	CheckpointCut
	// CatchupDone is the catch-up backlog draining empty: the new backup
	// has replayed to the recorder's watermark and the link flips into
	// the output-commit set (Seq = watermark).
	CatchupDone
	// ResyncDone marks the system back in replicated mode (Seq = rejoin
	// generation, Arg = resync duration in ns).
	ResyncDone
	// ChaosInject is one fault-injection event firing (Note = event spec).
	ChaosInject
	// SpanReserve is a sender admitted into a ring reservation after
	// blocking (Seq = ticket, Arg = reservation wait in ns). Fast-path
	// reservations that never block are not traced: the event exists to
	// attribute ring back-pressure, not to count spans.
	SpanReserve
	// SpanCommit is a reserved span published into ring visibility
	// (Seq = cumulative payloads sent after the commit, Arg = payloads
	// in the span).
	SpanCommit
	// Election is a failover election decided among surviving backups
	// (Seq = winning replica slot, Arg = the winner's receipt watermark;
	// Note = per-loser watermark summary).
	Election
	// ReplicaRetire is one replica removed from the set — an election
	// loser, or a rolling replacement draining an old backup (Seq =
	// replica slot, Arg = its receipt watermark at retirement).
	ReplicaRetire
	// QuorumLost marks the commit rule degrading below its configured
	// quorum: fewer live backups remain than CommitQuorum (Seq = live
	// backups, Arg = configured quorum).
	QuorumLost
	// EpochCut is an incremental epoch checkpoint cut on the primary
	// (Seq = epoch number, Arg = final stop-the-world pause in ns;
	// Note = pre-copy pass summary).
	EpochCut
	// EpochTruncate is a retained tuple log truncated at a verified
	// epoch boundary — on the primary after the epoch-ack quorum, on a
	// backup after digest verification at the replay frontier (Seq =
	// epoch number, Arg = tuples dropped).
	EpochTruncate
)

var kindNames = [...]string{
	DetEnter:       "det-enter",
	DetExit:        "det-exit",
	TupleEmit:      "tuple-emit",
	BatchFlush:     "batch-flush",
	RingDeliver:    "deliver",
	RingDepth:      "ring-depth",
	Replay:         "replay",
	AckSend:        "ack",
	SyncFlush:      "sync-flush",
	Heartbeat:      "heartbeat",
	HeartbeatMiss:  "heartbeat-miss",
	Suspect:        "suspect",
	IPIHalt:        "ipi-halt",
	FailoverStart:  "failover",
	DriverLoad:     "driver-load",
	DriverUp:       "driver-up",
	Promote:        "promote",
	GoLive:         "live",
	OutputHeld:     "output-held",
	OutputReleased: "output-released",
	KernelPanic:    "panic",
	LogDrop:        "drop",
	StateChange:    "state",
	ResyncStart:    "resync-start",
	CheckpointCut:  "checkpoint",
	CatchupDone:    "catchup-done",
	ResyncDone:     "resync-done",
	ChaosInject:    "chaos",
	SpanReserve:    "span-reserve",
	SpanCommit:     "span-commit",
	Election:       "election",
	ReplicaRetire:  "replica-retire",
	QuorumLost:     "quorum-lost",
	EpochCut:       "epoch-cut",
	EpochTruncate:  "epoch-truncate",
}

// kindByName is the inverse of kindNames, built once for ParseKind.
var kindByName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, name := range kindNames {
		if name != "" {
			m[name] = Kind(k)
		}
	}
	return m
}()

// ParseKind resolves an event-kind name (as rendered by Kind.String and
// MarshalJSON) back to its enum value.
func ParseKind(name string) (Kind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return "unknown"
}

// MarshalJSON renders the kind as its name, so JSONL traces and flight
// dumps are readable without the enum table.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON parses the name form written by MarshalJSON, so JSONL
// traces round-trip through encoding/json (ftdiag reads them back).
func (k *Kind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return &json.UnmarshalTypeError{Value: string(b), Type: reflect.TypeOf(Kind(0))}
	}
	kk, ok := ParseKind(string(b[1 : len(b)-1]))
	if !ok {
		return fmt.Errorf("obs: unknown event kind %s", b)
	}
	*k = kk
	return nil
}

// Event is one traced occurrence. Seq and Arg are kind-specific numeric
// attributes (documented per Kind); Note is an optional preformatted
// detail string that must itself be deterministic.
//
// Obj/OSeq carry the per-object sequencing identity <obj_id, Seq_obj>
// on deterministic-section events (DetEnter/DetExit/TupleEmit/Replay):
// the causal layer (internal/obs/causal) keys its happens-before edges
// and its cross-replica trace alignment on this tuple, so the pair must
// match between the recording event and the replay grant of the same
// section.
type Event struct {
	Order uint64   `json:"order"` // global emission order, merge key
	At    sim.Time `json:"at"`    // virtual time, ns
	Scope string   `json:"scope"`
	Kind  Kind     `json:"kind"`
	TID   int32    `json:"tid,omitempty"` // thread lane (ft_pid) within the scope
	Seq   int64    `json:"seq,omitempty"`
	Arg   int64    `json:"arg,omitempty"`
	Obj   uint64   `json:"obj,omitempty"`  // det object key (op<<48|obj for non-lock ops)
	OSeq  int64    `json:"oseq,omitempty"` // per-object sequence number Seq_obj
	Note  string   `json:"note,omitempty"`
}

// Config tunes a Tracer.
type Config struct {
	// Trace retains the full event stream for export (Chrome trace,
	// JSONL). Off, only the bounded per-scope flight rings record.
	Trace bool
	// FlightEvents is the per-scope flight-recorder capacity
	// (0 selects DefaultFlightEvents).
	FlightEvents int
}

// DefaultFlightEvents is the per-scope flight-ring capacity: enough to
// hold the last few batches of tuple lifecycle events plus the full
// detector state machine around a failure.
const DefaultFlightEvents = 256

// Tracer owns the event stream, the per-scope flight rings, and the
// deployment's metrics registry. A nil *Tracer is a valid disabled
// tracer: Scope returns nil scopes and Registry returns nil, so every
// downstream operation degrades to a pointer test.
type Tracer struct {
	sim    *sim.Simulation
	cfg    Config
	reg    *Registry
	order  uint64
	scopes []*Scope
	events []Event
}

// New creates a tracer on the given simulation clock.
func New(s *sim.Simulation, cfg Config) *Tracer {
	if cfg.FlightEvents <= 0 {
		cfg.FlightEvents = DefaultFlightEvents
	}
	return &Tracer{sim: s, cfg: cfg, reg: NewRegistry()}
}

// Enabled reports whether the tracer retains the full event stream.
func (t *Tracer) Enabled() bool { return t != nil && t.cfg.Trace }

// Registry returns the tracer's metrics registry (nil on a nil tracer).
func (t *Tracer) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Scope creates (or returns) the named event scope — one per
// instrumented component, mapped to one process row in the Chrome
// trace. Scopes are created in wiring order, which is deterministic.
func (t *Tracer) Scope(name string) *Scope {
	if t == nil {
		return nil
	}
	for _, sc := range t.scopes {
		if sc.name == name {
			return sc
		}
	}
	sc := &Scope{t: t, name: name, flight: make([]Event, t.cfg.FlightEvents)}
	t.scopes = append(t.scopes, sc)
	return sc
}

// Scopes returns every scope in creation order.
func (t *Tracer) Scopes() []*Scope {
	if t == nil {
		return nil
	}
	return t.scopes
}

// Events returns the retained event stream (empty unless Config.Trace).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Scope is one component's named event source plus its bounded flight
// ring. All methods are nil-safe; emitting on a nil scope is a no-op.
type Scope struct {
	t    *Tracer
	name string

	flight []Event // bounded ring of the most recent events
	fpos   int     // next write position
	fn     int     // events written (saturates at len(flight))
}

// Name returns the scope name.
func (sc *Scope) Name() string {
	if sc == nil {
		return ""
	}
	return sc.name
}

// Emit records an event with kind-specific numeric attributes.
func (sc *Scope) Emit(k Kind, tid int, seq, arg int64) {
	sc.emit(k, tid, seq, arg, 0, 0, "")
}

// EmitDet records a deterministic-section event carrying the per-object
// sequencing identity <obj, oseq> alongside the usual attributes. The
// recorder and replayer emit their DetEnter/DetExit/TupleEmit/Replay
// events through this so the causal layer can align the two sides.
func (sc *Scope) EmitDet(k Kind, tid int, seq, arg int64, obj uint64, oseq int64) {
	sc.emit(k, tid, seq, arg, obj, oseq, "")
}

// EmitNote is Emit with a preformatted detail string. The note must be
// deterministic (derived from simulation state only): it travels into
// traces that are compared byte-for-byte across runs.
func (sc *Scope) EmitNote(k Kind, tid int, seq, arg int64, note string) {
	sc.emit(k, tid, seq, arg, 0, 0, note)
}

func (sc *Scope) emit(k Kind, tid int, seq, arg int64, obj uint64, oseq int64, note string) {
	if sc == nil {
		return
	}
	t := sc.t
	t.order++
	e := Event{
		Order: t.order,
		At:    t.sim.Now(),
		Scope: sc.name,
		Kind:  k,
		TID:   int32(tid),
		Seq:   seq,
		Arg:   arg,
		Obj:   obj,
		OSeq:  oseq,
		Note:  note,
	}
	sc.flight[sc.fpos] = e
	sc.fpos = (sc.fpos + 1) % len(sc.flight)
	if sc.fn < len(sc.flight) {
		sc.fn++
	}
	if t.cfg.Trace {
		t.events = append(t.events, e)
	}
}

// Recent returns the scope's flight-ring contents, oldest first.
func (sc *Scope) Recent() []Event {
	if sc == nil || sc.fn == 0 {
		return nil
	}
	out := make([]Event, 0, sc.fn)
	start := sc.fpos - sc.fn
	if start < 0 {
		start += len(sc.flight)
	}
	for i := 0; i < sc.fn; i++ {
		out = append(out, sc.flight[(start+i)%len(sc.flight)])
	}
	return out
}
