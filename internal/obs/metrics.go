package obs

import (
	"fmt"
	"math/bits"
	"sort"
)

// Registry holds a deployment's metrics. Registration is nil-safe —
// Counter/Gauge/Histogram on a nil registry return nil instruments whose
// operations are no-ops — so components instrument unconditionally and
// pay one pointer test when metrics are off. Names must be unique;
// snapshots are sorted by name so output is deterministic.
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*Histogram
	names    map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{names: make(map[string]bool)} }

func (r *Registry) claim(name string) {
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = true
}

// Counter registers a monotonic counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.claim(name)
	c := &Counter{name: name}
	r.counters = append(r.counters, c)
	return c
}

// Gauge registers a sampled gauge: fn is invoked at snapshot time, so
// instantaneous signals (replay lag, ring occupancy, backlog) cost
// nothing on the hot path.
func (r *Registry) Gauge(name string, fn func() int64) *Gauge {
	if r == nil {
		return nil
	}
	r.claim(name)
	g := &Gauge{name: name, fn: fn}
	r.gauges = append(r.gauges, g)
	return g
}

// Histogram registers a histogram with power-of-two buckets. unit names
// the observed quantity ("ns", "tuples", "updates", "bytes").
func (r *Registry) Histogram(name, unit string) *Histogram {
	if r == nil {
		return nil
	}
	r.claim(name)
	h := &Histogram{name: name, unit: unit}
	r.hists = append(r.hists, h)
	return h
}

// Counter is a monotonic event count.
type Counter struct {
	name string
	v    int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a function-backed instantaneous value.
type Gauge struct {
	name string
	fn   func() int64
}

// Value samples the gauge (zero on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.fn()
}

// histBuckets is the bucket count: bucket i holds values whose
// bit-length is i, i.e. [2^(i-1), 2^i), so the range covers int64.
const histBuckets = 64

// Histogram accumulates a distribution in power-of-two buckets — exact
// min/max/sum/count plus bucket counts, enough for the percentile
// summaries the benches report without unbounded storage.
type Histogram struct {
	name    string
	unit    string
	n       int64
	sum     int64
	min     int64
	max     int64
	buckets [histBuckets + 1]int64
}

func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value (no-op on nil). Negative values clamp to 0.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.buckets[bucketOf(v)]++
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket containing it, clamped to the exact observed max. Zero
// observations yield zero.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil || h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum < rank {
			continue
		}
		if i == 0 {
			return 0
		}
		if i >= 63 {
			return h.max // 2^63-1 would overflow; the exact max is tighter anyway
		}
		upper := int64(1)<<i - 1 // bucket i covers [2^(i-1), 2^i)
		if upper > h.max {
			upper = h.max
		}
		return upper
	}
	return h.max
}

// CounterSnap is one counter in a snapshot.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one sampled gauge in a snapshot.
type GaugeSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnap summarizes one histogram in a snapshot.
type HistogramSnap struct {
	Name  string `json:"name"`
	Unit  string `json:"unit"`
	Count int64  `json:"count"`
	Sum   int64  `json:"sum"`
	Min   int64  `json:"min"`
	Max   int64  `json:"max"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
}

// Snapshot is a point-in-time, name-sorted view of a registry, shaped
// for embedding in BENCH_*.json and flight-recorder dumps.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters,omitempty"`
	Gauges     []GaugeSnap     `json:"gauges,omitempty"`
	Histograms []HistogramSnap `json:"histograms,omitempty"`
}

// Snapshot samples every gauge and summarizes every histogram. On a nil
// registry it returns the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: c.name, Value: c.v})
	}
	for _, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: g.name, Value: g.fn()})
	}
	for _, h := range r.hists {
		s.Histograms = append(s.Histograms, HistogramSnap{
			Name: h.name, Unit: h.unit,
			Count: h.n, Sum: h.sum, Min: h.min, Max: h.max,
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Gauge looks up a sampled gauge value by name in a snapshot, reporting
// whether it exists — the accessor tests and dump checks use.
func (s Snapshot) Gauge(name string) (int64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram looks up a histogram summary by name in a snapshot, reporting
// whether it exists — benches use it to pull percentiles into flat report
// fields without re-walking the snapshot.
func (s Snapshot) Histogram(name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}
