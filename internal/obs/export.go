package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteChromeTrace renders the retained event stream in the Chrome
// trace-event JSON format, loadable in Perfetto (ui.perfetto.dev) and
// chrome://tracing. Each scope becomes one process row (pid = creation
// index), deterministic sections become B/E duration pairs on the
// emitting thread's lane, ring-depth samples become counter tracks, and
// everything else becomes an instant event carrying seq/arg/note args.
//
// The output is written with fixed formatting (no maps, no floats
// beyond exact microsecond fractions), so two runs with the same seed
// produce byte-identical files.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"traceEvents\":[")
	first := true
	sep := func() {
		if !first {
			fmt.Fprint(bw, ",\n")
		}
		first = false
	}
	pids := map[string]int{}
	if t != nil {
		for i, sc := range t.scopes {
			pids[sc.name] = i
			sep()
			fmt.Fprintf(bw, `{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":%q}}`, i, sc.name)
		}
		for _, e := range t.events {
			sep()
			writeChromeEvent(bw, pids[e.Scope], e)
		}
	}
	fmt.Fprint(bw, "]}\n")
	return bw.Flush()
}

// chromeTS renders a virtual-time instant as Chrome-trace microseconds
// with exact nanosecond fraction.
func chromeTS(nsTime int64) string {
	return fmt.Sprintf("%d.%03d", nsTime/1000, nsTime%1000)
}

func writeChromeEvent(w io.Writer, pid int, e Event) {
	ts := chromeTS(int64(e.At))
	switch e.Kind {
	case DetEnter:
		fmt.Fprintf(w, `{"name":"det","ph":"B","pid":%d,"tid":%d,"ts":%s,"args":{"seq":%d`, pid, e.TID, ts, e.Seq)
		writeChromeDetArgs(w, e)
		fmt.Fprint(w, "}}")
	case DetExit:
		fmt.Fprintf(w, `{"name":"det","ph":"E","pid":%d,"tid":%d,"ts":%s}`, pid, e.TID, ts)
	case RingDepth:
		fmt.Fprintf(w, `{"name":"occupancy","ph":"C","pid":%d,"tid":0,"ts":%s,"args":{"bytes":%d}}`, pid, ts, e.Arg)
	default:
		fmt.Fprintf(w, `{"name":%q,"ph":"i","s":"p","pid":%d,"tid":%d,"ts":%s,"args":{"seq":%d,"arg":%d`,
			e.Kind.String(), pid, e.TID, ts, e.Seq, e.Arg)
		writeChromeDetArgs(w, e)
		if e.Note != "" {
			fmt.Fprintf(w, ",\"note\":%q", e.Note)
		}
		fmt.Fprint(w, "}}")
	}
}

// writeChromeDetArgs appends the per-object sequencing identity when the
// event carries one, keeping events without it byte-compatible.
func writeChromeDetArgs(w io.Writer, e Event) {
	if e.Obj != 0 || e.OSeq != 0 {
		fmt.Fprintf(w, `,"obj":%d,"oseq":%d`, e.Obj, e.OSeq)
	}
}

// WriteJSONL renders the retained event stream as one JSON object per
// line — the machine-diffable form of the same deterministic stream.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if t != nil {
		for _, e := range t.events {
			if err := enc.Encode(e); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadJSONL parses an event stream written by WriteJSONL. It is the
// ingestion side of ftdiag: a trace dumped by one process can be
// re-loaded, graphed, and diffed by another. Blank lines are skipped;
// a malformed line aborts with its line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	var events []Event
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: jsonl line %d: %w", line, err)
	}
	return events, nil
}
