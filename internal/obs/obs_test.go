package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

func TestNilSafety(t *testing.T) {
	var tr *obs.Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sc := tr.Scope("x")
	if sc != nil {
		t.Fatal("nil tracer returned a scope")
	}
	sc.Emit(obs.TupleEmit, 1, 2, 3) // must not panic
	if sc.Recent() != nil {
		t.Error("nil scope has events")
	}
	reg := tr.Registry()
	c := reg.Counter("c")
	c.Inc()
	g := reg.Gauge("g", func() int64 { return 7 })
	h := reg.Histogram("h", "ns")
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments accumulated values")
	}
	if s := reg.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Error("nil registry snapshot not empty")
	}
	if d := tr.FlightDump(); d != nil {
		t.Error("nil tracer produced a dump")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	reg := obs.NewRegistry()
	h := reg.Histogram("wait", "ns")
	for i := 0; i < 90; i++ {
		h.Observe(3) // bucket [2,4): upper bound 3
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket [512,1024)
	}
	if h.Count() != 100 || h.Sum() != 90*3+10*1000 {
		t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
	}
	if q := h.Quantile(0.50); q != 3 {
		t.Errorf("p50 = %d, want 3", q)
	}
	if q := h.Quantile(0.99); q != 1000 {
		t.Errorf("p99 = %d, want 1000 (clamped to max)", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Errorf("p100 = %d, want 1000", q)
	}
	z := reg.Histogram("zero", "ns")
	if z.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	z.Observe(0)
	if z.Quantile(0.5) != 0 {
		t.Error("all-zero histogram quantile not 0")
	}
}

func TestSnapshotSortedAndSampled(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("z.count").Add(4)
	reg.Counter("a.count").Inc()
	v := int64(10)
	reg.Gauge("m.lag", func() int64 { return v })
	s := reg.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a.count" || s.Counters[1].Value != 4 {
		t.Fatalf("counters: %+v", s.Counters)
	}
	if lag, ok := s.Gauge("m.lag"); !ok || lag != 10 {
		t.Fatalf("gauge m.lag = %d,%v", lag, ok)
	}
	v = 3
	if lag, _ := reg.Snapshot().Gauge("m.lag"); lag != 3 {
		t.Error("gauge not re-sampled at snapshot")
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric name did not panic")
		}
	}()
	reg := obs.NewRegistry()
	reg.Counter("dup")
	reg.Counter("dup")
}

func TestFlightRingBoundedOldestFirst(t *testing.T) {
	s := sim.New(1)
	tr := obs.New(s, obs.Config{FlightEvents: 4})
	sc := tr.Scope("rec")
	for i := 0; i < 10; i++ {
		s.Schedule(time.Duration(i)*time.Microsecond, func() {})
		sc.Emit(obs.TupleEmit, 1, int64(i), 0)
	}
	got := sc.Recent()
	if len(got) != 4 {
		t.Fatalf("flight ring kept %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := int64(6 + i); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestFlightDumpMergesScopesInOrder(t *testing.T) {
	s := sim.New(1)
	tr := obs.New(s, obs.Config{})
	a, b := tr.Scope("a"), tr.Scope("b")
	a.Emit(obs.TupleEmit, 0, 1, 0)
	b.Emit(obs.AckSend, 0, 2, 0)
	a.Emit(obs.BatchFlush, 0, 3, 0)
	d := tr.FlightDump()
	if len(d.Events) != 3 {
		t.Fatalf("dump has %d events", len(d.Events))
	}
	for i, want := range []int64{1, 2, 3} {
		if d.Events[i].Seq != want {
			t.Errorf("dump[%d].Seq = %d, want %d", i, d.Events[i].Seq, want)
		}
	}
	if e, ok := d.LastEvent(obs.AckSend); !ok || e.Seq != 2 {
		t.Errorf("LastEvent(AckSend) = %+v,%v", e, ok)
	}
	var buf bytes.Buffer
	d.WriteText(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("ack")) {
		t.Error("text dump missing ack event")
	}
}

// traceBytes drives a small deterministic scenario and returns its
// Chrome trace.
func traceBytes(t *testing.T, seed int64) []byte {
	t.Helper()
	s := sim.New(seed)
	tr := obs.New(s, obs.Config{Trace: true})
	sc := tr.Scope("primary/ftns")
	ring := tr.Scope("shm/log")
	for i := 0; i < 5; i++ {
		seq := int64(i)
		s.Schedule(time.Duration(i)*time.Millisecond, func() {
			sc.Emit(obs.DetEnter, 1, seq, 0)
			sc.EmitNote(obs.DetExit, 1, seq, 0, "ok")
			ring.Emit(obs.RingDepth, 0, 0, 128*(seq+1))
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestChromeTraceValidAndDeterministic(t *testing.T) {
	a := traceBytes(t, 1)
	if !json.Valid(a) {
		t.Fatalf("chrome trace is not valid JSON:\n%s", a)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	// 2 process_name metadata + 15 events.
	if len(doc.TraceEvents) != 17 {
		t.Errorf("trace has %d events, want 17", len(doc.TraceEvents))
	}
	if !bytes.Equal(a, traceBytes(t, 1)) {
		t.Error("two identical runs produced different trace bytes")
	}
}

func TestJSONLRoundTrips(t *testing.T) {
	s := sim.New(1)
	tr := obs.New(s, obs.Config{Trace: true})
	tr.Scope("x").EmitNote(obs.Heartbeat, 0, 9, 0, "beat")
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var e struct {
		Kind  string `json:"kind"`
		Scope string `json:"scope"`
		Seq   int64  `json:"seq"`
	}
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "heartbeat" || e.Scope != "x" || e.Seq != 9 {
		t.Errorf("round-trip = %+v", e)
	}
}

func TestDisabledTracerKeepsNoStream(t *testing.T) {
	s := sim.New(1)
	tr := obs.New(s, obs.Config{}) // flight rings only
	sc := tr.Scope("a")
	for i := 0; i < 1000; i++ {
		sc.Emit(obs.TupleEmit, 0, int64(i), 0)
	}
	if len(tr.Events()) != 0 {
		t.Error("disabled tracer retained a full event stream")
	}
	if n := len(sc.Recent()); n != obs.DefaultFlightEvents {
		t.Errorf("flight ring holds %d, want %d", n, obs.DefaultFlightEvents)
	}
}
