package replication_test

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/replication"
)

// stateDigest summarizes a namespace's replicated progress — Seq_global
// plus every thread and object cursor. Both sides compute it at the same
// quiesced log watermark, so equality means the replayed state reproduces
// the recorded state at the epoch boundary.
func stateDigest(ns *replication.Namespace) uint64 {
	h := fnv.New64a()
	seq, threads := ns.Cursors()
	fmt.Fprintf(h, "s%d", seq)
	for _, c := range threads {
		fmt.Fprintf(h, "|t%d:%d", c.FTPid, c.Seq)
	}
	for _, o := range ns.ObjCursors() {
		fmt.Fprintf(h, "|o%d:%d", o.Obj, o.Seq)
	}
	return h.Sum64()
}

// startCutter runs a primary-side epoch cutter that cuts whenever new
// tuples were recorded since the last cut, until *stop is set. badDigest
// substitutes a corrupted digest for epoch `corrupt` (0 = never).
func startCutter(d *duo, period time.Duration, stop *bool, corrupt uint64) {
	d.pk.Spawn("epoch-cutter", func(t *kernel.Task) {
		var epoch, lastSeq uint64
		for !*stop {
			t.Sleep(period)
			if d.pns.SeqGlobal() == lastSeq {
				continue
			}
			release := d.pns.Quiesce(t)
			seq, sent := d.pns.LogWatermark()
			epoch++
			digest := stateDigest(d.pns)
			if epoch == corrupt {
				digest = ^digest
			}
			d.pns.EmitEpoch(t, replication.EpochMark{
				Epoch: epoch, SeqGlobal: seq, Sent: sent, Digest: digest,
			}, 64)
			release()
			lastSeq = seq
		}
	})
}

// verifyDigest installs the backup-side boundary check: recompute the
// digest from the replayed state, quiesced at the marker's frontier.
func verifyDigest(ns *replication.Namespace) {
	ns.OnEpoch(func(mark replication.EpochMark) bool {
		return stateDigest(ns) == mark.Digest
	})
}

// TestEpochTruncationBothSides drives a contended multi-threaded workload
// under a periodic epoch cutter: every boundary must digest-verify on the
// backup, and both sides must truncate their retained tuple logs at the
// verified boundaries instead of retaining the full history.
func TestEpochTruncationBothSides(t *testing.T) {
	cfg := replication.DefaultConfig()
	cfg.Rejoinable = true
	d := newDuo(t, 1, cfg, true)
	verifyDigest(d.sns)
	var pOrder, sOrder []int
	stop := false
	d.pns.Start("app", nil, lockOrderApp(&pOrder, 6, 15))
	d.sns.Start("app", nil, lockOrderApp(&sOrder, 6, 15))
	startCutter(d, time.Millisecond, &stop, 0)
	// Let replay drain past the last boundary, then stop the cutter.
	d.pk.Spawn("stopper", func(tk *kernel.Task) {
		for len(pOrder) < 6*15 || len(sOrder) < 6*15 {
			tk.Sleep(time.Millisecond)
		}
		tk.Sleep(20 * time.Millisecond)
		stop = true
	})
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range pOrder {
		if pOrder[i] != sOrder[i] {
			t.Fatalf("replay diverged at %d: %d vs %d", i, pOrder[i], sOrder[i])
		}
	}
	ps, ss := d.pns.Stats(), d.sns.Stats()
	if ss.Divergences != 0 {
		t.Fatalf("%d divergences", ss.Divergences)
	}
	if ps.EpochCuts < 2 {
		t.Fatalf("only %d epoch cuts, want several", ps.EpochCuts)
	}
	if ps.LogTruncated == 0 {
		t.Error("primary never truncated its retained log")
	}
	if ss.LogTruncated == 0 {
		t.Error("backup never truncated its retained log")
	}
	// The retained tail is bounded by what arrived after the last verified
	// boundary — a small fraction of the full history.
	total := int(ps.LogMessages)
	if r := d.pns.RetainedTuples(); r >= total/2 {
		t.Errorf("primary retains %d of %d tuples; truncation ineffective", r, total)
	}
	if r := d.sns.RetainedTuples(); r >= total/2 {
		t.Errorf("backup retains %d of %d tuples; truncation ineffective", r, total)
	}
}

// TestEpochDigestMismatchDiverges corrupts one epoch marker's digest
// mid-run: the backup's boundary verification must detect the mismatch and
// halt the replica as diverged instead of truncating over corrupt state.
func TestEpochDigestMismatchDiverges(t *testing.T) {
	cfg := replication.DefaultConfig()
	cfg.Rejoinable = true
	cfg.PanicOnDivergence = true
	d := newDuo(t, 2, cfg, true)
	verifyDigest(d.sns)
	var pOrder, sOrder []int
	stop := false
	d.pns.Start("app", nil, lockOrderApp(&pOrder, 4, 20))
	d.sns.Start("app", nil, lockOrderApp(&sOrder, 4, 20))
	startCutter(d, time.Millisecond, &stop, 2) // corrupt the 2nd epoch
	d.pk.Spawn("stopper", func(tk *kernel.Task) {
		for len(pOrder) < 4*20 {
			tk.Sleep(time.Millisecond)
		}
		tk.Sleep(20 * time.Millisecond)
		stop = true
	})
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if div := d.sns.Stats().Divergences; div == 0 {
		t.Fatal("backup verified a corrupted epoch digest without diverging")
	}
	if d.sk.Alive() {
		t.Error("diverged backup kernel still alive")
	}
	if !d.pk.Alive() {
		t.Error("primary killed by a backup-side divergence")
	}
	// The first (intact) epoch may have truncated; the corrupted one must
	// not have acked, so the primary cannot have truncated past it.
	if got := d.pns.Stats().EpochCuts; got < 2 {
		t.Fatalf("cutter emitted %d epochs, want >= 2", got)
	}
}

// TestEpochQuorumGatesPrimaryTruncation leaves the backup without a
// boundary verifier: markers are never acknowledged, so the primary must
// keep its full retained history — truncating without a verification
// quorum would discard the only copy of rejoin catch-up state.
func TestEpochQuorumGatesPrimaryTruncation(t *testing.T) {
	cfg := replication.DefaultConfig()
	cfg.Rejoinable = true
	d := newDuo(t, 3, cfg, true)
	// No OnEpoch on the backup: markers pass through unverified.
	var pOrder, sOrder []int
	stop := false
	d.pns.Start("app", nil, lockOrderApp(&pOrder, 4, 10))
	d.sns.Start("app", nil, lockOrderApp(&sOrder, 4, 10))
	startCutter(d, time.Millisecond, &stop, 0)
	d.pk.Spawn("stopper", func(tk *kernel.Task) {
		for len(pOrder) < 4*10 || len(sOrder) < 4*10 {
			tk.Sleep(time.Millisecond)
		}
		tk.Sleep(20 * time.Millisecond)
		stop = true
	})
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	ps := d.pns.Stats()
	if ps.EpochCuts < 2 {
		t.Fatalf("only %d epoch cuts", ps.EpochCuts)
	}
	if ps.LogTruncated != 0 {
		t.Errorf("primary truncated %d tuples with no verified epoch ack", ps.LogTruncated)
	}
	if d.sns.Stats().Divergences != 0 {
		t.Errorf("unexpected divergence")
	}
}
