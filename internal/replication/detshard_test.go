package replication_test

import (
	"testing"
	"time"

	"repro/internal/pthread"
	"repro/internal/replication"
	"repro/internal/shm"
)

func shardedConfig(n int) replication.Config {
	cfg := replication.DefaultConfig()
	cfg.DetShards = n
	return cfg
}

func TestShardedReplayMatchesRecordOrder(t *testing.T) {
	// One shared lock contended by every thread: all sections serialize on
	// one sequencing object, so sharding must not change the replayed
	// acquisition order.
	for seed := int64(1); seed <= 5; seed++ {
		d := newDuo(t, seed, shardedConfig(4), true)
		var pOrder, sOrder []int
		d.pns.Start("app", nil, lockOrderApp(&pOrder, 6, 15))
		d.sns.Start("app", nil, lockOrderApp(&sOrder, 6, 15))
		if err := d.sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(pOrder) != 6*15 || len(sOrder) != len(pOrder) {
			t.Fatalf("seed %d: lengths %d vs %d", seed, len(pOrder), len(sOrder))
		}
		for i := range pOrder {
			if pOrder[i] != sOrder[i] {
				t.Fatalf("seed %d: replay diverged at %d: primary %d, secondary %d",
					seed, i, pOrder[i], sOrder[i])
			}
		}
		if div := d.sns.Stats().Divergences; div != 0 {
			t.Errorf("seed %d: %d divergences detected", seed, div)
		}
	}
}

// independentLocksApp gives every thread its own mutex and appends each
// thread's acquisitions to its own slice: with sharded det sections the
// threads' sections sequence under different locks and replay concurrently,
// and each per-object order must still match the primary's.
func independentLocksApp(out []*[]int, nIters int) func(*replication.Thread) {
	return func(root *replication.Thread) {
		lib := root.Lib()
		nThreads := len(out)
		locks := make([]*pthread.Mutex, nThreads)
		for i := range locks {
			locks[i] = lib.NewMutex()
		}
		var threads []*replication.Thread
		for i := 0; i < nThreads; i++ {
			i := i
			threads = append(threads, root.NS().SpawnThread(root, "w", func(th *replication.Thread) {
				for j := 0; j < nIters; j++ {
					th.Task().Compute(time.Duration(th.Task().Kernel().Sim().Rand().Intn(100)) * time.Microsecond)
					locks[i].Lock(th.Task())
					*out[i] = append(*out[i], th.FTPid()*1000+j)
					locks[i].Unlock(th.Task())
				}
			}))
		}
		for _, th := range threads {
			root.Join(th)
		}
	}
}

func TestShardedIndependentLocksReplay(t *testing.T) {
	const nThreads, nIters = 8, 40
	for seed := int64(1); seed <= 3; seed++ {
		d := newDuo(t, seed, shardedConfig(4), true)
		pOut := make([]*[]int, nThreads)
		sOut := make([]*[]int, nThreads)
		for i := range pOut {
			pOut[i] = new([]int)
			sOut[i] = new([]int)
		}
		d.pns.Start("app", nil, independentLocksApp(pOut, nIters))
		d.sns.Start("app", nil, independentLocksApp(sOut, nIters))
		if err := d.sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range pOut {
			if len(*pOut[i]) != nIters || len(*sOut[i]) != nIters {
				t.Fatalf("seed %d: lock %d saw %d/%d acquisitions, want %d",
					seed, i, len(*pOut[i]), len(*sOut[i]), nIters)
			}
			for j := range *pOut[i] {
				if (*pOut[i])[j] != (*sOut[i])[j] {
					t.Fatalf("seed %d: lock %d order diverged at %d", seed, i, j)
				}
			}
		}
		if div := d.sns.Stats().Divergences; div != 0 {
			t.Errorf("seed %d: %d divergences detected", seed, div)
		}
	}
}

func TestCrossShardCondVarReplay(t *testing.T) {
	// A condition variable and its user mutex land on DIFFERENT det shards
	// (verified below), so cond_wait's unlock-enqueue-park spans two
	// sequencers; the consumer wake order must still replay exactly.
	const shards = 4
	app := func(out *[]int, placed *[2]int) func(*replication.Thread) {
		return func(root *replication.Thread) {
			lib := root.Lib()
			m := lib.NewMutex()
			c := lib.NewCond()
			placed[0] = pthread.ShardOf(m.ID(), shards)
			placed[1] = pthread.ShardOf(c.ID(), shards)
			queue := 0
			var threads []*replication.Thread
			for i := 0; i < 4; i++ {
				threads = append(threads, root.NS().SpawnThread(root, "consumer", func(th *replication.Thread) {
					for j := 0; j < 5; j++ {
						m.Lock(th.Task())
						for queue == 0 {
							c.Wait(th.Task(), m)
						}
						queue--
						*out = append(*out, th.FTPid())
						m.Unlock(th.Task())
					}
				}))
			}
			prod := root.NS().SpawnThread(root, "producer", func(th *replication.Thread) {
				for j := 0; j < 20; j++ {
					th.Task().Compute(time.Duration(th.Task().Kernel().Sim().Rand().Intn(100)) * time.Microsecond)
					m.Lock(th.Task())
					queue++
					c.Signal(th.Task())
					m.Unlock(th.Task())
				}
			})
			threads = append(threads, prod)
			for _, th := range threads {
				root.Join(th)
			}
		}
	}
	for seed := int64(1); seed <= 4; seed++ {
		var pOrder, sOrder []int
		var placed [2]int
		d := newDuo(t, seed, shardedConfig(shards), true)
		d.pns.Start("app", nil, app(&pOrder, &placed))
		d.sns.Start("app", nil, app(&sOrder, &placed))
		if err := d.sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if placed[0] == placed[1] {
			t.Fatalf("mutex and condvar hashed to the same shard %d; the test must cross shards", placed[0])
		}
		if len(pOrder) != 20 || len(sOrder) != 20 {
			t.Fatalf("seed %d: consumed %d/%d, want 20/20", seed, len(pOrder), len(sOrder))
		}
		for i := range pOrder {
			if pOrder[i] != sOrder[i] {
				t.Fatalf("seed %d: consumer wake order diverged at %d: %v vs %v", seed, i, pOrder, sOrder)
			}
		}
		if div := d.sns.Stats().Divergences; div != 0 {
			t.Errorf("seed %d: %d divergences detected", seed, div)
		}
	}
}

func TestCrossShardCondVarReplayUnderChaos(t *testing.T) {
	// The dup-delay fault pattern applied straight to the log ring (the
	// chaos layer's preset never drops log transfers — the coherency
	// matrix forbids it): every third transfer is duplicated and every
	// fifth delayed. The per-object duplicate filter and the ring's FIFO
	// delay clamp must absorb both without perturbing the replayed wake
	// order of a condvar whose internal lock and user mutex sit on
	// different shards.
	const shards = 4
	app := func(out *[]int) func(*replication.Thread) {
		return func(root *replication.Thread) {
			lib := root.Lib()
			m := lib.NewMutex()
			c := lib.NewCond()
			if pthread.ShardOf(m.ID(), shards) == pthread.ShardOf(c.ID(), shards) {
				panic("mutex and condvar on the same shard; the test must cross shards")
			}
			queue := 0
			var threads []*replication.Thread
			for i := 0; i < 4; i++ {
				threads = append(threads, root.NS().SpawnThread(root, "consumer", func(th *replication.Thread) {
					for j := 0; j < 5; j++ {
						m.Lock(th.Task())
						for queue == 0 {
							c.Wait(th.Task(), m)
						}
						queue--
						*out = append(*out, th.FTPid())
						m.Unlock(th.Task())
					}
				}))
			}
			prod := root.NS().SpawnThread(root, "producer", func(th *replication.Thread) {
				for j := 0; j < 20; j++ {
					th.Task().Compute(time.Duration(th.Task().Kernel().Sim().Rand().Intn(100)) * time.Microsecond)
					m.Lock(th.Task())
					queue++
					c.Signal(th.Task())
					m.Unlock(th.Task())
				}
			})
			threads = append(threads, prod)
			for _, th := range threads {
				root.Join(th)
			}
		}
	}
	var pOrder, sOrder []int
	d := newDuo(t, 5, shardedConfig(shards), true)
	n := 0
	d.log.SetChaosHook(func(msgs []shm.Message) shm.ChaosVerdict {
		n++
		var v shm.ChaosVerdict
		if n%3 == 0 {
			v.Dup = 1
		}
		if n%5 == 0 {
			v.Delay = 120 * time.Microsecond
		}
		return v
	})
	d.pns.Start("app", nil, app(&pOrder))
	d.sns.Start("app", nil, app(&sOrder))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pOrder) != 20 || len(sOrder) != 20 {
		t.Fatalf("consumed %d/%d, want 20/20", len(pOrder), len(sOrder))
	}
	for i := range pOrder {
		if pOrder[i] != sOrder[i] {
			t.Fatalf("consumer wake order diverged at %d: %v vs %v", i, pOrder, sOrder)
		}
	}
	st := d.sns.Stats()
	if st.Divergences != 0 {
		t.Errorf("%d divergences detected", st.Divergences)
	}
	if st.Duplicates == 0 {
		t.Error("chaos duplicated transfers but the replayer filtered none")
	}
}

func TestShardedPromotionAfterPrimaryDeath(t *testing.T) {
	d := newDuo(t, 11, shardedConfig(4), true)
	var pCount, sCount int
	d.pns.Start("app", nil, lockCounterApp(&pCount, 4, 200))
	d.sns.Start("app", nil, lockCounterApp(&sCount, 4, 200))
	d.sim.Schedule(40*time.Millisecond, func() {
		d.pk.Panic("injected failure", nil)
		d.sns.Replayer().Promote()
	})
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sCount != 4*200 {
		t.Errorf("secondary finished %d increments, want %d (live continuation)", sCount, 4*200)
	}
	if d.sns.Role() != replication.RoleLive {
		t.Errorf("secondary role = %v, want live", d.sns.Role())
	}
	if pCount == 4*200 {
		t.Skip("primary finished before the injected failure; timing too fast to exercise failover")
	}
}

func TestShardedCursorsAgreeAtCompletion(t *testing.T) {
	// After a quiesced run both sides expose identical per-object cursor
	// vectors and Lamport watermarks — the invariant rejoin checkpoint
	// verification is built on.
	d := newDuo(t, 7, shardedConfig(4), true)
	pOut := make([]*[]int, 4)
	sOut := make([]*[]int, 4)
	for i := range pOut {
		pOut[i] = new([]int)
		sOut[i] = new([]int)
	}
	d.pns.Start("app", nil, independentLocksApp(pOut, 25))
	d.sns.Start("app", nil, independentLocksApp(sOut, 25))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	pObjs := d.pns.ObjCursors()
	sObjs := d.sns.ObjCursors()
	if len(pObjs) == 0 {
		t.Fatal("primary reported no object cursors")
	}
	if len(pObjs) != len(sObjs) {
		t.Fatalf("cursor vector lengths differ: %d vs %d", len(pObjs), len(sObjs))
	}
	for i := range pObjs {
		if pObjs[i] != sObjs[i] {
			t.Fatalf("object cursor %d differs: %+v vs %+v", i, pObjs[i], sObjs[i])
		}
	}
	if head, seq := d.sns.ReplayHead(), d.pns.SeqGlobal(); head != seq {
		t.Fatalf("secondary Lamport frontier %d != primary Seq_global %d", head, seq)
	}
}
