package replication_test

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/pthread"
	"repro/internal/replication"
	"repro/internal/shm"
	"repro/internal/sim"
)

// duo is a primary/secondary pair wired through a shared-memory fabric.
type duo struct {
	sim    *sim.Simulation
	mach   *hw.Machine
	fabric *shm.Fabric
	pk, sk *kernel.Kernel
	pns    *replication.Namespace
	sns    *replication.Namespace
	log    *shm.Ring
	acks   *shm.Ring
}

func newDuo(t *testing.T, seed int64, cfg replication.Config, fifo bool) *duo {
	t.Helper()
	s := sim.New(seed)
	m := hw.New(s, hw.Opteron6376x4())
	pp, err := m.NewPartition("primary", 0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.NewPartition("secondary", 4, 5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	kp.FutexFIFO = fifo
	pk, err := kernel.Boot(pp, kernel.Config{Name: "primary", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := kernel.Boot(sp, kernel.Config{Name: "secondary", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	fabric := shm.NewFabric(s, pp.CrossLatency(sp))
	if cfg.LogRingBytes == 0 {
		cfg.LogRingBytes = 4 << 20
	}
	log := fabric.NewRing("ftns.log", 0, cfg.LogRingBytes)
	acks := fabric.NewRing("ftns.acks", 1, 64<<10)
	return &duo{
		sim: s, mach: m, fabric: fabric, pk: pk, sk: sk,
		pns: replication.NewPrimary("ftns", pk, cfg, log, acks),
		sns: replication.NewSecondary("ftns", sk, cfg, log, acks),
		log: log, acks: acks,
	}
}

// launch runs the same application function on both replicas.
func (d *duo) launch(env map[string]string, app func(*replication.Thread)) {
	d.pns.Start("app", env, app)
	d.sns.Start("app", env, app)
}

// lockOrderApp appends (ftpid, iteration) to out under a shared mutex from
// several threads with side-local random pauses: the append order is the
// lock acquisition order.
func lockOrderApp(out *[]int, nThreads, nIters int) func(*replication.Thread) {
	return func(root *replication.Thread) {
		lib := root.Lib()
		m := lib.NewMutex()
		var threads []*replication.Thread
		for i := 0; i < nThreads; i++ {
			threads = append(threads, root.NS().SpawnThread(root, "w", func(th *replication.Thread) {
				for j := 0; j < nIters; j++ {
					// Local (unreplicated) timing noise: schedules differ
					// across replicas; only replay keeps orders equal.
					th.Task().Compute(time.Duration(th.Task().Kernel().Sim().Rand().Intn(300)) * time.Microsecond)
					m.Lock(th.Task())
					// Hold the lock while working so unlock hand-off (the
					// FIFO-futex path) is actually contended.
					th.Task().Compute(30 * time.Microsecond)
					*out = append(*out, th.FTPid()*1000+j)
					m.Unlock(th.Task())
				}
			}))
		}
		for _, th := range threads {
			root.Join(th)
		}
	}
}

func TestReplayMatchesRecordOrder(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		d := newDuo(t, seed, replication.DefaultConfig(), true)
		var pOrder, sOrder []int
		d.pns.Start("app", nil, lockOrderApp(&pOrder, 6, 15))
		d.sns.Start("app", nil, lockOrderApp(&sOrder, 6, 15))
		if err := d.sim.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(pOrder) != 6*15 || len(sOrder) != len(pOrder) {
			t.Fatalf("seed %d: lengths %d vs %d", seed, len(pOrder), len(sOrder))
		}
		for i := range pOrder {
			if pOrder[i] != sOrder[i] {
				t.Fatalf("seed %d: replay diverged at %d: primary %d, secondary %d",
					seed, i, pOrder[i], sOrder[i])
			}
		}
		if div := d.sns.Stats().Divergences; div != 0 {
			t.Errorf("seed %d: %d divergences detected", seed, div)
		}
	}
}

func TestCondVarReplay(t *testing.T) {
	app := func(out *[]int) func(*replication.Thread) {
		return func(root *replication.Thread) {
			lib := root.Lib()
			m := lib.NewMutex()
			c := lib.NewCond()
			queue := 0
			var threads []*replication.Thread
			for i := 0; i < 4; i++ {
				threads = append(threads, root.NS().SpawnThread(root, "consumer", func(th *replication.Thread) {
					for j := 0; j < 5; j++ {
						m.Lock(th.Task())
						for queue == 0 {
							c.Wait(th.Task(), m)
						}
						queue--
						*out = append(*out, th.FTPid())
						m.Unlock(th.Task())
					}
				}))
			}
			prod := root.NS().SpawnThread(root, "producer", func(th *replication.Thread) {
				for j := 0; j < 20; j++ {
					th.Task().Compute(time.Duration(th.Task().Kernel().Sim().Rand().Intn(100)) * time.Microsecond)
					m.Lock(th.Task())
					queue++
					c.Signal(th.Task())
					m.Unlock(th.Task())
				}
			})
			threads = append(threads, prod)
			for _, th := range threads {
				root.Join(th)
			}
		}
	}
	var pOrder, sOrder []int
	d := newDuo(t, 3, replication.DefaultConfig(), true)
	d.pns.Start("app", nil, app(&pOrder))
	d.sns.Start("app", nil, app(&sOrder))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pOrder) != 20 || len(sOrder) != 20 {
		t.Fatalf("consumed %d/%d, want 20/20", len(pOrder), len(sOrder))
	}
	for i := range pOrder {
		if pOrder[i] != sOrder[i] {
			t.Fatalf("consumer wake order diverged at %d: %v vs %v", i, pOrder, sOrder)
		}
	}
}

func TestTimedWaitOutcomeReplicated(t *testing.T) {
	// The timeout-versus-signal race resolves identically on both sides
	// because the outcome is recorded, even though the secondary's local
	// timing is different.
	app := func(out *[]bool) func(*replication.Thread) {
		return func(root *replication.Thread) {
			lib := root.Lib()
			m := lib.NewMutex()
			c := lib.NewCond()
			var threads []*replication.Thread
			for i := 0; i < 6; i++ {
				i := i
				threads = append(threads, root.NS().SpawnThread(root, "waiter", func(th *replication.Thread) {
					m.Lock(th.Task())
					got := c.TimedWait(th.Task(), m, time.Duration(1+i)*time.Millisecond)
					m.Unlock(th.Task())
					m.Lock(th.Task())
					*out = append(*out, got)
					m.Unlock(th.Task())
				}))
			}
			sig := root.NS().SpawnThread(root, "signaler", func(th *replication.Thread) {
				th.Task().Sleep(3 * time.Millisecond)
				for j := 0; j < 3; j++ {
					m.Lock(th.Task())
					c.Signal(th.Task())
					m.Unlock(th.Task())
				}
			})
			threads = append(threads, sig)
			for _, th := range threads {
				root.Join(th)
			}
		}
	}
	var pOut, sOut []bool
	d := newDuo(t, 9, replication.DefaultConfig(), true)
	d.pns.Start("app", nil, app(&pOut))
	d.sns.Start("app", nil, app(&sOut))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pOut) != 6 || len(sOut) != 6 {
		t.Fatalf("outcomes %d/%d, want 6/6", len(pOut), len(sOut))
	}
	for i := range pOut {
		if pOut[i] != sOut[i] {
			t.Fatalf("timedwait outcomes diverged: %v vs %v", pOut, sOut)
		}
	}
	if d.sns.Stats().Divergences != 0 {
		t.Errorf("divergences: %d", d.sns.Stats().Divergences)
	}
}

func TestGetTimeOfDayReplicated(t *testing.T) {
	var pTimes, sTimes []sim.Time
	app := func(out *[]sim.Time) func(*replication.Thread) {
		return func(root *replication.Thread) {
			for i := 0; i < 5; i++ {
				root.Task().Sleep(time.Millisecond)
				*out = append(*out, root.Now())
			}
		}
	}
	d := newDuo(t, 4, replication.DefaultConfig(), true)
	d.pns.Start("app", nil, app(&pTimes))
	d.sns.Start("app", nil, app(&sTimes))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range pTimes {
		if pTimes[i] != sTimes[i] {
			t.Fatalf("gettimeofday diverged: %v vs %v", pTimes, sTimes)
		}
	}
}

func TestSyscallDataReplicated(t *testing.T) {
	var pData, sData []byte
	app := func(out *[]byte) func(*replication.Thread) {
		return func(root *replication.Thread) {
			ns := root.NS()
			// The "syscall" produces data only meaningful on the primary
			// (e.g. bytes read from a socket); the secondary must get the
			// recorded copy.
			v, data := ns.SyscallData(root, replication.OpSockData, 42, func() (uint64, []byte) {
				return 5, []byte("hello")
			})
			if v != 5 {
				t.Errorf("syscall value = %d, want 5", v)
			}
			*out = append([]byte(nil), data...)
		}
	}
	d := newDuo(t, 5, replication.DefaultConfig(), true)
	d.pns.Start("app", nil, app(&pData))
	// On the secondary, run() returning different data would expose
	// non-replication; it must never be called.
	d.sns.Start("app", nil, func(root *replication.Thread) {
		v, data := root.NS().SyscallData(root, replication.OpSockData, 42, func() (uint64, []byte) {
			t.Error("secondary executed the syscall locally")
			return 0, nil
		})
		if v != 5 {
			t.Errorf("secondary syscall value = %d, want 5", v)
		}
		sData = append([]byte(nil), data...)
	})
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pData, []byte("hello")) || !bytes.Equal(sData, []byte("hello")) {
		t.Errorf("data = %q / %q, want hello/hello", pData, sData)
	}
}

func TestEnvReplicated(t *testing.T) {
	var got string
	d := newDuo(t, 6, replication.DefaultConfig(), true)
	d.pns.Start("app", map[string]string{"MODE": "ft"}, func(*replication.Thread) {})
	d.sns.Start("app", map[string]string{"MODE": "WRONG-LOCAL-VALUE"}, func(root *replication.Thread) {
		got = root.NS().Getenv("MODE")
	})
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "ft" {
		t.Errorf("secondary env MODE = %q, want %q (the primary's)", got, "ft")
	}
}

func TestFTPidsMatchAcrossReplicas(t *testing.T) {
	collect := func(out *[]int) func(*replication.Thread) {
		return func(root *replication.Thread) {
			lib := root.Lib()
			m := lib.NewMutex()
			var threads []*replication.Thread
			for i := 0; i < 3; i++ {
				// Spawner threads that themselves spawn: ft_pid assignment
				// must still agree because it happens in a det section.
				threads = append(threads, root.NS().SpawnThread(root, "spawner", func(th *replication.Thread) {
					child := th.NS().SpawnThread(th, "child", func(ch *replication.Thread) {
						m.Lock(ch.Task())
						*out = append(*out, ch.FTPid())
						m.Unlock(ch.Task())
					})
					th.Join(child)
				}))
			}
			for _, th := range threads {
				root.Join(th)
			}
		}
	}
	var pPids, sPids []int
	d := newDuo(t, 7, replication.DefaultConfig(), true)
	d.pns.Start("app", nil, collect(&pPids))
	d.sns.Start("app", nil, collect(&sPids))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pPids) != 3 || len(sPids) != 3 {
		t.Fatalf("pids %v / %v", pPids, sPids)
	}
	for i := range pPids {
		if pPids[i] != sPids[i] {
			t.Fatalf("child ft_pids diverged: %v vs %v", pPids, sPids)
		}
	}
}

func TestOutputCommitWaitsForAck(t *testing.T) {
	// Use an artificially slow mailbox so the receipt round-trip is long
	// enough to observe: output requested right after a section must be
	// held until the log message has propagated and its receipt has been
	// observed (two propagation delays).
	s := sim.New(8)
	m := hw.New(s, hw.Opteron6376x4())
	pp, _ := m.NewPartition("primary", 0, 1, 2, 3)
	sp, _ := m.NewPartition("secondary", 4, 5, 6, 7)
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	pk, err := kernel.Boot(pp, kernel.Config{Name: "primary", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	sk, err := kernel.Boot(sp, kernel.Config{Name: "secondary", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	const slow = 200 * time.Microsecond
	fabric := shm.NewFabric(s, slow)
	cfg := replication.DefaultConfig()
	cfg.StrictOutputCommit = true
	log := fabric.NewRing("log", 0, cfg.LogRingBytes)
	acks := fabric.NewRing("acks", 1, 64<<10)
	pns := replication.NewPrimary("ftns", pk, cfg, log, acks)
	sns := replication.NewSecondary("ftns", sk, cfg, log, acks)

	var releasedAt, requestedAt sim.Time
	pns.Start("app", nil, func(root *replication.Thread) {
		lib := root.Lib()
		mx := lib.NewMutex()
		mx.Lock(root.Task())
		mx.Unlock(root.Task())
		requestedAt = root.Task().Now()
		root.NS().OnStable(func() { releasedAt = s.Now() })
	})
	sns.Start("app", nil, func(root *replication.Thread) {
		lib := root.Lib()
		mx := lib.NewMutex()
		mx.Lock(root.Task())
		mx.Unlock(root.Task())
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if releasedAt == 0 {
		t.Fatal("output never became stable")
	}
	if gap := releasedAt.Sub(requestedAt); gap <= 0 || gap > 3*slow {
		t.Errorf("released %v after request, want within (0, %v] (receipt round-trip)", gap, 3*slow)
	}
}

func TestRelaxedOutputCommitImmediate(t *testing.T) {
	cfg := replication.DefaultConfig()
	cfg.StrictOutputCommit = false
	d := newDuo(t, 8, cfg, true)
	released := false
	d.pns.Start("app", nil, func(root *replication.Thread) {
		lib := root.Lib()
		m := lib.NewMutex()
		m.Lock(root.Task())
		m.Unlock(root.Task())
		root.NS().OnStable(func() { released = true })
		if !released {
			t.Error("relaxed output commit did not release immediately")
		}
	})
	d.sns.Start("app", nil, func(root *replication.Thread) {
		lib := root.Lib()
		m := lib.NewMutex()
		m.Lock(root.Task())
		m.Unlock(root.Task())
	})
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStockFutexOrderBreaksReplay(t *testing.T) {
	// The ablation behind the paper's FIFO-futex modification (§3.3): with
	// stock (unordered) wake-up, the secondary hands contended locks to
	// different threads than the primary did, and replay either detects a
	// divergence (condition variables: the recorded outcome mismatches) or
	// stalls (mutexes: the thread owed the next turn never arrives).
	broken := false
	for seed := int64(1); seed <= 10 && !broken; seed++ {
		d := newDuo(t, seed, replication.DefaultConfig(), false)
		var pOrder, sOrder []int
		d.pns.Start("app", nil, lockOrderApp(&pOrder, 6, 10))
		d.sns.Start("app", nil, lockOrderApp(&sOrder, 6, 10))
		if err := d.sim.Run(); err != nil {
			t.Fatal(err)
		}
		if d.sns.Stats().Divergences > 0 || len(sOrder) < len(pOrder) {
			broken = true
		}
		// The most insidious failure: replay completes but the replica's
		// state silently differs (lock acquisitions in a different order).
		for i := range pOrder {
			if i < len(sOrder) && sOrder[i] != pOrder[i] {
				broken = true
				break
			}
		}
	}
	if !broken {
		t.Error("stock futex order never broke replay across 10 seeds")
	}

	// Control: with FIFO order the same workloads replay fully.
	d := newDuo(t, 1, replication.DefaultConfig(), true)
	var pOrder, sOrder []int
	d.pns.Start("app", nil, lockOrderApp(&pOrder, 6, 10))
	d.sns.Start("app", nil, lockOrderApp(&sOrder, 6, 10))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(sOrder) != len(pOrder) || d.sns.Stats().Divergences != 0 {
		t.Error("control run with FIFO futex did not replay cleanly")
	}
}

func TestPromotionAfterPrimaryDeath(t *testing.T) {
	d := newDuo(t, 11, replication.DefaultConfig(), true)
	var pCount, sCount int
	counter := func(out *int) func(*replication.Thread) {
		return lockCounterApp(out, 4, 200)
	}
	d.pns.Start("app", nil, counter(&pCount))
	d.sns.Start("app", nil, counter(&sCount))
	// Kill the primary mid-run, then promote the secondary.
	d.sim.Schedule(40*time.Millisecond, func() {
		d.pk.Panic("injected failure", nil)
		d.sns.Replayer().Promote()
	})
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sCount != 4*200 {
		t.Errorf("secondary finished %d increments, want %d (live continuation)", sCount, 4*200)
	}
	if d.sns.Role() != replication.RoleLive {
		t.Errorf("secondary role = %v, want live", d.sns.Role())
	}
	if pCount == 4*200 {
		t.Skip("primary finished before the injected failure; timing too fast to exercise failover")
	}
}

// lockCounterApp increments a shared counter under a mutex.
func lockCounterApp(out *int, nThreads, nIters int) func(*replication.Thread) {
	return func(root *replication.Thread) {
		lib := root.Lib()
		m := lib.NewMutex()
		var threads []*replication.Thread
		for i := 0; i < nThreads; i++ {
			threads = append(threads, root.NS().SpawnThread(root, "w", func(th *replication.Thread) {
				for j := 0; j < nIters; j++ {
					th.Task().Compute(50 * time.Microsecond)
					m.Lock(th.Task())
					*out++
					m.Unlock(th.Task())
				}
			}))
		}
		for _, th := range threads {
			root.Join(th)
		}
	}
}

func TestPrimaryGoLiveAfterSecondaryDeath(t *testing.T) {
	cfg := replication.DefaultConfig()
	cfg.LogRingBytes = 16 << 10 // small: primary would stall without GoLive
	d := newDuo(t, 12, cfg, true)
	var pCount, sCount int
	d.pns.Start("app", nil, lockCounterApp(&pCount, 4, 300))
	d.sns.Start("app", nil, lockCounterApp(&sCount, 4, 300))
	d.sim.Schedule(10*time.Millisecond, func() {
		d.sk.Panic("injected failure", nil)
		d.pns.GoLive()
	})
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if pCount != 4*300 {
		t.Errorf("primary finished %d increments, want %d", pCount, 4*300)
	}
	if d.pns.Role() != replication.RoleLive {
		t.Errorf("primary role = %v, want live", d.pns.Role())
	}
}

func TestSecondaryLagsButStaysBounded(t *testing.T) {
	// The log ring is the in-flight buffer: with a tiny ring the primary
	// must throttle to the secondary's replay rate (sustained mode).
	cfg := replication.DefaultConfig()
	cfg.LogRingBytes = 2 << 10 // ~16 tuples
	cfg.ReplayDispatchCost = 200 * time.Microsecond
	// The bounds below are calibrated in per-tuple ring units: stream every
	// tuple individually. TestSecondaryLagsBoundedWithBatching covers the
	// coalesced path.
	cfg.BatchTuples = 1
	d := newDuo(t, 13, cfg, true)
	var pDone, sDone sim.Time
	done := func(at *sim.Time, out *int) func(*replication.Thread) {
		app := lockCounterApp(out, 2, 50)
		return func(root *replication.Thread) {
			app(root)
			*at = root.Task().Now()
		}
	}
	var pCount, sCount int
	d.pns.Start("app", nil, done(&pDone, &pCount))
	d.sns.Start("app", nil, done(&sDone, &sCount))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	// 2x50 lock ops + other sections at >=200us serialized replay each
	// puts a floor on the secondary's completion...
	if sDone < sim.Time(20*time.Millisecond) {
		t.Errorf("secondary done at %v — replay cost not applied", sDone)
	}
	// ...and the tiny ring (~16 tuples, i.e. ~3.2ms of buffered replay
	// work) forces the primary to stay within roughly one ring of the
	// secondary rather than sprinting ahead. Unthrottled, the primary
	// would finish in ~3ms.
	if pDone < sim.Time(12*time.Millisecond) {
		t.Errorf("primary done at %v — no backpressure from the log ring", pDone)
	}
	if lead := sDone.Sub(pDone); lead > 6*time.Millisecond {
		t.Errorf("primary leads secondary by %v — more than one ring of in-flight work", lead)
	}
}

// TestSecondaryLagsBoundedWithBatching is the batched counterpart: tuple
// coalescing widens the in-flight window by at most one batch per side (the
// primary's pending buffer plus the replayer's drained-but-undispatched
// batch), so throttling to the secondary's drain rate must survive.
func TestSecondaryLagsBoundedWithBatching(t *testing.T) {
	cfg := replication.DefaultConfig()
	cfg.LogRingBytes = 2 << 10 // ~16 tuples in flight
	cfg.ReplayDispatchCost = 200 * time.Microsecond
	cfg.BatchTuples = 8
	d := newDuo(t, 13, cfg, true)
	var pDone, sDone sim.Time
	done := func(at *sim.Time, out *int) func(*replication.Thread) {
		app := lockCounterApp(out, 2, 50)
		return func(root *replication.Thread) {
			app(root)
			*at = root.Task().Now()
		}
	}
	var pCount, sCount int
	d.pns.Start("app", nil, done(&pDone, &pCount))
	d.sns.Start("app", nil, done(&sDone, &sCount))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if sDone < sim.Time(20*time.Millisecond) {
		t.Errorf("secondary done at %v — replay cost not applied", sDone)
	}
	if pDone < sim.Time(12*time.Millisecond) {
		t.Errorf("primary done at %v — no backpressure from the log ring", pDone)
	}
	// One ring (~16 tuples) + one pending batch + one drained batch ≈ 32
	// tuples ≈ 6.4ms of replay work; allow a little slack on top.
	if lead := sDone.Sub(pDone); lead > 8*time.Millisecond {
		t.Errorf("primary leads secondary by %v with batching — in-flight window unbounded", lead)
	}
}

func TestTaskOutsideNamespacePanics(t *testing.T) {
	d := newDuo(t, 14, replication.DefaultConfig(), true)
	lib := d.pns.Lib()
	m := lib.NewMutex()
	d.pk.Spawn("outsider", func(tk *kernel.Task) {
		defer func() {
			if recover() == nil {
				t.Error("interposed op by task outside namespace did not panic")
			}
			panic(recoverSilencer{})
		}()
		m.Lock(tk)
	})
	defer func() {
		if r := recover(); r != nil {
			// the re-panic above unwinds through sim.Run; expected.
			_ = r
		}
	}()
	_ = d.sim.Run()
}

type recoverSilencer struct{}

var _ pthread.Det = (*replication.Namespace)(nil)

// TestStrictCommitForcesFlush pins the batching invariant: a strict
// output-commit waiter flushes buffered tuples immediately, so commit
// latency never waits out a FlushInterval or a partially filled batch.
func TestStrictCommitForcesFlush(t *testing.T) {
	cfg := replication.DefaultConfig()
	cfg.BatchTuples = 64                // far more than the app emits: no size-triggered flush
	cfg.FlushInterval = 1 * time.Second // the timer must never be what releases output
	d := newDuo(t, 31, cfg, true)
	var requestedAt, releasedAt sim.Time
	d.pns.Start("app", nil, func(root *replication.Thread) {
		lib := root.Lib()
		mx := lib.NewMutex()
		for i := 0; i < 5; i++ {
			mx.Lock(root.Task())
			mx.Unlock(root.Task())
		}
		requestedAt = root.Task().Now()
		root.NS().OnStable(func() { releasedAt = d.sim.Now() })
	})
	d.sns.Start("app", nil, func(root *replication.Thread) {
		lib := root.Lib()
		mx := lib.NewMutex()
		for i := 0; i < 5; i++ {
			mx.Lock(root.Task())
			mx.Unlock(root.Task())
		}
	})
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if releasedAt == 0 || releasedAt < requestedAt {
		t.Fatalf("release at %v, requested at %v", releasedAt, requestedAt)
	}
	if gap := releasedAt.Sub(requestedAt); gap > time.Millisecond {
		t.Errorf("output-commit gap %v — the waiter did not force a flush", gap)
	}
	// Without the forced flush nothing (not even the env message) would
	// reach the secondary before the 1s timer, so release would happen at
	// >= 1s. (The run itself may still end at ~1s: tuples emitted after
	// the last commit point legitimately wait for the timer.)
	if releasedAt > sim.Time(10*time.Millisecond) {
		t.Errorf("released at %v — output commit waited for the flush timer", releasedAt)
	}
}

// TestAckEveryCumulativeAcks verifies AckEvery>1 produces cumulative
// acknowledgements: roughly one ack message per N processed tuples, each
// carrying the full processed count.
func TestAckEveryCumulativeAcks(t *testing.T) {
	cfg := replication.DefaultConfig()
	cfg.BatchTuples = 1
	cfg.AckEvery = 4
	d := newDuo(t, 32, cfg, true)
	var pCount, sCount int
	d.pns.Start("app", nil, lockCounterApp(&pCount, 2, 30))
	d.sns.Start("app", nil, lockCounterApp(&sCount, 2, 30))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.sns.Stats()
	total := st.LogMessages
	if total < 40 {
		t.Fatalf("only %d log messages processed", total)
	}
	if st.AckMessages != uint64(d.acks.Stats().Payloads) {
		t.Errorf("AckMessages=%d but acks ring carried %d payloads", st.AckMessages, d.acks.Stats().Payloads)
	}
	lo, hi := total/4-1, total/4+2
	if st.AckMessages < lo || st.AckMessages > hi {
		t.Errorf("AckMessages = %d for %d processed, want ~%d (cumulative every 4)", st.AckMessages, total, total/4)
	}
}

// TestBatchedAcksCoalesce verifies batch ingestion acks once per drained
// batch even with AckEvery=1: the acks ring traffic drops well below one
// message per tuple while output commit still completes.
func TestBatchedAcksCoalesce(t *testing.T) {
	cfg := replication.DefaultConfig()
	cfg.BatchTuples = 8
	cfg.AckEvery = 1
	d := newDuo(t, 33, cfg, true)
	var pCount, sCount int
	var released sim.Time
	d.pns.Start("app", nil, func(root *replication.Thread) {
		lockCounterApp(&pCount, 2, 50)(root)
		root.NS().OnStable(func() { released = d.sim.Now() })
	})
	d.sns.Start("app", nil, lockCounterApp(&sCount, 2, 50))
	if err := d.sim.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.sns.Stats()
	if st.AckMessages == 0 || st.AckMessages*2 > st.LogMessages {
		t.Errorf("AckMessages = %d for %d tuples — acks not coalesced per batch", st.AckMessages, st.LogMessages)
	}
	if released == 0 {
		t.Error("output never committed with batched acks")
	}
	if pCount != 100 || sCount != 100 {
		t.Errorf("counts %d/%d, want 100 each", pCount, sCount)
	}
}
