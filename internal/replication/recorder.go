package replication

import (
	"sort"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/pthread"
	"repro/internal/shm"
	"repro/internal/sim"
)

// stableWaiter is a piece of output waiting for its log watermark to be
// acknowledged by the secondary (output commit, §3.5).
type stableWaiter struct {
	watermark uint64
	fn        func()
	heldAt    sim.Time // when the wait began, for the commit-stall histogram
}

// ReplicaWatermark is one backup link's entry in the recorder's
// per-replica receipt watermark vector: the highest log-message receipt
// the backup has acknowledged, plus its link state. It is plain data —
// nothing ever waits on the vector itself (the armable output-commit
// waiters live in stableQ) — which is the shape the ftvet watermark
// analyzer's data-vector exemption recognizes.
type ReplicaWatermark struct {
	// Index is the link's position in construction/AddReplica order — the
	// same index DropReplica takes.
	Index int
	// Watermark is the cumulative receipt acknowledgement: every log
	// message below it is in the backup's memory (§3.5 receipt, not
	// processing).
	Watermark uint64
	// Dead marks a failed link; Syncing marks a rejoined backup still
	// replaying retained history, excluded from the output-commit set.
	Dead    bool
	Syncing bool
}

// replicaLink is the recorder's view of one backup replica: its log ring,
// its acknowledgement ring, the receipt watermark observed so far, and the
// tuples written but not yet published to the ring.
type replicaLink struct {
	idx   int
	log   *shm.Ring
	acks  *shm.Ring
	acked uint64
	dead  bool

	// base is the absolute log index of the first message this link's
	// ring ever carries: zero for a boot-time link, the recorder's
	// truncation base (histBase) for a link added after epoch truncation
	// started dropping history. Ring delivery counts are ring-local, so
	// every receipt watermark derived from them is offset by base.
	base uint64

	// epochAcked is the highest epoch boundary this backup has verified
	// against its replay watermark and truncated its own log at
	// (msgEpochAck). The primary truncates retained history once a
	// commit-quorum of backups has acknowledged an epoch.
	epochAcked uint64

	// span is the link's open zero-copy reservation: emitted tuples are
	// written straight into the ring's reserved slots and published in one
	// Commit when the batch fills (or a deadline/output commit forces it).
	// pending is the spill path — tuples buffered off-ring when no
	// reservation could be claimed (ring full, or the locked-copy baseline
	// model, which has no reservation to write into). While pending is
	// non-empty new tuples must append behind it, never to a fresh span:
	// the spill was reserved later than nothing, so writing around it
	// would reorder the log.
	span     *shm.Span
	pending  []shm.Message
	deadline sim.Time // flush deadline armed when the link became non-empty

	// A syncing link is a rejoined backup still catching up: new emits
	// append to its backlog behind the retained history, it is excluded
	// from the output-commit set, and it flips into the broadcast set at
	// the instant the backlog drains — the quiesced boundary at which the
	// deployment is replicated again.
	syncing bool
	backlog []shm.Message
}

// Recorder is the primary-side engine: it serializes deterministic
// sections under the namespace det-section locks and streams the log. It
// supports any number of backup replicas (the paper's prototype uses one;
// §6 sketches the extension to more): the log is broadcast to every
// backup and output is stable only when EVERY live backup has received it
// — the conservative rule that also covers a future voting configuration.
//
// With Config.DetShards == 1 there is a single lock — the namespace-wide
// global mutex of Figure 3 — and recording is byte-identical to the
// unsharded engine. With more shards each sequencing object hashes to one
// lock, sections on different objects run concurrently, and every tuple
// carries its object's own Seq_obj; GlobalSeq degrades to a Lamport
// watermark that is still unique and monotone per thread and per object.
//
// With Config.BatchTuples > 1 the recorder coalesces tuples per backup —
// written in place into an open ring reservation (zero-copy) and published
// as one Commit when the batch fills, when FlushInterval expires, or —
// unconditionally — when an output-commit waiter registers, so strict
// output commit never waits on buffering. Because ring reservation order
// is publication order, concurrent flushes need no mutual exclusion: a
// later batch physically cannot overtake an earlier one. With
// Config.AdaptiveBatching the batch size is steered at runtime by a
// feedback controller (see batchController).
type Recorder struct {
	kern     *kernel.Kernel
	cfg      Config
	replicas []*replicaLink

	mus       []*pthread.Mutex  // det-section locks; one = the global mutex of Figure 3
	objSeq    map[uint64]uint64 // next Seq_obj per sequencing object
	seqGlobal uint64
	sent      uint64
	stableQ   []stableWaiter
	live      bool
	degraded  bool // recording with no caught-up backup (Config.Rejoinable)
	history   []shm.Message
	stats     Stats

	// histBase is the absolute log index of history[0]: zero until epoch
	// truncation starts dropping verified prefixes, after which
	// history[i] is log message histBase+i and len(history) is only the
	// retained suffix. histBytes is the retained payload footprint, kept
	// as a running sum so the retained-size gauge is O(1).
	histBase  uint64
	histBytes int64

	// epochCuts maps a cut epoch number to its truncation base (the
	// sent watermark at the cut); epochSeen is the latest epoch cut,
	// epochDone the highest epoch already truncated (or vacuously
	// settled). onEpochQuorum, if set, runs when an epoch reaches its
	// ack quorum — core uses it to promote the epoch's checkpoint to
	// "latest verified" and release the pending cut.
	epochCuts     map[uint64]uint64
	epochSeen     uint64
	epochDone     uint64
	onEpochQuorum func(epoch uint64)

	// marks is the per-replica receipt watermark vector, refreshed at
	// every link-state transition (ack, delivery, death, catch-up flip);
	// it is what Watermarks exposes to failover election and the flight
	// recorder. ackScratch is the quorum rule's reusable sort buffer.
	marks      map[int]ReplicaWatermark
	ackScratch []uint64

	flushQ *sim.WaitQueue // wakes the flusher task when work or deadlines change
	ctrl   *batchController

	sc          *obs.Scope
	cTuples     *obs.Counter
	hCommitWait *obs.Histogram
	hBatchFill  *obs.Histogram
	hFlushLag   *obs.Histogram
	hShardWait  *obs.Histogram
	cShardSecs  []*obs.Counter // per-shard section counts
}

// newShardLocks builds the det-section lock array: one pthread mutex per
// shard, on a private zero-cost library so lock traffic is pure
// synchronization (the section's CPU cost is charged explicitly).
func newShardLocks(k *kernel.Kernel, shards int) []*pthread.Mutex {
	plib := pthread.NewLib(k, nil)
	plib.SetOpCost(0)
	mus := make([]*pthread.Mutex, shards)
	for i := range mus {
		mus[i] = plib.NewMutex()
	}
	return mus
}

func newRecorder(k *kernel.Kernel, cfg Config, logs, acks []*shm.Ring) *Recorder {
	if len(logs) == 0 || len(logs) != len(acks) {
		panic("replication: recorder needs one log+ack ring pair per backup")
	}
	cfg = cfg.withBatchDefaults()
	r := &Recorder{
		kern:      k,
		cfg:       cfg,
		mus:       newShardLocks(k, cfg.DetShards),
		objSeq:    make(map[uint64]uint64),
		flushQ:    sim.NewWaitQueue(k.Sim()),
		marks:     make(map[int]ReplicaWatermark),
		epochCuts: make(map[uint64]uint64),
	}
	if cfg.AdaptiveBatching {
		r.ctrl = newBatchController(cfg)
	}
	for i := range logs {
		r.addLink(&replicaLink{log: logs[i], acks: acks[i]})
	}
	if cfg.batched() {
		k.Spawn("ft-flush", r.flushLoop)
	}
	return r
}

// newForkRecorder builds the recorder a promoted replica forks into at
// the instant of finishing promotion (Config.Rejoinable): it continues
// the dead primary's sequence space (seqGlobal plus the per-object
// cursors) and inherits the replayed history, so a backup rejoined later
// can catch up from the fork's retention base. histBase is the absolute
// log index of hist[0] — zero for a full-history backup, the latest
// verified epoch boundary for one that truncated at epoch checkpoints.
// It starts degraded, with no backup links.
func newForkRecorder(k *kernel.Kernel, cfg Config, hist []shm.Message, histBase, seqGlobal uint64, objSeq map[uint64]uint64) *Recorder {
	cfg = cfg.withBatchDefaults()
	if objSeq == nil {
		objSeq = make(map[uint64]uint64)
	}
	var histBytes int64
	for _, m := range hist {
		histBytes += int64(m.Size)
	}
	r := &Recorder{
		kern:      k,
		cfg:       cfg,
		mus:       newShardLocks(k, cfg.DetShards),
		objSeq:    objSeq,
		flushQ:    sim.NewWaitQueue(k.Sim()),
		seqGlobal: seqGlobal,
		sent:      histBase + uint64(len(hist)),
		history:   hist,
		histBase:  histBase,
		histBytes: histBytes,
		degraded:  true,
		marks:     make(map[int]ReplicaWatermark),
		epochCuts: make(map[uint64]uint64),
	}
	if cfg.AdaptiveBatching {
		r.ctrl = newBatchController(cfg)
	}
	if cfg.batched() {
		k.Spawn("ft-flush", r.flushLoop)
	}
	return r
}

// addLink registers one backup link: the receipt watermark observed from
// the mailbox consumer-side slot state, and the explicit ack consumer.
func (r *Recorder) addLink(link *replicaLink) {
	link.idx = len(r.replicas)
	r.replicas = append(r.replicas, link)
	r.noteMark(link)
	// Output stability requires only that a backup has RECEIVED the
	// log for subsequent live replay (§3.5), not that it has processed
	// it: the primary learns of receipt by observing the mailbox
	// consumer-side slot state, one coherency hop after delivery.
	k, log := r.kern, link.log
	log.OnDelivered(func() {
		k.Sim().Schedule(log.Latency(), func() {
			if d := link.base + uint64(log.Delivered()); d > link.acked {
				link.acked = d
				r.noteMark(link)
				r.fireStable()
			}
		})
	})
	// Explicit cumulative acknowledgements free log-ring slots faster
	// under backlog and serve as a liveness signal; they are consumed
	// here so the ring never fills.
	k.Spawn("ft-ack", func(t *kernel.Task) { r.ackLoop(t, link) })
}

// catchupChunkBytes bounds one vectored catch-up transfer so the bulk
// replay never monopolizes the log ring against fresh emissions.
const catchupChunkBytes = 256 << 10

// AddReplica wires a fresh backup into the recorder and streams the
// retained history to it as catch-up, while recording continues. The link
// starts in the syncing state — excluded from output commit, fed through
// its backlog — and joins the broadcast set at the quiesced det-section
// boundary where the backlog drains empty (the output-commit watermarks
// of the two sides are equal there: everything sent has been received).
// onCaughtUp, if non-nil, runs at that flip. It returns the link index
// for DropReplica.
func (r *Recorder) AddReplica(log, acks *shm.Ring, onCaughtUp func()) int {
	if !r.cfg.Rejoinable {
		panic("replication: AddReplica requires Config.Rejoinable")
	}
	link := &replicaLink{log: log, acks: acks, syncing: true, base: r.histBase}
	link.backlog = append([]shm.Message(nil), r.history...)
	idx := len(r.replicas)
	r.addLink(link)
	r.kern.Spawn("ft-catchup", func(t *kernel.Task) { r.catchupLoop(t, link, onCaughtUp) })
	return idx
}

// catchupLoop drains the syncing link's backlog in bounded vectored
// chunks. Because new emissions append to the same backlog, draining it
// empty means the backup has received every message ever sent — at that
// instant the link flips into the output-commit set atomically (no yield
// between the last send completing and the flip).
func (r *Recorder) catchupLoop(t *kernel.Task, link *replicaLink, onCaughtUp func()) {
	p := t.Proc()
	for len(link.backlog) > 0 && !link.dead {
		n, bytes := 0, 0
		for n < len(link.backlog) && bytes < catchupChunkBytes {
			bytes += link.backlog[n].Size
			n++
		}
		batch := link.backlog[:n:n]
		link.log.SendBatch(p, batch)
		link.backlog = link.backlog[n:]
		r.stats.LogBatches++
		r.noteFlush(n)
	}
	if link.dead {
		return
	}
	link.syncing = false
	r.degraded = false
	r.noteMark(link)
	r.sc.Emit(obs.CatchupDone, 0, int64(r.sent), 0)
	r.fireStable()
	if onCaughtUp != nil {
		onCaughtUp()
	}
}

func (r *Recorder) ackLoop(t *kernel.Task, link *replicaLink) {
	for {
		m := link.acks.Recv(t.Proc())
		switch m.Kind {
		case msgEpochAck:
			// Epoch-boundary acknowledgement: the backup verified the
			// epoch's digest at its replay frontier and truncated its
			// own retained log there.
			if e, ok := m.Payload.(uint64); ok && e > link.epochAcked {
				link.epochAcked = e
				r.maybeTruncateEpochs()
			}
		default:
			// Cumulative receipt watermark (absolute: a rejoined backup
			// seeds its processed count from the checkpoint it restored).
			if v, ok := m.Payload.(uint64); ok && v > link.acked {
				link.acked = v
				r.noteMark(link)
				r.fireStable()
			}
		}
	}
}

// ackedAll reports the receipt watermark the output-commit rule exposes.
// With Config.CommitQuorum 0 it is the minimum over every live caught-up
// backup — the conservative all-backups rule of §3.5. With CommitQuorum
// k > 0 it is the k-th-highest receipt watermark among them: any k
// backups covering a tuple make it stable, so the slowest N−k replicas
// drop off the commit path. When fewer than k live links remain the rule
// degrades to all-of-the-living (k = live), never promising more
// stability than the survivors provide. Syncing links are excluded:
// while a rejoined backup catches up, output stability is whatever the
// remaining set provides (vacuous when it is empty — the degraded window
// the resync exists to close).
func (r *Recorder) ackedAll() uint64 {
	marks := r.ackScratch[:0]
	for _, link := range r.replicas {
		if link.dead || link.syncing {
			continue
		}
		marks = append(marks, link.acked)
	}
	r.ackScratch = marks[:0]
	if len(marks) == 0 {
		return r.sent // no live backup left: everything is (vacuously) stable
	}
	k := r.cfg.CommitQuorum
	if k <= 0 || k > len(marks) {
		k = len(marks)
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] > marks[j] })
	return marks[k-1]
}

// quorumNeed is the number of backup receipts the commit rule currently
// requires: min(CommitQuorum, live backups), or all live backups when no
// quorum is configured.
func (r *Recorder) quorumNeed() int {
	live := r.liveBackups()
	if r.cfg.CommitQuorum <= 0 || r.cfg.CommitQuorum > live {
		return live
	}
	return r.cfg.CommitQuorum
}

// noteMark refreshes one link's entry in the per-replica receipt
// watermark vector. The vector is plain observable data — the armable
// output-commit waiters live in stableQ, guarded by flushForCommit —
// so storing into it needs no flush domination (the ftvet watermark
// analyzer's data-vector exemption).
func (r *Recorder) noteMark(link *replicaLink) {
	r.marks[link.idx] = ReplicaWatermark{
		Index:     link.idx,
		Watermark: link.acked,
		Dead:      link.dead,
		Syncing:   link.syncing,
	}
}

// Watermarks returns the per-replica receipt watermark vector in link
// (construction/AddReplica) order. Failover election ranks surviving
// backups by it, and the flight recorder snapshots it into the failover
// dump so a post-mortem can see exactly how far each loser was behind.
func (r *Recorder) Watermarks() []ReplicaWatermark {
	out := make([]ReplicaWatermark, 0, len(r.replicas))
	for i := range r.replicas {
		out = append(out, r.marks[i])
	}
	return out
}

// liveBackups counts links that are alive and caught up; syncingBackups
// counts links still replaying history.
func (r *Recorder) liveBackups() int {
	n := 0
	for _, link := range r.replicas {
		if !link.dead && !link.syncing {
			n++
		}
	}
	return n
}

func (r *Recorder) syncingBackups() int {
	n := 0
	for _, link := range r.replicas {
		if !link.dead && link.syncing {
			n++
		}
	}
	return n
}

// effBatch is the batch size currently in force: the controller's output
// under AdaptiveBatching, the static BatchTuples knob otherwise.
func (r *Recorder) effBatch() int {
	if r.ctrl != nil {
		return r.ctrl.eff
	}
	return r.cfg.BatchTuples
}

// buffered reports whether the link holds tuples not yet published — in
// its open span or its spill buffer.
func (link *replicaLink) buffered() bool {
	return (link.span != nil && link.span.Open() && link.span.Len() > 0) || len(link.pending) > 0
}

// emit streams one log message to every live backup. Unbatched, it sends
// immediately; batched, it writes the tuple in place into the link's open
// ring reservation (zero-copy) and publishes when the effective batch
// fills. When no reservation can be claimed — ring full, or the
// locked-copy baseline model — tuples spill to the link's pending buffer
// and a blocking vectored flush throttles the primary to the slowest
// backup's drain rate. stream tags the message with its det shard,
// multiplexing the per-shard log streams over the one vectored ring.
func (r *Recorder) emit(t *kernel.Task, kind int, payload any, size, stream int) {
	m := shm.Message{Kind: kind, Payload: payload, Size: size, Stream: stream}
	if r.cfg.Rejoinable {
		r.history = append(r.history, m)
		r.histBytes += int64(m.Size)
	}
	eff := r.effBatch()
	for _, link := range r.replicas {
		if link.dead {
			continue
		}
		if link.syncing {
			// Catch-up in progress: queue behind the history so the
			// backup sees one gapless sequence on one channel.
			link.backlog = append(link.backlog, m)
			continue
		}
		if !r.cfg.batched() {
			link.log.Send(t.Proc(), m)
			continue
		}
		if r.emitSpan(link, m, eff) {
			continue
		}
		// Spill path: no reservation available (or the baseline model).
		if len(link.pending) == 0 {
			link.deadline = r.kern.Sim().Now().Add(r.cfg.FlushInterval)
			r.flushQ.WakeAll(0)
		}
		link.pending = append(link.pending, m)
		if len(link.pending) >= eff {
			r.flushPending(t.Proc(), link)
		}
	}
	r.sent++
	r.stats.LogMessages++
}

// emitSpan tries the zero-copy path: write m into the link's open span,
// claiming a fresh reservation when none is open, and publish once the
// effective batch fills. It reports false when the tuple must spill
// instead — the ring has no room, earlier work is already queued (spilled
// tuples or a blocked reservation, which writing around would reorder), or
// the fabric runs the locked-copy baseline, which has no reservation API.
func (r *Recorder) emitSpan(link *replicaLink, m shm.Message, eff int) bool {
	if link.log.SenderModel() == shm.SenderLockedCopy || len(link.pending) > 0 {
		return false
	}
	if link.span == nil || !link.span.Open() {
		if !r.openSpan(link, eff, int64(m.Size)) {
			return false
		}
	}
	if !link.span.Put(m) {
		// Slot or byte budget exhausted: publish what is written and
		// claim a fresh span for this tuple.
		r.commitSpan(link)
		if !r.openSpan(link, eff, int64(m.Size)) {
			return false
		}
		link.span.Put(m)
	}
	if link.span.Len() >= eff {
		r.commitSpan(link)
	}
	return true
}

// openSpan claims a fresh reservation sized for the effective batch (at
// least minBytes, so an oversized data tuple gets a span of its own) and
// arms the flush deadline.
func (r *Recorder) openSpan(link *replicaLink, eff int, minBytes int64) bool {
	budget := int64(eff) * tupleBytes
	if budget < minBytes {
		budget = minBytes
	}
	sp := link.log.TryReserve(eff, budget)
	if sp == nil {
		return false
	}
	link.span = sp
	link.deadline = r.kern.Sim().Now().Add(r.cfg.FlushInterval)
	r.flushQ.WakeAll(0)
	return true
}

// commitSpan publishes the link's open span as one vectored transfer —
// the single release-store of the reserve/commit protocol. An empty span
// releases its reservation without a transfer, which is what makes a
// flush deadline firing in the same scheduler instant as an output-commit
// force-flush harmless: whichever runs second finds nothing to send and
// sends nothing (no empty batch on the wire, no spurious flush sample).
// Never blocks, so it is safe in scheduler context.
func (r *Recorder) commitSpan(link *replicaLink) {
	sp := link.span
	if sp == nil || !sp.Open() {
		link.span = nil
		return
	}
	link.span = nil
	n := sp.Len()
	if n == 0 {
		sp.Abort()
		return
	}
	sp.Commit()
	r.stats.LogBatches++
	r.noteFlush(n)
}

// flushPending drains the link's spill buffer with blocking vectored
// sends. No per-link serialization is needed: a blocked send already
// holds its reservation ticket, and ring claim order is publication
// order, so a batch taken later physically cannot overtake one stalled
// on a full ring (the reordering the replayer would treat as a fatal log
// gap). Tuples that spill while this flush is blocked are drained by the
// next loop iteration, still in order — the ring refuses opportunistic
// claims while earlier tickets wait.
func (r *Recorder) flushPending(p *sim.Proc, link *replicaLink) {
	for len(link.pending) > 0 && !link.dead {
		batch := link.pending
		link.pending = nil
		link.log.SendBatch(p, batch)
		r.stats.LogBatches++
		r.noteFlush(len(batch))
	}
	r.flushQ.WakeAll(0) // deadlines may have re-armed while the send was stalled
}

// flushLoop is the background flusher: it pushes out partially filled
// batches once their FlushInterval deadline expires, bounding how long a
// tuple can sit buffered when the primary goes quiet. The re-check under
// "expired" is the double-send guard: a force-flush in the same instant
// may already have emptied the link.
func (r *Recorder) flushLoop(t *kernel.Task) {
	p := t.Proc()
	for {
		var link *replicaLink
		var dl sim.Time
		for _, l := range r.replicas {
			if l.dead || !l.buffered() {
				continue
			}
			if link == nil || l.deadline < dl {
				link, dl = l, l.deadline
			}
		}
		if link == nil {
			r.flushQ.Wait(p)
			continue
		}
		now := r.kern.Sim().Now()
		if dl > now {
			r.flushQ.WaitTimeout(p, dl.Sub(now))
			continue
		}
		r.commitSpan(link)
		if len(link.pending) > 0 {
			r.flushPending(p, link)
		}
	}
}

// flushForCommit pushes every buffered tuple toward the backups before an
// output-commit watermark is armed. It may run in scheduler context, so
// it must not block: open spans publish with a non-blocking Commit, and a
// spill buffer the ring cannot take right now is handed to the flusher
// task — the waiter's watermark is r.sent, which covers buffered tuples,
// so output cannot be released before they are genuinely delivered.
func (r *Recorder) flushForCommit() {
	for _, link := range r.replicas {
		if link.dead {
			continue
		}
		r.commitSpan(link)
		if len(link.pending) == 0 {
			continue
		}
		if link.log.TrySendBatch(link.pending) {
			n := len(link.pending)
			link.pending = nil
			r.stats.LogBatches++
			r.noteFlush(n)
			continue
		}
		link.deadline = r.kern.Sim().Now()
		r.flushQ.WakeAll(0)
	}
}

// EmitEpoch streams an epoch-checkpoint marker through the ordinary log
// stream. The caller (the core cutter task) holds every det-section lock,
// so no tuple can interleave: the marker lands at log position mark.Sent
// == r.sent, making "everything before the marker" on a backup exactly
// the prefix the checkpoint replaces. size is the checkpoint's accounted
// ring footprint.
func (r *Recorder) EmitEpoch(t *kernel.Task, mark EpochMark, size int) {
	if mark.Sent != r.sent {
		panic("replication: epoch mark not cut at the current log watermark")
	}
	r.epochCuts[mark.Epoch] = mark.Sent
	if mark.Epoch > r.epochSeen {
		r.epochSeen = mark.Epoch
	}
	r.emit(t, msgEpoch, mark, size, 0)
	r.stats.EpochCuts++
	// With no live caught-up backup the quorum is vacuous (mirroring
	// vacuous output stability): the prefix is truncated immediately —
	// any future rejoin starts from the checkpoint core retains.
	r.maybeTruncateEpochs()
}

// epochAckedAll is the epoch-boundary analogue of ackedAll: the highest
// epoch a commit-quorum of live caught-up backups has verified-and-
// truncated (k-th-highest epochAcked), degrading to all-of-the-living,
// and vacuously the latest cut epoch when no live caught-up backup
// remains.
func (r *Recorder) epochAckedAll() uint64 {
	marks := r.ackScratch[:0]
	for _, link := range r.replicas {
		if link.dead || link.syncing {
			continue
		}
		marks = append(marks, link.epochAcked)
	}
	r.ackScratch = marks[:0]
	if len(marks) == 0 {
		return r.epochSeen
	}
	k := r.cfg.CommitQuorum
	if k <= 0 || k > len(marks) {
		k = len(marks)
	}
	sort.Slice(marks, func(i, j int) bool { return marks[i] > marks[j] })
	return marks[k-1]
}

// maybeTruncateEpochs advances the primary's truncation to the highest
// quorum-acknowledged epoch. No-op while epoch checkpoints are not in
// use (no cuts registered, all epochAcked zero), so the non-epoch
// engine's execution — and its trace — is untouched.
func (r *Recorder) maybeTruncateEpochs() {
	acked := r.epochAckedAll()
	if acked <= r.epochDone {
		return
	}
	var bestEpoch, bestBase uint64
	for e, base := range r.epochCuts {
		if e <= acked {
			if e > bestEpoch {
				bestEpoch, bestBase = e, base
			}
			delete(r.epochCuts, e)
		}
	}
	r.epochDone = acked
	if bestEpoch != 0 {
		r.truncateHistory(bestEpoch, bestBase)
	}
}

// truncateHistory drops the retained-log prefix below a verified epoch
// boundary. verifiedSent is the absolute log index of the epoch marker:
// every message below it is subsumed by a checkpoint a quorum of backups
// holds, so retaining it buys nothing. Truncation above a boundary that
// has NOT been verified would sacrifice the only copy of live catch-up
// state — the guard clamps to the verified base.
func (r *Recorder) truncateHistory(verifiedEpoch, verifiedSent uint64) {
	if verifiedSent < r.histBase {
		return // already truncated past this verified boundary
	}
	keep := verifiedSent - r.histBase
	if keep > uint64(len(r.history)) {
		panic("replication: verified epoch boundary beyond retained history")
	}
	for _, m := range r.history[:keep] {
		r.histBytes -= int64(m.Size)
	}
	r.history = r.history[keep:]
	r.histBase = verifiedSent
	r.stats.LogTruncated += keep
	r.sc.Emit(obs.EpochTruncate, 0, int64(verifiedEpoch), int64(keep))
	if r.onEpochQuorum != nil {
		r.onEpochQuorum(verifiedEpoch)
	}
}

// RetainedTuples and RetainedBytes expose the retained-log footprint for
// the ftns.log.retained.* gauges.
func (r *Recorder) RetainedTuples() int    { return len(r.history) }
func (r *Recorder) RetainedBytes() int64   { return r.histBytes }
func (r *Recorder) HistoryBase() uint64    { return r.histBase }
func (r *Recorder) EpochTruncated() uint64 { return r.epochDone }

// seedEpochs initializes the epoch counters on a recorder forked at
// promotion, so the new primary's first cut continues the dead primary's
// epoch sequence instead of restarting at 1.
func (r *Recorder) seedEpochs(epoch uint64) {
	r.epochSeen = epoch
	r.epochDone = epoch
}

// quiesce acquires every det-section lock in shard index order and
// returns the matching release (reverse order). With all shard locks
// held no section can be mid-flight: every replicated thread sits at a
// section boundary, so the replicated state is exactly a deterministic
// function of the recorded prefix — the property the epoch cutter's
// final stop-the-world pass relies on. The fixed acquisition order makes
// concurrent quiescers (cutter vs. rejoin) deadlock-free.
func (r *Recorder) quiesce(t *kernel.Task) func() {
	for _, mu := range r.mus {
		mu.Lock(t)
	}
	return func() {
		for i := len(r.mus) - 1; i >= 0; i-- {
			r.mus[i].Unlock(t)
		}
	}
}

// lockShard acquires the det-section lock owning the sequencing object and
// returns it with its shard index and the nanoseconds spent waiting. The
// wait is sampled into the shard-contention histogram (the global-mutex
// contention when DetShards is 1) and travels on the DetEnter event as the
// sequencer-wait stage of the causal critical path.
func (r *Recorder) lockShard(t *kernel.Task, key uint64) (*pthread.Mutex, int, int64) {
	shard := pthread.ShardOf(key, len(r.mus))
	mu := r.mus[shard]
	start := t.Now()
	mu.Lock(t)
	wait := int64(t.Now().Sub(start))
	r.hShardWait.Observe(wait)
	return mu, shard, wait
}

// commitSeqs assigns one section's tuple cursors and advances every
// counter. Sharded, the advance happens BEFORE the emit's first possible
// yield, so a concurrent section on another shard can never observe a
// half-advanced cursor state (and GlobalSeq stays unique); unsharded, the
// advance stays after the emit, preserving the exact pre-sharding
// execution byte for byte.
func (r *Recorder) commitSeqs(th *Thread, key uint64) {
	th.seq++
	r.seqGlobal++
	r.objSeq[key]++
	r.stats.Sections++
}

func (r *Recorder) section(th *Thread, op pthread.Op, obj uint64, fn func()) {
	if r.live {
		fn()
		return
	}
	t := th.task
	key := objKey(op, obj)
	mu, shard, wait := r.lockShard(t, key)
	r.sc.EmitDet(obs.DetEnter, th.ftpid, int64(r.seqGlobal), wait, key, int64(r.objSeq[key]))
	t.Busy(r.cfg.SectionCost)
	fn()
	tu := Tuple{ThreadSeq: th.seq, GlobalSeq: r.seqGlobal, ObjSeq: r.objSeq[key], FTPid: th.ftpid, Op: op, Obj: obj}
	if len(r.mus) > 1 {
		r.commitSeqs(th, key)
		r.emit(t, msgTuple, tu, tu.size(), shard)
		r.noteTuple(th, tu, key)
	} else {
		r.emit(t, msgTuple, tu, tu.size(), shard)
		r.noteTuple(th, tu, key)
		r.commitSeqs(th, key)
	}
	r.cShardSec(shard).Inc()
	r.sc.EmitDet(obs.DetExit, th.ftpid, int64(tu.GlobalSeq), 0, key, int64(tu.ObjSeq))
	mu.Unlock(t)
}

// noteTuple records one emitted tuple's lifecycle event and count. The
// event carries the full alignment identity <obj, Seq_obj> so the causal
// layer can pair it with the backup's Replay grant of the same section.
func (r *Recorder) noteTuple(th *Thread, tu Tuple, key uint64) {
	r.sc.EmitDet(obs.TupleEmit, th.ftpid, int64(tu.GlobalSeq), int64(tu.size()), key, int64(tu.ObjSeq))
	r.cTuples.Inc()
}

// resolve runs block (which may park until the non-deterministic outcome is
// known), then records settle's outcome — and optional payload bytes —
// inside a deterministic section.
func (r *Recorder) resolve(th *Thread, op pthread.Op, obj uint64, block func(), settle func() (uint64, []byte)) (uint64, []byte) {
	if r.live {
		block()
		out, data := settle()
		return out, data
	}
	block()
	t := th.task
	key := objKey(op, obj)
	mu, shard, wait := r.lockShard(t, key)
	r.sc.EmitDet(obs.DetEnter, th.ftpid, int64(r.seqGlobal), wait, key, int64(r.objSeq[key]))
	t.Busy(r.cfg.SectionCost)
	out, data := settle()
	tu := Tuple{ThreadSeq: th.seq, GlobalSeq: r.seqGlobal, ObjSeq: r.objSeq[key], FTPid: th.ftpid, Op: op, Obj: obj, Outcome: out, Data: data}
	if len(r.mus) > 1 {
		r.commitSeqs(th, key)
		r.emit(t, msgTuple, tu, tu.size(), shard)
		r.noteTuple(th, tu, key)
	} else {
		r.emit(t, msgTuple, tu, tu.size(), shard)
		r.noteTuple(th, tu, key)
		r.commitSeqs(th, key)
	}
	r.cShardSec(shard).Inc()
	r.sc.EmitDet(obs.DetExit, th.ftpid, int64(tu.GlobalSeq), 0, key, int64(tu.ObjSeq))
	mu.Unlock(t)
	return out, data
}

func (r *Recorder) sendEnv(t *kernel.Task, env map[string]string) {
	size := 0
	for k, v := range env {
		size += len(k) + len(v) + 2
	}
	r.emit(t, msgEnv, env, size, 0)
}

// onStable invokes fn once the secondary has acknowledged every log message
// sent so far. A strict waiter always forces a flush of buffered tuples
// BEFORE the watermark is armed, so batching never adds to output-commit
// latency. Under relaxed output commit (or after going live) fn runs
// immediately.
func (r *Recorder) onStable(fn func()) {
	if !r.cfg.StrictOutputCommit || r.live {
		fn()
		return
	}
	r.flushForCommit()
	w := r.sent
	if r.ackedAll() >= w {
		r.hCommitWait.Observe(0)
		if r.ctrl != nil {
			r.ctrl.observeCommit(false)
		}
		fn()
		return
	}
	if r.ctrl != nil {
		r.ctrl.observeCommit(true)
	}
	r.sc.Emit(obs.OutputHeld, 0, int64(w), 0)
	r.stableQ = append(r.stableQ, stableWaiter{watermark: w, fn: fn, heldAt: r.kern.Sim().Now()})
}

func (r *Recorder) fireStable() {
	acked := r.ackedAll()
	for len(r.stableQ) > 0 && r.stableQ[0].watermark <= acked {
		w := r.stableQ[0]
		r.stableQ = r.stableQ[1:]
		wait := int64(r.kern.Sim().Now().Sub(w.heldAt))
		r.sc.Emit(obs.OutputReleased, 0, int64(w.watermark), wait)
		r.hCommitWait.Observe(wait)
		w.fn()
	}
}

// dropReplica stops streaming to one dead backup; with no live backup left
// the recorder goes fully live. Index i matches the ring order given at
// construction.
func (r *Recorder) dropReplica(i int) {
	if i < 0 || i >= len(r.replicas) || r.replicas[i].dead {
		return
	}
	r.replicas[i].dead = true
	r.noteMark(r.replicas[i])
	r.abandonLink(r.replicas[i])
	r.replicas[i].log.Drain() // unblock senders stalled on the dead ring
	r.fireStable()
	r.maybeTruncateEpochs() // the dead link no longer gates epoch quorum
	for _, link := range r.replicas {
		if !link.dead {
			return
		}
	}
	r.goLive()
}

// goLive stops recording: every backup is gone (failed, or replication was
// torn down), so sections run unserialized and all held output is
// released. A rejoinable recorder never stops recording — it degrades
// instead, keeping the history growing so a fresh backup can catch up.
func (r *Recorder) goLive() {
	if r.live {
		return
	}
	if r.cfg.Rejoinable {
		r.degrade()
		return
	}
	r.live = true
	r.sc.Emit(obs.GoLive, 0, int64(r.sent), 0)
	r.fireStable()
	// Unblock any section stalled on a full log ring: the receivers are
	// gone, so the buffered log is discarded and the senders released.
	for _, link := range r.replicas {
		link.dead = true
		r.noteMark(link)
		r.abandonLink(link)
		link.log.Drain()
	}
}

// abandonLink discards a dead link's unpublished state: the spill buffer,
// the backlog, and — critically — its open span. An open reservation on
// the dead ring would otherwise jam the ring's publication sequence
// forever (the reserve-without-commit leak), stalling any sender still
// parked on it.
func (r *Recorder) abandonLink(link *replicaLink) {
	link.pending = nil
	link.backlog = nil
	if link.span != nil {
		link.span.Abort()
		link.span = nil
	}
}

// degrade marks every backup dead but keeps recording: sections stay
// serialized and the history keeps growing, output stability becomes
// vacuous until a rejoined backup catches up.
func (r *Recorder) degrade() {
	for _, link := range r.replicas {
		link.dead = true
		r.noteMark(link)
		r.abandonLink(link)
		link.log.Drain()
	}
	if !r.degraded {
		r.degraded = true
		r.sc.Emit(obs.GoLive, 0, int64(r.sent), 0)
	}
	r.fireStable()
}
