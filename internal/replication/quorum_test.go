package replication_test

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/replication"
	"repro/internal/shm"
	"repro/internal/sim"
)

// quorumTrio is the multireplica trio with an explicit commit quorum and
// a per-transfer delivery lag on backup2's log ring, so its receipt
// watermark trails backup1's by a fixed margin.
func quorumTrio(t *testing.T, seed int64, commitQuorum int, lag time.Duration) *trio {
	t.Helper()
	s := sim.New(seed)
	m := hw.New(s, hw.Opteron6376x4())
	pp, _ := m.NewPartition("primary", 0, 1, 2)
	b1, _ := m.NewPartition("backup1", 3, 4)
	b2, _ := m.NewPartition("backup2", 5, 6)
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	pk, err := kernel.Boot(pp, kernel.Config{Name: "primary", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := kernel.Boot(b1, kernel.Config{Name: "backup1", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := kernel.Boot(b2, kernel.Config{Name: "backup2", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	cfg := replication.DefaultConfig()
	cfg.CommitQuorum = commitQuorum
	fabric := shm.NewFabric(s, pp.CrossLatency(b2))
	log1 := fabric.NewRing("log1", 0, cfg.LogRingBytes)
	log2 := fabric.NewRing("log2", 0, cfg.LogRingBytes)
	ack1 := fabric.NewRing("ack1", 1, 64<<10)
	ack2 := fabric.NewRing("ack2", 2, 64<<10)
	if lag > 0 {
		log2.SetChaosHook(func([]shm.Message) shm.ChaosVerdict {
			return shm.ChaosVerdict{Delay: lag}
		})
	}
	return &trio{
		sim: s, pk: pk, s1: s1, s2: s2,
		pns:  replication.NewPrimaryN("ftns", pk, cfg, []*shm.Ring{log1, log2}, []*shm.Ring{ack1, ack2}),
		sns1: replication.NewSecondary("ftns", s1, cfg, log1, ack1),
		sns2: replication.NewSecondary("ftns", s2, cfg, log2, ack2),
		logs: []*shm.Ring{log1, log2},
	}
}

// quorumRelease runs 300 lock sections on a trio and returns when the
// final OnStable callback released relative to when it was requested.
func quorumRelease(t *testing.T, tr *trio) time.Duration {
	t.Helper()
	var requested, released sim.Time
	tr.pns.Start("app", nil, func(root *replication.Thread) {
		lib := root.Lib()
		m := lib.NewMutex()
		for i := 0; i < 300; i++ {
			m.Lock(root.Task())
			m.Unlock(root.Task())
		}
		requested = root.Task().Now()
		root.NS().OnStable(func() { released = tr.sim.Now() })
	})
	app := func(root *replication.Thread) {
		lib := root.Lib()
		m := lib.NewMutex()
		for i := 0; i < 300; i++ {
			m.Lock(root.Task())
			m.Unlock(root.Task())
		}
	}
	tr.sns1.Start("app", nil, app)
	tr.sns2.Start("app", nil, app)
	if err := tr.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if released == 0 || released < requested {
		t.Fatalf("release at %v, requested at %v", released, requested)
	}
	return time.Duration(released - requested)
}

// TestQuorumOneDropsLaggardFromCommitPath: with a 1-of-2-backups commit
// quorum, a 2ms delivery lag on backup2's log link must not appear in the
// output-commit wait — backup1's receipt alone stabilizes the log. The
// all-backups rule over the same links pays the full lag.
func TestQuorumOneDropsLaggardFromCommitPath(t *testing.T) {
	const lag = 2 * time.Millisecond
	wQ1 := quorumRelease(t, quorumTrio(t, 5, 1, lag))
	wAll := quorumRelease(t, quorumTrio(t, 5, 0, lag))
	if wQ1 >= lag {
		t.Errorf("quorum-1 commit wait %v still pays the laggard's %v lag", wQ1, lag)
	}
	if wAll < lag {
		t.Errorf("all-backups commit wait %v does not cover the laggard's %v lag", wAll, lag)
	}
}

// TestQuorumDegradesToAllOfTheLiving: a commit quorum larger than the
// surviving link count degrades to all-of-the-living rather than stalling
// output forever.
func TestQuorumDegradesToAllOfTheLiving(t *testing.T) {
	tr := quorumTrio(t, 6, 2, 0)
	var pCount, s1Count, s2Count int
	tr.pns.Start("app", nil, lockCounterApp(&pCount, 4, 300))
	tr.sns1.Start("app", nil, lockCounterApp(&s1Count, 4, 300))
	tr.sns2.Start("app", nil, lockCounterApp(&s2Count, 4, 300))
	tr.sim.Schedule(10*time.Millisecond, func() {
		tr.s2.Panic("injected", nil)
		tr.pns.DropReplica(1)
	})
	if err := tr.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if pCount != 1200 || s1Count != 1200 {
		t.Fatalf("primary=%d backup1=%d, want 1200 each", pCount, s1Count)
	}
	if need := tr.pns.QuorumNeed(); need != 1 {
		t.Errorf("quorum need after losing a link = %d, want the 1 survivor", need)
	}
	wm := tr.pns.Watermarks()
	if len(wm) != 2 {
		t.Fatalf("watermark vector length = %d, want 2", len(wm))
	}
	if wm[1].Index != 1 || !wm[1].Dead {
		t.Errorf("dropped link watermark = %+v, want index 1 dead", wm[1])
	}
	if wm[0].Dead || wm[0].Watermark == 0 {
		t.Errorf("survivor watermark = %+v, want live with progress", wm[0])
	}
	if live := tr.pns.LiveBackups(); live != 1 {
		t.Errorf("live backups = %d, want 1", live)
	}
}
