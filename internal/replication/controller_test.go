package replication

import (
	"testing"
	"time"

	"repro/internal/kernel"
	"repro/internal/sim"
)

func testCtrlConfig(batch, max int) Config {
	cfg := DefaultConfig()
	cfg.BatchTuples = batch
	cfg.AdaptiveBatching = true
	cfg.MaxBatchTuples = max
	return cfg
}

func TestControllerGrowsAdditively(t *testing.T) {
	c := newBatchController(testCtrlConfig(8, 64))
	if c.eff != 8 {
		t.Fatalf("initial eff = %d, want the configured BatchTuples 8", c.eff)
	}
	// One additive step per ctrlGrowAfter consecutive healthy observations.
	for i := 0; i < ctrlGrowAfter; i++ {
		c.observeCommit(false)
	}
	if c.eff != 9 {
		t.Errorf("eff = %d after %d healthy commits, want 9", c.eff, ctrlGrowAfter)
	}
	for i := 0; i < ctrlGrowAfter; i++ {
		c.observeFlush(0)
	}
	if c.eff != 10 {
		t.Errorf("eff = %d after another healthy streak, want 10", c.eff)
	}
}

func TestControllerShrinksMultiplicatively(t *testing.T) {
	c := newBatchController(testCtrlConfig(32, 64))
	c.observeCommit(true)
	if c.eff != 16 {
		t.Errorf("eff = %d after a commit stall, want halved to 16", c.eff)
	}
	// Lag past ctrlLagFactor*eff + ctrlLagSlack is the other shrink signal.
	c.observeFlush(uint64(ctrlLagFactor*c.eff + ctrlLagSlack + 1))
	if c.eff != 8 {
		t.Errorf("eff = %d after excess lag, want halved to 8", c.eff)
	}
	// A shrink resets the healthy streak: three healthies, a stall, then
	// three more must not grow.
	for i := 0; i < ctrlGrowAfter-1; i++ {
		c.observeCommit(false)
	}
	c.observeCommit(true)
	for i := 0; i < ctrlGrowAfter-1; i++ {
		c.observeCommit(false)
	}
	if c.eff != 4 {
		t.Errorf("eff = %d, want 4 (streak reset by the stall, no growth)", c.eff)
	}
}

func TestControllerRespectsBounds(t *testing.T) {
	c := newBatchController(testCtrlConfig(2, 3))
	for i := 0; i < 10*ctrlGrowAfter; i++ {
		c.observeCommit(false)
	}
	if c.eff != 3 {
		t.Errorf("eff = %d after sustained health, want capped at MaxBatchTuples 3", c.eff)
	}
	for i := 0; i < 10; i++ {
		c.observeCommit(true)
	}
	if c.eff != 1 {
		t.Errorf("eff = %d after sustained stalls, want floored at 1", c.eff)
	}
	// At the floor a further shrink is a no-op, and recovery still works.
	for i := 0; i < ctrlGrowAfter; i++ {
		c.observeFlush(0)
	}
	if c.eff != 2 {
		t.Errorf("eff = %d, want recovery to 2 from the floor", c.eff)
	}
}

// TestAdaptiveOffKeepsStaticPolicy: without AdaptiveBatching no controller
// exists and the effective batch is exactly the static knob — the golden
// shards=1 trace depends on this equivalence.
func TestAdaptiveOffKeepsStaticPolicy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchTuples = 8
	_, _, _, rec := newRecorderHarness(t, cfg, 64<<10)
	if rec.ctrl != nil {
		t.Fatal("controller built with AdaptiveBatching off")
	}
	if rec.effBatch() != 8 {
		t.Errorf("effBatch = %d, want the static BatchTuples 8", rec.effBatch())
	}
}

func TestAdaptiveOnStartsAtStaticBatch(t *testing.T) {
	cfg := testCtrlConfig(8, 0).withBatchDefaults()
	_, _, _, rec := newRecorderHarness(t, cfg, 64<<10)
	if rec.ctrl == nil {
		t.Fatal("no controller built with AdaptiveBatching on")
	}
	if rec.effBatch() != 8 {
		t.Errorf("effBatch = %d at boot, want the configured BatchTuples 8", rec.effBatch())
	}
	if rec.ctrl.max != 32 {
		t.Errorf("MaxBatchTuples defaulted to %d, want max(4*BatchTuples, 32) = 32", rec.ctrl.max)
	}
}

// TestDeadlineForceFlushSameInstant is the regression test for the
// flush-deadline edge: a FlushInterval deadline expiring in the same
// scheduler instant as an output-commit force-flush used to double-send,
// putting an empty batch on the wire. Now whichever path runs second
// finds the span already published and commits nothing — exactly one
// transfer, no zero-tuple flush sample.
func TestDeadlineForceFlushSameInstant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchTuples = 8
	cfg.FlushInterval = 50 * time.Microsecond
	s, log, _, rec := newRecorderHarness(t, cfg, 64<<10)
	rec.kern.Spawn("emitter", func(tk *kernel.Task) {
		for i := 0; i < 3; i++ {
			rec.emit(tk, msgTuple, Tuple{GlobalSeq: uint64(i)}, 64, 0)
		}
		// Sleep to exactly the armed deadline: the flusher's timeout and
		// this wake-up land in the same scheduler instant.
		tk.Proc().Sleep(cfg.FlushInterval)
		rec.flushForCommit()
	})
	s.Spawn("drain", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			log.Recv(p)
		}
	})
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	st := log.Stats()
	if st.Messages != 1 || st.Payloads != 3 {
		t.Errorf("log ring saw %d transfers / %d payloads, want exactly 1 / 3 (no empty double-send)", st.Messages, st.Payloads)
	}
	if rec.stats.LogBatches != 1 {
		t.Errorf("LogBatches = %d, want 1 (the second flusher found nothing to send)", rec.stats.LogBatches)
	}
}

// TestForceFlushPublishesOpenSpan: an output-commit waiter must never
// wait on buffering — flushForCommit publishes the open span in
// scheduler context without blocking.
func TestForceFlushPublishesOpenSpan(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchTuples = 16
	cfg.FlushInterval = time.Second // far away: only the force flush fires
	s, log, _, rec := newRecorderHarness(t, cfg, 64<<10)
	released := false
	rec.kern.Spawn("emitter", func(tk *kernel.Task) {
		rec.emit(tk, msgTuple, Tuple{GlobalSeq: 1}, 64, 0)
		rec.onStable(func() { released = true })
	})
	s.Spawn("drain", func(p *sim.Proc) {
		log.Recv(p)
	})
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if log.Stats().Payloads != 1 {
		t.Errorf("log ring saw %d payloads, want the buffered tuple force-flushed", log.Stats().Payloads)
	}
	if !released {
		t.Error("output-commit waiter never released: force flush did not publish the open span")
	}
}

// TestRecorderFeedsController: commit stalls reach the controller through
// onStable and shrink the effective batch; the recovery after the ack
// grows it back — the closed loop, driven end to end through the
// recorder rather than the controller API.
func TestRecorderFeedsController(t *testing.T) {
	cfg := testCtrlConfig(8, 64)
	cfg.FlushInterval = 10 * time.Microsecond
	s, log, _, rec := newRecorderHarness(t, cfg, 64<<10)
	rec.kern.Spawn("emitter", func(tk *kernel.Task) {
		rec.emit(tk, msgTuple, Tuple{GlobalSeq: 1}, 64, 0)
		rec.onStable(func() {}) // watermark unacked: a commit stall
		if rec.effBatch() != 4 {
			t.Errorf("effBatch = %d after a commit stall, want halved to 4", rec.effBatch())
		}
	})
	s.Spawn("drain", func(p *sim.Proc) {
		log.Recv(p)
	})
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
}
