package replication

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/pthread"
	"repro/internal/shm"
	"repro/internal/sim"
)

// Namespace is one side's view of an FT-Namespace (§3): applications
// launched inside it are replicated with the record/replay protocol;
// everything outside runs natively. It implements pthread.Det, so a
// pthread.Lib bound to the namespace interposes every synchronization
// operation.
type Namespace struct {
	name string
	role Role
	kern *kernel.Kernel
	cfg  Config
	lib  *pthread.Lib

	rec *Recorder
	rep *Replayer

	env       map[string]string
	nextFTPid int
	threads   map[*kernel.Task]*Thread

	// resume holds checkpoint thread cursors while a rejoined replica
	// restores its applications from an epoch checkpoint (ResumeFrom):
	// re-spawned threads pop their original ft_pid and Seq_thread here
	// instead of assigning fresh identity through a det section.
	resume *resumeState
}

// resumeState is the checkpoint identity table a restore drains: thread
// cursors in ascending ft_pid order (the original global assignment
// order, which restorable apps must re-spawn in), and the namespace's
// ft_pid high-water mark once every pin is consumed.
type resumeState struct {
	pins      []SeqCursor
	finalNext int
}

var _ pthread.Det = (*Namespace)(nil)

// Thread is one replicated thread: a kernel task plus its replication
// identity (ft_pid) and per-thread sequence number (Seq_thread).
type Thread struct {
	ns    *Namespace
	task  *kernel.Task
	ftpid int
	seq   uint64
}

// Task returns the underlying kernel task.
func (th *Thread) Task() *kernel.Task { return th.task }

// FTPid returns the replicated-task unique identifier.
func (th *Thread) FTPid() int { return th.ftpid }

// Seq returns the thread's deterministic-section sequence number.
func (th *Thread) Seq() uint64 { return th.seq }

// NS returns the thread's namespace.
func (th *Thread) NS() *Namespace { return th.ns }

// Lib returns the namespace's interposed Pthreads library.
func (th *Thread) Lib() *pthread.Lib { return th.ns.lib }

// NewPrimary creates the primary side of an FT-Namespace. log and acks are
// the shared-memory rings to/from the secondary.
func NewPrimary(name string, k *kernel.Kernel, cfg Config, log, acks *shm.Ring) *Namespace {
	return NewPrimaryN(name, k, cfg, []*shm.Ring{log}, []*shm.Ring{acks})
}

// NewPrimaryN creates a primary that streams its log to N backup replicas
// (one log+ack ring pair each) — the §6 extension beyond the paper's
// two-replica prototype. Output commit waits for receipt by every live
// backup.
func NewPrimaryN(name string, k *kernel.Kernel, cfg Config, logs, acks []*shm.Ring) *Namespace {
	ns := newNamespace(name, RolePrimary, k, cfg)
	ns.rec = newRecorder(k, cfg, logs, acks)
	return ns
}

// NewSecondary creates the secondary side of an FT-Namespace. With
// Config.Rejoinable the replica forks into a recording primary at
// promotion, continuing the recorded history so a later backup can rejoin.
func NewSecondary(name string, k *kernel.Kernel, cfg Config, log, acks *shm.Ring) *Namespace {
	ns := newNamespace(name, RoleSecondary, k, cfg)
	ns.rep = newReplayer(k, cfg, log, acks)
	if cfg.Rejoinable {
		ns.rep.onFork = ns.forkRecorder
	}
	return ns
}

// forkRecorder converts the promoted replica into a recording primary at
// the instant promotion finishes: the namespace role flips so every
// subsequent deterministic section dispatches to the fork, which inherits
// the replayed history and global cursor. The fork's hot-path metrics are
// left unregistered — the dead primary's namespace already claimed the
// metric names — but it shares the replayer's event scope so the flight
// timeline stays contiguous.
func (ns *Namespace) forkRecorder(hist []shm.Message, histBase, nextGlobal uint64, objSeq map[uint64]uint64) *Recorder {
	rec := newForkRecorder(ns.kern, ns.cfg, hist, histBase, nextGlobal, objSeq)
	rec.sc = ns.rep.sc
	ns.rec = rec
	ns.role = RolePrimary
	return rec
}

// NewLive creates an unreplicated namespace — the stock-Ubuntu baseline
// configuration, and the mode replicas run in after failover.
func NewLive(name string, k *kernel.Kernel) *Namespace {
	return newNamespace(name, RoleLive, k, Config{})
}

func newNamespace(name string, role Role, k *kernel.Kernel, cfg Config) *Namespace {
	ns := &Namespace{
		name:    name,
		role:    role,
		kern:    k,
		cfg:     cfg,
		threads: make(map[*kernel.Task]*Thread),
	}
	ns.lib = pthread.NewLib(k, ns)
	return ns
}

// Name returns the namespace name.
func (ns *Namespace) Name() string { return ns.name }

// Kernel returns the kernel this side runs on.
func (ns *Namespace) Kernel() *kernel.Kernel { return ns.kern }

// Lib returns the namespace's interposed Pthreads library.
func (ns *Namespace) Lib() *pthread.Lib { return ns.lib }

// Role returns the namespace's effective role: a promoted secondary (or a
// primary whose backup died) reports RoleLive. A rejoinable primary that
// lost every backup also reports RoleLive — it records into retained
// history but runs unreplicated — and flips back to RolePrimary the
// moment a rejoined backup starts syncing.
func (ns *Namespace) Role() Role {
	switch {
	case ns.role == RolePrimary && ns.rec.live:
		return RoleLive
	case ns.role == RolePrimary && ns.rec.degraded && ns.rec.liveBackups() == 0 && ns.rec.syncingBackups() == 0:
		return RoleLive
	case ns.role == RoleSecondary && ns.rep.live:
		return RoleLive
	}
	return ns.role
}

// Recording reports whether this side records (primary, not yet live).
func (ns *Namespace) Recording() bool { return ns.role == RolePrimary && !ns.rec.live }

// Replaying reports whether this side replays (secondary, not yet live).
func (ns *Namespace) Replaying() bool { return ns.role == RoleSecondary && !ns.rep.live }

// Replayer returns the secondary engine (nil on other roles); the failover
// path uses it to promote.
func (ns *Namespace) Replayer() *Replayer { return ns.rep }

// SeqGlobal returns the number of deterministic sections recorded so far
// (the primary's Seq_global cursor); zero on non-recording roles.
func (ns *Namespace) SeqGlobal() uint64 {
	if ns.rec != nil {
		return ns.rec.seqGlobal
	}
	return 0
}

// ReplayHead returns the scalar replay watermark: the next global sequence
// number with one det shard, the Lamport frontier (every GlobalSeq below it
// replayed) with more; zero on non-replaying roles. The replay lag of a
// deployment is the primary's SeqGlobal minus the secondary's ReplayHead.
func (ns *Namespace) ReplayHead() uint64 {
	if ns.rep != nil {
		return ns.rep.head()
	}
	return 0
}

// Processed returns the number of log messages this side has ingested off
// its log ring (acknowledged at receipt, §3.5); zero on non-replaying
// roles. It is the receipt watermark failover election ranks surviving
// backups by: everything processed is in this replica's memory and will
// survive promotion, even if its replay head still lags.
func (ns *Namespace) Processed() uint64 {
	if ns.rep != nil {
		return ns.rep.processed
	}
	return 0
}

// Watermarks returns the recording side's per-replica receipt watermark
// vector in link order (nil on non-recording roles). See
// Recorder.Watermarks.
func (ns *Namespace) Watermarks() []ReplicaWatermark {
	if ns.rec == nil {
		return nil
	}
	return ns.rec.Watermarks()
}

// LiveBackups returns the number of live, caught-up backup links on a
// recording namespace (zero otherwise).
func (ns *Namespace) LiveBackups() int {
	if ns.rec == nil {
		return 0
	}
	return ns.rec.liveBackups()
}

// QuorumNeed returns the number of backup receipts the output-commit rule
// currently requires on a recording namespace: min(CommitQuorum, live
// backups), or all live backups when no quorum is configured.
func (ns *Namespace) QuorumNeed() int {
	if ns.rec == nil {
		return 0
	}
	return ns.rec.quorumNeed()
}

// SeqCursor is one thread's replication cursor: its ft_pid and the
// per-thread sequence number (Seq_thread) it has reached.
type SeqCursor struct {
	FTPid int
	Seq   uint64
}

// Cursors returns the namespace's checkpoint cursor state: the global
// sequence watermark plus every thread's Seq_thread, sorted by ft_pid
// (the threads map iterates in arbitrary order; the sort restores a
// deterministic, comparable view).
func (ns *Namespace) Cursors() (seqGlobal uint64, threads []SeqCursor) {
	threads = make([]SeqCursor, 0, len(ns.threads))
	for _, th := range ns.threads {
		threads = append(threads, SeqCursor{FTPid: th.ftpid, Seq: th.seq})
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i].FTPid < threads[j].FTPid })
	switch {
	case ns.rec != nil:
		seqGlobal = ns.rec.seqGlobal
	case ns.rep != nil:
		seqGlobal = ns.rep.head()
	}
	return seqGlobal, threads
}

// ObjCursors returns the per-object sequencing cursors — each sequencing
// object's Seq_obj this side has passed — sorted by object key (the cursor
// maps iterate in arbitrary order; the sort restores a deterministic,
// comparable view). Together with the Lamport watermark from Cursors they
// form the sharded checkpoint cut; with one det shard the recorder still
// maintains them, so checkpoints taken before a WithDetShards change stay
// verifiable after it.
func (ns *Namespace) ObjCursors() []ObjCursor {
	var m map[uint64]uint64
	switch {
	case ns.rec != nil:
		m = ns.rec.objSeq
	case ns.rep != nil:
		m = ns.rep.objDone
	}
	out := make([]ObjCursor, 0, len(m))
	for k, v := range m { // ftvet:nondet collect-then-sort
		out = append(out, ObjCursor{Obj: k, Seq: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Obj < out[j].Obj })
	return out
}

// NextFTPid returns the next ft_pid the namespace would assign — part of
// the rejoin checkpoint, so replica identity assignment agrees after a
// resync.
func (ns *Namespace) NextFTPid() int { return ns.nextFTPid }

// Env returns the replicated environment mirror.
func (ns *Namespace) Env() map[string]string { return ns.env }

// Degraded reports whether the namespace records with no caught-up
// backup (only meaningful on a rejoinable recording side).
func (ns *Namespace) Degraded() bool {
	return ns.role == RolePrimary && ns.rec.degraded && ns.rec.liveBackups() == 0
}

// Resyncing reports whether a rejoined backup is still replaying history.
func (ns *Namespace) Resyncing() bool {
	return ns.role == RolePrimary && ns.rec.syncingBackups() > 0
}

// AddReplica wires a fresh backup into a recording namespace and streams
// the retained history as catch-up (Config.Rejoinable). onCaughtUp runs
// when the backup has received every message ever sent and the link flips
// into the output-commit set. It returns the link index for DropReplica.
func (ns *Namespace) AddReplica(log, acks *shm.Ring, onCaughtUp func()) int {
	if ns.role != RolePrimary {
		panic("replication: AddReplica on a non-recording namespace")
	}
	return ns.rec.AddReplica(log, acks, onCaughtUp)
}

// OnReplayHead arms fn to run when the replayer's head reaches seq; the
// rejoin checkpoint verifier compares cursors exactly at the watermark.
func (ns *Namespace) OnReplayHead(seq uint64, fn func()) {
	if ns.rep == nil {
		panic("replication: OnReplayHead on a non-replaying namespace")
	}
	ns.rep.OnHead(seq, fn)
}

// ResumeFrom installs an epoch checkpoint's thread-identity table for the
// restore that follows: the next len(threads) replicated-thread creations
// (Start for ft_pid 1, then SpawnThread for each subsequent pin, in
// ascending ft_pid order — the original global assignment order) adopt
// their checkpointed ft_pid and Seq_thread instead of assigning fresh
// identity through an OpThreadCreate section. nextFTPid is the
// checkpoint's assignment high-water mark, restored once the pins drain.
func (ns *Namespace) ResumeFrom(threads []SeqCursor, nextFTPid int) {
	pins := append([]SeqCursor(nil), threads...)
	sort.Slice(pins, func(i, j int) bool { return pins[i].FTPid < pins[j].FTPid })
	ns.resume = &resumeState{pins: pins, finalNext: nextFTPid}
}

// popResume pops the next checkpoint thread pin during a restore.
func (ns *Namespace) popResume() (SeqCursor, bool) {
	if ns.resume == nil || len(ns.resume.pins) == 0 {
		return SeqCursor{}, false
	}
	c := ns.resume.pins[0]
	ns.resume.pins = ns.resume.pins[1:]
	ns.nextFTPid = c.FTPid
	if len(ns.resume.pins) == 0 {
		ns.nextFTPid = ns.resume.finalNext
		ns.resume = nil
	}
	return c, true
}

// LogWatermark returns the recording side's cut coordinates: the
// Seq_global Lamport watermark and the cumulative log-message count.
// Read under Quiesce they are the exact identity of an epoch boundary.
func (ns *Namespace) LogWatermark() (seqGlobal, sent uint64) {
	if ns.rec == nil {
		return 0, 0
	}
	return ns.rec.seqGlobal, ns.rec.sent
}

// Quiesce acquires every det-section lock in shard order, freezing the
// namespace at a section boundary: no replicated thread is mid-section,
// so the replicated state is exactly a deterministic function of the
// recorded prefix. The returned func releases the locks in reverse
// order. This is the epoch cutter's final stop-the-world.
func (ns *Namespace) Quiesce(t *kernel.Task) func() {
	if ns.rec == nil {
		return func() {}
	}
	return ns.rec.quiesce(t)
}

// EmitEpoch streams an epoch-checkpoint marker through the log (primary
// only; the caller holds Quiesce so the marker lands at exactly the cut
// watermark).
func (ns *Namespace) EmitEpoch(t *kernel.Task, mark EpochMark, size int) {
	if ns.rec == nil {
		panic("replication: EmitEpoch on a non-recording namespace")
	}
	ns.rec.EmitEpoch(t, mark, size)
}

// OnEpoch installs the replica-side epoch-boundary verifier: fn runs at
// each marker's exact replay frontier and reports whether the local
// replayed state reproduces the checkpoint digest. A true return
// truncates the retained log at the boundary and acks the epoch.
func (ns *Namespace) OnEpoch(fn func(EpochMark) bool) {
	if ns.rep == nil {
		panic("replication: OnEpoch on a non-replaying namespace")
	}
	ns.rep.OnEpoch(fn)
}

// OnEpochQuorum installs the recording-side callback fired when an epoch
// reaches its ack quorum and the retained log has been truncated at it.
func (ns *Namespace) OnEpochQuorum(fn func(epoch uint64)) {
	if ns.rec == nil {
		panic("replication: OnEpochQuorum on a non-recording namespace")
	}
	ns.rec.onEpochQuorum = fn
}

// SeedEpochs seeds the epoch counters on a promoted primary's fork
// recorder, so its first cut continues the dead primary's sequence.
func (ns *Namespace) SeedEpochs(epoch uint64) {
	if ns.rec != nil {
		ns.rec.seedEpochs(epoch)
	}
}

// SeedCheckpoint initializes a fresh secondary from an epoch checkpoint
// (see Replayer.SeedCheckpoint). Must run before any log message
// arrives.
func (ns *Namespace) SeedCheckpoint(epoch, seqGlobal, sent uint64, objs []ObjCursor, env map[string]string) {
	if ns.rep == nil {
		panic("replication: SeedCheckpoint on a non-replaying namespace")
	}
	ns.rep.SeedCheckpoint(epoch, seqGlobal, sent, objs, env)
}

// RetainedTuples and RetainedBytes report this side's retained tuple-log
// footprint (the ftns.log.retained.* gauges): the recorder's history on
// a recording side (including a promotion fork), the replayer's on a
// replaying one.
func (ns *Namespace) RetainedTuples() int {
	switch {
	case ns.rec != nil:
		return ns.rec.RetainedTuples()
	case ns.rep != nil:
		return ns.rep.RetainedTuples()
	}
	return 0
}

func (ns *Namespace) RetainedBytes() int64 {
	switch {
	case ns.rec != nil:
		return ns.rec.RetainedBytes()
	case ns.rep != nil:
		return ns.rep.RetainedBytes()
	}
	return 0
}

// GoLive stops recording on the primary side (called when the last backup
// replica dies). On other roles it is a no-op.
func (ns *Namespace) GoLive() {
	if ns.rec != nil {
		ns.rec.goLive()
	}
}

// DropReplica stops streaming to the i-th backup (it died); when no live
// backup remains the primary goes live. Only meaningful on the primary.
func (ns *Namespace) DropReplica(i int) {
	if ns.rec != nil {
		ns.rec.dropReplica(i)
	}
}

// Stats returns this side's replication statistics.
func (ns *Namespace) Stats() Stats {
	switch {
	case ns.rec != nil:
		return ns.rec.stats
	case ns.rep != nil:
		return ns.rep.stats
	}
	return Stats{}
}

// ThreadOf returns the Thread owning a kernel task. It panics for tasks
// outside the namespace — they have no replication identity.
func (ns *Namespace) ThreadOf(t *kernel.Task) *Thread {
	th, ok := ns.threads[t]
	if !ok {
		panic(fmt.Sprintf("replication: task %q is not in FT-Namespace %q", t.Name(), ns.name))
	}
	return th
}

// InNamespace reports whether a task belongs to the namespace.
func (ns *Namespace) InNamespace(t *kernel.Task) bool {
	_, ok := ns.threads[t]
	return ok
}

// Section implements pthread.Det.
func (ns *Namespace) Section(t *kernel.Task, op pthread.Op, obj uint64, fn func()) {
	switch ns.role {
	case RolePrimary:
		ns.rec.section(ns.ThreadOf(t), op, obj, fn)
	case RoleSecondary:
		ns.rep.section(ns.ThreadOf(t), op, obj, fn)
	default:
		fn()
	}
}

// Resolve implements pthread.Det.
func (ns *Namespace) Resolve(t *kernel.Task, op pthread.Op, obj uint64, block func(), settle func() uint64) uint64 {
	wrapped := func() (uint64, []byte) { return settle(), nil }
	switch ns.role {
	case RolePrimary:
		out, _ := ns.rec.resolve(ns.ThreadOf(t), op, obj, block, wrapped)
		return out
	case RoleSecondary:
		out, _ := ns.rep.resolve(ns.ThreadOf(t), op, obj, block, wrapped)
		return out
	default:
		block()
		return settle()
	}
}

// SyscallU64 replicates a syscall returning a scalar: executed on the
// primary (outside the global mutex — it may block, like accept or read)
// and recorded; replayed from the log on the secondary. On the secondary,
// run executes only after failover promotion (live mode).
func (ns *Namespace) SyscallU64(th *Thread, op pthread.Op, obj uint64, run func() uint64) uint64 {
	switch ns.role {
	case RolePrimary:
		var v uint64
		out, _ := ns.rec.resolve(th, op, obj,
			func() { v = run() },
			func() (uint64, []byte) { return v, nil })
		return out
	case RoleSecondary:
		out, _, ok, fork := ns.rep.replayed(th, op, obj)
		if ok {
			return out
		}
		if fork != nil {
			var v uint64
			res, _ := fork.resolve(th, op, obj,
				func() { v = run() },
				func() (uint64, []byte) { return v, nil })
			return res
		}
		return run()
	default:
		return run()
	}
}

// SyscallData replicates a syscall returning a scalar plus payload bytes
// (e.g. the data delivered by a socket read, §3.4).
func (ns *Namespace) SyscallData(th *Thread, op pthread.Op, obj uint64, run func() (uint64, []byte)) (uint64, []byte) {
	switch ns.role {
	case RolePrimary:
		var v uint64
		var data []byte
		return ns.rec.resolve(th, op, obj,
			func() { v, data = run() },
			func() (uint64, []byte) { return v, data })
	case RoleSecondary:
		out, data, ok, fork := ns.rep.replayed(th, op, obj)
		if ok {
			return out, data
		}
		if fork != nil {
			var v uint64
			var d []byte
			return fork.resolve(th, op, obj,
				func() { v, d = run() },
				func() (uint64, []byte) { return v, d })
		}
		return run()
	default:
		return run()
	}
}

// OnStable invokes fn once all log messages sent so far are acknowledged
// by the secondary (output commit). On non-recording roles fn runs
// immediately.
func (ns *Namespace) OnStable(fn func()) {
	if ns.Recording() {
		ns.rec.onStable(fn)
		return
	}
	fn()
}

// Start launches the replicated process's root thread (ft_pid 1). On the
// primary, env is replicated to the secondary before the application runs
// (§3: the FT-Namespace launching procedure); on the secondary the passed
// env is ignored in favour of the replicated one.
func (ns *Namespace) Start(name string, env map[string]string, fn func(*Thread)) *Thread {
	ns.nextFTPid = 1
	th := &Thread{ns: ns, ftpid: 1}
	if c, ok := ns.popResume(); ok {
		if c.FTPid != 1 {
			panic(fmt.Sprintf("replication: resume pins must start at ft_pid 1, got %d", c.FTPid))
		}
		th.seq = c.Seq
	}
	th.task = ns.kern.Spawn(name, func(t *kernel.Task) {
		switch ns.role {
		case RolePrimary:
			ns.env = env
			ns.rec.sendEnv(t, env)
		case RoleSecondary:
			ns.env = ns.rep.waitEnv(t)
		default:
			ns.env = env
		}
		fn(th)
	})
	ns.threads[th.task] = th
	return th
}

// Getenv returns a replicated environment variable.
func (ns *Namespace) Getenv(key string) string { return ns.env[key] }

// SpawnThread creates a replicated thread. The ft_pid is assigned inside a
// deterministic section, so thread identity agrees across replicas even
// when multiple threads spawn concurrently. During a checkpoint restore
// (ResumeFrom) the det section is bypassed: the thread adopts its
// checkpointed identity — those OpThreadCreate sections happened before
// the epoch boundary and are part of the state the checkpoint subsumes.
func (ns *Namespace) SpawnThread(parent *Thread, name string, fn func(*Thread)) *Thread {
	var ftpid int
	var seq uint64
	if c, ok := ns.popResume(); ok {
		ftpid, seq = c.FTPid, c.Seq
	} else {
		ns.Section(parent.task, OpThreadCreate, 0, func() {
			ns.nextFTPid++
			ftpid = ns.nextFTPid
		})
	}
	th := &Thread{ns: ns, ftpid: ftpid, seq: seq}
	th.task = ns.kern.Spawn(name, func(t *kernel.Task) { fn(th) })
	ns.threads[th.task] = th
	return th
}

// Now is the replicated gettimeofday (§3.3): both replicas observe the
// primary's clock values, so timeout decisions agree.
func (th *Thread) Now() sim.Time {
	v := th.ns.SyscallU64(th, OpGetTimeOfDay, 0, func() uint64 { return uint64(th.task.Now()) })
	return sim.Time(v)
}

// Join blocks until another replicated thread finishes locally.
func (th *Thread) Join(other *Thread) { other.task.Join(th.task) }
