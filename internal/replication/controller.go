package replication

import "repro/internal/obs"

// Controller tuning. The transfer function (DESIGN.md §14): the effective
// batch size grows additively — +1 after every ctrlGrowAfter consecutive
// healthy observations — and shrinks multiplicatively — halved on every
// unhealthy one. Healthy means an output-commit waiter found its watermark
// already acknowledged (commit wait idle) or a flush saw the unacked-log
// lag below the threshold; unhealthy means a commit stalled or the lag
// climbed past it. AIMD converges onto the largest batch the backup's
// drain rate sustains without stretching the output-commit path, and backs
// off within one commit of the workload turning latency-sensitive.
const (
	// ctrlGrowAfter is how many consecutive healthy observations earn one
	// additive step. Growth is deliberately slower than decay: a batch
	// that is too large stalls real output, a batch that is too small only
	// costs header amortization.
	ctrlGrowAfter = 4

	// ctrlLagFactor sets the lag threshold in units of the current batch:
	// a flush finding more than ctrlLagFactor*eff + ctrlLagSlack unacked
	// tuples means the backup is falling behind and buffering more would
	// only widen the loss window.
	ctrlLagFactor = 8
	ctrlLagSlack  = 32
)

// batchController is the AIMD feedback loop that replaces the static
// BatchTuples knob under Config.AdaptiveBatching. It observes the two
// signals the recorder already measures — output-commit stalls
// (ftns.commit.wait) and unacked-log lag at flush (ftns.flush.lag, the
// primary-side view of replay.lag) — and steers the effective batch size
// between 1 and Config.MaxBatchTuples. All state changes happen inside
// recorder calls on the virtual clock, so runs are deterministic and the
// controller adds no events of its own.
type batchController struct {
	eff    int // current effective batch size
	min    int
	max    int
	streak int // consecutive healthy observations since the last step

	cGrow   *obs.Counter
	cShrink *obs.Counter
}

func newBatchController(cfg Config) *batchController {
	return &batchController{eff: cfg.BatchTuples, min: 1, max: cfg.MaxBatchTuples}
}

// instrument registers the controller signals under the namespace prefix:
// the effective batch size as a sampled gauge plus the step counters.
func (c *batchController) instrument(name string, reg *obs.Registry) {
	reg.Gauge(name+".ctrl.batch", func() int64 { return int64(c.eff) })
	c.cGrow = reg.Counter(name + ".ctrl.grow")
	c.cShrink = reg.Counter(name + ".ctrl.shrink")
}

// observeCommit feeds one output-commit observation: stalled means the
// waiter's watermark was not yet acknowledged and output is now held.
func (c *batchController) observeCommit(stalled bool) {
	if stalled {
		c.shrink()
		return
	}
	c.healthy()
}

// observeFlush feeds one flush observation: lag is the unacked-log depth
// (sent minus the lowest live-backup watermark) at the flush instant.
func (c *batchController) observeFlush(lag uint64) {
	if lag > uint64(ctrlLagFactor*c.eff+ctrlLagSlack) {
		c.shrink()
		return
	}
	c.healthy()
}

func (c *batchController) healthy() {
	c.streak++
	if c.streak < ctrlGrowAfter || c.eff >= c.max {
		return
	}
	c.streak = 0
	c.eff++
	c.cGrow.Inc()
}

func (c *batchController) shrink() {
	c.streak = 0
	if c.eff <= c.min {
		return
	}
	c.eff /= 2
	if c.eff < c.min {
		c.eff = c.min
	}
	c.cShrink.Inc()
}
