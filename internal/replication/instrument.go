package replication

import (
	"fmt"

	"repro/internal/obs"
)

// Instrument attaches an event scope and registers this side's metrics,
// prefixed by the namespace name. Call it once, right after construction
// and before the namespace runs; a nil scope/registry leaves the side
// uninstrumented (every emission degrades to a pointer test).
//
// Recorder signals: per-tuple lifecycle events (det-enter/det-exit,
// tuple-emit, batch-flush, output-held/output-released) plus histograms
// of output-commit wait, flush batch fill, and the unacked-log lag
// sampled at each flush — the primary-side view of replay lag.
// Replayer signals: replay grants, cumulative acks, promotion timeline,
// plus the received-batch size histogram.
func (ns *Namespace) Instrument(sc *obs.Scope, reg *obs.Registry) {
	switch {
	case ns.rec != nil:
		ns.rec.instrument(ns.name, sc, reg)
	case ns.rep != nil:
		ns.rep.instrument(ns.name, sc, reg)
	}
}

func (r *Recorder) instrument(name string, sc *obs.Scope, reg *obs.Registry) {
	r.sc = sc
	r.cTuples = reg.Counter(name + ".log.tuples")
	r.hCommitWait = reg.Histogram(name+".commit.wait", "ns")
	r.hBatchFill = reg.Histogram(name+".flush.batch", "tuples")
	r.hFlushLag = reg.Histogram(name+".flush.lag", "tuples")
	// Shard-level contention signals: the det-lock wait distribution (the
	// global-mutex contention when DetShards is 1) and per-shard section
	// counts, which expose placement skew across the sharded sequencers.
	r.hShardWait = reg.Histogram(name+".shard.wait", "ns")
	if reg != nil {
		r.cShardSecs = make([]*obs.Counter, len(r.mus))
		for i := range r.cShardSecs {
			r.cShardSecs[i] = reg.Counter(fmt.Sprintf("%s.shard.%d.sections", name, i))
		}
	}
	if r.ctrl != nil {
		r.ctrl.instrument(name, reg)
	}
	// Quorum-commit signals: how many caught-up backups are in the
	// output-commit set and how many receipts the rule currently
	// requires, so a dashboard shows quorum erosion before it becomes
	// quorum loss.
	reg.Gauge(name+".quorum.live", func() int64 { return int64(r.liveBackups()) })
	reg.Gauge(name+".quorum.need", func() int64 { return int64(r.quorumNeed()) })
	// Retained-log footprint: what epoch truncation keeps bounded (and
	// what grows without bound when epochs are off and the side records
	// into a rejoinable history).
	reg.Gauge(name+".log.retained.tuples", func() int64 { return int64(r.RetainedTuples()) })
	reg.Gauge(name+".log.retained.bytes", func() int64 { return r.RetainedBytes() })
	// Fabric-side sending signals, sampled off the first log ring (the
	// links are symmetric): how many reservations are open but unpublished
	// and how often senders had to park for capacity.
	if len(r.replicas) > 0 {
		ring := r.replicas[0].log
		reg.Gauge(name+".ring.spans", func() int64 { return int64(ring.OpenSpans()) })
		reg.Gauge(name+".ring.reserve.waits", func() int64 { return ring.Stats().ReserveWaits })
	}
}

// cShardSec returns the section counter for one det shard (nil when the
// recorder is uninstrumented).
func (r *Recorder) cShardSec(shard int) *obs.Counter {
	if shard >= len(r.cShardSecs) {
		return nil
	}
	return r.cShardSecs[shard]
}

// noteFlush records one vectored log flush of n tuples: the batch-fill
// sample, the flush event, and the unacked backlog at this moment — which
// also feeds the adaptive controller its lag signal.
func (r *Recorder) noteFlush(n int) {
	lag := r.sent - r.ackedAll()
	r.sc.Emit(obs.BatchFlush, 0, int64(r.sent), int64(n))
	r.hBatchFill.Observe(int64(n))
	r.hFlushLag.Observe(int64(lag))
	if r.ctrl != nil {
		r.ctrl.observeFlush(lag)
	}
}

func (r *Replayer) instrument(name string, sc *obs.Scope, reg *obs.Registry) {
	r.sc = sc
	r.cAcks = reg.Counter(name + ".replay.acks")
	r.hRecvBatch = reg.Histogram(name+".replay.batch", "tuples")
	// Grant wait: how long a shadow thread sits parked in __det_start
	// before its turn arrives — the replay-side serialization signal the
	// per-object grant table exists to shrink.
	r.hGrantWait = reg.Histogram(name+".grant.wait", "ns")
	// Retained-log footprint, truncated at each digest-verified epoch
	// boundary when epoch checkpoints are on. Prefixed .replay so the
	// first backup (which shares the recorder's bare namespace name)
	// doesn't collide with the recorder's .log.retained gauges.
	reg.Gauge(name+".replay.retained.tuples", func() int64 { return int64(r.RetainedTuples()) })
	reg.Gauge(name+".replay.retained.bytes", func() int64 { return r.RetainedBytes() })
}
