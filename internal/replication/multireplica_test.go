package replication_test

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/replication"
	"repro/internal/shm"
	"repro/internal/sim"
)

// trio is a primary plus TWO backup replicas — the §6 extension beyond the
// paper's two-replica prototype, using three NUMA partitions of the same
// machine and a broadcast log.
type trio struct {
	sim        *sim.Simulation
	pk, s1, s2 *kernel.Kernel
	pns        *replication.Namespace
	sns1, sns2 *replication.Namespace
	logs       []*shm.Ring
}

func newTrio(t *testing.T, seed int64) *trio {
	t.Helper()
	s := sim.New(seed)
	m := hw.New(s, hw.Opteron6376x4())
	pp, _ := m.NewPartition("primary", 0, 1, 2)
	b1, _ := m.NewPartition("backup1", 3, 4)
	b2, _ := m.NewPartition("backup2", 5, 6)
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	pk, err := kernel.Boot(pp, kernel.Config{Name: "primary", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	s1, err := kernel.Boot(b1, kernel.Config{Name: "backup1", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := kernel.Boot(b2, kernel.Config{Name: "backup2", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	cfg := replication.DefaultConfig()
	fabric := shm.NewFabric(s, pp.CrossLatency(b2))
	log1 := fabric.NewRing("log1", 0, cfg.LogRingBytes)
	log2 := fabric.NewRing("log2", 0, cfg.LogRingBytes)
	ack1 := fabric.NewRing("ack1", 1, 64<<10)
	ack2 := fabric.NewRing("ack2", 2, 64<<10)
	return &trio{
		sim: s, pk: pk, s1: s1, s2: s2,
		pns:  replication.NewPrimaryN("ftns", pk, cfg, []*shm.Ring{log1, log2}, []*shm.Ring{ack1, ack2}),
		sns1: replication.NewSecondary("ftns", s1, cfg, log1, ack1),
		sns2: replication.NewSecondary("ftns", s2, cfg, log2, ack2),
		logs: []*shm.Ring{log1, log2},
	}
}

func TestThreeReplicaReplayIdentical(t *testing.T) {
	tr := newTrio(t, 1)
	var pOrder, s1Order, s2Order []int
	tr.pns.Start("app", nil, lockOrderApp(&pOrder, 5, 12))
	tr.sns1.Start("app", nil, lockOrderApp(&s1Order, 5, 12))
	tr.sns2.Start("app", nil, lockOrderApp(&s2Order, 5, 12))
	if err := tr.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if len(pOrder) != 60 || len(s1Order) != 60 || len(s2Order) != 60 {
		t.Fatalf("lengths %d/%d/%d, want 60 each", len(pOrder), len(s1Order), len(s2Order))
	}
	for i := range pOrder {
		if s1Order[i] != pOrder[i] || s2Order[i] != pOrder[i] {
			t.Fatalf("replicas diverged at %d: %d / %d / %d", i, pOrder[i], s1Order[i], s2Order[i])
		}
	}
	if d := tr.sns1.Stats().Divergences + tr.sns2.Stats().Divergences; d != 0 {
		t.Errorf("%d divergences", d)
	}
}

func TestThreeReplicaOutputCommitWaitsForSlowest(t *testing.T) {
	tr := newTrio(t, 2)
	// Make backup2's replay very slow and its ring tiny, so its receipt
	// watermark (not backup1's) gates output stability.
	var released, requested sim.Time
	tr.pns.Start("app", nil, func(root *replication.Thread) {
		lib := root.Lib()
		m := lib.NewMutex()
		for i := 0; i < 300; i++ {
			m.Lock(root.Task())
			m.Unlock(root.Task())
		}
		requested = root.Task().Now()
		root.NS().OnStable(func() { released = tr.sim.Now() })
	})
	app := func(root *replication.Thread) {
		lib := root.Lib()
		m := lib.NewMutex()
		for i := 0; i < 300; i++ {
			m.Lock(root.Task())
			m.Unlock(root.Task())
		}
	}
	tr.sns1.Start("app", nil, app)
	tr.sns2.Start("app", nil, app)
	if err := tr.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if released == 0 || released < requested {
		t.Errorf("release at %v, requested at %v", released, requested)
	}
}

func TestBackupDeathDegradesGracefully(t *testing.T) {
	tr := newTrio(t, 3)
	var pCount, s1Count, s2Count int
	tr.pns.Start("app", nil, lockCounterApp(&pCount, 4, 300))
	tr.sns1.Start("app", nil, lockCounterApp(&s1Count, 4, 300))
	tr.sns2.Start("app", nil, lockCounterApp(&s2Count, 4, 300))
	// Backup2 dies mid-run; the primary drops it and keeps replicating to
	// backup1 only — it does NOT go live.
	tr.sim.Schedule(10*time.Millisecond, func() {
		tr.s2.Panic("injected", nil)
		tr.pns.DropReplica(1)
	})
	if err := tr.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if pCount != 1200 || s1Count != 1200 {
		t.Fatalf("primary=%d backup1=%d, want 1200 each", pCount, s1Count)
	}
	if tr.pns.Role() != replication.RolePrimary {
		t.Errorf("primary role = %v, want still primary (one backup remains)", tr.pns.Role())
	}
	if d := tr.sns1.Stats().Divergences; d != 0 {
		t.Errorf("%d divergences on the surviving backup", d)
	}

	// Now the last backup dies too: the primary must go live.
	tr.s1.Panic("injected", nil)
	tr.pns.DropReplica(0)
	if tr.pns.Role() != replication.RoleLive {
		t.Errorf("primary role = %v after losing all backups, want live", tr.pns.Role())
	}
}

// TestStrictCommitCoversAllBackupsAtRelease is the batching acceptance
// check for strict output commit: when an onStable callback fires, every
// live backup's receipt watermark (the delivered-payload count of its log
// ring) must already cover every tuple flushed so far — batching included
// (newTrio runs the default config, BatchTuples=8).
func TestStrictCommitCoversAllBackupsAtRelease(t *testing.T) {
	tr := newTrio(t, 7)
	fired := 0
	tr.pns.Start("app", nil, func(root *replication.Thread) {
		lib := root.Lib()
		m := lib.NewMutex()
		for i := 0; i < 100; i++ {
			m.Lock(root.Task())
			m.Unlock(root.Task())
			if i%10 == 9 {
				sent := tr.pns.Stats().LogMessages
				root.NS().OnStable(func() {
					fired++
					for b, log := range tr.logs {
						if uint64(log.Delivered()) < sent {
							t.Errorf("onStable fired with backup %d at watermark %d < %d flushed tuples",
								b, log.Delivered(), sent)
						}
					}
				})
			}
		}
	})
	app := func(root *replication.Thread) {
		lib := root.Lib()
		m := lib.NewMutex()
		for i := 0; i < 100; i++ {
			m.Lock(root.Task())
			m.Unlock(root.Task())
		}
	}
	tr.sns1.Start("app", nil, app)
	tr.sns2.Start("app", nil, app)
	if err := tr.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 10 {
		t.Fatalf("%d of 10 onStable callbacks fired", fired)
	}
	if d1, d2 := tr.sns1.Stats().Divergences, tr.sns2.Stats().Divergences; d1 != 0 || d2 != 0 {
		t.Errorf("divergences %d/%d", d1, d2)
	}
}
