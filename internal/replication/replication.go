// Package replication implements FT-Linux's core contribution: transparent
// Primary-Backup replication of race-free multithreaded applications via
// record/replay of deterministic sections (§3.2, §3.3).
//
// The primary executes the application normally, except that every
// interposed operation (Pthreads primitives, selected syscalls) runs inside
// a deterministic section serialized by a namespace-wide global mutex; on
// leaving the section the primary streams a tuple
//
//	<Seq_thread, Seq_global, ft_pid> (+ op, object, outcome)
//
// to the secondary over the shared-memory messaging layer and increments
// both sequence numbers — the __det_start/__det_end protocol of Figure 3.
// The secondary replays: each shadow thread's deterministic section blocks
// until the tuple matching its thread and sequence number is at the head of
// the log, yielding the primary's total order while unordered code runs in
// parallel.
//
// Syscall results the secondary must not recompute (gettimeofday, bytes
// returned by reads, poll results) are recorded as resolve sections whose
// outcome (and payload bytes) travel with the tuple; the secondary returns
// the recorded result instead of executing the call.
//
// The package also implements output stability (§3.5): the primary's
// network output is released only once the secondary has acknowledged every
// log message the output depends on; the relaxed single-machine mode
// releases immediately, counting on cache coherency to deliver in-flight
// messages even across a primary failure.
package replication

import (
	"fmt"
	"time"

	"repro/internal/pthread"
)

// Role is a replica's role in the namespace.
type Role int

const (
	// RolePrimary records and streams deterministic sections.
	RolePrimary Role = iota + 1
	// RoleSecondary replays the primary's log.
	RoleSecondary
	// RoleLive runs unreplicated — the state after failover (either side).
	RoleLive
)

var roleNames = map[Role]string{
	RolePrimary:   "primary",
	RoleSecondary: "secondary",
	RoleLive:      "live",
}

func (r Role) String() string {
	if s, ok := roleNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Extended deterministic-section ops beyond the Pthreads set.
const (
	// OpThreadCreate assigns an ft_pid to a newly spawned replicated
	// thread, so thread identity matches across replicas.
	OpThreadCreate pthread.Op = 100 + iota
	// OpGetTimeOfDay replicates clock reads (§3.3).
	OpGetTimeOfDay
	// OpSockData replicates a socket syscall result carrying data bytes.
	OpSockData
	// OpSockResult replicates a scalar socket syscall result.
	OpSockResult
	// OpPoll replicates poll/epoll readiness results (§3.2).
	OpPoll
)

// Message kinds on the replication log ring.
const (
	msgTuple = iota + 1
	msgEnv
)

// tupleBytes is the accounted shared-memory footprint of one log tuple:
// one cache line of sequence numbers and op metadata (the 64-byte slot
// header is added by the messaging layer).
const tupleBytes = 64

// Tuple is one deterministic-section record.
type Tuple struct {
	ThreadSeq uint64
	GlobalSeq uint64
	FTPid     int
	Op        pthread.Op
	Obj       uint64
	// Outcome is the recorded result for resolve sections.
	Outcome uint64
	// Data carries payload bytes for data-bearing syscalls (reads).
	Data []byte
}

func (tu Tuple) size() int { return tupleBytes + len(tu.Data) }

func (tu Tuple) String() string {
	return fmt.Sprintf("<%d,%d,%d> %v obj=%d out=%d len=%d",
		tu.ThreadSeq, tu.GlobalSeq, tu.FTPid, tu.Op, tu.Obj, tu.Outcome, len(tu.Data))
}

// Config tunes the replication engine.
type Config struct {
	// SectionCost is the CPU cost of one deterministic section on the
	// primary (global-mutex critical section plus tuple write).
	SectionCost time.Duration
	// ReplayDispatchCost is the secondary's serial CPU cost to pull one
	// tuple off the ring and hand it to the waiting shadow thread; this
	// path (which rides wake_up_process) is the bottleneck of §4.1.
	ReplayDispatchCost time.Duration
	// ReplaySectionCost is the CPU cost of running one replayed section on
	// the shadow thread.
	ReplaySectionCost time.Duration
	// LogRingBytes is the in-flight log buffer; it absorbs bursts, and its
	// exhaustion is what drops sustained throughput to the secondary's
	// replay rate (§4.1).
	LogRingBytes int64
	// StrictOutputCommit selects waiting for secondary acknowledgements
	// before releasing network output; false is the §3.5 relaxed mode.
	StrictOutputCommit bool
	// AckEvery makes the secondary acknowledge after every N processed
	// messages (1 = eager, required for low-latency strict output commit).
	AckEvery int
	// PanicOnDivergence makes the secondary kernel panic when replay
	// diverges (default counts divergences, for the FIFO-futex ablation).
	PanicOnDivergence bool
}

// DefaultConfig returns the calibrated engine configuration.
func DefaultConfig() Config {
	return Config{
		SectionCost:        8 * time.Microsecond,
		ReplayDispatchCost: 58 * time.Microsecond,
		ReplaySectionCost:  3 * time.Microsecond,
		LogRingBytes:       2 << 20,
		StrictOutputCommit: true,
		AckEvery:           1,
	}
}

// Stats summarizes one side's replication activity.
type Stats struct {
	Sections    uint64 // deterministic sections recorded or replayed
	LogMessages uint64 // messages sent (primary) or processed (secondary)
	Divergences uint64 // replay mismatches detected (secondary)
	Dropped     uint64 // log tuples discarded at promotion (gap after fault)
}
