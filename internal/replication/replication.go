// Package replication implements FT-Linux's core contribution: transparent
// Primary-Backup replication of race-free multithreaded applications via
// record/replay of deterministic sections (§3.2, §3.3).
//
// The primary executes the application normally, except that every
// interposed operation (Pthreads primitives, selected syscalls) runs inside
// a deterministic section serialized by a namespace-wide global mutex; on
// leaving the section the primary streams a tuple
//
//	<Seq_thread, Seq_global, ft_pid> (+ op, object, outcome)
//
// to the secondary over the shared-memory messaging layer and increments
// both sequence numbers — the __det_start/__det_end protocol of Figure 3.
// The secondary replays: each shadow thread's deterministic section blocks
// until the tuple matching its thread and sequence number is at the head of
// the log, yielding the primary's total order while unordered code runs in
// parallel.
//
// With Config.DetShards > 1 the namespace-wide mutex is sharded into
// per-object sequencing: every replicated object (mutex, rwlock,
// condvar+internal-lock pair, replicated syscall class) owns a Seq_obj
// counter, sections on different objects record concurrently under
// different shard locks, and the secondary grants turns from a per-object
// table — independent objects replay in parallel. Seq_global is retained
// as a Lamport clock so output commit, checkpoint cuts and rejoin
// verification keep a scalar watermark; Seq_thread preserves each thread's
// program order. Shard count 1 is exactly the paper's global total order.
//
// Syscall results the secondary must not recompute (gettimeofday, bytes
// returned by reads, poll results) are recorded as resolve sections whose
// outcome (and payload bytes) travel with the tuple; the secondary returns
// the recorded result instead of executing the call.
//
// The package also implements output stability (§3.5): the primary's
// network output is released only once the secondary has acknowledged every
// log message the output depends on; the relaxed single-machine mode
// releases immediately, counting on cache coherency to deliver in-flight
// messages even across a primary failure.
package replication

import (
	"fmt"
	"time"

	"repro/internal/pthread"
)

// Role is a replica's role in the namespace.
type Role int

const (
	// RolePrimary records and streams deterministic sections.
	RolePrimary Role = iota + 1
	// RoleSecondary replays the primary's log.
	RoleSecondary
	// RoleLive runs unreplicated — the state after failover (either side).
	RoleLive
)

var roleNames = map[Role]string{
	RolePrimary:   "primary",
	RoleSecondary: "secondary",
	RoleLive:      "live",
}

func (r Role) String() string {
	if s, ok := roleNames[r]; ok {
		return s
	}
	return fmt.Sprintf("Role(%d)", int(r))
}

// Extended deterministic-section ops beyond the Pthreads set.
const (
	// OpThreadCreate assigns an ft_pid to a newly spawned replicated
	// thread, so thread identity matches across replicas.
	OpThreadCreate pthread.Op = 100 + iota
	// OpGetTimeOfDay replicates clock reads (§3.3).
	OpGetTimeOfDay
	// OpSockData replicates a socket syscall result carrying data bytes.
	OpSockData
	// OpSockResult replicates a scalar socket syscall result.
	OpSockResult
	// OpPoll replicates poll/epoll readiness results (§3.2).
	OpPoll
)

// Message kinds on the replication log ring.
const (
	msgTuple = iota + 1
	msgEnv
	// msgEpoch carries an EpochMark through the ordinary log stream: an
	// epoch checkpoint cut on the primary, delivered in order so every
	// backup sees the marker at exactly the log position it describes.
	msgEpoch
	// msgEpochAck travels the ack ring from backup to primary once the
	// backup has verified an epoch boundary against its replay watermark
	// and truncated its retained log there (payload = epoch number).
	msgEpochAck
)

// EpochMark is the epoch-checkpoint marker the primary emits through the
// log stream (msgEpoch). It rides the same ordered ring as the tuples it
// fences: a marker emitted right after a cut at sent-watermark S occupies
// log position S itself, so "truncate everything before the marker" on a
// backup drops exactly the S messages the checkpoint replaces — the same
// count the primary drops from its own history after the epoch-ack
// quorum.
type EpochMark struct {
	// Epoch is the monotone epoch number (1-based; survives failover).
	Epoch uint64
	// SeqGlobal is the namespace Lamport watermark at the cut.
	SeqGlobal uint64
	// Sent is the primary's cumulative log-message count at the cut: the
	// log position of this marker and the truncation base of the epoch.
	Sent uint64
	// Digest is the checkpoint digest a backup must reproduce from its
	// own replayed state at SeqGlobal before it may truncate.
	Digest uint64
	// Payload carries the full checkpoint (a *rejoin.EpochCheckpoint,
	// opaque here to keep the package dependency one-way). Backups store
	// the latest verified payload so a post-failover rejoin can start
	// from it instead of replaying full history.
	Payload any
}

// tupleBytes is the accounted shared-memory footprint of one log tuple:
// one cache line of sequence numbers and op metadata (the 64-byte slot
// header is added by the messaging layer).
const tupleBytes = 64

// Tuple is one deterministic-section record: <Seq_thread, Seq_obj, obj_id,
// ft_pid> plus the Lamport Seq_global watermark and the op metadata. The
// sequence numbers fit the same accounted cache line as before sharding
// (tupleBytes), so the wire footprint is unchanged.
type Tuple struct {
	ThreadSeq uint64
	// GlobalSeq is the namespace Lamport clock at emission. With one det
	// shard it is the paper's dense global sequence; with more it remains
	// unique and consistent with every per-thread and per-object order,
	// giving the scalar watermark output commit and checkpoints need.
	GlobalSeq uint64
	// ObjSeq is the section's rank in its sequencing object's own order —
	// the cursor the sharded replayer grants against.
	ObjSeq uint64
	FTPid  int
	Op     pthread.Op
	Obj    uint64
	// Outcome is the recorded result for resolve sections.
	Outcome uint64
	// Data carries payload bytes for data-bearing syscalls (reads).
	Data []byte
}

func (tu Tuple) size() int { return tupleBytes + len(tu.Data) }

func (tu Tuple) String() string {
	return fmt.Sprintf("<%d,%d,%d,%d> %v obj=%d out=%d len=%d",
		tu.ThreadSeq, tu.GlobalSeq, tu.ObjSeq, tu.FTPid, tu.Op, tu.Obj, tu.Outcome, len(tu.Data))
}

// objKey derives a tuple's sequencing object. Pthread primitives carry
// library-unique object ids already; the extended ops fold the op into the
// key so each replicated syscall class (and each socket fd within a class)
// gets its own sequencer. OpThreadCreate stays totally ordered among itself
// because ft_pid assignment mutates shared namespace state. A colliding key
// only over-orders — it can never under-order — so the packing is safe.
func objKey(op pthread.Op, obj uint64) uint64 {
	if op < OpThreadCreate {
		return obj
	}
	return uint64(op)<<48 | obj
}

// ObjCursor is one sequencing object's replication cursor: the Seq_obj its
// side has reached. The per-object cursor vector plus the Lamport watermark
// replaces the single global cursor in sharded checkpoints.
type ObjCursor struct {
	Obj uint64
	Seq uint64
}

// Config tunes the replication engine.
type Config struct {
	// SectionCost is the CPU cost of one deterministic section on the
	// primary (global-mutex critical section plus tuple write).
	SectionCost time.Duration
	// ReplayDispatchCost is the secondary's serial CPU cost to pull one
	// tuple off the ring and hand it to the waiting shadow thread; this
	// path (which rides wake_up_process) is the bottleneck of §4.1.
	ReplayDispatchCost time.Duration
	// ReplaySectionCost is the CPU cost of running one replayed section on
	// the shadow thread.
	ReplaySectionCost time.Duration
	// LogRingBytes is the in-flight log buffer; it absorbs bursts, and its
	// exhaustion is what drops sustained throughput to the secondary's
	// replay rate (§4.1).
	LogRingBytes int64
	// StrictOutputCommit selects waiting for secondary acknowledgements
	// before releasing network output; false is the §3.5 relaxed mode.
	StrictOutputCommit bool
	// AckEvery makes the secondary acknowledge once at least N messages
	// have been processed since the last ack (1 = eager, required for
	// low-latency strict output commit). Acks are cumulative, so a single
	// ack covers a whole ingested batch.
	AckEvery int
	// PanicOnDivergence makes the secondary kernel panic when replay
	// diverges (default counts divergences, for the FIFO-futex ablation).
	PanicOnDivergence bool
	// BatchTuples coalesces up to N log tuples per backup into one vectored
	// ring transfer sharing a single slot header and delivery event
	// (<= 1 streams every tuple individually, the pre-batching behavior).
	// An output-commit waiter always forces an immediate flush, so strict
	// output-commit latency never waits on a partially filled batch.
	BatchTuples int
	// FlushInterval bounds how long a partially filled batch may sit
	// buffered on the primary before the flusher pushes it out (0 with
	// BatchTuples > 1 selects defaultFlushInterval).
	FlushInterval time.Duration
	// AdaptiveBatching replaces the fixed BatchTuples policy with an AIMD
	// feedback controller: the effective batch size starts at BatchTuples,
	// grows while output commits find their watermark already acknowledged
	// (commit wait idle), and halves the moment an output commit stalls or
	// the unacked-log lag climbs past the controller's threshold. The
	// output-commit force-flush invariant is unchanged — a strict waiter
	// still flushes everything buffered before arming its watermark — so
	// the controller trades only buffering latency, never commit safety.
	// With AdaptiveBatching false the recorder's batch policy is exactly
	// the static BatchTuples/FlushInterval one.
	AdaptiveBatching bool
	// MaxBatchTuples caps the adaptive controller's effective batch size
	// (0 selects max(4*BatchTuples, 32)). Ignored without AdaptiveBatching.
	MaxBatchTuples int
	// CommitQuorum is the number of backup receipt acknowledgements an
	// output-commit watermark needs before the output is released. Zero
	// keeps the conservative all-backups rule (every live, caught-up
	// backup must have received the log — the paper's §3.5 behavior and
	// byte-identical to the pre-quorum engine). With k > 0 the recorder
	// releases output once the k-th-highest receipt watermark among the
	// live caught-up backups covers the tuple: any k backups suffice, so
	// one lagging replica no longer sits on the commit path. When fewer
	// than k backups remain alive the rule degrades to all-of-the-living
	// — never weaker than what the survivors can actually promise.
	CommitQuorum int
	// DetShards is the number of det-section locks the namespace global
	// mutex is sharded across (<= 1 selects the paper's single global
	// mutex and is byte-identical to the unsharded engine). With more
	// shards, sections on different sequencing objects record and replay
	// concurrently; per-object FIFO hand-off and per-thread program order
	// are preserved, so race-free applications replay deterministically.
	DetShards int
	// Rejoinable retains the full log history on both sides so a fresh
	// backup can be re-integrated after a failure: the recorder keeps
	// every emitted message for catch-up streaming (AddReplica) and,
	// instead of going fully live when its last backup dies, degrades to
	// recording with vacuous output stability; the replayer keeps every
	// ingested message and, at promotion, forks the namespace into a
	// recording primary that continues the history seamlessly. It must be
	// set from construction: history cannot be recovered retroactively.
	Rejoinable bool
}

// defaultFlushInterval bounds buffered-tuple latency when batching is on
// but no interval was configured.
const defaultFlushInterval = 50 * time.Microsecond

// withBatchDefaults normalizes the batching knobs: a zero BatchTuples means
// batching off (1), batching without a flush interval gets the default so
// buffered tuples can never sit forever, and the adaptive controller gets
// its cap.
func (c Config) withBatchDefaults() Config {
	if c.BatchTuples < 1 {
		c.BatchTuples = 1
	}
	if c.batched() && c.FlushInterval <= 0 {
		c.FlushInterval = defaultFlushInterval
	}
	if c.AdaptiveBatching && c.MaxBatchTuples < 1 {
		c.MaxBatchTuples = 4 * c.BatchTuples
		if c.MaxBatchTuples < 32 {
			c.MaxBatchTuples = 32
		}
	}
	if c.DetShards < 1 {
		c.DetShards = 1
	}
	return c
}

// batched reports whether the recorder coalesces tuples at all — statically
// (BatchTuples > 1) or under controller governance (the controller may
// drive the effective batch above 1 even when BatchTuples is 1).
func (c Config) batched() bool {
	return c.BatchTuples > 1 || c.AdaptiveBatching
}

// DefaultConfig returns the calibrated engine configuration.
func DefaultConfig() Config {
	return Config{
		SectionCost:        8 * time.Microsecond,
		ReplayDispatchCost: 58 * time.Microsecond,
		ReplaySectionCost:  3 * time.Microsecond,
		LogRingBytes:       2 << 20,
		StrictOutputCommit: true,
		AckEvery:           1,
		BatchTuples:        8,
		FlushInterval:      defaultFlushInterval,
	}
}

// Stats summarizes one side's replication activity.
type Stats struct {
	Sections     uint64 // deterministic sections recorded or replayed
	LogMessages  uint64 // log entries emitted (primary) or processed (secondary)
	LogBatches   uint64 // vectored ring transfers: flushes (primary) or multi-tuple deliveries drained (secondary)
	AckMessages  uint64 // cumulative acknowledgements sent (secondary)
	Divergences  uint64 // replay mismatches detected (secondary)
	Dropped      uint64 // log tuples discarded at promotion (gap after fault)
	Duplicates   uint64 // stale log messages discarded by the replayer (injected duplicates)
	EpochCuts    uint64 // epoch checkpoint markers emitted (primary)
	LogTruncated uint64 // retained log messages dropped at verified epoch boundaries
}
