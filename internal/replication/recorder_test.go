package replication

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/shm"
	"repro/internal/sim"
)

// newRecorderHarness boots a bare recorder on a primary kernel with one
// backup link, so the ack path can be driven directly.
func newRecorderHarness(t *testing.T, cfg Config, ackRingBytes int64) (*sim.Simulation, *shm.Ring, *shm.Ring, *Recorder) {
	t.Helper()
	s := sim.New(1)
	m := hw.New(s, hw.Opteron6376x4())
	pp, err := m.NewPartition("primary", 0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := m.NewPartition("secondary", 4, 5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	pk, err := kernel.Boot(pp, kernel.Config{Name: "primary", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	fabric := shm.NewFabric(s, pp.CrossLatency(sp))
	log := fabric.NewRing("log", 0, cfg.LogRingBytes)
	acks := fabric.NewRing("acks", 1, ackRingBytes)
	rec := newRecorder(pk, cfg, []*shm.Ring{log}, []*shm.Ring{acks})
	return s, log, acks, rec
}

// TestAckLoopIgnoresStaleWatermark verifies that a non-increasing receipt
// watermark on the acks ring never rolls the recorder's view backwards:
// acks are cumulative, and reordering relative to the receipt-observation
// path must be harmless.
func TestAckLoopIgnoresStaleWatermark(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BatchTuples = 1
	s, _, acks, rec := newRecorderHarness(t, cfg, 64<<10)
	var observed []uint64
	s.Spawn("fake-secondary", func(p *sim.Proc) {
		for _, v := range []uint64{5, 3, 5, 7} {
			acks.Send(p, shm.Message{Kind: msgTuple, Payload: v, Size: 16})
			p.Sleep(time.Millisecond)
			observed = append(observed, rec.replicas[0].acked)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []uint64{5, 5, 5, 7}
	for i, w := range want {
		if i >= len(observed) || observed[i] != w {
			t.Fatalf("acked after each ack = %v, want %v (stale watermarks ignored)", observed, want)
		}
	}
}

// TestAcksRingNeverFillsUnderBacklog verifies the recorder's dedicated
// ack-consumer keeps draining a tiny acks ring faster than a backlogged
// secondary can fill it: a blocking ack sender must never stall for good.
func TestAcksRingNeverFillsUnderBacklog(t *testing.T) {
	cfg := DefaultConfig()
	s, _, acks, rec := newRecorderHarness(t, cfg, 1<<10) // ~12 ack slots
	done := false
	s.Spawn("fake-secondary", func(p *sim.Proc) {
		for i := 1; i <= 200; i++ {
			acks.Send(p, shm.Message{Kind: msgTuple, Payload: uint64(i), Size: 16})
		}
		done = true
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("ack sender blocked forever: acks ring filled up")
	}
	if got := rec.replicas[0].acked; got != 200 {
		t.Errorf("final acked watermark = %d, want 200", got)
	}
}
