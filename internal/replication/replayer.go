package replication

import (
	"fmt"
	"sort"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/pthread"
	"repro/internal/shm"
	"repro/internal/sim"
)

// headSub is one callback armed to fire when the replay head reaches a
// global sequence number. While any sub is armed on a sharded replayer,
// grants at or past the earliest armed watermark are withheld so the
// replayed set at fire time is exactly the prefix below it — the property
// the rejoin checkpoint verifier compares cursor vectors under.
type headSub struct {
	seq uint64
	fn  func()
	// epoch marks an epoch-boundary verification sub: dropped at
	// promotion (the primary that cut the epoch is dead, and a stale
	// barrier would wedge the post-promotion drain-replay).
	epoch bool
}

// replWaiter is a shadow thread parked in a deterministic section, waiting
// for its tuple to be grantable: at the head of the log with one det
// shard, at the head of its object's queue with more.
type replWaiter struct {
	th        *Thread
	key       uint64
	obj       uint64   // sequencing-object key the thread parked on
	parkedAt  sim.Time // when the thread parked, for grant-wait attribution
	granted   bool
	liveFlush bool // granted by promotion to live execution, no tuple
	tuple     Tuple
}

// shardIngress is one det shard's dispatch queue on the secondary: the
// pull loop routes tuples here in ring order and the shard's grant task
// pays the per-tuple dispatch cost — in parallel across shards.
type shardIngress struct {
	q  []shm.Message
	wq *sim.WaitQueue
}

// Replayer is the secondary-side engine: it pulls the primary's log off the
// shared-memory ring and delivers deterministic-section turns to shadow
// threads. With one det shard turns follow the recorded global order
// through a single cursor; with more, a per-object grant table lets shadow
// threads on independent objects replay concurrently, and the scalar
// replay head becomes the Lamport frontier (every GlobalSeq below it has
// been replayed).
type Replayer struct {
	kern *kernel.Kernel
	cfg  Config
	log  *shm.Ring
	acks *shm.Ring

	// Unsharded (DetShards <= 1) grant state: the recorded total order.
	pending     []Tuple
	headGranted bool
	nextGlobal  uint64

	// Sharded (DetShards > 1) grant state: the per-object grant table.
	objSeen    map[uint64]uint64  // next ObjSeq expected off the ring (duplicate filter)
	objPending map[uint64][]Tuple // arrived, unreplayed tuples per object
	objGranted map[uint64]bool    // object currently executing a granted section
	objKnown   map[uint64]bool
	objOrder   []uint64        // object keys in first-arrival order: the deterministic rescan order
	unreplayed int             // total tuples across objPending
	frontier   uint64          // Lamport replay head: every GlobalSeq < frontier is replayed
	ahead      map[uint64]bool // replayed GlobalSeqs at or past the frontier
	shardQ     []*shardIngress
	granters   []*kernel.Task

	// objDone is maintained in both modes: the per-object cursor vector
	// checkpoints compare and forks continue from.
	objDone map[uint64]uint64

	waiting   map[int]*replWaiter
	waitOrder []int // ftpids in park order, for deterministic live-flush
	processed uint64

	env      map[string]string
	envReady bool
	envQ     *sim.WaitQueue

	live        bool
	primaryDead bool
	promoted    *sim.WaitQueue
	puller      *kernel.Task
	stats       Stats

	// Rejoin support (Config.Rejoinable): the ingested log is retained so
	// that, at promotion, onFork can convert the namespace into a
	// recording primary continuing the same history; parked shadow
	// threads flushed by promotion delegate their sections to the fork so
	// the history has no gap. headSubs are watermark callbacks used by the
	// rejoin checkpoint verifier.
	history  []shm.Message
	onFork   func(hist []shm.Message, histBase, seqGlobal uint64, objSeq map[uint64]uint64) *Recorder
	fork     *Recorder
	headSubs []headSub

	// Epoch checkpointing (core.WithEpochCheckpoints): histBase is the
	// absolute log index of history[0] — zero for a boot backup, the
	// latest verified epoch boundary once truncation starts (or the
	// checkpoint base for a replica seeded by SeedCheckpoint).
	// baseSeqGlobal is the GlobalSeq the retained window starts at.
	// epochSeen filters duplicate markers; epochBase is the seeded
	// checkpoint's epoch (its own marker arrives first off the catch-up
	// stream and is retained without re-verification). epochAckPend is
	// an epoch ack the full ack ring refused, retried from the pull
	// loop. onEpoch, set by core, verifies a marker's digest against
	// the replayed state at its exact frontier.
	histBase      uint64
	baseSeqGlobal uint64
	epochSeen     uint64
	epochBase     uint64
	epochAckPend  uint64
	onEpoch       func(mark EpochMark) bool

	sc         *obs.Scope
	cAcks      *obs.Counter
	hRecvBatch *obs.Histogram
	hGrantWait *obs.Histogram
}

func newReplayer(k *kernel.Kernel, cfg Config, log, acks *shm.Ring) *Replayer {
	r := &Replayer{
		kern:     k,
		cfg:      cfg.withBatchDefaults(),
		log:      log,
		acks:     acks,
		waiting:  make(map[int]*replWaiter),
		objDone:  make(map[uint64]uint64),
		envQ:     sim.NewWaitQueue(k.Sim()),
		promoted: sim.NewWaitQueue(k.Sim()),
	}
	if !r.sharded() {
		r.puller = k.Spawn("ft-replay", r.pullLoop)
		return r
	}
	r.objSeen = make(map[uint64]uint64)
	r.objPending = make(map[uint64][]Tuple)
	r.objGranted = make(map[uint64]bool)
	r.objKnown = make(map[uint64]bool)
	r.ahead = make(map[uint64]bool)
	r.shardQ = make([]*shardIngress, r.cfg.DetShards)
	for i := range r.shardQ {
		r.shardQ[i] = &shardIngress{wq: sim.NewWaitQueue(k.Sim())}
	}
	r.puller = k.Spawn("ft-replay", r.pullLoopSharded)
	for i := range r.shardQ {
		i := i
		r.granters = append(r.granters,
			k.Spawn(fmt.Sprintf("ft-grant.%d", i), func(t *kernel.Task) { r.grantLoop(t, i) }))
	}
	return r
}

// sharded reports whether the per-object grant table is in effect.
func (r *Replayer) sharded() bool { return r.cfg.DetShards > 1 }

// head is the scalar replay watermark: the recorded-order cursor
// unsharded, the Lamport frontier sharded.
func (r *Replayer) head() uint64 {
	if r.sharded() {
		return r.frontier
	}
	return r.nextGlobal
}

// outstanding is the number of arrived, unreplayed tuples.
func (r *Replayer) outstanding() int {
	if r.sharded() {
		return r.unreplayed
	}
	return len(r.pending)
}

// pullLoop is the serial log-dispatch path whose per-tuple cost (riding
// wake_up_process to hand turns to shadow threads) bounds the secondary's
// replay rate — the §4.1 bottleneck.
func (r *Replayer) pullLoop(t *kernel.Task) {
	max := r.cfg.BatchTuples
	if max < 1 {
		max = 1
	}
	var lastAcked uint64
	for {
		batch := r.log.RecvBatch(t.Proc(), max)
		r.hRecvBatch.Observe(int64(len(batch)))
		// Acknowledge at receipt (§3.5): the whole batch is already safe in
		// this replica's memory for subsequent live replay, so one
		// cumulative ack covers all of it.
		r.processed += uint64(len(batch))
		if len(batch) > 1 {
			r.stats.LogBatches++
		}
		if r.cfg.AckEvery > 0 && r.processed-lastAcked >= uint64(r.cfg.AckEvery) {
			if r.acks.TrySend(shm.Message{Kind: msgTuple, Payload: r.processed, Size: 16}) {
				lastAcked = r.processed
				r.stats.AckMessages++
				r.cAcks.Inc()
				r.sc.Emit(obs.AckSend, 0, int64(r.processed), 0)
			}
		}
		r.retryEpochAck()
		for _, m := range batch {
			if r.cfg.ReplayDispatchCost > 0 {
				t.Compute(r.cfg.ReplayDispatchCost)
			}
			r.ingest(m)
		}
	}
}

// pullLoopSharded is the sharded receive path: it acknowledges receipt and
// routes each tuple to its det shard's ingress queue WITHOUT paying the
// dispatch cost — the shard grant tasks pay it concurrently, which is what
// lifts the §4.1 serial-dispatch ceiling by the shard count.
func (r *Replayer) pullLoopSharded(t *kernel.Task) {
	max := r.cfg.BatchTuples
	if max < 1 {
		max = 1
	}
	var lastAcked uint64
	for {
		batch := r.log.RecvBatch(t.Proc(), max)
		r.hRecvBatch.Observe(int64(len(batch)))
		r.processed += uint64(len(batch))
		if len(batch) > 1 {
			r.stats.LogBatches++
		}
		if r.cfg.AckEvery > 0 && r.processed-lastAcked >= uint64(r.cfg.AckEvery) {
			if r.acks.TrySend(shm.Message{Kind: msgTuple, Payload: r.processed, Size: 16}) {
				lastAcked = r.processed
				r.stats.AckMessages++
				r.cAcks.Inc()
				r.sc.Emit(obs.AckSend, 0, int64(r.processed), 0)
			}
		}
		r.retryEpochAck()
		for _, m := range batch {
			r.route(m)
		}
	}
}

// route performs the sharded receive-side bookkeeping for one message, in
// ring order: duplicate filtering, history retention (the retained order
// must respect every per-thread and per-object order, which ring order
// does and per-shard completion order would not), then hand-off to the
// shard ingress queue.
func (r *Replayer) route(m shm.Message) {
	switch m.Kind {
	case msgEnv:
		if env, ok := m.Payload.(map[string]string); ok {
			if r.envReady {
				r.stats.Duplicates++
				return
			}
			r.env = env
			r.envReady = true
			r.envQ.WakeAll(0)
		}
	case msgTuple:
		if tu, ok := m.Payload.(Tuple); ok {
			key := objKey(tu.Op, tu.Obj)
			if tu.ObjSeq < r.objSeen[key] {
				// Behind the object's ring cursor: a stale duplicate
				// (injected duplication, or promotion-drain overlap).
				r.stats.Duplicates++
				return
			}
			if tu.ObjSeq > r.objSeen[key] {
				// The mailbox is FIFO and coherency loss only truncates a
				// suffix, so a per-object gap cannot occur on this path.
				panic(fmt.Sprintf("replication: per-object log gap: %v expected obj-seq %d", tu, r.objSeen[key]))
			}
			r.objSeen[key] = tu.ObjSeq + 1
			sh := r.shardQ[pthread.ShardOf(key, r.cfg.DetShards)]
			sh.q = append(sh.q, m)
			sh.wq.WakeAll(0)
		}
	case msgEpoch:
		if mark, ok := m.Payload.(EpochMark); ok && !r.noteEpoch(mark) {
			r.stats.Duplicates++
			return
		}
	}
	if r.cfg.Rejoinable {
		r.history = append(r.history, m)
	}
	r.stats.LogMessages++
}

// grantLoop is one det shard's dispatch task: it pays the per-tuple
// dispatch cost for its shard's tuples and admits them into the grant
// table. Shards progress independently — the replay-side analogue of the
// recorder's sharded det locks.
func (r *Replayer) grantLoop(t *kernel.Task, shard int) {
	sh := r.shardQ[shard]
	for {
		for len(sh.q) == 0 {
			sh.wq.Wait(t.Proc())
		}
		// Pay the dispatch cost BEFORE popping: if promotion kills this
		// task mid-dispatch, the tuple is still queued and the promotion
		// drain admits it — popping first would lose it and strand its
		// object's queue behind a permanent gap. This task is the queue's
		// only consumer, so the head cannot change across the yield.
		if r.cfg.ReplayDispatchCost > 0 {
			t.Compute(r.cfg.ReplayDispatchCost)
		}
		m := sh.q[0]
		sh.q = sh.q[1:]
		r.admit(m)
	}
}

// admit enters one routed tuple into the per-object grant table.
func (r *Replayer) admit(m shm.Message) {
	tu, ok := m.Payload.(Tuple)
	if !ok {
		return
	}
	key := objKey(tu.Op, tu.Obj)
	if !r.objKnown[key] {
		r.objKnown[key] = true
		r.objOrder = append(r.objOrder, key)
	}
	r.objPending[key] = append(r.objPending[key], tu)
	r.unreplayed++
	r.tryGrantObj(key)
}

func (r *Replayer) ingest(m shm.Message) {
	switch m.Kind {
	case msgEnv:
		if env, ok := m.Payload.(map[string]string); ok {
			if r.envReady {
				r.stats.Duplicates++
				return
			}
			r.env = env
			r.envReady = true
			r.envQ.WakeAll(0)
		}
	case msgTuple:
		if tu, ok := m.Payload.(Tuple); ok {
			// A tuple below the pending horizon is a stale duplicate (an
			// injected mailbox duplication, or overlap between a promotion
			// drain and in-flight delivery); the log is cumulative, so it
			// is discarded rather than treated as a gap.
			if tu.GlobalSeq < r.nextGlobal+uint64(len(r.pending)) {
				r.stats.Duplicates++
				return
			}
			r.pending = append(r.pending, tu)
			r.tryGrant()
		}
	case msgEpoch:
		if mark, ok := m.Payload.(EpochMark); ok && !r.noteEpoch(mark) {
			r.stats.Duplicates++
			return
		}
	}
	if r.cfg.Rejoinable {
		r.history = append(r.history, m)
	}
	r.stats.LogMessages++
}

// SeedCheckpoint initializes a fresh replayer from an epoch checkpoint
// instead of sequence zero: the replay cursors, the per-object duplicate
// filters, the env mirror, and the receipt count all start at the
// checkpoint's watermarks, so the first message off the catch-up stream
// — the checkpoint's own epoch marker — is exactly the next expected log
// index. Must run before any log message arrives (the core rejoin path
// calls it in the same atomic instant that cuts the checkpoint and
// attaches the link). epoch is the checkpoint's epoch number; its marker
// is retained without re-verification.
func (r *Replayer) SeedCheckpoint(epoch, seqGlobal, sent uint64, objs []ObjCursor, env map[string]string) {
	r.nextGlobal = seqGlobal
	r.frontier = seqGlobal
	r.baseSeqGlobal = seqGlobal
	r.processed = sent
	r.histBase = sent
	r.epochBase = epoch
	for _, c := range objs {
		r.objDone[c.Obj] = c.Seq
		if r.sharded() {
			r.objSeen[c.Obj] = c.Seq
			if !r.objKnown[c.Obj] {
				r.objKnown[c.Obj] = true
				r.objOrder = append(r.objOrder, c.Obj)
			}
		}
	}
	if env != nil {
		r.env = env
		r.envReady = true
		r.envQ.WakeAll(0)
	}
}

// OnEpoch installs the epoch-boundary verifier (core's digest check).
// Without one, markers are retained in the history for alignment but
// never verified, acked, or truncated at.
func (r *Replayer) OnEpoch(fn func(mark EpochMark) bool) { r.onEpoch = fn }

// noteEpoch handles one epoch marker off the ring, in ring order. It
// reports false for a stale duplicate (not retained). A fresh marker is
// always retained — at exactly the log index the primary cut it at, or
// replay has silently diverged from the primary's numbering — and, when
// a verifier is installed, armed for verification at the marker's exact
// replay frontier.
func (r *Replayer) noteEpoch(mark EpochMark) bool {
	if mark.Epoch <= r.epochSeen {
		return false
	}
	r.epochSeen = mark.Epoch
	if r.onEpoch == nil || mark.Epoch <= r.epochBase {
		return true
	}
	if at := r.histBase + uint64(len(r.history)); at != mark.Sent {
		r.diverge(fmt.Sprintf("epoch %d marker arrived at log index %d, cut at %d", mark.Epoch, at, mark.Sent))
		return true
	}
	r.armEpochSub(mark.SeqGlobal, func() { r.verifyEpoch(mark) })
	return true
}

// armEpochSub arms an epoch-tagged head sub (see OnHead): the callback
// runs when the replay head reaches seq, with grants at or past seq
// withheld so the replayed set is exactly the prefix the epoch fences.
func (r *Replayer) armEpochSub(seq uint64, fn func()) {
	if r.head() >= seq {
		r.kern.Sim().Schedule(0, fn)
		return
	}
	r.headSubs = append(r.headSubs, headSub{seq: seq, fn: fn, epoch: true})
}

// verifyEpoch runs at the marker's exact replay frontier (armed via the
// head-sub grant barrier, so the replayed prefix is quiesced): the
// verifier recomputes the checkpoint digest from local replayed state,
// and a match makes the boundary safe to truncate at — everything below
// it is subsumed by a checkpoint this replica has verified it could have
// produced itself. The ack tells the primary this backup no longer needs
// the prefix retained.
func (r *Replayer) verifyEpoch(mark EpochMark) {
	if r.live || r.primaryDead {
		return
	}
	if !r.onEpoch(mark) {
		r.diverge(fmt.Sprintf("epoch %d digest mismatch at Seq_global %d: replayed state does not reproduce the primary's checkpoint", mark.Epoch, mark.SeqGlobal))
		return
	}
	r.truncateAt(mark)
	r.sendEpochAck(mark.Epoch)
}

// truncateAt drops this replica's retained history below a verified
// epoch marker. The marker itself stays as history[0] — the primary
// retains it too after its quorum truncation, keeping both sides'
// log-index spaces aligned. Truncating above an unverified boundary
// would discard the only local copy of state a promotion might need, so
// only a verified marker's base is accepted.
func (r *Replayer) truncateAt(mark EpochMark) {
	verified := mark.Sent
	if verified < r.histBase {
		return // already truncated past this verified boundary
	}
	keep := verified - r.histBase
	if keep > uint64(len(r.history)) {
		r.diverge(fmt.Sprintf("epoch %d verified boundary %d beyond retained history end %d",
			mark.Epoch, verified, r.histBase+uint64(len(r.history))))
		return
	}
	r.history = r.history[keep:]
	r.histBase = verified
	r.baseSeqGlobal = mark.SeqGlobal
	r.stats.LogTruncated += keep
	r.sc.Emit(obs.EpochTruncate, 0, int64(mark.Epoch), int64(keep))
}

// sendEpochAck sends (or queues, when the ack ring is momentarily full)
// the epoch-boundary acknowledgement; retryEpochAck drains the queued
// one from the pull loop.
func (r *Replayer) sendEpochAck(epoch uint64) {
	if r.acks.TrySend(shm.Message{Kind: msgEpochAck, Payload: epoch, Size: 16}) {
		r.stats.AckMessages++
		return
	}
	if epoch > r.epochAckPend {
		r.epochAckPend = epoch
	}
}

func (r *Replayer) retryEpochAck() {
	if r.epochAckPend == 0 {
		return
	}
	if r.acks.TrySend(shm.Message{Kind: msgEpochAck, Payload: r.epochAckPend, Size: 16}) {
		r.epochAckPend = 0
		r.stats.AckMessages++
	}
}

// RetainedTuples and RetainedBytes expose the replica-side retained-log
// footprint for the ftns.log.retained.* gauges.
func (r *Replayer) RetainedTuples() int { return len(r.history) }

func (r *Replayer) RetainedBytes() int64 {
	var b int64
	for _, m := range r.history {
		b += int64(m.Size)
	}
	return b
}

func (r *Replayer) waitEnv(t *kernel.Task) map[string]string {
	for !r.envReady && !r.live {
		r.envQ.Wait(t.Proc())
	}
	return r.env
}

// tryGrant hands the head tuple's turn to its shadow thread, if it has
// arrived at its deterministic section (unsharded discipline).
func (r *Replayer) tryGrant() {
	if r.headGranted || r.live || len(r.pending) == 0 {
		return
	}
	tu := r.pending[0]
	if tu.GlobalSeq != r.nextGlobal {
		if r.primaryDead {
			// Coherency fault lost part of the log: everything past the gap
			// is beyond the stable point and is discarded (§3.5).
			r.sc.Emit(obs.LogDrop, 0, int64(r.nextGlobal), int64(len(r.pending)))
			r.stats.Dropped += uint64(len(r.pending))
			r.pending = nil
			r.finishPromotion()
			return
		}
		panic(fmt.Sprintf("replication: log gap with live primary: head=%v next=%d", tu, r.nextGlobal))
	}
	w, ok := r.waiting[tu.FTPid]
	if !ok {
		return // the shadow thread has not reached this section yet
	}
	delete(r.waiting, tu.FTPid)
	r.dropWaitOrder(tu.FTPid)
	r.headGranted = true
	w.tuple = tu
	w.granted = true
	r.noteGrant(w, tu)
	r.kern.FutexWakeRaw(w.key, 1)
}

// noteGrant records a replay grant with the tuple's alignment identity
// <obj, Seq_obj> (matching the primary's TupleEmit of the same section)
// and the time the shadow thread spent parked before the grant — the
// replay-grant-wait stage of the causal critical path.
func (r *Replayer) noteGrant(w *replWaiter, tu Tuple) {
	wait := int64(r.kern.Sim().Now().Sub(w.parkedAt))
	r.sc.EmitDet(obs.Replay, tu.FTPid, int64(tu.GlobalSeq), wait, objKey(tu.Op, tu.Obj), int64(tu.ObjSeq))
}

// grantBarrier is the earliest armed head watermark: while the rejoin
// verifier waits at W, no tuple with GlobalSeq >= W may be granted, so
// the replayed set at frontier == W is exactly [0, W). Deadlock-free: the
// recorded prefix is closed under per-thread and per-object predecessors
// (GlobalSeq increases along both orders), so replay below the barrier
// always makes progress.
func (r *Replayer) grantBarrier() uint64 {
	min := ^uint64(0)
	for _, s := range r.headSubs {
		if s.seq < min {
			min = s.seq
		}
	}
	return min
}

// tryGrantObj hands the head of one object's queue to its shadow thread if
// the thread has arrived at the matching point in its program order
// (sharded discipline). Thread-order matching happens here — the thread
// may legitimately still be short of this tuple while its earlier sections
// on other objects replay; op/object divergence is still detected by
// verify after the grant, as in the unsharded engine.
func (r *Replayer) tryGrantObj(key uint64) {
	if r.live || r.objGranted[key] {
		return
	}
	q := r.objPending[key]
	if len(q) == 0 {
		return
	}
	tu := q[0]
	if tu.GlobalSeq >= r.grantBarrier() {
		return
	}
	w, ok := r.waiting[tu.FTPid]
	if !ok || w.th.seq != tu.ThreadSeq {
		return
	}
	delete(r.waiting, tu.FTPid)
	r.dropWaitOrder(tu.FTPid)
	r.objGranted[key] = true
	w.tuple = tu
	w.granted = true
	r.noteGrant(w, tu)
	r.kern.FutexWakeRaw(w.key, 1)
}

// tryGrantAll rescans every object's queue in first-arrival order — a
// deterministic order, unlike a map walk — after an event that can unblock
// more than one object (a park, a completed section, a lifted barrier).
func (r *Replayer) tryGrantAll() {
	for _, key := range r.objOrder {
		r.tryGrantObj(key)
	}
}

func (r *Replayer) dropWaitOrder(ftpid int) {
	for i, id := range r.waitOrder {
		if id == ftpid {
			r.waitOrder = append(r.waitOrder[:i], r.waitOrder[i+1:]...)
			return
		}
	}
}

// park registers the calling shadow thread and blocks until its turn (or
// until promotion flushes it into live execution). key is the sequencing
// object of the section the thread is entering.
func (r *Replayer) park(th *Thread, key uint64) *replWaiter {
	if _, dup := r.waiting[th.ftpid]; dup {
		panic(fmt.Sprintf("replication: ft_pid %d parked twice", th.ftpid))
	}
	start := th.task.Now()
	w := &replWaiter{th: th, key: r.kern.NewFutexKey(), obj: key, parkedAt: start}
	r.waiting[th.ftpid] = w
	r.waitOrder = append(r.waitOrder, th.ftpid)
	if r.sharded() {
		r.tryGrantAll()
	} else {
		r.tryGrant()
	}
	for !w.granted {
		th.task.FutexWait(w.key, -1)
	}
	r.hGrantWait.Observe(int64(th.task.Now().Sub(start)))
	return w
}

// sectionDone advances the replay cursors after the granted shadow thread
// finished executing its section.
func (r *Replayer) sectionDone(w *replWaiter) {
	if r.sharded() {
		r.sectionDoneSharded(w.tuple)
		return
	}
	tu := r.pending[0]
	r.objDone[objKey(tu.Op, tu.Obj)] = tu.ObjSeq + 1
	r.headGranted = false
	r.pending = r.pending[1:]
	r.nextGlobal++
	r.stats.Sections++
	r.fireHeadSubs()
	r.tryGrant()
	if r.primaryDead && len(r.pending) == 0 {
		r.finishPromotion()
	}
}

// sectionDoneSharded releases the object, advances its cursor and folds
// the completed GlobalSeq into the Lamport frontier.
func (r *Replayer) sectionDoneSharded(tu Tuple) {
	key := objKey(tu.Op, tu.Obj)
	r.objGranted[key] = false
	r.objPending[key] = r.objPending[key][1:]
	r.objDone[key] = tu.ObjSeq + 1
	r.unreplayed--
	r.stats.Sections++
	r.ahead[tu.GlobalSeq] = true
	for r.ahead[r.frontier] {
		delete(r.ahead, r.frontier)
		r.frontier++
	}
	// Fire watermark subs BEFORE rescanning: removing a sub lifts the
	// barrier, and its callback is scheduled ahead of any wake the rescan
	// issues, so the verifier observes the exact barrier-frozen state.
	r.fireHeadSubs()
	r.tryGrantAll()
	if r.primaryDead && r.unreplayed == 0 {
		r.finishPromotion()
	}
}

// OnHead arms fn to run once the replay head reaches seq (immediately if
// it already has). Callbacks run as scheduled events, never in the shadow
// thread's context; the rejoin checkpoint verifier uses this to compare
// cursor state exactly at the checkpoint watermark.
func (r *Replayer) OnHead(seq uint64, fn func()) {
	if r.head() >= seq {
		r.kern.Sim().Schedule(0, fn)
		return
	}
	r.headSubs = append(r.headSubs, headSub{seq: seq, fn: fn})
}

func (r *Replayer) fireHeadSubs() {
	for i := 0; i < len(r.headSubs); {
		if r.headSubs[i].seq <= r.head() {
			fn := r.headSubs[i].fn
			r.headSubs = append(r.headSubs[:i], r.headSubs[i+1:]...)
			r.kern.Sim().Schedule(0, fn)
			continue
		}
		i++
	}
}

func (r *Replayer) verify(w *replWaiter, op pthread.Op, obj uint64) {
	tu := w.tuple
	if tu.Op == op && tu.Obj == obj && tu.ThreadSeq == w.th.seq {
		return
	}
	r.diverge(fmt.Sprintf("tuple %v does not match section op=%v obj=%d thread-seq=%d ft_pid=%d",
		tu, op, obj, w.th.seq, w.th.ftpid))
}

func (r *Replayer) diverge(msg string) {
	r.stats.Divergences++
	if r.cfg.PanicOnDivergence {
		r.kern.Panic("replay divergence: "+msg, nil)
	}
}

func (r *Replayer) section(th *Thread, op pthread.Op, obj uint64, fn func()) {
	if r.live {
		if r.fork != nil {
			r.fork.section(th, op, obj, fn)
			return
		}
		fn()
		return
	}
	w := r.park(th, objKey(op, obj))
	if w.liveFlush {
		if r.fork != nil {
			// Promotion forked the namespace into a recording primary:
			// the flushed section is recorded there, so the history the
			// next backup replays has no gap.
			r.fork.section(th, op, obj, fn)
			return
		}
		fn()
		return
	}
	th.task.Busy(r.cfg.ReplaySectionCost)
	r.verify(w, op, obj)
	fn()
	th.seq++
	r.sectionDone(w)
}

// resolve replays a resolve section: block is skipped (the outcome is the
// recorded one), settle is executed to apply the same state mutation, and
// the outcomes are compared for divergence detection.
func (r *Replayer) resolve(th *Thread, op pthread.Op, obj uint64, block func(), settle func() (uint64, []byte)) (uint64, []byte) {
	if r.live {
		if r.fork != nil {
			return r.fork.resolve(th, op, obj, block, settle)
		}
		block()
		return settle()
	}
	w := r.park(th, objKey(op, obj))
	if w.liveFlush {
		if r.fork != nil {
			return r.fork.resolve(th, op, obj, block, settle)
		}
		block()
		return settle()
	}
	th.task.Busy(r.cfg.ReplaySectionCost)
	r.verify(w, op, obj)
	out, _ := settle()
	if out != w.tuple.Outcome {
		r.diverge(fmt.Sprintf("resolve outcome %d differs from recorded %d (%v obj=%d)", out, w.tuple.Outcome, op, obj))
	}
	th.seq++
	r.sectionDone(w)
	return w.tuple.Outcome, w.tuple.Data
}

// replayed replays a syscall section whose effect must NOT be re-executed
// locally (socket reads, clock reads): it returns the recorded result.
// When it reports false the caller must execute the call itself — through
// the returned fork recorder if non-nil (promotion converted the replica
// into a recording primary), natively otherwise.
func (r *Replayer) replayed(th *Thread, op pthread.Op, obj uint64) (uint64, []byte, bool, *Recorder) {
	if r.live {
		return 0, nil, false, r.fork
	}
	w := r.park(th, objKey(op, obj))
	if w.liveFlush {
		return 0, nil, false, r.fork
	}
	th.task.Busy(r.cfg.ReplaySectionCost)
	r.verify(w, op, obj)
	th.seq++
	r.sectionDone(w)
	return w.tuple.Outcome, w.tuple.Data, true, nil
}

// Promote switches the replica from replay to live execution after the
// primary's death (§3.7): the remaining log is drained and replayed to the
// last stable point, then every parked shadow thread is released into
// unmanaged execution.
func (r *Replayer) Promote() {
	if r.primaryDead || r.live {
		return
	}
	r.primaryDead = true
	r.puller.Kill()
	for _, g := range r.granters {
		g.Kill()
	}
	// Epoch verifications still armed are moot — the primary that cut
	// them is dead — and their grant barriers would wedge the
	// drain-replay below. Drop them; the rejoin verifier's subs stay.
	subs := r.headSubs[:0]
	for _, s := range r.headSubs {
		if !s.epoch {
			subs = append(subs, s)
		}
	}
	r.headSubs = subs
	// Drain what the dead primary left in shared memory (§3.5: messages in
	// the mailbox survive the sender's death).
	drained := 0
	if r.sharded() {
		for _, m := range r.log.Drain() {
			r.processed++
			drained++
			r.route(m)
		}
		// The grant tasks are dead: admit everything routed (including
		// tuples they left queued) directly, without dispatch cost.
		for _, sh := range r.shardQ {
			for len(sh.q) > 0 {
				m := sh.q[0]
				sh.q = sh.q[1:]
				r.admit(m)
			}
		}
	} else {
		for _, m := range r.log.Drain() {
			r.processed++
			drained++
			r.ingest(m)
		}
	}
	r.sc.Emit(obs.Promote, 0, int64(r.head()), int64(drained))
	if r.outstanding() == 0 {
		r.finishPromotion()
	}
	// Otherwise replay continues as shadow threads arrive; the last
	// sectionDone (or a detected log gap) completes the promotion.
}

func (r *Replayer) finishPromotion() {
	if r.live {
		return
	}
	r.live = true
	r.sc.Emit(obs.GoLive, 0, int64(r.head()), 0)
	if r.onFork != nil {
		// Fork BEFORE flushing waiters: their sections must be recorded
		// by the fork so the retained history stays gapless.
		hist, n := r.replayedHistory()
		r.fork = r.onFork(hist, r.histBase, n, r.objSeqSnapshot())
	}
	order := r.waitOrder
	r.waitOrder = nil
	for _, ftpid := range order {
		w := r.waiting[ftpid]
		delete(r.waiting, ftpid)
		w.liveFlush = true
		w.granted = true
		r.kern.FutexWakeRaw(w.key, 1)
	}
	r.envReady = true
	r.envQ.WakeAll(0)
	r.promoted.WakeAll(0)
}

// objSeqSnapshot copies the per-object cursors for the fork recorder,
// which continues each object's Seq_obj space where replay stopped.
func (r *Replayer) objSeqSnapshot() map[uint64]uint64 {
	keys := make([]uint64, 0, len(r.objDone))
	for k := range r.objDone { // ftvet:nondet collect-then-sort
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make(map[uint64]uint64, len(keys))
	for _, k := range keys {
		out[k] = r.objDone[k]
	}
	return out
}

// replayedHistory returns the executed subset of the retained log — every
// environment message plus exactly the tuples whose sections replayed —
// with GlobalSeq renumbered densely in retained (ring) order from the
// retention window's base. Unsharded with a zero base, the replayed set
// is the first nextGlobal tuples and the renumbering is the identity.
// Sharded, sections completed past a promotion gap would leave holes
// below the Lamport maximum; dropping unreplayed tuples and renumbering
// restores a dense, causally consistent order (ring order respects every
// per-thread and per-object order), so a backup rejoining the fork can
// replay the history under either discipline. Epoch markers are dropped:
// their digests describe the dead primary's numbering, and the fork's
// cutter starts a fresh boundary sequence over the renumbered space. It
// returns the history and the fork's starting GlobalSeq.
func (r *Replayer) replayedHistory() ([]shm.Message, uint64) {
	out := make([]shm.Message, 0, len(r.history))
	n := r.baseSeqGlobal
	for _, m := range r.history {
		if m.Kind == msgEpoch {
			continue
		}
		if m.Kind != msgTuple {
			out = append(out, m)
			continue
		}
		tu, ok := m.Payload.(Tuple)
		if !ok {
			continue
		}
		if tu.ObjSeq >= r.objDone[objKey(tu.Op, tu.Obj)] {
			continue // arrived but never replayed: beyond the stable point
		}
		if tu.GlobalSeq != n {
			tu.GlobalSeq = n
			m.Payload = tu
		}
		n++
		out = append(out, m)
	}
	return out, n
}

// Live reports whether promotion has completed.
func (r *Replayer) Live() bool { return r.live }

// AwaitLive blocks the calling task until promotion completes.
func (r *Replayer) AwaitLive(t *kernel.Task) {
	for !r.live {
		r.promoted.Wait(t.Proc())
	}
}
