package replication

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/pthread"
	"repro/internal/shm"
	"repro/internal/sim"
)

// headSub is one callback armed to fire when the replay head reaches a
// global sequence number.
type headSub struct {
	seq uint64
	fn  func()
}

// replWaiter is a shadow thread parked in a deterministic section, waiting
// for its tuple to reach the head of the log.
type replWaiter struct {
	th        *Thread
	key       uint64
	granted   bool
	liveFlush bool // granted by promotion to live execution, no tuple
	tuple     Tuple
}

// Replayer is the secondary-side engine: it pulls the primary's log off the
// shared-memory ring and delivers deterministic-section turns to shadow
// threads in the recorded global order.
type Replayer struct {
	kern *kernel.Kernel
	cfg  Config
	log  *shm.Ring
	acks *shm.Ring

	pending     []Tuple
	headGranted bool
	nextGlobal  uint64
	waiting     map[int]*replWaiter
	waitOrder   []int // ftpids in park order, for deterministic live-flush
	processed   uint64

	env      map[string]string
	envReady bool
	envQ     *sim.WaitQueue

	live        bool
	primaryDead bool
	promoted    *sim.WaitQueue
	puller      *kernel.Task
	stats       Stats

	// Rejoin support (Config.Rejoinable): the ingested log is retained so
	// that, at promotion, onFork can convert the namespace into a
	// recording primary continuing the same history; parked shadow
	// threads flushed by promotion delegate their sections to the fork so
	// the history has no gap. headSubs are watermark callbacks used by the
	// rejoin checkpoint verifier.
	history  []shm.Message
	onFork   func(hist []shm.Message, nextGlobal uint64) *Recorder
	fork     *Recorder
	headSubs []headSub

	sc         *obs.Scope
	cAcks      *obs.Counter
	hRecvBatch *obs.Histogram
}

func newReplayer(k *kernel.Kernel, cfg Config, log, acks *shm.Ring) *Replayer {
	r := &Replayer{
		kern:     k,
		cfg:      cfg.withBatchDefaults(),
		log:      log,
		acks:     acks,
		waiting:  make(map[int]*replWaiter),
		envQ:     sim.NewWaitQueue(k.Sim()),
		promoted: sim.NewWaitQueue(k.Sim()),
	}
	r.puller = k.Spawn("ft-replay", r.pullLoop)
	return r
}

// pullLoop is the serial log-dispatch path whose per-tuple cost (riding
// wake_up_process to hand turns to shadow threads) bounds the secondary's
// replay rate — the §4.1 bottleneck.
func (r *Replayer) pullLoop(t *kernel.Task) {
	max := r.cfg.BatchTuples
	if max < 1 {
		max = 1
	}
	var lastAcked uint64
	for {
		batch := r.log.RecvBatch(t.Proc(), max)
		r.hRecvBatch.Observe(int64(len(batch)))
		// Acknowledge at receipt (§3.5): the whole batch is already safe in
		// this replica's memory for subsequent live replay, so one
		// cumulative ack covers all of it.
		r.processed += uint64(len(batch))
		if len(batch) > 1 {
			r.stats.LogBatches++
		}
		if r.cfg.AckEvery > 0 && r.processed-lastAcked >= uint64(r.cfg.AckEvery) {
			if r.acks.TrySend(shm.Message{Kind: msgTuple, Payload: r.processed, Size: 16}) {
				lastAcked = r.processed
				r.stats.AckMessages++
				r.cAcks.Inc()
				r.sc.Emit(obs.AckSend, 0, int64(r.processed), 0)
			}
		}
		for _, m := range batch {
			if r.cfg.ReplayDispatchCost > 0 {
				t.Compute(r.cfg.ReplayDispatchCost)
			}
			r.ingest(m)
		}
	}
}

func (r *Replayer) ingest(m shm.Message) {
	switch m.Kind {
	case msgEnv:
		if env, ok := m.Payload.(map[string]string); ok {
			if r.envReady {
				r.stats.Duplicates++
				return
			}
			r.env = env
			r.envReady = true
			r.envQ.WakeAll(0)
		}
	case msgTuple:
		if tu, ok := m.Payload.(Tuple); ok {
			// A tuple below the pending horizon is a stale duplicate (an
			// injected mailbox duplication, or overlap between a promotion
			// drain and in-flight delivery); the log is cumulative, so it
			// is discarded rather than treated as a gap.
			if tu.GlobalSeq < r.nextGlobal+uint64(len(r.pending)) {
				r.stats.Duplicates++
				return
			}
			r.pending = append(r.pending, tu)
			r.tryGrant()
		}
	}
	if r.cfg.Rejoinable {
		r.history = append(r.history, m)
	}
	r.stats.LogMessages++
}

func (r *Replayer) waitEnv(t *kernel.Task) map[string]string {
	for !r.envReady && !r.live {
		r.envQ.Wait(t.Proc())
	}
	return r.env
}

// tryGrant hands the head tuple's turn to its shadow thread, if it has
// arrived at its deterministic section.
func (r *Replayer) tryGrant() {
	if r.headGranted || r.live || len(r.pending) == 0 {
		return
	}
	tu := r.pending[0]
	if tu.GlobalSeq != r.nextGlobal {
		if r.primaryDead {
			// Coherency fault lost part of the log: everything past the gap
			// is beyond the stable point and is discarded (§3.5).
			r.sc.Emit(obs.LogDrop, 0, int64(r.nextGlobal), int64(len(r.pending)))
			r.stats.Dropped += uint64(len(r.pending))
			r.pending = nil
			r.finishPromotion()
			return
		}
		panic(fmt.Sprintf("replication: log gap with live primary: head=%v next=%d", tu, r.nextGlobal))
	}
	w, ok := r.waiting[tu.FTPid]
	if !ok {
		return // the shadow thread has not reached this section yet
	}
	delete(r.waiting, tu.FTPid)
	r.dropWaitOrder(tu.FTPid)
	r.headGranted = true
	w.tuple = tu
	w.granted = true
	r.sc.Emit(obs.Replay, tu.FTPid, int64(tu.GlobalSeq), 0)
	r.kern.FutexWakeRaw(w.key, 1)
}

func (r *Replayer) dropWaitOrder(ftpid int) {
	for i, id := range r.waitOrder {
		if id == ftpid {
			r.waitOrder = append(r.waitOrder[:i], r.waitOrder[i+1:]...)
			return
		}
	}
}

// park registers the calling shadow thread and blocks until its turn (or
// until promotion flushes it into live execution).
func (r *Replayer) park(th *Thread) *replWaiter {
	if _, dup := r.waiting[th.ftpid]; dup {
		panic(fmt.Sprintf("replication: ft_pid %d parked twice", th.ftpid))
	}
	w := &replWaiter{th: th, key: r.kern.NewFutexKey()}
	r.waiting[th.ftpid] = w
	r.waitOrder = append(r.waitOrder, th.ftpid)
	r.tryGrant()
	for !w.granted {
		th.task.FutexWait(w.key, -1)
	}
	return w
}

// sectionDone advances the global replay cursor after the granted shadow
// thread finished executing its section.
func (r *Replayer) sectionDone() {
	r.headGranted = false
	r.pending = r.pending[1:]
	r.nextGlobal++
	r.stats.Sections++
	r.fireHeadSubs()
	r.tryGrant()
	if r.primaryDead && len(r.pending) == 0 {
		r.finishPromotion()
	}
}

// OnHead arms fn to run once the replay head reaches seq (immediately if
// it already has). Callbacks run as scheduled events, never in the shadow
// thread's context; the rejoin checkpoint verifier uses this to compare
// cursor state exactly at the checkpoint watermark.
func (r *Replayer) OnHead(seq uint64, fn func()) {
	if r.nextGlobal >= seq {
		r.kern.Sim().Schedule(0, fn)
		return
	}
	r.headSubs = append(r.headSubs, headSub{seq: seq, fn: fn})
}

func (r *Replayer) fireHeadSubs() {
	for i := 0; i < len(r.headSubs); {
		if r.headSubs[i].seq <= r.nextGlobal {
			fn := r.headSubs[i].fn
			r.headSubs = append(r.headSubs[:i], r.headSubs[i+1:]...)
			r.kern.Sim().Schedule(0, fn)
			continue
		}
		i++
	}
}

func (r *Replayer) verify(w *replWaiter, op pthread.Op, obj uint64) {
	tu := w.tuple
	if tu.Op == op && tu.Obj == obj && tu.ThreadSeq == w.th.seq {
		return
	}
	r.diverge(fmt.Sprintf("tuple %v does not match section op=%v obj=%d thread-seq=%d ft_pid=%d",
		tu, op, obj, w.th.seq, w.th.ftpid))
}

func (r *Replayer) diverge(msg string) {
	r.stats.Divergences++
	if r.cfg.PanicOnDivergence {
		r.kern.Panic("replay divergence: "+msg, nil)
	}
}

func (r *Replayer) section(th *Thread, op pthread.Op, obj uint64, fn func()) {
	if r.live {
		if r.fork != nil {
			r.fork.section(th, op, obj, fn)
			return
		}
		fn()
		return
	}
	w := r.park(th)
	if w.liveFlush {
		if r.fork != nil {
			// Promotion forked the namespace into a recording primary:
			// the flushed section is recorded there, so the history the
			// next backup replays has no gap.
			r.fork.section(th, op, obj, fn)
			return
		}
		fn()
		return
	}
	th.task.Busy(r.cfg.ReplaySectionCost)
	r.verify(w, op, obj)
	fn()
	th.seq++
	r.sectionDone()
}

// resolve replays a resolve section: block is skipped (the outcome is the
// recorded one), settle is executed to apply the same state mutation, and
// the outcomes are compared for divergence detection.
func (r *Replayer) resolve(th *Thread, op pthread.Op, obj uint64, block func(), settle func() (uint64, []byte)) (uint64, []byte) {
	if r.live {
		if r.fork != nil {
			return r.fork.resolve(th, op, obj, block, settle)
		}
		block()
		return settle()
	}
	w := r.park(th)
	if w.liveFlush {
		if r.fork != nil {
			return r.fork.resolve(th, op, obj, block, settle)
		}
		block()
		return settle()
	}
	th.task.Busy(r.cfg.ReplaySectionCost)
	r.verify(w, op, obj)
	out, _ := settle()
	if out != w.tuple.Outcome {
		r.diverge(fmt.Sprintf("resolve outcome %d differs from recorded %d (%v obj=%d)", out, w.tuple.Outcome, op, obj))
	}
	th.seq++
	r.sectionDone()
	return w.tuple.Outcome, w.tuple.Data
}

// replayed replays a syscall section whose effect must NOT be re-executed
// locally (socket reads, clock reads): it returns the recorded result.
// When it reports false the caller must execute the call itself — through
// the returned fork recorder if non-nil (promotion converted the replica
// into a recording primary), natively otherwise.
func (r *Replayer) replayed(th *Thread, op pthread.Op, obj uint64) (uint64, []byte, bool, *Recorder) {
	if r.live {
		return 0, nil, false, r.fork
	}
	w := r.park(th)
	if w.liveFlush {
		return 0, nil, false, r.fork
	}
	th.task.Busy(r.cfg.ReplaySectionCost)
	r.verify(w, op, obj)
	th.seq++
	r.sectionDone()
	return w.tuple.Outcome, w.tuple.Data, true, nil
}

// Promote switches the replica from replay to live execution after the
// primary's death (§3.7): the remaining log is drained and replayed to the
// last stable point, then every parked shadow thread is released into
// unmanaged execution.
func (r *Replayer) Promote() {
	if r.primaryDead || r.live {
		return
	}
	r.primaryDead = true
	r.puller.Kill()
	// Drain what the dead primary left in shared memory (§3.5: messages in
	// the mailbox survive the sender's death).
	drained := 0
	for _, m := range r.log.Drain() {
		r.processed++
		drained++
		r.ingest(m)
	}
	r.sc.Emit(obs.Promote, 0, int64(r.nextGlobal), int64(drained))
	if len(r.pending) == 0 {
		r.finishPromotion()
	}
	// Otherwise replay continues as shadow threads arrive; the last
	// sectionDone (or a detected log gap) completes the promotion.
}

func (r *Replayer) finishPromotion() {
	if r.live {
		return
	}
	r.live = true
	r.sc.Emit(obs.GoLive, 0, int64(r.nextGlobal), 0)
	if r.onFork != nil {
		// Fork BEFORE flushing waiters: their sections must be recorded
		// by the fork so the retained history stays gapless.
		r.fork = r.onFork(r.truncatedHistory(), r.nextGlobal)
	}
	order := r.waitOrder
	r.waitOrder = nil
	for _, ftpid := range order {
		w := r.waiting[ftpid]
		delete(r.waiting, ftpid)
		w.liveFlush = true
		w.granted = true
		r.kern.FutexWakeRaw(w.key, 1)
	}
	r.envReady = true
	r.envQ.WakeAll(0)
	r.promoted.WakeAll(0)
}

// truncatedHistory returns the executed prefix of the retained log: every
// environment message plus the first nextGlobal tuples. Tuples ingested
// past a coherency gap were discarded unreplayed and must not survive
// into the forked recorder's history.
func (r *Replayer) truncatedHistory() []shm.Message {
	out := make([]shm.Message, 0, len(r.history))
	var tuples uint64
	for _, m := range r.history {
		if m.Kind == msgTuple {
			if tuples >= r.nextGlobal {
				break
			}
			tuples++
		}
		out = append(out, m)
	}
	return out
}

// Live reports whether promotion has completed.
func (r *Replayer) Live() bool { return r.live }

// AwaitLive blocks the calling task until promotion completes.
func (r *Replayer) AwaitLive(t *kernel.Task) {
	for !r.live {
		r.promoted.Wait(t.Proc())
	}
}
