package kernel

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Task is one kernel thread (a schedulable entity). A task holds a core
// only while inside Compute; blocking operations release the CPU, exactly
// as a Linux thread sleeping in the kernel does.
type Task struct {
	kernel *Kernel
	proc   *sim.Proc
	tid    int
	name   string

	wakeQ    *sim.WaitQueue // personal queue for core hand-off
	core     int            // core assigned by a releasing task, -1 otherwise
	doneQ    *sim.WaitQueue // joiners
	finished bool
}

// scheduler multiplexes tasks over the kernel's cores.
type scheduler struct {
	k         *Kernel
	ncores    int
	idle      []int      // idle core IDs (most recently used last)
	idleSince []sim.Time // per core
	// Two-level run queue, as in Linux's wake-preemption: tasks that just
	// woke from a block (interactive) are dispatched before tasks that
	// merely exhausted their timeslice (batch), so a brief lock hold or
	// syscall is not penalized by a full quantum behind CPU hogs. A boosted
	// arrival with no idle core preempts a running batch task mid-quantum.
	boostq  []*Task
	runq    []*Task
	running map[int]*runSlice // core -> current timeslice
}

// runSlice is one task's current occupancy of a core.
type runSlice struct {
	t         *Task
	core      int
	batch     bool
	start     sim.Time
	timer     *sim.Event
	finished  bool
	preempted bool
}

func newScheduler(k *Kernel, ncores int) *scheduler {
	s := &scheduler{
		k:         k,
		ncores:    ncores,
		idleSince: make([]sim.Time, ncores),
		running:   make(map[int]*runSlice),
	}
	for c := ncores - 1; c >= 0; c-- {
		s.idle = append(s.idle, c)
	}
	return s
}

// Spawn starts fn as a new kernel task. The task's goroutine dies with the
// kernel.
func (k *Kernel) Spawn(name string, fn func(t *Task)) *Task {
	k.nextTID++
	t := &Task{
		kernel: k,
		tid:    k.nextTID,
		name:   name,
		core:   -1,
		wakeQ:  sim.NewWaitQueue(k.sim),
		doneQ:  sim.NewWaitQueue(k.sim),
	}
	t.proc = k.group.Spawn(fmt.Sprintf("%s/%s.%d", k.name, name, t.tid), func(p *sim.Proc) {
		defer func() {
			t.finished = true
			t.doneQ.WakeAll(0)
		}()
		fn(t)
	})
	return t
}

// Kernel returns the kernel the task runs on.
func (t *Task) Kernel() *Kernel { return t.kernel }

// TID returns the task's thread ID, unique within its kernel.
func (t *Task) TID() int { return t.tid }

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// Proc returns the underlying simulated process.
func (t *Task) Proc() *sim.Proc { return t.proc }

// Now returns the current virtual time.
func (t *Task) Now() sim.Time { return t.kernel.sim.Now() }

// Finished reports whether the task function has returned.
func (t *Task) Finished() bool { return t.finished }

// Kill terminates the task at its next block point.
func (t *Task) Kill() { t.proc.Kill() }

// Join blocks the calling task until t finishes.
func (t *Task) Join(caller *Task) {
	for !t.finished {
		t.doneQ.Wait(caller.proc)
	}
}

// Sleep blocks the task for d without holding a core.
func (t *Task) Sleep(d time.Duration) { t.proc.Sleep(d) }

// Busy occupies the task for d of short on-CPU work WITHOUT a scheduling
// point: the model of a brief kernel path (syscall entry, lock word
// update, log write) that runs to completion on the thread's current core
// rather than rescheduling. It advances time and utilization accounting
// but does not contend for a core.
func (t *Task) Busy(d time.Duration) {
	if d <= 0 {
		return
	}
	t.proc.Sleep(d)
	t.kernel.computeNS += int64(d)
}

// Syscall charges the base syscall entry/exit cost.
func (t *Task) Syscall() { t.Busy(t.kernel.params.SyscallCost) }

// Compute consumes d of CPU time on one of the kernel's cores, competing
// with other tasks. Dispatch costs (context switch, deep-idle wake penalty)
// are added on top of d.
func (t *Task) Compute(d time.Duration) {
	if d <= 0 {
		return
	}
	s := t.kernel.sched
	core := s.acquire(t, true)
	batch := false
	for d > 0 {
		q := d
		if q > t.kernel.params.Quantum {
			q = t.kernel.params.Quantum
		}
		elapsed := s.runSliceFor(t, core, q, batch)
		t.kernel.computeNS += int64(elapsed)
		d -= elapsed
		if d > 0 && s.queued() > 0 {
			// Contended (or preempted): yield the core and requeue as batch.
			s.release(core)
			core = s.acquire(t, false)
			batch = true
		}
	}
	s.release(core)
}

// runSliceFor occupies the core for up to q of compute, returning the time
// actually run: a batch slice ends early when a freshly woken task preempts
// it.
func (s *scheduler) runSliceFor(t *Task, core int, q time.Duration, batch bool) time.Duration {
	slice := &runSlice{t: t, core: core, batch: batch, start: s.k.sim.Now()}
	s.running[core] = slice
	defer func() {
		delete(s.running, core)
		if r := recover(); r != nil {
			// The task was killed mid-slice: free the core as we unwind.
			s.release(core)
			panic(r)
		}
	}()
	slice.timer = s.k.sim.Schedule(q, func() {
		if slice.finished {
			return
		}
		slice.finished = true
		t.wakeQ.WakeOne(0)
	})
	t.wakeQ.Wait(t.proc)
	return s.k.sim.Now().Sub(slice.start)
}

// preemptBatch interrupts the longest-running batch slice, if any,
// reporting whether one was preempted.
func (s *scheduler) preemptBatch() bool {
	var victim *runSlice
	for _, sl := range s.running {
		if sl.batch && !sl.finished && !sl.preempted &&
			(victim == nil || sl.start < victim.start || (sl.start == victim.start && sl.core < victim.core)) {
			victim = sl
		}
	}
	if victim == nil {
		return false
	}
	victim.preempted = true
	victim.finished = true
	victim.timer.Cancel()
	victim.t.wakeQ.WakeOne(s.k.params.ContextSwitch)
	return true
}

func (s *scheduler) queued() int { return len(s.boostq) + len(s.runq) }

// acquire obtains a core for t, paying dispatch latency. If every core is
// busy the task queues behind other runnable tasks: freshly woken tasks
// (boost) ahead of timeslice-expired ones.
func (s *scheduler) acquire(t *Task, boost bool) int {
	if len(s.idle) > 0 {
		core := s.idle[len(s.idle)-1]
		s.idle = s.idle[:len(s.idle)-1]
		idleFor := s.k.sim.Now().Sub(s.idleSince[core])
		if pen := s.dispatchPenalty(idleFor); pen > 0 {
			t.proc.Sleep(pen)
		}
		return core
	}
	if boost {
		s.boostq = append(s.boostq, t)
		// Wake-preemption: evict a running batch slice so the woken task
		// gets a core within a context switch rather than a full quantum —
		// granted with the configured probability, as CFS's vruntime check
		// only sometimes allows it.
		if pr := s.k.params.WakePreemptProb; pr > 0 && (pr >= 1 || s.k.sim.Rand().Float64() < pr) {
			s.preemptBatch()
		}
	} else {
		s.runq = append(s.runq, t)
	}
	t.wakeQ.Wait(t.proc)
	return t.core
}

// dispatchPenalty models wake_up_process: a context switch, plus an
// idle-exit penalty that grows with how long the target core has been idle
// (deeper C-states take longer to leave), up to tens of milliseconds for
// long-idle cores (§4.1). The penalty is bounded by a twentieth of the
// idle time, so waking costs can degrade but never dominate a busy
// system's throughput.
func (s *scheduler) dispatchPenalty(idleFor time.Duration) time.Duration {
	p := s.k.params
	pen := p.ContextSwitch
	if idleFor <= p.IdleThreshold || p.IdleWakeMax <= p.IdleWakeMin {
		return pen
	}
	depth := idleFor / 20
	if max := p.IdleWakeMax - p.IdleWakeMin; depth > max {
		depth = max
	}
	pen += p.IdleWakeMin
	if depth > 0 {
		pen += time.Duration(s.k.sim.Rand().Int63n(int64(depth)))
	}
	return pen
}

// release returns a core, handing it directly to the next queued task if
// any (paying only a context switch — the core never goes idle); boosted
// (freshly woken) tasks are served before batch tasks.
func (s *scheduler) release(core int) {
	for s.queued() > 0 {
		var next *Task
		if len(s.boostq) > 0 {
			next = s.boostq[0]
			s.boostq = s.boostq[1:]
		} else {
			next = s.runq[0]
			s.runq = s.runq[1:]
		}
		if next.proc.Killed() || next.finished {
			continue
		}
		next.core = core
		next.wakeQ.WakeOne(s.k.params.ContextSwitch)
		return
	}
	s.idleSince[core] = s.k.sim.Now()
	s.idle = append(s.idle, core)
}

// Runnable reports the number of tasks queued for a core.
func (k *Kernel) Runnable() int { return k.sched.queued() }

// IdleCores reports the number of idle cores.
func (k *Kernel) IdleCores() int { return len(k.sched.idle) }
