package kernel

import (
	"strings"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kmem"
	"repro/internal/sim"
)

// testParams returns a deterministic timing model with no dispatch costs,
// so tests can assert exact virtual times.
func testParams() Params {
	return Params{
		Quantum:   6 * time.Millisecond,
		FutexFIFO: true,
	}
}

func bootTest(t *testing.T, cores int) (*sim.Simulation, *Kernel) {
	t.Helper()
	s := sim.New(1)
	m := hw.New(s, hw.Opteron6376x4())
	part, err := m.NewPartition("p", 0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Boot(part, Config{Name: "primary", Params: testParams(), Cores: cores})
	if err != nil {
		t.Fatal(err)
	}
	return s, k
}

func TestBootReservesKernelMemory(t *testing.T) {
	_, k := bootTest(t, 0)
	if k.Mem().Bytes(kmem.KernelIgnored) == 0 {
		t.Error("boot reserved no unrecoverable kernel memory")
	}
	if k.Cores() != 32 {
		t.Errorf("Cores = %d, want 32", k.Cores())
	}
	if !k.Alive() {
		t.Error("fresh kernel not alive")
	}
}

func TestBootErrors(t *testing.T) {
	s := sim.New(1)
	m := hw.New(s, hw.Opteron6376x4())
	part, _ := m.NewPartition("p", 0)
	if _, err := Boot(part, Config{}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := Boot(part, Config{Name: "k", Cores: 999}); err == nil {
		t.Error("over-subscribed cores accepted")
	}
}

func TestComputeParallelism(t *testing.T) {
	s, k := bootTest(t, 4)
	var finished []sim.Time
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(tk *Task) {
			tk.Compute(100 * time.Millisecond)
			finished = append(finished, tk.Now())
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, f := range finished {
		if f != sim.Time(100*time.Millisecond) {
			t.Errorf("task finished at %v, want exactly 100ms (4 tasks on 4 cores)", f)
		}
	}
	if got := k.ComputeTime(); got != 400*time.Millisecond {
		t.Errorf("ComputeTime = %v, want 400ms", got)
	}
}

func TestComputeContention(t *testing.T) {
	s, k := bootTest(t, 2)
	var last sim.Time
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(tk *Task) {
			tk.Compute(60 * time.Millisecond)
			if tk.Now() > last {
				last = tk.Now()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 tasks x 60ms on 2 cores = 120ms total; round-robin means everyone
	// finishes near the end.
	if last != sim.Time(120*time.Millisecond) {
		t.Errorf("last task finished at %v, want 120ms", last)
	}
}

func TestComputeRoundRobinFairness(t *testing.T) {
	s, k := bootTest(t, 1)
	var first sim.Time
	k.Spawn("long", func(tk *Task) {
		tk.Compute(100 * time.Millisecond)
	})
	k.Spawn("short", func(tk *Task) {
		tk.Compute(6 * time.Millisecond)
		first = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// With a 6ms quantum the short task must interleave, not wait 100ms.
	if first > sim.Time(20*time.Millisecond) {
		t.Errorf("short task finished at %v; scheduler is not time-slicing", first)
	}
}

func TestDispatchPenaltyOnIdleCore(t *testing.T) {
	s, k := bootTest(t, 1)
	k.params.ContextSwitch = time.Microsecond
	k.params.IdleThreshold = time.Millisecond
	k.params.IdleWakeMin = 5 * time.Millisecond
	k.params.IdleWakeMax = 6 * time.Millisecond
	var done sim.Time
	k.Spawn("sleeper", func(tk *Task) {
		tk.Sleep(10 * time.Millisecond) // core idles past the threshold
		tk.Compute(time.Millisecond)
		done = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	min := sim.Time(10*time.Millisecond + time.Millisecond + 5*time.Millisecond)
	if done < min {
		t.Errorf("finished at %v, want >= %v (deep-idle wake penalty)", done, min)
	}
}

func TestNoIdlePenaltyOnBusyHandoff(t *testing.T) {
	s, k := bootTest(t, 1)
	k.params.IdleThreshold = time.Millisecond
	k.params.IdleWakeMin = 50 * time.Millisecond
	k.params.IdleWakeMax = 60 * time.Millisecond
	var done sim.Time
	// Two tasks keep the core busy: hand-offs must not pay idle penalty.
	for i := 0; i < 2; i++ {
		k.Spawn("w", func(tk *Task) {
			tk.Compute(30 * time.Millisecond)
			done = tk.Now()
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if done != sim.Time(60*time.Millisecond) {
		t.Errorf("finished at %v, want exactly 60ms (no idle penalty on handoff)", done)
	}
}

func TestFutexFIFOOrder(t *testing.T) {
	s, k := bootTest(t, 8)
	key := k.NewFutexKey()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("waiter", func(tk *Task) {
			tk.Sleep(time.Duration(i) * time.Millisecond) // deterministic arrival order
			tk.FutexWait(key, -1)
			order = append(order, i)
		})
	}
	k.Spawn("waker", func(tk *Task) {
		tk.Sleep(10 * time.Millisecond)
		if n := tk.FutexWake(key, 100); n != 5 {
			t.Errorf("FutexWake woke %d, want 5", n)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("futex wake order %v, want FIFO", order)
		}
	}
}

func TestFutexWaitTimeout(t *testing.T) {
	s, k := bootTest(t, 1)
	var woken bool
	k.Spawn("w", func(tk *Task) {
		woken = tk.FutexWait(k.NewFutexKey(), 2*time.Millisecond)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken {
		t.Error("FutexWait reported woken on timeout")
	}
}

func TestFutexWakeLimited(t *testing.T) {
	s, k := bootTest(t, 8)
	key := k.NewFutexKey()
	woken := 0
	for i := 0; i < 4; i++ {
		k.Spawn("w", func(tk *Task) {
			if tk.FutexWait(key, 20*time.Millisecond) {
				woken++
			}
		})
	}
	k.Spawn("waker", func(tk *Task) {
		tk.Sleep(5 * time.Millisecond)
		if n := tk.FutexWake(key, 2); n != 2 {
			t.Errorf("woke %d, want 2", n)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 2 {
		t.Errorf("%d waiters woken, want 2", woken)
	}
}

func TestPanicKillsTasks(t *testing.T) {
	s, k := bootTest(t, 4)
	survived := false
	k.Spawn("w", func(tk *Task) {
		tk.Sleep(time.Hour)
		survived = true
	})
	var reasons []PanicReason
	k.OnPanic(func(r PanicReason) { reasons = append(reasons, r) })
	s.Schedule(time.Millisecond, func() { k.Panic("test", nil) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if survived {
		t.Error("task survived kernel panic")
	}
	if k.Alive() {
		t.Error("kernel alive after panic")
	}
	if len(reasons) != 1 || reasons[0].Cause != "test" {
		t.Errorf("panic callbacks = %v", reasons)
	}
	// Double panic is a no-op.
	k.Panic("again", nil)
	if len(reasons) != 1 {
		t.Error("second Panic invoked callbacks")
	}
}

func TestHandleFaultCoreFailStop(t *testing.T) {
	_, k := bootTest(t, 4)
	out := k.HandleFault(hw.Fault{Kind: hw.CoreFailStop, Node: 0, Core: 1})
	if out != kmem.OutcomeKernelPanic {
		t.Errorf("outcome = %v, want kernel panic", out)
	}
	if k.Alive() {
		t.Error("kernel alive after core fail-stop")
	}
	if r := k.PanicReason(); r == nil || !strings.Contains(r.Cause, "core-fail-stop") {
		t.Errorf("panic reason = %+v", k.PanicReason())
	}
}

func TestHandleFaultOtherPartitionIgnored(t *testing.T) {
	_, k := bootTest(t, 4) // owns nodes 0-3
	out := k.HandleFault(hw.Fault{Kind: hw.CoreFailStop, Node: 7})
	if out != kmem.OutcomeNone || !k.Alive() {
		t.Error("fault on foreign partition affected kernel")
	}
}

func TestHandleFaultMemoryOutcomes(t *testing.T) {
	_, k := bootTest(t, 4)
	// Lay out user memory after the boot reservation so we can aim faults.
	if err := k.Mem().Alloc(kmem.User, 1<<30); err != nil {
		t.Fatal(err)
	}
	var userHits []int64
	k.OnUserHit(func(addr int64) { userHits = append(userHits, addr) })

	// Address 0 falls in the boot reservation (KernelIgnored): corrected
	// errors are absorbed, uncorrected ones panic the kernel.
	if out := k.HandleFault(hw.Fault{Kind: hw.MemCorrected, Node: 0, Addr: 0}); out != kmem.OutcomeNone {
		t.Errorf("corrected error outcome = %v, want none", out)
	}
	if !k.Alive() {
		t.Fatal("corrected error killed kernel")
	}
	// An address just past the kernel reservation hits user memory.
	userAddr := k.Mem().Bytes(kmem.KernelIgnored) + 4096
	if out := k.HandleFault(hw.Fault{Kind: hw.MemUncorrected, Node: 0, Addr: userAddr}); out != kmem.OutcomeUserKill {
		t.Errorf("user-memory DUE outcome = %v, want user-kill", out)
	}
	if len(userHits) != 1 {
		t.Errorf("user-hit callbacks = %d, want 1", len(userHits))
	}
	if !k.Alive() {
		t.Fatal("user-memory fault killed kernel")
	}
	if out := k.HandleFault(hw.Fault{Kind: hw.MemUncorrected, Node: 0, Addr: 0}); out != kmem.OutcomeKernelPanic {
		t.Errorf("kernel-memory DUE outcome = %v, want panic", out)
	}
	if k.Alive() {
		t.Error("kernel survived DUE in unrecoverable memory")
	}
}

func TestDeviceExclusiveOwnership(t *testing.T) {
	s := sim.New(1)
	m := hw.New(s, hw.Opteron6376x4())
	p0, _ := m.NewPartition("a", 0, 1, 2, 3)
	p1, _ := m.NewPartition("b", 4, 5, 6, 7)
	k0, err := Boot(p0, Config{Name: "primary", Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	k1, err := Boot(p1, Config{Name: "secondary", Params: testParams()})
	if err != nil {
		t.Fatal(err)
	}
	nic := NewDevice("eth0", 5*time.Second)
	var loadedAt sim.Time
	k0.Spawn("boot", func(tk *Task) {
		if err := tk.LoadDriver(nic); err != nil {
			t.Errorf("LoadDriver: %v", err)
		}
		loadedAt = tk.Now()
	})
	k1.Spawn("stealer", func(tk *Task) {
		tk.Sleep(10 * time.Second)
		if err := tk.LoadDriver(nic); err == nil {
			t.Error("live kernel's device was stolen")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if loadedAt != sim.Time(5*time.Second) {
		t.Errorf("driver loaded at %v, want 5s", loadedAt)
	}
	if nic.Owner() != k0 || !nic.Loaded() {
		t.Error("ownership/loaded state wrong")
	}

	// After the owner dies, the peer can take over; reload takes 5s.
	k0.Panic("fault", nil)
	var tookOver sim.Time
	loads := 0
	nic.OnLoad(func(*Kernel) { loads++ })
	k1.Spawn("failover", func(tk *Task) {
		if err := tk.LoadDriver(nic); err != nil {
			t.Errorf("takeover LoadDriver: %v", err)
		}
		tookOver = tk.Now()
	})
	start := s.Now()
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if got := tookOver.Sub(start); got != 5*time.Second {
		t.Errorf("takeover took %v, want 5s", got)
	}
	if nic.Owner() != k1 || !nic.Loaded() || loads != 1 {
		t.Error("takeover state wrong")
	}
}

func TestJoin(t *testing.T) {
	s, k := bootTest(t, 4)
	var joined sim.Time
	w := k.Spawn("worker", func(tk *Task) {
		tk.Sleep(25 * time.Millisecond)
	})
	k.Spawn("main", func(tk *Task) {
		w.Join(tk)
		joined = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if joined != sim.Time(25*time.Millisecond) {
		t.Errorf("joined at %v, want 25ms", joined)
	}
}

func TestSyscallCost(t *testing.T) {
	s, k := bootTest(t, 1)
	k.params.SyscallCost = time.Microsecond
	var end sim.Time
	k.Spawn("w", func(tk *Task) {
		for i := 0; i < 10; i++ {
			tk.Syscall()
		}
		end = tk.Now()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if end != sim.Time(10*time.Microsecond) {
		t.Errorf("10 syscalls took %v, want 10us", end)
	}
}
