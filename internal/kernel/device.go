package kernel

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Device is an I/O device with exclusive kernel ownership, per the paper's
// first design principle: hardware is strictly divided among replicas and
// each device is owned by exactly one kernel (§3). Failover revokes the
// dead primary's ownership and re-loads the driver on the secondary — for
// the NIC this reload dominates the ~5 s failover time (§4.4).
type Device struct {
	name     string
	loadTime time.Duration
	owner    *Kernel
	loaded   bool
	onLoad   []func(*Kernel)
}

// NewDevice creates a device whose driver takes loadTime to initialize.
func NewDevice(name string, loadTime time.Duration) *Device {
	return &Device{name: name, loadTime: loadTime}
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// LoadTime reports how long the device's driver takes to load.
func (d *Device) LoadTime() time.Duration { return d.loadTime }

// Owner returns the kernel that owns the device, or nil.
func (d *Device) Owner() *Kernel { return d.owner }

// Loaded reports whether the owner's driver is operational.
func (d *Device) Loaded() bool { return d.loaded }

// OnLoad registers a callback invoked (non-blocking) each time a driver
// finishes loading on a kernel; the network layer uses it to (re)attach the
// device to the new owner's stack.
func (d *Device) OnLoad(fn func(*Kernel)) { d.onLoad = append(d.onLoad, fn) }

// Preload marks the device as owned and operational without spending load
// time — boot-time driver initialization that predates the measurement
// window. Failover reloads still pay the full load time.
func (d *Device) Preload(k *Kernel) {
	d.owner = k
	d.loaded = true
	for _, fn := range d.onLoad {
		fn(k)
	}
}

// LoadDriver acquires ownership of the device for the calling task's kernel
// and spends the driver load time. It fails if a *live* kernel other than
// the caller's owns the device: exclusive ownership can only be revoked
// from a dead replica (§3.7).
func (t *Task) LoadDriver(d *Device) error {
	k := t.kernel
	if d.owner != nil && d.owner != k && d.owner.Alive() {
		return fmt.Errorf("kernel %q: device %q owned by live kernel %q", k.name, d.name, d.owner.name)
	}
	if d.owner != nil && d.owner != k {
		// Ownership transfer from a dead replica: the old driver state is
		// gone; the device is down until the reload completes.
		d.loaded = false
	}
	d.owner = k
	k.sc.EmitNote(obs.DriverLoad, 0, 0, int64(d.loadTime), d.name)
	t.Sleep(d.loadTime)
	if !k.Alive() {
		return fmt.Errorf("kernel %q died while loading driver for %q", k.name, d.name)
	}
	d.loaded = true
	k.sc.EmitNote(obs.DriverUp, 0, 0, 0, d.name)
	for _, fn := range d.onLoad {
		fn(k)
	}
	return nil
}

// FailDevice marks the device non-operational without changing ownership —
// what the rest of the system observes between the owner's death and the
// completed reload on the new owner.
func (d *Device) FailDevice() { d.loaded = false }
