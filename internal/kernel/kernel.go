// Package kernel models one operating-system kernel booted on a hardware
// partition, as in Popcorn/FT-Linux's multikernel design (§3): each kernel
// exclusively owns the cores, memory, and devices of its partition and runs
// completely independently of its peers.
//
// The model covers the kernel mechanisms the paper's replication protocol
// depends on:
//
//   - per-core CPU scheduling with virtual compute time and an idle-wake
//     (wake_up_process) latency that can reach tens of milliseconds — the
//     bottleneck identified in §4.1;
//   - a futex with the paper's FIFO-queue modification (§3.3), so lock
//     hand-off order is deterministic;
//   - exclusive device ownership and driver loading with realistic load
//     times (the 5 s NIC reload that dominates failover, §4.4);
//   - physical-memory accounting per page class and machine-check fault
//     handling (panic / delayed / user-kill outcomes, §2.3).
package kernel

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/kmem"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Params holds the kernel's timing model.
type Params struct {
	// Quantum is the scheduler timeslice: a computing task yields its core
	// to contenders at this granularity.
	Quantum time.Duration
	// ContextSwitch is the cost of dispatching a task onto a core.
	ContextSwitch time.Duration
	// WakeBase is the baseline cost of wake_up_process for a runnable
	// target on a busy system.
	WakeBase time.Duration
	// IdleThreshold is how long a core must have been idle before waking a
	// task onto it pays the deep-idle penalty.
	IdleThreshold time.Duration
	// IdleWakeMin/IdleWakeMax bound the deep-idle wake penalty; the paper
	// observed wake_up_process taking up to tens of milliseconds when the
	// target processor is idle (§4.1).
	IdleWakeMin time.Duration
	IdleWakeMax time.Duration
	// SyscallCost is the base cost of crossing the syscall boundary.
	SyscallCost time.Duration
	// WakePreemptProb is the probability that a freshly woken task preempts
	// a running batch timeslice instead of waiting for one to end — the
	// model of CFS's vruntime-gated wakeup preemption. 1 = always preempt.
	WakePreemptProb float64
	// FutexFIFO selects the paper's FIFO futex wake order; disabling it
	// restores stock unordered wake (used by the determinism ablation).
	FutexFIFO bool
}

// DefaultParams returns the timing model calibrated for the paper's
// evaluation machine.
func DefaultParams() Params {
	return Params{
		Quantum:         6 * time.Millisecond,
		ContextSwitch:   2 * time.Microsecond,
		WakeBase:        3 * time.Microsecond,
		IdleThreshold:   time.Millisecond,
		IdleWakeMin:     50 * time.Microsecond,
		IdleWakeMax:     15 * time.Millisecond,
		SyscallCost:     400 * time.Nanosecond,
		WakePreemptProb: 0.05,
		FutexFIFO:       true,
	}
}

// PanicReason describes why a kernel died.
type PanicReason struct {
	Time  sim.Time
	Cause string
	Fault *hw.Fault // nil if not fault-induced
}

// Kernel is one booted OS instance.
type Kernel struct {
	name   string
	sim    *sim.Simulation
	part   *hw.Partition
	group  *sim.Group
	params Params
	mem    *kmem.Accounting
	sched  *scheduler
	futex  *futexTable

	alive     bool
	panicked  *PanicReason
	onPanic   []func(PanicReason)
	onUserHit []func(addr int64)
	sc        *obs.Scope

	nextTID   int
	computeNS int64 // total core-time consumed, for utilization accounting
}

// Config configures Boot.
type Config struct {
	// Name identifies the kernel (e.g. "primary", "secondary").
	Name string
	// Params is the timing model; zero value means DefaultParams.
	Params Params
	// Cores restricts the kernel to the first N cores of its partition
	// (0 = all). The mixed-workload experiment (§4.3) boots a single-core
	// secondary on a full NUMA node this way.
	Cores int
	// BaseKernelMem is memory permanently allocated at boot as
	// unrecoverable kernel memory (text, static data, struct page array).
	// Zero means a model default of 1.5% of RAM plus 768 MB.
	BaseKernelMem int64
}

// Boot starts a kernel on a hardware partition.
func Boot(part *hw.Partition, cfg Config) (*Kernel, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("kernel: empty name")
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	ncores := len(part.Cores())
	if cfg.Cores > 0 {
		if cfg.Cores > ncores {
			return nil, fmt.Errorf("kernel %q: %d cores requested, partition has %d", cfg.Name, cfg.Cores, ncores)
		}
		ncores = cfg.Cores
	}
	s := part.Machine().Sim()
	k := &Kernel{
		name:   cfg.Name,
		sim:    s,
		part:   part,
		group:  s.NewGroup(cfg.Name),
		params: cfg.Params,
		mem:    kmem.NewAccounting(part.Mem(), part.Machine().Profile().PageSize),
		alive:  true,
	}
	k.sched = newScheduler(k, ncores)
	k.futex = newFutexTable(k)
	base := cfg.BaseKernelMem
	if base == 0 {
		base = part.Mem()*15/1000 + 768<<20
	}
	if err := k.mem.Alloc(kmem.KernelIgnored, base); err != nil {
		return nil, fmt.Errorf("kernel %q: boot reservation: %w", cfg.Name, err)
	}
	return k, nil
}

// Name returns the kernel's name.
func (k *Kernel) Name() string { return k.name }

// Sim returns the simulation the kernel runs in.
func (k *Kernel) Sim() *sim.Simulation { return k.sim }

// Partition returns the hardware partition the kernel owns.
func (k *Kernel) Partition() *hw.Partition { return k.part }

// Params returns the kernel's timing model.
func (k *Kernel) Params() Params { return k.params }

// Mem returns the kernel's physical-memory accounting.
func (k *Kernel) Mem() *kmem.Accounting { return k.mem }

// Cores reports the number of cores the kernel schedules on.
func (k *Kernel) Cores() int { return k.sched.ncores }

// Alive reports whether the kernel is still running.
func (k *Kernel) Alive() bool { return k.alive }

// PanicReason returns why the kernel died, or nil if it is alive.
func (k *Kernel) PanicReason() *PanicReason { return k.panicked }

// Now returns the current virtual time — the kernel's gettimeofday.
func (k *Kernel) Now() sim.Time { return k.sim.Now() }

// ComputeTime reports the total core-nanoseconds consumed by the kernel's
// tasks, for utilization accounting.
func (k *Kernel) ComputeTime() time.Duration { return time.Duration(k.computeNS) }

// OnPanic registers a callback invoked when the kernel dies. Callbacks run
// in scheduler context and must not block.
func (k *Kernel) OnPanic(fn func(PanicReason)) { k.onPanic = append(k.onPanic, fn) }

// Instrument attaches an event scope to the kernel: panics and driver
// (re)loads — the two kernel-side landmarks of the failover timeline —
// are traced. A nil scope disables.
func (k *Kernel) Instrument(sc *obs.Scope) { k.sc = sc }

// OnUserHit registers a callback invoked when a memory fault strikes a user
// page (the application is killed, §2.3). Callbacks must not block.
func (k *Kernel) OnUserHit(fn func(addr int64)) { k.onUserHit = append(k.onUserHit, fn) }

// Panic kills the kernel: every task dies immediately, as when a hardware
// fault halts the partition or a peer replica delivers a forcible IPI halt
// (§3.6). Panicking a dead kernel is a no-op.
func (k *Kernel) Panic(cause string, fault *hw.Fault) {
	if !k.alive {
		return
	}
	k.alive = false
	k.sc.EmitNote(obs.KernelPanic, 0, 0, 0, cause)
	k.panicked = &PanicReason{Time: k.sim.Now(), Cause: cause, Fault: fault}
	k.group.Kill()
	for _, fn := range k.onPanic {
		fn(*k.panicked)
	}
}

// HandleFault processes a machine-check report for hardware this kernel
// owns, returning the outcome. Faults on other partitions are ignored
// (their error-reporting banks belong to the other kernel).
func (k *Kernel) HandleFault(f hw.Fault) kmem.Outcome {
	if !k.alive || !k.part.Owns(f.Node) {
		return kmem.OutcomeNone
	}
	switch f.Kind {
	case hw.CoreFailStop, hw.BusError:
		// A core fail-stop takes down the whole kernel (§2.3, Shalev et
		// al.); we treat a detected bus error the same way.
		k.Panic(f.Kind.String(), &f)
		return kmem.OutcomeKernelPanic
	case hw.MemUncorrected, hw.MemCorrected:
		return k.handleMemFault(f)
	case hw.CoherencyLoss:
		k.Panic(f.Kind.String(), &f)
		return kmem.OutcomeKernelPanic
	default:
		return kmem.OutcomeNone
	}
}

func (k *Kernel) handleMemFault(f hw.Fault) kmem.Outcome {
	// Convert the machine-wide address into a kernel-local offset by
	// position within the partition's nodes.
	perNode := k.part.Machine().Profile().MemPerNode
	local := int64(-1)
	for i, n := range k.part.Nodes() {
		lo := int64(n.ID) * perNode
		if f.Addr >= lo && f.Addr < lo+perNode {
			local = int64(i)*perNode + (f.Addr - lo)
			break
		}
	}
	if local < 0 {
		return kmem.OutcomeNone
	}
	class, err := k.mem.ClassifyAddr(local)
	if err != nil {
		return kmem.OutcomeNone
	}
	out := kmem.OutcomeOf(class, f.Kind == hw.MemCorrected)
	switch out {
	case kmem.OutcomeKernelPanic:
		k.Panic(fmt.Sprintf("uncorrected memory error in %v kernel memory", class), &f)
	case kmem.OutcomeUserKill:
		for _, fn := range k.onUserHit {
			fn(f.Addr)
		}
	}
	return out
}
