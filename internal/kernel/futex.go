package kernel

import (
	"time"

	"repro/internal/sim"
)

// futexTable implements the kernel futex with the paper's modification:
// the wait queue is strictly FIFO, so the order in which threads acquire a
// contended lock is deterministic and can be replayed on the secondary
// replica (§3.3). Setting Params.FutexFIFO to false restores the stock
// behaviour (an arbitrary waiter is woken), which breaks replay determinism
// — the ablation benchmarks quantify this.
type futexTable struct {
	k       *Kernel
	queues  map[uint64]*sim.WaitQueue
	nextKey uint64
}

func newFutexTable(k *Kernel) *futexTable {
	return &futexTable{k: k, queues: make(map[uint64]*sim.WaitQueue)}
}

// NewFutexKey allocates a fresh futex key — the analogue of the userspace
// address a futex word lives at.
func (k *Kernel) NewFutexKey() uint64 {
	k.futex.nextKey++
	return k.futex.nextKey
}

func (f *futexTable) queue(key uint64) *sim.WaitQueue {
	q, ok := f.queues[key]
	if !ok {
		q = sim.NewWaitQueue(f.k.sim)
		f.queues[key] = q
	}
	return q
}

// FutexWait parks the task on the futex key. A negative timeout waits
// forever. It reports true when woken by FutexWake and false on timeout.
func (t *Task) FutexWait(key uint64, timeout time.Duration) bool {
	q := t.kernel.futex.queue(key)
	if timeout < 0 {
		q.Wait(t.proc)
		return true
	}
	return q.WaitTimeout(t.proc, timeout)
}

// FutexWake wakes up to n tasks parked on key and reports how many were
// woken. Wake order is FIFO under the paper's modification; otherwise a
// deterministic-random waiter is chosen, modelling stock futex's
// unspecified order. Each wake pays the kernel's base wake cost.
func (t *Task) FutexWake(key uint64, n int) int {
	return t.kernel.FutexWakeRaw(key, n)
}

// FutexWakeRaw is FutexWake callable from scheduler context (e.g. a timer
// event) rather than from a task.
func (k *Kernel) FutexWakeRaw(key uint64, n int) int {
	q := k.futex.queue(key)
	woken := 0
	for woken < n && q.Len() > 0 {
		if k.params.FutexFIFO {
			q.WakeOne(k.params.WakeBase)
		} else {
			q.WakeIndex(k.sim.Rand().Intn(q.Len()), k.params.WakeBase)
		}
		woken++
	}
	return woken
}

// FutexWaiters reports how many tasks are parked on key.
func (k *Kernel) FutexWaiters(key uint64) int {
	if q, ok := k.futex.queues[key]; ok {
		return q.Len()
	}
	return 0
}
