package chaos_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/hw"
	"repro/internal/shm"
	"repro/internal/sim"
)

func TestParseKills(t *testing.T) {
	s, err := chaos.Parse("kill primary @2s; kill backup @1500ms coherency")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Kills) != 2 || len(s.Rings) != 0 {
		t.Fatalf("parsed %d kills, %d ring faults", len(s.Kills), len(s.Rings))
	}
	k := s.Kills[0]
	if k.Target != chaos.TargetPrimary || k.At != 2*time.Second || k.Fault != hw.CoreFailStop {
		t.Errorf("kill[0] = %+v, want primary @2s core", k)
	}
	k = s.Kills[1]
	if k.Target != chaos.TargetBackup || k.At != 1500*time.Millisecond || k.Fault != hw.CoherencyLoss {
		t.Errorf("kill[1] = %+v, want backup @1.5s coherency", k)
	}
}

func TestParseRingFaults(t *testing.T) {
	s, err := chaos.Parse("delay log 200us 0s..5s; dup acks x2 1s..4s; drop hb p0.5 1s..2s; drop hb 1s..1200ms")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Rings) != 4 {
		t.Fatalf("parsed %d ring faults, want 4", len(s.Rings))
	}
	r := s.Rings[0]
	if r.Op != chaos.OpDelay || r.Class != chaos.ClassLog || r.Delay != 200*time.Microsecond ||
		r.From != 0 || r.To != 5*time.Second {
		t.Errorf("delay rule = %+v", r)
	}
	if r := s.Rings[1]; r.Op != chaos.OpDup || r.Class != chaos.ClassAcks || r.Count != 2 {
		t.Errorf("dup rule = %+v", r)
	}
	if r := s.Rings[2]; r.Op != chaos.OpDrop || r.Class != chaos.ClassHB || r.Prob != 0.5 {
		t.Errorf("drop rule = %+v", r)
	}
	if r := s.Rings[3]; r.Prob != 1 {
		t.Errorf("drop without p<prob> defaulted to %v, want 1", r.Prob)
	}
}

// TestParseRejectsFaultMatrix pins the invariant-protecting matrix: drop
// and dup are rejected on channels where they would corrupt receipt
// watermarks or violate the shared-memory loss model.
func TestParseRejectsFaultMatrix(t *testing.T) {
	invalid := []string{
		"drop log 0s..1s",
		"drop acks 0s..1s",
		"drop sync 0s..1s",
		"drop bulk 0s..1s",
		"dup log x2 0s..1s",
		"dup sync x2 0s..1s",
		"dup bulk x2 0s..1s",
	}
	for _, spec := range invalid {
		if _, err := chaos.Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invariant-breaking fault", spec)
		} else if !strings.Contains(err.Error(), "invariant") {
			t.Errorf("Parse(%q) error %q does not explain the matrix", spec, err)
		}
	}
	malformed := []string{
		"kill primary 2s",
		"kill nobody @2s",
		"kill primary @2s gamma",
		"frob log 0s..1s",
		"delay log 0s..1s",
		"delay nowhere 200us 0s..1s",
		"dup acks x0 0s..1s",
		"drop hb p1.5 0s..1s",
		"drop hb p0 0s..1s",
		"delay log 200us 5s..1s",
		"delay log 200us 1s",
	}
	for _, spec := range malformed {
		if _, err := chaos.Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed event", spec)
		}
	}
}

// TestClassOf checks that generation-suffixed rejoin rings inherit their
// channel class by prefix.
func TestClassOf(t *testing.T) {
	cases := map[string]string{
		"ftns.log":       chaos.ClassLog,
		"ftns.log.g2":    chaos.ClassLog,
		"ftns.acks":      chaos.ClassAcks,
		"ftns.acks.g3":   chaos.ClassAcks,
		"tcprep.sync.g1": chaos.ClassSync,
		"hb.s2b":         chaos.ClassHB,
		"hb.b2s.g7":      chaos.ClassHB,
		"rejoin.bulk.g1": chaos.ClassBulk,
		"mystery.ring":   "",
	}
	for name, want := range cases {
		if got := chaos.ClassOf(name); got != want {
			t.Errorf("ClassOf(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestPresetsParse(t *testing.T) {
	for name, spec := range chaos.Presets {
		s, err := chaos.Parse(spec)
		if err != nil {
			t.Errorf("preset %q: %v", name, err)
			continue
		}
		if s.Empty() {
			t.Errorf("preset %q parsed empty", name)
		}
		if s.String() != spec {
			t.Errorf("preset %q round-trip = %q", name, s.String())
		}
	}
	if s := chaos.MustParse(""); !s.Empty() {
		t.Error("empty spec should produce an empty schedule")
	}
}

// ringEnv builds a one-machine sim with a ring fabric for hook tests.
func ringEnv(t *testing.T, spec string) (*sim.Simulation, *shm.Fabric, *chaos.Injector) {
	t.Helper()
	s := sim.New(1)
	m := hw.New(s, hw.Opteron6376x4())
	inj := chaos.NewInjector(chaos.MustParse(spec), chaos.Env{
		Sim:     s,
		Machine: m,
		Victim:  func(chaos.Target) (int, bool) { return 0, false },
	}, 99)
	return s, shm.NewFabric(s, time.Microsecond), inj
}

func TestInjectorDupDelivers(t *testing.T) {
	s, f, inj := ringEnv(t, "dup acks x2 0s..1s")
	r := f.NewRing("ftns.acks", 0, 1<<20)
	inj.ArmRing(r)
	s.Spawn("sender", func(p *sim.Proc) {
		r.Send(p, shm.Message{Kind: 1, Payload: 7, Size: 8})
	})
	s.Spawn("receiver", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if m := r.Recv(p); m.Payload.(int) != 7 {
				t.Errorf("copy %d payload = %v", i, m.Payload)
			}
		}
	})
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if inj.Injected != 1 {
		t.Errorf("Injected = %d, want 1 (one faulted transfer)", inj.Injected)
	}
}

func TestInjectorDropWindow(t *testing.T) {
	s, f, inj := ringEnv(t, "drop hb 0s..1s")
	r := f.NewRing("hb.s2b", 0, 1<<20)
	inj.ArmRing(r)
	var got []int
	s.Spawn("sender", func(p *sim.Proc) {
		r.Send(p, shm.Message{Kind: 1, Payload: 1, Size: 8}) // in window: dropped
		p.Sleep(2 * time.Second)
		r.Send(p, shm.Message{Kind: 1, Payload: 2, Size: 8}) // after window
	})
	s.Spawn("receiver", func(p *sim.Proc) {
		got = append(got, r.Recv(p).Payload.(int))
	})
	if err := s.RunUntil(sim.Time(5 * time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("received %v, want only the post-window beat", got)
	}
}

// TestInjectorDelayKeepsFIFO checks both the added latency and the FIFO
// clamp: a message sent after the delay window must not overtake a delayed
// one still in flight.
func TestInjectorDelayKeepsFIFO(t *testing.T) {
	s, f, inj := ringEnv(t, "delay log 200us 0s..10us")
	r := f.NewRing("ftns.log.g1", 0, 1<<20)
	inj.ArmRing(r)
	var payloads []int
	var times []sim.Time
	s.Spawn("sender", func(p *sim.Proc) {
		r.Send(p, shm.Message{Kind: 1, Payload: 1, Size: 8}) // t=0, +200us chaos delay
		p.Sleep(50 * time.Microsecond)                       // outside the window
		r.Send(p, shm.Message{Kind: 1, Payload: 2, Size: 8})
	})
	s.Spawn("receiver", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			payloads = append(payloads, r.Recv(p).Payload.(int))
			times = append(times, p.Now())
		}
	})
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(payloads) != 2 || payloads[0] != 1 || payloads[1] != 2 {
		t.Fatalf("delivery order %v, want FIFO [1 2]", payloads)
	}
	if times[0] != sim.Time(201*time.Microsecond) {
		t.Errorf("delayed message arrived at %v, want 201us", times[0])
	}
	if times[1] < times[0] {
		t.Errorf("undelayed message overtook the delayed one (%v < %v)", times[1], times[0])
	}
}

// TestInjectorKillSkipsDeadVictim: a kill whose role has no live holder is
// skipped, like a fault striking already-dead hardware.
func TestInjectorKillSkipsDeadVictim(t *testing.T) {
	s := sim.New(1)
	m := hw.New(s, hw.Opteron6376x4())
	faults := 0
	m.OnFault(func(hw.Fault) { faults++ })
	alive := true
	inj := chaos.NewInjector(chaos.MustParse("kill primary @1ms; kill primary @2ms"), chaos.Env{
		Sim:     s,
		Machine: m,
		Victim: func(chaos.Target) (int, bool) {
			if alive {
				alive = false
				return 3, true
			}
			return 0, false
		},
	}, 1)
	inj.Start()
	if err := s.RunUntil(sim.Time(10 * time.Millisecond)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if inj.Kills != 1 {
		t.Errorf("Kills = %d, want 1 (second victim was already dead)", inj.Kills)
	}
	if faults != 1 {
		t.Errorf("machine saw %d faults, want 1", faults)
	}
}

// TestParseBackupSlotKills pins the slot-addressed kill targets the
// N-way replica set adds: `backup<k>` kills the backup holding slot k.
func TestParseBackupSlotKills(t *testing.T) {
	s, err := chaos.Parse("kill backup2 @1s; kill backup1 @2s mem")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(s.Kills) != 2 {
		t.Fatalf("parsed %d kills, want 2", len(s.Kills))
	}
	if k := s.Kills[0]; k.Target != chaos.TargetBackupSlot(2) || k.At != time.Second {
		t.Errorf("kill[0] = %+v, want backup2 @1s", k)
	}
	if k := s.Kills[1]; k.Target != chaos.TargetBackupSlot(1) || k.Fault != hw.MemUncorrected {
		t.Errorf("kill[1] = %+v, want backup1 @2s mem", k)
	}
	if slot, any := chaos.TargetBackup.BackupSlot(); !any || slot != 0 {
		t.Errorf("TargetBackup.BackupSlot() = %d,%v, want any", slot, any)
	}
	if slot, any := chaos.TargetBackupSlot(3).BackupSlot(); any || slot != 3 {
		t.Errorf("TargetBackupSlot(3).BackupSlot() = %d,%v, want slot 3", slot, any)
	}
	if got := chaos.TargetBackupSlot(2).String(); got != "backup2" {
		t.Errorf("String = %q, want backup2", got)
	}
	for _, bad := range []string{"kill backup0 @1s", "kill backupx @1s", "kill backup-1 @1s"} {
		if _, err := chaos.Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted, want error", bad)
		}
	}
}
