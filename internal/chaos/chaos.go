// Package chaos drives deterministic fault-injection schedules against a
// replicated deployment: kernel kills through the hw machine-check path
// and shared-memory transfer faults (drop, duplicate, delay) through the
// messaging layer's chaos hook. A schedule is parsed from a compact spec
// string and replayed with a dedicated seeded RNG, so a run is a pure
// function of (workload seed, schedule, chaos seed) — the same property
// the record/replay engine itself is built on, which is what lets the
// rejoin tests assert byte-identical application output under injection.
//
// The fault matrix is validated at parse time, because the messaging
// faults must stay within what real hardware can produce without breaking
// the invariants the output-commit protocol relies on:
//
//   - delay: any channel. Delivery stays FIFO (the ring clamps delivery
//     times monotonically), modeling interconnect congestion.
//   - dup: ack and heart-beat channels only. Both are idempotent (acks
//     are cumulative maxima, beats are timestamps). Duplicating the det
//     log or the TCP sync stream would corrupt receipt watermarks: the
//     primary counts raw ring deliveries for output commit, and a
//     duplicated tuple would release output the backup never processed.
//   - drop: heart-beat channels only, modeling a stalled sender; enough
//     consecutive drops cause a spurious IPI halt and failover, which the
//     system must survive. Dropping log/ack/sync/bulk transfers would
//     violate the shared-memory model (§3.5): those losses only occur
//     with coherency faults, injected as kills with the coherency kind.
package chaos

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/hw"
	"repro/internal/obs"
	"repro/internal/shm"
	"repro/internal/sim"
)

// Target selects a kill victim by current role, not by partition: after a
// failover and rejoin the "primary" is whichever side records now.
type Target int

const (
	// TargetPrimary is the currently recording side.
	TargetPrimary Target = iota + 1
	// TargetBackup is any currently replaying (or resyncing) side — the
	// first live backup in slot order.
	TargetBackup
)

// TargetBackupSlot addresses the backup on a specific replica-set slot
// (k >= 1); the kill is skipped when no live backup holds that slot.
// Spelled `backup<k>` in schedule specs.
func TargetBackupSlot(k int) Target { return TargetBackup + Target(k) }

// BackupSlot decomposes a backup target: any=true for the plain
// TargetBackup (first live backup wins), otherwise the wanted slot.
func (t Target) BackupSlot() (slot int, any bool) {
	if t == TargetBackup {
		return 0, true
	}
	return int(t - TargetBackup), false
}

func (t Target) String() string {
	if t == TargetPrimary {
		return "primary"
	}
	if slot, any := t.BackupSlot(); !any {
		return fmt.Sprintf("backup%d", slot)
	}
	return "backup"
}

// Op is a shared-memory transfer fault operation.
type Op int

const (
	// OpDrop discards the transfer (the receiver never sees it).
	OpDrop Op = iota + 1
	// OpDup delivers extra copies of the transfer.
	OpDup
	// OpDelay adds delivery latency to the transfer.
	OpDelay
)

var opNames = map[Op]string{OpDrop: "drop", OpDup: "dup", OpDelay: "delay"}

func (o Op) String() string { return opNames[o] }

// Ring channel classes, matched by ring-name prefix so generation-suffixed
// rings created at rejoin inherit their channel's faults.
const (
	ClassLog  = "log"  // ftns.log*: deterministic-section tuples
	ClassAcks = "acks" // ftns.acks*: receipt acknowledgements
	ClassSync = "sync" // tcprep.sync*: logical TCP deltas
	ClassHB   = "hb"   // hb.*: heart-beats
	ClassBulk = "bulk" // rejoin.bulk*: checkpoint transfer
)

// ClassOf maps a ring name to its channel class ("" if unrecognized).
func ClassOf(name string) string {
	switch {
	case strings.HasPrefix(name, "ftns.log"):
		return ClassLog
	case strings.HasPrefix(name, "ftns.acks"):
		return ClassAcks
	case strings.HasPrefix(name, "tcprep.sync"):
		return ClassSync
	case strings.HasPrefix(name, "hb."):
		return ClassHB
	case strings.HasPrefix(name, "rejoin.bulk"):
		return ClassBulk
	}
	return ""
}

// Kill is one scheduled kernel kill, delivered as a hardware fault.
type Kill struct {
	At     time.Duration
	Target Target
	Fault  hw.FaultKind
}

// RingFault is one windowed transfer-fault rule on a channel class.
type RingFault struct {
	Op       Op
	Class    string
	From, To time.Duration // active window [From, To)
	Delay    time.Duration // OpDelay: added latency
	Count    int           // OpDup: extra copies
	Prob     float64       // OpDrop: per-transfer probability
	spec     string        // original event text, for traces
}

// Schedule is a parsed chaos schedule.
type Schedule struct {
	Kills []Kill
	Rings []RingFault
	src   string
}

// String returns the original spec the schedule was parsed from.
func (s Schedule) String() string { return s.src }

// Empty reports whether the schedule injects nothing.
func (s Schedule) Empty() bool { return len(s.Kills) == 0 && len(s.Rings) == 0 }

// Parse reads a chaos schedule spec: semicolon-separated events.
//
//	kill primary @2s              fail-stop the recording side at t=2s
//	kill backup @1s coherency     kill kinds: core, mem, bus, coherency
//	delay log 200us 0s..5s        +200µs per log transfer in [0s,5s)
//	dup acks x2 1s..4s            2 extra copies per ack transfer
//	drop hb p0.5 1s..2s           drop each beat with probability 0.5
//	drop hb 1s..1.2s              probability defaults to 1
//
// The fault matrix (package comment) is enforced here: invalid
// op/channel combinations are rejected, not silently ignored.
func Parse(spec string) (Schedule, error) {
	sched := Schedule{src: strings.TrimSpace(spec)}
	for _, ev := range strings.Split(spec, ";") {
		ev = strings.TrimSpace(ev)
		if ev == "" {
			continue
		}
		f := strings.Fields(ev)
		var err error
		if f[0] == "kill" {
			err = sched.parseKill(ev, f[1:])
		} else {
			err = sched.parseRingFault(ev, f)
		}
		if err != nil {
			return Schedule{}, err
		}
	}
	return sched, nil
}

// MustParse is Parse for schedules known valid at compile time.
func MustParse(spec string) Schedule {
	s, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return s
}

var killKinds = map[string]hw.FaultKind{
	"core":      hw.CoreFailStop,
	"mem":       hw.MemUncorrected,
	"bus":       hw.BusError,
	"coherency": hw.CoherencyLoss,
}

func (s *Schedule) parseKill(ev string, f []string) error {
	if len(f) < 2 || len(f) > 3 {
		return fmt.Errorf("chaos: %q: want `kill <primary|backup|backup<k>> @<time> [kind]`", ev)
	}
	k := Kill{Fault: hw.CoreFailStop}
	switch {
	case f[0] == "primary":
		k.Target = TargetPrimary
	case f[0] == "backup":
		k.Target = TargetBackup
	case strings.HasPrefix(f[0], "backup"):
		slot, err := strconv.Atoi(f[0][len("backup"):])
		if err != nil || slot < 1 {
			return fmt.Errorf("chaos: %q: bad backup slot in %q (want backup<k>, k >= 1)", ev, f[0])
		}
		k.Target = TargetBackupSlot(slot)
	default:
		return fmt.Errorf("chaos: %q: unknown kill target %q", ev, f[0])
	}
	if !strings.HasPrefix(f[1], "@") {
		return fmt.Errorf("chaos: %q: kill time must be `@<duration>`", ev)
	}
	at, err := time.ParseDuration(f[1][1:])
	if err != nil {
		return fmt.Errorf("chaos: %q: %v", ev, err)
	}
	k.At = at
	if len(f) == 3 {
		kind, ok := killKinds[f[2]]
		if !ok {
			return fmt.Errorf("chaos: %q: unknown fault kind %q (core, mem, bus, coherency)", ev, f[2])
		}
		k.Fault = kind
	}
	s.Kills = append(s.Kills, k)
	return nil
}

// allowed is the op x channel fault matrix (package comment).
var allowed = map[Op]map[string]bool{
	OpDelay: {ClassLog: true, ClassAcks: true, ClassSync: true, ClassHB: true, ClassBulk: true},
	OpDup:   {ClassAcks: true, ClassHB: true},
	OpDrop:  {ClassHB: true},
}

func (s *Schedule) parseRingFault(ev string, f []string) error {
	var op Op
	switch f[0] {
	case "drop":
		op = OpDrop
	case "dup":
		op = OpDup
	case "delay":
		op = OpDelay
	default:
		return fmt.Errorf("chaos: %q: unknown event %q (kill, drop, dup, delay)", ev, f[0])
	}
	if len(f) < 3 {
		return fmt.Errorf("chaos: %q: want `%s <channel> [arg] <from>..<to>`", ev, f[0])
	}
	rf := RingFault{Op: op, Class: f[1], Count: 1, Prob: 1, spec: ev}
	switch rf.Class {
	case ClassLog, ClassAcks, ClassSync, ClassHB, ClassBulk:
	default:
		return fmt.Errorf("chaos: %q: unknown channel %q (log, acks, sync, hb, bulk)", ev, rf.Class)
	}
	if !allowed[op][rf.Class] {
		return fmt.Errorf("chaos: %q: %s is not injectable on the %s channel "+
			"(it would break a replication invariant; see the package fault matrix)",
			ev, op, rf.Class)
	}
	args := f[2 : len(f)-1]
	switch op {
	case OpDelay:
		if len(args) != 1 {
			return fmt.Errorf("chaos: %q: delay needs exactly one added-latency argument", ev)
		}
		d, err := time.ParseDuration(args[0])
		if err != nil || d <= 0 {
			return fmt.Errorf("chaos: %q: bad delay %q", ev, args[0])
		}
		rf.Delay = d
	case OpDup:
		if len(args) == 1 {
			if !strings.HasPrefix(args[0], "x") {
				return fmt.Errorf("chaos: %q: dup count must be `x<n>`", ev)
			}
			n, err := strconv.Atoi(args[0][1:])
			if err != nil || n < 1 {
				return fmt.Errorf("chaos: %q: bad dup count %q", ev, args[0])
			}
			rf.Count = n
		} else if len(args) != 0 {
			return fmt.Errorf("chaos: %q: dup takes at most a `x<n>` argument", ev)
		}
	case OpDrop:
		if len(args) == 1 {
			if !strings.HasPrefix(args[0], "p") {
				return fmt.Errorf("chaos: %q: drop probability must be `p<0..1>`", ev)
			}
			p, err := strconv.ParseFloat(args[0][1:], 64)
			if err != nil || p <= 0 || p > 1 {
				return fmt.Errorf("chaos: %q: bad drop probability %q", ev, args[0])
			}
			rf.Prob = p
		} else if len(args) != 0 {
			return fmt.Errorf("chaos: %q: drop takes at most a `p<prob>` argument", ev)
		}
	}
	from, to, ok := strings.Cut(f[len(f)-1], "..")
	if !ok {
		return fmt.Errorf("chaos: %q: window must be `<from>..<to>`", ev)
	}
	df, err1 := time.ParseDuration(from)
	dt, err2 := time.ParseDuration(to)
	if err1 != nil || err2 != nil || dt <= df {
		return fmt.Errorf("chaos: %q: bad window %q..%q", ev, from, to)
	}
	rf.From, rf.To = df, dt
	s.Rings = append(s.Rings, rf)
	return nil
}

// Env is what the injector needs from the system under test. Victim
// resolves a kill target to the NUMA node of the kernel currently holding
// that role (ok=false when no such kernel is alive — the kill is skipped,
// matching a fault striking already-dead hardware).
type Env struct {
	Sim     *sim.Simulation
	Machine *hw.Machine
	Victim  func(t Target) (node int, ok bool)
	Scope   *obs.Scope
}

// Injector replays one schedule against one deployment.
type Injector struct {
	sched Schedule
	env   Env
	rng   *rand.Rand

	// Injected counts transfer faults actually applied; Kills counts
	// kill events delivered.
	Injected int64
	Kills    int64
}

// NewInjector builds an injector with its own RNG stream, so probability
// draws never perturb the workload's deterministic randomness.
func NewInjector(sched Schedule, env Env, seed int64) *Injector {
	return &Injector{sched: sched, env: env, rng: rand.New(rand.NewSource(seed))}
}

// Schedule returns the injector's parsed schedule.
func (inj *Injector) Schedule() Schedule { return inj.sched }

// Start schedules every kill event. Ring faults need no scheduling: they
// are evaluated per transfer by the hooks ArmRing installs.
func (inj *Injector) Start() {
	for _, k := range inj.sched.Kills {
		k := k
		inj.env.Sim.Schedule(k.At, func() {
			node, ok := inj.env.Victim(k.Target)
			if !ok {
				inj.env.Scope.EmitNote(obs.ChaosInject, 0, inj.Kills, 0,
					fmt.Sprintf("kill %s: no live victim", k.Target))
				return
			}
			inj.Kills++
			inj.env.Scope.EmitNote(obs.ChaosInject, 0, inj.Kills, int64(node),
				fmt.Sprintf("kill %s (%s) node=%d", k.Target, k.Fault, node))
			inj.env.Machine.Inject(hw.Fault{Kind: k.Fault, Node: node, Core: -1, Addr: -1})
		})
	}
}

// ArmRing installs the transfer-fault hook on a ring if any rule targets
// its channel class. Call it for every ring at creation — including the
// generation-suffixed rings a rejoin creates, which inherit their class.
func (inj *Injector) ArmRing(r *shm.Ring) {
	class := ClassOf(r.Name())
	var rules []RingFault
	for _, rf := range inj.sched.Rings {
		if rf.Class == class {
			rules = append(rules, rf)
		}
	}
	if len(rules) == 0 {
		return
	}
	name := r.Name()
	r.SetChaosHook(func(msgs []shm.Message) shm.ChaosVerdict {
		var v shm.ChaosVerdict
		now := time.Duration(inj.env.Sim.Now())
		for _, rf := range rules {
			if now < rf.From || now >= rf.To {
				continue
			}
			hit := false
			switch rf.Op {
			case OpDelay:
				v.Delay += rf.Delay
				hit = true
			case OpDup:
				v.Dup += rf.Count
				hit = true
			case OpDrop:
				if rf.Prob >= 1 || inj.rng.Float64() < rf.Prob {
					v.Drop = true
					hit = true
				}
			}
			if hit {
				inj.Injected++
				inj.env.Scope.EmitNote(obs.ChaosInject, 0, inj.Injected,
					int64(len(msgs)), rf.spec+" on "+name)
			}
		}
		return v
	})
}

// Presets are named example schedules exercising the fault matrix; ftsim
// -chaos and the CI chaos-smoke job accept them by name.
var Presets = map[string]string{
	// One failover, then a second kill after the backup has rejoined.
	"kill-rejoin-kill": "kill primary @2s; kill primary @4m",
	// A heart-beat storm provoking a spurious-suspicion window before a
	// real failure. The first kill sits past the default repair delay so
	// that a storm-induced spurious failover has rejoined by then — a
	// kill inside the repair window would hit the sole survivor.
	"hb-storm": "drop hb p0.5 500ms..800ms; kill primary @15s; kill primary @4m30s",
	// Duplicated acks and congested log/sync channels around failover.
	"dup-delay": "dup acks x2 0s..10s; delay log 200us 1s..3s; delay sync 150us 1s..3s; kill primary @2500ms; kill primary @5m",
}
