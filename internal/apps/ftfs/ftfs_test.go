package ftfs_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/apps/ftfs"
	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/sim"
)

func TestBasicOperations(t *testing.T) {
	base, err := core.NewBaseline(core.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	base.Launch("fs", nil, func(th *replication.Thread) {
		fs := ftfs.New(th.NS())
		if _, err := fs.Open(th, "missing"); !errors.Is(err, ftfs.ErrNotExist) {
			t.Errorf("Open missing: %v", err)
		}
		h, err := fs.Create(th, "a.txt")
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if _, err := fs.Create(th, "a.txt"); !errors.Is(err, ftfs.ErrExist) {
			t.Errorf("double Create: %v", err)
		}
		if _, err := h.Write(th, []byte("hello world")); err != nil {
			t.Fatalf("Write: %v", err)
		}
		if size, err := fs.Stat(th, "a.txt"); err != nil || size != 11 {
			t.Errorf("Stat = %d, %v", size, err)
		}
		h.SeekTo(6)
		var got []byte
		for {
			data, err := h.Read(th, 64)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if len(data) == 0 {
				break
			}
			got = append(got, data...)
		}
		if string(got) != "world" {
			t.Errorf("read %q, want world", got)
		}
		// Overwrite mid-file.
		h.SeekTo(0)
		if _, err := h.Write(th, []byte("HELLO")); err != nil {
			t.Fatal(err)
		}
		h.SeekTo(0)
		data, _ := h.Read(th, 5)
		if len(data) > 0 && data[0] != 'H' {
			t.Errorf("overwrite not visible: %q", data)
		}
		if err := h.Close(); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Write(th, []byte("x")); !errors.Is(err, ftfs.ErrClosed) {
			t.Errorf("write after close: %v", err)
		}
		if names := fs.List(th); len(names) != 1 || names[0] != "a.txt" {
			t.Errorf("List = %v", names)
		}
		if err := fs.Remove(th, "a.txt"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Remove(th, "a.txt"); !errors.Is(err, ftfs.ErrNotExist) {
			t.Errorf("double Remove: %v", err)
		}
	})
	if err := base.Sim.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
}

// fsWorkload has several threads concurrently creating, appending to, and
// reading files; the final FS checksum captures the complete state.
func fsWorkload(sum *uint64, reads *[]int) func(*replication.Thread) {
	return func(root *replication.Thread) {
		fs := ftfs.New(root.NS())
		var threads []*replication.Thread
		for i := 0; i < 4; i++ {
			i := i
			threads = append(threads, root.NS().SpawnThread(root, "writer", func(th *replication.Thread) {
				name := string(rune('a' + i%2)) // two files, contended
				h, err := fs.Create(th, name)
				if errors.Is(err, ftfs.ErrExist) {
					h, err = fs.Open(th, name)
				}
				if err != nil {
					return
				}
				for j := 0; j < 20; j++ {
					th.Task().Compute(time.Duration(th.Task().Kernel().Sim().Rand().Intn(100)) * time.Microsecond)
					size, _ := fs.Stat(th, name)
					h.SeekTo(size) // append
					_, _ = h.Write(th, []byte{byte(i), byte(j)})
				}
				h.SeekTo(0)
				for {
					data, err := h.Read(th, 7)
					if err != nil || len(data) == 0 {
						break
					}
					*reads = append(*reads, len(data))
				}
				_ = h.Close()
			}))
		}
		for _, th := range threads {
			root.Join(th)
		}
		*sum = fs.Checksum(root)
	}
}

func TestReplicatedFSStateIdentical(t *testing.T) {
	// The §6 claim: a user-space POSIX file system replicates with plain
	// SMR — mutations are deterministic under the replicated lock order
	// and short-read lengths are recorded/replayed.
	sys, err := core.NewSystem(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var pSum, sSum uint64
	var pReads, sReads []int
	sys.Primary.NS.Start("fs", nil, fsWorkload(&pSum, &pReads))
	sys.Secondary.NS.Start("fs", nil, fsWorkload(&sSum, &sReads))
	if err := sys.Sim.RunUntil(sim.Time(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if pSum == 0 || pSum != sSum {
		t.Fatalf("file-system state diverged: primary %x, secondary %x", pSum, sSum)
	}
	if len(pReads) == 0 || len(pReads) != len(sReads) {
		t.Fatalf("read sequences: %d vs %d", len(pReads), len(sReads))
	}
	for i := range pReads {
		if pReads[i] != sReads[i] {
			t.Fatalf("short-read lengths diverged at %d: %v vs %v", i, pReads[i], sReads[i])
		}
	}
	short := false
	for _, n := range pReads {
		if n > 0 && n < 7 {
			short = true
		}
	}
	if !short {
		t.Log("note: no short read occurred this run (model randomness)")
	}
	if div := sys.Secondary.NS.Stats().Divergences; div != 0 {
		t.Errorf("%d replay divergences", div)
	}
}

func TestReplicatedFSSurvivesFailover(t *testing.T) {
	sys, err := core.NewSystem(core.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var pSum, sSum uint64
	var pReads, sReads []int
	sys.Primary.NS.Start("fs", nil, fsWorkload(&pSum, &pReads))
	sys.Secondary.NS.Start("fs", nil, fsWorkload(&sSum, &sReads))
	sys.InjectPrimaryFailure(2*time.Millisecond, 0)
	if err := sys.Sim.RunUntil(sim.Time(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if pSum != 0 {
		t.Skip("primary finished before the injected failure")
	}
	if sSum == 0 {
		t.Fatal("secondary did not complete the workload after failover")
	}
	if sys.Secondary.NS.Role() != replication.RoleLive {
		t.Error("secondary not live")
	}
}
