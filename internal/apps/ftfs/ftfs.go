// Package ftfs implements the paper's §6 file-system extension: a
// user-space file system run as a replicated application. The paper argues
// (citing SibylFS) that POSIX file systems are deterministic except for
// the number of bytes returned by a read, so state-machine replication is
// straightforward: every mutating operation is already deterministic under
// the replicated lock order, and the one non-deterministic result — the
// short-read length — is recorded on the primary and replayed on the
// secondary like any other syscall outcome.
//
// The store is an in-memory hierarchy of flat files protected by an
// interposed reader-writer lock, so concurrent access from multiple
// replicated threads serializes identically on both replicas.
package ftfs

import (
	"errors"
	"sort"

	"repro/internal/pthread"
	"repro/internal/replication"
)

// FS errors.
var (
	ErrNotExist = errors.New("ftfs: file does not exist")
	ErrExist    = errors.New("ftfs: file already exists")
	ErrClosed   = errors.New("ftfs: file handle closed")
)

// file is one regular file.
type file struct {
	data []byte
}

// FS is a replicated user-space file system instance. Create one per
// replicated process (on each replica) with New; all operations take the
// calling replicated thread.
type FS struct {
	ns    *replication.Namespace
	lock  *pthread.RWLock
	files map[string]*file
}

// New creates an empty file system bound to the namespace's interposed
// Pthreads library.
func New(ns *replication.Namespace) *FS {
	return &FS{
		ns:    ns,
		lock:  ns.Lib().NewRWLock(),
		files: make(map[string]*file),
	}
}

// Handle is an open file descriptor with a seek offset.
type Handle struct {
	fs     *FS
	name   string
	f      *file
	offset int64
	closed bool
}

// Create makes an empty file, failing if it already exists.
func (fs *FS) Create(th *replication.Thread, name string) (*Handle, error) {
	t := th.Task()
	fs.lock.WrLock(t)
	defer fs.lock.WrUnlock(t)
	if _, ok := fs.files[name]; ok {
		return nil, ErrExist
	}
	f := &file{}
	fs.files[name] = f
	return &Handle{fs: fs, name: name, f: f}, nil
}

// Open opens an existing file for reading and writing.
func (fs *FS) Open(th *replication.Thread, name string) (*Handle, error) {
	t := th.Task()
	fs.lock.RdLock(t)
	defer fs.lock.RdUnlock(t)
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNotExist
	}
	return &Handle{fs: fs, name: name, f: f}, nil
}

// Remove deletes a file.
func (fs *FS) Remove(th *replication.Thread, name string) error {
	t := th.Task()
	fs.lock.WrLock(t)
	defer fs.lock.WrUnlock(t)
	if _, ok := fs.files[name]; !ok {
		return ErrNotExist
	}
	delete(fs.files, name)
	return nil
}

// List returns all file names in sorted (deterministic) order.
func (fs *FS) List(th *replication.Thread) []string {
	t := th.Task()
	fs.lock.RdLock(t)
	defer fs.lock.RdUnlock(t)
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stat reports a file's size.
func (fs *FS) Stat(th *replication.Thread, name string) (int64, error) {
	t := th.Task()
	fs.lock.RdLock(t)
	defer fs.lock.RdUnlock(t)
	f, ok := fs.files[name]
	if !ok {
		return 0, ErrNotExist
	}
	return int64(len(f.data)), nil
}

// Write appends-or-overwrites at the handle's offset and advances it.
// Writes are fully deterministic (POSIX write of n bytes writes n bytes on
// a regular file), so no result replication is needed beyond the lock
// order.
func (h *Handle) Write(th *replication.Thread, data []byte) (int, error) {
	if h.closed {
		return 0, ErrClosed
	}
	t := th.Task()
	h.fs.lock.WrLock(t)
	defer h.fs.lock.WrUnlock(t)
	end := h.offset + int64(len(data))
	if grow := end - int64(len(h.f.data)); grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
	}
	copy(h.f.data[h.offset:end], data)
	h.offset = end
	return len(data), nil
}

// Read reads up to max bytes from the handle's offset. Per SibylFS, the
// byte count returned by read is the ONE non-deterministic POSIX
// file-system result: the primary's kernel may return fewer bytes than
// requested (page-boundary and readahead effects). The count is therefore
// produced on the primary (deterministically randomized here to model the
// kernel's freedom) and replicated, so both replicas consume file content
// in identical steps. Returns 0 bytes at end of file.
func (h *Handle) Read(th *replication.Thread, max int) ([]byte, error) {
	if h.closed {
		return nil, ErrClosed
	}
	t := th.Task()
	h.fs.lock.RdLock(t)
	avail := int64(len(h.f.data)) - h.offset
	if avail < 0 {
		avail = 0
	}
	want := int64(max)
	if want > avail {
		want = avail
	}
	h.fs.lock.RdUnlock(t)

	// The short-read decision is the primary's; the secondary replays it.
	n := h.fs.ns.SyscallU64(th, replication.OpSockResult, 0, func() uint64 {
		if want <= 1 {
			return uint64(want)
		}
		// Model the kernel's liberty to return a short read.
		if t.Kernel().Sim().Rand().Intn(4) == 0 {
			return uint64(1 + t.Kernel().Sim().Rand().Int63n(want))
		}
		return uint64(want)
	})

	h.fs.lock.RdLock(t)
	defer h.fs.lock.RdUnlock(t)
	end := h.offset + int64(n)
	if end > int64(len(h.f.data)) {
		end = int64(len(h.f.data))
	}
	out := make([]byte, end-h.offset)
	copy(out, h.f.data[h.offset:end])
	h.offset = end
	return out, nil
}

// SeekTo sets the handle's absolute offset.
func (h *Handle) SeekTo(offset int64) {
	h.offset = offset
}

// Close invalidates the handle.
func (h *Handle) Close() error {
	if h.closed {
		return ErrClosed
	}
	h.closed = true
	return nil
}

// Checksum folds the whole file system (names, sizes, contents) into one
// value, for cross-replica state comparison.
func (fs *FS) Checksum(th *replication.Thread) uint64 {
	t := th.Task()
	fs.lock.RdLock(t)
	defer fs.lock.RdUnlock(t)
	names := make([]string, 0, len(fs.files))
	for name := range fs.files {
		names = append(names, name)
	}
	sort.Strings(names)
	var sum uint64 = 1469598103934665603
	mix := func(b byte) {
		sum ^= uint64(b)
		sum *= 1099511628211
	}
	for _, name := range names {
		for i := 0; i < len(name); i++ {
			mix(name[i])
		}
		mix(0)
		for _, b := range fs.files[name].data {
			mix(b)
		}
		mix(0xff)
	}
	return sum
}
