// Package restream is a restorable variant of the streaming file server:
// the same deterministic transfer the failover experiments use, but with
// its replicated state (socket identities and transfer offset) exposed as
// a snapshot so epoch checkpointing can resume it on a checkpoint-seeded
// replica. It is the reference implementation of the core.AppState
// contract: every det section it issues is a pure function of the
// restored state, so a replica restored at offset K issues exactly the
// section sequence the primary's continuation recorded after the cut.
package restream

import (
	"encoding/binary"

	"repro/internal/replication"
	"repro/internal/tcprep"
)

// Config parameterizes the server.
type Config struct {
	// Port the server listens on.
	Port int
	// Chunk is the application write granularity.
	Chunk int
	// Total is the transfer size; the server serves one connection and
	// returns.
	Total int
}

// Fill writes the deterministic stream content for [off, off+len(b)) —
// the same function a verifying client uses. Matching content across
// replicas is what makes a replica's regenerated output buffer valid for
// retransmission after failover.
func Fill(b []byte, off int) {
	for i := range b {
		x := off + i
		b[i] = byte(x*31 + (x >> 8) + (x >> 16))
	}
}

// Server is one replica's instance. The zero state (fresh boot) listens,
// accepts one connection, streams Total bytes, and closes; a restored
// state re-adopts its checkpointed sockets and resumes mid-transfer.
type Server struct {
	cfg Config

	// Replicated state, mutated only between det sections (each field
	// settles before the thread can park at the next section boundary, so
	// a quiesced cut never observes a half-applied transition).
	lid  uint64 // listener socket ID; 0 = not listening yet
	cid  uint64 // connection socket ID; 0 = not accepted yet
	off  int    // bytes sent
	done bool   // transfer complete, socket closed

	mut uint64 // cumulative dirtied bytes, for pre-copy sizing
}

// New builds a server instance; use the same Config on every replica.
func New(cfg Config) *Server {
	if cfg.Port == 0 {
		cfg.Port = 80
	}
	if cfg.Chunk <= 0 {
		cfg.Chunk = 64 << 10
	}
	return &Server{cfg: cfg}
}

// Off reports the transfer offset (test observability).
func (s *Server) Off() int { return s.off }

// Done reports whether the transfer has completed.
func (s *Server) Done() bool { return s.done }

// Main runs the transfer. On a fresh replica every socket call enters a
// det section (recorded on the primary, replayed on backups); on a
// checkpoint-seeded replica the pre-cut sections are skipped by adopting
// the snapshotted socket identities instead of re-issuing listen/accept.
func (s *Server) Main(th *replication.Thread, socks *tcprep.Sockets) {
	if s.done {
		return
	}
	var l *tcprep.Listener
	if s.lid == 0 {
		nl, err := socks.Listen(th, s.cfg.Port, 8)
		if err != nil {
			return
		}
		l = nl
		s.lid = l.ID()
		s.mut += 8
	} else {
		l = socks.AdoptListener(s.cfg.Port, s.lid)
	}
	var c *tcprep.Conn
	if s.cid == 0 {
		nc, err := l.Accept(th)
		if err != nil {
			return
		}
		c = nc
		s.cid = c.ID()
		s.mut += 8
	} else {
		c = socks.AdoptConn(th.Task(), s.cid, 0)
	}
	buf := make([]byte, s.cfg.Chunk)
	for s.off < s.cfg.Total {
		n := s.cfg.Chunk
		if s.cfg.Total-s.off < n {
			n = s.cfg.Total - s.off
		}
		Fill(buf[:n], s.off)
		if _, err := c.Send(th, buf[:n]); err != nil {
			return
		}
		s.off += n
		s.mut += uint64(n)
	}
	_ = c.Close(th)
	s.done = true
	s.mut++
}

// Snapshot serializes the replicated state (called with the namespace
// quiesced at a section boundary).
func (s *Server) Snapshot() []byte {
	b := make([]byte, 33)
	binary.LittleEndian.PutUint64(b[0:], s.lid)
	binary.LittleEndian.PutUint64(b[8:], s.cid)
	binary.LittleEndian.PutUint64(b[16:], uint64(s.off))
	binary.LittleEndian.PutUint64(b[24:], s.mut)
	if s.done {
		b[32] = 1
	}
	return b
}

// Restore rebuilds the state from a Snapshot before Main starts on a
// checkpoint-seeded replica.
func (s *Server) Restore(data []byte) {
	if len(data) < 33 {
		return
	}
	s.lid = binary.LittleEndian.Uint64(data[0:])
	s.cid = binary.LittleEndian.Uint64(data[8:])
	s.off = int(binary.LittleEndian.Uint64(data[16:]))
	s.mut = binary.LittleEndian.Uint64(data[24:])
	s.done = data[32] == 1
}

// Dirtied reports cumulative state bytes mutated since the instance
// started; the epoch pre-copy engine differences readings to size its
// converging passes.
func (s *Server) Dirtied() uint64 { return s.mut }
