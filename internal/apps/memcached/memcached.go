// Package memcached models the memcached server and the CloudSuite-style
// load used in the paper's Figure 1 memory-dump experiment (§2.3), plus a
// small functional replicated key-value server for the examples and tests.
//
// Figure 1 is an occupancy measurement: how much of a 96 GB machine's
// physical memory is unrecoverable kernel data ("Ignored"), recoverable
// kernel data ("Delayed"), and user memory, as the cached dataset scales
// from 3x to 180x. The model below reproduces the mechanism: the dataset
// grows user memory; kernel slab (item/connection metadata, socket
// buffers) and page tables grow with it into the Ignored class; the
// dataset files loaded from disk populate the (clean, reclaimable) page
// cache in the Delayed class; a fixed base (kernel text, struct page
// array) is Ignored from boot.
package memcached

import (
	"fmt"

	"repro/internal/kmem"
)

// LoadModel parameterizes the Figure 1 memory-consumption model.
type LoadModel struct {
	// BytesPerUnit is the dataset bytes added per 1x input multiplier.
	BytesPerUnit int64
	// ItemBytes is the average cached item size.
	ItemBytes int64
	// UserOverhead scales dataset to resident user memory (allocator and
	// hash-table overhead).
	UserOverhead float64
	// SlabPerItem is unrecoverable kernel slab per cached item (request
	// metadata, network buffers churned per item).
	SlabPerItem int64
	// ConnsPerUnit and SockBufPerConn grow kernel socket buffers with the
	// client load.
	ConnsPerUnit   int
	SockBufPerConn int64
	// PageTableBytesPerPage is the paging overhead per 4 KB user page.
	PageTableBytesPerPage int64
	// PageCacheFraction is the share of the dataset's on-disk source files
	// that remains in the (clean) page cache after loading.
	PageCacheFraction float64
}

// DefaultLoadModel is calibrated so a 96 GB machine at 180x shows the
// paper's reported occupancy: ~15% Ignored, ~20% Delayed, the rest mostly
// User.
func DefaultLoadModel() LoadModel {
	return LoadModel{
		BytesPerUnit:          280 << 20,
		ItemBytes:             1 << 10,
		UserOverhead:          1.08,
		SlabPerItem:           205,
		ConnsPerUnit:          100,
		SockBufPerConn:        128 << 10,
		PageTableBytesPerPage: 8,
		PageCacheFraction:     0.39,
	}
}

// ApplyLoad drives the accounting to the state a memcached server under
// the given input-size multiplier reaches, and returns the occupancy
// snapshot. The accounting must already hold the boot-time reservation.
func ApplyLoad(acct *kmem.Accounting, m LoadModel, multiplier int) (kmem.Snapshot, error) {
	dataset := m.BytesPerUnit * int64(multiplier)
	user := int64(float64(dataset) * m.UserOverhead)
	items := dataset / m.ItemBytes
	slab := items*m.SlabPerItem + int64(m.ConnsPerUnit*multiplier)*m.SockBufPerConn
	pageTables := user / 4096 * m.PageTableBytesPerPage

	if err := acct.Alloc(kmem.User, user); err != nil {
		return kmem.Snapshot{}, fmt.Errorf("memcached: user alloc at %dx: %w", multiplier, err)
	}
	if err := acct.Alloc(kmem.KernelIgnored, slab+pageTables); err != nil {
		return kmem.Snapshot{}, fmt.Errorf("memcached: kernel alloc at %dx: %w", multiplier, err)
	}
	// Page cache fills from the dataset source files, bounded by what is
	// still free (the kernel reclaims it under pressure — it stays clean).
	cache := int64(float64(dataset) * m.PageCacheFraction)
	if free := acct.Bytes(kmem.Free) - (2 << 30); cache > free {
		cache = free
	}
	if cache > 0 {
		if err := acct.Alloc(kmem.KernelDelayed, cache); err != nil {
			return kmem.Snapshot{}, fmt.Errorf("memcached: page cache at %dx: %w", multiplier, err)
		}
	}
	return acct.Snapshot(), nil
}
