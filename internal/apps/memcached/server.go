package memcached

import (
	"strings"

	"repro/internal/kernel"

	"repro/internal/pthread"
	"repro/internal/replication"
	"repro/internal/tcprep"
)

// ServerConfig parameterizes the functional replicated key-value server.
type ServerConfig struct {
	Port    int
	Workers int
}

// ServerStats counts operations served.
type ServerStats struct {
	Gets, Sets, Hits int
}

// RunServer executes a small memcached-like text-protocol server
// ("set k v\n" / "get k\n") as a replicated application. The store is
// shared between workers and protected by an interposed rwlock, so its
// contents stay identical across replicas.
func RunServer(th *replication.Thread, socks *tcprep.Sockets, cfg ServerConfig, st *ServerStats) {
	if cfg.Port == 0 {
		cfg.Port = 11211
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	lib := th.Lib()
	lock := lib.NewRWLock()
	store := make(map[string]string)
	mu := lib.NewMutex()
	cond := lib.NewCond()
	var backlog []*tcprep.Conn

	for i := 0; i < cfg.Workers; i++ {
		th.NS().SpawnThread(th, "worker", func(w *replication.Thread) {
			t := w.Task()
			for {
				mu.Lock(t)
				for len(backlog) == 0 {
					cond.Wait(t, mu)
				}
				c := backlog[0]
				backlog = backlog[1:]
				mu.Unlock(t)
				serveConn(w, c, lock, store, st)
			}
		})
	}

	l, err := socks.Listen(th, cfg.Port, 64)
	if err != nil {
		return
	}
	for {
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		t := th.Task()
		mu.Lock(t)
		backlog = append(backlog, c)
		cond.Signal(t)
		mu.Unlock(t)
	}
}

func serveConn(w *replication.Thread, c *tcprep.Conn, lock *pthread.RWLock, store map[string]string, st *ServerStats) {
	defer func() { _ = c.Close(w) }()
	t := w.Task()
	buf := ""
	for {
		data, err := c.Recv(w, 4096)
		if err != nil {
			return
		}
		buf += string(data)
		for {
			nl := strings.IndexByte(buf, '\n')
			if nl < 0 {
				break
			}
			line := strings.TrimSpace(buf[:nl])
			buf = buf[nl+1:]
			if line == "quit" {
				return
			}
			reply := handleLine(t, line, lock, store, st)
			if _, err := c.Send(w, []byte(reply)); err != nil {
				return
			}
		}
	}
}

// handleLine executes one protocol command under the store lock.
func handleLine(t *kernel.Task, line string, lock *pthread.RWLock, store map[string]string, st *ServerStats) string {
	fields := strings.SplitN(line, " ", 3)
	switch {
	case len(fields) == 3 && fields[0] == "set":
		lock.WrLock(t)
		store[fields[1]] = fields[2]
		st.Sets++
		lock.WrUnlock(t)
		return "STORED\n"
	case len(fields) == 2 && fields[0] == "get":
		lock.RdLock(t)
		v, ok := store[fields[1]]
		st.Gets++
		if ok {
			st.Hits++
		}
		lock.RdUnlock(t)
		if !ok {
			return "END\n"
		}
		return "VALUE " + fields[1] + " " + v + "\nEND\n"
	default:
		return "ERROR\n"
	}
}
