package memcached_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/apps/memcached"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/kmem"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

func freshAccounting(t *testing.T) *kmem.Accounting {
	t.Helper()
	s := sim.New(1)
	m := hw.New(s, hw.MemDumpMachine())
	part, err := m.NewPartition("linux", 0, 1, 2, 3, 4, 5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	k, err := kernel.Boot(part, kernel.Config{Name: "linux"})
	if err != nil {
		t.Fatal(err)
	}
	return k.Mem()
}

func TestLoadModelMonotone(t *testing.T) {
	var prevUser, prevIgnored int64
	for _, mult := range []int{3, 30, 90, 180} {
		acct := freshAccounting(t)
		snap, err := memcached.ApplyLoad(acct, memcached.DefaultLoadModel(), mult)
		if err != nil {
			t.Fatalf("ApplyLoad(%d): %v", mult, err)
		}
		if snap.User <= prevUser || snap.Ignored <= prevIgnored {
			t.Errorf("occupancy not growing at %dx", mult)
		}
		prevUser, prevIgnored = snap.User, snap.Ignored
		if sum := snap.Free + snap.Ignored + snap.Delayed + snap.User; sum != snap.Total {
			t.Errorf("accounting leak at %dx", mult)
		}
	}
}

func TestLoadModelMatchesPaperAt180x(t *testing.T) {
	acct := freshAccounting(t)
	snap, err := memcached.ApplyLoad(acct, memcached.DefaultLoadModel(), 180)
	if err != nil {
		t.Fatal(err)
	}
	ignored := 100 * float64(snap.Ignored) / float64(snap.Total)
	delayed := 100 * float64(snap.Delayed) / float64(snap.Total)
	if ignored < 12 || ignored > 18 {
		t.Errorf("Ignored = %.1f%%, paper reports ~15%%", ignored)
	}
	if delayed < 17 || delayed > 23 {
		t.Errorf("Delayed = %.1f%%, paper reports ~20%%", delayed)
	}
}

func TestReplicatedKVServer(t *testing.T) {
	sys, err := core.NewSystem(core.DefaultConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	var st memcached.ServerStats
	sys.LaunchApp("memcached", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		memcached.RunServer(th, socks, memcached.ServerConfig{Port: 11211, Workers: 4}, &st)
	})
	var replies []string
	client.Kernel.Spawn("client", func(tk *kernel.Task) {
		c, err := client.Stack.Connect(tk, client.ServerAddr(11211))
		if err != nil {
			t.Errorf("connect: %v", err)
			return
		}
		send := func(line string) {
			if _, err := c.Send(tk, []byte(line+"\n")); err != nil {
				t.Errorf("send %q: %v", line, err)
				return
			}
			data, err := c.Recv(tk, 4096)
			if err != nil {
				t.Errorf("recv after %q: %v", line, err)
				return
			}
			replies = append(replies, string(data))
		}
		send("set k1 hello")
		send("get k1")
		send("get missing")
		send("bogus")
		_, _ = c.Send(tk, []byte("quit\n"))
		_ = c.Close(tk)
	})
	if err := sys.Sim.RunUntil(sim.Time(3 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(replies) != 4 {
		t.Fatalf("replies = %q", replies)
	}
	if replies[0] != "STORED\n" {
		t.Errorf("set reply = %q", replies[0])
	}
	if !strings.Contains(replies[1], "VALUE k1 hello") {
		t.Errorf("get reply = %q", replies[1])
	}
	if replies[2] != "END\n" {
		t.Errorf("miss reply = %q", replies[2])
	}
	if replies[3] != "ERROR\n" {
		t.Errorf("bogus reply = %q", replies[3])
	}
	// Both replicas execute the operations (the secondary replays them),
	// and they share the stats struct in this test: every count doubles.
	if st.Sets != 2 || st.Gets != 4 || st.Hits != 2 {
		t.Errorf("stats = %+v, want doubled counts from both replicas", st)
	}
	if div := sys.Secondary.NS.Stats().Divergences; div != 0 {
		t.Errorf("%d replay divergences", div)
	}
}
