// Package clients implements the client-side tools of the paper's
// evaluation: an ApacheBench-style closed-loop HTTP load generator (§4.2,
// §4.3) and a wget-style downloader with throughput sampling (§4.4). Both
// run on the unreplicated client machine's kernel and TCP stack.
package clients

import (
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/tcpstack"
)

// ABConfig parameterizes the load generator.
type ABConfig struct {
	// Port of the server under test.
	Port int
	// Concurrency is the number of closed-loop client workers (100 in
	// §4.2, 5 in §4.3).
	Concurrency int
	// ResponseBytes is the expected full response size; a request
	// completes when it has all arrived.
	ResponseBytes int
	// Duration bounds the run; workers stop issuing requests after it.
	Duration time.Duration
	// WarmUp excludes the initial ramp from the stats.
	WarmUp time.Duration
}

// ABStats aggregates the load generator's measurements.
type ABStats struct {
	Requests   int
	Errors     int
	LatencySum time.Duration
	LatencyMax time.Duration
}

// MeanLatency reports the average request latency.
func (s *ABStats) MeanLatency() time.Duration {
	if s.Requests == 0 {
		return 0
	}
	return s.LatencySum / time.Duration(s.Requests)
}

// Throughput reports requests/second over the measured window.
func (s *ABStats) Throughput(window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	return float64(s.Requests) / window.Seconds()
}

// RunAB starts Concurrency closed-loop workers on the client machine: each
// connects, sends a request, reads the full response, records the latency,
// and repeats — ApacheBench's behaviour with -c Concurrency.
func RunAB(client *core.Client, cfg ABConfig, st *ABStats) {
	req := []byte("GET /page HTTP/1.1\r\nHost: server\r\n\r\n")
	for i := 0; i < cfg.Concurrency; i++ {
		client.Kernel.Spawn("ab", func(t *kernel.Task) {
			end := t.Now().Add(cfg.Duration)
			warm := t.Now().Add(cfg.WarmUp)
			for t.Now() < end {
				start := t.Now()
				ok := oneRequest(t, client, cfg, req)
				if t.Now() < warm {
					continue
				}
				if !ok {
					st.Errors++
					continue
				}
				lat := t.Now().Sub(start)
				st.Requests++
				st.LatencySum += lat
				if lat > st.LatencyMax {
					st.LatencyMax = lat
				}
			}
		})
	}
}

func oneRequest(t *kernel.Task, client *core.Client, cfg ABConfig, req []byte) bool {
	c, err := client.Stack.Connect(t, client.ServerAddr(cfg.Port))
	if err != nil {
		return false
	}
	defer func() { _ = c.Close(t) }()
	if _, err := c.Send(t, req); err != nil {
		return false
	}
	got := 0
	for got < cfg.ResponseBytes {
		data, err := c.Recv(t, 64<<10)
		if errors.Is(err, tcpstack.EOF) {
			break
		}
		if err != nil {
			return false
		}
		got += len(data)
	}
	return got >= cfg.ResponseBytes
}

// Sample is one point of a download throughput series.
type Sample struct {
	At    sim.Time
	Bytes int64 // bytes received within this sample interval
}

// DownloadStats reports a wget run.
type DownloadStats struct {
	Received   int64
	Complete   bool
	Corrupted  bool
	FinishedAt sim.Time
	Series     []Sample
}

// Download runs a wget-style transfer of size bytes from the server,
// sampling received bytes every interval (Figure 8's time series). verify,
// if non-nil, is called per chunk with the stream offset to check content.
func Download(client *core.Client, port int, size int64, interval time.Duration,
	verify func(off int64, data []byte) bool, st *DownloadStats) {
	client.Kernel.Spawn("wget", func(t *kernel.Task) {
		c, err := client.Stack.Connect(t, client.ServerAddr(port))
		if err != nil {
			return
		}
		if _, err := c.Send(t, []byte("GET /file HTTP/1.0\r\n\r\n")); err != nil {
			return
		}
		nextSample := t.Now().Add(interval)
		var windowBytes int64
		for st.Received < size {
			data, err := c.Recv(t, 256<<10)
			if err != nil {
				break
			}
			if verify != nil && !verify(st.Received, data) {
				st.Corrupted = true
			}
			// Close out any sample intervals that ended before this chunk
			// arrived (an outage shows up as zero-byte samples).
			for t.Now() >= nextSample {
				st.Series = append(st.Series, Sample{At: nextSample, Bytes: windowBytes})
				windowBytes = 0
				nextSample = nextSample.Add(interval)
			}
			st.Received += int64(len(data))
			windowBytes += int64(len(data))
		}
		st.Series = append(st.Series, Sample{At: t.Now(), Bytes: windowBytes})
		st.Complete = st.Received >= size
		st.FinishedAt = t.Now()
		_ = c.Close(t)
	})
}
