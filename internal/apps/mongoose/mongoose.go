// Package mongoose reimplements the thread structure of the Mongoose web
// server used in the paper's network-I/O evaluation (§4.2): one listening
// thread accepts client connections and delegates them to a pool of worker
// threads through a shared queue protected by a Pthreads lock and a
// condition variable. Per §4.2, each request additionally runs an
// artificial CPU loop, modelling per-request application computation.
package mongoose

import (
	"strconv"
	"time"

	"repro/internal/replication"
	"repro/internal/tcprep"
)

// Config parameterizes the server.
type Config struct {
	// Port the server listens on.
	Port int
	// Workers is the worker-pool size (32 in §4.2, matching the cores).
	Workers int
	// PageBytes is the static page size served (10 KB in the paper).
	PageBytes int
	// CPULoad is the artificial per-request computation; Figure 6's x-axis
	// doubles it at every step.
	CPULoad time.Duration
	// AcceptCost is the listening thread's serial per-connection work
	// (accept, socket setup, dispatch) — the master thread is Mongoose's
	// own scalability ceiling.
	AcceptCost time.Duration
}

// DefaultConfig matches the paper's setup at CPU-load step 0.
func DefaultConfig() Config {
	return Config{
		Port:       8080,
		Workers:    32,
		PageBytes:  10 << 10,
		CPULoad:    100 * time.Microsecond,
		AcceptCost: 300 * time.Microsecond,
	}
}

// Stats reports served requests.
type Stats struct {
	Accepted int
	Served   int
	Errors   int
}

// Run executes the web server as the replicated application's root thread.
// It serves until its kernel dies (servers run forever).
func Run(th *replication.Thread, socks *tcprep.Sockets, cfg Config, st *Stats) {
	lib := th.Lib()
	mu := lib.NewMutex()
	cond := lib.NewCond()
	var backlog []*tcprep.Conn

	page := buildPage(cfg.PageBytes)

	for i := 0; i < cfg.Workers; i++ {
		th.NS().SpawnThread(th, "worker", func(w *replication.Thread) {
			t := w.Task()
			for {
				mu.Lock(t)
				for len(backlog) == 0 {
					cond.Wait(t, mu)
				}
				c := backlog[0]
				backlog = backlog[1:]
				mu.Unlock(t)
				serve(w, c, cfg, page, st)
			}
		})
	}

	l, err := socks.Listen(th, cfg.Port, 128)
	if err != nil {
		return
	}
	for {
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		st.Accepted++
		t := th.Task()
		if cfg.AcceptCost > 0 {
			t.Compute(cfg.AcceptCost)
		}
		mu.Lock(t)
		backlog = append(backlog, c)
		cond.Signal(t)
		mu.Unlock(t)
	}
}

func serve(w *replication.Thread, c *tcprep.Conn, cfg Config, page []byte, st *Stats) {
	t := w.Task()
	if _, err := c.Recv(w, 4096); err != nil {
		st.Errors++
		_ = c.Close(w)
		return
	}
	if cfg.CPULoad > 0 {
		t.Compute(cfg.CPULoad)
	}
	if _, err := c.Send(w, page); err != nil {
		st.Errors++
		_ = c.Close(w)
		return
	}
	_ = c.Close(w)
	st.Served++
}

// buildPage renders a deterministic HTTP response of the configured size.
func buildPage(bytes int) []byte {
	head := "HTTP/1.1 200 OK\r\nContent-Length: " + strconv.Itoa(bytes) + "\r\n\r\n"
	page := make([]byte, 0, len(head)+bytes)
	page = append(page, head...)
	for i := 0; i < bytes; i++ {
		page = append(page, byte('A'+i%26))
	}
	return page
}

// PageSize reports the full response size for a config (header + body),
// which clients use to know when a response is complete.
func PageSize(cfg Config) int { return len(buildPage(cfg.PageBytes)) }
