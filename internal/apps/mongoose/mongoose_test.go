package mongoose_test

import (
	"testing"
	"time"

	"repro/internal/apps/clients"
	"repro/internal/apps/mongoose"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

func TestServesUnderLoadReplicated(t *testing.T) {
	sys, err := core.NewSystem(core.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mongoose.DefaultConfig()
	mcfg.Workers = 8
	var st mongoose.Stats
	sys.LaunchApp("mongoose", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		mongoose.Run(th, socks, mcfg, &st)
	})
	var ab clients.ABStats
	clients.RunAB(client, clients.ABConfig{
		Port: mcfg.Port, Concurrency: 10, ResponseBytes: mongoose.PageSize(mcfg),
		Duration: time.Second, WarmUp: 200 * time.Millisecond,
	}, &ab)
	if err := sys.Sim.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if ab.Requests < 100 {
		t.Fatalf("only %d requests completed", ab.Requests)
	}
	if ab.Errors > 0 {
		t.Errorf("%d request errors", ab.Errors)
	}
	if st.Served < ab.Requests {
		t.Errorf("server served %d < client's %d", st.Served, ab.Requests)
	}
	if div := sys.Secondary.NS.Stats().Divergences; div != 0 {
		t.Errorf("%d replay divergences", div)
	}
}

func TestServiceSurvivesFailover(t *testing.T) {
	sys, err := core.NewSystem(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	mcfg := mongoose.DefaultConfig()
	mcfg.Workers = 8
	var st mongoose.Stats
	sys.LaunchApp("mongoose", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		mongoose.Run(th, socks, mcfg, &st)
	})
	var ab clients.ABStats
	clients.RunAB(client, clients.ABConfig{
		Port: mcfg.Port, Concurrency: 5, ResponseBytes: mongoose.PageSize(mcfg),
		Duration: 15 * time.Second,
	}, &ab)
	sys.InjectPrimaryFailure(time.Second, hw.CoreFailStop)
	if err := sys.Sim.RunUntil(sim.Time(16 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if sys.LiveAt == 0 {
		t.Fatal("failover did not complete")
	}
	// Requests succeed both before the failure and after promotion; the
	// ones caught in the outage fail or stall, which is expected (their
	// connections are reset or retried by the load generator).
	if ab.Requests < 500 {
		t.Errorf("only %d requests completed across the failover", ab.Requests)
	}
	if !sys.Secondary.Kernel.Alive() {
		t.Error("secondary died")
	}
}
