// Package fileserver reimplements the paper's in-house HTTP-based file
// server (§4.4): a deliberately light-weight, single-purpose server
// written for the failover evaluation — it listens for incoming
// connections and transfers a large file to each, so overheads are easy to
// break down.
package fileserver

import (
	"repro/internal/replication"
	"repro/internal/tcprep"
)

// Config parameterizes the server.
type Config struct {
	// Port the server listens on.
	Port int
	// FileSize is the transferred file size (10 GB in §4.4).
	FileSize int64
	// ChunkBytes is the application write granularity.
	ChunkBytes int
}

// DefaultConfig matches the paper's failover experiment.
func DefaultConfig() Config {
	return Config{Port: 80, FileSize: 10 << 30, ChunkBytes: 256 << 10}
}

// Stats reports transfer progress.
type Stats struct {
	Conns     int
	BytesSent int64
}

// Fill writes the deterministic file content for [off, off+len(b)) — the
// same function the downloading client uses to verify integrity. Both
// replicas regenerate identical bytes, which is what makes the replica's
// output buffer valid for retransmission after failover.
func Fill(b []byte, off int64) {
	for i := range b {
		x := off + int64(i)
		b[i] = byte(x*131 + (x >> 7) + (x >> 15))
	}
}

// Run executes the file server as the replicated application's root
// thread: accept, transfer the file, close, repeat.
func Run(th *replication.Thread, socks *tcprep.Sockets, cfg Config, st *Stats) {
	l, err := socks.Listen(th, cfg.Port, 16)
	if err != nil {
		return
	}
	buf := make([]byte, cfg.ChunkBytes)
	for {
		c, err := l.Accept(th)
		if err != nil {
			return
		}
		st.Conns++
		// Read the request line, then stream the file.
		if _, err := c.Recv(th, 4096); err != nil {
			_ = c.Close(th)
			continue
		}
		for off := int64(0); off < cfg.FileSize; off += int64(len(buf)) {
			n := int64(len(buf))
			if cfg.FileSize-off < n {
				n = cfg.FileSize - off
			}
			Fill(buf[:n], off)
			if _, err := c.Send(th, buf[:n]); err != nil {
				break
			}
			st.BytesSent += n
		}
		_ = c.Close(th)
	}
}
