package fileserver_test

import (
	"testing"
	"time"

	"repro/internal/apps/clients"
	"repro/internal/apps/fileserver"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

func verify(t *testing.T) func(int64, []byte) bool {
	t.Helper()
	return func(off int64, data []byte) bool {
		want := make([]byte, len(data))
		fileserver.Fill(want, off)
		for i := range data {
			if data[i] != want[i] {
				return false
			}
		}
		return true
	}
}

func TestTransferIntact(t *testing.T) {
	cfg := core.DefaultConfig(1)
	cfg.TCP.MSS = 32 << 10
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	fcfg := fileserver.Config{Port: 80, FileSize: 64 << 20, ChunkBytes: 256 << 10}
	var fst fileserver.Stats
	sys.LaunchApp("fileserver", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		fileserver.Run(th, socks, fcfg, &fst)
	})
	var dl clients.DownloadStats
	clients.Download(client, fcfg.Port, fcfg.FileSize, time.Second, verify(t), &dl)
	if err := sys.Sim.RunUntil(sim.Time(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !dl.Complete || dl.Corrupted {
		t.Fatalf("complete=%v corrupted=%v received=%d", dl.Complete, dl.Corrupted, dl.Received)
	}
	// Both replicas run the server (the secondary replays), sharing the
	// stats struct in this test: counts double.
	if fst.Conns != 2 || fst.BytesSent < 2*fcfg.FileSize {
		t.Errorf("server stats = %+v, want doubled counts from both replicas", fst)
	}
}

func TestTransferSurvivesCoherencyLossFailover(t *testing.T) {
	cfg := core.DefaultConfig(2)
	cfg.TCP.MSS = 32 << 10
	sys, err := core.NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	client, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	fcfg := fileserver.Config{Port: 80, FileSize: 96 << 20, ChunkBytes: 256 << 10}
	var fst fileserver.Stats
	sys.LaunchApp("fileserver", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		fileserver.Run(th, socks, fcfg, &fst)
	})
	var dl clients.DownloadStats
	clients.Download(client, fcfg.Port, fcfg.FileSize, time.Second, verify(t), &dl)
	// The worst §3.5 case: the fault also loses in-flight log messages.
	sys.InjectPrimaryFailure(200*time.Millisecond, hw.CoherencyLoss)
	if err := sys.Sim.RunUntil(sim.Time(60 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if !dl.Complete || dl.Corrupted {
		t.Fatalf("transfer across coherency-loss failover: complete=%v corrupted=%v received=%d",
			dl.Complete, dl.Corrupted, dl.Received)
	}
	// The Fig. 8 signature: zero-rate samples during the outage.
	zeros := 0
	for _, s := range dl.Series {
		if s.Bytes == 0 {
			zeros++
		}
	}
	if zeros < 4 {
		t.Errorf("only %d zero-throughput samples; expected a ~5s outage", zeros)
	}
}
