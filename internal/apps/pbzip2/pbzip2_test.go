package pbzip2_test

import (
	"testing"
	"time"

	"repro/internal/apps/pbzip2"
	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/sim"
)

func smallCfg() pbzip2.Config {
	cfg := pbzip2.DefaultConfig()
	cfg.BlockSize = 100 << 10
	cfg.Workers = 8
	cfg.MaxBlocks = 200
	return cfg
}

func TestBaselineCompressesEverything(t *testing.T) {
	base, err := core.NewBaseline(core.DefaultConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	var st pbzip2.Stats
	base.Launch("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, cfg, &st) })
	if err := base.Sim.RunUntil(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Blocks != 200 {
		t.Fatalf("done=%v blocks=%d, want 200", st.Done, st.Blocks)
	}
	if st.Checksum != pbzip2.ExpectChecksum(cfg) {
		t.Error("output checksum mismatch")
	}
	if len(st.BlockTimes) != 200 {
		t.Errorf("recorded %d block times", len(st.BlockTimes))
	}
}

func TestReplicatedOutputsIdentical(t *testing.T) {
	sys, err := core.NewSystem(core.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	var pst, sst pbzip2.Stats
	sys.Primary.NS.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, cfg, &pst) })
	sys.Secondary.NS.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, cfg, &sst) })
	if err := sys.Sim.RunUntil(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if !pst.Done || !sst.Done {
		t.Fatalf("done: primary=%v secondary=%v", pst.Done, sst.Done)
	}
	want := pbzip2.ExpectChecksum(cfg)
	if pst.Checksum != want || sst.Checksum != want {
		t.Errorf("checksums %x / %x, want %x", pst.Checksum, sst.Checksum, want)
	}
	if div := sys.Secondary.NS.Stats().Divergences; div != 0 {
		t.Errorf("%d replay divergences", div)
	}
}

func TestSurvivesPrimaryFailureMidCompression(t *testing.T) {
	sys, err := core.NewSystem(core.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	cfg.MaxBlocks = 600
	var pst, sst pbzip2.Stats
	sys.Primary.NS.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, cfg, &pst) })
	sys.Secondary.NS.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, cfg, &sst) })
	sys.InjectPrimaryFailure(100*time.Millisecond, 0)
	if err := sys.Sim.RunUntil(sim.Time(time.Minute)); err != nil {
		t.Fatal(err)
	}
	if pst.Done {
		t.Skip("primary finished before the injected failure")
	}
	if !sst.Done || sst.Checksum != pbzip2.ExpectChecksum(cfg) {
		t.Fatalf("secondary did not complete identical output after failover: done=%v", sst.Done)
	}
}
