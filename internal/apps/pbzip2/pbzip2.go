// Package pbzip2 reimplements the thread structure of the PBZIP2 parallel
// file compressor used in the paper's compute-performance evaluation
// (§4.1): a producer thread reads the input file and splits it into
// equal-sized blocks pushed into a shared queue; a configurable number of
// worker threads dequeue blocks, compress them, and push the results into
// an output queue; a writer thread reorders completed blocks and writes
// the compressed file. The queues are protected by Pthreads locks and the
// producer notifies consumers through condition variables — exactly the
// synchronization pattern whose replication cost Figure 4/5 measures.
//
// Compression itself is modelled as measured CPU time proportional to the
// block size (the replication overhead the paper studies comes from the
// synchronization ops, not from bzip2's arithmetic); block payloads carry
// a deterministic checksum so output integrity remains verifiable.
package pbzip2

import (
	"time"

	"repro/internal/pthread"
	"repro/internal/replication"
	"repro/internal/sim"
)

// Config parameterizes a compression run.
type Config struct {
	// FileSize is the input size (1 GB in the paper).
	FileSize int64
	// BlockSize is the split granularity — Figure 4's x-axis.
	BlockSize int
	// Workers is the number of compression threads (32 in the paper).
	Workers int
	// CompressRate is per-core compression speed in bytes/second
	// (bzip2-class: a few MB/s on the evaluation machine's cores).
	CompressRate float64
	// ReadRate / WriteRate bound the producer and writer threads.
	ReadRate, WriteRate float64
	// QueueCap is the shared queue capacity in blocks.
	QueueCap int
	// MaxBlocks truncates the run after this many blocks (0 = whole file);
	// benchmarks use it to bound simulated work per sweep point.
	MaxBlocks int
	// CommitEvery makes the writer request output commit every N written
	// blocks — modelling fsync/flush points on the compressed file. 0
	// disables it (the pure-compute configuration of Figure 4). The commit
	// is asynchronous: the writer keeps going and the wait shows up in the
	// recorder's commit-wait histogram, not in the block times.
	CommitEvery int
}

// DefaultConfig matches the paper's setup.
func DefaultConfig() Config {
	return Config{
		FileSize:     1 << 30,
		BlockSize:    100 << 10,
		Workers:      32,
		CompressRate: 3 << 20,
		ReadRate:     400 << 20,
		WriteRate:    400 << 20,
		QueueCap:     64,
	}
}

// Stats reports a run's outcome. BlockTimes records the completion time of
// every block (written-out order), from which burst and sustained
// throughput are derived.
type Stats struct {
	Blocks     int
	Checksum   uint64
	Done       bool
	FinishedAt sim.Time
	BlockTimes []sim.Time
}

// block is one unit of work.
type block struct {
	seq  int
	size int
	sum  uint64
}

// queue is PBZIP2's shared block queue: a bounded buffer protected by a
// Pthreads mutex with notFull/notEmpty condition variables. The consumer
// side broadcasts, so competing workers wake, race, and re-wait — the
// retry behaviour behind the super-linear message growth of Figure 5.
type queue struct {
	mu       *pthread.Mutex
	notEmpty *pthread.Cond
	notFull  *pthread.Cond
	buf      []*block
	cap      int
	closed   bool
}

func newQueue(lib *pthread.Lib, capacity int) *queue {
	return &queue{
		mu:       lib.NewMutex(),
		notEmpty: lib.NewCond(),
		notFull:  lib.NewCond(),
		cap:      capacity,
	}
}

func (q *queue) push(th *replication.Thread, b *block) {
	t := th.Task()
	q.mu.Lock(t)
	for len(q.buf) >= q.cap {
		q.notFull.Wait(t, q.mu)
	}
	q.buf = append(q.buf, b)
	q.notEmpty.Broadcast(t)
	q.mu.Unlock(t)
}

// pop returns the next block, or nil when the queue is closed and drained.
func (q *queue) pop(th *replication.Thread) *block {
	t := th.Task()
	q.mu.Lock(t)
	for len(q.buf) == 0 && !q.closed {
		q.notEmpty.Wait(t, q.mu)
	}
	if len(q.buf) == 0 {
		q.mu.Unlock(t)
		return nil
	}
	b := q.buf[0]
	q.buf = q.buf[1:]
	q.notFull.Signal(t)
	q.mu.Unlock(t)
	return b
}

func (q *queue) close(th *replication.Thread) {
	t := th.Task()
	q.mu.Lock(t)
	q.closed = true
	q.notEmpty.Broadcast(t)
	q.mu.Unlock(t)
}

// checksum is the deterministic "compression" of a block's content.
func checksum(seq, size int) uint64 {
	x := uint64(seq)*0x9e3779b97f4a7c15 + uint64(size)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return x
}

// Run executes the compressor as the replicated application's root thread.
func Run(th *replication.Thread, cfg Config, st *Stats) {
	lib := th.Lib()
	inQ := newQueue(lib, cfg.QueueCap)
	outQ := newQueue(lib, cfg.QueueCap)

	nBlocks := int((cfg.FileSize + int64(cfg.BlockSize) - 1) / int64(cfg.BlockSize))
	if cfg.MaxBlocks > 0 && nBlocks > cfg.MaxBlocks {
		nBlocks = cfg.MaxBlocks
	}

	producer := th.NS().SpawnThread(th, "producer", func(p *replication.Thread) {
		readTime := time.Duration(float64(cfg.BlockSize) / cfg.ReadRate * float64(time.Second))
		for seq := 0; seq < nBlocks; seq++ {
			p.Task().Compute(readTime)
			inQ.push(p, &block{seq: seq, size: cfg.BlockSize})
		}
		inQ.close(p)
	})

	var workers []*replication.Thread
	for i := 0; i < cfg.Workers; i++ {
		workers = append(workers, th.NS().SpawnThread(th, "worker", func(w *replication.Thread) {
			compress := time.Duration(float64(cfg.BlockSize) / cfg.CompressRate * float64(time.Second))
			for {
				b := inQ.pop(w)
				if b == nil {
					return
				}
				w.Task().Compute(compress)
				b.sum = checksum(b.seq, b.size)
				outQ.push(w, b)
			}
		}))
	}

	writer := th.NS().SpawnThread(th, "writer", func(w *replication.Thread) {
		writeTime := time.Duration(float64(cfg.BlockSize) / cfg.WriteRate * float64(time.Second))
		reorder := make(map[int]*block)
		next := 0
		for next < nBlocks {
			b := outQ.pop(w)
			if b == nil {
				return
			}
			reorder[b.seq] = b
			for done, ok := reorder[next]; ok; done, ok = reorder[next] {
				delete(reorder, next)
				w.Task().Compute(writeTime)
				st.Checksum ^= done.sum
				st.Blocks++
				st.BlockTimes = append(st.BlockTimes, w.Task().Now())
				next++
				if cfg.CommitEvery > 0 && next%cfg.CommitEvery == 0 {
					w.NS().OnStable(func() {})
				}
			}
		}
	})

	th.Join(producer)
	for _, w := range workers {
		th.Join(w)
	}
	outQ.close(th)
	th.Join(writer)
	st.Done = true
	st.FinishedAt = th.Task().Now()
}

// ExpectChecksum returns the checksum a complete run must produce.
func ExpectChecksum(cfg Config) uint64 {
	nBlocks := int((cfg.FileSize + int64(cfg.BlockSize) - 1) / int64(cfg.BlockSize))
	if cfg.MaxBlocks > 0 && nBlocks > cfg.MaxBlocks {
		nBlocks = cfg.MaxBlocks
	}
	var sum uint64
	for seq := 0; seq < nBlocks; seq++ {
		sum ^= checksum(seq, cfg.BlockSize)
	}
	return sum
}
