// Package pthread implements the Pthreads synchronization primitives that
// FT-Linux interposes on (§3.2, §3.3): mutexes (lock/trylock), condition
// variables (wait/signal/broadcast/timedwait), and reader-writer locks
// (rdlock/wrlock/tryrdlock/trywrlock) — built on the kernel futex.
//
// Every interposed operation runs its order-sensitive state update inside a
// "deterministic section" provided by a Det implementation — the analogue
// of FT-Linux's __det_start/__det_end system calls wrapped around the
// re-implemented Glibc primitives loaded via LD_PRELOAD. The replication
// package supplies recording (primary) and replaying (secondary)
// implementations; Passthrough is the unreplicated (stock Ubuntu) baseline.
//
// The design keeps deterministic sections short and non-blocking: a lock
// operation either acquires immediately or enqueues itself FIFO inside the
// section, then parks on the futex outside it. Hand-off on unlock follows
// the queue, so the acquisition order on the secondary reproduces the
// primary's exactly — the property the paper obtains by making the futex
// queue FIFO. Setting the kernel's FutexFIFO parameter to false restores
// stock unordered wake-up and demonstrably breaks replay determinism.
package pthread

import (
	"fmt"
	"time"

	"repro/internal/kernel"
)

// Op identifies an interposed Pthreads operation inside a deterministic
// section. The replication layer streams it with each log tuple so the
// secondary can detect replay divergence.
type Op int

const (
	OpMutexLock Op = iota + 1
	OpMutexTrylock
	OpCondWait
	OpCondTimedwait
	OpCondResolve
	OpCondSignal
	OpCondBroadcast
	OpRWRdLock
	OpRWTryRdLock
	OpRWWrLock
	OpRWTryWrLock
	OpSyscall
)

var opNames = map[Op]string{
	OpMutexLock:     "mutex_lock",
	OpMutexTrylock:  "mutex_trylock",
	OpCondWait:      "cond_wait",
	OpCondTimedwait: "cond_timedwait",
	OpCondResolve:   "cond_resolve",
	OpCondSignal:    "cond_signal",
	OpCondBroadcast: "cond_broadcast",
	OpRWRdLock:      "rwlock_rdlock",
	OpRWTryRdLock:   "rwlock_tryrdlock",
	OpRWWrLock:      "rwlock_wrlock",
	OpRWTryWrLock:   "rwlock_trywrlock",
	OpSyscall:       "syscall",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Outcome codes recorded by Resolve sections.
const (
	OutcomeSignaled uint64 = iota + 1
	OutcomeTimedOut
)

// Det provides the deterministic-section protocol around interposed
// operations. Implementations: Passthrough (no replication), the
// replication package's recorder (primary) and replayer (secondary).
type Det interface {
	// Section runs fn as one deterministic section: the state update of a
	// single interposed operation by thread t on object obj. fn must not
	// block. On the primary, sections are serialized by the namespace-wide
	// global mutex and their order is streamed to the secondary; on the
	// secondary, Section blocks until it is this thread's turn.
	Section(t *kernel.Task, op Op, obj uint64, fn func())

	// Resolve handles operations whose outcome the primary cannot predict
	// (a timed wait racing a signal, a syscall result). On the primary it
	// runs block (which parks until the outcome is known), then runs settle
	// inside a deterministic section and records the returned outcome. On
	// the secondary it skips block entirely, waits for the thread's turn,
	// runs settle, and verifies the outcome matches the primary's.
	Resolve(t *kernel.Task, op Op, obj uint64, block func(), settle func() uint64) uint64
}

// Passthrough is the no-replication Det: sections run immediately and
// resolves just block locally. It models the stock Ubuntu baseline.
type Passthrough struct{}

var _ Det = Passthrough{}

// Section runs fn directly.
func (Passthrough) Section(_ *kernel.Task, _ Op, _ uint64, fn func()) { fn() }

// Resolve blocks locally and settles locally.
func (Passthrough) Resolve(_ *kernel.Task, _ Op, _ uint64, block func(), settle func() uint64) uint64 {
	block()
	return settle()
}

// Lib is one process's Pthreads library instance: the analogue of the
// LD_PRELOAD-ed replacement library, bound to a kernel and a Det.
type Lib struct {
	kern   *kernel.Kernel
	det    Det
	opCost time.Duration
	nextID uint64
}

// NewLib creates a Pthreads library on kernel k interposed by det. A nil
// det means Passthrough.
func NewLib(k *kernel.Kernel, det Det) *Lib {
	if det == nil {
		det = Passthrough{}
	}
	return &Lib{kern: k, det: det, opCost: 200 * time.Nanosecond}
}

// Kernel returns the kernel the library runs on.
func (l *Lib) Kernel() *kernel.Kernel { return l.kern }

// Det returns the library's deterministic-section provider.
func (l *Lib) Det() Det { return l.det }

// SetOpCost overrides the CPU cost charged per Pthreads operation.
func (l *Lib) SetOpCost(d time.Duration) { l.opCost = d }

func (l *Lib) charge(t *kernel.Task) {
	t.Busy(l.opCost)
}

func (l *Lib) newID() uint64 {
	l.nextID++
	return l.nextID
}

// ShardOf maps a sequencing-object key to one of shards det-section locks.
// A Fibonacci multiplicative hash spreads the small, dense ids produced by
// newID across shards so that adjacent objects (a condvar and the mutex
// created next to it) usually land on different locks. The mapping is a
// pure function of (key, shards): both replicas, the checkpoint verifier
// and the benchmarks compute the same placement independently.
func ShardOf(key uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int((key * 0x9e3779b97f4a7c15) >> 32 % uint64(shards))
}

// fifo reports whether hand-off order follows the paper's FIFO-futex
// modification; when false, a deterministically-random waiter is chosen,
// modelling stock futex wake order.
func (l *Lib) fifo() bool { return l.kern.Params().FutexFIFO }

func (l *Lib) pickWaiter(n int) int {
	if l.fifo() || n == 1 {
		return 0
	}
	return l.kern.Sim().Rand().Intn(n)
}

// waiter is one task parked on a synchronization object. Each waiter gets a
// private futex key plus a granted flag, the usual futex-word protocol: a
// grant that lands before the park is not lost.
type waiter struct {
	task    *kernel.Task
	key     uint64
	granted bool
}

func (l *Lib) newWaiter(t *kernel.Task) *waiter {
	return &waiter{task: t, key: l.kern.NewFutexKey()}
}

// parkUntilGranted parks the calling task until the waiter is granted.
func (w *waiter) parkUntilGranted() {
	for !w.granted {
		w.task.FutexWait(w.key, -1)
	}
}

// grant marks the waiter runnable and wakes it through the futex. waker
// pays the wake cost; a nil waker wakes from scheduler context.
func (w *waiter) grant(k *kernel.Kernel, waker *kernel.Task) {
	w.granted = true
	if waker != nil {
		waker.FutexWake(w.key, 1)
	} else {
		k.FutexWakeRaw(w.key, 1)
	}
}
