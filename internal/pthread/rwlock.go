package pthread

import (
	"fmt"

	"repro/internal/kernel"
)

// rwWaiter is one task queued on an RWLock.
type rwWaiter struct {
	w     *waiter
	write bool
}

// RWLock is an interposed pthread_rwlock_t. Acquisition decisions run in
// deterministic sections; queued waiters are granted strictly in FIFO
// order (readers are granted in consecutive batches), so reader/writer
// admission replays identically on the secondary.
type RWLock struct {
	lib     *Lib
	id      uint64
	readers int
	writer  *kernel.Task
	waiters []*rwWaiter
}

// NewRWLock creates a reader-writer lock.
func (l *Lib) NewRWLock() *RWLock {
	return &RWLock{lib: l, id: l.newID()}
}

// ID returns the lock's object identifier.
func (rw *RWLock) ID() uint64 { return rw.id }

// Readers reports the number of active readers.
func (rw *RWLock) Readers() int { return rw.readers }

// Writer returns the active writer, or nil.
func (rw *RWLock) Writer() *kernel.Task { return rw.writer }

func (rw *RWLock) canRead() bool {
	return rw.writer == nil && len(rw.waiters) == 0
}

func (rw *RWLock) canWrite() bool {
	return rw.writer == nil && rw.readers == 0 && len(rw.waiters) == 0
}

// RdLock acquires the lock for reading (pthread_rwlock_rdlock). A reader
// queues behind any waiting writer, so writers do not starve.
func (rw *RWLock) RdLock(t *kernel.Task) {
	rw.lib.charge(t)
	var w *rwWaiter
	rw.lib.det.Section(t, OpRWRdLock, rw.id, func() {
		if rw.canRead() {
			rw.readers++
			return
		}
		w = &rwWaiter{w: rw.lib.newWaiter(t)}
		rw.waiters = append(rw.waiters, w)
	})
	if w != nil {
		w.w.parkUntilGranted()
	}
}

// TryRdLock attempts a read acquisition without blocking
// (pthread_rwlock_tryrdlock).
func (rw *RWLock) TryRdLock(t *kernel.Task) bool {
	rw.lib.charge(t)
	ok := false
	rw.lib.det.Section(t, OpRWTryRdLock, rw.id, func() {
		if rw.canRead() {
			rw.readers++
			ok = true
		}
	})
	return ok
}

// WrLock acquires the lock for writing (pthread_rwlock_wrlock).
func (rw *RWLock) WrLock(t *kernel.Task) {
	rw.lib.charge(t)
	var w *rwWaiter
	rw.lib.det.Section(t, OpRWWrLock, rw.id, func() {
		if rw.canWrite() {
			rw.writer = t
			return
		}
		w = &rwWaiter{w: rw.lib.newWaiter(t), write: true}
		rw.waiters = append(rw.waiters, w)
	})
	if w != nil {
		w.w.parkUntilGranted()
	}
}

// TryWrLock attempts a write acquisition without blocking
// (pthread_rwlock_trywrlock).
func (rw *RWLock) TryWrLock(t *kernel.Task) bool {
	rw.lib.charge(t)
	ok := false
	rw.lib.det.Section(t, OpRWTryWrLock, rw.id, func() {
		if rw.canWrite() {
			rw.writer = t
			ok = true
		}
	})
	return ok
}

// RdUnlock releases a read acquisition (pthread_rwlock_unlock — not
// interposed).
func (rw *RWLock) RdUnlock(t *kernel.Task) {
	if rw.readers <= 0 {
		panic(fmt.Sprintf("pthread: rwlock %d read-unlock with no readers", rw.id))
	}
	rw.lib.charge(t)
	rw.readers--
	if rw.readers == 0 {
		rw.promote(t)
	}
}

// WrUnlock releases a write acquisition (pthread_rwlock_unlock — not
// interposed).
func (rw *RWLock) WrUnlock(t *kernel.Task) {
	if rw.writer != t {
		panic(fmt.Sprintf("pthread: rwlock %d write-unlock by non-writer %q", rw.id, t.Name()))
	}
	rw.lib.charge(t)
	rw.writer = nil
	rw.promote(t)
}

// promote grants the lock to queued waiters in FIFO order: either the
// writer at the queue head, or the consecutive run of readers up to the
// next writer.
func (rw *RWLock) promote(t *kernel.Task) {
	if len(rw.waiters) == 0 {
		return
	}
	if rw.waiters[0].write {
		w := rw.waiters[0]
		rw.waiters = rw.waiters[1:]
		rw.writer = w.w.task
		w.w.grant(rw.lib.kern, t)
		return
	}
	for len(rw.waiters) > 0 && !rw.waiters[0].write {
		w := rw.waiters[0]
		rw.waiters = rw.waiters[1:]
		rw.readers++
		w.w.grant(rw.lib.kern, t)
	}
}
