package pthread

import (
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
)

func bootLib(t *testing.T, seed int64) (*sim.Simulation, *kernel.Kernel, *Lib) {
	t.Helper()
	s := sim.New(seed)
	m := hw.New(s, hw.Opteron6376x4())
	part, err := m.NewPartition("p", 0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := kernel.DefaultParams()
	params.IdleWakeMin, params.IdleWakeMax = 0, 0 // deterministic timings for tests
	k, err := kernel.Boot(part, kernel.Config{Name: "k", Params: params})
	if err != nil {
		t.Fatal(err)
	}
	return s, k, NewLib(k, nil)
}

func TestMutexExclusion(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	m := lib.NewMutex()
	inCS := 0
	maxCS := 0
	count := 0
	for i := 0; i < 8; i++ {
		k.Spawn("worker", func(tk *kernel.Task) {
			for j := 0; j < 10; j++ {
				m.Lock(tk)
				inCS++
				if inCS > maxCS {
					maxCS = inCS
				}
				tk.Compute(100 * time.Microsecond)
				count++
				inCS--
				m.Unlock(tk)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxCS != 1 {
		t.Errorf("max concurrent critical sections = %d, want 1", maxCS)
	}
	if count != 80 {
		t.Errorf("count = %d, want 80", count)
	}
	if m.Locked() {
		t.Error("mutex still locked at end")
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	m := lib.NewMutex()
	var order []int
	k.Spawn("holder", func(tk *kernel.Task) {
		m.Lock(tk)
		tk.Sleep(10 * time.Millisecond) // let waiters queue in index order
		m.Unlock(tk)
	})
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("waiter", func(tk *kernel.Task) {
			tk.Sleep(time.Duration(i+1) * time.Millisecond)
			m.Lock(tk)
			order = append(order, i)
			m.Unlock(tk)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("acquisition order %v, want FIFO", order)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	m := lib.NewMutex()
	k.Spawn("main", func(tk *kernel.Task) {
		if !m.TryLock(tk) {
			t.Error("TryLock on free mutex failed")
		}
		if m.TryLock(tk) {
			t.Error("TryLock on held mutex succeeded")
		}
		m.Unlock(tk)
		if !m.TryLock(tk) {
			t.Error("TryLock after unlock failed")
		}
		m.Unlock(tk)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMutexUnlockByNonOwnerPanics(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	m := lib.NewMutex()
	k.Spawn("a", func(tk *kernel.Task) {
		m.Lock(tk)
		tk.Sleep(10 * time.Millisecond)
		m.Unlock(tk)
	})
	k.Spawn("b", func(tk *kernel.Task) {
		tk.Sleep(time.Millisecond)
		m.Unlock(tk) // not the owner: must panic
	})
	defer func() {
		if recover() == nil {
			t.Error("unlock by non-owner did not panic")
		}
	}()
	_ = s.Run()
}

func TestCondWaitSignal(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	m := lib.NewMutex()
	c := lib.NewCond()
	queue := 0
	consumed := 0
	for i := 0; i < 3; i++ {
		k.Spawn("consumer", func(tk *kernel.Task) {
			m.Lock(tk)
			for queue == 0 {
				c.Wait(tk, m)
			}
			queue--
			consumed++
			m.Unlock(tk)
		})
	}
	k.Spawn("producer", func(tk *kernel.Task) {
		for i := 0; i < 3; i++ {
			tk.Sleep(time.Millisecond)
			m.Lock(tk)
			queue++
			c.Signal(tk)
			m.Unlock(tk)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if consumed != 3 {
		t.Errorf("consumed = %d, want 3", consumed)
	}
	if c.Waiters() != 0 {
		t.Errorf("cond still has %d waiters", c.Waiters())
	}
}

func TestCondBroadcast(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	m := lib.NewMutex()
	c := lib.NewCond()
	ready := false
	woken := 0
	for i := 0; i < 6; i++ {
		k.Spawn("waiter", func(tk *kernel.Task) {
			m.Lock(tk)
			for !ready {
				c.Wait(tk, m)
			}
			woken++
			m.Unlock(tk)
		})
	}
	k.Spawn("broadcaster", func(tk *kernel.Task) {
		tk.Sleep(5 * time.Millisecond)
		m.Lock(tk)
		ready = true
		c.Broadcast(tk)
		m.Unlock(tk)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 6 {
		t.Errorf("woken = %d, want 6", woken)
	}
}

func TestCondTimedWaitTimeout(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	m := lib.NewMutex()
	c := lib.NewCond()
	var signaled bool
	var wokeAt sim.Time
	k.Spawn("waiter", func(tk *kernel.Task) {
		m.Lock(tk)
		signaled = c.TimedWait(tk, m, 5*time.Millisecond)
		wokeAt = tk.Now()
		m.Unlock(tk)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if signaled {
		t.Error("TimedWait reported signaled, want timeout")
	}
	if wokeAt < sim.Time(5*time.Millisecond) || wokeAt > sim.Time(6*time.Millisecond) {
		t.Errorf("woke at %v, want ~5ms", wokeAt)
	}
	if c.Waiters() != 0 {
		t.Error("timed-out waiter still enqueued")
	}
}

func TestCondTimedWaitSignaledInTime(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	m := lib.NewMutex()
	c := lib.NewCond()
	var signaled bool
	k.Spawn("waiter", func(tk *kernel.Task) {
		m.Lock(tk)
		signaled = c.TimedWait(tk, m, time.Hour)
		m.Unlock(tk)
	})
	k.Spawn("signaler", func(tk *kernel.Task) {
		tk.Sleep(2 * time.Millisecond)
		m.Lock(tk)
		c.Signal(tk)
		m.Unlock(tk)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !signaled {
		t.Error("TimedWait reported timeout, want signaled")
	}
	if s.Pending() != 0 {
		t.Errorf("%d events pending (timer not cancelled?)", s.Pending())
	}
}

func TestCondSignalNoWaiters(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	m := lib.NewMutex()
	c := lib.NewCond()
	k.Spawn("signaler", func(tk *kernel.Task) {
		m.Lock(tk)
		c.Signal(tk) // must not panic or wake anything
		c.Broadcast(tk)
		m.Unlock(tk)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRWLockConcurrentReaders(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	rw := lib.NewRWLock()
	maxReaders := 0
	for i := 0; i < 4; i++ {
		k.Spawn("reader", func(tk *kernel.Task) {
			rw.RdLock(tk)
			if rw.Readers() > maxReaders {
				maxReaders = rw.Readers()
			}
			tk.Sleep(10 * time.Millisecond)
			rw.RdUnlock(tk)
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if maxReaders != 4 {
		t.Errorf("max concurrent readers = %d, want 4", maxReaders)
	}
}

func TestRWLockWriterExclusion(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	rw := lib.NewRWLock()
	var events []string
	k.Spawn("writer", func(tk *kernel.Task) {
		rw.WrLock(tk)
		events = append(events, "w-in")
		tk.Sleep(10 * time.Millisecond)
		events = append(events, "w-out")
		rw.WrUnlock(tk)
	})
	k.Spawn("reader", func(tk *kernel.Task) {
		tk.Sleep(time.Millisecond)
		rw.RdLock(tk)
		events = append(events, "r-in")
		rw.RdUnlock(tk)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w-in", "w-out", "r-in"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestRWLockWriterNotStarved(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	rw := lib.NewRWLock()
	var order []string
	k.Spawn("r1", func(tk *kernel.Task) {
		rw.RdLock(tk)
		tk.Sleep(10 * time.Millisecond)
		rw.RdUnlock(tk)
	})
	k.Spawn("writer", func(tk *kernel.Task) {
		tk.Sleep(time.Millisecond)
		rw.WrLock(tk)
		order = append(order, "w")
		rw.WrUnlock(tk)
	})
	// r2 arrives after the writer queued: it must wait behind the writer.
	k.Spawn("r2", func(tk *kernel.Task) {
		tk.Sleep(2 * time.Millisecond)
		rw.RdLock(tk)
		order = append(order, "r2")
		rw.RdUnlock(tk)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "w" || order[1] != "r2" {
		t.Errorf("order = %v, want [w r2]", order)
	}
}

func TestRWLockTryVariants(t *testing.T) {
	s, k, lib := bootLib(t, 1)
	rw := lib.NewRWLock()
	k.Spawn("main", func(tk *kernel.Task) {
		if !rw.TryRdLock(tk) {
			t.Error("TryRdLock on free lock failed")
		}
		if rw.TryWrLock(tk) {
			t.Error("TryWrLock with active reader succeeded")
		}
		if !rw.TryRdLock(tk) {
			t.Error("second TryRdLock failed")
		}
		rw.RdUnlock(tk)
		rw.RdUnlock(tk)
		if !rw.TryWrLock(tk) {
			t.Error("TryWrLock on free lock failed")
		}
		if rw.TryRdLock(tk) {
			t.Error("TryRdLock with active writer succeeded")
		}
		rw.WrUnlock(tk)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestMutexExclusionManySeeds property-tests mutual exclusion and progress
// across random schedules induced by different seeds and idle-wake noise.
func TestMutexExclusionManySeeds(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		s, k, lib := bootLib(t, seed)
		m := lib.NewMutex()
		c := lib.NewCond()
		inCS, done := 0, 0
		for i := 0; i < 6; i++ {
			k.Spawn("w", func(tk *kernel.Task) {
				for j := 0; j < 5; j++ {
					tk.Compute(time.Duration(tk.Kernel().Sim().Rand().Intn(200)) * time.Microsecond)
					m.Lock(tk)
					if inCS != 0 {
						t.Errorf("seed %d: mutual exclusion violated", seed)
					}
					inCS++
					if tk.Kernel().Sim().Rand().Intn(2) == 0 {
						c.Signal(tk)
					}
					inCS--
					m.Unlock(tk)
				}
				done++
			})
		}
		if err := s.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if done != 6 {
			t.Fatalf("seed %d: %d workers finished, want 6", seed, done)
		}
	}
}
