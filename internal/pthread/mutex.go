package pthread

import (
	"fmt"

	"repro/internal/kernel"
)

// Mutex is an interposed pthread_mutex_t. The acquire-or-enqueue decision
// runs inside a deterministic section; parked waiters are granted the lock
// on unlock in queue order (FIFO under the paper's futex modification), so
// the acquisition sequence replays identically on the secondary.
type Mutex struct {
	lib     *Lib
	id      uint64
	locked  bool
	owner   *kernel.Task
	waiters []*waiter
}

// NewMutex creates a mutex.
func (l *Lib) NewMutex() *Mutex {
	return &Mutex{lib: l, id: l.newID()}
}

// ID returns the mutex's object identifier (its "address" in det logs).
func (m *Mutex) ID() uint64 { return m.id }

// Locked reports whether the mutex is held.
func (m *Mutex) Locked() bool { return m.locked }

// Owner returns the holding task, or nil.
func (m *Mutex) Owner() *kernel.Task { return m.owner }

// Lock acquires the mutex for t (pthread_mutex_lock).
func (m *Mutex) Lock(t *kernel.Task) {
	m.lib.charge(t)
	var w *waiter
	m.lib.det.Section(t, OpMutexLock, m.id, func() {
		if !m.locked {
			m.locked = true
			m.owner = t
			return
		}
		w = m.lib.newWaiter(t)
		m.waiters = append(m.waiters, w)
	})
	if w != nil {
		w.parkUntilGranted()
	}
}

// TryLock attempts the lock without blocking (pthread_mutex_trylock),
// reporting whether it was acquired.
func (m *Mutex) TryLock(t *kernel.Task) bool {
	m.lib.charge(t)
	ok := false
	m.lib.det.Section(t, OpMutexTrylock, m.id, func() {
		if !m.locked {
			m.locked = true
			m.owner = t
			ok = true
		}
	})
	return ok
}

// Unlock releases the mutex (pthread_mutex_unlock — NOT interposed, per the
// paper's §3.2 list). If tasks are queued, ownership is handed directly to
// one of them: the queue head under FIFO hand-off, an arbitrary waiter
// under the stock-futex ablation.
func (m *Mutex) Unlock(t *kernel.Task) {
	if m.owner != t {
		panic(fmt.Sprintf("pthread: unlock of mutex %d by non-owner %q", m.id, t.Name()))
	}
	m.lib.charge(t)
	if len(m.waiters) == 0 {
		m.locked = false
		m.owner = nil
		return
	}
	i := m.lib.pickWaiter(len(m.waiters))
	w := m.waiters[i]
	m.waiters = append(m.waiters[:i], m.waiters[i+1:]...)
	m.owner = w.task
	w.grant(m.lib.kern, t)
}
