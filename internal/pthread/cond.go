package pthread

import (
	"time"

	"repro/internal/kernel"
)

// cvWaiter is one task blocked in cond_wait/cond_timedwait.
type cvWaiter struct {
	w          *waiter
	state      uint64 // 0 while waiting, then OutcomeSignaled / OutcomeTimedOut
	timerFired bool
}

// Cond is an interposed pthread_cond_t. Per §3.3, the accesses to the
// internal condition-variable state are protected by deterministic
// sections, which synchronizes the wake-up sequence between primary and
// secondary; the timeout-versus-signal race of cond_timedwait is resolved
// through the deterministic section order and the recorded outcome.
type Cond struct {
	lib     *Lib
	id      uint64
	waiters []*cvWaiter
}

// NewCond creates a condition variable.
func (l *Lib) NewCond() *Cond {
	return &Cond{lib: l, id: l.newID()}
}

// ID returns the condition variable's object identifier.
func (c *Cond) ID() uint64 { return c.id }

// Waiters reports the number of tasks currently enqueued.
func (c *Cond) Waiters() int { return len(c.waiters) }

// Wait releases m, blocks until signaled, and re-acquires m
// (pthread_cond_wait). m must be held by t.
func (c *Cond) Wait(t *kernel.Task, m *Mutex) {
	c.wait(t, m, -1)
}

// TimedWait is Wait with a relative timeout (pthread_cond_timedwait: the
// absolute deadline agrees across replicas because gettimeofday results
// are synchronized, §3.3). It reports true if signaled and false if the
// wait timed out.
func (c *Cond) TimedWait(t *kernel.Task, m *Mutex, d time.Duration) bool {
	return c.wait(t, m, d) == OutcomeSignaled
}

func (c *Cond) wait(t *kernel.Task, m *Mutex, d time.Duration) uint64 {
	c.lib.charge(t)
	cw := &cvWaiter{w: c.lib.newWaiter(t)}
	op := OpCondWait
	if d >= 0 {
		op = OpCondTimedwait
	}
	c.lib.det.Section(t, op, c.id, func() {
		c.waiters = append(c.waiters, cw)
	})
	m.Unlock(t)
	var timer interface{ Cancel() }
	if d >= 0 {
		timer = c.lib.kern.Sim().Schedule(d, func() {
			if cw.state != 0 || cw.timerFired {
				return
			}
			cw.timerFired = true
			cw.w.grant(c.lib.kern, nil)
		})
	}
	out := c.lib.det.Resolve(t, OpCondResolve, c.id,
		func() { cw.w.parkUntilGranted() },
		func() uint64 { return c.settle(cw) })
	if timer != nil {
		timer.Cancel()
	}
	m.Lock(t)
	return out
}

// settle decides the wait's outcome inside a deterministic section. A
// waiter that was signaled (even if its timer also fired) consumes the
// signal; otherwise it removes itself from the queue and reports timeout.
// The mutation runs identically during secondary replay, keeping the
// mirrored queue state consistent.
func (c *Cond) settle(cw *cvWaiter) uint64 {
	if cw.state == OutcomeSignaled {
		return OutcomeSignaled
	}
	for i, x := range c.waiters {
		if x == cw {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			break
		}
	}
	cw.state = OutcomeTimedOut
	return OutcomeTimedOut
}

// Signal wakes one waiter (pthread_cond_signal): the queue head under FIFO
// ordering, an arbitrary waiter under the stock-futex ablation.
func (c *Cond) Signal(t *kernel.Task) {
	c.lib.charge(t)
	c.lib.det.Section(t, OpCondSignal, c.id, func() {
		if len(c.waiters) == 0 {
			return
		}
		i := c.lib.pickWaiter(len(c.waiters))
		cw := c.waiters[i]
		c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
		cw.state = OutcomeSignaled
		cw.w.grant(c.lib.kern, t)
	})
}

// Broadcast wakes every waiter in queue order (pthread_cond_broadcast).
func (c *Cond) Broadcast(t *kernel.Task) {
	c.lib.charge(t)
	c.lib.det.Section(t, OpCondBroadcast, c.id, func() {
		ws := c.waiters
		c.waiters = nil
		for _, cw := range ws {
			cw.state = OutcomeSignaled
			cw.w.grant(c.lib.kern, t)
		}
	})
}
