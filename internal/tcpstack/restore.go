package tcpstack

import "fmt"

// ConnSnapshot is the logical state of one connection — what FT-Linux's
// TCP-stack replication component maintains on the secondary (§3.4) so
// that, upon failover, the new primary can bring its own stack to a state
// indistinguishable from the last externally visible state of the dead
// primary's stack.
type ConnSnapshot struct {
	LocalPort int
	Remote    Addr

	ISS, IRS uint64
	// SndUna is the lowest output stream sequence not acknowledged by the
	// remote client; SndData holds the output bytes starting there that
	// must be retransmittable after failover.
	SndUna  uint64
	SndData []byte
	// RcvNxt is the next expected input sequence; RcvData holds input
	// bytes acknowledged to the client but not yet consumed by the
	// application.
	RcvNxt  uint64
	RcvData []byte
	PeerFin bool
	SndWnd  int
}

// Snapshot captures the connection's logical state. Buffers are copied.
func (c *Conn) Snapshot() ConnSnapshot {
	snd := make([]byte, len(c.sndBuf))
	copy(snd, c.sndBuf)
	rcv := make([]byte, len(c.rcvBuf))
	copy(rcv, c.rcvBuf)
	return ConnSnapshot{
		LocalPort: c.key.localPort,
		Remote:    c.RemoteAddr(),
		ISS:       c.iss,
		IRS:       c.irs,
		SndUna:    c.sndUna,
		SndData:   snd,
		RcvNxt:    c.rcvNxt,
		RcvData:   rcv,
		PeerFin:   c.peerFin,
		SndWnd:    c.SndWnd(),
	}
}

// SndWnd returns the peer's advertised window (exported for snapshots).
func (c *Conn) SndWnd() int { return c.sndWnd }

// Restore materializes an ESTABLISHED connection from a snapshot in this
// stack — the failover promotion path. The caller should Kick the returned
// connection once the NIC is operational.
func (s *Stack) Restore(cs ConnSnapshot) (*Conn, error) {
	key := connKey{localPort: cs.LocalPort, remoteHost: cs.Remote.Host, remotePort: cs.Remote.Port}
	if _, exists := s.conns[key]; exists {
		return nil, fmt.Errorf("tcpstack: restore %v: connection already exists", key)
	}
	c := newConn(s, key, stateEstablished)
	c.iss = cs.ISS
	c.irs = cs.IRS
	c.sndUna = cs.SndUna
	c.sndNxt = cs.SndUna
	c.sndBase = cs.SndUna
	c.sndBuf = append([]byte(nil), cs.SndData...)
	c.rcvNxt = cs.RcvNxt
	c.rcvBuf = append([]byte(nil), cs.RcvData...)
	c.peerFin = cs.PeerFin
	if c.peerFin {
		c.state = stateCloseWait
	}
	c.sndWnd = cs.SndWnd
	if c.sndWnd <= 0 {
		c.sndWnd = s.params.RecvBuf
	}
	s.conns[key] = c
	return c, nil
}
