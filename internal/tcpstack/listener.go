package tcpstack

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Listener is a passive socket accepting connections on a port.
type Listener struct {
	stack   *Stack
	port    int
	backlog int
	ready   []*Conn // established, waiting for Accept
	acceptQ *sim.WaitQueue
	closed  bool
	pollFns []func()
}

// Listen opens a listening socket on the given port.
func (s *Stack) Listen(port, backlog int) (*Listener, error) {
	if _, used := s.listeners[port]; used {
		return nil, fmt.Errorf("listen :%d: %w", port, ErrPortInUse)
	}
	if backlog <= 0 {
		backlog = 128
	}
	l := &Listener{
		stack:   s,
		port:    port,
		backlog: backlog,
		acceptQ: sim.NewWaitQueue(s.kern.Sim()),
	}
	s.listeners[port] = l
	return l, nil
}

// Port returns the listening port.
func (l *Listener) Port() int { return l.port }

// Pending reports established connections waiting to be accepted.
func (l *Listener) Pending() int { return len(l.ready) }

// handleSYN processes an incoming connection request.
func (l *Listener) handleSYN(seg *Segment) {
	if l.closed || len(l.ready) >= l.backlog {
		return // silently drop: the client will retransmit its SYN
	}
	key := connKey{localPort: l.port, remoteHost: seg.Src.Host, remotePort: seg.Src.Port}
	c := newConn(l.stack, key, stateSynRcvd)
	c.iss = l.stack.allocISS()
	c.sndUna = c.iss
	c.sndNxt = c.iss + 1
	c.sndBase = c.iss + 1
	c.irs = seg.Seq
	c.rcvNxt = c.irs + 1
	c.sndWnd = seg.Window
	c.listener = l
	l.stack.conns[key] = c
	c.sendSegment(FlagSYN|FlagACK, c.iss, nil, false)
	c.armRTO()
}

// connReady moves an established connection into the accept queue.
func (l *Listener) connReady(c *Conn) {
	if l.closed {
		c.Abort()
		return
	}
	l.ready = append(l.ready, c)
	l.acceptQ.WakeOne(0)
	l.notifyPoll()
}

// Accept blocks until a connection is established and returns it.
func (l *Listener) Accept(t *kernel.Task) (*Conn, error) {
	t.Syscall()
	for len(l.ready) == 0 {
		if l.closed {
			return nil, ErrClosed
		}
		l.acceptQ.Wait(t.Proc())
	}
	c := l.ready[0]
	l.ready = l.ready[1:]
	return c, nil
}

// Close stops accepting; queued-but-unaccepted connections are reset.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	delete(l.stack.listeners, l.port)
	for _, c := range l.ready {
		c.Abort()
	}
	l.ready = nil
	l.acceptQ.WakeAll(0)
	l.notifyPoll()
}
