package tcpstack

import (
	"time"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// connState is the TCP connection state.
type connState int

const (
	stateSynSent connState = iota + 1
	stateSynRcvd
	stateEstablished
	stateFinWait1
	stateFinWait2
	stateCloseWait
	stateLastAck
	stateClosing
	stateTimeWait
	stateClosed
)

var stateNames = map[connState]string{
	stateSynSent:     "SYN_SENT",
	stateSynRcvd:     "SYN_RCVD",
	stateEstablished: "ESTABLISHED",
	stateFinWait1:    "FIN_WAIT_1",
	stateFinWait2:    "FIN_WAIT_2",
	stateCloseWait:   "CLOSE_WAIT",
	stateLastAck:     "LAST_ACK",
	stateClosing:     "CLOSING",
	stateTimeWait:    "TIME_WAIT",
	stateClosed:      "CLOSED",
}

func (s connState) String() string { return stateNames[s] }

// Conn is one TCP connection endpoint.
type Conn struct {
	stack *Stack
	key   connKey
	state connState
	err   error

	// Send side. sndBuf holds the stream bytes [sndBase, sndBase+len);
	// bytes below sndUna are acknowledged and trimmed.
	iss     uint64
	sndUna  uint64
	sndNxt  uint64
	sndBase uint64
	sndBuf  []byte
	sndWnd  int
	dupAcks int

	// finQueued is set by Close; the FIN occupies sequence finSeq, which is
	// the end of the stream (no data may be appended afterwards).
	finQueued bool
	finSeq    uint64
	closed    bool // local close requested: Send rejected

	// Receive side. rcvBuf holds in-order bytes the application has not
	// read yet, ending at rcvNxt.
	irs     uint64
	rcvNxt  uint64
	rcvBuf  []byte
	peerFin bool

	// Retransmission.
	rto      time.Duration
	rtoTimer *sim.Event
	synTries int

	listener *Listener // set while pending accept (server side)

	connectQ *sim.WaitQueue
	sendQ    *sim.WaitQueue
	recvQ    *sim.WaitQueue
	pollFns  []func()
}

func newConn(s *Stack, key connKey, st connState) *Conn {
	return &Conn{
		stack:    s,
		key:      key,
		state:    st,
		sndWnd:   s.params.RecvBuf,
		rto:      s.params.RTOMin,
		connectQ: sim.NewWaitQueue(s.kern.Sim()),
		sendQ:    sim.NewWaitQueue(s.kern.Sim()),
		recvQ:    sim.NewWaitQueue(s.kern.Sim()),
	}
}

// LocalAddr returns the connection's local address.
func (c *Conn) LocalAddr() Addr { return Addr{Host: c.stack.host, Port: c.key.localPort} }

// RemoteAddr returns the connection's remote address.
func (c *Conn) RemoteAddr() Addr { return Addr{Host: c.key.remoteHost, Port: c.key.remotePort} }

// State returns the connection state name (for diagnostics and tests).
func (c *Conn) State() string { return c.state.String() }

// Established reports whether the connection is in ESTABLISHED state.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Err returns the connection's terminal error, if any.
func (c *Conn) Err() error { return c.err }

// BufferedIn reports bytes received but not yet read by the application.
func (c *Conn) BufferedIn() int { return len(c.rcvBuf) }

// BufferedOut reports stream bytes not yet acknowledged by the peer.
func (c *Conn) BufferedOut() int { return len(c.sndBuf) }

func (c *Conn) recvWindow() int { return c.stack.params.RecvBuf - len(c.rcvBuf) }

func (c *Conn) dataEnd() uint64 { return c.sndBase + uint64(len(c.sndBuf)) }

// sendSegment emits one segment through the egress gate.
func (c *Conn) sendSegment(flags Flags, seq uint64, data []byte, probe bool) {
	seg := &Segment{
		Src:    c.LocalAddr(),
		Dst:    c.RemoteAddr(),
		Seq:    seq,
		Flags:  flags,
		Window: c.recvWindow(),
		Probe:  probe,
		Data:   data,
	}
	if flags.Has(FlagACK) {
		seg.Ack = c.rcvNxt
	}
	c.stack.transmit(seg)
}

func (c *Conn) sendAck() { c.sendSegment(FlagACK, c.sndNxt, nil, false) }

// trySend transmits as much pending data as the peer's window allows,
// followed by the FIN once the stream is fully transmitted.
func (c *Conn) trySend() {
	for {
		wndEnd := c.sndUna + uint64(c.sndWnd)
		end := c.dataEnd()
		if c.sndNxt < end && c.sndNxt < wndEnd {
			n := end - c.sndNxt
			if max := uint64(c.stack.params.MSS); n > max {
				n = max
			}
			if room := wndEnd - c.sndNxt; n > room {
				n = room
			}
			off := c.sndNxt - c.sndBase
			data := make([]byte, n)
			copy(data, c.sndBuf[off:off+n])
			c.sendSegment(FlagACK, c.sndNxt, data, false)
			c.sndNxt += n
			c.armRTO()
			continue
		}
		if c.finQueued && c.sndNxt == c.finSeq {
			c.sendSegment(FlagFIN|FlagACK, c.sndNxt, nil, false)
			c.sndNxt++
			c.armRTO()
		}
		return
	}
}

func (c *Conn) armRTO() {
	if c.rtoTimer != nil {
		return
	}
	c.rtoTimer = c.stack.kern.Sim().Schedule(c.rto, c.onRTO)
}

func (c *Conn) resetRTO() {
	if c.rtoTimer != nil {
		c.rtoTimer.Cancel()
		c.rtoTimer = nil
	}
	if c.sndUna < c.sndNxt {
		c.armRTO()
	}
}

func (c *Conn) onRTO() {
	c.rtoTimer = nil
	switch c.state {
	case stateClosed, stateTimeWait:
		return
	case stateSynSent:
		c.synTries++
		if c.synTries > c.stack.params.SynRetries {
			c.fail(ErrTimeout)
			return
		}
		c.sendSegment(FlagSYN, c.iss, nil, false)
	case stateSynRcvd:
		c.sendSegment(FlagSYN|FlagACK, c.iss, nil, false)
	default:
		if c.sndUna < c.sndNxt {
			// Go-back-N: rewind and retransmit the window.
			c.sndNxt = c.sndUna
			c.trySend()
		} else if c.sndWnd == 0 && (len(c.sndBuf) > 0 || c.finQueued) {
			// Zero-window probe.
			c.sendSegment(FlagACK, c.sndNxt, nil, true)
		} else {
			return
		}
	}
	if c.rto *= 2; c.rto > c.stack.params.RTOMax {
		c.rto = c.stack.params.RTOMax
	}
	c.armRTO()
}

// handleSegment is the TCP input routine.
func (c *Conn) handleSegment(seg *Segment) {
	if c.state == stateClosed {
		return
	}
	if seg.Flags.Has(FlagRST) {
		c.fail(ErrReset)
		return
	}
	if c.state == stateSynSent {
		if seg.Flags.Has(FlagSYN|FlagACK) && seg.Ack == c.iss+1 {
			c.irs = seg.Seq
			c.rcvNxt = c.irs + 1
			c.sndUna = seg.Ack
			c.sndBase = seg.Ack
			c.sndWnd = seg.Window
			c.establish()
			c.sendAck()
		}
		return
	}
	if seg.Flags.Has(FlagSYN) && c.state == stateSynRcvd {
		// Duplicate SYN: our SYN+ACK was lost.
		c.sendSegment(FlagSYN|FlagACK, c.iss, nil, false)
		return
	}
	if seg.Flags.Has(FlagACK) {
		c.handleAck(seg)
	}
	if c.state == stateClosed {
		return
	}
	if len(seg.Data) > 0 {
		c.handleData(seg)
	}
	if seg.Flags.Has(FlagFIN) {
		c.handleFin(seg)
	}
	if seg.Probe {
		c.sendAck()
	}
}

func (c *Conn) handleAck(seg *Segment) {
	c.sndWnd = seg.Window
	switch {
	case seg.Ack > c.sndUna && seg.Ack <= c.sndNxt:
		if c.state == stateSynRcvd {
			c.establish()
		}
		if seg.Ack > c.sndBase {
			n := seg.Ack - c.sndBase
			if n > uint64(len(c.sndBuf)) {
				n = uint64(len(c.sndBuf))
			}
			c.sndBuf = c.sndBuf[n:]
			c.sndBase += n
		}
		c.sndUna = seg.Ack
		c.dupAcks = 0
		c.rto = c.stack.params.RTOMin
		c.resetRTO()
		c.sendQ.WakeAll(0)
		c.notifyPoll()
		if c.stack.OnAckIn != nil {
			c.stack.OnAckIn(c, c.OutAcked())
		}
		if c.finQueued && c.sndUna == c.finSeq+1 {
			c.ourFinAcked()
		}
	case seg.Ack == c.sndUna && c.sndUna < c.sndNxt:
		c.dupAcks++
		if c.dupAcks == 3 {
			c.dupAcks = 0
			c.sndNxt = c.sndUna
		}
	}
	c.trySend()
}

func (c *Conn) handleData(seg *Segment) {
	end := seg.Seq + uint64(len(seg.Data))
	switch {
	case end <= c.rcvNxt || seg.Seq > c.rcvNxt:
		// Duplicate or out-of-order: cumulative ACK re-states rcvNxt.
	default:
		data := seg.Data[c.rcvNxt-seg.Seq:]
		free := c.recvWindow()
		if len(data) > free {
			data = data[:free]
		}
		if len(data) > 0 {
			c.rcvBuf = append(c.rcvBuf, data...)
			c.rcvNxt += uint64(len(data))
			if c.stack.OnDataIn != nil {
				c.stack.OnDataIn(c, data)
			}
			c.recvQ.WakeAll(0)
			c.notifyPoll()
		}
	}
	c.sendAck()
}

func (c *Conn) handleFin(seg *Segment) {
	finSeq := seg.Seq + uint64(len(seg.Data))
	if finSeq != c.rcvNxt {
		c.sendAck() // old duplicate FIN, or FIN beyond a gap
		return
	}
	c.rcvNxt++
	c.peerFin = true
	if c.stack.OnPeerFin != nil {
		c.stack.OnPeerFin(c)
	}
	switch c.state {
	case stateEstablished:
		c.state = stateCloseWait
	case stateFinWait1:
		c.state = stateClosing
	case stateFinWait2:
		c.enterTimeWait()
	}
	c.recvQ.WakeAll(0)
	c.notifyPoll()
	c.sendAck()
}

func (c *Conn) ourFinAcked() {
	switch c.state {
	case stateFinWait1:
		c.state = stateFinWait2
	case stateClosing:
		c.enterTimeWait()
	case stateLastAck:
		c.reap()
	}
}

func (c *Conn) establish() {
	c.state = stateEstablished
	if c.stack.OnEstablished != nil {
		c.stack.OnEstablished(c)
	}
	c.connectQ.WakeAll(0)
	if c.listener != nil {
		c.listener.connReady(c)
		c.listener = nil
	}
	c.notifyPoll()
}

func (c *Conn) enterTimeWait() {
	c.state = stateTimeWait
	c.stack.kern.Sim().Schedule(c.stack.params.TimeWait, func() {
		if c.state == stateTimeWait {
			c.reap()
		}
	})
}

// reap finishes the connection without error.
func (c *Conn) reap() {
	c.state = stateClosed
	if c.rtoTimer != nil {
		c.rtoTimer.Cancel()
		c.rtoTimer = nil
	}
	delete(c.stack.conns, c.key)
	if c.stack.OnReaped != nil {
		c.stack.OnReaped(c)
	}
	c.connectQ.WakeAll(0)
	c.sendQ.WakeAll(0)
	c.recvQ.WakeAll(0)
	c.notifyPoll()
}

// fail terminates the connection with an error (RST received, timeout).
func (c *Conn) fail(err error) {
	if c.state == stateClosed {
		return
	}
	c.err = err
	c.reap()
}

// Send writes data to the connection, blocking until every byte is
// accepted into the send buffer. It returns the number of bytes written.
func (c *Conn) Send(t *kernel.Task, data []byte) (int, error) {
	t.Syscall()
	written := 0
	for written < len(data) {
		if c.err != nil {
			return written, c.err
		}
		if c.closed || c.state == stateClosed {
			return written, ErrClosed
		}
		free := c.stack.params.SendBuf - len(c.sndBuf)
		if free == 0 {
			c.sendQ.Wait(t.Proc())
			continue
		}
		n := len(data) - written
		if n > free {
			n = free
		}
		c.sndBuf = append(c.sndBuf, data[written:written+n]...)
		written += n
		if cost := c.stack.params.SegmentCPU; cost > 0 {
			segs := (n + c.stack.params.MSS - 1) / c.stack.params.MSS
			t.Busy(time.Duration(segs) * cost)
		}
		c.trySend()
	}
	return written, nil
}

// Recv reads up to max bytes, blocking until data is available. It returns
// EOF once the peer has closed and all data has been consumed.
func (c *Conn) Recv(t *kernel.Task, max int) ([]byte, error) {
	t.Syscall()
	for len(c.rcvBuf) == 0 {
		if c.err != nil {
			return nil, c.err
		}
		if c.peerFin {
			return nil, EOF
		}
		if c.state == stateClosed {
			return nil, ErrClosed
		}
		c.recvQ.Wait(t.Proc())
	}
	n := len(c.rcvBuf)
	if n > max {
		n = max
	}
	out := make([]byte, n)
	copy(out, c.rcvBuf[:n])
	wasFull := c.recvWindow() == 0
	c.rcvBuf = c.rcvBuf[n:]
	if cost := c.stack.params.SegmentCPU; cost > 0 {
		segs := (n + c.stack.params.MSS - 1) / c.stack.params.MSS
		t.Busy(time.Duration(segs) * cost)
	}
	if wasFull {
		c.sendAck() // window update: reopen the peer's send window
	}
	return out, nil
}

// Close initiates an orderly shutdown: the FIN goes out after all buffered
// data. Further Sends fail with ErrClosed; Recv continues to drain.
func (c *Conn) Close(t *kernel.Task) error {
	t.Syscall()
	if c.closed {
		return nil
	}
	c.closed = true
	switch c.state {
	case stateEstablished:
		c.state = stateFinWait1
	case stateCloseWait:
		c.state = stateLastAck
	case stateSynSent, stateSynRcvd:
		c.reap()
		return nil
	default:
		return nil
	}
	c.finQueued = true
	c.finSeq = c.dataEnd()
	c.trySend()
	c.notifyPoll()
	return nil
}

// Abort terminates the connection immediately, sending an RST.
func (c *Conn) Abort() {
	if c.state == stateClosed {
		return
	}
	c.sendSegment(FlagRST|FlagACK, c.sndNxt, nil, false)
	c.fail(ErrClosed)
}

// ISS returns the initial send sequence number.
func (c *Conn) ISS() uint64 { return c.iss }

// IRS returns the peer's initial sequence number.
func (c *Conn) IRS() uint64 { return c.irs }

// InStream reports how many input-stream bytes have been received in order
// (and acknowledged or about to be acknowledged to the peer).
func (c *Conn) InStream() uint64 {
	if c.rcvNxt == 0 {
		return 0
	}
	n := c.rcvNxt - c.irs - 1
	if c.peerFin {
		n-- // the FIN consumed one sequence number
	}
	return n
}

// OutAcked reports how many output-stream bytes the peer has acknowledged.
func (c *Conn) OutAcked() uint64 {
	if c.sndUna <= c.iss {
		return 0
	}
	n := c.sndUna - c.iss - 1
	if c.finQueued && c.sndUna == c.finSeq+1 {
		n-- // the FIN consumed one sequence number
	}
	return n
}

// PeerFin reports whether the peer's FIN has been accepted.
func (c *Conn) PeerFin() bool { return c.peerFin }

// Kick re-arms transmission after a Restore: it retransmits unacknowledged
// data from sndUna and re-announces the receive window, so both directions
// resynchronize with the peer after failover.
func (c *Conn) Kick() {
	if c.state == stateClosed {
		return
	}
	c.sndNxt = c.sndUna
	c.dupAcks = 0
	c.trySend()
	c.sendAck()
}
