package tcpstack

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// pair is a client and server machine joined by a link.
type pair struct {
	sim            *sim.Simulation
	serverK        *kernel.Kernel
	clientK        *kernel.Kernel
	server, client *Stack
	serverNIC      *simnet.NIC
	clientNIC      *simnet.NIC
	link           *simnet.Link
}

func newPair(t *testing.T, seed int64, params Params) *pair {
	t.Helper()
	s := sim.New(seed)
	m := hw.New(s, hw.Opteron6376x4())
	sp, err := m.NewPartition("server", 0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := m.NewPartition("client", 4, 5, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	sk, err := kernel.Boot(sp, kernel.Config{Name: "server", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := kernel.Boot(cp, kernel.Config{Name: "client", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	snic := simnet.NewNIC("server", nil)
	cnic := simnet.NewNIC("client", nil)
	link, err := simnet.Connect(s, cnic, snic, simnet.GigabitEthernet())
	if err != nil {
		t.Fatal(err)
	}
	ss := New(sk, "server", params)
	cs := New(ck, "client", params)
	ss.Attach(snic)
	cs.Attach(cnic)
	return &pair{
		sim: s, serverK: sk, clientK: ck,
		server: ss, client: cs,
		serverNIC: snic, clientNIC: cnic, link: link,
	}
}

func TestHandshakeAndEcho(t *testing.T) {
	p := newPair(t, 1, DefaultParams())
	l, err := p.server.Listen(80, 16)
	if err != nil {
		t.Fatal(err)
	}
	p.serverK.Spawn("server", func(tk *kernel.Task) {
		c, err := l.Accept(tk)
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		data, err := c.Recv(tk, 1024)
		if err != nil {
			t.Errorf("server Recv: %v", err)
			return
		}
		if _, err := c.Send(tk, append([]byte("echo:"), data...)); err != nil {
			t.Errorf("server Send: %v", err)
		}
		_ = c.Close(tk)
	})
	var got []byte
	p.clientK.Spawn("client", func(tk *kernel.Task) {
		c, err := p.client.Connect(tk, Addr{Host: "server", Port: 80})
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		if !c.Established() {
			t.Error("client conn not established after Connect")
		}
		if _, err := c.Send(tk, []byte("hello")); err != nil {
			t.Errorf("client Send: %v", err)
		}
		for {
			data, err := c.Recv(tk, 1024)
			if errors.Is(err, EOF) {
				break
			}
			if err != nil {
				t.Errorf("client Recv: %v", err)
				return
			}
			got = append(got, data...)
		}
		_ = c.Close(tk)
	})
	if err := p.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if string(got) != "echo:hello" {
		t.Errorf("got %q, want %q", got, "echo:hello")
	}
	// Both stacks eventually reap all connections (TIME_WAIT included).
	if p.server.Conns() != 0 || p.client.Conns() != 0 {
		t.Errorf("leaked conns: server=%d client=%d", p.server.Conns(), p.client.Conns())
	}
}

func genPayload(n int, seed byte) []byte {
	data := make([]byte, n)
	x := seed
	for i := range data {
		x = x*167 + 13
		data[i] = x
	}
	return data
}

func TestBulkTransferIntegrity(t *testing.T) {
	p := newPair(t, 2, DefaultParams())
	payload := genPayload(1<<20, 7) // 1 MiB
	l, err := p.server.Listen(80, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.serverK.Spawn("server", func(tk *kernel.Task) {
		c, err := l.Accept(tk)
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		if _, err := c.Send(tk, payload); err != nil {
			t.Errorf("Send: %v", err)
		}
		_ = c.Close(tk)
	})
	var got []byte
	var doneAt sim.Time
	p.clientK.Spawn("client", func(tk *kernel.Task) {
		c, err := p.client.Connect(tk, Addr{Host: "server", Port: 80})
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for {
			data, err := c.Recv(tk, 64<<10)
			if errors.Is(err, EOF) {
				break
			}
			if err != nil {
				t.Errorf("Recv: %v", err)
				return
			}
			got = append(got, data...)
		}
		doneAt = tk.Now()
		_ = c.Close(tk)
	})
	if err := p.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream corrupted: got %d bytes, want %d", len(got), len(payload))
	}
	// 1 MiB at 1 Gb/s is ~8.4 ms of wire time; allow generous protocol
	// overhead but catch gross throughput bugs (e.g. stop-and-wait).
	if doneAt > sim.Time(100*time.Millisecond) {
		t.Errorf("1 MiB transfer took %v — window/pipelining broken", doneAt)
	}
}

func TestConnectRefusedByRST(t *testing.T) {
	p := newPair(t, 3, DefaultParams())
	var err error
	p.clientK.Spawn("client", func(tk *kernel.Task) {
		_, err = p.client.Connect(tk, Addr{Host: "server", Port: 9999})
	})
	if e := p.sim.Run(); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, ErrReset) {
		t.Errorf("Connect to closed port: err = %v, want ErrReset", err)
	}
}

func TestConnectTimeout(t *testing.T) {
	p := newPair(t, 4, DefaultParams())
	p.serverNIC.SetRx(func(simnet.Packet) {}) // black-hole the server
	var err error
	var gaveUpAt sim.Time
	p.clientK.Spawn("client", func(tk *kernel.Task) {
		_, err = p.client.Connect(tk, Addr{Host: "server", Port: 80})
		gaveUpAt = tk.Now()
	})
	if e := p.sim.Run(); e != nil {
		t.Fatal(e)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
	if gaveUpAt < sim.Time(time.Second) {
		t.Errorf("gave up after %v — SYN retries not exercised", gaveUpAt)
	}
}

func TestRetransmissionUnderLoss(t *testing.T) {
	p := newPair(t, 5, DefaultParams())
	// Drop 10% of segments arriving at the client, deterministically.
	rng := p.sim.Rand()
	p.client.SetIngress(func(seg *Segment) bool { return rng.Intn(10) != 0 })
	payload := genPayload(256<<10, 3)
	l, _ := p.server.Listen(80, 4)
	p.serverK.Spawn("server", func(tk *kernel.Task) {
		c, err := l.Accept(tk)
		if err != nil {
			return
		}
		_, _ = c.Send(tk, payload)
		_ = c.Close(tk)
	})
	var got []byte
	p.clientK.Spawn("client", func(tk *kernel.Task) {
		c, err := p.client.Connect(tk, Addr{Host: "server", Port: 80})
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for {
			data, err := c.Recv(tk, 32<<10)
			if errors.Is(err, EOF) {
				break
			}
			if err != nil {
				t.Errorf("Recv: %v", err)
				return
			}
			got = append(got, data...)
		}
		_ = c.Close(tk)
	})
	if err := p.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream corrupted under loss: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestZeroWindowStallAndResume(t *testing.T) {
	params := DefaultParams()
	params.RecvBuf = 8 << 10 // tiny receive buffer: reader controls the flow
	p := newPair(t, 6, params)
	payload := genPayload(128<<10, 9)
	l, _ := p.server.Listen(80, 4)
	p.serverK.Spawn("server", func(tk *kernel.Task) {
		c, err := l.Accept(tk)
		if err != nil {
			return
		}
		_, _ = c.Send(tk, payload)
		_ = c.Close(tk)
	})
	var got []byte
	p.clientK.Spawn("client", func(tk *kernel.Task) {
		c, err := p.client.Connect(tk, Addr{Host: "server", Port: 80})
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for {
			tk.Sleep(time.Millisecond) // slow reader forces zero windows
			data, err := c.Recv(tk, 4<<10)
			if errors.Is(err, EOF) {
				break
			}
			if err != nil {
				t.Errorf("Recv: %v", err)
				return
			}
			got = append(got, data...)
		}
		_ = c.Close(tk)
	})
	if err := p.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream corrupted: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestPoller(t *testing.T) {
	p := newPair(t, 7, DefaultParams())
	l, _ := p.server.Listen(80, 4)
	poller := NewPoller(p.serverK)
	poller.Add(l)
	var readyAt sim.Time
	var timedOutFirst bool
	p.serverK.Spawn("poll", func(tk *kernel.Task) {
		if ready := poller.Wait(tk, 10*time.Millisecond); ready == nil {
			timedOutFirst = true
		}
		if ready := poller.Wait(tk, -1); len(ready) != 1 || ready[0] != Pollable(l) {
			t.Errorf("poll ready = %v", ready)
		}
		readyAt = tk.Now()
		c, err := l.Accept(tk)
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		connPoller := NewPoller(p.serverK)
		connPoller.Add(c)
		if ready := connPoller.Wait(tk, -1); len(ready) != 1 {
			t.Error("conn never became readable")
		}
		if data, err := c.Recv(tk, 64); err != nil || string(data) != "x" {
			t.Errorf("Recv = %q, %v", data, err)
		}
	})
	p.clientK.Spawn("client", func(tk *kernel.Task) {
		tk.Sleep(50 * time.Millisecond)
		c, err := p.client.Connect(tk, Addr{Host: "server", Port: 80})
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		tk.Sleep(5 * time.Millisecond)
		_, _ = c.Send(tk, []byte("x"))
	})
	if err := p.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOutFirst {
		t.Error("first poll did not time out")
	}
	if readyAt < sim.Time(50*time.Millisecond) {
		t.Errorf("listener ready at %v, before any client", readyAt)
	}
}

// TestRestoreMidTransfer exercises the failover promotion path at stack
// level: mid-transfer, the server stack is torn away and a fresh stack on a
// new kernel restores the connection from a snapshot. The client must
// receive the byte stream intact, on the same connection.
func TestRestoreMidTransfer(t *testing.T) {
	p := newPair(t, 8, DefaultParams())
	payload := genPayload(512<<10, 5)
	half := len(payload) / 2
	l, _ := p.server.Listen(80, 4)

	// A second kernel ("secondary") shares the server NIC after failover.
	// Reuse the client partition's machine: boot on spare nodes.
	var snap ConnSnapshot
	var snapped bool
	var served *Conn
	p.serverK.Spawn("server", func(tk *kernel.Task) {
		c, err := l.Accept(tk)
		if err != nil {
			return
		}
		served = c
		if _, err := c.Send(tk, payload[:half]); err != nil {
			return
		}
		// Wait for everything to be acked, then snapshot and "die".
		for c.BufferedOut() > 0 {
			tk.Sleep(time.Millisecond)
		}
		snap = c.Snapshot()
		snapped = true
	})

	var got []byte
	p.clientK.Spawn("client", func(tk *kernel.Task) {
		c, err := p.client.Connect(tk, Addr{Host: "server", Port: 80})
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		for len(got) < len(payload) {
			data, err := c.Recv(tk, 64<<10)
			if err != nil {
				t.Errorf("Recv: %v", err)
				return
			}
			got = append(got, data...)
		}
	})

	// After the snapshot is taken, kill the primary, restore on a new
	// stack bound to the same NIC, and send the second half.
	check := p.sim.Spawn("failover-driver", func(pr *sim.Proc) {
		for !snapped {
			pr.Sleep(time.Millisecond)
		}
		p.serverK.Panic("injected failure", nil)
		_ = served // dead with its kernel
		newStack := New(p.clientK, "server", DefaultParams())
		newStack.Attach(p.serverNIC)
		c2, err := newStack.Restore(snap)
		if err != nil {
			t.Errorf("Restore: %v", err)
			return
		}
		c2.Kick()
		p.clientK.Spawn("server2", func(tk *kernel.Task) {
			if _, err := c2.Send(tk, payload[half:]); err != nil {
				t.Errorf("post-restore Send: %v", err)
			}
		})
	})
	_ = check
	if err := p.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("stream corrupted across restore: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestListenerBacklogAndClose(t *testing.T) {
	p := newPair(t, 9, DefaultParams())
	l, err := p.server.Listen(80, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.server.Listen(80, 1); !errors.Is(err, ErrPortInUse) {
		t.Errorf("double Listen err = %v, want ErrPortInUse", err)
	}
	connected := 0
	for i := 0; i < 3; i++ {
		p.clientK.Spawn("client", func(tk *kernel.Task) {
			c, err := p.client.Connect(tk, Addr{Host: "server", Port: 80})
			if err == nil {
				connected++
				_ = c.Close(tk)
			}
		})
	}
	p.serverK.Spawn("acceptor", func(tk *kernel.Task) {
		for i := 0; i < 3; i++ {
			c, err := l.Accept(tk)
			if err != nil {
				return
			}
			_ = c.Close(tk)
		}
		l.Close()
		if _, err := l.Accept(tk); !errors.Is(err, ErrClosed) {
			t.Errorf("Accept after close err = %v, want ErrClosed", err)
		}
	})
	if err := p.sim.Run(); err != nil {
		t.Fatal(err)
	}
	if connected != 3 {
		t.Errorf("connected = %d, want 3 (SYN retry should beat backlog limit)", connected)
	}
}

func TestSendAfterCloseFails(t *testing.T) {
	p := newPair(t, 10, DefaultParams())
	l, _ := p.server.Listen(80, 4)
	p.serverK.Spawn("server", func(tk *kernel.Task) {
		c, err := l.Accept(tk)
		if err != nil {
			return
		}
		_, _ = c.Recv(tk, 10)
	})
	p.clientK.Spawn("client", func(tk *kernel.Task) {
		c, err := p.client.Connect(tk, Addr{Host: "server", Port: 80})
		if err != nil {
			t.Errorf("Connect: %v", err)
			return
		}
		_, _ = c.Send(tk, []byte("x"))
		_ = c.Close(tk)
		if _, err := c.Send(tk, []byte("y")); !errors.Is(err, ErrClosed) {
			t.Errorf("Send after Close err = %v, want ErrClosed", err)
		}
	})
	if err := p.sim.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicSegments(t *testing.T) {
	run := func() (int64, int64) {
		p := newPair(t, 42, DefaultParams())
		payload := genPayload(64<<10, 1)
		l, _ := p.server.Listen(80, 4)
		p.serverK.Spawn("server", func(tk *kernel.Task) {
			c, err := l.Accept(tk)
			if err != nil {
				return
			}
			_, _ = c.Send(tk, payload)
			_ = c.Close(tk)
		})
		p.clientK.Spawn("client", func(tk *kernel.Task) {
			c, err := p.client.Connect(tk, Addr{Host: "server", Port: 80})
			if err != nil {
				return
			}
			for {
				if _, err := c.Recv(tk, 32<<10); err != nil {
					break
				}
			}
			_ = c.Close(tk)
		})
		if err := p.sim.Run(); err != nil {
			t.Fatal(err)
		}
		return p.server.SegsIn, p.server.SegsOut
	}
	in1, out1 := run()
	in2, out2 := run()
	if in1 != in2 || out1 != out2 {
		t.Errorf("nondeterministic segment counts: %d/%d vs %d/%d", in1, out1, in2, out2)
	}
}
