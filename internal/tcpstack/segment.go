package tcpstack

import (
	"fmt"
	"strconv"
)

// Addr is a transport address.
type Addr struct {
	Host string
	Port int
}

func (a Addr) String() string { return a.Host + ":" + strconv.Itoa(a.Port) }

// Flags is the TCP flag set carried by a segment.
type Flags uint8

// Segment flags.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// Has reports whether all flags in f are set.
func (f Flags) Has(q Flags) bool { return f&q == q }

func (f Flags) String() string {
	s := ""
	if f.Has(FlagSYN) {
		s += "S"
	}
	if f.Has(FlagACK) {
		s += "A"
	}
	if f.Has(FlagFIN) {
		s += "F"
	}
	if f.Has(FlagRST) {
		s += "R"
	}
	if s == "" {
		s = "-"
	}
	return s
}

// segHeaderBytes is the wire overhead per segment (IP + TCP headers).
const segHeaderBytes = 40

// Segment is one TCP segment. Sequence numbers use an unwrapped 64-bit
// space: a modelling simplification over the wrapping 32-bit wire format
// that changes nothing about the protocol logic and keeps multi-gigabyte
// transfers (the 10 GB download of §4.4) trivially correct.
type Segment struct {
	Src, Dst Addr
	Seq, Ack uint64
	Flags    Flags
	Window   int
	// Probe marks a zero-window probe: a data-less segment the receiver
	// must acknowledge so the sender learns when the window reopens.
	Probe bool
	Data  []byte
}

// WireSize reports the segment's size on the wire.
func (s *Segment) WireSize() int { return segHeaderBytes + len(s.Data) }

func (s *Segment) String() string {
	return fmt.Sprintf("%v>%v %s seq=%d ack=%d len=%d win=%d",
		s.Src, s.Dst, s.Flags, s.Seq, s.Ack, len(s.Data), s.Window)
}

// connKey identifies a connection within a stack (the local host is the
// stack itself).
type connKey struct {
	localPort  int
	remoteHost string
	remotePort int
}

func (k connKey) String() string {
	return fmt.Sprintf(":%d<->%s:%d", k.localPort, k.remoteHost, k.remotePort)
}
