// Package tcpstack implements the kernel TCP stack that FT-Linux
// replicates (§3.4): a real TCP state machine — three-way handshake,
// sliding-window data transfer with retransmission and zero-window
// probing, and orderly teardown — over the simulated network.
//
// The stack exposes the two interposition points the paper uses:
//
//   - a Netfilter-style ingress hook, invoked on every segment just before
//     it enters the TCP layer;
//   - an EgressGate, invoked on every segment just before it would reach
//     the IP layer, which may delay transmission — this is where the
//     replication layer implements output commit (§3.5).
//
// It also supports constructing connections in an arbitrary protocol state
// (Restore), which is how the failover path brings the secondary's stack
// to a state indistinguishable from the last externally visible state of
// the primary's stack.
package tcpstack

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/kernel"
	"repro/internal/simnet"
)

// Stack errors.
var (
	ErrClosed       = errors.New("tcpstack: connection closed")
	ErrReset        = errors.New("tcpstack: connection reset by peer")
	ErrTimeout      = errors.New("tcpstack: connection timed out")
	ErrPortInUse    = errors.New("tcpstack: port in use")
	ErrInterposed   = errors.New("tcpstack: socket is interposed (secondary replica)")
	errProtoViolate = errors.New("tcpstack: protocol violation")
)

// EOF is io.EOF re-exported so callers need not import io for the
// end-of-stream condition.
var EOF = errors.New("EOF")

// Params is the stack's tuning.
type Params struct {
	// MSS is the maximum segment payload. The bulk-transfer experiments
	// use a large MSS to model segmentation offload (GSO).
	MSS int
	// SendBuf / RecvBuf bound the per-connection buffers; the advertised
	// window is the free receive buffer.
	SendBuf int
	RecvBuf int
	// RTOMin is the initial retransmission timeout; it backs off
	// exponentially to RTOMax.
	RTOMin time.Duration
	RTOMax time.Duration
	// TimeWait is the linger time in TIME_WAIT before the connection is
	// reaped (shortened from 2*MSL for simulation efficiency).
	TimeWait time.Duration
	// SynRetries bounds connection-establishment retransmissions.
	SynRetries int
	// SegmentCPU is the CPU cost charged to a task per segment it causes
	// to be processed (send or receive path).
	SegmentCPU time.Duration
}

// DefaultParams returns production-like defaults.
func DefaultParams() Params {
	return Params{
		MSS:        1448,
		SendBuf:    256 << 10,
		RecvBuf:    256 << 10,
		RTOMin:     200 * time.Millisecond,
		RTOMax:     time.Second,
		TimeWait:   500 * time.Millisecond,
		SynRetries: 6,
		SegmentCPU: 2 * time.Microsecond,
	}
}

// EgressGate intercepts every outgoing segment before the IP layer. send
// transmits the segment on the wire; a gate may call it immediately
// (DirectGate) or hold it until the output is stable (the replication
// layer's output-commit gate). Gates must release segments of a connection
// in the order they were submitted.
type EgressGate interface {
	Transmit(seg *Segment, send func())
}

// DirectGate transmits immediately — the unreplicated baseline.
type DirectGate struct{}

var _ EgressGate = DirectGate{}

// Transmit sends the segment at once.
func (DirectGate) Transmit(_ *Segment, send func()) { send() }

// Stack is one kernel's TCP stack.
type Stack struct {
	kern    *kernel.Kernel
	host    string
	nic     *simnet.NIC
	params  Params
	ingress func(*Segment) bool
	egress  EgressGate

	listeners map[int]*Listener
	conns     map[connKey]*Conn
	nextPort  int
	nextISS   uint64

	// SegsIn/SegsOut count segments processed, for diagnostics.
	SegsIn, SegsOut int64

	// Event callbacks for the TCP-stack replication component (§3.4).
	// All are optional and must not block (they run in segment-processing
	// context).

	// OnEstablished fires when a connection reaches ESTABLISHED.
	OnEstablished func(*Conn)
	// OnDataIn fires when in-order input bytes are accepted into the
	// receive buffer (and will therefore be acknowledged to the peer).
	OnDataIn func(*Conn, []byte)
	// OnAckIn fires when the peer acknowledges output, with the new count
	// of acknowledged output-stream bytes.
	OnAckIn func(*Conn, uint64)
	// OnPeerFin fires when the peer's FIN is accepted.
	OnPeerFin func(*Conn)
	// OnReaped fires when the connection is removed from the stack.
	OnReaped func(*Conn)
}

// New creates a stack for the given kernel and host name.
func New(k *kernel.Kernel, host string, params Params) *Stack {
	if params.MSS <= 0 {
		params = DefaultParams()
	}
	return &Stack{
		kern:      k,
		host:      host,
		params:    params,
		egress:    DirectGate{},
		listeners: make(map[int]*Listener),
		conns:     make(map[connKey]*Conn),
		nextPort:  32768,
		nextISS:   1 << 20,
	}
}

// Kernel returns the owning kernel.
func (s *Stack) Kernel() *kernel.Kernel { return s.kern }

// Host returns the stack's host name.
func (s *Stack) Host() string { return s.host }

// Params returns the stack's tuning.
func (s *Stack) Params() Params { return s.params }

// SetIngress installs the Netfilter-style hook called on every segment
// before the TCP layer; returning false steals the segment.
func (s *Stack) SetIngress(fn func(*Segment) bool) { s.ingress = fn }

// SetEgress installs the gate called on every segment before the IP layer.
func (s *Stack) SetEgress(g EgressGate) { s.egress = g }

// Attach binds the stack to a NIC, becoming its receive handler.
func (s *Stack) Attach(nic *simnet.NIC) {
	s.nic = nic
	nic.SetRx(s.rxPacket)
}

// NIC returns the attached NIC, or nil.
func (s *Stack) NIC() *simnet.NIC { return s.nic }

// Conns reports the number of live connections.
func (s *Stack) Conns() int { return len(s.conns) }

func (s *Stack) rxPacket(p simnet.Packet) {
	seg, ok := p.Payload.(*Segment)
	if !ok {
		return
	}
	s.SegsIn++
	if s.ingress != nil && !s.ingress(seg) {
		return
	}
	key := connKey{localPort: seg.Dst.Port, remoteHost: seg.Src.Host, remotePort: seg.Src.Port}
	if c, ok := s.conns[key]; ok {
		c.handleSegment(seg)
		return
	}
	if l, ok := s.listeners[seg.Dst.Port]; ok && seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagACK) {
		l.handleSYN(seg)
		return
	}
	// No socket: answer with RST (unless this already is one).
	if !seg.Flags.Has(FlagRST) {
		s.transmit(&Segment{
			Src:   Addr{Host: s.host, Port: seg.Dst.Port},
			Dst:   seg.Src,
			Seq:   seg.Ack,
			Ack:   seg.Seq + uint64(len(seg.Data)),
			Flags: FlagRST | FlagACK,
		})
	}
}

// transmit pushes a segment through the egress gate onto the wire.
func (s *Stack) transmit(seg *Segment) {
	s.SegsOut++
	s.egress.Transmit(seg, func() {
		if s.nic == nil {
			return
		}
		s.nic.Send(simnet.Packet{
			DstHost: seg.Dst.Host,
			Size:    seg.WireSize(),
			Payload: seg,
		})
	})
}

func (s *Stack) allocPort() int {
	for {
		s.nextPort++
		if s.nextPort > 60999 {
			s.nextPort = 32768
		}
		if _, used := s.listeners[s.nextPort]; used {
			continue
		}
		free := true
		for k := range s.conns {
			if k.localPort == s.nextPort {
				free = false
				break
			}
		}
		if free {
			return s.nextPort
		}
	}
}

func (s *Stack) allocISS() uint64 {
	s.nextISS += 1 << 18
	return s.nextISS
}

// Connect opens a connection to dst, blocking the calling task until the
// handshake completes or times out.
func (s *Stack) Connect(t *kernel.Task, dst Addr) (*Conn, error) {
	t.Syscall()
	key := connKey{localPort: s.allocPort(), remoteHost: dst.Host, remotePort: dst.Port}
	c := newConn(s, key, stateSynSent)
	c.iss = s.allocISS()
	c.sndUna, c.sndNxt = c.iss, c.iss+1
	s.conns[key] = c
	c.sendSegment(FlagSYN, c.iss, nil, false)
	c.armRTO()
	for c.state == stateSynSent {
		c.connectQ.Wait(t.Proc())
	}
	if c.err != nil {
		delete(s.conns, key)
		return nil, fmt.Errorf("connect %v: %w", dst, c.err)
	}
	return c, nil
}
