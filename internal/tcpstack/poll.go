package tcpstack

import (
	"time"

	"repro/internal/kernel"
	"repro/internal/sim"
)

// Pollable is a socket that can be watched for readiness — the kernel
// objects behind poll/epoll interest sets, which FT-Linux maintains on the
// secondary so failover can transition to unmanaged execution (§3.2).
type Pollable interface {
	// PollReadable reports whether a read-type operation would not block.
	PollReadable() bool
	// PollWritable reports whether a write-type operation would not block.
	PollWritable() bool
	// OnPollChange registers a readiness-change callback.
	OnPollChange(fn func())
}

var (
	_ Pollable = (*Conn)(nil)
	_ Pollable = (*Listener)(nil)
)

// PollReadable reports readable data, a pending EOF, or a terminal error.
func (c *Conn) PollReadable() bool {
	return len(c.rcvBuf) > 0 || c.peerFin || c.err != nil || c.state == stateClosed
}

// PollWritable reports available send-buffer space on a live connection.
func (c *Conn) PollWritable() bool {
	return c.state == stateEstablished && len(c.sndBuf) < c.stack.params.SendBuf
}

// OnPollChange registers a readiness callback.
func (c *Conn) OnPollChange(fn func()) { c.pollFns = append(c.pollFns, fn) }

func (c *Conn) notifyPoll() {
	for _, fn := range c.pollFns {
		fn()
	}
}

// PollReadable reports a pending connection (accept would not block).
func (l *Listener) PollReadable() bool { return len(l.ready) > 0 || l.closed }

// PollWritable always reports false for listeners.
func (l *Listener) PollWritable() bool { return false }

// OnPollChange registers a readiness callback.
func (l *Listener) OnPollChange(fn func()) { l.pollFns = append(l.pollFns, fn) }

func (l *Listener) notifyPoll() {
	for _, fn := range l.pollFns {
		fn()
	}
}

// Poller is an epoll-like readiness multiplexer over a fixed interest set.
type Poller struct {
	kern  *kernel.Kernel
	items []Pollable
	q     *sim.WaitQueue
}

// NewPoller creates an empty poller.
func NewPoller(k *kernel.Kernel) *Poller {
	return &Poller{kern: k, q: sim.NewWaitQueue(k.Sim())}
}

// Add registers a socket in the interest set.
func (p *Poller) Add(item Pollable) {
	p.items = append(p.items, item)
	item.OnPollChange(func() { p.q.WakeAll(0) })
}

// Items returns the interest set (shared; callers must not modify).
func (p *Poller) Items() []Pollable { return p.items }

// Wait blocks until at least one registered socket is readable (or the
// timeout elapses; negative waits forever) and returns the readable set.
func (p *Poller) Wait(t *kernel.Task, timeout time.Duration) []Pollable {
	t.Syscall()
	deadline := t.Now().Add(timeout)
	for {
		var ready []Pollable
		for _, it := range p.items {
			if it.PollReadable() {
				ready = append(ready, it)
			}
		}
		if len(ready) > 0 {
			return ready
		}
		if timeout < 0 {
			p.q.Wait(t.Proc())
			continue
		}
		remain := deadline.Sub(t.Now())
		if remain <= 0 || !p.q.WaitTimeout(t.Proc(), remain) {
			return nil
		}
	}
}
