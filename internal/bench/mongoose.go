package bench

import (
	"time"

	"repro/internal/apps/clients"
	"repro/internal/apps/mongoose"
	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

// MongoosePoint is one CPU-load step of Figures 6 and 7.
type MongoosePoint struct {
	Step        int           // x-axis: each increment doubles the CPU load
	CPULoad     time.Duration // per-request computation
	Ubuntu      float64       // req/s
	FTBurst     float64       // req/s during the initial burst
	FTSustained float64       // req/s at steady state
	PctOfUbuntu float64
	MsgPerSec   float64 // Fig. 7
	BytesPerSec float64 // Fig. 7
}

// MongooseOpts bound the per-step simulated work.
type MongooseOpts struct {
	Seed        int64
	Steps       int // number of CPU-load doublings (paper sweeps ~9)
	BaseLoad    time.Duration
	Concurrency int
	Window      time.Duration
}

// DefaultMongooseOpts matches §4.2: 10 KB page, 100 parallel connections,
// 32 worker threads, CPU load doubling per step.
func DefaultMongooseOpts() MongooseOpts {
	return MongooseOpts{Seed: 1, Steps: 9, BaseLoad: 100 * time.Microsecond, Concurrency: 100, Window: 8 * time.Second}
}

// Mongoose reproduces Figures 6 and 7.
func Mongoose(opts MongooseOpts) ([]MongoosePoint, error) {
	var points []MongoosePoint
	for step := 0; step < opts.Steps; step++ {
		p, err := mongoosePoint(step, opts)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

func mongoosePoint(step int, opts MongooseOpts) (MongoosePoint, error) {
	load := opts.BaseLoad * (1 << step)
	point := MongoosePoint{Step: step, CPULoad: load}
	mcfg := mongoose.DefaultConfig()
	mcfg.CPULoad = load

	abcfg := clients.ABConfig{
		Port:          mcfg.Port,
		Concurrency:   opts.Concurrency,
		ResponseBytes: mongoose.PageSize(mcfg),
		Duration:      opts.Window,
		WarmUp:        opts.Window / 4,
	}
	measured := opts.Window - opts.Window/4

	// Baseline.
	base, err := core.NewBaseline(core.DefaultConfig(opts.Seed))
	if err != nil {
		return point, err
	}
	bclient, err := base.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		return point, err
	}
	var bst mongoose.Stats
	base.LaunchApp("mongoose", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		mongoose.Run(th, socks, mcfg, &bst)
	})
	var bab clients.ABStats
	clients.RunAB(bclient, abcfg, &bab)
	if err := base.Sim.RunUntil(sim.Time(opts.Window + time.Second)); err != nil {
		return point, err
	}
	point.Ubuntu = bab.Throughput(measured)

	// FT-Linux. Per-update streaming, as in the paper's prototype: Figure
	// 7's traffic counts are only comparable without log/sync batching.
	ftCfg := core.DefaultConfig(opts.Seed)
	ftCfg.Replication.BatchTuples = 1
	ftCfg.TCPSync.BatchUpdates = 1
	sys, err := core.NewSystem(ftCfg)
	if err != nil {
		return point, err
	}
	fclient, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		return point, err
	}
	var fst mongoose.Stats
	sys.LaunchApp("mongoose", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		mongoose.Run(th, socks, mcfg, &fst)
	})
	// Burst: a short separate counter over the first quarter window.
	burstCfg := abcfg
	var fab clients.ABStats
	clients.RunAB(fclient, burstCfg, &fab)
	burstWindow := sim.Time(opts.Window / 4)
	if err := sys.Sim.RunUntil(burstWindow); err != nil {
		return point, err
	}
	burstReqs := fst.Served
	point.FTBurst = float64(burstReqs) / burstWindow.Seconds()
	statsMid := sys.Fabric.Stats()
	if err := sys.Sim.RunUntil(sim.Time(opts.Window + time.Second)); err != nil {
		return point, err
	}
	statsEnd := sys.Fabric.Stats()
	point.FTSustained = fab.Throughput(measured)
	point.PctOfUbuntu = 100 * point.FTSustained / point.Ubuntu
	point.MsgPerSec, point.BytesPerSec = trafficRate(statsMid, statsEnd, measured+time.Second)
	return point, nil
}
