package bench

import "testing"

// fabricTestOpts trims the sweep to its gate-bearing corners so the test
// stays interactive while exercising all three workloads and modes.
func fabricTestOpts() FabricOpts {
	opts := DefaultFabricOpts()
	opts.Threads = []int{1, 8}
	opts.StaticBatches = []int{1, 32}
	return opts
}

// TestFabricSenderBlocking is the sender-model acceptance criterion: at 8
// producers the locked-copy baseline must serialize senders (parks on the
// sender mutex, real blocked time) while the reserve/commit path admits
// the same traffic without any sender ever parking.
func TestFabricSenderBlocking(t *testing.T) {
	report, err := Fabric(fabricTestOpts())
	if err != nil {
		t.Fatal(err)
	}
	locked := report.Find("locked", "raw", 8, report.Points[0].BatchTuples)
	free := report.Find("lockfree", "raw", 8, report.Points[0].BatchTuples)
	if locked == nil || free == nil {
		t.Fatal("raw points missing from the sweep")
	}
	t.Logf("raw 8 producers: locked wait=%.1fms (%d lock waits), lockfree wait=%.1fms (%d reserve waits), reduction=%.0fx",
		locked.SendWaitMS, locked.LockWaits, free.SendWaitMS, free.ReserveWaits, report.SenderWaitReductionRaw)
	if locked.Tuples != free.Tuples {
		t.Fatalf("traffic not identical: %d vs %d payloads", locked.Tuples, free.Tuples)
	}
	if locked.LockWaits == 0 || locked.SendWaitMS <= 0 {
		t.Error("locked-copy baseline shows no sender blocking: the comparison measures nothing")
	}
	if free.LockWaits != 0 || free.SendWaitMS > 0 {
		t.Errorf("lock-free raw path blocked (%d lock waits, %.3fms): ample ring should admit every claim",
			free.LockWaits, free.SendWaitMS)
	}
	if report.SenderWaitReductionRaw < 10 {
		t.Errorf("sender-wait reduction %.1fx at 8 producers, want >= 10x", report.SenderWaitReductionRaw)
	}

	// The replicated sweep must stay a faithful record/replay run in every
	// mode: same tuples per (workload, threads) cell, zero divergences.
	for i := range report.Points {
		p := &report.Points[i]
		if p.Divergences != 0 {
			t.Errorf("%s/%s %dt b=%d: %d divergences", p.Mode, p.Workload, p.Threads, p.BatchTuples, p.Divergences)
		}
		if p.Workload == "raw" {
			continue
		}
		if ref := report.Find("lockfree", p.Workload, p.Threads, p.BatchTuples); ref != nil && ref.Tuples != p.Tuples {
			t.Errorf("%s/%s %dt: %d tuples, lockfree saw %d — modes changed the workload",
				p.Mode, p.Workload, p.Threads, ref.Tuples, p.Tuples)
		}
	}
}

// TestFabricAdaptiveController is the batching-controller acceptance
// criterion: the same adaptive configuration must grow on the healthy
// burst workload (approaching the best static batch's transfer count)
// and shrink under sustained commit pressure (approaching the floor,
// cutting commit latency below its static starting batch) — without ever
// losing to the best hand-tuned static setting on completion time.
func TestFabricAdaptiveController(t *testing.T) {
	opts := fabricTestOpts()
	report, err := Fabric(opts)
	if err != nil {
		t.Fatal(err)
	}
	burst := report.Find("adaptive", "burst", 8, opts.BatchTuples)
	sust := report.Find("adaptive", "sustained", 8, opts.BatchTuples)
	staticSust := report.Find("lockfree", "sustained", 8, opts.BatchTuples)
	if burst == nil || sust == nil || staticSust == nil {
		t.Fatal("adaptive points missing from the sweep")
	}
	t.Logf("burst: eff %d->%d, %.2fx of best static transfers, %.1fx fewer than static start",
		opts.BatchTuples, burst.EffBatchEnd, report.AdaptiveVsBestStaticBurst, report.AdaptiveMsgSavingsBurst)
	t.Logf("sustained: eff %d->%d, commit p50 %dus (static start %dus), %.2fx best-static completion",
		opts.BatchTuples, sust.EffBatchEnd, sust.CommitWaitP50/1000, staticSust.CommitWaitP50/1000,
		report.AdaptiveVsBestStaticSustained)

	if burst.EffBatchEnd <= int64(opts.BatchTuples) {
		t.Errorf("burst eff batch ended at %d, want growth above the starting %d", burst.EffBatchEnd, opts.BatchTuples)
	}
	if sust.EffBatchEnd >= int64(opts.BatchTuples) {
		t.Errorf("sustained eff batch ended at %d, want shrink below the starting %d", sust.EffBatchEnd, opts.BatchTuples)
	}
	if report.AdaptiveMsgSavingsBurst < 1.2 {
		t.Errorf("burst transfer savings %.2fx vs static start, want >= 1.2x", report.AdaptiveMsgSavingsBurst)
	}
	if report.AdaptiveVsBestStaticBurst < 0.7 {
		t.Errorf("burst transfers %.2fx of best static, want >= 0.7", report.AdaptiveVsBestStaticBurst)
	}
	if report.AdaptiveVsBestStaticSustained < 0.95 {
		t.Errorf("sustained completion %.2fx of best static, want >= 0.95", report.AdaptiveVsBestStaticSustained)
	}
	if sust.CommitWaitP50 > staticSust.CommitWaitP50 {
		t.Errorf("sustained commit p50 %dns above the static starting batch's %dns: shrinking bought nothing",
			sust.CommitWaitP50, staticSust.CommitWaitP50)
	}
}
