package bench

import (
	"fmt"
	"time"

	"repro/internal/apps/pbzip2"
	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/sim"
)

// PBZIPPoint is one block size of Figures 4 and 5.
type PBZIPPoint struct {
	BlockKB     int
	Ubuntu      float64 // blocks/s on the baseline
	FTBurst     float64 // blocks/s in a short burst
	FTSustained float64 // blocks/s over a long period
	PctOfUbuntu float64 // FTSustained / Ubuntu * 100 (right axis of Fig. 4)
	MsgPerSec   float64 // Fig. 5: inter-replica messages/s (sustained)
	BytesPerSec float64 // Fig. 5: inter-replica bytes/s (sustained)
}

// PBZIPBlockKBs are the Figure 4/5 x-axis block sizes.
func PBZIPBlockKBs() []int { return []int{25, 50, 75, 100, 200, 400, 600, 900} }

// PBZIPOpts bound the per-point simulated work.
type PBZIPOpts struct {
	Seed int64
	// Window is how long the FT run is measured (sustained needs the log
	// ring to have filled); the baseline runs for Window/2.
	Window time.Duration
	// Burst is the initial interval used for the burst rate.
	Burst time.Duration
}

// DefaultPBZIPOpts measures sustained throughput over a 12 s window.
func DefaultPBZIPOpts() PBZIPOpts {
	return PBZIPOpts{Seed: 1, Window: 12 * time.Second, Burst: time.Second}
}

// PBZIP reproduces Figures 4 and 5: compressing a 1 GB file with 32 worker
// threads on Ubuntu versus FT-Linux, as a function of the block size.
func PBZIP(blockKBs []int, opts PBZIPOpts) ([]PBZIPPoint, error) {
	var points []PBZIPPoint
	for _, kb := range blockKBs {
		p, err := pbzipPoint(kb, opts)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

func pbzipCfg(kb int, window time.Duration) pbzip2.Config {
	cfg := pbzip2.DefaultConfig()
	cfg.BlockSize = kb << 10
	// Bound the blocks to what an ideal (uncontended) run could complete
	// in the window, so sweeps stay tractable; the full 1 GB file is the
	// cap, exactly as in the paper.
	ideal := float64(cfg.Workers) * cfg.CompressRate / float64(cfg.BlockSize)
	max := int(ideal*window.Seconds()) + cfg.Workers
	total := int(cfg.FileSize / int64(cfg.BlockSize))
	if max < total {
		cfg.MaxBlocks = max
	}
	return cfg
}

func pbzipPoint(kb int, opts PBZIPOpts) (PBZIPPoint, error) {
	point := PBZIPPoint{BlockKB: kb}

	// Baseline (stock Ubuntu allocated one partition's resources).
	base, err := core.NewBaseline(core.DefaultConfig(opts.Seed))
	if err != nil {
		return point, err
	}
	var bst pbzip2.Stats
	bcfg := pbzipCfg(kb, opts.Window/2)
	base.Launch("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, bcfg, &bst) })
	if err := base.Sim.RunUntil(sim.Time(opts.Window / 2)); err != nil {
		return point, err
	}
	point.Ubuntu = steadyRate(bst.BlockTimes, opts.Burst, sim.Time(opts.Window/2))
	if point.Ubuntu == 0 {
		return point, fmt.Errorf("bench: pbzip2 baseline made no progress at %dKB", kb)
	}

	// FT-Linux. The paper's prototype streams every log tuple as its own
	// mailbox message, so Figure 5's absolute message/byte rates are only
	// comparable in that configuration; batched traffic is measured by
	// BatchSweep (ftbench -exp batching).
	ftCfg := core.DefaultConfig(opts.Seed)
	ftCfg.Replication.BatchTuples = 1
	sys, err := core.NewSystem(ftCfg)
	if err != nil {
		return point, err
	}
	var fst, sst pbzip2.Stats
	fcfg := pbzipCfg(kb, opts.Window)
	sys.Primary.NS.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, fcfg, &fst) })
	sys.Secondary.NS.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, fcfg, &sst) })

	mid := sim.Time(opts.Window / 2)
	var midStats = sys.Fabric.Stats()
	if err := sys.Sim.RunUntil(mid); err != nil {
		return point, err
	}
	midStats = sys.Fabric.Stats()
	if err := sys.Sim.RunUntil(sim.Time(opts.Window)); err != nil {
		return point, err
	}
	endStats := sys.Fabric.Stats()

	point.FTSustained = steadyRate(fst.BlockTimes, time.Duration(mid), sim.Time(opts.Window))
	if done := fst.FinishedAt; done != 0 && done < sim.Time(opts.Window) {
		// The run finished before the window closed: use the overall rate
		// past the burst phase.
		point.FTSustained = steadyRate(fst.BlockTimes, opts.Burst, done)
	}
	point.FTBurst = rateIn(fst.BlockTimes, sim.Time(opts.Burst/10), sim.Time(opts.Burst/2))
	if point.FTBurst < point.FTSustained {
		// Large blocks complete too slowly for the early window to be
		// meaningful; the attainable burst is never below sustained.
		point.FTBurst = point.FTSustained
	}
	point.PctOfUbuntu = 100 * point.FTSustained / point.Ubuntu
	window := sim.Time(opts.Window).Sub(mid)
	if done := fst.FinishedAt; done != 0 && done < sim.Time(opts.Window) {
		window = done.Sub(mid)
	}
	if window > 0 {
		point.MsgPerSec, point.BytesPerSec = trafficRate(midStats, endStats, window)
	}
	return point, nil
}

// steadyRate measures the completion rate between warmup and end.
func steadyRate(times []sim.Time, warmup time.Duration, end sim.Time) float64 {
	from := sim.Time(warmup)
	if from >= end {
		from = 0
	}
	return rateIn(times, from, end)
}
