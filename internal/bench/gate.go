package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// Baselines is the checked-in bench-trajectory snapshot
// (goldens/bench-baselines.json): the headline ratios of the detshard and
// fabric sweeps at the time they were last pinned, plus the allowed
// fractional regression. The CI gate re-runs the quick sweeps and fails
// when a ratio falls below baseline*(1-Tolerance) — so a PR that quietly
// erodes the speedups the repo's tentpoles bought is caught at review
// time, not three PRs later.
type Baselines struct {
	// Tolerance is the allowed fractional slip per ratio (0.25 = a ratio
	// may come in 25% under its pinned value before the gate fails).
	// Ratios are simulation-deterministic, so the headroom absorbs
	// intentional re-tuning of workload constants, not host noise.
	Tolerance float64 `json:"tolerance"`

	DetShard struct {
		CommitWaitSpeedup float64 `json:"commit_wait_p50_speedup"`
		ReplayLagSpeedup  float64 `json:"replay_lag_p50_speedup"`
	} `json:"detshard"`

	Fabric struct {
		SenderWaitReductionRaw        float64 `json:"sender_wait_reduction_raw"`
		SenderWaitReductionSustained  float64 `json:"sender_wait_reduction_sustained"`
		AdaptiveVsBestStaticSustained float64 `json:"adaptive_vs_best_static_sustained"`
		AdaptiveVsBestStaticBurst     float64 `json:"adaptive_vs_best_static_burst"`
		AdaptiveMsgSavingsBurst       float64 `json:"adaptive_msg_savings_burst"`
	} `json:"fabric"`

	NWay struct {
		CommitWaitSpeedupN3 float64 `json:"commit_wait_speedup_n3"`
	} `json:"nway"`

	Epoch struct {
		RejoinSpeedup    float64 `json:"rejoin_speedup"`
		RetentionSavings float64 `json:"retention_savings"`
		FlatnessGain     float64 `json:"flatness_gain"`
	} `json:"epoch"`
}

// LoadBaselines reads a pinned baseline file.
func LoadBaselines(path string) (Baselines, error) {
	var b Baselines
	data, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	if b.Tolerance <= 0 || b.Tolerance >= 1 {
		return b, fmt.Errorf("%s: tolerance %v out of (0,1)", path, b.Tolerance)
	}
	return b, nil
}

// floor is the lowest acceptable value for a pinned ratio.
func (b *Baselines) floor(pinned float64) float64 {
	return pinned * (1 - b.Tolerance)
}

// check appends a violation when got has slipped below the pinned
// ratio's floor. A zero pinned value means "not pinned": skipped, so
// baselines can be introduced one ratio at a time.
func (b *Baselines) check(violations []string, name string, got, pinned float64) []string {
	if pinned == 0 {
		return violations
	}
	if floor := b.floor(pinned); got < floor {
		violations = append(violations,
			fmt.Sprintf("%s = %.3f, below floor %.3f (pinned %.3f, tolerance %.0f%%)",
				name, got, floor, pinned, 100*b.Tolerance))
	}
	return violations
}

// GateDetShard checks a detshard report against the pinned baselines and
// returns the violations (empty = pass).
func (b *Baselines) GateDetShard(r DetShardReport) []string {
	var v []string
	v = b.check(v, "detshard.commit_wait_p50_speedup", r.CommitWaitSpeedup, b.DetShard.CommitWaitSpeedup)
	v = b.check(v, "detshard.replay_lag_p50_speedup", r.ReplayLagSpeedup, b.DetShard.ReplayLagSpeedup)
	return v
}

// GateFabric checks a fabric report against the pinned baselines.
func (b *Baselines) GateFabric(r FabricReport) []string {
	var v []string
	v = b.check(v, "fabric.sender_wait_reduction_raw", r.SenderWaitReductionRaw, b.Fabric.SenderWaitReductionRaw)
	v = b.check(v, "fabric.sender_wait_reduction_sustained", r.SenderWaitReductionSustained, b.Fabric.SenderWaitReductionSustained)
	v = b.check(v, "fabric.adaptive_vs_best_static_sustained", r.AdaptiveVsBestStaticSustained, b.Fabric.AdaptiveVsBestStaticSustained)
	v = b.check(v, "fabric.adaptive_vs_best_static_burst", r.AdaptiveVsBestStaticBurst, b.Fabric.AdaptiveVsBestStaticBurst)
	v = b.check(v, "fabric.adaptive_msg_savings_burst", r.AdaptiveMsgSavingsBurst, b.Fabric.AdaptiveMsgSavingsBurst)
	return v
}

// GateNWay checks a replica-set sweep report against the pinned baselines:
// the all-replicas commit rule at N=3 must still pay measurably more than
// the majority quorum over the same lagged link.
func (b *Baselines) GateNWay(r NWayReport) []string {
	var v []string
	v = b.check(v, "nway.commit_wait_speedup_n3", r.CommitWaitSpeedupN3, b.NWay.CommitWaitSpeedupN3)
	return v
}

// GateEpoch checks the checkpoint sweep against the pinned baselines: at
// the longest swept uptime, epoch checkpoints must still make rejoin
// faster and retention smaller than the full-history path, and the
// epochs-on rejoin time must stay flat where the legacy one grows.
func (b *Baselines) GateEpoch(r EpochReport) []string {
	var v []string
	v = b.check(v, "epoch.rejoin_speedup", r.RejoinSpeedup, b.Epoch.RejoinSpeedup)
	v = b.check(v, "epoch.retention_savings", r.RetentionSavings, b.Epoch.RetentionSavings)
	v = b.check(v, "epoch.flatness_gain", r.FlatnessGain, b.Epoch.FlatnessGain)
	return v
}
