package bench

import (
	"testing"
	"time"
)

// TestEpochSweep runs a trimmed checkpoint sweep and pins the tentpole's
// shape: with epochs off, retention and rejoin time grow with uptime;
// with epochs on, both stay flat at roughly one epoch of history, and the
// headline ratios come out above 1.
func TestEpochSweep(t *testing.T) {
	opts := EpochOpts{
		Seed:     1,
		Uptimes:  []time.Duration{3 * time.Second, 9 * time.Second},
		Interval: 250 * time.Millisecond,
		Tail:     3 * time.Second,
	}
	report, err := Epoch(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 4 {
		t.Fatalf("point count = %d, want 4", len(report.Points))
	}
	for _, p := range report.Points {
		if p.Divergences != 0 {
			t.Errorf("uptime=%.0fs epochs=%v: %d divergences", p.UptimeS, p.Epochs, p.Divergences)
		}
		if p.Epochs && p.EpochCuts == 0 {
			t.Errorf("uptime=%.0fs: epochs on but no cuts recorded", p.UptimeS)
		}
		if !p.Epochs && p.EpochCuts != 0 {
			t.Errorf("uptime=%.0fs: epochs off but %d cuts recorded", p.UptimeS, p.EpochCuts)
		}
	}
	offMin, offMax := report.find(3, false), report.find(9, false)
	onMin, onMax := report.find(3, true), report.find(9, true)
	if offMax.RetainedTuplesAtKill <= 2*offMin.RetainedTuplesAtKill {
		t.Errorf("epochs-off retention %d -> %d over a 3x uptime range; not growing with history",
			offMin.RetainedTuplesAtKill, offMax.RetainedTuplesAtKill)
	}
	if onMax.RetainedTuplesAtKill > 2*onMin.RetainedTuplesAtKill {
		t.Errorf("epochs-on retention %d -> %d over a 3x uptime range; not flat",
			onMin.RetainedTuplesAtKill, onMax.RetainedTuplesAtKill)
	}
	if report.RejoinSpeedup <= 1 {
		t.Errorf("rejoin speedup = %.2f, want > 1", report.RejoinSpeedup)
	}
	if report.RetentionSavings <= 1 {
		t.Errorf("retention savings = %.2f, want > 1", report.RetentionSavings)
	}
	if report.RejoinGrowthOff <= report.RejoinGrowthOn {
		t.Errorf("rejoin growth off %.2fx <= on %.2fx; epochs-on is not the flatter curve",
			report.RejoinGrowthOff, report.RejoinGrowthOn)
	}
}
