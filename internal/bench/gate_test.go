package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testBaselines() Baselines {
	var b Baselines
	b.Tolerance = 0.2
	b.DetShard.CommitWaitSpeedup = 100
	b.DetShard.ReplayLagSpeedup = 5
	b.Fabric.SenderWaitReductionRaw = 1000
	b.Fabric.AdaptiveMsgSavingsBurst = 1.5
	b.NWay.CommitWaitSpeedupN3 = 100
	b.Epoch.RejoinSpeedup = 50
	b.Epoch.RetentionSavings = 20
	return b
}

func TestGateEpoch(t *testing.T) {
	b := testBaselines()
	// FlatnessGain is unpinned (zero) in testBaselines: skipped.
	r := EpochReport{RejoinSpeedup: 42, RetentionSavings: 17}
	if v := b.GateEpoch(r); len(v) != 0 {
		t.Fatalf("gate failed within tolerance: %v", v)
	}
	r.RejoinSpeedup = 39 // below the 40 floor
	v := b.GateEpoch(r)
	if len(v) != 1 || !strings.Contains(v[0], "epoch.rejoin_speedup") {
		t.Fatalf("violations = %v, want exactly the rejoin-speedup slip", v)
	}
}

func TestGateNWay(t *testing.T) {
	b := testBaselines()
	if v := b.GateNWay(NWayReport{CommitWaitSpeedupN3: 85}); len(v) != 0 {
		t.Fatalf("gate failed within tolerance: %v", v)
	}
	v := b.GateNWay(NWayReport{CommitWaitSpeedupN3: 79})
	if len(v) != 1 || !strings.Contains(v[0], "nway.commit_wait_speedup_n3") {
		t.Fatalf("violations = %v, want exactly the named commit-wait slip", v)
	}
}

func TestGateDetShardPassesWithinTolerance(t *testing.T) {
	b := testBaselines()
	r := DetShardReport{CommitWaitSpeedup: 85, ReplayLagSpeedup: 4.2}
	if v := b.GateDetShard(r); len(v) != 0 {
		t.Fatalf("gate failed within tolerance: %v", v)
	}
}

func TestGateDetShardFailsPastTolerance(t *testing.T) {
	b := testBaselines()
	r := DetShardReport{CommitWaitSpeedup: 79, ReplayLagSpeedup: 5}
	v := b.GateDetShard(r)
	if len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the commit-wait slip", v)
	}
	if !strings.Contains(v[0], "commit_wait_p50_speedup") {
		t.Errorf("violation does not name the ratio: %s", v[0])
	}
}

func TestGateSkipsUnpinnedRatios(t *testing.T) {
	b := testBaselines()
	// Sustained/burst fabric ratios are unpinned (zero) in testBaselines:
	// a zero observed value must not trip them.
	r := FabricReport{SenderWaitReductionRaw: 900, AdaptiveMsgSavingsBurst: 1.3}
	if v := b.GateFabric(r); len(v) != 0 {
		t.Fatalf("unpinned ratios tripped the gate: %v", v)
	}
	r.SenderWaitReductionRaw = 700 // below the 800 floor
	if v := b.GateFabric(r); len(v) != 1 {
		t.Fatalf("violations = %v, want exactly the raw-reduction slip", v)
	}
}

func TestLoadBaselinesValidation(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tolerance": 0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaselines(bad); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(`{"tolerance": 0.25, "detshard": {"commit_wait_p50_speedup": 10}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaselines(good)
	if err != nil {
		t.Fatal(err)
	}
	if b.DetShard.CommitWaitSpeedup != 10 {
		t.Errorf("parsed speedup = %v", b.DetShard.CommitWaitSpeedup)
	}
}

// TestRepoBaselinesLoad: the checked-in baseline file parses and pins
// every headline ratio the gate checks.
func TestRepoBaselinesLoad(t *testing.T) {
	b, err := LoadBaselines("../../goldens/bench-baselines.json")
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"detshard.commit_wait":       b.DetShard.CommitWaitSpeedup,
		"detshard.replay_lag":        b.DetShard.ReplayLagSpeedup,
		"fabric.raw":                 b.Fabric.SenderWaitReductionRaw,
		"fabric.sustained":           b.Fabric.SenderWaitReductionSustained,
		"fabric.adaptive_sustained":  b.Fabric.AdaptiveVsBestStaticSustained,
		"fabric.adaptive_burst":      b.Fabric.AdaptiveVsBestStaticBurst,
		"fabric.adaptive_msg_saving": b.Fabric.AdaptiveMsgSavingsBurst,
		"nway.commit_wait":           b.NWay.CommitWaitSpeedupN3,
		"epoch.rejoin_speedup":       b.Epoch.RejoinSpeedup,
		"epoch.retention_savings":    b.Epoch.RetentionSavings,
		"epoch.flatness_gain":        b.Epoch.FlatnessGain,
	} {
		if v <= 0 {
			t.Errorf("%s not pinned", name)
		}
	}
}
