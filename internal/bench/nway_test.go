package bench

import (
	"testing"
	"time"
)

// TestNWaySweep runs a trimmed replica-set sweep and pins its invariants:
// the workload is identical across quorum settings (same section count,
// zero divergences), the all-replicas rule pays the laggard's delivery lag
// on every commit, and the majority quorum at N=3 keeps the laggard off
// the commit path entirely.
func TestNWaySweep(t *testing.T) {
	opts := NWayOpts{
		Seed:        1,
		Replicas:    []int{2, 3},
		Threads:     2,
		Iters:       100,
		CommitEvery: 4,
		Lag:         300 * time.Microsecond,
	}
	report, err := NWay(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 3 { // (2,2) + (3,2) + (3,3)
		t.Fatalf("point count = %d, want 3", len(report.Points))
	}
	sections := report.Points[0].Sections
	for _, p := range report.Points {
		if p.Sections != sections {
			t.Errorf("n=%d q=%d: sections = %d, want %d (workload must not vary)",
				p.Replicas, p.Quorum, p.Sections, sections)
		}
		if p.Divergences != 0 {
			t.Errorf("n=%d q=%d: %d divergences", p.Replicas, p.Quorum, p.Divergences)
		}
		if p.LiveBackups != p.Replicas-1 {
			t.Errorf("n=%d: %d live backups", p.Replicas, p.LiveBackups)
		}
		lagNS := opts.Lag.Nanoseconds()
		if p.Rule == "all" && p.CommitWaitMean < lagNS {
			t.Errorf("n=%d all-replicas rule: mean commit wait %dns below the %dns lag",
				p.Replicas, p.CommitWaitMean, lagNS)
		}
		if p.Replicas == 3 && p.Rule == "majority" && p.CommitWaitMean >= lagNS {
			t.Errorf("n=3 majority quorum: mean commit wait %dns still pays the laggard's %dns lag",
				p.CommitWaitMean, lagNS)
		}
	}
	if report.CommitWaitSpeedupN3 <= 1 {
		t.Errorf("commit-wait speedup at N=3 = %.2f, want > 1", report.CommitWaitSpeedupN3)
	}
}
