package bench

import "testing"

// TestBatchSweepReduction is the batching acceptance criterion: on the
// pbzip2-style det-section workload, BatchTuples=8 must cut both mailbox
// messages and total bytes (headers included) by at least 30% versus
// per-tuple streaming, while replaying the identical workload with zero
// divergences.
func TestBatchSweepReduction(t *testing.T) {
	points, err := BatchSweep([]int{1, 8}, DefaultBatchSweepOpts())
	if err != nil {
		t.Fatal(err)
	}
	base, batched := points[0], points[1]
	t.Logf("batch=1: blocks=%d tuples=%d messages=%d bytes=%d acks=%d sim=%.1fms",
		base.Blocks, base.Tuples, base.Messages, base.Bytes, base.AckMessages, base.SimMS)
	t.Logf("batch=8: blocks=%d tuples=%d messages=%d bytes=%d acks=%d batches=%d sim=%.1fms (msg %.1f%% byte %.1f%%)",
		batched.Blocks, batched.Tuples, batched.Messages, batched.Bytes, batched.AckMessages,
		batched.LogBatches, batched.SimMS, batched.MsgPct, batched.BytePct)

	if base.Blocks != batched.Blocks || base.Tuples != batched.Tuples {
		t.Fatalf("workload not identical: %d/%d blocks, %d/%d tuples",
			base.Blocks, batched.Blocks, base.Tuples, batched.Tuples)
	}
	if base.Divergences != 0 || batched.Divergences != 0 {
		t.Fatalf("divergences: %d unbatched, %d batched", base.Divergences, batched.Divergences)
	}
	if batched.MsgPct > 70 {
		t.Errorf("messages only reduced to %.1f%% of unbatched, need <=70%%", batched.MsgPct)
	}
	if batched.BytePct > 70 {
		t.Errorf("bytes only reduced to %.1f%% of unbatched, need <=70%%", batched.BytePct)
	}
	if batched.LogBatches == 0 {
		t.Error("no vectored transfers on the log ring")
	}
}
