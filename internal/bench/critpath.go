package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/obs/causal"
	"repro/internal/replication"
	"repro/internal/shm"
	"repro/internal/sim"
)

// CritPathPoint is the critical-path attribution of one traced workload
// run: where the time behind every committed output actually went, per
// stage of the record→flush→transfer→replay→ack pipeline.
type CritPathPoint struct {
	Workload string `json:"workload"` // "detshard" or "fabric-sustained"
	Threads  int    `json:"threads"`
	Shards   int    `json:"shards"`
	Batch    int    `json:"batch_tuples"`

	Outputs int `json:"outputs"` // committed outputs attributed
	Events  int `json:"events"`  // trace events analyzed

	// Stages is the per-stage distribution across every committed output
	// (causal.Attribute over the run's full event trace).
	Stages []causal.StageStat `json:"stages"`
	// DominantStage is the stage with the largest attributed total — the
	// pipeline's current bottleneck for this workload.
	DominantStage string `json:"dominant_stage"`

	SimMS       float64 `json:"sim_ms"`
	WallClockMS float64 `json:"wallclock_ms"`
}

// CritPathReport is the checked-in BENCH_critpath.json shape.
type CritPathReport struct {
	Points []CritPathPoint `json:"points"`
}

// CritPathOpts bounds the attribution runs.
type CritPathOpts struct {
	Seed    int64
	Threads int
	Shards  int // the sharded detshard setting compared against 1
}

// DefaultCritPathOpts matches the detshard/fabric sweeps' headline cell.
func DefaultCritPathOpts() CritPathOpts {
	return CritPathOpts{Seed: 1, Threads: 8, Shards: 4}
}

// CritPath runs the attribution benchmark: the detshard workload at one
// shard and at opts.Shards (the bottleneck should move off replay-grant
// when sharded), and the fabric sustained-overload workload (commit-wait
// on the bounded ring should dominate).
func CritPath(opts CritPathOpts) (CritPathReport, error) {
	var report CritPathReport
	for _, cell := range []struct {
		workload string
		shards   int
		batch    int
	}{
		{"detshard", 1, 0},
		{"detshard", opts.Shards, 0},
		{"fabric-sustained", 1, 8},
	} {
		p, err := critPathPoint(cell.workload, opts.Threads, cell.shards, cell.batch, opts)
		if err != nil {
			return report, fmt.Errorf("bench: critpath %s %dt/%ds: %w", cell.workload, opts.Threads, cell.shards, err)
		}
		report.Points = append(report.Points, p)
	}
	return report, nil
}

// critPathPoint runs one traced workload and attributes it. The harness
// mirrors detShardPoint/fabricPoint but wires a retaining tracer with the
// same scope names core uses, so the causal layer's ring pairing
// ("primary/ftns" → "shm/ftns.log") works identically to a full system.
func critPathPoint(workload string, threads, shards, batch int, opts CritPathOpts) (CritPathPoint, error) {
	point := CritPathPoint{Workload: workload, Threads: threads, Shards: shards, Batch: batch}
	start := time.Now()

	s := sim.New(opts.Seed)
	m := hw.New(s, hw.Opteron6376x4())
	pp, err := m.NewPartition("primary", 0, 1, 2, 3)
	if err != nil {
		return point, err
	}
	sp, err := m.NewPartition("secondary", 4, 5, 6, 7)
	if err != nil {
		return point, err
	}
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	pk, err := kernel.Boot(pp, kernel.Config{Name: "primary", Params: kp})
	if err != nil {
		return point, err
	}
	sk, err := kernel.Boot(sp, kernel.Config{Name: "secondary", Params: kp})
	if err != nil {
		return point, err
	}

	cfg := replication.DefaultConfig()
	cfg.DetShards = shards
	cfg.LogRingBytes = 16 << 10
	if batch > 0 {
		cfg.BatchTuples = batch
	}
	fabric := shm.NewFabric(s, pp.CrossLatency(sp))
	log := fabric.NewRing("log", 0, cfg.LogRingBytes)
	acks := fabric.NewRing("acks", 1, 256<<10)
	pns := replication.NewPrimary("ftns", pk, cfg, log, acks)
	sns := replication.NewSecondary("ftns", sk, cfg, log, acks)

	tr := obs.New(s, obs.Config{Trace: true})
	pns.Instrument(tr.Scope("primary/ftns"), tr.Registry())
	sns.Instrument(tr.Scope("secondary/ftns"), nil)
	log.Instrument(tr.Scope("shm/ftns.log"))
	acks.Instrument(tr.Scope("shm/ftns.acks"))

	var pst, sst detShardStats
	sopts := DefaultDetShardOpts()
	sopts.Seed = opts.Seed
	mkApp := func(st *detShardStats) (func(*replication.Thread), error) {
		switch workload {
		case "detshard":
			return detShardApp(threads, false, sopts, st), nil
		case "fabric-sustained":
			wl := fabricWorkloadFor("sustained", DefaultFabricOpts())
			wl.detShards = shards
			return fabricApp(threads, wl, st), nil
		}
		return nil, fmt.Errorf("unknown workload %q", workload)
	}
	papp, err := mkApp(&pst)
	if err != nil {
		return point, err
	}
	sapp, _ := mkApp(&sst)
	pns.Start("critpath", nil, papp)
	sns.Start("critpath", nil, sapp)
	if err := s.Run(); err != nil {
		return point, err
	}
	if !pst.Done || !sst.Done {
		return point, fmt.Errorf("workload incomplete: primary=%v secondary=%v", pst.Done, sst.Done)
	}

	a := causal.Attribute(causal.Build(tr.Events()))
	point.Outputs = len(a.Outputs)
	point.Events = len(tr.Events())
	point.Stages = a.Stages
	var maxTotal int64 = -1
	for _, st := range a.Stages {
		if st.TotalNs > maxTotal {
			maxTotal = st.TotalNs
			point.DominantStage = st.Stage
		}
	}
	point.SimMS = float64(sst.FinishedAt) / float64(time.Millisecond)
	point.WallClockMS = float64(time.Since(start)) / float64(time.Millisecond)
	return point, nil
}
