package bench

import (
	"time"

	"repro/internal/apps/clients"
	"repro/internal/apps/mongoose"
	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

// MixedResult is the §4.3 experiment: a replicated Mongoose (5 concurrent
// requests) sharing the 32-core primary with a non-replicated CPU-intensive
// application that would occupy all cores by itself, against Ubuntu running
// the same mix. The paper reports 760 vs 700 req/s (91%) and 1.3 vs 1.4 ms
// latency (+8%).
type MixedResult struct {
	UbuntuRPS  float64
	FTRPS      float64
	PctRPS     float64
	UbuntuLat  time.Duration
	FTLat      time.Duration
	PctLatency float64
}

// MixedOpts bound the experiment.
type MixedOpts struct {
	Seed   int64
	Window time.Duration
}

// DefaultMixedOpts measures over 8 s.
func DefaultMixedOpts() MixedOpts { return MixedOpts{Seed: 1, Window: 8 * time.Second} }

// cpuHog spawns one non-replicated spinner per core on the kernel.
func cpuHog(k *kernel.Kernel) {
	for i := 0; i < k.Cores(); i++ {
		k.Spawn("hog", func(t *kernel.Task) {
			for {
				t.Compute(time.Hour)
			}
		})
	}
}

// Mixed reproduces §4.3. FT-Linux runs a 32-core primary partition next to
// a single-core secondary partition.
func Mixed(opts MixedOpts) (MixedResult, error) {
	var res MixedResult
	mcfg := mongoose.DefaultConfig()
	abcfg := clients.ABConfig{
		Port:          mcfg.Port,
		Concurrency:   5,
		ResponseBytes: mongoose.PageSize(mcfg),
		Duration:      opts.Window,
		WarmUp:        opts.Window / 4,
	}
	measured := opts.Window - opts.Window/4

	// Ubuntu: same benchmark on 32 cores.
	base, err := core.NewBaseline(core.DefaultConfig(opts.Seed))
	if err != nil {
		return res, err
	}
	bclient, err := base.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		return res, err
	}
	var bst mongoose.Stats
	base.LaunchApp("mongoose", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		mongoose.Run(th, socks, mcfg, &bst)
	})
	cpuHog(base.Kernel)
	var bab clients.ABStats
	clients.RunAB(bclient, abcfg, &bab)
	if err := base.Sim.RunUntil(sim.Time(opts.Window + time.Second)); err != nil {
		return res, err
	}
	res.UbuntuRPS = bab.Throughput(measured)
	res.UbuntuLat = bab.MeanLatency()

	// FT-Linux: 32-core primary, single-core secondary partition (§4.3).
	cfg := core.DefaultConfig(opts.Seed)
	cfg.SecondaryNodes = []int{4}
	cfg.SecondaryCores = 1
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return res, err
	}
	fclient, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		return res, err
	}
	var fst mongoose.Stats
	sys.LaunchApp("mongoose", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		mongoose.Run(th, socks, mcfg, &fst)
	})
	// The CPU hog runs OUTSIDE the FT-Namespace on the primary only.
	cpuHog(sys.Primary.Kernel)
	var fab clients.ABStats
	clients.RunAB(fclient, abcfg, &fab)
	if err := sys.Sim.RunUntil(sim.Time(opts.Window + time.Second)); err != nil {
		return res, err
	}
	res.FTRPS = fab.Throughput(measured)
	res.FTLat = fab.MeanLatency()
	if res.UbuntuRPS > 0 {
		res.PctRPS = 100 * res.FTRPS / res.UbuntuRPS
	}
	if res.UbuntuLat > 0 {
		res.PctLatency = 100 * (float64(res.FTLat)/float64(res.UbuntuLat) - 1)
	}
	return res, nil
}
