package bench

import (
	"fmt"
	"time"

	"repro/internal/apps/restream"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcpstack"
)

// EpochPoint is one (uptime, epochs on/off) cell of the checkpoint sweep:
// the same streaming workload runs for UptimeS seconds, the primary is
// killed, and the freed partition rejoins. With epochs off the survivor
// retains — and the fresh backup replays — the entire history back to
// boot; with epochs on both are bounded by the delta since the last
// quorum-verified checkpoint.
type EpochPoint struct {
	UptimeS float64 `json:"uptime_s"`
	Epochs  bool    `json:"epochs"`

	// Rejoin cost: resync-start until the fresh backup's replay head first
	// reaches the survivor's live frontier (resync-done only marks the
	// catch-up transfer draining; the backup still owes the replay work,
	// 58 us per tuple, before it could actually cover a second failure),
	// and the log messages it consumed along the way.
	RejoinMS        float64 `json:"rejoin_ms"`
	CatchupMessages uint64  `json:"catchup_messages"`

	// Retention on the recording side, sampled just before the kill.
	RetainedTuplesAtKill int   `json:"retained_tuples_at_kill"`
	RetainedBytesAtKill  int64 `json:"retained_bytes_at_kill"`

	EpochCuts   uint64  `json:"epoch_cuts"`
	PauseP90    int64   `json:"pause_p90_ns"` // stop-the-world cut pause (on runs)
	Divergences uint64  `json:"divergences"`
	WallClockMS float64 `json:"wallclock_ms"`
}

// EpochReport is the checked-in BENCH_epoch.json shape: the sweep points
// plus the headline ratios the acceptance gate reads, all measured at the
// longest uptime — where the epochs-off legacy path is at its worst and a
// flat-in-uptime rejoin matters most.
type EpochReport struct {
	IntervalMS int64        `json:"epoch_interval_ms"`
	Points     []EpochPoint `json:"points"`

	// RejoinSpeedup and RetentionSavings compare off/on at max uptime
	// (above 1 = epochs win). RejoinGrowthOff/On are each mode's rejoin
	// time at max uptime over min uptime: off grows with history,
	// on stays near 1 (flat). FlatnessGain is their quotient.
	RejoinSpeedup    float64 `json:"rejoin_speedup"`
	RetentionSavings float64 `json:"retention_savings"`
	RejoinGrowthOff  float64 `json:"rejoin_growth_off"`
	RejoinGrowthOn   float64 `json:"rejoin_growth_on"`
	FlatnessGain     float64 `json:"flatness_gain"`
}

// EpochOpts bounds the sweep.
type EpochOpts struct {
	Seed     int64
	Uptimes  []time.Duration // kill times, ascending
	Interval time.Duration   // epoch checkpoint interval
	Tail     time.Duration   // run past the rejoin before sampling
}

// DefaultEpochOpts sweeps a 4x uptime range at a 250 ms epoch interval.
// The rejoin delay and NIC driver reload are trimmed below their
// deployment defaults so the measured rejoin time is the history-dependent
// part (transfer + catch-up replay), not fixed reload latency.
func DefaultEpochOpts() EpochOpts {
	return EpochOpts{
		Seed:     1,
		Uptimes:  []time.Duration{4 * time.Second, 8 * time.Second, 16 * time.Second},
		Interval: 250 * time.Millisecond,
		Tail:     4 * time.Second,
	}
}

// Epoch runs the retention/rejoin sweep with epochs off and on at every
// uptime and derives the headline ratios from the endpoints.
func Epoch(opts EpochOpts) (EpochReport, error) {
	report := EpochReport{IntervalMS: opts.Interval.Milliseconds()}
	for _, up := range opts.Uptimes {
		for _, epochs := range []bool{false, true} {
			p, err := epochPoint(up, epochs, opts)
			if err != nil {
				return report, fmt.Errorf("bench: epoch uptime=%v epochs=%v: %w", up, epochs, err)
			}
			report.Points = append(report.Points, p)
		}
	}
	tMin := opts.Uptimes[0].Seconds()
	tMax := opts.Uptimes[len(opts.Uptimes)-1].Seconds()
	offMin, onMin := report.find(tMin, false), report.find(tMin, true)
	offMax, onMax := report.find(tMax, false), report.find(tMax, true)
	if offMax != nil && onMax != nil {
		report.RejoinSpeedup = fratio(offMax.RejoinMS, onMax.RejoinMS)
		report.RetentionSavings = ratio(int64(offMax.RetainedTuplesAtKill), int64(onMax.RetainedTuplesAtKill))
	}
	if offMin != nil && offMax != nil {
		report.RejoinGrowthOff = fratio(offMax.RejoinMS, offMin.RejoinMS)
	}
	if onMin != nil && onMax != nil {
		report.RejoinGrowthOn = fratio(onMax.RejoinMS, onMin.RejoinMS)
	}
	report.FlatnessGain = fratio(report.RejoinGrowthOff, report.RejoinGrowthOn)
	return report, nil
}

// find returns the point at (uptime, epochs), or nil.
func (r *EpochReport) find(uptimeS float64, epochs bool) *EpochPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.UptimeS == uptimeS && p.Epochs == epochs {
			return p
		}
	}
	return nil
}

func fratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

func epochPoint(uptime time.Duration, epochs bool, opts EpochOpts) (EpochPoint, error) {
	point := EpochPoint{UptimeS: uptime.Seconds(), Epochs: epochs}
	start := time.Now()

	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	tcp := tcpstack.DefaultParams()
	tcp.MSS = 16 << 10
	const rejoinDelay = 500 * time.Millisecond
	coreOpts := []core.Option{
		core.WithSeed(opts.Seed),
		core.WithKernelParams(kp),
		core.WithTCP(tcp),
		core.WithNICDriverLoadTime(time.Millisecond),
		core.WithRejoinDelay(rejoinDelay),
		core.WithTrace(),
	}
	if epochs {
		coreOpts = append(coreOpts, core.WithEpochCheckpoints(opts.Interval, 0))
	}
	sys, err := core.New(coreOpts...)
	if err != nil {
		return point, err
	}
	client, err := sys.AttachNetwork(simnet.LinkConfig{BitsPerSec: 100e6, Latency: 100 * time.Microsecond})
	if err != nil {
		return point, err
	}
	// The stream total exceeds what the link can carry in any swept run, so
	// sections keep flowing through the kill, the rejoin, and the tail.
	sys.Run(core.App{Name: "stream", State: func() core.AppState {
		return restream.New(restream.Config{Port: 80, Chunk: 64 << 10, Total: 1 << 30})
	}})
	client.Kernel.Spawn("drain", func(tk *kernel.Task) {
		c, err := client.Stack.Connect(tk, client.ServerAddr(80))
		if err != nil {
			return
		}
		for {
			if _, err := c.Recv(tk, 256<<10); err != nil {
				return
			}
		}
	})

	// Retention is sampled on the recording side an instant before the
	// kill: that is the history a promotion inherits and a rejoin ships.
	sys.Sim.Schedule(uptime-time.Millisecond, func() {
		point.RetainedTuplesAtKill = sys.Active().NS.RetainedTuples()
		point.RetainedBytesAtKill = sys.Active().NS.RetainedBytes()
	})
	sys.InjectPrimaryFailure(uptime, hw.CoreFailStop)

	// Catch-up completion: the first instant after the rejoin at which the
	// fresh backup's replay head has reached the (still-advancing) live
	// frontier. Replay drains far faster than the workload records, so a
	// millisecond poll observes the caught-up state reliably.
	var caughtAt sim.Time
	var poll func()
	poll = func() {
		if caughtAt == 0 && sys.State() == core.StateReplicated &&
			sys.Active().NS.SeqGlobal() == sys.Standby().NS.ReplayHead() {
			caughtAt = sys.Sim.Now()
			return
		}
		if caughtAt == 0 {
			sys.Sim.Schedule(time.Millisecond, poll)
		}
	}
	sys.Sim.Schedule(uptime+rejoinDelay, poll)

	if err := sys.Sim.RunUntil(sim.Time(uptime + rejoinDelay + opts.Tail)); err != nil {
		return point, err
	}
	if err := sys.RejoinErr(); err != nil {
		return point, fmt.Errorf("rejoin: %w", err)
	}
	if sys.State() != core.StateReplicated {
		return point, fmt.Errorf("end state %v, want replicated", sys.State())
	}

	var started sim.Time
	for _, ev := range sys.Obs.Events() {
		if ev.Kind == obs.ResyncStart && started == 0 {
			started = ev.At
		}
	}
	if started == 0 || caughtAt == 0 || caughtAt < started {
		return point, fmt.Errorf("rejoin incomplete (resync-start=%v caught-up=%v)", started, caughtAt)
	}
	point.RejoinMS = float64(caughtAt.Sub(started)) / float64(time.Millisecond)
	point.CatchupMessages = sys.Standby().NS.Stats().LogMessages
	point.EpochCuts = sys.Active().NS.Stats().EpochCuts
	point.Divergences = sys.Active().NS.Stats().Divergences + sys.Standby().NS.Stats().Divergences
	for _, h := range sys.Obs.Registry().Snapshot().Histograms {
		if h.Name == "ftns.epoch.pause" && h.Count > 0 {
			point.PauseP90 = h.P90
		}
	}
	point.WallClockMS = float64(time.Since(start)) / float64(time.Millisecond)
	return point, nil
}
