package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/pthread"
	"repro/internal/replication"
	"repro/internal/shm"
	"repro/internal/sim"
)

// FabricPoint is one (mode, workload, threads, batch) cell of the
// shared-memory fabric sweep. Three sender modes are compared:
//
//   - "locked":   the pre-optimization baseline — every blocking transfer
//     serializes on a per-ring sender mutex and pays a modeled copy cost
//     while holding it (shm.SenderLockedCopy).
//   - "lockfree": the reserve/commit MPSC path with the static BatchTuples
//     policy — claims are FIFO tickets, publication is one release-store,
//     senders only ever block on ring capacity.
//   - "adaptive": lock-free plus the AIMD batching controller
//     (Config.AdaptiveBatching) governing the effective batch size.
//
// Three workloads isolate the claims. "raw" hammers one ring with N
// producer processes directly — no recorder in the way — so the sender
// blocking the two fabric models cost is measured alone: the locked-copy
// mutex serializes producers while the reservation path admits them
// concurrently. "burst" records an application emitting at tight spacing
// through an ample ring with no output commits: acks keep pace with
// delivery, every flush observes low lag, and the controller should grow
// toward MaxBatchTuples (fewer, fuller transfers). "sustained" records
// through a bounded ring at one det shard — replay dispatch cannot keep
// pace, so delivery waits on the backup consuming slots, receipt acks lag
// the full ring, and periodic strict commits wait out the unacked
// backlog; the controller should shrink toward the floor, because a big
// static batch only deepens (in tuples) the backlog every commit drains.
type FabricPoint struct {
	Mode        string `json:"mode"`     // "locked", "lockfree", "adaptive"
	Workload    string `json:"workload"` // "raw", "burst", "sustained"
	Threads     int    `json:"threads"`
	BatchTuples int    `json:"batch_tuples"` // static batch (adaptive: starting batch)

	Sections uint64 `json:"sections"` // det sections recorded (0 on raw)
	Tuples   int64  `json:"tuples"`   // payloads through the measured ring

	// Measured-ring traffic: transfers, bytes (incl. per-transfer
	// headers), and the coalescing ratio the batch policy achieved.
	Messages    int64   `json:"messages"`
	Bytes       int64   `json:"bytes"`
	MsgPerTuple float64 `json:"msg_per_tuple"`

	// Sender blocking on the measured ring — the signal the lock-free
	// reservation exists to remove. SendWaitMS is total virtual time
	// senders spent parked (on the baseline's sender mutex, or on
	// capacity backpressure); LockWaits and ReserveWaits count the parks
	// by kind.
	SendWaitMS   float64 `json:"send_wait_ms"`
	LockWaits    int64   `json:"lock_waits"`
	ReserveWaits int64   `json:"reserve_waits"`

	// Output-commit latency and the sequencer-lock wait on the record
	// path (replicated workloads only; burst runs without commits).
	CommitWaitP50 int64 `json:"commit_wait_p50_ns"`
	CommitWaitP90 int64 `json:"commit_wait_p90_ns"`
	ShardWaitP50  int64 `json:"shard_wait_p50_ns"`
	FlushLagP50   int64 `json:"flush_lag_p50_tuples"`

	// EffBatchEnd is the controller's effective batch size when the run
	// ended (adaptive mode only; 0 otherwise).
	EffBatchEnd int64 `json:"eff_batch_end"`

	Divergences uint64  `json:"divergences"`
	SimMS       float64 `json:"sim_ms"`
	WallClockMS float64 `json:"wallclock_ms"`

	Metrics obs.Snapshot `json:"metrics"`
}

// FabricReport is the checked-in BENCH_fabric.json shape: the sweep points
// plus the headline ratios the acceptance gates read, all taken at
// MeasuredAt threads.
//
// SenderWaitReduction* compare total sender blocking, locked over
// lock-free (>1 means the reservation path blocks less). The raw ratio is
// the structural one: with an ample ring the reservation path never
// blocks at all, while the baseline's producers queue on the sender
// mutex. On sustained both modes share the capacity backpressure wait, so
// that ratio isolates what the mutex and copy hold add on top.
//
// AdaptiveVsBestStatic* compare the adaptive controller against the best
// static BatchTuples found by the batch sweep: on sustained by completion
// time (best static SimMS over adaptive SimMS; ~1 means adaptive matched
// the best hand-tuned setting), on burst by transfer count (best static
// messages over adaptive messages). AdaptiveMsgSavingsBurst is the
// transfer count of the static starting batch over adaptive's — growth
// paying for itself without retuning.
type FabricReport struct {
	MeasuredAt int           `json:"measured_at_threads"`
	Points     []FabricPoint `json:"points"`

	SenderWaitReductionRaw       float64 `json:"sender_wait_reduction_raw"`
	SenderWaitReductionSustained float64 `json:"sender_wait_reduction_sustained"`

	AdaptiveVsBestStaticSustained float64 `json:"adaptive_vs_best_static_sustained"`
	AdaptiveVsBestStaticBurst     float64 `json:"adaptive_vs_best_static_burst"`
	AdaptiveMsgSavingsBurst       float64 `json:"adaptive_msg_savings_burst"`
}

// FabricOpts bounds the fabric sweep.
type FabricOpts struct {
	Seed          int64
	Threads       []int // thread counts for the mode comparison
	StaticBatches []int // static BatchTuples swept at MeasuredAt threads
	BatchTuples   int   // batch used by the mode comparison (and adaptive start)

	RawBatches     int // batched sends per producer, raw workload
	BurstIters     int // iterations per thread, burst workload
	SustainedIters int // iterations per thread, sustained workload
	CommitEvery    int // OnStable cadence on the sustained workload
}

// DefaultFabricOpts sweeps 1..8 threads; the static batch sweep brackets
// the default batch from both sides.
func DefaultFabricOpts() FabricOpts {
	return FabricOpts{
		Seed:           1,
		Threads:        []int{1, 2, 4, 8},
		StaticBatches:  []int{1, 4, 16, 32},
		BatchTuples:    8,
		RawBatches:     200,
		BurstIters:     150,
		SustainedIters: 200,
		CommitEvery:    8,
	}
}

// Fabric runs the sender-model and batching sweep: the raw producer scaling
// curve for both fabric models, the three modes across the thread counts on
// both replicated workloads, then the static batch sweep at MeasuredAt
// threads that the adaptive headline ratios are computed against.
func Fabric(opts FabricOpts) (FabricReport, error) {
	var report FabricReport
	for _, threads := range opts.Threads {
		if threads <= 8 && threads > report.MeasuredAt {
			report.MeasuredAt = threads
		}
	}
	for _, threads := range opts.Threads {
		for _, mode := range []string{"locked", "lockfree"} {
			p, err := fabricRawPoint(mode, threads, opts)
			if err != nil {
				return report, fmt.Errorf("bench: fabric %s/raw %dt: %w", mode, threads, err)
			}
			report.Points = append(report.Points, p)
		}
	}
	for _, workload := range []string{"burst", "sustained"} {
		for _, threads := range opts.Threads {
			for _, mode := range []string{"locked", "lockfree", "adaptive"} {
				p, err := fabricPoint(mode, workload, threads, opts.BatchTuples, opts)
				if err != nil {
					return report, fmt.Errorf("bench: fabric %s/%s %dt: %w", mode, workload, threads, err)
				}
				report.Points = append(report.Points, p)
			}
		}
		for _, b := range opts.StaticBatches {
			if b == opts.BatchTuples {
				continue // already measured as the "lockfree" mode point
			}
			p, err := fabricPoint("lockfree", workload, report.MeasuredAt, b, opts)
			if err != nil {
				return report, fmt.Errorf("bench: fabric static b=%d %s: %w", b, workload, err)
			}
			report.Points = append(report.Points, p)
		}
	}

	lockedR := report.Find("locked", "raw", report.MeasuredAt, opts.BatchTuples)
	freeR := report.Find("lockfree", "raw", report.MeasuredAt, opts.BatchTuples)
	lockedS := report.Find("locked", "sustained", report.MeasuredAt, opts.BatchTuples)
	freeS := report.Find("lockfree", "sustained", report.MeasuredAt, opts.BatchTuples)
	if lockedR != nil && freeR != nil {
		report.SenderWaitReductionRaw = waitRatio(lockedR.SendWaitMS, freeR.SendWaitMS)
	}
	if lockedS != nil && freeS != nil {
		report.SenderWaitReductionSustained = waitRatio(lockedS.SendWaitMS, freeS.SendWaitMS)
	}

	if ad := report.Find("adaptive", "sustained", report.MeasuredAt, opts.BatchTuples); ad != nil {
		if best := report.bestStatic("sustained", opts, func(p *FabricPoint) float64 { return p.SimMS }); best != nil {
			report.AdaptiveVsBestStaticSustained = best.SimMS / ad.SimMS
		}
	}
	if ad := report.Find("adaptive", "burst", report.MeasuredAt, opts.BatchTuples); ad != nil {
		if best := report.bestStatic("burst", opts, func(p *FabricPoint) float64 { return float64(p.Messages) }); best != nil {
			report.AdaptiveVsBestStaticBurst = float64(best.Messages) / float64(ad.Messages)
		}
		if freeB := report.Find("lockfree", "burst", report.MeasuredAt, opts.BatchTuples); freeB != nil {
			report.AdaptiveMsgSavingsBurst = float64(freeB.Messages) / float64(ad.Messages)
		}
	}
	return report, nil
}

// Find returns the point at (mode, workload, threads, batch), or nil.
func (r *FabricReport) Find(mode, workload string, threads, batch int) *FabricPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Mode == mode && p.Workload == workload && p.Threads == threads && p.BatchTuples == batch {
			return p
		}
	}
	return nil
}

// bestStatic returns the lock-free static point at MeasuredAt threads
// minimizing cost — the strongest hand-tuned competitor on this workload.
func (r *FabricReport) bestStatic(workload string, opts FabricOpts, cost func(*FabricPoint) float64) *FabricPoint {
	var best *FabricPoint
	consider := append([]int{opts.BatchTuples}, opts.StaticBatches...)
	for _, b := range consider {
		p := r.Find("lockfree", workload, r.MeasuredAt, b)
		if p != nil && (best == nil || cost(p) < cost(best)) {
			best = p
		}
	}
	return best
}

// waitRatio guards the division: a lock-free run can legitimately record
// zero sender blocking, in which case the reduction is reported against
// one microsecond rather than infinity.
func waitRatio(locked, free float64) float64 {
	if free < 1e-3 {
		free = 1e-3
	}
	return locked / free
}

// fabricRawPoint measures the fabric alone: threads producer processes
// each push RawBatches batches of BatchTuples 64-byte payloads into one
// ample ring on a fixed cadence while a drain process consumes at ring
// speed. The cadence is chosen so the locked-copy baseline's critical
// section (≈1us of slot accounting per payload plus the modeled memcpy)
// saturates the sender mutex at 8 producers, while the reservation path —
// which pays nothing on an uncontended, uncapped ring — admits every
// producer without parking.
func fabricRawPoint(mode string, threads int, opts FabricOpts) (FabricPoint, error) {
	point := FabricPoint{Mode: mode, Workload: "raw", Threads: threads, BatchTuples: opts.BatchTuples}
	start := time.Now()

	s := sim.New(opts.Seed)
	m := hw.New(s, hw.Opteron6376x4())
	pp, err := m.NewPartition("primary", 0, 1, 2, 3)
	if err != nil {
		return point, err
	}
	sp, err := m.NewPartition("secondary", 4, 5, 6, 7)
	if err != nil {
		return point, err
	}
	fabric := shm.NewFabric(s, pp.CrossLatency(sp))
	if mode == "locked" {
		fabric.SetSenderModel(shm.SenderLockedCopy, shm.LockedCopyCost{})
	}
	ring := fabric.NewRing("raw", 0, 1<<20)

	const gap = 20 * time.Microsecond
	total := threads * opts.RawBatches * opts.BatchTuples
	got := 0
	s.Spawn("drain", func(p *sim.Proc) {
		for got < total {
			got += len(ring.RecvBatch(p, 0))
		}
	})
	for i := 0; i < threads; i++ {
		s.Spawn("producer", func(p *sim.Proc) {
			batch := make([]shm.Message, opts.BatchTuples)
			for j := range batch {
				batch[j] = shm.Message{Kind: 1, Size: 64}
			}
			for b := 0; b < opts.RawBatches; b++ {
				ring.SendBatch(p, batch)
				p.Sleep(gap)
			}
		})
	}
	if err := s.Run(); err != nil {
		return point, err
	}
	if got != total {
		return point, fmt.Errorf("raw drain incomplete: %d/%d payloads", got, total)
	}

	st := ring.Stats()
	point.Tuples = st.Payloads
	point.Messages = st.Messages
	point.Bytes = st.Bytes
	if st.Payloads > 0 {
		point.MsgPerTuple = float64(st.Messages) / float64(st.Payloads)
	}
	point.SendWaitMS = float64(st.SendWaitNs) / float64(time.Millisecond)
	point.LockWaits = st.LockWaits
	point.ReserveWaits = st.ReserveWaits
	point.SimMS = float64(s.Now()) / float64(time.Millisecond)
	point.WallClockMS = float64(time.Since(start)) / float64(time.Millisecond)
	return point, nil
}

// fabricWorkload parameterizes the per-point replicated application.
type fabricWorkload struct {
	iters       int
	commitEvery int           // 0: no output commits
	thinkMin    time.Duration // per-iteration think floor
	thinkSpan   time.Duration // uniform extra think
	ringBytes   int64         // log ring capacity
	detShards   int
}

func fabricWorkloadFor(workload string, opts FabricOpts) fabricWorkload {
	if workload == "burst" {
		// Tight emission into an ample ring, sections spread over four det
		// shards: at 8 threads a 32-tuple batch fills well inside the
		// flush deadline, so the batch policy — not the deadline — decides
		// the transfer count, and nothing ever stalls.
		return fabricWorkload{
			iters:     opts.BurstIters,
			thinkMin:  10 * time.Microsecond,
			thinkSpan: 10 * time.Microsecond,
			ringBytes: 2 << 20,
			detShards: 4,
		}
	}
	// Sustained overload at one det shard: the serial replay dispatch
	// consumes the bounded ring slower than 8 threads fill it, so
	// delivery — and with it the receipt ack stream — waits on the
	// backup, every strict commit stalls on the backlog, and flush lag
	// rides the full ring. How many TUPLES the 16 KB ring holds is set by
	// the batch size (64-byte headers amortize across a batch), which is
	// exactly the backlog depth each commit waits out.
	return fabricWorkload{
		iters:       opts.SustainedIters,
		commitEvery: opts.CommitEvery,
		thinkMin:    100 * time.Microsecond,
		thinkSpan:   100 * time.Microsecond,
		ringBytes:   16 << 10,
		detShards:   1,
	}
}

// fabricApp is the replicated sweep workload: nThreads threads with
// independent mutexes (sections sequence under distinct objects) looping
// think/lock/unlock, with an optional periodic output commit.
func fabricApp(nThreads int, wl fabricWorkload, st *detShardStats) func(*replication.Thread) {
	return func(root *replication.Thread) {
		lib := root.Lib()
		locks := make([]*pthread.Mutex, nThreads)
		for i := range locks {
			locks[i] = lib.NewMutex()
		}
		var threads []*replication.Thread
		for i := 0; i < nThreads; i++ {
			mu := locks[i]
			threads = append(threads, root.NS().SpawnThread(root, "w", func(th *replication.Thread) {
				t := th.Task()
				for j := 0; j < wl.iters; j++ {
					think := wl.thinkMin
					if wl.thinkSpan > 0 {
						think += time.Duration(t.Kernel().Sim().Rand().Int63n(int64(wl.thinkSpan)))
					}
					t.Compute(think)
					mu.Lock(t)
					t.Compute(2 * time.Microsecond)
					mu.Unlock(t)
					if wl.commitEvery > 0 && (j+1)%wl.commitEvery == 0 {
						th.NS().OnStable(func() {})
					}
				}
			}))
		}
		for _, th := range threads {
			root.Join(th)
		}
		st.Done = true
		st.FinishedAt = root.Task().Now()
	}
}

func fabricPoint(mode, workload string, threads, batch int, opts FabricOpts) (FabricPoint, error) {
	point := FabricPoint{Mode: mode, Workload: workload, Threads: threads, BatchTuples: batch}
	start := time.Now()
	wl := fabricWorkloadFor(workload, opts)

	s := sim.New(opts.Seed)
	m := hw.New(s, hw.Opteron6376x4())
	pp, err := m.NewPartition("primary", 0, 1, 2, 3)
	if err != nil {
		return point, err
	}
	sp, err := m.NewPartition("secondary", 4, 5, 6, 7)
	if err != nil {
		return point, err
	}
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	pk, err := kernel.Boot(pp, kernel.Config{Name: "primary", Params: kp})
	if err != nil {
		return point, err
	}
	sk, err := kernel.Boot(sp, kernel.Config{Name: "secondary", Params: kp})
	if err != nil {
		return point, err
	}

	cfg := replication.DefaultConfig()
	cfg.DetShards = wl.detShards
	cfg.LogRingBytes = wl.ringBytes
	cfg.BatchTuples = batch
	if mode == "adaptive" {
		cfg.AdaptiveBatching = true
	}
	fabric := shm.NewFabric(s, pp.CrossLatency(sp))
	if mode == "locked" {
		fabric.SetSenderModel(shm.SenderLockedCopy, shm.LockedCopyCost{})
	}
	log := fabric.NewRing("log", 0, cfg.LogRingBytes)
	acks := fabric.NewRing("acks", 1, 256<<10)
	pns := replication.NewPrimary("ftns", pk, cfg, log, acks)
	sns := replication.NewSecondary("ftns", sk, cfg, log, acks)

	reg := obs.NewRegistry()
	pns.Instrument(nil, reg)
	sns.Instrument(nil, reg)

	var pst, sst detShardStats
	pns.Start("fabric", nil, fabricApp(threads, wl, &pst))
	sns.Start("fabric", nil, fabricApp(threads, wl, &sst))
	if err := s.Run(); err != nil {
		return point, err
	}
	if !pst.Done || !sst.Done {
		return point, fmt.Errorf("workload incomplete: primary=%v secondary=%v", pst.Done, sst.Done)
	}

	st := log.Stats()
	point.Sections = pns.SeqGlobal()
	point.Tuples = st.Payloads
	point.Messages = st.Messages
	point.Bytes = st.Bytes
	if st.Payloads > 0 {
		point.MsgPerTuple = float64(st.Messages) / float64(st.Payloads)
	}
	point.SendWaitMS = float64(st.SendWaitNs) / float64(time.Millisecond)
	point.LockWaits = st.LockWaits
	point.ReserveWaits = st.ReserveWaits
	point.Divergences = sns.Stats().Divergences
	point.SimMS = float64(sst.FinishedAt) / float64(time.Millisecond)
	point.WallClockMS = float64(time.Since(start)) / float64(time.Millisecond)
	point.Metrics = reg.Snapshot()
	if h, ok := point.Metrics.Histogram("ftns.commit.wait"); ok {
		point.CommitWaitP50, point.CommitWaitP90 = h.P50, h.P90
	}
	if h, ok := point.Metrics.Histogram("ftns.shard.wait"); ok {
		point.ShardWaitP50 = h.P50
	}
	if h, ok := point.Metrics.Histogram("ftns.flush.lag"); ok {
		point.FlushLagP50 = h.P50
	}
	if g, ok := point.Metrics.Gauge("ftns.ctrl.batch"); ok {
		point.EffBatchEnd = g
	}
	return point, nil
}
