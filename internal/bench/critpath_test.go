package bench

import "testing"

// TestCritPathShardingMovesBottleneck runs the detshard attribution cells
// and asserts the tentpole's claim end to end: at one shard the pipeline
// stalls behind serial replay dispatch (replay-grant and commit-wait
// carry real time); at four shards those stall totals collapse.
func TestCritPathShardingMovesBottleneck(t *testing.T) {
	if testing.Short() {
		t.Skip("full traced sweep in -short mode")
	}
	opts := DefaultCritPathOpts()
	report, err := CritPath(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Points) != 3 {
		t.Fatalf("points = %d, want 3", len(report.Points))
	}
	var narrow, wide *CritPathPoint
	for i := range report.Points {
		p := &report.Points[i]
		if p.Workload != "detshard" {
			continue
		}
		if p.Shards == 1 {
			narrow = p
		} else {
			wide = p
		}
	}
	if narrow == nil || wide == nil {
		t.Fatal("missing detshard cells")
	}
	if narrow.Outputs == 0 || wide.Outputs == 0 {
		t.Fatalf("no committed outputs attributed: narrow=%d wide=%d", narrow.Outputs, wide.Outputs)
	}
	total := func(p *CritPathPoint, stage string) int64 {
		for _, st := range p.Stages {
			if st.Stage == stage {
				return st.TotalNs
			}
		}
		t.Fatalf("stage %q missing from %s/%d", stage, p.Workload, p.Shards)
		return 0
	}
	for _, stage := range []string{"replay-grant", "commit-wait"} {
		n, w := total(narrow, stage), total(wide, stage)
		if w*4 >= n {
			t.Errorf("%s total: 1 shard %dns vs %d shards %dns; sharding did not collapse the stall", stage, n, wide.Shards, w)
		}
	}
	if narrow.DominantStage == "transfer" || narrow.DominantStage == "batch-residency" {
		t.Errorf("1-shard dominant stage = %s; expected a sequencing/commit stall", narrow.DominantStage)
	}
}
