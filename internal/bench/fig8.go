package bench

import (
	"time"

	"repro/internal/apps/clients"
	"repro/internal/apps/fileserver"
	"repro/internal/core"
	"repro/internal/hw"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

// Fig8Result is the §4.4 failover experiment: downloading a large file
// over a 1 Gb/s link from (a) stock Ubuntu, (b) FT-Linux failure-free, and
// (c) FT-Linux with the primary killed mid-transfer.
type Fig8Result struct {
	UbuntuMbps float64 // steady transfer rate, Linux
	FTMbps     float64 // steady transfer rate, FT-Linux failure-free
	PctFT      float64

	// Failover scenario.
	FailoverSeries  []clients.Sample // per-second received bytes (the Fig. 8 curve)
	OutageSeconds   float64          // time at ~zero throughput around the failure
	RecoveredMbps   float64          // rate after recovery
	DriverShare     float64          // fraction of the outage spent reloading the NIC driver
	Complete        bool             // the client received the entire file
	Corrupted       bool             // any content mismatch
	ConnectionAlive bool             // the TCP connection survived the failover
}

// Fig8Opts bound the experiment.
type Fig8Opts struct {
	Seed     int64
	FileSize int64
	FailAt   time.Duration
	MSS      int // GSO-style segment size for bulk transfer
}

// DefaultFig8Opts uses the paper's 10 GB file with the failure injected
// one third into the transfer.
func DefaultFig8Opts() Fig8Opts {
	return Fig8Opts{Seed: 1, FileSize: 10 << 30, FailAt: 30 * time.Second, MSS: 32 << 10}
}

// QuickFig8Opts is a scaled-down variant for unit benchmarks.
func QuickFig8Opts() Fig8Opts {
	return Fig8Opts{Seed: 1, FileSize: 1 << 30, FailAt: 4 * time.Second, MSS: 32 << 10}
}

func fig8Verify(off int64, data []byte) bool {
	want := make([]byte, len(data))
	fileserver.Fill(want, off)
	for i := range data {
		if data[i] != want[i] {
			return false
		}
	}
	return true
}

// Fig8 reproduces Figure 8.
func Fig8(opts Fig8Opts) (Fig8Result, error) {
	var res Fig8Result
	fcfg := fileserver.DefaultConfig()
	fcfg.FileSize = opts.FileSize

	run := func(replicated bool, failAt time.Duration) (*clients.DownloadStats, *core.System, error) {
		cfg := core.DefaultConfig(opts.Seed)
		cfg.TCP.MSS = opts.MSS
		st := &clients.DownloadStats{}
		deadline := sim.Time(10*time.Minute + time.Duration(opts.FileSize/1000)) // generous
		if !replicated {
			base, err := core.NewBaseline(cfg)
			if err != nil {
				return nil, nil, err
			}
			client, err := base.AttachNetwork(simnet.GigabitEthernet())
			if err != nil {
				return nil, nil, err
			}
			var fst fileserver.Stats
			base.LaunchApp("fileserver", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
				fileserver.Run(th, socks, fcfg, &fst)
			})
			clients.Download(client, fcfg.Port, opts.FileSize, time.Second, fig8Verify, st)
			if err := base.Sim.RunUntil(deadline); err != nil {
				return nil, nil, err
			}
			return st, nil, nil
		}
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return nil, nil, err
		}
		client, err := sys.AttachNetwork(simnet.GigabitEthernet())
		if err != nil {
			return nil, nil, err
		}
		var fst fileserver.Stats
		sys.LaunchApp("fileserver", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
			fileserver.Run(th, socks, fcfg, &fst)
		})
		clients.Download(client, fcfg.Port, opts.FileSize, time.Second, fig8Verify, st)
		if failAt > 0 {
			sys.InjectPrimaryFailure(failAt, hw.CoreFailStop)
		}
		if err := sys.Sim.RunUntil(deadline); err != nil {
			return nil, nil, err
		}
		return st, sys, nil
	}

	// Scenario (a): stock Ubuntu.
	ubuntu, _, err := run(false, 0)
	if err != nil {
		return res, err
	}
	res.UbuntuMbps = mbps(ubuntu.Received, ubuntu.FinishedAt)

	// Scenario (b): FT-Linux, failure-free.
	ft, _, err := run(true, 0)
	if err != nil {
		return res, err
	}
	res.FTMbps = mbps(ft.Received, ft.FinishedAt)
	res.PctFT = 100 * res.FTMbps / res.UbuntuMbps

	// Scenario (c): FT-Linux with primary failure mid-transfer.
	fo, sys, err := run(true, opts.FailAt)
	if err != nil {
		return res, err
	}
	res.FailoverSeries = fo.Series
	res.Complete = fo.Complete
	res.Corrupted = fo.Corrupted
	res.ConnectionAlive = fo.Complete // EOF-free completion implies the conn survived
	// Outage: consecutive near-zero samples around the failure.
	outage := 0
	for _, s := range fo.Series {
		if s.At > sys.FailedAt.Add(-time.Second) && s.Bytes < (1<<20) {
			outage++
		}
		if s.At > sys.LiveAt.Add(2*time.Second) {
			break
		}
	}
	res.OutageSeconds = float64(outage)
	if sys.LiveAt > sys.FailedAt {
		res.DriverShare = float64(sys.Cfg.NICDriverLoadTime) / float64(sys.LiveAt.Sub(sys.FailedAt))
	}
	// Recovery rate: samples well after promotion until completion.
	var recovered int64
	var rn int
	for _, s := range fo.Series {
		if s.At > sys.LiveAt.Add(2*time.Second) && s.Bytes > 0 {
			recovered += s.Bytes
			rn++
		}
	}
	if rn > 0 {
		res.RecoveredMbps = float64(recovered) * 8 / float64(rn) / 1e6
	}
	return res, nil
}

func mbps(bytes int64, elapsed sim.Time) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(bytes) * 8 / elapsed.Seconds() / 1e6
}
