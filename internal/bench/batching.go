package bench

import (
	"fmt"
	"time"

	"repro/internal/apps/pbzip2"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/replication"
	"repro/internal/shm"
	"repro/internal/sim"
)

// BatchPoint is one batch-size configuration of the log-streaming
// microbenchmark: the same pbzip2-style det-section workload is recorded
// and replayed at a given Config.BatchTuples, and the mailbox traffic the
// replication log generates is measured end to end (64-byte slot headers
// included). The workload itself is identical at every point — Blocks and
// Tuples must not change with the batch size; only how the tuples are
// packed onto the ring may.
type BatchPoint struct {
	BatchTuples int `json:"batch_tuples"`

	// Workload invariants (identical across points).
	Blocks int    `json:"blocks"` // pbzip2 blocks completed
	Tuples uint64 `json:"tuples"` // det-log tuples delivered to the backup

	// Mailbox traffic on the log + acks rings.
	Messages    int64 `json:"messages"`     // ring transfers (one header each)
	LogBatches  int64 `json:"log_batches"`  // vectored transfers (>1 tuple)
	AckMessages int64 `json:"ack_messages"` // cumulative acks sent by the replayer
	Bytes       int64 `json:"bytes"`        // payload + header bytes

	Divergences uint64  `json:"divergences"`
	SimMS       float64 `json:"sim_ms"`       // simulated completion time
	WallClockMS float64 `json:"wallclock_ms"` // host time to run the point
	MsgPct      float64 `json:"msg_pct"`      // Messages as % of the first point
	BytePct     float64 `json:"byte_pct"`     // Bytes as % of the first point

	// Metrics is the obs registry snapshot at the end of the point:
	// replay lag, commit-wait percentiles, batch fill levels, and ack
	// counts alongside the raw traffic numbers.
	Metrics obs.Snapshot `json:"metrics"`
}

// BatchSweepOpts bounds the per-point workload.
type BatchSweepOpts struct {
	Seed    int64
	Blocks  int // pbzip2 blocks per point
	Workers int
}

// DefaultBatchSweepOpts keeps each point well under a second of host time
// while still generating several hundred log tuples.
func DefaultBatchSweepOpts() BatchSweepOpts {
	return BatchSweepOpts{Seed: 1, Blocks: 48, Workers: 8}
}

// BatchSweep runs the record/replay pipeline at each Config.BatchTuples
// size over an identical workload and reports the traffic per point, with
// MsgPct/BytePct normalized to the first (typically unbatched) point.
func BatchSweep(sizes []int, opts BatchSweepOpts) ([]BatchPoint, error) {
	var points []BatchPoint
	for _, n := range sizes {
		p, err := batchPoint(n, opts)
		if err != nil {
			return nil, fmt.Errorf("bench: batch sweep at %d: %w", n, err)
		}
		points = append(points, p)
	}
	for i := range points {
		points[i].MsgPct = 100 * float64(points[i].Messages) / float64(points[0].Messages)
		points[i].BytePct = 100 * float64(points[i].Bytes) / float64(points[0].Bytes)
	}
	return points, nil
}

func batchPoint(batch int, opts BatchSweepOpts) (BatchPoint, error) {
	point := BatchPoint{BatchTuples: batch}
	start := time.Now()

	s := sim.New(opts.Seed)
	m := hw.New(s, hw.Opteron6376x4())
	pp, err := m.NewPartition("primary", 0, 1, 2, 3)
	if err != nil {
		return point, err
	}
	sp, err := m.NewPartition("secondary", 4, 5, 6, 7)
	if err != nil {
		return point, err
	}
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0 // exact traffic counts per point
	pk, err := kernel.Boot(pp, kernel.Config{Name: "primary", Params: kp})
	if err != nil {
		return point, err
	}
	sk, err := kernel.Boot(sp, kernel.Config{Name: "secondary", Params: kp})
	if err != nil {
		return point, err
	}

	cfg := replication.DefaultConfig()
	cfg.BatchTuples = batch
	fabric := shm.NewFabric(s, pp.CrossLatency(sp))
	log := fabric.NewRing("log", 0, cfg.LogRingBytes)
	acks := fabric.NewRing("acks", 1, 256<<10)
	pns := replication.NewPrimary("ftns", pk, cfg, log, acks)
	sns := replication.NewSecondary("ftns", sk, cfg, log, acks)

	// Metrics only, no event stream: nil scopes keep the hot path at one
	// pointer test per emit, while the registry collects commit-wait and
	// batch-fill distributions for the JSON output.
	reg := obs.NewRegistry()
	pns.Instrument(nil, reg)
	sns.Instrument(nil, reg)
	reg.Gauge("replay.lag", func() int64 {
		return int64(pns.SeqGlobal()) - int64(sns.ReplayHead())
	})

	app := pbzip2.DefaultConfig()
	app.Workers = opts.Workers
	app.MaxBlocks = opts.Blocks
	// Commit every few written blocks so the sweep actually exercises the
	// output-commit path: without it the commit-wait histogram sits at
	// count 0 and the batching win on commit latency is invisible.
	app.CommitEvery = 4
	var pst, sst pbzip2.Stats
	pns.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, app, &pst) })
	sns.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, app, &sst) })
	if err := s.Run(); err != nil {
		return point, err
	}
	if !pst.Done || !sst.Done {
		return point, fmt.Errorf("workload incomplete: primary=%v secondary=%v", pst.Done, sst.Done)
	}

	lst, ast := log.Stats(), acks.Stats()
	point.Blocks = sst.Blocks
	point.Tuples = uint64(log.Delivered())
	point.Messages = lst.Messages + ast.Messages
	point.LogBatches = lst.Batches
	point.AckMessages = ast.Messages
	point.Bytes = lst.Bytes + ast.Bytes
	point.Divergences = sns.Stats().Divergences
	point.SimMS = float64(sst.FinishedAt) / float64(time.Millisecond)
	point.WallClockMS = float64(time.Since(start)) / float64(time.Millisecond)
	point.Metrics = reg.Snapshot()
	return point, nil
}
