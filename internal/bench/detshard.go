package bench

import (
	"fmt"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/pthread"
	"repro/internal/replication"
	"repro/internal/shm"
	"repro/internal/sim"
)

// DetShardPoint is one (threads, shards, workload) cell of the per-object
// sequencing sweep. The workload is a lock/compute/unlock loop with a
// periodic output commit; "shared" contends every thread on one mutex (all
// sections sequence under one object, so sharding cannot help and must not
// hurt), while "independent" gives each thread its own mutex (sections
// sequence under distinct objects and may record and replay concurrently —
// the case the namespace-global mutex serializes for no reason).
type DetShardPoint struct {
	Threads  int    `json:"threads"`
	Shards   int    `json:"shards"`
	Workload string `json:"workload"` // "shared" or "independent"

	// Workload invariants (identical across shard settings).
	Sections uint64 `json:"sections"` // det sections recorded
	Tuples   uint64 `json:"tuples"`   // log tuples delivered to the backup

	// Output-commit latency on the primary: time from an OnStable request
	// until every tuple sent so far is acknowledged. At one shard the ack
	// stream drains behind the serial replay dispatch; sharded, acks return
	// at ring speed.
	CommitWaitP50 int64 `json:"commit_wait_p50_ns"`
	CommitWaitP90 int64 `json:"commit_wait_p90_ns"`

	// Replay lag (Seq_global minus the backup's Lamport frontier), sampled
	// on a fixed simulated-time cadence while the workload runs.
	ReplayLagP50 int64 `json:"replay_lag_p50_tuples"`
	ReplayLagMax int64 `json:"replay_lag_max_tuples"`

	// Sequencer-lock contention on the record path.
	ShardWaitP50 int64 `json:"shard_wait_p50_ns"`

	Divergences uint64  `json:"divergences"`
	SimMS       float64 `json:"sim_ms"`       // simulated completion time
	WallClockMS float64 `json:"wallclock_ms"` // host time to run the point

	// Metrics is the full obs registry snapshot at the end of the point.
	Metrics obs.Snapshot `json:"metrics"`
}

// DetShardReport is the checked-in BENCH_detshard.json shape: the sweep
// points plus the headline ratios the acceptance gate reads — commit-wait
// p50 and replay-lag p50 at MeasuredAt threads on the independent-locks
// workload, one shard versus Shards.
type DetShardReport struct {
	Shards     int             `json:"shards"`
	MeasuredAt int             `json:"measured_at_threads"`
	Points     []DetShardPoint `json:"points"`

	CommitWaitSpeedup float64 `json:"commit_wait_p50_speedup"`
	ReplayLagSpeedup  float64 `json:"replay_lag_p50_speedup"`
}

// DetShardOpts bounds the per-point workload.
type DetShardOpts struct {
	Seed        int64
	Threads     []int // thread counts to sweep
	Shards      int   // the sharded setting compared against 1
	Iters       int   // lock/unlock iterations per thread
	CommitEvery int   // OnStable every N iterations per thread
}

// DefaultDetShardOpts sweeps 1..16 threads with a workload small enough to
// keep the full sweep (two workloads x two shard settings) interactive.
func DefaultDetShardOpts() DetShardOpts {
	return DetShardOpts{
		Seed:        1,
		Threads:     []int{1, 2, 4, 8, 16},
		Shards:      4,
		Iters:       200,
		CommitEvery: 8,
	}
}

// DetShard runs the per-object sequencing sweep: for every thread count and
// both workloads, the same app is recorded and replayed at one det shard and
// at opts.Shards, and the commit-wait and replay-lag distributions are
// compared. The headline speedups are taken at 8 threads (or the largest
// swept count below that) on the independent-locks workload.
func DetShard(opts DetShardOpts) (DetShardReport, error) {
	report := DetShardReport{Shards: opts.Shards}
	for _, threads := range opts.Threads {
		for _, workload := range []string{"shared", "independent"} {
			for _, shards := range []int{1, opts.Shards} {
				p, err := detShardPoint(threads, shards, workload, opts)
				if err != nil {
					return report, fmt.Errorf("bench: detshard %s %dt/%ds: %w", workload, threads, shards, err)
				}
				report.Points = append(report.Points, p)
			}
		}
	}
	for _, threads := range opts.Threads {
		if threads <= 8 && threads > report.MeasuredAt {
			report.MeasuredAt = threads
		}
	}
	base, wide := report.find(report.MeasuredAt, 1), report.find(report.MeasuredAt, opts.Shards)
	if base != nil && wide != nil {
		report.CommitWaitSpeedup = ratio(base.CommitWaitP50, wide.CommitWaitP50)
		report.ReplayLagSpeedup = ratio(base.ReplayLagP50, wide.ReplayLagP50)
	}
	return report, nil
}

// find returns the independent-locks point at (threads, shards), or nil.
func (r *DetShardReport) find(threads, shards int) *DetShardPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Threads == threads && p.Shards == shards && p.Workload == "independent" {
			return p
		}
	}
	return nil
}

func ratio(base, wide int64) float64 {
	if wide <= 0 {
		wide = 1
	}
	return float64(base) / float64(wide)
}

// detShardStats reports one replica's workload outcome.
type detShardStats struct {
	Done       bool
	FinishedAt sim.Time
}

// detShardApp builds the sweep workload: nThreads threads each looping
// Iters times over think/lock/hold/unlock, committing output every
// CommitEvery iterations right after the unlock — while the tuples from the
// just-finished section are still in flight, so the commit-wait histogram
// measures the force-flush round trip rather than an already-drained log.
func detShardApp(nThreads int, shared bool, opts DetShardOpts, st *detShardStats) func(*replication.Thread) {
	return func(root *replication.Thread) {
		lib := root.Lib()
		nLocks := nThreads
		if shared {
			nLocks = 1
		}
		locks := make([]*pthread.Mutex, nLocks)
		for i := range locks {
			locks[i] = lib.NewMutex()
		}
		var threads []*replication.Thread
		for i := 0; i < nThreads; i++ {
			mu := locks[i%nLocks]
			threads = append(threads, root.NS().SpawnThread(root, "w", func(th *replication.Thread) {
				t := th.Task()
				for j := 0; j < opts.Iters; j++ {
					// ~150 us of think time per iteration: slow enough that
					// N-sharded replay dispatch keeps pace with an 8-thread
					// producer, fast enough that single-shard dispatch cannot
					// — the regime where sharding is the difference between
					// replay keeping up and replay falling behind.
					think := time.Duration(100+t.Kernel().Sim().Rand().Intn(100)) * time.Microsecond
					t.Compute(think)
					mu.Lock(t)
					t.Compute(2 * time.Microsecond)
					mu.Unlock(t)
					if opts.CommitEvery > 0 && (j+1)%opts.CommitEvery == 0 {
						th.NS().OnStable(func() {})
					}
				}
			}))
		}
		for _, th := range threads {
			root.Join(th)
		}
		st.Done = true
		st.FinishedAt = root.Task().Now()
	}
}

func detShardPoint(threads, shards int, workload string, opts DetShardOpts) (DetShardPoint, error) {
	point := DetShardPoint{Threads: threads, Shards: shards, Workload: workload}
	start := time.Now()

	s := sim.New(opts.Seed)
	m := hw.New(s, hw.Opteron6376x4())
	pp, err := m.NewPartition("primary", 0, 1, 2, 3)
	if err != nil {
		return point, err
	}
	sp, err := m.NewPartition("secondary", 4, 5, 6, 7)
	if err != nil {
		return point, err
	}
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0 // exact per-point latency distributions
	pk, err := kernel.Boot(pp, kernel.Config{Name: "primary", Params: kp})
	if err != nil {
		return point, err
	}
	sk, err := kernel.Boot(sp, kernel.Config{Name: "secondary", Params: kp})
	if err != nil {
		return point, err
	}

	cfg := replication.DefaultConfig()
	cfg.DetShards = shards
	// A bounded log buffer (a few hundred slots, not the default 2 MB) is
	// what makes output commit visible: receipt acks ride ring delivery, so
	// with an effectively unbounded ring every commit waits one round trip
	// no matter how far replay is behind. Bounded, delivery waits on the
	// backup CONSUMING slots — which at one det shard happens at the serial
	// 58 us dispatch rate, and sharded at ring speed.
	cfg.LogRingBytes = 16 << 10
	fabric := shm.NewFabric(s, pp.CrossLatency(sp))
	log := fabric.NewRing("log", 0, cfg.LogRingBytes)
	acks := fabric.NewRing("acks", 1, 256<<10)
	pns := replication.NewPrimary("ftns", pk, cfg, log, acks)
	sns := replication.NewSecondary("ftns", sk, cfg, log, acks)

	reg := obs.NewRegistry()
	pns.Instrument(nil, reg)
	sns.Instrument(nil, reg)
	reg.Gauge("replay.lag", func() int64 {
		return int64(pns.SeqGlobal()) - int64(sns.ReplayHead())
	})

	// Sample replay lag on a fixed simulated cadence while either replica
	// is still running; the sampler re-arms itself so the distribution
	// covers the whole run, not just its end state.
	hLag := reg.Histogram("replay.lag.sampled", "tuples")
	var pst, sst detShardStats
	var sample func()
	sample = func() {
		if pst.Done && sst.Done {
			return
		}
		hLag.Observe(int64(pns.SeqGlobal()) - int64(sns.ReplayHead()))
		s.Schedule(100*time.Microsecond, sample)
	}
	s.Schedule(100*time.Microsecond, sample)

	shared := workload == "shared"
	pns.Start("detshard", nil, detShardApp(threads, shared, opts, &pst))
	sns.Start("detshard", nil, detShardApp(threads, shared, opts, &sst))
	if err := s.Run(); err != nil {
		return point, err
	}
	if !pst.Done || !sst.Done {
		return point, fmt.Errorf("workload incomplete: primary=%v secondary=%v", pst.Done, sst.Done)
	}

	point.Sections = pns.SeqGlobal()
	point.Tuples = uint64(log.Delivered())
	point.Divergences = sns.Stats().Divergences
	point.SimMS = float64(sst.FinishedAt) / float64(time.Millisecond)
	point.WallClockMS = float64(time.Since(start)) / float64(time.Millisecond)
	point.Metrics = reg.Snapshot()
	if h, ok := point.Metrics.Histogram("ftns.commit.wait"); ok {
		point.CommitWaitP50, point.CommitWaitP90 = h.P50, h.P90
	}
	if h, ok := point.Metrics.Histogram("replay.lag.sampled"); ok {
		point.ReplayLagP50, point.ReplayLagMax = h.P50, h.Max
	}
	if h, ok := point.Metrics.Histogram("ftns.shard.wait"); ok {
		point.ShardWaitP50 = h.P50
	}
	return point, nil
}
