package bench

import (
	"fmt"

	"repro/internal/apps/memcached"
	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/kmem"
	"repro/internal/sim"
)

// Fig1Row is one bar of Figure 1: the physical-memory occupancy of a Linux
// system running memcached at one input-size multiplier.
type Fig1Row struct {
	Multiplier int
	Ignored    float64 // % of RAM: unrecoverable kernel memory
	Delayed    float64 // % of RAM: recoverable kernel memory
	User       float64 // % of RAM: application memory
	Free       float64 // % of RAM
}

// Fig1Multipliers are the paper's x-axis values.
func Fig1Multipliers() []int { return []int{3, 30, 60, 90, 120, 150, 180} }

// Fig1 reproduces the §2.3 memory-dump experiment on the 64-core / 96 GB
// machine: boot a kernel, drive the memcached memory model to each input
// multiplier, and classify physical memory.
func Fig1(multipliers []int) ([]Fig1Row, error) {
	var rows []Fig1Row
	for _, mult := range multipliers {
		s := sim.New(1)
		m := hw.New(s, hw.MemDumpMachine())
		part, err := m.NewPartition("linux", 0, 1, 2, 3, 4, 5, 6, 7)
		if err != nil {
			return nil, err
		}
		k, err := kernel.Boot(part, kernel.Config{Name: "linux"})
		if err != nil {
			return nil, err
		}
		snap, err := memcached.ApplyLoad(k.Mem(), memcached.DefaultLoadModel(), mult)
		if err != nil {
			return nil, fmt.Errorf("bench: fig1 at %dx: %w", mult, err)
		}
		pct := func(b int64) float64 { return 100 * float64(b) / float64(snap.Total) }
		rows = append(rows, Fig1Row{
			Multiplier: mult,
			Ignored:    pct(snap.Ignored),
			Delayed:    pct(snap.Delayed),
			User:       pct(snap.User),
			Free:       pct(snap.Free),
		})
	}
	return rows, nil
}

// FaultOutcomeRow is one row of the §2.2 fault-model sweep: the fate of a
// uniformly random memory error under a given memcached load.
type FaultOutcomeRow struct {
	Multiplier  int
	Corrected   bool
	KernelPanic float64 // fraction of injected faults
	Delayed     float64
	UserKill    float64
	None        float64
}

// FaultOutcomes injects n random memory errors per configuration and
// tabulates outcomes — the quantitative backing for the paper's claim that
// a memory error frequently takes down the whole stock-Linux stack.
func FaultOutcomes(multiplier, n int, corrected bool, seed int64) (FaultOutcomeRow, error) {
	row := FaultOutcomeRow{Multiplier: multiplier, Corrected: corrected}
	s := sim.New(seed)
	m := hw.New(s, hw.MemDumpMachine())
	part, err := m.NewPartition("linux", 0, 1, 2, 3, 4, 5, 6, 7)
	if err != nil {
		return row, err
	}
	k, err := kernel.Boot(part, kernel.Config{Name: "linux"})
	if err != nil {
		return row, err
	}
	if _, err := memcached.ApplyLoad(k.Mem(), memcached.DefaultLoadModel(), multiplier); err != nil {
		return row, err
	}
	for i := 0; i < n; i++ {
		_, addr := m.RandomMemErrorAddr()
		class, err := k.Mem().ClassifyAddr(addr)
		if err != nil {
			return row, err
		}
		switch kmem.OutcomeOf(class, corrected) {
		case kmem.OutcomeKernelPanic:
			row.KernelPanic++
		case kmem.OutcomeDelayed:
			row.Delayed++
		case kmem.OutcomeUserKill:
			row.UserKill++
		default:
			row.None++
		}
	}
	total := float64(n)
	row.KernelPanic /= total
	row.Delayed /= total
	row.UserKill /= total
	row.None /= total
	return row, nil
}
