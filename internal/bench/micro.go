package bench

import (
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/simnet"
)

// LatencyResult is the §1 motivation microbenchmark: the propagation delay
// of a message between replicas inside one machine (shared-memory mailbox)
// versus across a LAN — Guerraoui et al. measured 0.55 us vs 135 us.
type LatencyResult struct {
	IntraMachine time.Duration // mailbox one-way propagation
	InterMachine time.Duration // LAN one-way propagation
	Ratio        float64
}

// IntraVsInterLatency measures one-way message propagation through the
// shared-memory fabric and through a simulated LAN link.
func IntraVsInterLatency(seed int64, rounds int) (LatencyResult, error) {
	var res LatencyResult

	// Intra-machine: mailbox between the two partitions.
	s := sim.New(seed)
	m := hw.New(s, hw.Opteron6376x4())
	p0, err := m.NewPartition("p0", 0, 1, 2, 3)
	if err != nil {
		return res, err
	}
	p1, err := m.NewPartition("p1", 4, 5, 6, 7)
	if err != nil {
		return res, err
	}
	fabric := shm.NewFabric(s, p0.CrossLatency(p1))
	ring := fabric.NewRing("ping", 0, 1<<20)
	var total time.Duration
	s.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			ring.Send(p, shm.Message{Kind: 1, Payload: uint64(s.Now()), Size: 8})
			p.Sleep(10 * time.Microsecond)
		}
	})
	s.Spawn("receiver", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			msg := ring.Recv(p)
			total += s.Now().Sub(sim.Time(msg.Payload.(uint64)))
		}
	})
	if err := s.Run(); err != nil {
		return res, err
	}
	res.IntraMachine = total / time.Duration(rounds)

	// Inter-machine: one-way delay of a small frame over the LAN link.
	s2 := sim.New(seed)
	a := simnet.NewNIC("a", nil)
	b := simnet.NewNIC("b", nil)
	if _, err := simnet.Connect(s2, a, b, simnet.LAN135us()); err != nil {
		return res, err
	}
	var lanTotal time.Duration
	var sentAt sim.Time
	count := 0
	b.SetRx(func(p simnet.Packet) {
		lanTotal += s2.Now().Sub(sentAt)
		count++
	})
	for i := 0; i < rounds; i++ {
		i := i
		s2.Schedule(time.Duration(i)*time.Millisecond, func() {
			sentAt = s2.Now()
			a.Send(simnet.Packet{Size: 64})
		})
	}
	if err := s2.Run(); err != nil {
		return res, err
	}
	res.InterMachine = lanTotal / time.Duration(count)
	res.Ratio = float64(res.InterMachine) / float64(res.IntraMachine)
	return res, nil
}

// WakeLatencyResult quantifies the wake_up_process cost model behind the
// §4.1 bottleneck: dispatch latency onto busy versus deep-idle cores.
type WakeLatencyResult struct {
	BusyHandoff time.Duration
	// IdleWakeAvg/Max: dispatch onto a briefly idle core (5 ms).
	IdleWakeAvg time.Duration
	IdleWakeMax time.Duration
	// DeepIdleAvg/Max: dispatch onto a long-idle core (400 ms) — the
	// "up to tens of ms" case the paper observed.
	DeepIdleAvg time.Duration
	DeepIdleMax time.Duration
}

// WakeLatency measures the scheduler's dispatch penalty distribution.
func WakeLatency(seed int64, rounds int) (WakeLatencyResult, error) {
	var res WakeLatencyResult
	s := sim.New(seed)
	m := hw.New(s, hw.Opteron6376x4())
	part, err := m.NewPartition("p", 0, 1, 2, 3)
	if err != nil {
		return res, err
	}
	k, err := kernel.Boot(part, kernel.Config{Name: "k", Cores: 1})
	if err != nil {
		return res, err
	}
	measure := func(idle time.Duration, n int) (avg, max time.Duration) {
		var total time.Duration
		k.Spawn("idle-waker", func(t *kernel.Task) {
			for i := 0; i < n; i++ {
				t.Sleep(idle)
				start := t.Now()
				t.Compute(time.Microsecond)
				lat := t.Now().Sub(start) - time.Microsecond
				total += lat
				if lat > max {
					max = lat
				}
			}
		})
		_ = s.Run()
		return total / time.Duration(n), max
	}
	res.IdleWakeAvg, res.IdleWakeMax = measure(5*time.Millisecond, rounds)
	res.DeepIdleAvg, res.DeepIdleMax = measure(400*time.Millisecond, rounds/10+1)
	res.BusyHandoff = kernel.DefaultParams().ContextSwitch
	return res, nil
}
