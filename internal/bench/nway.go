package bench

import (
	"fmt"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/pthread"
	"repro/internal/replication"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/tcprep"
)

// NWayPoint is one (replicas, quorum) cell of the replica-set sweep. Every
// point runs the same lock-section workload on a full core deployment with
// one backup's log link lagged by a fixed per-transfer delay, so its receipt
// watermark trails the rest of the set. The commit-wait distribution then
// shows whether that laggard sits on the output-commit path: under the
// all-replicas rule every OnStable waits out the lag; under a majority
// quorum (at N >= 3) the faster backups' receipts release output and the
// laggard only matters for failover coverage.
type NWayPoint struct {
	Replicas int    `json:"replicas"`
	Quorum   int    `json:"quorum"`
	Rule     string `json:"rule"` // "majority" or "all"

	// Workload invariants (identical across quorum settings).
	Sections uint64 `json:"sections"` // det sections recorded
	Commits  uint64 `json:"commits"`  // output-commit (OnStable) requests

	// Output-commit latency on the primary.
	CommitWaitMean int64 `json:"commit_wait_mean_ns"`
	CommitWaitP50  int64 `json:"commit_wait_p50_ns"`
	CommitWaitP90  int64 `json:"commit_wait_p90_ns"`

	LiveBackups int     `json:"live_backups"`
	Divergences uint64  `json:"divergences"`
	SimMS       float64 `json:"sim_ms"`       // simulated completion time
	WallClockMS float64 `json:"wallclock_ms"` // host time to run the point
}

// NWayReport is the checked-in BENCH_nway.json shape: the sweep points plus
// the headline ratio the acceptance gate reads — mean commit wait at N=3
// under the all-replicas rule versus the majority quorum, over the same
// lagged link. Above 1 means the quorum rule keeps the laggard off the
// output-commit path.
type NWayReport struct {
	LagUS  int64       `json:"laggard_lag_us"`
	Points []NWayPoint `json:"points"`

	CommitWaitSpeedupN3 float64 `json:"commit_wait_speedup_n3"`
}

// NWayOpts bounds the per-point workload.
type NWayOpts struct {
	Seed        int64
	Replicas    []int         // replica-set sizes to sweep
	Threads     int           // app threads per replica
	Iters       int           // lock/unlock iterations per thread
	CommitEvery int           // OnStable every N iterations per thread
	Lag         time.Duration // per-transfer delivery lag on one backup's log link
}

// DefaultNWayOpts sweeps N=2..5 with a 300us laggard — far above the
// shared-memory fabric's native transfer latency, so the quorum-versus-all
// split dominates every other latency term in the commit wait.
func DefaultNWayOpts() NWayOpts {
	return NWayOpts{
		Seed:        1,
		Replicas:    []int{2, 3, 4, 5},
		Threads:     4,
		Iters:       400,
		CommitEvery: 4,
		Lag:         300 * time.Microsecond,
	}
}

// majority is the default quorum core picks for an n-replica set.
func majority(n int) int { return (n + 2) / 2 }

// laggedLogRing names the log ring of the highest backup slot — the link
// the sweep lags. Slot 1 keeps the legacy unsuffixed name; higher slots
// carry the ".r<slot>" suffix.
func laggedLogRing(n int) string {
	if n == 2 {
		return "ftns.log"
	}
	return "ftns.log.r" + strconv.Itoa(n-1)
}

// NWay runs the replica-set sweep: for every set size, the same workload is
// committed under the majority quorum and under the all-replicas rule (one
// point where they coincide, as at N=2), always with the last backup's log
// deliveries lagged. The headline ratio compares the two rules at N=3.
func NWay(opts NWayOpts) (NWayReport, error) {
	report := NWayReport{LagUS: opts.Lag.Microseconds()}
	for _, n := range opts.Replicas {
		quorums := []int{majority(n)}
		if n > majority(n) {
			quorums = append(quorums, n)
		}
		for _, q := range quorums {
			p, err := nwayPoint(n, q, opts)
			if err != nil {
				return report, fmt.Errorf("bench: nway n=%d q=%d: %w", n, q, err)
			}
			report.Points = append(report.Points, p)
		}
	}
	base, all := report.find(3, majority(3)), report.find(3, 3)
	if base != nil && all != nil {
		report.CommitWaitSpeedupN3 = ratio(all.CommitWaitMean, base.CommitWaitMean)
	}
	return report, nil
}

// find returns the point at (replicas, quorum), or nil.
func (r *NWayReport) find(replicas, quorum int) *NWayPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Replicas == replicas && p.Quorum == quorum {
			return p
		}
	}
	return nil
}

// nwayApp is the sweep workload: Threads threads each looping Iters times
// over think/lock/hold/unlock, requesting an output commit every CommitEvery
// iterations right after the unlock — while the tuples from the just-closed
// section are still in flight on the backup links, so the commit-wait
// histogram measures the receipt-watermark round trip under the configured
// quorum rule rather than an already-drained log.
func nwayApp(opts NWayOpts, done *int, doneAt *sim.Time) func(*replication.Thread, *tcprep.Sockets) {
	return func(root *replication.Thread, _ *tcprep.Sockets) {
		lib := root.Lib()
		mu := lib.NewMutex()
		locks := make([]*pthread.Mutex, opts.Threads)
		for i := range locks {
			locks[i] = lib.NewMutex()
		}
		var threads []*replication.Thread
		for i := 0; i < opts.Threads; i++ {
			own := locks[i]
			threads = append(threads, root.NS().SpawnThread(root, "w", func(th *replication.Thread) {
				t := th.Task()
				for j := 0; j < opts.Iters; j++ {
					think := time.Duration(50+t.Kernel().Sim().Rand().Intn(100)) * time.Microsecond
					t.Compute(think)
					own.Lock(t)
					t.Compute(2 * time.Microsecond)
					own.Unlock(t)
					if j%8 == 3 { // occasional cross-thread contention
						mu.Lock(t)
						mu.Unlock(t)
					}
					if opts.CommitEvery > 0 && (j+1)%opts.CommitEvery == 0 {
						th.NS().OnStable(func() {})
					}
				}
			}))
		}
		for _, th := range threads {
			root.Join(th)
		}
		*done++
		*doneAt = root.Task().Now()
	}
}

func nwayPoint(n, q int, opts NWayOpts) (NWayPoint, error) {
	rule := "majority"
	if q == n {
		rule = "all"
	}
	point := NWayPoint{Replicas: n, Quorum: q, Rule: rule}
	start := time.Now()

	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0 // exact per-point latency distributions
	sys, err := core.New(
		core.WithSeed(opts.Seed),
		core.WithKernelParams(kp),
		core.WithReplicaSet(n),
		core.WithQuorum(q),
		core.WithRejoin(false),
	)
	if err != nil {
		return point, err
	}

	lagged := laggedLogRing(n)
	found := false
	for _, r := range sys.Fabric.Rings() {
		if r.Name() == lagged {
			r.SetChaosHook(func([]shm.Message) shm.ChaosVerdict {
				return shm.ChaosVerdict{Delay: opts.Lag}
			})
			found = true
			break
		}
	}
	if !found {
		return point, fmt.Errorf("log ring %q not found", lagged)
	}

	var done int
	var doneAt sim.Time
	sys.Run(core.App{Name: "nway", Main: nwayApp(opts, &done, &doneAt)})
	if err := sys.Sim.RunUntil(sim.Time(time.Minute)); err != nil {
		return point, err
	}
	if done != n {
		return point, fmt.Errorf("workload incomplete: %d of %d replicas finished", done, n)
	}

	point.Sections = sys.Active().NS.SeqGlobal()
	point.LiveBackups = len(sys.Backups())
	for _, b := range sys.Backups() {
		point.Divergences += b.NS.Stats().Divergences
	}
	point.SimMS = float64(doneAt) / float64(time.Millisecond)
	point.WallClockMS = float64(time.Since(start)) / float64(time.Millisecond)
	for _, h := range sys.Obs.Registry().Snapshot().Histograms {
		if h.Name == "ftns.commit.wait" && h.Count > 0 {
			point.Commits = uint64(h.Count)
			point.CommitWaitMean = h.Sum / h.Count
			point.CommitWaitP50, point.CommitWaitP90 = h.P50, h.P90
		}
	}
	if point.Commits == 0 {
		return point, fmt.Errorf("no ftns.commit.wait samples")
	}
	return point, nil
}
