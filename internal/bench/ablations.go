package bench

import (
	"fmt"
	"time"

	"repro/internal/apps/clients"
	"repro/internal/apps/mongoose"
	"repro/internal/apps/pbzip2"
	"repro/internal/core"
	"repro/internal/replication"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/tcprep"
)

// ftPBZIPRate runs the FT configuration of the PBZIP2 workload at one block
// size and reports sustained blocks/s plus replay health.
func ftPBZIPRate(cfg core.Config, blockKB int, window time.Duration) (sustained float64, primaryBlocks, secondaryBlocks int, divergences uint64, err error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	var fst, sst pbzip2.Stats
	pcfg := pbzipCfg(blockKB, window)
	sys.Primary.NS.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, pcfg, &fst) })
	sys.Secondary.NS.Start("pbzip2", nil, func(th *replication.Thread) { pbzip2.Run(th, pcfg, &sst) })
	if err := sys.Sim.RunUntil(sim.Time(window)); err != nil {
		return 0, 0, 0, 0, err
	}
	end := sim.Time(window)
	if fst.FinishedAt != 0 && fst.FinishedAt < end {
		end = fst.FinishedAt
	}
	sustained = steadyRate(fst.BlockTimes, window/3, end)
	return sustained, fst.Blocks, sst.Blocks, sys.Secondary.NS.Stats().Divergences, nil
}

// ftMongooseLatency measures mean request latency at a moderate load under
// the given replication config.
func ftMongooseLatency(cfg core.Config, window time.Duration) (float64, time.Duration, error) {
	sys, err := core.NewSystem(cfg)
	if err != nil {
		return 0, 0, err
	}
	client, err := sys.AttachNetwork(simnet.GigabitEthernet())
	if err != nil {
		return 0, 0, err
	}
	mcfg := mongoose.DefaultConfig()
	mcfg.CPULoad = time.Millisecond
	var mst mongoose.Stats
	sys.LaunchApp("mongoose", nil, func(th *replication.Thread, socks *tcprep.Sockets) {
		mongoose.Run(th, socks, mcfg, &mst)
	})
	var ab clients.ABStats
	clients.RunAB(client, clients.ABConfig{
		Port: mcfg.Port, Concurrency: 10, ResponseBytes: mongoose.PageSize(mcfg),
		Duration: window, WarmUp: window / 4,
	}, &ab)
	if err := sys.Sim.RunUntil(sim.Time(window + time.Second)); err != nil {
		return 0, 0, err
	}
	return ab.Throughput(window - window/4), ab.MeanLatency(), nil
}

// Ablations quantifies the design choices DESIGN.md calls out, returning
// printable rows [name, configuration, result].
func Ablations(seed int64, quick bool) ([][]string, error) {
	window := 8 * time.Second
	if quick {
		window = 5 * time.Second
	}
	var rows [][]string

	// 1. Output-commit strictness (§3.5): strict waits for secondary acks
	// before releasing network output; relaxed releases immediately.
	for _, strict := range []bool{true, false} {
		cfg := core.DefaultConfig(seed)
		cfg.Replication.StrictOutputCommit = strict
		rps, lat, err := ftMongooseLatency(cfg, window)
		if err != nil {
			return nil, err
		}
		name := "relaxed (release immediately)"
		if strict {
			name = "strict (wait for ack)"
		}
		rows = append(rows, []string{"output-commit", name,
			fmt.Sprintf("%.0f req/s, %v mean latency", rps, lat)})
	}

	// 2. Deterministic-section serialization cost: the global mutex is the
	// paper's stated scalability limit; quadrupling the in-section cost
	// shows how strongly PBZIP2 sustained throughput depends on it.
	for _, mult := range []int{1, 4} {
		cfg := core.DefaultConfig(seed)
		cfg.Replication.SectionCost *= time.Duration(mult)
		cfg.Replication.ReplayDispatchCost *= time.Duration(mult)
		rate, _, _, _, err := ftPBZIPRate(cfg, 50, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{"det-serialization",
			fmt.Sprintf("%dx section/dispatch cost", mult),
			fmt.Sprintf("%.0f blocks/s sustained @50KB", rate)})
	}

	// 3. FIFO futex (§3.3): stock unordered wake-up breaks replay.
	for _, fifo := range []bool{true, false} {
		cfg := core.DefaultConfig(seed)
		cfg.Kernel.FutexFIFO = fifo
		cfg.Replication.PanicOnDivergence = false
		_, p, s, div, err := ftPBZIPRate(cfg, 100, window/2)
		if err != nil {
			return nil, err
		}
		name := "FIFO futex (paper)"
		if !fifo {
			name = "stock unordered wake"
		}
		rows = append(rows, []string{"futex-order", name,
			fmt.Sprintf("primary %d / secondary %d blocks, %d divergences", p, s, div)})
	}

	// 4. In-flight log buffer: the ring is what separates burst from
	// sustained throughput.
	for _, ring := range []int64{64 << 10, 4 << 20, 32 << 20} {
		cfg := core.DefaultConfig(seed)
		cfg.Replication.LogRingBytes = ring
		rate, _, _, _, err := ftPBZIPRate(cfg, 50, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{"log-ring",
			fmt.Sprintf("%d KiB", ring>>10),
			fmt.Sprintf("%.0f blocks/s sustained @50KB", rate)})
	}

	// 5. Idle-wake (wake_up_process) latency sensitivity (§4.1).
	for _, max := range []time.Duration{0, 15 * time.Millisecond, 50 * time.Millisecond} {
		cfg := core.DefaultConfig(seed)
		if max == 0 {
			cfg.Kernel.IdleWakeMin, cfg.Kernel.IdleWakeMax = 0, 0
		} else {
			cfg.Kernel.IdleWakeMax = max
		}
		rate, _, _, _, err := ftPBZIPRate(cfg, 25, window)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{"idle-wake",
			fmt.Sprintf("max penalty %v", max),
			fmt.Sprintf("%.0f blocks/s sustained @25KB", rate)})
	}
	return rows, nil
}
