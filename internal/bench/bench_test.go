package bench

import (
	"strings"
	"testing"
	"time"
)

func TestFig1Shape(t *testing.T) {
	rows, err := Fig1(Fig1Multipliers())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("%d rows", len(rows))
	}
	last := rows[len(rows)-1]
	if last.Ignored < 12 || last.Ignored > 18 {
		t.Errorf("Ignored@180x = %.1f%%, paper ~15%%", last.Ignored)
	}
	if last.Delayed < 17 || last.Delayed > 23 {
		t.Errorf("Delayed@180x = %.1f%%, paper ~20%%", last.Delayed)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].User <= rows[i-1].User {
			t.Error("User share not growing with input size")
		}
	}
}

func TestFaultOutcomesSumToOne(t *testing.T) {
	r, err := FaultOutcomes(180, 5000, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := r.KernelPanic + r.Delayed + r.UserKill + r.None
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("outcome fractions sum to %v", sum)
	}
	if r.KernelPanic < 0.10 || r.KernelPanic > 0.20 {
		t.Errorf("kernel-panic fraction %.3f, paper ~0.15", r.KernelPanic)
	}
	rc, err := FaultOutcomes(180, 2000, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rc.None != 1 {
		t.Errorf("corrected errors should always be absorbed, got none=%v", rc.None)
	}
}

func TestPBZIPPointShape(t *testing.T) {
	opts := DefaultPBZIPOpts()
	opts.Window = 6 * time.Second
	points, err := PBZIP([]int{100}, opts)
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Ubuntu < 900 || p.Ubuntu > 1050 {
		t.Errorf("Ubuntu = %.0f blocks/s at 100KB, expected ~966", p.Ubuntu)
	}
	if p.PctOfUbuntu < 90 {
		t.Errorf("FT sustained at %.1f%% of Ubuntu at 100KB; paper reports it close", p.PctOfUbuntu)
	}
	if p.MsgPerSec < 1000 {
		t.Errorf("traffic %.0f msg/s implausibly low", p.MsgPerSec)
	}
}

func TestIntraVsInterLatency(t *testing.T) {
	r, err := IntraVsInterLatency(1, 200)
	if err != nil {
		t.Fatal(err)
	}
	if r.IntraMachine > 2*time.Microsecond {
		t.Errorf("intra-machine latency %v, paper-scale is sub-microsecond", r.IntraMachine)
	}
	if r.InterMachine < 100*time.Microsecond {
		t.Errorf("LAN latency %v, expected ~135us", r.InterMachine)
	}
	if r.Ratio < 100 {
		t.Errorf("ratio %.0fx, paper reports ~245x", r.Ratio)
	}
}

func TestWakeLatencyModel(t *testing.T) {
	r, err := WakeLatency(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.IdleWakeAvg <= r.BusyHandoff {
		t.Error("idle wake not more expensive than busy hand-off")
	}
	if r.IdleWakeMax < 100*time.Microsecond {
		t.Errorf("idle wake max %v — the deep-idle tail is missing", r.IdleWakeMax)
	}
}

func TestTableFormatting(t *testing.T) {
	var sb strings.Builder
	Table(&sb, []string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := sb.String()
	if !strings.Contains(out, "333") || !strings.Contains(out, "--") {
		t.Errorf("table output %q", out)
	}
	if F1(1.25) != "1.2" && F1(1.25) != "1.3" {
		t.Errorf("F1 = %q", F1(1.25))
	}
	if F0(12.7) != "13" {
		t.Errorf("F0 = %q", F0(12.7))
	}
}
