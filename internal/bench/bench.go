// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§2.3 Figure 1, §4.1 Figures 4-5, §4.2
// Figures 6-7, §4.3 mixed workload, §4.4 Figure 8), plus the §1 motivation
// microbenchmark and the fault-model sweep of §2.2. Each experiment is a
// plain function returning typed rows, shared by cmd/ftbench and the
// benchmarks in bench_test.go.
package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/shm"
	"repro/internal/sim"
)

// window measures a rate over [from, to) of virtual time from a series of
// event timestamps.
func rateIn(times []sim.Time, from, to sim.Time) float64 {
	n := 0
	for _, t := range times {
		if t >= from && t < to {
			n++
		}
	}
	return float64(n) / to.Sub(from).Seconds()
}

// trafficRate computes message and byte rates between two fabric snapshots.
func trafficRate(before, after shm.Stats, window time.Duration) (msgs, bytes float64) {
	s := window.Seconds()
	return float64(after.Messages-before.Messages) / s, float64(after.Bytes-before.Bytes) / s
}

// Table writes rows as an aligned text table.
func Table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	line(header)
	for i, w2 := range widths {
		header[i] = dashes(w2)
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}

func dashes(n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = '-'
	}
	return string(b)
}

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// F0 formats a float with no decimals.
func F0(v float64) string { return fmt.Sprintf("%.0f", v) }
