package hw

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// FaultKind enumerates the hardware fault classes of the paper's failure
// model (§2.1): fail-stop faults and data-corruption faults that are
// detected before they cause cross-replica contamination.
type FaultKind int

const (
	// CoreFailStop is a CPU core ceasing execution (§2.1). On stock Linux a
	// core fail-stop takes down the entire machine (Shalev et al., §2.3).
	CoreFailStop FaultKind = iota + 1
	// MemUncorrected is a detected-but-uncorrected memory error (DUE),
	// reported through MCA/AER-style machine-check hardware.
	MemUncorrected
	// MemCorrected is a correctable memory error (CE). It is reported but
	// harmless unless errors arrive so fast the kernel is bombarded by
	// exceptions (the 10%-of-2% unresponsive servers of Meza et al., §2.2).
	MemCorrected
	// BusError is a detected interconnect/bus fault confined to one node.
	BusError
	// CoherencyLoss is a fault that disrupts cache coherency for a node's
	// outstanding writes: in-flight inter-replica messages from that node
	// may be lost (§3.5). The paper conjectures this case is rare.
	CoherencyLoss
)

var faultKindNames = map[FaultKind]string{
	CoreFailStop:   "core-fail-stop",
	MemUncorrected: "mem-uncorrected",
	MemCorrected:   "mem-corrected",
	BusError:       "bus-error",
	CoherencyLoss:  "coherency-loss",
}

func (k FaultKind) String() string {
	if s, ok := faultKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one detected hardware fault, delivered to fault subscribers the
// way Intel MCA / AER deliver machine-check exceptions to the OS.
type Fault struct {
	Time sim.Time
	Kind FaultKind
	Node int   // NUMA node the fault occurred on
	Core int   // core ID for CoreFailStop, -1 otherwise
	Addr int64 // physical byte address for memory faults, -1 otherwise
}

func (f Fault) String() string {
	return fmt.Sprintf("%s@node%d t=%v", f.Kind, f.Node, f.Time)
}

// OnFault registers a machine-check subscriber. Every injected fault is
// delivered to every subscriber, in registration order, at injection time;
// subscribers filter by partition ownership themselves (a kernel only sees
// the error reporting banks of the hardware it runs on, but the shared
// messaging layer observes coherency loss machine-wide).
func (m *Machine) OnFault(fn func(Fault)) {
	m.subs = append(m.subs, fn)
}

// Inject delivers a fault to all subscribers at the current virtual time.
// The Time field is stamped by Inject.
func (m *Machine) Inject(f Fault) {
	f.Time = m.sim.Now()
	for _, fn := range m.subs {
		fn(f)
	}
}

// InjectAfter schedules a fault injection after delay d.
func (m *Machine) InjectAfter(d time.Duration, f Fault) *sim.Event {
	return m.sim.Schedule(d, func() { m.Inject(f) })
}

// InjectCoreFailStop injects a fail-stop of the given core.
func (m *Machine) InjectCoreFailStop(core *Core) {
	m.Inject(Fault{Kind: CoreFailStop, Node: core.Node.ID, Core: core.ID, Addr: -1})
}

// InjectMemError injects a memory error at a physical address on the node
// that owns the address range. corrected selects CE vs DUE.
func (m *Machine) InjectMemError(node int, addr int64, corrected bool) {
	kind := MemUncorrected
	if corrected {
		kind = MemCorrected
	}
	m.Inject(Fault{Kind: kind, Node: node, Core: -1, Addr: addr})
}

// RandomMemErrorAddr picks a uniformly random physical address on a random
// node, using the simulation's deterministic RNG. It returns the node and
// the machine-wide physical address.
func (m *Machine) RandomMemErrorAddr() (node int, addr int64) {
	rng := m.sim.Rand()
	node = rng.Intn(len(m.nodes))
	off := rng.Int63n(m.nodes[node].Mem)
	return node, int64(node)*m.prof.MemPerNode + off
}
