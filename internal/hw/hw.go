// Package hw models the commodity multicore hardware that FT-Linux runs on:
// sockets, NUMA nodes, cores, memory banks, interconnect latencies, hardware
// partitions, and detected hardware faults (machine-check events).
//
// The model follows the paper's evaluation machine — four AMD Opteron 6376
// processors, 64 cores, 128 GB of RAM split in 8 equally-sized NUMA nodes —
// and the paper's fault taxonomy (§2.1): core fail-stop, detected-but-
// uncorrected memory errors, correctable memory errors, bus errors, and
// cache-coherency disruption.
package hw

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Profile describes the static shape and timing of a machine.
type Profile struct {
	Name         string
	Sockets      int
	NodesPerSock int
	CoresPerNode int
	MemPerNode   int64 // bytes
	PageSize     int64 // bytes

	// LocalMemLatency is the latency of a memory access within a NUMA node.
	LocalMemLatency time.Duration
	// HopLatency is the extra latency per NUMA hop for remote accesses and
	// for cache-coherent cross-partition message propagation.
	HopLatency time.Duration
	// CoreToCore is the measured propagation delay of a message between two
	// cores of the machine (0.55 us in Guerraoui et al., cited in §1).
	CoreToCore time.Duration
}

// Opteron6376x4 is the paper's evaluation machine: 4 sockets x 2 NUMA nodes
// x 8 cores, 16 GB per node (64 cores, 128 GB total).
func Opteron6376x4() Profile {
	return Profile{
		Name:            "4x AMD Opteron 6376",
		Sockets:         4,
		NodesPerSock:    2,
		CoresPerNode:    8,
		MemPerNode:      16 << 30,
		PageSize:        4 << 10,
		LocalMemLatency: 80 * time.Nanosecond,
		HopLatency:      60 * time.Nanosecond,
		CoreToCore:      550 * time.Nanosecond,
	}
}

// MemDumpMachine is the 64-core, 96 GB machine used for the Figure 1 memory
// dump experiment (§2.3).
func MemDumpMachine() Profile {
	p := Opteron6376x4()
	p.Name = "64-core 96GB (Fig. 1)"
	p.MemPerNode = 12 << 30
	return p
}

// TotalCores reports the number of cores the profile describes.
func (p Profile) TotalCores() int { return p.Sockets * p.NodesPerSock * p.CoresPerNode }

// TotalNodes reports the number of NUMA nodes the profile describes.
func (p Profile) TotalNodes() int { return p.Sockets * p.NodesPerSock }

// TotalMem reports the total bytes of RAM the profile describes.
func (p Profile) TotalMem() int64 { return int64(p.TotalNodes()) * p.MemPerNode }

// FaultDomains partitions the profile's NUMA nodes into n balanced,
// contiguous fault domains — the default replica placement for an n-way
// replica set (Quest-V-style sandboxing: each replica's full software
// stack is confined to its own nodes, so one domain's failure cannot
// corrupt another's memory). Nodes are assigned in ID order, so sockets
// are split as little as the arithmetic allows; when the node count does
// not divide evenly the first TotalNodes mod n domains get the extra
// node. With n = 2 on the 8-node Opteron profile this yields exactly the
// historical primary/secondary split ({0..3}, {4..7}).
func (p Profile) FaultDomains(n int) ([][]int, error) {
	total := p.TotalNodes()
	if n < 2 {
		return nil, fmt.Errorf("hw: %d fault domains: a replica set needs at least 2", n)
	}
	if n > total {
		return nil, fmt.Errorf("hw: %d fault domains exceed the profile's %d NUMA nodes", n, total)
	}
	domains := make([][]int, n)
	base, extra := total/n, total%n
	id := 0
	for i := range domains {
		size := base
		if i < extra {
			size++
		}
		for j := 0; j < size; j++ {
			domains[i] = append(domains[i], id)
			id++
		}
	}
	return domains, nil
}

// Core is one CPU core.
type Core struct {
	ID   int
	Node *Node
}

// Node is one NUMA node: a set of cores plus a local memory bank.
type Node struct {
	ID     int
	Socket int
	Cores  []*Core
	Mem    int64 // bytes of local RAM
}

// Machine is a simulated multicore machine.
type Machine struct {
	prof  Profile
	sim   *sim.Simulation
	nodes []*Node
	cores []*Core
	parts []*Partition
	subs  []func(Fault)
}

// New builds a machine with the given profile on the given simulation.
func New(s *sim.Simulation, prof Profile) *Machine {
	m := &Machine{prof: prof, sim: s}
	coreID := 0
	for sock := 0; sock < prof.Sockets; sock++ {
		for n := 0; n < prof.NodesPerSock; n++ {
			node := &Node{
				ID:     sock*prof.NodesPerSock + n,
				Socket: sock,
				Mem:    prof.MemPerNode,
			}
			for c := 0; c < prof.CoresPerNode; c++ {
				core := &Core{ID: coreID, Node: node}
				coreID++
				node.Cores = append(node.Cores, core)
				m.cores = append(m.cores, core)
			}
			m.nodes = append(m.nodes, node)
		}
	}
	return m
}

// Sim returns the simulation the machine lives in.
func (m *Machine) Sim() *sim.Simulation { return m.sim }

// Profile returns the machine's static profile.
func (m *Machine) Profile() Profile { return m.prof }

// Nodes returns the machine's NUMA nodes in ID order. The slice is shared;
// callers must not modify it.
func (m *Machine) Nodes() []*Node { return m.nodes }

// Node returns the NUMA node with the given ID.
func (m *Machine) Node(id int) *Node { return m.nodes[id] }

// Cores returns all cores in ID order. The slice is shared; callers must not
// modify it.
func (m *Machine) Cores() []*Core { return m.cores }

// Hops reports the number of interconnect hops between two NUMA nodes: 0
// within a node, 1 within a socket, 2 across sockets.
func (m *Machine) Hops(a, b int) int {
	switch {
	case a == b:
		return 0
	case m.nodes[a].Socket == m.nodes[b].Socket:
		return 1
	default:
		return 2
	}
}

// MemLatency reports the latency of an access from node from to memory on
// node to.
func (m *Machine) MemLatency(from, to int) time.Duration {
	return m.prof.LocalMemLatency + time.Duration(m.Hops(from, to))*m.prof.HopLatency
}

// Partition is a named, exclusive subset of the machine's NUMA nodes (and
// therefore cores and memory). FT-Linux boots one kernel per partition.
type Partition struct {
	Name  string
	nodes []*Node
	cores []*Core
	mach  *Machine
}

// NewPartition carves a partition out of the given NUMA nodes. It returns an
// error if a node does not exist or is already owned by another partition:
// the paper requires hardware to be strictly divided among replicas.
func (m *Machine) NewPartition(name string, nodeIDs ...int) (*Partition, error) {
	if len(nodeIDs) == 0 {
		return nil, fmt.Errorf("hw: partition %q: no nodes given", name)
	}
	p := &Partition{Name: name, mach: m}
	for _, id := range nodeIDs {
		if id < 0 || id >= len(m.nodes) {
			return nil, fmt.Errorf("hw: partition %q: node %d does not exist", name, id)
		}
		for _, other := range m.parts {
			for _, n := range other.nodes {
				if n.ID == id {
					return nil, fmt.Errorf("hw: partition %q: node %d already owned by partition %q", name, id, other.Name)
				}
			}
		}
		n := m.nodes[id]
		p.nodes = append(p.nodes, n)
		p.cores = append(p.cores, n.Cores...)
	}
	m.parts = append(m.parts, p)
	return p, nil
}

// Machine returns the machine the partition belongs to.
func (p *Partition) Machine() *Machine { return p.mach }

// Nodes returns the partition's NUMA nodes. The slice is shared; callers
// must not modify it.
func (p *Partition) Nodes() []*Node { return p.nodes }

// Cores returns the partition's cores. The slice is shared; callers must not
// modify it.
func (p *Partition) Cores() []*Core { return p.cores }

// Mem reports the partition's total bytes of RAM.
func (p *Partition) Mem() int64 {
	var total int64
	for _, n := range p.nodes {
		total += n.Mem
	}
	return total
}

// Owns reports whether the partition owns the given NUMA node.
func (p *Partition) Owns(nodeID int) bool {
	for _, n := range p.nodes {
		if n.ID == nodeID {
			return true
		}
	}
	return false
}

// CrossLatency reports the propagation delay of a cache-coherent message
// between this partition and another, taking the worst-case hop count
// between their nodes.
func (p *Partition) CrossLatency(q *Partition) time.Duration {
	maxHops := 0
	for _, a := range p.nodes {
		for _, b := range q.nodes {
			if h := p.mach.Hops(a.ID, b.ID); h > maxHops {
				maxHops = h
			}
		}
	}
	return p.mach.prof.CoreToCore + time.Duration(maxHops)*p.mach.prof.HopLatency
}
