package hw

import (
	"testing"
	"time"

	"repro/internal/sim"
)

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	return New(sim.New(1), Opteron6376x4())
}

func TestProfileShape(t *testing.T) {
	p := Opteron6376x4()
	if got := p.TotalCores(); got != 64 {
		t.Errorf("TotalCores = %d, want 64", got)
	}
	if got := p.TotalNodes(); got != 8 {
		t.Errorf("TotalNodes = %d, want 8", got)
	}
	if got := p.TotalMem(); got != 128<<30 {
		t.Errorf("TotalMem = %d, want 128 GiB", got)
	}
	if got := MemDumpMachine().TotalMem(); got != 96<<30 {
		t.Errorf("MemDumpMachine TotalMem = %d, want 96 GiB", got)
	}
}

func TestMachineTopology(t *testing.T) {
	m := newTestMachine(t)
	if len(m.Nodes()) != 8 {
		t.Fatalf("nodes = %d, want 8", len(m.Nodes()))
	}
	if len(m.Cores()) != 64 {
		t.Fatalf("cores = %d, want 64", len(m.Cores()))
	}
	for i, n := range m.Nodes() {
		if n.ID != i {
			t.Errorf("node %d has ID %d", i, n.ID)
		}
		if len(n.Cores) != 8 {
			t.Errorf("node %d has %d cores, want 8", i, len(n.Cores))
		}
		for _, c := range n.Cores {
			if c.Node != n {
				t.Errorf("core %d back-pointer wrong", c.ID)
			}
		}
	}
	// Node 0 and 1 share socket 0; node 0 and 7 are on different sockets.
	if m.Hops(0, 0) != 0 || m.Hops(0, 1) != 1 || m.Hops(0, 7) != 2 {
		t.Errorf("hops: got %d,%d,%d want 0,1,2", m.Hops(0, 0), m.Hops(0, 1), m.Hops(0, 7))
	}
	if m.MemLatency(0, 0) >= m.MemLatency(0, 7) {
		t.Error("remote access not slower than local")
	}
}

func TestPartitioningDisjoint(t *testing.T) {
	m := newTestMachine(t)
	p0, err := m.NewPartition("primary", 0, 1, 2, 3)
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	p1, err := m.NewPartition("secondary", 4, 5, 6, 7)
	if err != nil {
		t.Fatalf("secondary: %v", err)
	}
	if len(p0.Cores()) != 32 || len(p1.Cores()) != 32 {
		t.Errorf("partition cores = %d/%d, want 32/32", len(p0.Cores()), len(p1.Cores()))
	}
	if p0.Mem() != 64<<30 {
		t.Errorf("primary mem = %d, want 64 GiB", p0.Mem())
	}
	if !p0.Owns(0) || p0.Owns(4) {
		t.Error("Owns() wrong")
	}
	if _, err := m.NewPartition("overlap", 3); err == nil {
		t.Error("overlapping partition was allowed")
	}
	if _, err := m.NewPartition("bogus", 42); err == nil {
		t.Error("nonexistent node was allowed")
	}
	if _, err := m.NewPartition("empty"); err == nil {
		t.Error("empty partition was allowed")
	}
	if lat := p0.CrossLatency(p1); lat < 550*time.Nanosecond {
		t.Errorf("cross latency %v below core-to-core floor", lat)
	}
}

func TestAsymmetricPartition(t *testing.T) {
	m := newTestMachine(t)
	// The mixed-workload experiment (§4.3) uses a 32-core primary and a
	// single-core secondary; the closest node-granular split is 4 nodes vs
	// 1 node — the kernel layer further restricts usable cores.
	p0, err := m.NewPartition("primary", 0, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := m.NewPartition("secondary", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p0.Cores()) != 32 || len(p1.Cores()) != 8 {
		t.Errorf("cores = %d/%d, want 32/8", len(p0.Cores()), len(p1.Cores()))
	}
}

func TestFaultDelivery(t *testing.T) {
	s := sim.New(1)
	m := New(s, Opteron6376x4())
	var got []Fault
	m.OnFault(func(f Fault) { got = append(got, f) })
	m.InjectAfter(5*time.Millisecond, Fault{Kind: MemUncorrected, Node: 2, Core: -1, Addr: 1 << 20})
	m.InjectAfter(time.Millisecond, Fault{Kind: CoreFailStop, Node: 0, Core: 3, Addr: -1})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d faults, want 2", len(got))
	}
	if got[0].Kind != CoreFailStop || got[0].Time != sim.Time(time.Millisecond) {
		t.Errorf("first fault = %v", got[0])
	}
	if got[1].Kind != MemUncorrected || got[1].Node != 2 {
		t.Errorf("second fault = %v", got[1])
	}
}

func TestInjectHelpers(t *testing.T) {
	s := sim.New(1)
	m := New(s, Opteron6376x4())
	var got []Fault
	m.OnFault(func(f Fault) { got = append(got, f) })
	m.InjectCoreFailStop(m.Cores()[17])
	m.InjectMemError(3, 123, true)
	m.InjectMemError(3, 456, false)
	if len(got) != 3 {
		t.Fatalf("delivered %d faults, want 3", len(got))
	}
	if got[0].Kind != CoreFailStop || got[0].Node != m.Cores()[17].Node.ID {
		t.Errorf("core fail-stop fault = %v", got[0])
	}
	if got[1].Kind != MemCorrected || got[2].Kind != MemUncorrected {
		t.Errorf("memory fault kinds = %v, %v", got[1].Kind, got[2].Kind)
	}
}

func TestRandomMemErrorAddrInRange(t *testing.T) {
	s := sim.New(7)
	m := New(s, Opteron6376x4())
	for i := 0; i < 1000; i++ {
		node, addr := m.RandomMemErrorAddr()
		if node < 0 || node >= 8 {
			t.Fatalf("node %d out of range", node)
		}
		lo := int64(node) * m.Profile().MemPerNode
		if addr < lo || addr >= lo+m.Profile().MemPerNode {
			t.Fatalf("addr %d outside node %d range", addr, node)
		}
	}
}

func TestFaultKindString(t *testing.T) {
	if CoreFailStop.String() != "core-fail-stop" {
		t.Errorf("String = %q", CoreFailStop.String())
	}
	if FaultKind(99).String() == "" {
		t.Error("unknown kind printed empty")
	}
}

// TestFaultDomains pins the balanced contiguous split the replica-set
// placement defaults to.
func TestFaultDomains(t *testing.T) {
	p := Opteron6376x4()
	cases := map[int][][]int{
		2: {{0, 1, 2, 3}, {4, 5, 6, 7}},
		3: {{0, 1, 2}, {3, 4, 5}, {6, 7}},
		4: {{0, 1}, {2, 3}, {4, 5}, {6, 7}},
		8: {{0}, {1}, {2}, {3}, {4}, {5}, {6}, {7}},
	}
	for n, want := range cases {
		got, err := p.FaultDomains(n)
		if err != nil {
			t.Fatalf("FaultDomains(%d): %v", n, err)
		}
		if len(got) != len(want) {
			t.Fatalf("FaultDomains(%d) = %v, want %v", n, got, want)
		}
		seen := map[int]bool{}
		for i := range got {
			if len(got[i]) != len(want[i]) {
				t.Errorf("FaultDomains(%d)[%d] = %v, want %v", n, i, got[i], want[i])
			}
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Errorf("FaultDomains(%d)[%d] = %v, want %v", n, i, got[i], want[i])
				}
				if seen[got[i][j]] {
					t.Errorf("FaultDomains(%d): node %d in two domains", n, got[i][j])
				}
				seen[got[i][j]] = true
			}
		}
	}
	if _, err := p.FaultDomains(1); err == nil {
		t.Error("FaultDomains(1) accepted, want error")
	}
	if _, err := p.FaultDomains(9); err == nil {
		t.Error("FaultDomains(9) exceeds the profile's nodes, want error")
	}
}
