package rejoin

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/shm"
	"repro/internal/sim"
)

func testEpochCheckpoint() *EpochCheckpoint {
	big := make([]byte, 150<<10) // three chunks, larger than the 96 KiB ring
	for i := range big {
		big[i] = byte(i*13 + 5)
	}
	ecp := &EpochCheckpoint{
		Checkpoint: *testCheckpoint(),
		Epoch:      9,
		Sent:       777,
		Apps: []AppSnap{
			{Name: "counter", Data: []byte{1, 2, 3, 4}},
			{Name: "stream", Data: big},
		},
	}
	ecp.Generation = 0
	ecp.Seal()
	return ecp
}

func TestEpochTransferRoundTrip(t *testing.T) {
	s, pk, bk, ring := bulkPair(t)
	ecp := testEpochCheckpoint()
	var got *EpochCheckpoint
	var rerr error
	pk.Spawn("send", func(tk *kernel.Task) { SendEpoch(tk, ring, ecp) })
	bk.Spawn("recv", func(tk *kernel.Task) { got, rerr = RecvEpoch(tk, ring) })
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rerr != nil {
		t.Fatalf("RecvEpoch: %v", rerr)
	}
	if got.Epoch != ecp.Epoch || got.Sent != ecp.Sent || got.AppSum != ecp.AppSum {
		t.Errorf("epoch header differs: epoch=%d sent=%d", got.Epoch, got.Sent)
	}
	if got.SeqGlobal != ecp.SeqGlobal || got.Sum != ecp.Sum {
		t.Errorf("base checkpoint differs: %+v", got.Checkpoint)
	}
	if len(got.Apps) != 2 || got.Apps[0].Name != "counter" || got.Apps[1].Name != "stream" {
		t.Fatalf("apps differ: %+v", got.Apps)
	}
	if !bytes.Equal(got.Apps[1].Data, ecp.Apps[1].Data) {
		t.Error("chunked app snapshot not reassembled byte-identically")
	}
	if got.Digest() != ecp.Digest() {
		t.Error("combined digest differs after round trip")
	}
}

func TestEpochTransferDetectsAppCorruption(t *testing.T) {
	s, pk, bk, ring := bulkPair(t)
	ecp := testEpochCheckpoint()
	ecp.Apps[1].Data[99] ^= 0xff // post-Seal corruption of an app snapshot
	var rerr error
	pk.Spawn("send", func(tk *kernel.Task) { SendEpoch(tk, ring, ecp) })
	bk.Spawn("recv", func(tk *kernel.Task) { _, rerr = RecvEpoch(tk, ring) })
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(rerr, ErrChecksumMismatch) {
		t.Fatalf("RecvEpoch = %v, want ErrChecksumMismatch", rerr)
	}
}

// TestRecvFailsFastOnTruncatedTransfer kills the transfer after the first
// frames: the receiver must fail with ErrTruncatedCheckpoint once the ring
// goes silent instead of blocking forever on a stream nobody will finish.
func TestRecvFailsFastOnTruncatedTransfer(t *testing.T) {
	defer func(d time.Duration) { RecvFrameTimeout = d }(RecvFrameTimeout)
	RecvFrameTimeout = 100 * time.Millisecond
	s, pk, bk, ring := bulkPair(t)
	cp := testCheckpoint()
	var rerr error
	done := false
	pk.Spawn("send-partial", func(tk *kernel.Task) {
		p := tk.Proc()
		sendHeader(p, ring, cp)
		ring.Send(p, shm.Message{Kind: bulkThreads, Size: 16, Payload: cp.Threads})
		// Sender dies here: no more frames, no bulkDone.
	})
	bk.Spawn("recv", func(tk *kernel.Task) { _, rerr = Recv(tk, ring); done = true })
	if err := s.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Fatal("Recv still blocked on a truncated transfer after 2s")
	}
	if !errors.Is(rerr, ErrTruncatedCheckpoint) {
		t.Fatalf("Recv = %v, want ErrTruncatedCheckpoint", rerr)
	}
}

// TestRecvEpochFailsFastMidAppChunks is the epoch variant: the sender dies
// between application snapshot chunks.
func TestRecvEpochFailsFastMidAppChunks(t *testing.T) {
	defer func(d time.Duration) { RecvFrameTimeout = d }(RecvFrameTimeout)
	RecvFrameTimeout = 100 * time.Millisecond
	s, pk, bk, ring := bulkPair(t)
	ecp := testEpochCheckpoint()
	var rerr error
	pk.Spawn("send-partial", func(tk *kernel.Task) {
		p := tk.Proc()
		sendHeader(p, ring, &ecp.Checkpoint)
		ring.Send(p, shm.Message{Kind: bulkEpoch, Size: 48, Payload: bulkEpochHdr{
			Epoch: ecp.Epoch, Sent: ecp.Sent, Apps: len(ecp.Apps), AppSum: ecp.AppSum,
		}})
		ring.Send(p, shm.Message{Kind: bulkApp, Size: 32,
			Payload: bulkAppMeta{Name: "stream", Len: len(ecp.Apps[1].Data)}})
		ring.Send(p, shm.Message{Kind: bulkAppChunk, Size: 16 + chunkBytes,
			Payload: bulkAppData{App: 0, Data: ecp.Apps[1].Data[:chunkBytes]}})
		// Sender dies mid-snapshot.
	})
	bk.Spawn("recv", func(tk *kernel.Task) { _, rerr = RecvEpoch(tk, ring) })
	if err := s.RunUntil(sim.Time(2 * time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(rerr, ErrTruncatedCheckpoint) {
		t.Fatalf("RecvEpoch = %v, want ErrTruncatedCheckpoint", rerr)
	}
}

// TestPreCopyConverges drives the iterative pre-copy engine against a
// source whose dirty rate is low enough to converge: each pass must copy
// strictly less than the one before, and the final dirty residue — what
// the stop-the-world cut pays for — must be bounded by the dirty rate,
// not the state size.
func TestPreCopyConverges(t *testing.T) {
	s := sim.New(1)
	m := hw.New(s, hw.Opteron6376x4())
	pp, _ := m.NewPartition("p", 0, 1, 2, 3)
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	pk, err := kernel.Boot(pp, kernel.Config{Name: "p", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	const total = 1 << 20
	const rate = 100 // dirty bytes per microsecond of virtual time
	var finalDirty int
	var passes []PassStat
	pk.Spawn("precopy", func(tk *kernel.Task) {
		pc := &PreCopy{
			Sources: []Source{FuncSource{
				SourceName: "state",
				Total:      func() int { return total },
				Dirty: func() uint64 {
					return uint64(tk.Now()) / uint64(time.Microsecond) * rate
				},
			}},
			PerByte:     time.Nanosecond,
			MaxPasses:   8,
			TargetDirty: 4 << 10,
		}
		finalDirty, passes = pc.Run(tk)
	})
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatal(err)
	}
	if len(passes) < 2 {
		t.Fatalf("pre-copy took %d passes, want convergence over several", len(passes))
	}
	if passes[0].Copied != total {
		t.Errorf("first pass copied %d, want the full %d", passes[0].Copied, total)
	}
	for i := 1; i < len(passes); i++ {
		if passes[i].Copied >= passes[i-1].Copied {
			t.Errorf("pass %d copied %d, not less than pass %d's %d",
				i+1, passes[i].Copied, i, passes[i-1].Copied)
		}
	}
	// 1 MiB at 1 ns/B with 100 B/µs dirty rate: the residue must be within
	// an order of the rate*pass-time product, nowhere near the state size.
	if finalDirty > total/8 {
		t.Errorf("final dirty residue %d not bounded by the dirty rate (state %d)", finalDirty, total)
	}
}
