package rejoin

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/hw"
	"repro/internal/kernel"
	"repro/internal/replication"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/tcprep"
)

// bulkPair boots two kernels on opposite partitions with a bulk ring
// deliberately smaller than the checkpoints under test, so the transfer
// must stream through it rather than fit at once.
func bulkPair(t *testing.T) (*sim.Simulation, *kernel.Kernel, *kernel.Kernel, *shm.Ring) {
	t.Helper()
	s := sim.New(1)
	m := hw.New(s, hw.Opteron6376x4())
	pp, _ := m.NewPartition("p", 0, 1, 2, 3)
	sp, _ := m.NewPartition("s", 4, 5, 6, 7)
	kp := kernel.DefaultParams()
	kp.IdleWakeMin, kp.IdleWakeMax = 0, 0
	pk, err := kernel.Boot(pp, kernel.Config{Name: "primary", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	bk, err := kernel.Boot(sp, kernel.Config{Name: "backup", Params: kp})
	if err != nil {
		t.Fatal(err)
	}
	fabric := shm.NewFabric(s, pp.CrossLatency(sp))
	return s, pk, bk, fabric.NewRing("rejoin.bulk", 0, 96<<10)
}

func testCheckpoint() *Checkpoint {
	in := make([]byte, 150<<10) // three chunks, larger than the 96 KiB ring
	for i := range in {
		in[i] = byte(i * 7)
	}
	cp := &Checkpoint{
		Generation: 2,
		SeqGlobal:  12345,
		NextFTPid:  7,
		Threads: []replication.SeqCursor{
			{FTPid: 1, Seq: 4000}, {FTPid: 2, Seq: 8345},
		},
		Objs: []replication.ObjCursor{
			{Obj: 1, Seq: 7000}, {Obj: 2, Seq: 5345},
		},
		Env: []EnvEntry{{Key: "FT_MODE", Value: "replicated"}, {Key: "HOME", Value: "/"}},
		TCP: tcprep.StateSnap{
			Conns: []tcprep.ConnSnap{{
				Key:   tcprep.ConnKey{LocalPort: 80, RemoteHost: "client", RemotePort: 9999},
				ISS:   1000,
				IRS:   2000,
				In:    in,
				Acked: 4096,
			}},
			Binds: []tcprep.BindSnap{{
				ID:  3,
				Key: tcprep.ConnKey{LocalPort: 80, RemoteHost: "client", RemotePort: 9999},
			}},
		},
	}
	cp.Sum = cp.digest()
	return cp
}

func TestBulkTransferRoundTrip(t *testing.T) {
	s, pk, bk, ring := bulkPair(t)
	cp := testCheckpoint()
	var got *Checkpoint
	var rerr error
	pk.Spawn("send", func(tk *kernel.Task) { Send(tk, ring, cp) })
	bk.Spawn("recv", func(tk *kernel.Task) { got, rerr = Recv(tk, ring) })
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rerr != nil {
		t.Fatalf("Recv: %v", rerr)
	}
	if got.Generation != cp.Generation || got.SeqGlobal != cp.SeqGlobal ||
		got.NextFTPid != cp.NextFTPid || got.Sum != cp.Sum {
		t.Errorf("header fields differ: got %+v", got)
	}
	if len(got.Threads) != 2 || got.Threads[1] != cp.Threads[1] {
		t.Errorf("thread cursors differ: %+v", got.Threads)
	}
	if len(got.Objs) != 2 || got.Objs[0] != cp.Objs[0] || got.Objs[1] != cp.Objs[1] {
		t.Errorf("object cursors differ: %+v", got.Objs)
	}
	if len(got.Env) != 2 || got.Env[0] != cp.Env[0] {
		t.Errorf("env differs: %+v", got.Env)
	}
	if len(got.TCP.Conns) != 1 || !bytes.Equal(got.TCP.Conns[0].In, cp.TCP.Conns[0].In) {
		t.Error("connection input stream not reassembled byte-identically")
	}
	if len(got.TCP.Binds) != 1 || got.TCP.Binds[0] != cp.TCP.Binds[0] {
		t.Errorf("binds differ: %+v", got.TCP.Binds)
	}
}

func TestBulkTransferDetectsCorruption(t *testing.T) {
	s, pk, bk, ring := bulkPair(t)
	cp := testCheckpoint()
	cp.Sum++ // simulate content skew between cut and transfer
	var rerr error
	pk.Spawn("send", func(tk *kernel.Task) { Send(tk, ring, cp) })
	bk.Spawn("recv", func(tk *kernel.Task) { _, rerr = Recv(tk, ring) })
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(rerr, ErrChecksumMismatch) {
		t.Fatalf("Recv = %v, want ErrChecksumMismatch", rerr)
	}
}

// TestBulkTransferDetectsCursorCorruption corrupts one per-object cursor
// AFTER the digest was computed — the skew a buggy sharded cut would
// produce — and requires the reassembly digest check to reject it.
func TestBulkTransferDetectsCursorCorruption(t *testing.T) {
	s, pk, bk, ring := bulkPair(t)
	cp := testCheckpoint()
	cp.Objs[1].Seq += 3 // post-digest corruption of a Seq_obj cursor
	var rerr error
	pk.Spawn("send", func(tk *kernel.Task) { Send(tk, ring, cp) })
	bk.Spawn("recv", func(tk *kernel.Task) { _, rerr = Recv(tk, ring) })
	if err := s.RunUntil(sim.Time(time.Second)); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !errors.Is(rerr, ErrChecksumMismatch) {
		t.Fatalf("Recv = %v, want ErrChecksumMismatch", rerr)
	}
}

func TestDigestCoversContent(t *testing.T) {
	base := testCheckpoint()
	mutations := map[string]func(*Checkpoint){
		"seq":    func(c *Checkpoint) { c.SeqGlobal++ },
		"ftpid":  func(c *Checkpoint) { c.NextFTPid++ },
		"cursor": func(c *Checkpoint) { c.Threads[0].Seq++ },
		"objs":   func(c *Checkpoint) { c.Objs[1].Seq++ },
		"env":    func(c *Checkpoint) { c.Env[0].Value = "degraded" },
		"input":  func(c *Checkpoint) { c.TCP.Conns[0].In[0]++ },
		"acked":  func(c *Checkpoint) { c.TCP.Conns[0].Acked++ },
		"bind":   func(c *Checkpoint) { c.TCP.Binds[0].ID++ },
	}
	for name, mutate := range mutations {
		cp := testCheckpoint()
		mutate(cp)
		if cp.digest() == base.Sum {
			t.Errorf("digest blind to %s mutation", name)
		}
	}
}
