// Package rejoin implements backup re-integration after a failure (§3.7):
// the recording side cuts a consistent checkpoint of the FT-namespace
// (environment mirror, ft_pid assignment, per-thread Seq_thread and the
// Seq_global cursor) together with the logical TCP connection history, and
// streams it to a freshly booted backup kernel over a dedicated
// shared-memory bulk ring. The backup seeds its TCP sync state from the
// checkpoint, replays the retained deterministic-section log as catch-up
// while the primary keeps recording, and verifies at the checkpoint's
// Seq_global watermark that the replay-reconstructed namespace matches the
// cut exactly — any divergence surfaces as ErrChecksumMismatch instead of
// silently re-entering replicated mode with skewed state.
package rejoin

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"time"

	"repro/internal/kernel"
	"repro/internal/replication"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/tcprep"
)

// ErrChecksumMismatch reports that a transferred or replay-reconstructed
// checkpoint does not match the recording side's cut.
var ErrChecksumMismatch = errors.New("rejoin: checkpoint checksum mismatch")

// ErrTruncatedCheckpoint reports a bulk transfer that stopped mid-stream:
// the sender died (or its kernel was torn down) between frames, leaving a
// partial checkpoint on a ring nobody will ever finish. Recv fails fast
// with this instead of blocking forever.
var ErrTruncatedCheckpoint = errors.New("rejoin: truncated checkpoint transfer")

// RecvFrameTimeout bounds how long Recv waits for the next bulk frame
// before declaring the transfer truncated. Virtual time, and generous:
// a healthy sender streams the whole checkpoint in well under a second
// of virtual clock, so only a dead sender can exhaust it. (Satisfied
// waits cancel their timer without observable residue, so the timeout
// does not perturb same-seed traces.)
var RecvFrameTimeout = 30 * time.Second

// EnvEntry is one environment binding, in sorted-key order so the
// checkpoint content is deterministic.
type EnvEntry struct {
	Key, Value string
}

// Checkpoint is a consistent cut of the replicated full-software-stack
// state at a deterministic-section boundary.
type Checkpoint struct {
	// Generation counts rejoin cycles (1 = first re-integration).
	Generation int
	// SeqGlobal is the cut's global sequence watermark: the rejoined
	// backup's replay must reconstruct exactly this cursor state when its
	// head reaches it.
	SeqGlobal uint64
	// NextFTPid is the next replica-identity the namespace would assign.
	NextFTPid int
	// Threads holds the per-thread sequence cursors, sorted by ft_pid.
	Threads []replication.SeqCursor
	// Objs holds the per-object sequencing cursors (Seq_obj), sorted by
	// object key. With sharded det sections SeqGlobal is only a Lamport
	// watermark, so the cut's real cursor state is this vector; with one
	// shard it is still recorded and verified, keeping checkpoints
	// comparable across WithDetShards settings.
	Objs []replication.ObjCursor
	// Env is the replicated environment mirror in sorted-key order.
	Env []EnvEntry
	// TCP is the logical connection history the backup seeds its sync
	// state from (it is not replay-verified: input bytes never enter the
	// deterministic-section log).
	TCP tcprep.StateSnap
	// Sum is the FNV-1a digest of everything above; the receiver
	// recomputes it after reassembly.
	Sum uint64
}

// Cut captures a checkpoint. It must run in scheduler context with the
// namespace quiesced at a section boundary (no yields between reading the
// cursors and snapshotting the TCP history), atomically with attaching the
// delta ring — that is what makes snapshot-plus-deltas gapless. prim may
// be nil when the workload has no replicated sockets.
func Cut(gen int, ns *replication.Namespace, prim *tcprep.Primary) *Checkpoint {
	seqGlobal, threads := ns.Cursors()
	cp := &Checkpoint{
		Generation: gen,
		SeqGlobal:  seqGlobal,
		NextFTPid:  ns.NextFTPid(),
		Threads:    threads,
		Objs:       ns.ObjCursors(),
		Env:        sortedEnv(ns.Env()),
	}
	if prim != nil {
		cp.TCP = prim.SnapshotState()
	}
	cp.Sum = cp.digest()
	return cp
}

func sortedEnv(m map[string]string) []EnvEntry {
	// ftvet:nondet collect-then-sort: map iteration feeds a sorted slice.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	env := make([]EnvEntry, 0, len(keys))
	for _, k := range keys {
		env = append(env, EnvEntry{Key: k, Value: m[k]})
	}
	return env
}

// digest is the FNV-1a checksum over the checkpoint's logical content.
func (cp *Checkpoint) digest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "g%d|s%d|p%d", cp.Generation, cp.SeqGlobal, cp.NextFTPid)
	for _, t := range cp.Threads {
		fmt.Fprintf(h, "|t%d:%d", t.FTPid, t.Seq)
	}
	for _, o := range cp.Objs {
		fmt.Fprintf(h, "|o%d:%d", o.Obj, o.Seq)
	}
	for _, e := range cp.Env {
		fmt.Fprintf(h, "|e%s=%s", e.Key, e.Value)
	}
	for _, c := range cp.TCP.Conns {
		fmt.Fprintf(h, "|c%d/%s:%d i%d r%d a%d f%v g%v ", c.Key.LocalPort,
			c.Key.RemoteHost, c.Key.RemotePort, c.ISS, c.IRS, c.Acked, c.PeerFin, c.Gone)
		h.Write(c.In)
	}
	for _, b := range cp.TCP.Binds {
		fmt.Fprintf(h, "|b%d>%d/%s:%d", b.ID, b.Key.LocalPort, b.Key.RemoteHost, b.Key.RemotePort)
	}
	return h.Sum64()
}

// Bytes is the checkpoint's accounted bulk-transfer footprint.
func (cp *Checkpoint) Bytes() int {
	n := 64 + 16*len(cp.Threads) + 16*len(cp.Objs)
	for _, e := range cp.Env {
		n += 16 + len(e.Key) + len(e.Value)
	}
	return n + cp.TCP.Bytes()
}

// VerifyReplay checks the rejoined backup's replay-reconstructed namespace
// against the checkpoint. Arm it at the watermark — via
// ns.OnReplayHead(cp.SeqGlobal, ...) before replay starts — so the cursor
// comparison happens exactly at the cut boundary.
func (cp *Checkpoint) VerifyReplay(ns *replication.Namespace) error {
	seqGlobal, threads := ns.Cursors()
	if seqGlobal != cp.SeqGlobal {
		return fmt.Errorf("%w: Seq_global %d, checkpoint %d",
			ErrChecksumMismatch, seqGlobal, cp.SeqGlobal)
	}
	if got := ns.NextFTPid(); got != cp.NextFTPid {
		return fmt.Errorf("%w: next ft_pid %d, checkpoint %d",
			ErrChecksumMismatch, got, cp.NextFTPid)
	}
	if len(threads) != len(cp.Threads) {
		return fmt.Errorf("%w: %d thread cursors, checkpoint %d",
			ErrChecksumMismatch, len(threads), len(cp.Threads))
	}
	for i, t := range threads {
		if t != cp.Threads[i] {
			return fmt.Errorf("%w: ft_pid %d at Seq_thread %d, checkpoint <%d,%d>",
				ErrChecksumMismatch, t.FTPid, t.Seq, cp.Threads[i].FTPid, cp.Threads[i].Seq)
		}
	}
	objs := ns.ObjCursors()
	if len(objs) != len(cp.Objs) {
		return fmt.Errorf("%w: %d object cursors, checkpoint %d",
			ErrChecksumMismatch, len(objs), len(cp.Objs))
	}
	for i, o := range objs {
		if o != cp.Objs[i] {
			return fmt.Errorf("%w: object %d at Seq_obj %d, checkpoint <%d,%d>",
				ErrChecksumMismatch, o.Obj, o.Seq, cp.Objs[i].Obj, cp.Objs[i].Seq)
		}
	}
	env := sortedEnv(ns.Env())
	if len(env) != len(cp.Env) {
		return fmt.Errorf("%w: %d env entries, checkpoint %d",
			ErrChecksumMismatch, len(env), len(cp.Env))
	}
	for i, e := range env {
		if e != cp.Env[i] {
			return fmt.Errorf("%w: env %s=%q, checkpoint %s=%q",
				ErrChecksumMismatch, e.Key, e.Value, cp.Env[i].Key, cp.Env[i].Value)
		}
	}
	return nil
}

// AppSnap is one application's opaque state snapshot inside an epoch
// checkpoint. The replication layer never interprets Data; the owning
// application's Restore hook does.
type AppSnap struct {
	Name string
	Data []byte
}

// EpochCheckpoint is an incremental epoch cut (§3.7 extended): the base
// Checkpoint plus opaque per-application snapshots. The embedded
// Checkpoint always carries an empty TCP snapshot — input bytes never
// enter the deterministic-section log, so TCP state is snapshotted fresh
// at the rejoin instant rather than at the epoch boundary — and uses
// Generation 0, which is what lets a backup recompute the identical
// digest from its own replay-reconstructed namespace.
type EpochCheckpoint struct {
	Checkpoint
	// Epoch numbers the cut within the primary's incarnation lineage.
	Epoch uint64
	// Sent is the recording-side log watermark at the cut: the marker
	// message carrying this checkpoint occupies log index Sent, and
	// truncation on both sides keeps it as the first retained entry.
	Sent uint64
	// Apps holds the application snapshots, in launch order.
	Apps []AppSnap
	// Sends holds every replicated connection's cumulative output-stream
	// byte count at the cut, sorted by socket ID. A seeded backup replays
	// the delta log from the cut, so its regenerated output resumes at
	// these offsets; seeding them as the logical out-buffer bases keeps
	// the retransmission accounting aligned (tcprep.Secondary.SeedOutBase).
	Sends []tcprep.SendCursor
	// AppSum is the FNV-1a digest over Epoch, Sent, Apps and Sends; the
	// receiver recomputes it after reassembly.
	AppSum uint64
}

// appDigest is the FNV-1a checksum over the epoch-specific content.
func (ecp *EpochCheckpoint) appDigest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "e%d|w%d", ecp.Epoch, ecp.Sent)
	for _, a := range ecp.Apps {
		fmt.Fprintf(h, "|a%s:%d:", a.Name, len(a.Data))
		h.Write(a.Data)
	}
	for _, c := range ecp.Sends {
		fmt.Fprintf(h, "|c%d:%d", c.ID, c.Sent)
	}
	return h.Sum64()
}

// Seal computes both digests after the cut's fields are final.
func (ecp *EpochCheckpoint) Seal() {
	ecp.Sum = ecp.Checkpoint.digest()
	ecp.AppSum = ecp.appDigest()
}

// Digest is the combined checksum carried in the epoch marker message and
// compared by each backup against its replay-reconstructed state.
func (ecp *EpochCheckpoint) Digest() uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#x|%#x", ecp.Sum, ecp.AppSum)
	return h.Sum64()
}

// Bytes is the epoch checkpoint's accounted bulk-transfer footprint.
func (ecp *EpochCheckpoint) Bytes() int {
	n := ecp.Checkpoint.Bytes() + 32 + 16*len(ecp.Sends)
	for _, a := range ecp.Apps {
		n += 16 + len(a.Name) + len(a.Data)
	}
	return n
}

// Bulk-ring message kinds. The ring is dedicated to one transfer, FIFO and
// reliable (fault injection never targets bulk rings), so the protocol is
// a plain framed stream: header, cursor tables, per-connection meta plus
// input-stream chunks, bindings, done. Epoch transfers splice an epoch
// header and per-application frames between the header and the body.
const (
	bulkHeader = iota + 1
	bulkThreads
	bulkEnv
	bulkConn
	bulkChunk
	bulkBinds
	bulkDone
	bulkObjs
	bulkEpoch
	bulkApp
	bulkAppChunk
)

// chunkBytes bounds one bulk-ring transfer so the checkpoint streams
// through a ring smaller than itself instead of requiring it to fit.
const chunkBytes = 64 << 10

type bulkHdr struct {
	Generation int
	SeqGlobal  uint64
	NextFTPid  int
	Conns      int
	Sum        uint64
}

type bulkConnMeta struct {
	Snap  tcprep.ConnSnap // In nil; streamed separately in chunks
	InLen int
}

type bulkConnChunk struct {
	Conn int // index into the checkpoint's connection order
	Data []byte
}

type bulkEpochHdr struct {
	Epoch  uint64
	Sent   uint64
	Apps   int
	Sends  []tcprep.SendCursor
	AppSum uint64
}

type bulkAppMeta struct {
	Name string
	Len  int
}

type bulkAppData struct {
	App  int // index into the epoch checkpoint's app order
	Data []byte
}

// Send streams the checkpoint over the bulk ring, blocking as the ring
// fills. Run it on a dedicated task of the recording side's kernel; the
// checkpoint was already cut, so recording continues concurrently.
func Send(t *kernel.Task, ring *shm.Ring, cp *Checkpoint) {
	p := t.Proc()
	sendHeader(p, ring, cp)
	sendBody(p, ring, cp)
}

// SendEpoch streams an epoch checkpoint: the base frames plus the epoch
// header and per-application snapshots.
func SendEpoch(t *kernel.Task, ring *shm.Ring, ecp *EpochCheckpoint) {
	p := t.Proc()
	sendHeader(p, ring, &ecp.Checkpoint)
	ring.Send(p, shm.Message{Kind: bulkEpoch, Size: 48 + 16*len(ecp.Sends), Payload: bulkEpochHdr{
		Epoch:  ecp.Epoch,
		Sent:   ecp.Sent,
		Apps:   len(ecp.Apps),
		Sends:  ecp.Sends,
		AppSum: ecp.AppSum,
	}})
	for i, a := range ecp.Apps {
		ring.Send(p, shm.Message{Kind: bulkApp, Size: 32 + len(a.Name),
			Payload: bulkAppMeta{Name: a.Name, Len: len(a.Data)}})
		for off := 0; off < len(a.Data); off += chunkBytes {
			end := off + chunkBytes
			if end > len(a.Data) {
				end = len(a.Data)
			}
			ring.Send(p, shm.Message{Kind: bulkAppChunk, Size: 16 + end - off,
				Payload: bulkAppData{App: i, Data: a.Data[off:end]}})
		}
	}
	sendBody(p, ring, &ecp.Checkpoint)
}

func sendHeader(p *sim.Proc, ring *shm.Ring, cp *Checkpoint) {
	ring.Send(p, shm.Message{Kind: bulkHeader, Size: 64, Payload: bulkHdr{
		Generation: cp.Generation,
		SeqGlobal:  cp.SeqGlobal,
		NextFTPid:  cp.NextFTPid,
		Conns:      len(cp.TCP.Conns),
		Sum:        cp.Sum,
	}})
}

func sendBody(p *sim.Proc, ring *shm.Ring, cp *Checkpoint) {
	ring.Send(p, shm.Message{Kind: bulkThreads, Size: 16 + 16*len(cp.Threads), Payload: cp.Threads})
	ring.Send(p, shm.Message{Kind: bulkObjs, Size: 16 + 16*len(cp.Objs), Payload: cp.Objs})
	envSize := 16
	for _, e := range cp.Env {
		envSize += 16 + len(e.Key) + len(e.Value)
	}
	ring.Send(p, shm.Message{Kind: bulkEnv, Size: envSize, Payload: cp.Env})
	for i, cs := range cp.TCP.Conns {
		meta := cs
		meta.In = nil
		ring.Send(p, shm.Message{Kind: bulkConn, Size: 64, Payload: bulkConnMeta{Snap: meta, InLen: len(cs.In)}})
		for off := 0; off < len(cs.In); off += chunkBytes {
			end := off + chunkBytes
			if end > len(cs.In) {
				end = len(cs.In)
			}
			ring.Send(p, shm.Message{Kind: bulkChunk, Size: 16 + end - off,
				Payload: bulkConnChunk{Conn: i, Data: cs.In[off:end]}})
		}
	}
	ring.Send(p, shm.Message{Kind: bulkBinds, Size: 16 + 24*len(cp.TCP.Binds), Payload: cp.TCP.Binds})
	ring.Send(p, shm.Message{Kind: bulkDone, Size: 16})
}

// Recv reassembles a checkpoint from the bulk ring, blocking until the
// terminating frame arrives, and re-verifies the digest over the
// reassembled content. A sender that dies mid-stream surfaces as
// ErrTruncatedCheckpoint after RecvFrameTimeout of ring silence rather
// than blocking forever.
func Recv(t *kernel.Task, ring *shm.Ring) (*Checkpoint, error) {
	cp := &Checkpoint{}
	if err := recvFrames(t, ring, cp, nil); err != nil {
		return nil, err
	}
	return cp, nil
}

// RecvEpoch reassembles an epoch checkpoint, verifying both the base and
// the application digests over the reassembled content.
func RecvEpoch(t *kernel.Task, ring *shm.Ring) (*EpochCheckpoint, error) {
	ecp := &EpochCheckpoint{}
	if err := recvFrames(t, ring, &ecp.Checkpoint, ecp); err != nil {
		return nil, err
	}
	return ecp, nil
}

// recvFrames is the shared reassembly loop. ecp is nil for a base
// transfer; non-nil enables (and requires) the epoch frames.
func recvFrames(t *kernel.Task, ring *shm.Ring, cp *Checkpoint, ecp *EpochCheckpoint) error {
	p := t.Proc()
	var want uint64
	sawEpoch := false
	frames := 0
	for {
		m, ok := ring.RecvTimeout(p, RecvFrameTimeout)
		if !ok {
			return fmt.Errorf("%w: ring silent for %v after %d frames",
				ErrTruncatedCheckpoint, RecvFrameTimeout, frames)
		}
		frames++
		switch m.Kind {
		case bulkHeader:
			h := m.Payload.(bulkHdr)
			cp.Generation = h.Generation
			cp.SeqGlobal = h.SeqGlobal
			cp.NextFTPid = h.NextFTPid
			cp.TCP.Conns = make([]tcprep.ConnSnap, 0, h.Conns)
			want = h.Sum
		case bulkThreads:
			cp.Threads = m.Payload.([]replication.SeqCursor)
		case bulkObjs:
			cp.Objs = m.Payload.([]replication.ObjCursor)
		case bulkEnv:
			cp.Env = m.Payload.([]EnvEntry)
		case bulkConn:
			meta := m.Payload.(bulkConnMeta)
			cs := meta.Snap
			cs.In = make([]byte, 0, meta.InLen)
			cp.TCP.Conns = append(cp.TCP.Conns, cs)
		case bulkChunk:
			c := m.Payload.(bulkConnChunk)
			if c.Conn >= len(cp.TCP.Conns) {
				return fmt.Errorf("%w: chunk for connection %d of %d",
					ErrChecksumMismatch, c.Conn, len(cp.TCP.Conns))
			}
			cs := &cp.TCP.Conns[c.Conn]
			cs.In = append(cs.In, c.Data...)
		case bulkBinds:
			cp.TCP.Binds = m.Payload.([]tcprep.BindSnap)
		case bulkEpoch:
			if ecp == nil {
				return fmt.Errorf("%w: epoch frame in a base checkpoint transfer",
					ErrChecksumMismatch)
			}
			h := m.Payload.(bulkEpochHdr)
			ecp.Epoch = h.Epoch
			ecp.Sent = h.Sent
			ecp.Sends = append([]tcprep.SendCursor(nil), h.Sends...)
			ecp.AppSum = h.AppSum
			ecp.Apps = make([]AppSnap, 0, h.Apps)
			sawEpoch = true
		case bulkApp:
			if ecp == nil {
				return fmt.Errorf("%w: app frame in a base checkpoint transfer",
					ErrChecksumMismatch)
			}
			meta := m.Payload.(bulkAppMeta)
			ecp.Apps = append(ecp.Apps, AppSnap{Name: meta.Name, Data: make([]byte, 0, meta.Len)})
		case bulkAppChunk:
			c := m.Payload.(bulkAppData)
			if ecp == nil || c.App >= len(ecp.Apps) {
				return fmt.Errorf("%w: chunk for app snapshot %d", ErrChecksumMismatch, c.App)
			}
			a := &ecp.Apps[c.App]
			a.Data = append(a.Data, c.Data...)
		case bulkDone:
			cp.Sum = cp.digest()
			if cp.Sum != want {
				return fmt.Errorf("%w: reassembled digest %#x, header %#x",
					ErrChecksumMismatch, cp.Sum, want)
			}
			if ecp != nil {
				if !sawEpoch {
					return fmt.Errorf("%w: epoch transfer carried no epoch frame",
						ErrChecksumMismatch)
				}
				if got := ecp.appDigest(); got != ecp.AppSum {
					return fmt.Errorf("%w: reassembled app digest %#x, header %#x",
						ErrChecksumMismatch, got, ecp.AppSum)
				}
			}
			return nil
		default:
			return fmt.Errorf("%w: unknown bulk frame kind %d", ErrChecksumMismatch, m.Kind)
		}
	}
}
