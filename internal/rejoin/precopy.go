package rejoin

// This file implements iterative pre-copy for epoch checkpoints
// (livecore-style): instead of stopping the world for the full state
// copy, the cutter copies each state component concurrently with
// execution over converging passes — pass n+1 copies only what was
// dirtied during pass n — and stops the scheduler only for the final
// residual delta. The final pause is then bounded by the workload's
// dirty rate times one pass, not by state size, which is what keeps
// epoch cuts cheap enough to take frequently.

import (
	"time"

	"repro/internal/kernel"
)

// Source is one replicated state component participating in iterative
// pre-copy. DirtyCounter is a monotone cumulative count of bytes dirtied
// since boot; the engine differences successive readings to estimate
// each pass's dirty set, so sources never track per-page state — a
// counter bump in each mutator is the whole integration burden.
type Source interface {
	Name() string
	// TotalBytes is the component's current full-copy footprint.
	TotalBytes() int
	// DirtyCounter is cumulative bytes dirtied since boot (monotone).
	DirtyCounter() uint64
}

// FuncSource adapts plain closures to Source.
type FuncSource struct {
	SourceName string
	Total      func() int
	Dirty      func() uint64
}

func (f FuncSource) Name() string         { return f.SourceName }
func (f FuncSource) TotalBytes() int      { return f.Total() }
func (f FuncSource) DirtyCounter() uint64 { return f.Dirty() }

// PassStat records one pre-copy pass for observability.
type PassStat struct {
	// Pass numbers the pass, 1-based; pass 1 is the full copy.
	Pass int
	// Copied is the bytes copied during this pass.
	Copied int
	// Dirtied is the bytes the workload dirtied while the pass ran —
	// the next pass's copy set.
	Dirtied int
}

// PreCopy drives converging copy passes over a set of sources.
type PreCopy struct {
	Sources []Source
	// PerByte is the modelled copy cost per byte; each pass pays
	// Copied × PerByte of contended CPU time on the cutter's task.
	PerByte time.Duration
	// MaxPasses bounds the iteration for workloads whose dirty rate
	// never converges below TargetDirty.
	MaxPasses int
	// TargetDirty stops iterating once the residual dirty estimate is
	// at or below this many bytes.
	TargetDirty int
}

// Run executes the converging passes on t, paying the modelled copy cost
// for each, and returns the residual dirty-byte estimate — the bytes the
// caller must copy under the final stop-the-world — plus per-pass stats.
// Run itself never stops the scheduler; the caller quiesces afterwards
// and pays finalDirty × PerByte inside the pause.
func (pc *PreCopy) Run(t *kernel.Task) (finalDirty int, passes []PassStat) {
	total := 0
	for _, s := range pc.Sources {
		total += s.TotalBytes()
	}
	maxPasses := pc.MaxPasses
	if maxPasses < 1 {
		maxPasses = 1
	}
	copySet := total
	dirty := total
	for pass := 1; pass <= maxPasses; pass++ {
		before := pc.readCounters()
		t.Compute(time.Duration(copySet) * pc.PerByte)
		dirtied := pc.dirtiedSince(before)
		passes = append(passes, PassStat{Pass: pass, Copied: copySet, Dirtied: dirtied})
		prev := dirty
		dirty = dirtied
		if dirty <= pc.TargetDirty || dirty >= prev {
			// Converged below target, or stopped shrinking — more
			// passes would only burn CPU without shortening the pause.
			break
		}
		copySet = dirty
	}
	return dirty, passes
}

func (pc *PreCopy) readCounters() []uint64 {
	c := make([]uint64, len(pc.Sources))
	for i, s := range pc.Sources {
		c[i] = s.DirtyCounter()
	}
	return c
}

// dirtiedSince sums per-source dirty deltas, capping each at the
// source's current footprint: re-dirtying the same state twice in one
// pass costs one recopy, not two.
func (pc *PreCopy) dirtiedSince(before []uint64) int {
	dirtied := 0
	for i, s := range pc.Sources {
		d := s.DirtyCounter() - before[i]
		if max := uint64(s.TotalBytes()); d > max {
			d = max
		}
		dirtied += int(d)
	}
	return dirtied
}
